package automon

// The benchmarks in this file regenerate the paper's tables and figures (one
// benchmark per table/figure; see DESIGN.md for the experiment index) and
// time the performance-critical operations of §4.4. Figure benchmarks run
// the quick-size experiment suite once per iteration and report headline
// metrics via b.ReportMetric; use cmd/automon-bench for the CSV series and
// -full for paper-size parameters.
//
// Run everything:   go test -bench=. -benchmem
// Skip the heavy figure sweeps: go test -bench=. -short

import (
	"math/rand"
	"strconv"
	"testing"

	"automon/internal/core"
	"automon/internal/experiments"
	"automon/internal/funcs"
	"automon/internal/linalg"
	"automon/internal/sim"
)

func quickOpts() experiments.Options { return experiments.Options{Quick: true, Seed: 1} }

// reportTradeoff extracts a named algorithm's message total from a tradeoff
// table for headline reporting.
func sumMessages(t *experiments.Table, algo string) float64 {
	var total float64
	for _, row := range t.Rows {
		if row[1] == algo {
			v, _ := strconv.Atoi(row[3])
			total += float64(v)
		}
	}
	return total
}

func BenchmarkFig1SineSafeZones(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1SineZones(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3NeighborhoodSweep(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig3NeighborhoodSweep(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "rows")
	}
}

func BenchmarkFig4Traces(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4Traces(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Tradeoff(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5Tradeoff(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sumMessages(t, "automon"), "automon-msgs")
		b.ReportMetric(sumMessages(t, "centralization"), "central-msgs")
	}
}

func BenchmarkFig6ErrorProfile(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6ErrorProfile(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aDimensions(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7aDimensions(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7bNodes(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7bNodes(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Tuning(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8Tuning(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Ablation(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Ablation(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Bandwidth(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10Bandwidth(quickOpts(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeTable(b *testing.B) {
	if testing.Short() {
		b.Skip("figure sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RuntimeTable(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4.4 micro-benchmarks: the hot paths behind the runtime table ---

// BenchmarkNodeUpdate measures one node-side data update (constraint check),
// the per-sample cost on a resource-limited edge device.
func BenchmarkNodeUpdate(b *testing.B) {
	for _, d := range []int{10, 40, 200} {
		b.Run("inner-product-d"+strconv.Itoa(d), func(b *testing.B) {
			benchNodeUpdate(b, funcs.InnerProduct(d/2))
		})
	}
	mlp, err := funcs.TrainMLP(40, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mlp-40", func(b *testing.B) { benchNodeUpdate(b, mlp) })
}

func benchNodeUpdate(b *testing.B, f *core.Function) {
	d := f.Dim()
	x0 := make([]float64, d)
	for i := range x0 {
		x0[i] = 0.1
	}
	node := core.NewNode(0, f)
	grad := make([]float64, d)
	f0 := f.Grad(x0, grad)
	node.ApplySync(&core.Sync{
		NodeID: 0, Method: core.MethodX, Kind: core.ConvexDiff,
		X0: x0, F0: f0, GradF0: grad, L: f0 - 1e6, U: f0 + 1e6,
		Lam: 0.1, R: 1e6, Slack: make([]float64, d),
	})
	x := linalg.Clone(x0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x[0] = 0.1 + float64(i%7)*1e-4
		if v := node.UpdateData(x); v != nil {
			b.Fatal("unexpected violation in benchmark")
		}
	}
}

// BenchmarkFullSync measures a coordinator full sync: the ADCD-E path is a
// few matrix products; the ADCD-X path is dominated by the extreme-
// eigenvalue search.
func BenchmarkFullSync(b *testing.B) {
	cases := []struct {
		name    string
		f       *core.Function
		power   bool
		backend core.EigBackend
	}{
		{"adcd-e-inner-product-d40", funcs.InnerProduct(20), false, core.BackendLBFGS},
		{"adcd-x-kld-d20", funcs.KLD(10, 1e-3), false, core.BackendLBFGS},
		{"adcd-x-kld-d100", funcs.KLD(50, 1e-3), false, core.BackendLBFGS},
		// §6 ablation: the power-iteration spectrum estimator replaces the
		// dense Hessian + eigendecomposition inside the same sync.
		{"adcd-x-kld-d100-power", funcs.KLD(50, 1e-3), true, core.BackendLBFGS},
		// Eigen-engine comparison on the same sync: the certified interval
		// backend replaces the L-BFGS search; the hybrid may run both.
		{"adcd-x-kld-d20-interval", funcs.KLD(10, 1e-3), false, core.BackendInterval},
		{"adcd-x-kld-d20-hybrid", funcs.KLD(10, 1e-3), false, core.BackendHybrid},
		{"adcd-x-kld-d100-interval", funcs.KLD(50, 1e-3), false, core.BackendInterval},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			d := c.f.Dim()
			n := 4
			nodes := make([]*core.Node, n)
			init := make([]float64, d)
			for i := range init {
				init[i] = 0.3
			}
			for i := range nodes {
				nodes[i] = core.NewNode(i, c.f)
				nodes[i].SetData(init)
			}
			coord := core.NewCoordinator(c.f, n, core.Config{
				Epsilon: 0.1, R: 0.1,
				Decomp: core.DecompOptions{
					Seed: 1, OptStarts: 1, OptMaxIter: 20, OptMaxFunEvals: 100,
					UsePowerIteration: c.power, Backend: c.backend,
				},
			}, benchComm{nodes})
			if err := coord.Init(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := coord.HandleViolation(&core.Violation{
					NodeID: 0, Kind: core.ViolationFaulty, X: init,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecomposeX isolates one ADCD-X decomposition per eigen-engine —
// the tightness-vs-build-cost frontier's cost axis (automon-bench
// -fig frontier renders both axes).
func BenchmarkDecomposeX(b *testing.B) {
	mlp, err := funcs.TrainMLP(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		f    *core.Function
		r    float64
	}{
		{"kld-d20", funcs.KLD(10, 1e-3), 0.05},
		{"mlp-d8", mlp, 0.3},
	} {
		d := c.f.Dim()
		x0 := make([]float64, d)
		lo := make([]float64, d)
		hi := make([]float64, d)
		for i := range x0 {
			x0[i] = 0.3
			lo[i], hi[i] = 0.3-c.r, 0.3+c.r
		}
		for _, backend := range []core.EigBackend{core.BackendLBFGS, core.BackendInterval, core.BackendHybrid} {
			b.Run(c.name+"-"+backend.String(), func(b *testing.B) {
				opts := core.DecompOptions{Seed: 1, OptStarts: 1, Backend: backend}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.DecomposeX(c.f, x0, lo, hi, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

type benchComm struct{ nodes []*core.Node }

func (c benchComm) RequestData(id int) []float64    { return c.nodes[id].LocalVector() }
func (c benchComm) SendSync(id int, m *core.Sync)   { c.nodes[id].ApplySync(m) }
func (c benchComm) SendSlack(id int, m *core.Slack) { c.nodes[id].ApplySlack(m) }

// BenchmarkHVP measures one Hessian-vector product on the MLP-40 graph —
// the inner loop of the ADCD-X eigenvalue search.
func BenchmarkHVP(b *testing.B) {
	f, err := funcs.TrainMLP(40, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := f.Dim()
	x := make([]float64, d)
	v := make([]float64, d)
	out := make([]float64, d)
	rng := rand.New(rand.NewSource(2))
	for i := range x {
		x[i] = rng.NormFloat64()
		v[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Graph.HVP(x, v, out)
	}
}

// BenchmarkEigenSym measures the symmetric eigensolver on Hessian-sized
// matrices.
func BenchmarkEigenSym(b *testing.B) {
	for _, d := range []int{20, 50, 100, 200} {
		b.Run("d"+strconv.Itoa(d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			m := linalg.NewMat(d, d)
			for i := 0; i < d; i++ {
				for j := i; j < d; j++ {
					v := rng.NormFloat64()
					m.Set(i, j, v)
					m.Set(j, i, v)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := linalg.EigenSym(m, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulationRound measures a full simulated monitoring round
// (10 inner-product nodes) end to end.
func BenchmarkSimulationRound(b *testing.B) {
	o := quickOpts()
	w := experiments.InnerProductWorkload(o, 40, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Rebuild per iteration so state does not accumulate across runs.
		cfg := sim.Config{F: w.F, Data: w.Data, Algorithm: sim.AutoMon, Core: core.Config{Epsilon: 0.4}}
		b.StartTimer()
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Messages), "msgs")
	}
}
