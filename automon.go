// Package automon is a Go implementation of AutoMon (Sivan, Gabel, Schuster;
// SIGMOD 2022): automatic, communication-efficient distributed monitoring of
// arbitrary multivariate functions over the average of dynamic local data
// vectors.
//
// Given the "source code" of a function f : R^d → R — a Program built from
// differentiable ops — and an approximation bound ε, AutoMon maintains an
// ε-approximation of f(x̄) over n distributed nodes while communicating only
// when local constraint violations make it necessary. The local constraints
// are derived automatically via automatic differentiation, numerical
// optimization and DC decompositions (ADCD-X for general functions, ADCD-E
// for constant-Hessian functions), and plugged into the geometric-monitoring
// protocol with slack vectors and LRU lazy sync.
//
// Like the paper's prototype, this library is an algorithmic building block,
// not a complete data-processing system: the application mediates between
// AutoMon and its messaging fabric. Nodes are driven by UpdateData and
// HandleNodeMessage; the coordinator pulls data and pushes constraints
// through the NodeComm interface the application implements (see
// internal/transport for a complete TCP reference implementation, and the
// examples/ directory for end-to-end programs).
//
// Minimal usage:
//
//	f := automon.NewFunction("norm2", 2, func(b *automon.Builder, x []automon.Ref) automon.Ref {
//		return b.Add(b.Square(x[0]), b.Square(x[1]))
//	})
//	coord := automon.NewCoordinator(f, n, automon.Config{Epsilon: 0.1}, comm)
//	node := automon.NewNode(0, f)
//	// on every local data change:
//	if v := node.UpdateData(x); v != nil {
//		sendToCoordinator(v.Encode())
//	}
//	// on every message from the coordinator:
//	reply, _ := automon.HandleNodeMessage(node, raw)
package automon

import (
	"automon/internal/autodiff"
	"automon/internal/core"
)

// Re-exported building blocks. These are aliases, so values flow freely
// between the public API and the internal packages.
type (
	// Builder constructs the computational graph of a monitored function.
	Builder = autodiff.Builder
	// Ref is a handle to a node in a function's computational graph.
	Ref = autodiff.Ref
	// Program is the "source code" of a monitored function.
	Program = autodiff.Program

	// Function is a compiled monitored function.
	Function = core.Function
	// Config configures a Coordinator (ε, error type, neighborhood size,
	// slack/lazy-sync switches, optimizer budget).
	Config = core.Config
	// Coordinator runs the AutoMon coordinator algorithm.
	Coordinator = core.Coordinator
	// Node runs the AutoMon node algorithm.
	Node = core.Node
	// NodeComm is the coordinator-side messaging hook the application
	// implements on top of its fabric.
	NodeComm = core.NodeComm
	// Message is an encodable protocol message.
	Message = core.Message
	// Violation reports a local constraint violation to the coordinator.
	Violation = core.Violation
	// Sync distributes a new safe zone to a node.
	Sync = core.Sync
	// Slack rebalances a node's slack vector.
	Slack = core.Slack
	// DataRequest asks a node for its local vector.
	DataRequest = core.DataRequest
	// DataResponse returns a node's local vector.
	DataResponse = core.DataResponse
	// Rejoin re-registers a node after a connection loss; the coordinator
	// answers with a full sync (see Coordinator.HandleRejoin).
	Rejoin = core.Rejoin
	// TuningData is a replayable prefix used by neighborhood-size tuning.
	TuningData = core.TuningData
	// TuneResult reports the outcome of neighborhood-size tuning.
	TuneResult = core.TuneResult
)

// Error types for Config.ErrorType.
const (
	// Additive approximation: L, U = f(x0) ∓ ε.
	Additive = core.Additive
	// Multiplicative approximation: L, U = (1 ∓ ε)·f(x0).
	Multiplicative = core.Multiplicative
)

// NewFunction compiles a Program into a monitored Function of dimension dim.
func NewFunction(name string, dim int, program Program) *Function {
	return core.NewFunction(name, dim, program)
}

// NewNode creates the node-side algorithm instance for function f. The node
// is silent until the coordinator's first Sync arrives.
func NewNode(id int, f *Function) *Node { return core.NewNode(id, f) }

// NewCoordinator creates the coordinator for n nodes over f, communicating
// through comm. Call Init once all nodes hold their initial vectors.
func NewCoordinator(f *Function, n int, cfg Config, comm NodeComm) *Coordinator {
	return core.NewCoordinator(f, n, cfg, comm)
}

// Decode parses one encoded protocol message.
func Decode(raw []byte) (Message, error) { return core.Decode(raw) }

// Tune runs the neighborhood-size tuning procedure (Algorithm 2 of the
// paper) on a replayable data prefix and returns the recommended size r̂ for
// Config.R.
func Tune(f *Function, data TuningData, n int, cfg Config) (TuneResult, error) {
	return core.Tune(f, data, n, cfg)
}

// HandleNodeMessage applies one coordinator message to a node and returns
// the encoded reply to send back, if any (data requests produce a
// DataResponse; sync and slack messages produce no reply).
func HandleNodeMessage(n *Node, raw []byte) (reply []byte, err error) {
	m, err := core.Decode(raw)
	if err != nil {
		return nil, err
	}
	switch msg := m.(type) {
	case *core.DataRequest:
		resp := &core.DataResponse{NodeID: msg.NodeID, X: n.LocalVector()}
		return resp.Encode(), nil
	case *core.Sync:
		n.ApplySync(msg)
		return nil, nil
	case *core.Slack:
		n.ApplySlack(msg)
		return nil, nil
	}
	return nil, errUnexpected(m)
}

type unexpectedError struct{ t core.MsgType }

func (e unexpectedError) Error() string {
	return "automon: unexpected message type for a node: " + e.t.String()
}

func errUnexpected(m Message) error { return unexpectedError{t: m.Type()} }
