// Intrusion detection: monitor a trained deep neural network's output over
// the aggregate of distributed router-metric streams — the paper's headline
// use case (§1 and §4.2), for which no hand-crafted monitoring scheme is
// known. Run with:
//
//	go run ./examples/intrusion
//
// The program trains a ReLU DNN on a synthetic KDD-99-like intrusion
// workload (the real dataset is not redistributable), then monitors the
// network's output on the average of nine per-application channel windows.
// During attack bursts the aggregate score crosses 0.5; AutoMon keeps the
// coordinator's view within ε while communicating only when channels drift.
package main

import (
	"fmt"

	"automon/internal/core"
	"automon/internal/experiments"
	"automon/internal/sim"
)

func main() {
	fmt.Println("training the intrusion-detection DNN on the synthetic KDD-like workload...")
	w, err := experiments.DNNWorkload(experiments.Options{Quick: true, Seed: 7})
	if err != nil {
		panic(err)
	}

	const eps = 0.02
	res, err := sim.Run(sim.Config{
		F:         w.F,
		Data:      w.Data,
		Algorithm: sim.AutoMon,
		Core:      core.Config{Epsilon: eps, R: w.FixedR, Decomp: w.Decomp},
		Trace:     true,
	})
	if err != nil {
		panic(err)
	}
	central, err := sim.Run(sim.Config{
		F: w.F, Data: w.Data, Algorithm: sim.Centralization,
		Core: core.Config{Epsilon: eps},
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nmonitoring DNN(x̄) over %d channel nodes, %d rounds, ε = %v (ADCD-%v)\n\n",
		w.Data.Nodes, res.Rounds, eps, "X")
	fmt.Println("round   attack score   estimate   alert")
	stride := res.Rounds / 16
	for i := 0; i < res.Rounds; i += stride {
		alert := ""
		if res.EstTrace[i] > 0.5 {
			alert = "  << ATTACK"
		}
		fmt.Printf("%5d   %12.4f   %8.4f%s\n", i, res.TrueTrace[i], res.EstTrace[i], alert)
	}
	fmt.Printf("\nAutoMon: %d messages, max error %.4f (p99 %.4f)\n", res.Messages, res.MaxErr, res.P99Err)
	fmt.Printf("Centralization would need %d messages for an exact view.\n", central.Messages)
	fmt.Printf("Reduction: %.1fx fewer messages.\n", float64(central.Messages)/float64(res.Messages))
}
