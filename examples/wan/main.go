// WAN deployment: run a real coordinator and ten real nodes over TCP
// sockets with injected wide-area latency (28 ms one-way ≈ the paper's
// us-west-2 ↔ us-east-2 RTT of 56 ms), monitoring the inner product of
// drifting vector streams. This is the §4.7 validation in miniature: the
// exact same protocol bytes that the simulator counts flow over real
// connections. Run with:
//
//	go run ./examples/wan
package main

import (
	"fmt"
	"sync"
	"time"

	"automon/internal/core"
	"automon/internal/experiments"
	"automon/internal/linalg"
	"automon/internal/stream"
	"automon/internal/transport"
)

func main() {
	o := experiments.Options{Quick: true, Seed: 5}
	w := experiments.InnerProductWorkload(o, 40, 10)
	ds := w.Data
	const eps = 0.2
	latency := 28 * time.Millisecond

	coord, err := transport.ListenCoordinator("127.0.0.1:0", w.F, ds.Nodes,
		core.Config{Epsilon: eps}, transport.Options{Latency: latency})
	if err != nil {
		panic(err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s (one-way latency %v)\n", coord.Addr(), latency)

	// Prepare each node's window and dial in.
	windows := make([]stream.Windower, ds.Nodes)
	nodes := make([]*transport.NodeClient, ds.Nodes)
	for i := range nodes {
		windows[i] = ds.NewWindow()
		for r := 0; r < ds.FillRounds(); r++ {
			windows[i].Push(ds.FillSample(r, i))
		}
		nodes[i], err = transport.DialNode(coord.Addr(), i, w.F, linalg.Clone(windows[i].Vector()),
			transport.Options{Latency: latency})
		if err != nil {
			panic(err)
		}
		defer nodes[i].Close()
	}
	<-coord.Ready()
	for _, n := range nodes {
		if err := n.WaitReady(time.Minute); err != nil {
			panic(err)
		}
	}
	fmt.Printf("%d nodes registered; initial estimate f(x̄) = %.4f\n\n", ds.Nodes, coord.Estimate())

	// Stream a slice of the dataset concurrently from every node.
	rounds := 350
	start := time.Now()
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if s := ds.Sample(r, i); s != nil {
					windows[i].Push(s)
					if err := nodes[i].Update(windows[i].Vector()); err != nil {
						panic(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if err := coord.Err(); err != nil {
		panic(err)
	}

	elapsed := time.Since(start)
	sent := coord.Stats.MessagesSent.Load()
	recv := coord.Stats.MessagesReceived.Load()
	payload := coord.Stats.PayloadSent.Load() + coord.Stats.PayloadReceived.Load()
	wire := coord.Stats.WireSent.Load() + coord.Stats.WireReceived.Load()
	centralPayload := int64(rounds*ds.Nodes) * int64(8*w.F.Dim()+7)

	fmt.Printf("streamed %d rounds × %d nodes in %v\n", rounds, ds.Nodes, elapsed.Round(time.Millisecond))
	fmt.Printf("estimate f(x̄) = %.4f\n", coord.Estimate())
	fmt.Printf("messages: %d received + %d sent = %d total (centralization: %d)\n",
		recv, sent, recv+sent, rounds*ds.Nodes)
	fmt.Printf("payload:  %d bytes (centralization payload: %d bytes)\n", payload, centralPayload)
	fmt.Printf("traffic:  %d bytes including frame + TCP/IP overhead\n", wire)
	stats := coord.CoordStats()
	fmt.Printf("protocol: %d full syncs, %d lazy-resolved of %d safe-zone violations\n",
		stats.FullSyncs, stats.LazyResolved, stats.SafeZoneViolations)
}
