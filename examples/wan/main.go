// WAN deployment: run a real coordinator and ten real nodes over TCP
// sockets with injected wide-area latency (28 ms one-way ≈ the paper's
// us-west-2 ↔ us-east-2 RTT of 56 ms), monitoring the inner product of
// drifting vector streams. This is the §4.7 validation in miniature: the
// exact same protocol bytes that the simulator counts flow over real
// connections. Run with:
//
//	go run ./examples/wan
//
// Pass -chaos-seed to run the same deployment over a deliberately faulty
// network (injected delays, duplicated frames, and hard disconnects): nodes
// drop off and rejoin mid-stream, and the run still finishes with a valid
// estimate — the transport's fault tolerance at work.
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"automon/internal/core"
	"automon/internal/experiments"
	"automon/internal/linalg"
	"automon/internal/obs"
	"automon/internal/stream"
	"automon/internal/transport"
	"automon/internal/transport/chaos"
)

func main() {
	rounds := flag.Int("rounds", 350, "data rounds to stream per node")
	latency := flag.Duration("latency", 28*time.Millisecond, "injected one-way latency")
	chaosSeed := flag.Int64("chaos-seed", 0, "when non-zero, inject connection faults from this seed")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address, e.g. 127.0.0.1:7800 (empty = disabled); scrape /metrics mid-run")
	flag.Parse()

	o := experiments.Options{Quick: true, Seed: 5}
	w := experiments.InnerProductWorkload(o, 40, 10)
	ds := w.Data
	const eps = 0.2
	if *rounds > ds.Rounds {
		fmt.Printf("clamping -rounds %d to the dataset's %d monitored rounds\n", *rounds, ds.Rounds)
		*rounds = ds.Rounds
	}

	opts := transport.Options{Latency: *latency}
	if *obsAddr != "" {
		// One registry and tracer cover the whole in-process deployment: the
		// coordinator side and all ten node clients register under distinct
		// label sets, so a single /metrics scrape shows the full cluster.
		opts.Metrics = obs.NewRegistry()
		opts.Tracer = obs.NewTracer(4096)
		srv, err := obs.Serve(*obsAddr, opts.Metrics, opts.Tracer)
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		fmt.Printf("observability: curl http://%s/metrics (also /debug/vars, /debug/events, /debug/pprof)\n", srv.Addr)
	}
	var dialer *chaos.Dialer
	if *chaosSeed != 0 {
		dialer = chaos.NewDialer(chaos.Config{
			Seed:     *chaosSeed,
			MaxDelay: 2 * time.Millisecond,
			Write:    chaos.FaultRates{Delay: 0.05, Duplicate: 0.02, Disconnect: 0.01},
			Read:     chaos.FaultRates{Delay: 0.05, Disconnect: 0.01},
		})
		dialer.SetEnabled(false) // bring the cluster up clean, then misbehave
		opts.Dial = dialer.Dial
		opts.ReconnectBase = 10 * time.Millisecond
		opts.MaxReconnectAttempts = 20
		opts.RequestTimeout = 5 * time.Second
		opts.ResolveTimeout = 5 * time.Second
	}

	coord, err := transport.ListenCoordinator("127.0.0.1:0", w.F, ds.Nodes,
		core.Config{Epsilon: eps}, opts)
	if err != nil {
		panic(err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s (one-way latency %v)\n", coord.Addr(), *latency)

	// Prepare each node's window and dial in.
	windows := make([]stream.Windower, ds.Nodes)
	nodes := make([]*transport.NodeClient, ds.Nodes)
	for i := range nodes {
		windows[i] = ds.NewWindow()
		for r := 0; r < ds.FillRounds(); r++ {
			windows[i].Push(ds.FillSample(r, i))
		}
		nodes[i], err = transport.DialNode(coord.Addr(), i, w.F, linalg.Clone(windows[i].Vector()), opts)
		if err != nil {
			panic(err)
		}
		defer nodes[i].Close()
	}
	<-coord.Ready()
	for _, n := range nodes {
		if err := n.WaitReady(time.Minute); err != nil {
			panic(err)
		}
	}
	fmt.Printf("%d nodes registered; initial estimate f(x̄) = %.4f\n\n", ds.Nodes, coord.Estimate())
	if dialer != nil {
		dialer.SetEnabled(true)
		fmt.Printf("chaos enabled (seed %d): injecting delays, duplicates, disconnects\n\n", *chaosSeed)
	}

	// Stream a slice of the dataset concurrently from every node.
	start := time.Now()
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < *rounds; r++ {
				if s := ds.Sample(r, i); s != nil {
					windows[i].Push(s)
					if err := nodes[i].Update(windows[i].Vector()); err != nil {
						if perm := nodes[i].Err(); perm != nil {
							panic(perm)
						}
						// Transient: a fault stalled this resolution; the
						// reconnect loop repairs the connection underneath.
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if err := coord.Err(); err != nil {
		panic(err)
	}

	elapsed := time.Since(start)
	sent := coord.Stats.MessagesSent.Load()
	recv := coord.Stats.MessagesReceived.Load()
	payload := coord.Stats.PayloadSent.Load() + coord.Stats.PayloadReceived.Load()
	wire := coord.Stats.WireSent.Load() + coord.Stats.WireReceived.Load()
	centralPayload := int64(*rounds*ds.Nodes) * int64(8*w.F.Dim()+7)

	fmt.Printf("streamed %d rounds × %d nodes in %v\n", *rounds, ds.Nodes, elapsed.Round(time.Millisecond))
	fmt.Printf("estimate f(x̄) = %.4f\n", coord.Estimate())
	fmt.Printf("messages: %d received + %d sent = %d total (centralization: %d)\n",
		recv, sent, recv+sent, *rounds*ds.Nodes)
	fmt.Printf("payload:  %d bytes (centralization payload: %d bytes)\n", payload, centralPayload)
	fmt.Printf("traffic:  %d bytes including frame + TCP/IP overhead\n", wire)
	stats := coord.CoordStats()
	fmt.Printf("protocol: %d full syncs, %d lazy-resolved of %d safe-zone violations\n",
		stats.FullSyncs, stats.LazyResolved, stats.SafeZoneViolations)
	if dialer != nil {
		var reconnects int64
		for _, n := range nodes {
			reconnects += n.Reconnects()
		}
		fmt.Printf("faults:   %d injected (%d disconnects); %d node rejoins, %d deaths observed; degraded now: %v\n",
			dialer.Stats.Total(), dialer.Stats.Disconnects.Load(),
			reconnects, stats.NodeDeaths, coord.Degraded())
	}
}
