// Smoke tests for the runnable examples: each one is executed as a real
// `go run` subprocess with a tiny round count and a hard timeout, asserting
// it exits cleanly and prints its summary. This keeps the examples honest —
// they compile against the current API and actually run end to end.
package examples_test

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", append([]string{"run", "./" + pkg}, args...)...)
	cmd.Dir = ".." // module root
	out, err := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("%s timed out\n%s", pkg, out)
	}
	if err != nil {
		t.Fatalf("%s: %v\n%s", pkg, err, out)
	}
	return string(out)
}

func TestQuickstartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	out := runExample(t, "examples/quickstart", "-rounds", "25")
	if !strings.Contains(out, "max error") {
		t.Fatalf("quickstart did not print its summary:\n%s", out)
	}
}

func TestWANSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	out := runExample(t, "examples/wan", "-rounds", "5", "-latency", "1ms")
	if !strings.Contains(out, "estimate f(x̄)") {
		t.Fatalf("wan did not print its summary:\n%s", out)
	}
}

func TestWANChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	out := runExample(t, "examples/wan", "-rounds", "8", "-latency", "1ms", "-chaos-seed", "3")
	if !strings.Contains(out, "chaos enabled") || !strings.Contains(out, "faults:") {
		t.Fatalf("wan chaos run did not report fault injection:\n%s", out)
	}
}

func TestSketchF2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	out := runExample(t, "examples/sketchf2", "-events", "800")
	if !strings.Contains(out, "protocol outcomes identical: true") {
		t.Fatalf("sketchf2 elided and per-event runs diverged:\n%s", out)
	}
	if !strings.Contains(out, "% skipped") || !strings.Contains(out, "max error") {
		t.Fatalf("sketchf2 did not print its elision summary:\n%s", out)
	}
}

func TestSketchF2DirectSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	out := runExample(t, "examples/sketchf2", "-direct", "-rounds", "60")
	if !strings.Contains(out, "max error") || !strings.Contains(out, "reduction") {
		t.Fatalf("sketchf2 -direct did not print its summary:\n%s", out)
	}
}

func TestMultitenantSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	out := runExample(t, "examples/multitenant", "-rounds", "15")
	for _, want := range []string{"group 0", "group 1", "group 2", "frames"} {
		if !strings.Contains(out, want) {
			t.Fatalf("multitenant summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "false") {
		t.Fatalf("a group's estimate left its ε bound:\n%s", out)
	}
}
