// Quickstart: monitor a custom nonlinear function of the average of three
// drifting local vectors with the public automon API, using an in-memory
// messaging loop. Run with:
//
//	go run ./examples/quickstart
//
// The program defines f(x) = tanh(x₁·x₂) + x₁² from "source code" (an
// autodiff program), asks for an additive ε = 0.05 approximation, and prints
// how the coordinator's estimate tracks the true value while counting every
// message the protocol needed. Compare the message count with what
// centralization would use (one message per node per update).
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"

	"automon"
)

// loop is the minimal in-memory messaging fabric: coordinator calls arrive
// as encoded bytes at the node, exactly like over a real network.
type loop struct {
	nodes    []*automon.Node
	messages int
}

func (l *loop) RequestData(id int) []float64 {
	l.messages += 2 // request + response
	reply, err := automon.HandleNodeMessage(l.nodes[id], (&automon.DataRequest{NodeID: id}).Encode())
	if err != nil {
		panic(err)
	}
	m, err := automon.Decode(reply)
	if err != nil {
		panic(err)
	}
	return m.(*automon.DataResponse).X
}

func (l *loop) SendSync(id int, m *automon.Sync) {
	l.messages++
	if _, err := automon.HandleNodeMessage(l.nodes[id], m.Encode()); err != nil {
		panic(err)
	}
}

func (l *loop) SendSlack(id int, m *automon.Slack) {
	l.messages++
	if _, err := automon.HandleNodeMessage(l.nodes[id], m.Encode()); err != nil {
		panic(err)
	}
}

func main() {
	rounds := flag.Int("rounds", 600, "data rounds to stream")
	flag.Parse()

	// The function to monitor, written once as a differentiable program —
	// no manual analysis of its curvature is ever needed.
	f := automon.NewFunction("tanh-mix", 2, func(b *automon.Builder, x []automon.Ref) automon.Ref {
		return b.Add(b.Tanh(b.Mul(x[0], x[1])), b.Square(x[0]))
	})

	const (
		n   = 3
		eps = 0.05
	)
	rng := rand.New(rand.NewSource(42))

	comm := &loop{}
	for i := 0; i < n; i++ {
		node := automon.NewNode(i, f)
		node.SetData([]float64{0.2, 0.2})
		comm.nodes = append(comm.nodes, node)
	}
	coord := automon.NewCoordinator(f, n, automon.Config{Epsilon: eps, R: 0.5}, comm)
	if err := coord.Init(); err != nil {
		panic(err)
	}

	fmt.Printf("monitoring f(x̄) = tanh(x₁x₂) + x₁² with ε = %v over %d nodes\n\n", eps, n)
	fmt.Println("round   true f(x̄)   estimate   error     messages")

	locals := [][]float64{{0.2, 0.2}, {0.2, 0.2}, {0.2, 0.2}}
	maxErr := 0.0
	for r := 1; r <= *rounds; r++ {
		for i, node := range comm.nodes {
			// Each node drifts along its own noisy path.
			locals[i][0] += 0.0005*float64(i+1) + rng.NormFloat64()*0.001
			locals[i][1] += 0.0004 + rng.NormFloat64()*0.001
			if v := node.UpdateData(locals[i]); v != nil {
				comm.messages++ // the violation report itself
				if err := coord.HandleViolation(v); err != nil {
					panic(err)
				}
			}
		}
		truth := f.Value([]float64{
			(locals[0][0] + locals[1][0] + locals[2][0]) / 3,
			(locals[0][1] + locals[1][1] + locals[2][1]) / 3,
		})
		e := math.Abs(coord.Estimate() - truth)
		if e > maxErr {
			maxErr = e
		}
		if r%100 == 0 {
			fmt.Printf("%5d   %9.5f   %8.5f   %7.5f   %d\n", r, truth, coord.Estimate(), e, comm.messages)
		}
	}
	fmt.Printf("\nmax error %.5f (bound %.2f); %d messages vs %d for centralization\n",
		maxErr, eps, comm.messages, *rounds*n)
}
