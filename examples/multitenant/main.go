// Multi-tenant deployment: one coordinator process hosts three independent
// monitoring groups — three different functions over three different node
// fleets — behind a single TCP listener, with outbound frame batching
// enabled. Each group's nodes register with their group id, the wire
// negotiates the group-tagged batch framing per connection, and the shared
// metrics registry keeps every group's counters apart under group labels.
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"flag"
	"fmt"
	"math"
	"sync"
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/linalg"
	"automon/internal/obs"
	"automon/internal/transport"
)

// tenant is one monitoring group: a function, its fleet, and a
// deterministic drift schedule (round 0 is the initial vector).
type tenant struct {
	gid   transport.GroupID
	name  string
	f     *core.Function
	eps   float64
	nodes int
	gen   func(round, node int) []float64

	coord   *transport.Coordinator
	clients []*transport.NodeClient
	vecs    [][]float64 // oracle copy of every node's current vector
}

func main() {
	rounds := flag.Int("rounds", 60, "data rounds to stream per node")
	batchBytes := flag.Int("batch-bytes", 4096, "flush a batch frame at this body size")
	batchDelay := flag.Duration("batch-delay", time.Millisecond, "flush a batch frame after this delay")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address (empty = disabled); /metrics shows all groups under group labels")
	flag.Parse()

	tenants := []*tenant{
		{gid: 0, name: "inner-product", f: funcs.InnerProduct(2), eps: 0.2, nodes: 3,
			gen: func(r, i int) []float64 {
				u := 0.5 + 0.02*float64(r) + 0.03*float64(i)
				return []float64{u, u, 1, 1}
			}},
		{gid: 1, name: "variance", f: funcs.Variance(), eps: 0.2, nodes: 3,
			gen: func(r, i int) []float64 {
				return funcs.AugmentSquares(1 + 0.05*float64(r) + 0.4*float64(i))
			}},
		{gid: 2, name: "sqnorm", f: funcs.SqNorm(3), eps: 0.3, nodes: 2,
			gen: func(r, i int) []float64 {
				v := 0.4 + 0.02*float64(r) + 0.05*float64(i)
				return []float64{v, v, v}
			}},
	}

	opts := transport.Options{
		Batch: transport.BatchOptions{MaxBytes: *batchBytes, MaxDelay: *batchDelay},
	}
	opts.Metrics = obs.NewRegistry()
	if *obsAddr != "" {
		opts.Tracer = obs.NewTracer(4096)
		srv, err := obs.Serve(*obsAddr, opts.Metrics, opts.Tracer)
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		fmt.Printf("observability: curl http://%s/metrics — every series carries its group label\n", srv.Addr)
	}

	mc, err := transport.ListenMulti("127.0.0.1:0", opts)
	if err != nil {
		panic(err)
	}
	defer mc.Close()
	fmt.Printf("multitenant coordinator on %s hosting %d groups (batch ≤ %d B / %v)\n",
		mc.Addr(), len(tenants), *batchBytes, *batchDelay)

	for _, tn := range tenants {
		tn.coord, err = mc.AddGroup(tn.gid, tn.f, tn.nodes, core.Config{Epsilon: tn.eps})
		if err != nil {
			panic(err)
		}
		nodeOpts := opts
		nodeOpts.Group = tn.gid
		for i := 0; i < tn.nodes; i++ {
			x := tn.gen(0, i)
			tn.vecs = append(tn.vecs, linalg.Clone(x))
			nd, err := transport.DialNode(mc.Addr(), i, tn.f, x, nodeOpts)
			if err != nil {
				panic(err)
			}
			tn.clients = append(tn.clients, nd)
		}
	}
	for _, tn := range tenants {
		<-tn.coord.Ready()
		for _, nd := range tn.clients {
			if err := nd.WaitReady(time.Minute); err != nil {
				panic(err)
			}
		}
		fmt.Printf("  group %d (%s): %d nodes registered, f(x̄) = %.4g\n",
			tn.gid, tn.name, tn.nodes, tn.coord.Estimate())
	}

	// Every group streams concurrently — the listener, accept loop, and
	// registry are shared; the protocol instances are not.
	var wg sync.WaitGroup
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn *tenant) {
			defer wg.Done()
			for r := 1; r <= *rounds; r++ {
				for i, nd := range tn.clients {
					x := tn.gen(r, i)
					if err := nd.Update(x); err != nil {
						panic(fmt.Sprintf("group %d node %d: %v", tn.gid, i, err))
					}
					copy(tn.vecs[i], x)
				}
			}
		}(tn)
	}
	wg.Wait()

	// Let trailing resolutions and batched frames land before the summary.
	time.Sleep(250 * time.Millisecond)
	fmt.Println()
	for _, tn := range tenants {
		avg := make([]float64, tn.f.Dim())
		linalg.Mean(avg, tn.vecs...)
		truth := tn.f.Value(avg)
		est := tn.coord.Estimate()
		sent := tn.coord.Stats.MessagesSent.Load()
		frames := tn.coord.Stats.FramesSent.Load()
		saved := tn.coord.Stats.BatchOverheadSent.Load()
		fmt.Printf("group %d (%s): estimate %.4g vs truth %.4g (|err| %.3g ≤ ε %.3g: %v)\n",
			tn.gid, tn.name, est, truth, math.Abs(est-truth), tn.eps, math.Abs(est-truth) <= tn.eps+1e-9)
		fmt.Printf("  coordinator sent %d messages in %d frames (%d batch-header bytes); received %d messages\n",
			sent, frames, saved, tn.coord.Stats.MessagesReceived.Load())
	}
	if rej := mc.RejectedRegistrations(); rej != 0 {
		fmt.Printf("rejected registrations: %d\n", rej)
	}
	for _, tn := range tenants {
		for _, nd := range tn.clients {
			nd.Close()
		}
	}
}
