// Sketch composition (§5 of the paper): monitor the second frequency moment
// (F₂) of a distributed update stream by sketching locally and monitoring
// the query function of the *average sketch*. Because AMS sketches are
// linear, the average of the node sketches is the sketch of the averaged
// stream, and because the F₂ query is a quadratic form, AutoMon derives an
// exact ADCD-E decomposition — a deterministic ε-guarantee on a sketched
// statistic.
//
// The default path feeds raw turnstile events through the ingestion layer
// (internal/ingest) with safe-zone check elision: almost every event costs
// one sketch update plus one budget debit instead of a full safe-zone
// check, with bit-identical protocol outcomes — demonstrated by running the
// per-event pipeline on the same events alongside. The -direct flag keeps
// the original round-windowed sim path. Run with:
//
//	go run ./examples/sketchf2
//	go run ./examples/sketchf2 -direct
package main

import (
	"flag"
	"fmt"
	"math"
	"reflect"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/ingest"
	"automon/internal/sim"
	"automon/internal/stream"
)

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	direct := flag.Bool("direct", false, "use the round-windowed sim path instead of the event-level ingestion pipeline")
	events := flag.Int("events", 3000, "monitored events per node (ingestion path)")
	rounds := flag.Int("rounds", 800, "monitored rounds (-direct path)")
	flag.Parse()
	if *direct {
		runDirect(*rounds)
		return
	}
	runIngest(*events)
}

// runIngest is the event-level path: sketch-backed sources, check elision on
// the monitored pipeline, and a per-event twin run proving the elision is
// protocol-invisible.
func runIngest(events int) {
	const (
		rows, cols = 4, 64
		nodes      = 8
		warm       = 400
		eps        = 0.1
	)
	f := funcs.AMSF2(rows, cols)
	ev := stream.SketchEpisodes(nodes, warm, events, 23)

	fmt.Printf("ingesting %d events/node across %d nodes (AMS %d×%d = %d-dim local state, ε = %v)\n\n",
		events, nodes, rows, cols, f.Dim(), eps)

	run := func(elide bool) (*ingest.Pipeline, float64) {
		srcs := make([]ingest.Source, nodes)
		for i := range srcs {
			s, err := ingest.NewAMSSource(rows, cols, 42, 1.0/warm)
			check(err)
			for _, u := range ev.Warm[i] {
				s.Apply(u)
			}
			srcs[i] = s
		}
		p, err := ingest.NewPipeline(ingest.Config{
			F:       f,
			Core:    core.Config{Epsilon: eps},
			Sources: srcs,
			Options: ingest.Options{Elide: elide},
		})
		check(err)
		check(p.Init())
		vec := make([]float64, f.Dim())
		avg := make([]float64, f.Dim())
		maxErr := 0.0
		for k := 0; k < ev.EventsPerNode(); k++ {
			for i := 0; i < nodes; i++ {
				if k < len(ev.PerNode[i]) {
					check(p.Ingest(i, ev.PerNode[i][k]))
				}
			}
			for j := range avg {
				avg[j] = 0
			}
			for _, s := range srcs {
				s.VectorInto(vec)
				for j := range avg {
					avg[j] += vec[j]
				}
			}
			for j := range avg {
				avg[j] /= nodes
			}
			if e := math.Abs(p.Estimate() - f.Value(avg)); e > maxErr {
				maxErr = e
			}
		}
		return p, maxErr
	}

	elided, maxErr := run(true)
	perEvent, _ := run(false)

	st, tf := elided.Stats(), elided.Traffic()
	fmt.Printf("elided:    %d events, %d exact checks (%.1f%% skipped), %d violations, %d messages\n",
		st.Events, st.Checks, 100*float64(st.Elided)/float64(st.Events), len(elided.Log), tf.Messages)
	stp := perEvent.Stats()
	fmt.Printf("per-event: %d events, %d exact checks, %d violations, %d messages\n",
		stp.Events, stp.Checks, len(perEvent.Log), perEvent.Traffic().Messages)

	identical := reflect.DeepEqual(elided.Log, perEvent.Log) &&
		math.Float64bits(elided.Estimate()) == math.Float64bits(perEvent.Estimate())
	fmt.Printf("\nprotocol outcomes identical: %v\n", identical)
	fmt.Printf("max error %.4f (bound %v, deterministic: ADCD-E on a quadratic query)\n", maxErr, eps)
}

// runDirect is the original round-windowed demo on the sim harness.
func runDirect(rounds int) {
	const (
		rows, cols = 4, 64
		nodes      = 8
		eps        = 0.05
	)
	f := funcs.AMSF2(rows, cols)
	ds := stream.ZipfTurnstile(nodes, rounds, rows, cols, 23)

	fmt.Printf("monitoring sketched F2 over %d nodes (AMS %d×%d = %d-dim local state, ε = %v)\n\n",
		nodes, rows, cols, f.Dim(), eps)

	res, err := sim.Run(sim.Config{
		F: f, Data: ds, Algorithm: sim.AutoMon,
		Core: core.Config{Epsilon: eps}, Trace: true,
	})
	check(err)
	central, err := sim.Run(sim.Config{
		F: f, Data: ds, Algorithm: sim.Centralization, Core: core.Config{Epsilon: eps},
	})
	check(err)

	fmt.Println("round   sketched F2   estimate")
	stride := res.Rounds / 16
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < res.Rounds; i += stride {
		marker := ""
		if res.TrueTrace[i] > 2*res.TrueTrace[0]+eps {
			marker = "  << heavy-hitter burst"
		}
		fmt.Printf("%5d   %11.4f   %8.4f%s\n", i, res.TrueTrace[i], res.EstTrace[i], marker)
	}
	fmt.Printf("\nmax error %.4f (bound %v, deterministic: ADCD-E on a quadratic query)\n", res.MaxErr, eps)
	fmt.Printf("messages: %d vs %d for centralizing every sketch update (%.1fx reduction)\n",
		res.Messages, central.Messages, float64(central.Messages)/float64(res.Messages))
}
