// Sketch composition (§5 of the paper): monitor the second frequency moment
// (F₂) of a distributed update stream by sketching locally and monitoring
// the query function of the *average sketch*. Because AMS sketches are
// linear, the average of the node sketches is the sketch of the averaged
// stream, and because the F₂ query is a quadratic form, AutoMon derives an
// exact ADCD-E decomposition — a deterministic ε-guarantee on a sketched
// statistic. Run with:
//
//	go run ./examples/sketchf2
package main

import (
	"fmt"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/sim"
	"automon/internal/stream"
)

func main() {
	const (
		rows, cols = 4, 64
		nodes      = 8
		rounds     = 800
		eps        = 0.05
	)
	f := funcs.AMSF2(rows, cols)
	ds := stream.ZipfTurnstile(nodes, rounds, rows, cols, 23)

	fmt.Printf("monitoring sketched F2 over %d nodes (AMS %d×%d = %d-dim local state, ε = %v)\n\n",
		nodes, rows, cols, f.Dim(), eps)

	res, err := sim.Run(sim.Config{
		F: f, Data: ds, Algorithm: sim.AutoMon,
		Core: core.Config{Epsilon: eps}, Trace: true,
	})
	if err != nil {
		panic(err)
	}
	central, err := sim.Run(sim.Config{
		F: f, Data: ds, Algorithm: sim.Centralization, Core: core.Config{Epsilon: eps},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("round   sketched F2   estimate")
	stride := res.Rounds / 16
	for i := 0; i < res.Rounds; i += stride {
		marker := ""
		if res.TrueTrace[i] > 2*res.TrueTrace[0]+eps {
			marker = "  << heavy-hitter burst"
		}
		fmt.Printf("%5d   %11.4f   %8.4f%s\n", i, res.TrueTrace[i], res.EstTrace[i], marker)
	}
	fmt.Printf("\nmax error %.4f (bound %v, deterministic: ADCD-E on a quadratic query)\n", res.MaxErr, eps)
	fmt.Printf("messages: %d vs %d for centralizing every sketch update (%.1fx reduction)\n",
		res.Messages, central.Messages, float64(central.Messages)/float64(res.Messages))
}
