// Air quality: monitor the Kullback–Leibler divergence between the PM10 and
// PM2.5 histograms aggregated over 12 monitoring sites (the paper's §4.2
// real-world KLD workload, here driven by the synthetic Beijing-like
// generator). Because KLD is jointly convex, AutoMon's approximation
// guarantee is deterministic here. Run with:
//
//	go run ./examples/airquality
package main

import (
	"fmt"

	"automon/internal/core"
	"automon/internal/experiments"
	"automon/internal/sim"
)

func main() {
	o := experiments.Options{Quick: true, Seed: 3}
	w := experiments.KLDWorkload(o, 20, 12, 4000)

	const eps = 0.02
	fmt.Printf("monitoring KLD(PM10 ‖ PM2.5) over %d sites with ε = %v (tuning the neighborhood first)\n\n",
		w.Data.Nodes, eps)

	res, err := sim.Run(sim.Config{
		F:          w.F,
		Data:       w.Data,
		Algorithm:  sim.AutoMon,
		Core:       core.Config{Epsilon: eps, Decomp: w.Decomp},
		TuneRounds: w.TuneRounds,
		Trace:      true,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("hour    true KLD   estimate   error")
	stride := res.Rounds / 16
	for i := 0; i < res.Rounds; i += stride {
		fmt.Printf("%5d   %8.4f   %8.4f   %.4f\n", i, res.TrueTrace[i], res.EstTrace[i], res.ErrTrace[i])
	}
	fmt.Printf("\ntuned neighborhood size r̂ = %.4g\n", res.TunedR)
	fmt.Printf("messages: %d (%d full syncs, %d lazy-resolved violations)\n",
		res.Messages, res.Stats.FullSyncs, res.Stats.LazyResolved)
	fmt.Printf("max error %.4f — the deterministic ε = %v bound held on every round: %v\n",
		res.MaxErr, eps, res.MissedRounds == 0)
}
