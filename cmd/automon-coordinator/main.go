// automon-coordinator runs an AutoMon coordinator behind a TCP listener for
// a distributed deployment. Start it first, then launch one automon-node per
// node id with the same -func and -seed so both sides build identical
// models.
//
//	automon-coordinator -addr :7700 -func inner-product -nodes 10 -eps 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"automon/internal/core"
	"automon/internal/experiments"
	"automon/internal/obs"
	"automon/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	fn := flag.String("func", "inner-product", "workload name (must match the nodes)")
	nodes := flag.Int("nodes", 10, "number of nodes that will register")
	eps := flag.Float64("eps", 0.1, "approximation error bound ε")
	r := flag.Float64("r", 1, "ADCD-X neighborhood size")
	seed := flag.Int64("seed", 1, "master seed (must match the nodes)")
	full := flag.Bool("full", false, "full-size parameters")
	latency := flag.Duration("latency", 0, "injected one-way latency per message")
	report := flag.Duration("report", 2*time.Second, "estimate reporting interval")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address serving /metrics, /debug/vars, /debug/events, and /debug/pprof (empty = disabled)")
	flag.Parse()

	o := experiments.Options{Quick: !*full, Seed: *seed}
	w, err := experiments.NamedWorkload(*fn, o)
	if err != nil {
		fail(err)
	}
	cfg := core.Config{Epsilon: *eps, R: *r, Decomp: w.Decomp}
	if w.FixedR > 0 {
		cfg.R = w.FixedR
	}

	opts := transport.Options{Latency: *latency}
	if *obsAddr != "" {
		opts.Metrics = obs.NewRegistry()
		opts.Tracer = obs.NewTracer(1024)
		srv, err := obs.Serve(*obsAddr, opts.Metrics, opts.Tracer)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("automon-coordinator: observability on http://%s/metrics\n", srv.Addr)
	}

	coord, err := transport.ListenCoordinator(*addr, w.F, *nodes, cfg, opts)
	if err != nil {
		fail(err)
	}
	defer coord.Close()
	fmt.Printf("automon-coordinator: listening on %s for %d nodes (f = %s, ε = %g)\n",
		coord.Addr(), *nodes, w.Name, *eps)

	select {
	case <-coord.Ready():
	case <-time.After(5 * time.Minute):
		fail(fmt.Errorf("nodes never registered"))
	}
	fmt.Println("automon-coordinator: all nodes registered, monitoring")

	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	for range ticker.C {
		if err := coord.Err(); err != nil {
			// Connection churn is survivable (nodes are marked dead and can
			// rejoin); only protocol-level faults land here and end the run.
			stats := coord.CoordStats()
			fmt.Printf("automon-coordinator: shutting down (%v)\n", err)
			fmt.Printf("  full syncs %d, lazy resolved %d/%d, violations: %d neighborhood / %d safe-zone / %d faulty\n",
				stats.FullSyncs, stats.LazyResolved, stats.LazyAttempts,
				stats.NeighborhoodViolations, stats.SafeZoneViolations, stats.FaultyViolations)
			fmt.Printf("  liveness: %d node deaths, %d rejoins\n", stats.NodeDeaths, stats.Rejoins)
			fmt.Printf("  traffic: sent %d msgs / %d payload bytes / %d wire bytes; received %d msgs / %d payload bytes\n",
				coord.Stats.MessagesSent.Load(), coord.Stats.PayloadSent.Load(), coord.Stats.WireSent.Load(),
				coord.Stats.MessagesReceived.Load(), coord.Stats.PayloadReceived.Load())
			return
		}
		status := ""
		if coord.Degraded() {
			// The ε-guarantee currently covers the live nodes only.
			status = fmt.Sprintf("  DEGRADED: %d/%d nodes live", coord.LiveNodes(), *nodes)
		}
		fmt.Printf("estimate f(x̄) ≈ %.6g  (msgs in/out: %d/%d)%s\n",
			coord.Estimate(), coord.Stats.MessagesReceived.Load(), coord.Stats.MessagesSent.Load(), status)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "automon-coordinator:", err)
	os.Exit(1)
}
