// automon-coordinator runs an AutoMon coordinator behind a TCP listener for
// a distributed deployment. Start it first, then launch one automon-node per
// node id with the same -func and -seed so both sides build identical
// models.
//
//	automon-coordinator -addr :7700 -func inner-product -nodes 10 -eps 0.1
//
// With -groups the same listener hosts several monitoring groups at once —
// one per named workload, group ids assigned in order — and nodes pick their
// tenant with automon-node -group:
//
//	automon-coordinator -addr :7700 -groups inner-product,quadratic -nodes 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"automon/internal/core"
	"automon/internal/experiments"
	"automon/internal/obs"
	"automon/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	fn := flag.String("func", "inner-product", "workload name (must match the nodes)")
	groups := flag.String("groups", "", "comma-separated workload names hosted as groups 0..k-1 on this listener (overrides -func)")
	nodes := flag.Int("nodes", 10, "number of nodes that will register (per group)")
	eps := flag.Float64("eps", 0.1, "approximation error bound ε")
	r := flag.Float64("r", 1, "ADCD-X neighborhood size")
	seed := flag.Int64("seed", 1, "master seed (must match the nodes)")
	full := flag.Bool("full", false, "full-size parameters")
	latency := flag.Duration("latency", 0, "injected one-way latency per message")
	batchBytes := flag.Int("batch-bytes", 0, "coalesce outbound messages into one frame up to this many body bytes (0 = batching off)")
	batchDelay := flag.Duration("batch-delay", 0, "longest a coalesced message may wait before its frame is flushed")
	report := flag.Duration("report", 2*time.Second, "estimate reporting interval")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address serving /metrics, /debug/vars, /debug/events, and /debug/pprof (empty = disabled)")
	eigBackend := flag.String("eig-backend", "", `eigen-engine for ADCD-X zone builds: "lbfgs" (default), "interval" (certified), or "hybrid"`)
	hybridSlack := flag.Float64("hybrid-slack", 0, "hybrid escalation threshold (0 = default, negative = never refine)")
	adaptiveR := flag.Bool("adaptive-r", false, "enable the drift-aware radius controller (re-tunes r online, shrinking as well as growing)")
	rMax := flag.Float64("r-max", 0, "cap on §3.6 radius doubling (0 = derive from the domain or configured r, negative = uncapped)")
	adaptiveWindow := flag.Int("adaptive-window", 0, "full-sync snapshots retained as the re-tuning window (0 = default)")
	adaptiveAlpha := flag.Float64("adaptive-alpha", 0, "EWMA decay per handled violation for the controller's triggers (0 = default)")
	adaptiveCooldown := flag.Int("adaptive-cooldown", 0, "violations between re-tune attempts (0 = default)")
	flag.Parse()

	radius := radiusOptions{
		adaptive: *adaptiveR, rMax: *rMax,
		window: *adaptiveWindow, alpha: *adaptiveAlpha, cooldown: *adaptiveCooldown,
	}

	backend, err := core.ParseEigBackend(*eigBackend)
	if err != nil {
		fail(err)
	}
	o := experiments.Options{Quick: !*full, Seed: *seed, EigBackend: backend, HybridSlack: *hybridSlack}
	opts := transport.Options{
		Latency: *latency,
		Batch:   transport.BatchOptions{MaxBytes: *batchBytes, MaxDelay: *batchDelay},
	}
	if *obsAddr != "" {
		opts.Metrics = obs.NewRegistry()
		opts.Tracer = obs.NewTracer(1024)
		srv, err := obs.Serve(*obsAddr, opts.Metrics, opts.Tracer)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("automon-coordinator: observability on http://%s/metrics\n", srv.Addr)
	}

	if *groups != "" {
		runMulti(strings.Split(*groups, ","), *addr, *nodes, *eps, *r, radius, o, opts, *report)
		return
	}

	w, err := experiments.NamedWorkload(*fn, o)
	if err != nil {
		fail(err)
	}
	cfg := workloadConfig(w, *eps, *r, radius)

	coord, err := transport.ListenCoordinator(*addr, w.F, *nodes, cfg, opts)
	if err != nil {
		fail(err)
	}
	defer coord.Close()
	fmt.Printf("automon-coordinator: listening on %s for %d nodes (f = %s, ε = %g)\n",
		coord.Addr(), *nodes, w.Name, *eps)

	select {
	case <-coord.Ready():
	case <-time.After(5 * time.Minute):
		fail(fmt.Errorf("nodes never registered"))
	}
	fmt.Println("automon-coordinator: all nodes registered, monitoring")

	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	for range ticker.C {
		if err := coord.Err(); err != nil {
			// Connection churn is survivable (nodes are marked dead and can
			// rejoin); only protocol-level faults land here and end the run.
			stats := coord.CoordStats()
			fmt.Printf("automon-coordinator: shutting down (%v)\n", err)
			fmt.Printf("  full syncs %d, lazy resolved %d/%d, violations: %d neighborhood / %d safe-zone / %d faulty\n",
				stats.FullSyncs, stats.LazyResolved, stats.LazyAttempts,
				stats.NeighborhoodViolations, stats.SafeZoneViolations, stats.FaultyViolations)
			fmt.Printf("  liveness: %d node deaths, %d rejoins\n", stats.NodeDeaths, stats.Rejoins)
			fmt.Printf("  traffic: sent %d msgs / %d payload bytes / %d wire bytes; received %d msgs / %d payload bytes\n",
				coord.Stats.MessagesSent.Load(), coord.Stats.PayloadSent.Load(), coord.Stats.WireSent.Load(),
				coord.Stats.MessagesReceived.Load(), coord.Stats.PayloadReceived.Load())
			return
		}
		status := ""
		if coord.Degraded() {
			// The ε-guarantee currently covers the live nodes only.
			status = fmt.Sprintf("  DEGRADED: %d/%d nodes live", coord.LiveNodes(), *nodes)
		}
		fmt.Printf("estimate f(x̄) ≈ %.6g  (msgs in/out: %d/%d)%s\n",
			coord.Estimate(), coord.Stats.MessagesReceived.Load(), coord.Stats.MessagesSent.Load(), status)
	}
}

// runMulti hosts one monitoring group per named workload on a single
// listener and reports every group's estimate each tick.
func runMulti(names []string, addr string, nodes int, eps, r float64,
	radius radiusOptions, o experiments.Options, opts transport.Options, report time.Duration) {
	mc, err := transport.ListenMulti(addr, opts)
	if err != nil {
		fail(err)
	}
	defer mc.Close()

	type tenant struct {
		gid   transport.GroupID
		name  string
		coord *transport.Coordinator
	}
	tenants := make([]tenant, 0, len(names))
	for gid, name := range names {
		name = strings.TrimSpace(name)
		w, err := experiments.NamedWorkload(name, o)
		if err != nil {
			fail(err)
		}
		c, err := mc.AddGroup(transport.GroupID(gid), w.F, nodes, workloadConfig(w, eps, r, radius))
		if err != nil {
			fail(err)
		}
		tenants = append(tenants, tenant{gid: transport.GroupID(gid), name: w.Name, coord: c})
	}
	fmt.Printf("automon-coordinator: listening on %s for %d groups × %d nodes (ε = %g)\n",
		mc.Addr(), len(tenants), nodes, eps)
	for _, tn := range tenants {
		select {
		case <-tn.coord.Ready():
			fmt.Printf("  group %d (%s): all nodes registered\n", tn.gid, tn.name)
		case <-time.After(5 * time.Minute):
			fail(fmt.Errorf("group %d (%s): nodes never registered", tn.gid, tn.name))
		}
	}

	ticker := time.NewTicker(report)
	defer ticker.Stop()
	for range ticker.C {
		if err := mc.Err(); err != nil {
			fmt.Printf("automon-coordinator: shutting down (%v)\n", err)
			return
		}
		for _, tn := range tenants {
			status := ""
			if tn.coord.Degraded() {
				status = fmt.Sprintf("  DEGRADED: %d/%d nodes live", tn.coord.LiveNodes(), nodes)
			}
			fmt.Printf("group %d (%s): f(x̄) ≈ %.6g  (msgs in/out: %d/%d, frames out: %d)%s\n",
				tn.gid, tn.name, tn.coord.Estimate(),
				tn.coord.Stats.MessagesReceived.Load(), tn.coord.Stats.MessagesSent.Load(),
				tn.coord.Stats.FramesSent.Load(), status)
		}
	}
}

// radiusOptions bundles the -adaptive-r family of flags so both the
// single-group and multi-group paths thread them identically.
type radiusOptions struct {
	adaptive bool
	rMax     float64
	window   int
	alpha    float64
	cooldown int
}

// workloadConfig builds the core config for one workload, honoring its
// pinned neighborhood size when it has one.
func workloadConfig(w *experiments.Workload, eps, r float64, radius radiusOptions) core.Config {
	cfg := core.Config{
		Epsilon: eps, R: r, Decomp: w.Decomp,
		AdaptiveR: radius.adaptive, RMax: radius.rMax,
		AdaptiveWindow: radius.window, AdaptiveAlpha: radius.alpha,
		AdaptiveCooldown: radius.cooldown,
	}
	if w.FixedR > 0 {
		cfg.R = w.FixedR
	}
	return cfg
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "automon-coordinator:", err)
	os.Exit(1)
}
