// automon-sim runs a single monitoring experiment in the discrete-event
// simulator and prints a summary: message counts by type, payload bytes, and
// the approximation-error profile.
//
// Usage:
//
//	automon-sim -func kld -eps 0.02
//	automon-sim -func inner-product -algo periodic -period 10
//	automon-sim -func dnn -eps 0.005 -full
package main

import (
	"flag"
	"fmt"
	"os"

	"automon/internal/core"
	"automon/internal/experiments"
	"automon/internal/shard"
	"automon/internal/sim"
)

func main() {
	fn := flag.String("func", "inner-product", "workload: inner-product[-d], quadratic[-d], kld[-d], mlp-d, dnn, rosenbrock, intrusion-entropy, regime-rosenbrock")
	algo := flag.String("algo", "automon", "algorithm: automon, centralization, periodic, hybrid, no-adcd")
	eps := flag.Float64("eps", 0.1, "approximation error bound ε")
	period := flag.Int("period", 10, "period for the periodic baseline")
	r := flag.Float64("r", 0, "fixed ADCD-X neighborhood size (0 = tune)")
	full := flag.Bool("full", false, "full-size parameters")
	seed := flag.Int64("seed", 1, "master seed")
	adaptiveR := flag.Bool("adaptive-r", false, "enable the drift-aware radius controller (re-tunes r online, shrinking as well as growing)")
	rMax := flag.Float64("r-max", 0, "cap on §3.6 radius doubling (0 = derive from the domain or tuned r, negative = uncapped)")
	adaptiveWindow := flag.Int("adaptive-window", 0, "full-sync snapshots retained as the re-tuning window (0 = default)")
	adaptiveAlpha := flag.Float64("adaptive-alpha", 0, "EWMA decay per handled violation for the controller's triggers (0 = default)")
	adaptiveCooldown := flag.Int("adaptive-cooldown", 0, "violations between re-tune attempts (0 = default)")
	shards := flag.Int("shards", 0, "run through a hierarchical sharded coordinator with this many leaf shards (0 = flat; routing mode is bit-identical to flat)")
	treeFanout := flag.Int("tree-fanout", 0, "children per interior shard tier (0 = default 8; needs -shards)")
	shardAbsorb := flag.Bool("shard-absorb", false, "let leaf shards absorb safe-zone violations locally (ε-correct, not bit-identical; needs -shards)")
	flag.Parse()

	o := experiments.Options{Quick: !*full, Seed: *seed}
	w, err := experiments.NamedWorkload(*fn, o)
	if err != nil {
		fail(err)
	}

	cfg := sim.Config{
		F:    w.F,
		Data: w.Data,
		Core: core.Config{
			Epsilon: *eps, R: w.FixedR, Decomp: w.Decomp,
			AdaptiveR: *adaptiveR, RMax: *rMax,
			AdaptiveWindow: *adaptiveWindow, AdaptiveAlpha: *adaptiveAlpha,
			AdaptiveCooldown: *adaptiveCooldown,
		},
		TuneRounds:  w.TuneRounds,
		Shards:      *shards,
		TreeFanout:  *treeFanout,
		ShardAbsorb: *shardAbsorb,
	}
	if (*treeFanout != 0 || *shardAbsorb) && *shards <= 0 {
		fail(fmt.Errorf("-tree-fanout and -shard-absorb require -shards"))
	}
	if *r > 0 {
		cfg.Core.R = *r
		cfg.TuneRounds = 0
	}
	switch *algo {
	case "automon":
		cfg.Algorithm = sim.AutoMon
	case "centralization":
		cfg.Algorithm = sim.Centralization
	case "periodic":
		cfg.Algorithm = sim.Periodic
		cfg.Period = *period
	case "hybrid":
		cfg.Algorithm = sim.Hybrid
	case "no-adcd":
		cfg.Algorithm = sim.AutoMon
		cfg.Core.DisableADCD = true
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	res, err := sim.Run(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload:        %s (d=%d, n=%d, %d monitored rounds)\n", w.Name, w.F.Dim(), w.Data.Nodes, res.Rounds)
	fmt.Printf("algorithm:       %s\n", res.Algorithm)
	if *shards > 0 {
		fanout := *treeFanout
		if fanout == 0 {
			fanout = shard.DefaultFanout
		}
		mode := shard.ModeRoute
		if *shardAbsorb {
			mode = shard.ModeAbsorb
		}
		fmt.Printf("topology:        %d leaf shards, fan-out %d, %s mode\n", *shards, fanout, mode)
	}
	fmt.Printf("messages:        %d (payload %d bytes)\n", res.Messages, res.PayloadBytes)
	for t, c := range res.MessagesByType {
		fmt.Printf("  %-14s %d\n", t.String()+":", c)
	}
	fmt.Printf("error:           max %.6g  p99 %.6g  mean %.6g (ε = %g)\n", res.MaxErr, res.P99Err, res.MeanErr, *eps)
	fmt.Printf("rounds over ε:   %d of %d\n", res.MissedRounds, res.Rounds)
	if cfg.Algorithm == sim.AutoMon {
		fmt.Printf("full syncs:      %d   lazy resolved: %d of %d attempts\n",
			res.Stats.FullSyncs, res.Stats.LazyResolved, res.Stats.LazyAttempts)
		fmt.Printf("violations:      %d neighborhood, %d safe-zone, %d faulty\n",
			res.Stats.NeighborhoodViolations, res.Stats.SafeZoneViolations, res.Stats.FaultyViolations)
		if res.TunedR > 0 {
			fmt.Printf("neighborhood r:  %.6g (final %.6g)\n", res.TunedR, res.FinalR)
		}
		if res.Stats.RDoublings+res.Stats.RSaturations > 0 || *adaptiveR {
			fmt.Printf("radius events:   %d doublings, %d saturations, %d shrinks, %d grows, %d retunes\n",
				res.Stats.RDoublings, res.Stats.RSaturations,
				res.Stats.RShrinks, res.Stats.RGrows, res.Stats.AdaptiveRetunes)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "automon-sim:", err)
	os.Exit(1)
}
