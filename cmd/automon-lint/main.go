// Command automon-lint runs the project's static-analyzer suite
// (internal/analysis) over the whole module:
//
//	go run ./cmd/automon-lint ./...
//
// It exits 0 when every invariant holds, 1 with findings on stdout when one
// does not, and 2 on a load or usage error. Findings are suppressed per line
// with `//automon:allow <analyzer> <reason>`; see DESIGN.md for the analyzer
// list and the invariant each one encodes.
//
// Modes:
//
//	-list        print the analyzers and their invariants, then exit
//	-sarif       emit findings as a SARIF 2.1.0 log on stdout (for CI
//	             annotation and artifact upload) instead of plain lines
//	-diff REF    analyze the whole module (the call graphs span packages)
//	             but report only findings in packages with files changed
//	             versus the git ref, e.g. -diff origin/main on a PR
//	-fix         insert //automon:allow TODO scaffolds above surviving
//	             findings and canonicalize directive stacks, in place
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"automon/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their invariants, then exit")
	sarif := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	diffRef := flag.String("diff", "", "report only findings in packages changed versus this git ref")
	fix := flag.Bool("fix", false, "write //automon:allow scaffolds for surviving findings and sort directive stacks")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: automon-lint [-list] [-sarif] [-diff ref] [-fix] [./...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	// The suite is whole-module by construction (the hotpath call graph spans
	// packages), so the only accepted patterns are the module itself.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." && !strings.HasPrefix(arg, "automon") {
			fmt.Fprintf(os.Stderr, "automon-lint: unsupported package pattern %q (the suite always runs module-wide; use ./...)\n", arg)
			os.Exit(2)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "automon-lint: %v\n", err)
		os.Exit(2)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "automon-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Lint(mod, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "automon-lint: %v\n", err)
		os.Exit(2)
	}

	if *diffRef != "" {
		diags, err = filterToChanged(root, *diffRef, diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "automon-lint: %v\n", err)
			os.Exit(2)
		}
	}

	if *fix {
		if err := applyFixes(diags); err != nil {
			fmt.Fprintf(os.Stderr, "automon-lint: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if *sarif {
		out, err := analysis.SARIF(diags, analyzers, root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "automon-lint: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
		fmt.Println()
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "automon-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// filterToChanged keeps only the diagnostics whose file lives in a package
// directory with Go files changed versus ref. The analysis itself already
// ran module-wide — interprocedural summaries need the whole graph — this
// only narrows what is reported, so a PR is annotated with its own packages'
// findings and pre-existing ones elsewhere don't fail it.
func filterToChanged(root, ref string, diags []analysis.Diagnostic) ([]analysis.Diagnostic, error) {
	cmd := exec.Command("git", "-C", root, "diff", "--name-only", ref, "--", "*.go")
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git diff %s: %v: %s", ref, err, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git diff %s: %v", ref, err)
	}
	changedDirs := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line == "" {
			continue
		}
		changedDirs[filepath.ToSlash(filepath.Dir(line))] = true
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			kept = append(kept, d)
			continue
		}
		if changedDirs[filepath.ToSlash(filepath.Dir(rel))] {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// applyFixes groups the surviving findings per file and rewrites each file
// with analysis.FixSource. Scaffolded waivers carry a TODO reason the author
// must replace; a second -fix run is a no-op because the scaffolds suppress
// the findings they cover.
func applyFixes(diags []analysis.Diagnostic) error {
	perFile := make(map[string][]analysis.Diagnostic)
	var files []string
	for _, d := range diags {
		if _, ok := perFile[d.Pos.Filename]; !ok {
			files = append(files, d.Pos.Filename)
		}
		perFile[d.Pos.Filename] = append(perFile[d.Pos.Filename], d)
	}
	fixed := 0
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		out := analysis.FixSource(src, perFile[file])
		if string(out) == string(src) {
			continue
		}
		if err := os.WriteFile(file, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("fixed %s (%d finding(s) scaffolded)\n", file, len(perFile[file]))
		fixed++
	}
	if fixed == 0 {
		fmt.Println("nothing to fix")
	}
	return nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod,
// so the linter works from any subdirectory of the module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
