// Command automon-lint runs the project's static-analyzer suite
// (internal/analysis) over the whole module:
//
//	go run ./cmd/automon-lint ./...
//
// It exits 0 when every invariant holds, 1 with findings on stdout when one
// does not, and 2 on a load or usage error. Findings are suppressed per line
// with `//automon:allow <analyzer> <reason>`; see DESIGN.md for the analyzer
// list and the invariant each one encodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"automon/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: automon-lint [-list] [./...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	// The suite is whole-module by construction (the hotpath call graph spans
	// packages), so the only accepted patterns are the module itself.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." && !strings.HasPrefix(arg, "automon") {
			fmt.Fprintf(os.Stderr, "automon-lint: unsupported package pattern %q (the suite always runs module-wide; use ./...)\n", arg)
			os.Exit(2)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "automon-lint: %v\n", err)
		os.Exit(2)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "automon-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Lint(mod, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "automon-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "automon-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod,
// so the linter works from any subdirectory of the module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
