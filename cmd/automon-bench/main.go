// automon-bench regenerates the tables and figures of the AutoMon paper's
// evaluation as CSV. Each -fig value corresponds to a figure or table of the
// paper; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured notes.
//
// Usage:
//
//	automon-bench -fig 5            # error-communication tradeoff (Figure 5)
//	automon-bench -fig all -full    # everything, full-size parameters
//	automon-bench -fig 10 -latency 28ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"automon/internal/core"
	"automon/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", `figure to regenerate: 1, 3, 4, 5, 6, 7a, 7b, 8, 9, 10, runtime, frontier, adaptive, sketch, or "all"`)
	full := flag.Bool("full", false, "use full-size parameters (slow) instead of the quick defaults")
	seed := flag.Int64("seed", 1, "master seed for data generation and optimizers")
	latency := flag.Duration("latency", 0, "injected one-way latency for the figure-10 WAN runs (e.g. 28ms)")
	telemetry := flag.String("telemetry", "", "write per-run metric snapshots as JSON to this file")
	parallel := flag.Int("parallel", 0, "worker goroutines for sweep runs and tuning replays (0 = one per core, 1 = sequential); tables are identical at any setting")
	eigBackend := flag.String("eig-backend", "", `eigen-engine for ADCD-X zone builds: "lbfgs" (default), "interval" (certified), or "hybrid"`)
	hybridSlack := flag.Float64("hybrid-slack", 0, "hybrid escalation threshold (0 = default, negative = never refine); only meaningful with -eig-backend hybrid")
	sketchRows := flag.Int("sketch-rows", 0, "AMS sketch rows for the ingestion experiments (0 = 4)")
	sketchCols := flag.Int("sketch-cols", 0, "AMS sketch cols for the ingestion experiments (0 = 32)")
	ingestBatch := flag.Int("ingest-batch", 0, "elision staleness cap: events between forced exact checks (0 = library default)")
	flag.Parse()

	backend, err := core.ParseEigBackend(*eigBackend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "automon-bench: %v\n", err)
		os.Exit(2)
	}
	o := experiments.Options{
		Quick: !*full, Seed: *seed, Workers: *parallel,
		EigBackend: backend, HybridSlack: *hybridSlack,
		SketchRows: *sketchRows, SketchCols: *sketchCols, IngestBatch: *ingestBatch,
	}
	if *telemetry != "" {
		o.Telemetry = &experiments.Telemetry{}
	}

	type gen struct {
		name string
		run  func() (*experiments.Table, error)
	}
	gens := []gen{
		{"1", func() (*experiments.Table, error) { return experiments.Fig1SineZones() }},
		{"3", func() (*experiments.Table, error) { return experiments.Fig3NeighborhoodSweep(o) }},
		{"4", func() (*experiments.Table, error) { return experiments.Fig4Traces(o) }},
		{"5", func() (*experiments.Table, error) { return experiments.Fig5Tradeoff(o) }},
		{"6", func() (*experiments.Table, error) { return experiments.Fig6ErrorProfile(o) }},
		{"7a", func() (*experiments.Table, error) { return experiments.Fig7aDimensions(o) }},
		{"7b", func() (*experiments.Table, error) { return experiments.Fig7bNodes(o) }},
		{"8", func() (*experiments.Table, error) { return experiments.Fig8Tuning(o) }},
		{"9", func() (*experiments.Table, error) { return experiments.Fig9Ablation(o) }},
		{"10", func() (*experiments.Table, error) { return experiments.Fig10Bandwidth(o, *latency) }},
		{"runtime", func() (*experiments.Table, error) { return experiments.RuntimeTable(o) }},
		{"frontier", func() (*experiments.Table, error) { return experiments.BackendFrontier(o) }},
		{"adaptive", func() (*experiments.Table, error) { return experiments.AdaptiveTable(o) }},
		{"sketch", func() (*experiments.Table, error) { return experiments.SketchTable(o) }},
	}

	ran := false
	for _, g := range gens {
		if *fig != "all" && *fig != g.name {
			continue
		}
		ran = true
		start := time.Now()
		table, err := g.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "automon-bench: figure %s: %v\n", g.name, err)
			os.Exit(1)
		}
		if err := table.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "automon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# figure %s done in %v\n", g.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "automon-bench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if o.Telemetry != nil {
		f, err := os.Create(*telemetry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "automon-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := o.Telemetry.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "automon-bench: telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# telemetry: %d run snapshots -> %s\n", len(o.Telemetry.Runs()), *telemetry)
	}
}
