// automon-node runs one AutoMon node over TCP: it replays its slice of the
// named workload's stream through its sliding window and reports constraint
// violations to the coordinator.
//
//	automon-node -addr 127.0.0.1:7700 -func inner-product -id 0
//
// Against a multi-group coordinator (automon-coordinator -groups …), pass
// -group to pick the tenant; -func must then name that group's workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"automon/internal/core"
	"automon/internal/experiments"
	"automon/internal/obs"
	"automon/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "coordinator address")
	fn := flag.String("func", "inner-product", "workload name (must match the coordinator)")
	id := flag.Int("id", 0, "node id")
	group := flag.Int("group", 0, "monitoring group id on a multi-group coordinator")
	batchBytes := flag.Int("batch-bytes", 0, "coalesce outbound messages into one frame up to this many body bytes (0 = batching off)")
	batchDelay := flag.Duration("batch-delay", 0, "longest a coalesced message may wait before its frame is flushed")
	seed := flag.Int64("seed", 1, "master seed (must match the coordinator)")
	full := flag.Bool("full", false, "full-size parameters")
	latency := flag.Duration("latency", 0, "injected one-way latency per message")
	interval := flag.Duration("interval", 0, "delay between data updates (0 = as fast as possible)")
	reconnects := flag.Int("reconnect-attempts", 6, "reconnect attempts per connection loss (-1 disables reconnection)")
	reconnectBase := flag.Duration("reconnect-base", 50*time.Millisecond, "initial reconnect backoff (doubles per attempt, jittered)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address serving /metrics, /debug/vars, /debug/events, and /debug/pprof (empty = disabled)")
	eigBackend := flag.String("eig-backend", "", "eigen-engine for ADCD-X zone builds; decomposition runs coordinator-side, but the flag must match the coordinator so both construct the identical workload")
	hybridSlack := flag.Float64("hybrid-slack", 0, "hybrid escalation threshold (must match the coordinator)")
	flag.Parse()

	backend, err := core.ParseEigBackend(*eigBackend)
	if err != nil {
		fail(err)
	}
	o := experiments.Options{Quick: !*full, Seed: *seed, EigBackend: backend, HybridSlack: *hybridSlack}
	w, err := experiments.NamedWorkload(*fn, o)
	if err != nil {
		fail(err)
	}
	ds := w.Data
	if *id < 0 || *id >= ds.Nodes {
		fail(fmt.Errorf("node id %d out of range (workload has %d nodes)", *id, ds.Nodes))
	}

	window := ds.NewWindow()
	for r := 0; r < ds.FillRounds(); r++ {
		window.Push(ds.FillSample(r, *id))
	}

	if *group < 0 || *group >= transport.MaxGroups {
		fail(fmt.Errorf("group id %d out of range [0, %d)", *group, transport.MaxGroups))
	}
	opts := transport.Options{
		Latency:              *latency,
		MaxReconnectAttempts: *reconnects,
		ReconnectBase:        *reconnectBase,
		Group:                transport.GroupID(*group),
		Batch:                transport.BatchOptions{MaxBytes: *batchBytes, MaxDelay: *batchDelay},
	}
	if *obsAddr != "" {
		opts.Metrics = obs.NewRegistry()
		opts.Tracer = obs.NewTracer(1024)
		srv, err := obs.Serve(*obsAddr, opts.Metrics, opts.Tracer)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("automon-node %d: observability on http://%s/metrics\n", *id, srv.Addr)
	}
	node, err := transport.DialNode(*addr, *id, w.F, window.Vector(), opts)
	if err != nil {
		fail(err)
	}
	defer node.Close()
	if err := node.WaitReady(5 * time.Minute); err != nil {
		fail(err)
	}
	fmt.Printf("automon-node %d: monitoring %s over %d rounds\n", *id, w.Name, ds.Rounds)

	updates, violationsSent := 0, node.Stats.MessagesSent.Load()
	for r := 0; r < ds.Rounds; r++ {
		s := ds.Sample(r, *id)
		if s == nil {
			continue
		}
		window.Push(s)
		if err := node.Update(window.Vector()); err != nil {
			// Transient faults (a resolution stalled by a dying connection)
			// are absorbed by the reconnect loop; only a permanent failure
			// — the retry budget ran out — ends the node.
			if perm := node.Err(); perm != nil {
				fail(perm)
			}
		}
		updates++
		if *interval > 0 {
			time.Sleep(*interval)
		}
	}
	fmt.Printf("automon-node %d: done — %d updates, %d messages sent (%d payload bytes), %d reconnects, estimate %.6g\n",
		*id, updates, node.Stats.MessagesSent.Load()-violationsSent+1,
		node.Stats.PayloadSent.Load(), node.Reconnects(), node.CurrentValue())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "automon-node:", err)
	os.Exit(1)
}
