package sim

import (
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/obs"
	"automon/internal/stream"
)

// TestSimMetricsMatchResult asserts the Result traffic fields are views over
// the registry counters: a scrape and the returned aggregates cannot differ.
func TestSimMetricsMatchResult(t *testing.T) {
	f := funcs.InnerProduct(4)
	ds := stream.InnerProductPhases(4, 5, 150, 1)
	for _, alg := range []Algorithm{AutoMon, Centralization, Periodic, Hybrid} {
		t.Run(alg.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			res, err := Run(Config{
				F: f, Data: ds, Algorithm: alg, Period: 10,
				Core:          core.Config{Epsilon: 0.2},
				Metrics:       reg,
				MetricsLabels: `alg="` + alg.String() + `"`,
			})
			if err != nil {
				t.Fatal(err)
			}
			snap := reg.Snapshot()
			lbl := `{alg="` + alg.String() + `"}`
			if got := snap["automon_sim_messages_total"+lbl]; int(got) != res.Messages {
				t.Fatalf("messages metric %v != result %d", got, res.Messages)
			}
			if got := snap["automon_sim_payload_bytes_total"+lbl]; int(got) != res.PayloadBytes {
				t.Fatalf("payload metric %v != result %d", got, res.PayloadBytes)
			}
			byType := 0
			for typ, n := range res.MessagesByType {
				name := `automon_sim_messages_by_type_total{type="` + typ.String() + `",alg="` + alg.String() + `"}`
				if got := snap[name]; int(got) != n {
					t.Fatalf("%s = %v, result says %d", name, got, n)
				}
				byType += n
			}
			if byType != res.Messages {
				t.Fatalf("per-type sum %d != total %d", byType, res.Messages)
			}
			// The AutoMon-family runs also surface protocol counters.
			if alg == AutoMon || alg == Hybrid {
				if got := snap["automon_coordinator_full_syncs_total"]; int(got) != res.Stats.FullSyncs {
					t.Fatalf("coordinator full syncs metric %v != stats %d", got, res.Stats.FullSyncs)
				}
			}
		})
	}
}
