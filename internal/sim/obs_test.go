package sim

import (
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/obs"
	"automon/internal/stream"
)

// TestSimMetricsMatchResult asserts the Result traffic fields are views over
// the registry counters: a scrape and the returned aggregates cannot differ.
func TestSimMetricsMatchResult(t *testing.T) {
	f := funcs.InnerProduct(4)
	ds := stream.InnerProductPhases(4, 5, 150, 1)
	for _, alg := range []Algorithm{AutoMon, Centralization, Periodic, Hybrid} {
		t.Run(alg.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			res, err := Run(Config{
				F: f, Data: ds, Algorithm: alg, Period: 10,
				Core:          core.Config{Epsilon: 0.2},
				Metrics:       reg,
				MetricsLabels: `alg="` + alg.String() + `"`,
			})
			if err != nil {
				t.Fatal(err)
			}
			snap := reg.Snapshot()
			lbl := `{alg="` + alg.String() + `"}`
			if got := snap["automon_sim_messages_total"+lbl]; int(got) != res.Messages {
				t.Fatalf("messages metric %v != result %d", got, res.Messages)
			}
			if got := snap["automon_sim_payload_bytes_total"+lbl]; int(got) != res.PayloadBytes {
				t.Fatalf("payload metric %v != result %d", got, res.PayloadBytes)
			}
			byType := 0
			for typ, n := range res.MessagesByType {
				name := `automon_sim_messages_by_type_total{type="` + typ.String() + `",alg="` + alg.String() + `"}`
				if got := snap[name]; int(got) != n {
					t.Fatalf("%s = %v, result says %d", name, got, n)
				}
				byType += n
			}
			if byType != res.Messages {
				t.Fatalf("per-type sum %d != total %d", byType, res.Messages)
			}
			// The AutoMon-family runs also surface protocol counters.
			if alg == AutoMon || alg == Hybrid {
				if got := snap["automon_coordinator_full_syncs_total"]; int(got) != res.Stats.FullSyncs {
					t.Fatalf("coordinator full syncs metric %v != stats %d", got, res.Stats.FullSyncs)
				}
			}
		})
	}
}

// fakeMsg is a protocol message of a type countingComm was never told about.
type fakeMsg struct{}

func (fakeMsg) Type() core.MsgType { return core.MsgType(250) }
func (fakeMsg) Encode() []byte     { return make([]byte, 7) }

// TestCountingCommCountsUnknownMessageTypes guards against the fixed-list
// trap: a message type outside the pre-registered six must still be counted
// (in the Result and, when present, the registry) instead of incrementing a
// nil counter and then zeroing the Result entry.
func TestCountingCommCountsUnknownMessageTypes(t *testing.T) {
	reg := obs.NewRegistry()
	res := &Result{MessagesByType: make(map[core.MsgType]int)}
	comm := newCountingComm(Config{Metrics: reg}, res, nil)

	comm.count(fakeMsg{})
	comm.count(fakeMsg{})
	if got := res.MessagesByType[core.MsgType(250)]; got != 2 {
		t.Fatalf("unknown-type count = %d, want 2", got)
	}
	if res.Messages != 2 || res.PayloadBytes != 14 {
		t.Fatalf("totals = %d msgs / %d bytes, want 2 / 14", res.Messages, res.PayloadBytes)
	}
	name := `automon_sim_messages_by_type_total{type="` + core.MsgType(250).String() + `"}`
	if got := reg.Snapshot()[name]; int(got) != 2 {
		t.Fatalf("%s = %v, want 2", name, got)
	}
}

// TestTunedRunSharedRegistryCoversFinalRunOnly is the end-to-end regression
// for tuning-replay metric pollution: every replay's coordinator used to
// get-or-create the same automon_coordinator_* counters from the run's
// registry, so Tune bracketed on counts accumulated across replays and the
// final snapshot absorbed every probe's events.
func TestTunedRunSharedRegistryCoversFinalRunOnly(t *testing.T) {
	run := func(reg *obs.Registry) *Result {
		t.Helper()
		res, err := Run(Config{
			F:         funcs.Rosenbrock(),
			Data:      stream.GaussianNoise(2, 4, 260, 0, 0.2, 3),
			Algorithm: AutoMon, TuneRounds: 60,
			Core:    core.Config{Epsilon: 0.4, Decomp: core.DecompOptions{Seed: 1}},
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	reg := obs.NewRegistry()
	shared := run(reg)

	if shared.TunedR != plain.TunedR {
		t.Fatalf("shared registry changed tuning: R %v vs %v", shared.TunedR, plain.TunedR)
	}
	if shared.Stats != plain.Stats {
		t.Fatalf("shared registry changed the final run:\nplain  %+v\nshared %+v", plain.Stats, shared.Stats)
	}
	snap := reg.Snapshot()
	got := int(snap[`automon_coordinator_violations_total{kind="neighborhood"}`]) +
		int(snap[`automon_coordinator_violations_total{kind="safe_zone"}`]) +
		int(snap[`automon_coordinator_violations_total{kind="faulty"}`])
	want := shared.Stats.NeighborhoodViolations + shared.Stats.SafeZoneViolations + shared.Stats.FaultyViolations
	if got != want {
		t.Fatalf("registry holds %d violations, final run produced %d (tuning replays leaked)", got, want)
	}
}
