package sim

import (
	"math"
	"strings"
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/obs"
	"automon/internal/stream"
)

// bitsEqual compares two float64 series for bit-identity.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func groupConfigs(reg *obs.Registry) []Config {
	return []Config{
		{F: funcs.InnerProduct(4), Data: stream.InnerProductPhases(4, 5, 120, 1),
			Algorithm: AutoMon, Core: core.Config{Epsilon: 0.3}, Trace: true, Metrics: reg},
		{F: funcs.SqNorm(3), Data: stream.GaussianNoise(3, 4, 100, 1, 0.2, 2),
			Algorithm: AutoMon, Core: core.Config{Epsilon: 0.5}, Trace: true, Metrics: reg},
		{F: funcs.InnerProduct(4), Data: stream.InnerProductPhases(4, 5, 120, 3),
			Algorithm: Centralization, Core: core.Config{Epsilon: 0.1}, Trace: true, Metrics: reg},
	}
}

// TestRunGroupsMatchesSoloRuns pins the isolation contract of the concurrent
// runner: every group's result — messages, bytes, protocol stats, and the
// full per-round estimate trace — is bit-identical to a solo Run of the same
// config.
func TestRunGroupsMatchesSoloRuns(t *testing.T) {
	reg := obs.NewRegistry()
	grouped, err := RunGroups(groupConfigs(reg))
	if err != nil {
		t.Fatal(err)
	}
	solos := groupConfigs(nil)
	for i, cfg := range solos {
		solo, err := Run(cfg)
		if err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
		g := grouped[i]
		if g.Messages != solo.Messages || g.PayloadBytes != solo.PayloadBytes {
			t.Errorf("group %d traffic diverged: %d msgs/%d B vs solo %d msgs/%d B",
				i, g.Messages, g.PayloadBytes, solo.Messages, solo.PayloadBytes)
		}
		if g.Stats != solo.Stats {
			t.Errorf("group %d protocol stats diverged: %+v vs %+v", i, g.Stats, solo.Stats)
		}
		if !bitsEqual(g.EstTrace, solo.EstTrace) {
			t.Errorf("group %d estimate trace not bit-identical to solo run", i)
		}
		if !bitsEqual(g.ErrTrace, solo.ErrTrace) {
			t.Errorf("group %d error trace not bit-identical to solo run", i)
		}
	}
}

// TestRunGroupsLabelsSharedRegistry pins the metric-collision guard: groups
// sharing a registry without their own label set get distinct group labels on
// both the sim counters and the coordinator metrics.
func TestRunGroupsLabelsSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := RunGroups(groupConfigs(reg)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, want := range []string{
		`automon_sim_messages_total{group="0"}`,
		`automon_sim_messages_total{group="1"}`,
		`automon_sim_messages_total{group="2"}`,
		`automon_coordinator_full_syncs_total{group="0"}`,
		`automon_coordinator_full_syncs_total{group="1"}`,
	} {
		if _, ok := snap[want]; !ok {
			t.Errorf("registry missing %s", want)
		}
	}
	// Group traffic must not have accumulated into one unlabeled series.
	for name := range snap {
		if name == "automon_sim_messages_total" {
			t.Error("unlabeled shared sim counter present despite per-group labels")
		}
	}
}

// TestRunGroupsPropagatesErrors pins error reporting: a broken group config
// fails the whole call with the group index in the error.
func TestRunGroupsPropagatesErrors(t *testing.T) {
	if _, err := RunGroups(nil); err == nil {
		t.Fatal("empty group list accepted")
	}
	cfgs := groupConfigs(nil)
	cfgs[1].Data = nil
	_, err := RunGroups(cfgs)
	if err == nil {
		t.Fatal("broken group accepted")
	}
	if !strings.Contains(err.Error(), "group 1") {
		t.Fatalf("error does not name the failing group: %v", err)
	}
}
