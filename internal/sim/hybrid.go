package sim

import (
	"automon/internal/core"
	"automon/internal/stream"
)

// runHybrid implements the §6 "switch on the fly" extension: monitor with
// AutoMon, but track the message rate over a sliding budget window; if a
// window costs more than centralization would (one message per active node
// per round), fall back to centralization for one window, then re-engage
// AutoMon with a full resync. The estimate is exact during fallback.
func runHybrid(cfg Config, res *Result, windows []stream.Windower) (*Result, error) {
	ds := cfg.Data
	n := ds.Nodes
	k := cfg.HybridWindow
	if k <= 0 {
		k = 50
	}

	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = core.NewNode(i, cfg.F)
		nodes[i].SetData(windows[i].Vector())
	}
	comm := newCountingComm(cfg, res, nodes)
	coreCfg := cfg.Core
	if coreCfg.Metrics == nil {
		coreCfg.Metrics = cfg.Metrics
	}
	coord := core.NewCoordinator(cfg.F, n, coreCfg, comm)
	if err := coord.Init(); err != nil {
		return nil, err
	}

	avg := make([]float64, cfg.F.Dim())
	centralized := false
	windowStartMsgs := res.Messages
	windowStartRound := 0
	activeInWindow := 0

	// Re-engagement uses a short trial window and exponential backoff: each
	// failed trial doubles the next centralized stretch (capped), so a
	// persistently churny regime converges to near-centralization cost
	// while a calmed-down stream returns to AutoMon quickly.
	trial := k / 4
	if trial < 5 {
		trial = 5
	}
	centralRounds := k
	budgetWindow := trial

	for r := 0; r < ds.Rounds; r++ {
		active := 0
		for i := 0; i < n; i++ {
			s := ds.Sample(r, i)
			if s == nil {
				continue
			}
			active++
			windows[i].Push(s)
			if centralized {
				// Fallback: every update is shipped, exactly like the
				// centralization baseline.
				comm.count(&core.DataResponse{NodeID: i, X: windows[i].Vector()})
				continue
			}
			v := nodes[i].UpdateData(windows[i].Vector())
			if v == nil {
				continue
			}
			comm.count(v)
			if err := coord.HandleViolation(v); err != nil {
				return nil, err
			}
		}
		activeInWindow += active

		trueAverage(avg, windows)
		truth := cfg.F.Value(avg)
		est := coord.Estimate()
		if centralized {
			est = truth // the coordinator sees every update
		}
		res.observe(cfg, est, truth, cfg.Trace)

		// Budget check at window boundaries.
		if r-windowStartRound+1 >= budgetWindow {
			spent := res.Messages - windowStartMsgs
			if centralized {
				// Fallback stretch over: try AutoMon again with fresh zones.
				for i := range nodes {
					nodes[i].SetData(windows[i].Vector())
				}
				if err := coord.Resync(); err != nil {
					return nil, err
				}
				centralized = false
				budgetWindow = trial
			} else if spent > activeInWindow {
				// The trial failed: centralize, with backoff.
				centralized = true
				budgetWindow = centralRounds
				if centralRounds < 8*k {
					centralRounds *= 2
				}
			} else {
				// AutoMon is paying for itself; relax the backoff.
				centralRounds = k
				budgetWindow = trial
			}
			windowStartMsgs = res.Messages
			windowStartRound = r + 1
			activeInWindow = 0
		}
	}
	res.Stats = coord.Stats()
	res.TunedR = coord.R()
	res.FinalR = coord.R()
	res.finalize(cfg.Trace)
	return res, nil
}
