package sim

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/nn"
	"automon/internal/stream"
)

// kldLikeDataset generates drifting [p, q] histogram pairs on the unit box
// for the KLD differential (cheaper and fully deterministic compared to the
// air-quality generator).
func kldLikeDataset(bins, nodes, rounds int) *stream.Dataset {
	d := 2 * bins
	return stream.NewCustom("kld-drift", nodes, rounds, 10, d, func(r, i int) []float64 {
		x := make([]float64, d)
		var sp, sq float64
		for b := 0; b < bins; b++ {
			p := 1 + math.Sin(float64(r)/40+float64(b)+0.1*float64(i))
			q := 1 + math.Cos(float64(r)/55+float64(b))
			x[b], x[bins+b] = p, q
			sp, sq = sp+p, sq+q
		}
		for b := 0; b < bins; b++ {
			x[b] /= sp
			x[bins+b] /= sq
		}
		return x
	})
}

// varianceDataset streams augmented [v, v²] samples (footnote 3) with a slow
// mean drift.
func varianceDataset(nodes, rounds int) *stream.Dataset {
	return stream.NewCustom("variance-drift", nodes, rounds, 10, 2, func(r, i int) []float64 {
		v := 0.5*math.Sin(float64(r)/30) + 0.1*float64(i%3)
		return funcs.AugmentSquares(v)
	})
}

// elideCases covers every bundled function constructor that carries a
// curvature bound — constant-Hessian (ADCD-E) and bounded-Hessian (ADCD-X)
// alike — each over a dataset that actually moves the monitored quantity.
func elideCases(t *testing.T) []struct {
	name string
	cfg  Config
} {
	t.Helper()
	const rows, cols = 3, 16
	logw := []float64{0.8, -0.5, 0.3}
	return []struct {
		name string
		cfg  Config
	}{
		{"inner-product", Config{
			F: funcs.InnerProduct(4), Data: stream.InnerProductPhases(4, 5, 200, 1),
			Core: core.Config{Epsilon: 0.3}}},
		{"quadratic", Config{
			F: funcs.RandomQuadratic(6, 1), Data: stream.QuadraticOutlier(6, 4, 200, 2),
			Core: core.Config{Epsilon: 0.2}}},
		{"kld", Config{
			F: funcs.KLD(4, 0.1), Data: kldLikeDataset(4, 4, 200),
			Core: core.Config{Epsilon: 0.05, R: 0.2, Decomp: core.DecompOptions{Seed: 1}}}},
		{"entropy-tuned", Config{
			F: funcs.Entropy(6, 0.1), Data: stream.NewAirQuality(4, 3, 240, 3), TuneRounds: 40,
			Core: core.Config{Epsilon: 0.05, Decomp: core.DecompOptions{Seed: 2, OptStarts: 1, OptMaxIter: 25, OptMaxFunEvals: 150}}}},
		{"logistic", Config{
			F: funcs.Logistic(logw, -0.2), Data: stream.GaussianNoise(3, 4, 200, 0, 0.2, 4),
			Core: core.Config{Epsilon: 0.02, R: 0.5, Decomp: core.DecompOptions{Seed: 3}}}},
		{"sine", Config{
			F: funcs.Sine(), Data: stream.GaussianNoise(1, 4, 200, 1.3, 0.05, 5),
			Core: core.Config{Epsilon: 0.05, R: 0.3, Decomp: core.DecompOptions{Seed: 4}}}},
		{"saddle", Config{
			F: funcs.Saddle(), Data: stream.GaussianNoise(2, 4, 200, 0.5, 0.1, 6),
			Core: core.Config{Epsilon: 0.1}}},
		{"variance", Config{
			F: funcs.Variance(), Data: varianceDataset(4, 200),
			Core: core.Config{Epsilon: 0.1}}},
		{"sqnorm", Config{
			F: funcs.SqNorm(5), Data: stream.GaussianNoise(5, 4, 200, 0.3, 0.1, 7),
			Core: core.Config{Epsilon: 0.15}}},
		{"ams-f2", Config{
			F: funcs.AMSF2(rows, cols), Data: stream.ZipfTurnstile(4, 200, rows, cols, 8),
			Core: core.Config{Epsilon: 0.1}}},
	}
}

// TestElideDifferentialAcrossZoo replays every curvature-carrying bundled
// function through the per-round and elided sim paths and demands the full
// Result — message counts by type, payload bytes, error series, coordinator
// stats, traces — be identical. Check elision must be invisible to the
// protocol.
func TestElideDifferentialAcrossZoo(t *testing.T) {
	anyElided := false
	for _, tc := range elideCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			refCfg := tc.cfg
			refCfg.Trace = true
			ref, err := Run(refCfg)
			if err != nil {
				t.Fatal(err)
			}
			elCfg := refCfg
			elCfg.Elide = true
			el, err := Run(elCfg)
			if err != nil {
				t.Fatal(err)
			}
			if el.ElidedChecks > 0 {
				anyElided = true
			}
			t.Logf("%s: rounds=%d elided=%d msgs=%d", tc.name, el.Rounds, el.ElidedChecks, el.Messages)
			scrubbed := *el
			scrubbed.ElidedChecks = 0
			if !reflect.DeepEqual(*ref, scrubbed) {
				t.Fatalf("elided run diverges from per-round run:\nref    %+v\nelided %+v", *ref, scrubbed)
			}
		})
	}
	if !anyElided {
		t.Fatal("no case ever elided a check — the budget never engages in sim")
	}
}

// TestElideRejectsUnboundedCurvature: functions with no curvature bound
// (unbounded or unknown Hessians) must fail loudly under Elide rather than
// silently running per-round.
func TestElideRejectsUnboundedCurvature(t *testing.T) {
	tiny, err := nn.New(rand.New(rand.NewSource(1)), []int{2, 3, 1}, []nn.Activation{nn.Tanh, nn.Identity})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		f    *core.Function
	}{
		{"cosine", funcs.CosineSimilarity(2)},
		{"rosenbrock", funcs.Rosenbrock()},
		{"network", funcs.Network("tiny-net", tiny)},
	} {
		cfg := Config{
			F: tc.f, Data: stream.GaussianNoise(tc.f.Dim(), 3, 40, 0.8, 0.05, 9),
			Core:  core.Config{Epsilon: 0.5, R: 0.3, Decomp: core.DecompOptions{Seed: 5}},
			Elide: true,
		}
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "curvature") {
			t.Fatalf("%s: want loud curvature error under Elide, got %v", tc.name, err)
		}
		cfg.Elide = false
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: per-round run must still work: %v", tc.name, err)
		}
	}
}
