package sim

import (
	"math"
	"testing"

	"automon/internal/baselines"
	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/stream"
)

func TestCentralizationIsExactAndExpensive(t *testing.T) {
	f := funcs.InnerProduct(4)
	ds := stream.InnerProductPhases(4, 5, 120, 1)
	res, err := Run(Config{F: f, Data: ds, Algorithm: Centralization, Core: core.Config{Epsilon: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr != 0 {
		t.Fatalf("centralization error = %v, want 0", res.MaxErr)
	}
	if res.Messages != 120*5 {
		t.Fatalf("centralization messages = %d, want %d", res.Messages, 120*5)
	}
}

func TestPeriodicTradesErrorForMessages(t *testing.T) {
	f := funcs.InnerProduct(4)
	ds := stream.InnerProductPhases(4, 5, 200, 1)
	fast, err := Run(Config{F: f, Data: ds, Algorithm: Periodic, Period: 5, Core: core.Config{Epsilon: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(Config{F: f, Data: ds, Algorithm: Periodic, Period: 50, Core: core.Config{Epsilon: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Messages <= slow.Messages {
		t.Fatalf("shorter period must send more: %d vs %d", fast.Messages, slow.Messages)
	}
	if fast.MaxErr >= slow.MaxErr {
		t.Fatalf("shorter period must err less: %v vs %v", fast.MaxErr, slow.MaxErr)
	}
	if _, err := Run(Config{F: f, Data: ds, Algorithm: Periodic}); err == nil {
		t.Fatal("Period = 0 must be rejected")
	}
}

func TestAutoMonInnerProductBeatsCentralization(t *testing.T) {
	f := funcs.InnerProduct(4)
	ds := stream.InnerProductPhases(4, 5, 200, 1)
	eps := 0.3
	res, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	central, err := Run(Config{F: f, Data: ds, Algorithm: Centralization, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	// ADCD-E gives a deterministic guarantee for the inner product.
	if res.MaxErr > eps+1e-9 {
		t.Fatalf("AutoMon error %v above bound %v", res.MaxErr, eps)
	}
	if res.Messages >= central.Messages {
		t.Fatalf("AutoMon used %d messages, centralization %d", res.Messages, central.Messages)
	}
	if res.MissedRounds != 0 {
		t.Fatalf("guaranteed run reported %d missed rounds", res.MissedRounds)
	}
}

func TestCBMatchesAutoMonOnInnerProduct(t *testing.T) {
	// §4.3: ADCD-E automatically recovers the hand-crafted CB decomposition
	// for the inner product, so the two runs should behave near-identically.
	f := funcs.InnerProduct(4)
	ds := stream.InnerProductPhases(4, 5, 300, 2)
	eps := 0.25
	auto, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon,
		Core: core.Config{Epsilon: eps, ZoneBuilder: baselines.ConvexBoundInnerProduct(4)}})
	if err != nil {
		t.Fatal(err)
	}
	if cb.MaxErr > eps+1e-9 {
		t.Fatalf("CB error %v above bound", cb.MaxErr)
	}
	lo, hi := float64(auto.Messages), float64(cb.Messages)
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 1.5*lo+20 {
		t.Fatalf("CB (%d msgs) and AutoMon (%d msgs) should be close", cb.Messages, auto.Messages)
	}
}

func TestAutoMonWithTuningOnRosenbrock(t *testing.T) {
	f := funcs.Rosenbrock()
	ds := stream.GaussianNoise(2, 4, 260, 0, 0.2, 3)
	eps := 0.4
	res, err := Run(Config{
		F: f, Data: ds, Algorithm: AutoMon, TuneRounds: 60,
		Core: core.Config{Epsilon: eps, Decomp: core.DecompOptions{Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TunedR <= 0 {
		t.Fatalf("tuned R = %v", res.TunedR)
	}
	if res.Rounds != 200 {
		t.Fatalf("monitored rounds = %d, want 200 (260 − 60 tuning)", res.Rounds)
	}
	// ADCD-X carries no hard guarantee, but the sanity check keeps the error
	// near the bound.
	if res.MaxErr > 3*eps {
		t.Fatalf("error %v far above bound %v", res.MaxErr, eps)
	}
}

func TestTraceRecording(t *testing.T) {
	f := funcs.InnerProduct(2)
	ds := stream.InnerProductPhases(2, 3, 50, 4)
	res, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon, Trace: true, Core: core.Config{Epsilon: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EstTrace) != res.Rounds || len(res.TrueTrace) != res.Rounds ||
		len(res.ErrTrace) != res.Rounds || len(res.CumMessages) != res.Rounds {
		t.Fatalf("trace lengths %d/%d/%d/%d, want %d", len(res.EstTrace), len(res.TrueTrace),
			len(res.ErrTrace), len(res.CumMessages), res.Rounds)
	}
	for i := range res.ErrTrace {
		if math.Abs(res.EstTrace[i]-res.TrueTrace[i])-res.ErrTrace[i] > 1e-12 {
			t.Fatal("trace inconsistency")
		}
	}
	// Without Trace, traces are dropped but aggregates remain.
	res2, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon, Core: core.Config{Epsilon: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ErrTrace != nil || res2.EstTrace != nil {
		t.Fatal("traces kept without Trace flag")
	}
	if res2.MaxErr != res.MaxErr {
		t.Fatal("trace flag changed the run")
	}
}

func TestSingleNodeUpdatesPerRound(t *testing.T) {
	// Intrusion-style datasets update a single node per round; everything
	// must still work, and centralization sends 1 message per round.
	in := stream.NewIntrusion(4, 150, 5)
	f := funcs.SqNorm(stream.IntrusionFeatures)
	res, err := Run(Config{F: f, Data: in.Dataset, Algorithm: Centralization, Core: core.Config{Epsilon: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 150 {
		t.Fatalf("centralization messages = %d, want 150", res.Messages)
	}
}

func TestVarianceMonitoringEndToEnd(t *testing.T) {
	// Variance via augmented local vectors [v, v²] (paper footnote 3): the
	// function of the average is exactly the population variance, AutoMon
	// picks ADCD-E (concave difference), and the ε bound is deterministic.
	f := funcs.Variance()
	ds := stream.NewCustom("variance", 4, 250, 10, 2, func(round, node int) []float64 {
		spread := 0.2 + 2.5*float64(round)/250 // variance grows over time
		v := float64(node%2)*2 - 1             // ±1 pattern across nodes
		return funcs.AugmentSquares(v*spread + 0.05*float64(round%5))
	})
	eps := 0.2
	res, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr > eps+1e-9 {
		t.Fatalf("variance bound broken: %v > %v", res.MaxErr, eps)
	}
	central, err := Run(Config{F: f, Data: ds, Algorithm: Centralization, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages >= central.Messages {
		t.Fatalf("variance monitoring used %d msgs ≥ centralization %d", res.Messages, central.Messages)
	}
}

func TestCosineSimilarityMonitoringEndToEnd(t *testing.T) {
	// Cosine similarity of two drifting aggregate vectors: the Sharfman et
	// al. benchmark, monitored with automatically derived ADCD-X
	// constraints instead of hand-crafted sphere bounds.
	const half = 3
	f := funcs.CosineSimilarity(half)
	ds := stream.NewCustom("cosine-drift", 5, 300, 10, 2*half, func(round, node int) []float64 {
		// u stays near a fixed direction; v rotates slowly away from u, so
		// the cosine decays from ≈1 over the run.
		frac := float64(round) / 300
		x := make([]float64, 2*half)
		for i := 0; i < half; i++ {
			x[i] = 1 + 0.1*float64(node%2)
		}
		x[half] = 1 - frac
		x[half+1] = 1
		x[half+2] = 1 + 2*frac
		return x
	})
	eps := 0.05
	res, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon,
		Core: core.Config{Epsilon: eps, R: 0.4, Decomp: core.DecompOptions{Seed: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	// ADCD-X carries no hard guarantee; with the sanity check it should
	// stay near the bound.
	if res.MaxErr > 2*eps {
		t.Fatalf("cosine error %v far above bound %v", res.MaxErr, eps)
	}
	central, err := Run(Config{F: f, Data: ds, Algorithm: Centralization, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages >= central.Messages {
		t.Fatalf("cosine monitoring used %d msgs ≥ centralization %d", res.Messages, central.Messages)
	}
}

func TestSketchedF2MonitoringEndToEnd(t *testing.T) {
	// §5 composition: nodes sketch their substreams with shared-seed AMS
	// sketches; the query f(x̄) = (1/rows)Σx̄² is a quadratic form, so
	// AutoMon monitors the global second moment with ADCD-E and a
	// deterministic guarantee — at a fraction of the messages.
	const rows, cols = 4, 32
	f := funcs.AMSF2(rows, cols)
	ds := stream.ZipfTurnstile(5, 400, rows, cols, 17)
	eps := 0.05
	res, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr > eps+1e-9 {
		t.Fatalf("sketched-F2 bound broken: %v > %v", res.MaxErr, eps)
	}
	central, err := Run(Config{F: f, Data: ds, Algorithm: Centralization, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages >= central.Messages {
		t.Fatalf("sketched F2 used %d msgs ≥ centralization %d", res.Messages, central.Messages)
	}
	// The heavy-hitter burst must actually move the monitored quantity —
	// otherwise this test proves nothing.
	trace, err := Run(Config{F: f, Data: ds, Algorithm: Centralization, Core: core.Config{Epsilon: eps}, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := trace.TrueTrace[0], trace.TrueTrace[0]
	for _, v := range trace.TrueTrace {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 5*eps {
		t.Fatalf("workload too flat to be meaningful: F2 range [%v, %v]", lo, hi)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil F/Data must be rejected")
	}
}

func TestMessageBytesAccounted(t *testing.T) {
	f := funcs.InnerProduct(2)
	ds := stream.InnerProductPhases(2, 3, 60, 4)
	res, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon, Core: core.Config{Epsilon: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PayloadBytes <= 0 {
		t.Fatal("no payload bytes accounted")
	}
	var total int
	for _, c := range res.MessagesByType {
		total += c
	}
	if total != res.Messages {
		t.Fatalf("per-type counts (%d) disagree with total (%d)", total, res.Messages)
	}
}
