package sim

import (
	"math"
	"reflect"
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/obs"
	"automon/internal/shard"
	"automon/internal/stream"
)

// treeFanouts is the topology axis of the differential suite: a binary tree
// (maximal depth), the default fan-out, and a fan-out wide enough that every
// tree collapses to two tiers.
var treeFanouts = []int{2, 8, 64}

// TestTreeDifferentialAcrossZoo replays every curvature-carrying bundled
// function through the flat coordinator and through routing-mode shard trees
// at fan-outs {2, 8, 64}, and demands the protocol-visible Outcome be
// DeepEqual: message counts by type, payload bytes, error series, coordinator
// stats, estimate traces. The tree is a topology choice, not a protocol
// change. Each case also replays with Config.Elide through the deepest tree,
// where the full Result (including ElidedChecks) must match the elided flat
// run bit for bit.
func TestTreeDifferentialAcrossZoo(t *testing.T) {
	for _, tc := range elideCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			flatCfg := tc.cfg
			flatCfg.Trace = true
			flat, err := Run(flatCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, fanout := range treeFanouts {
				treeCfg := flatCfg
				treeCfg.Shards = tc.cfg.Data.Nodes
				treeCfg.TreeFanout = fanout
				tree, err := Run(treeCfg)
				if err != nil {
					t.Fatalf("fanout %d: %v", fanout, err)
				}
				if !reflect.DeepEqual(flat.Outcome(), tree.Outcome()) {
					t.Errorf("fanout %d: sharded outcome diverges from flat\nflat %+v\ntree %+v",
						fanout, flat.Outcome(), tree.Outcome())
				}
			}

			elFlatCfg := flatCfg
			elFlatCfg.Elide = true
			elFlat, err := Run(elFlatCfg)
			if err != nil {
				t.Fatal(err)
			}
			elTreeCfg := elFlatCfg
			elTreeCfg.Shards = tc.cfg.Data.Nodes
			elTreeCfg.TreeFanout = 2
			elTree, err := Run(elTreeCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*elFlat, *elTree) {
				t.Errorf("elided sharded run diverges from elided flat run:\nflat %+v\ntree %+v", *elFlat, *elTree)
			}
		})
	}
}

// adaptiveBurstStream drifts gently, then sustains a per-node divergence
// burst in rounds 100–160 that engages §3.6 doubling and, once the burst
// ends, the controller's shrink/retune path.
func adaptiveBurstStream(nodes, rounds int) *stream.Dataset {
	return stream.NewCustom("bursty-sine", nodes, rounds, 10, 1, func(r, i int) []float64 {
		v := 1.3 + 0.02*math.Sin(float64(r)/25+float64(i))
		if r >= 100 && r < 160 {
			v += (float64(i) - 1.5) * 0.4 * math.Sin(float64(r)/8)
		}
		return []float64{v}
	})
}

// TestTreeDifferentialAdaptiveR covers the drift-aware radius controller: the
// controller's doubling, shrink, and retune decisions depend only on protocol
// events, so a sharded run must move r through the same schedule as the flat
// run.
func TestTreeDifferentialAdaptiveR(t *testing.T) {
	cfg := Config{
		F:    funcs.Sine(),
		Data: adaptiveBurstStream(4, 300),
		Core: core.Config{Epsilon: 0.1, R: 0.1, RDoubleAfter: 4,
			AdaptiveR: true, AdaptiveAlpha: 0.2, Decomp: core.DecompOptions{Seed: 4}},
		Trace: true,
	}
	flat, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Stats.RDoublings == 0 || flat.Stats.AdaptiveRetunes == 0 {
		t.Fatalf("burst never engaged the controller (doublings=%d retunes=%d) — the differential is vacuous",
			flat.Stats.RDoublings, flat.Stats.AdaptiveRetunes)
	}
	for _, fanout := range treeFanouts {
		treeCfg := cfg
		treeCfg.Shards = 4
		treeCfg.TreeFanout = fanout
		tree, err := Run(treeCfg)
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if !reflect.DeepEqual(flat.Outcome(), tree.Outcome()) {
			t.Errorf("fanout %d: adaptive-r sharded outcome diverges from flat\nflat %+v\ntree %+v",
				fanout, flat.Outcome(), tree.Outcome())
		}
	}
}

// TestTreeDeepTopology checks bit-identity through a five-tier tree with
// multi-node leaves: 32 nodes over 16 shards at fan-out 2.
func TestTreeDeepTopology(t *testing.T) {
	cfg := Config{
		F:     funcs.SqNorm(3),
		Data:  stream.GaussianNoise(3, 32, 120, 0.3, 0.1, 9),
		Core:  core.Config{Epsilon: 0.2},
		Trace: true,
	}
	flat, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	treeCfg := cfg
	treeCfg.Shards = 16
	treeCfg.TreeFanout = 2
	tree, err := Run(treeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flat.Outcome(), tree.Outcome()) {
		t.Fatalf("deep tree outcome diverges from flat\nflat %+v\ntree %+v", flat.Outcome(), tree.Outcome())
	}
}

// TestTreeAbsorbMode runs the ε-correct absorb mode over a convex ADCD-E
// case: leaves must resolve real violations inside their partitions, the
// paper's deterministic ε guarantee must still hold round for round, and on
// this stream the partition-local balancing must not cost extra wire traffic
// compared to the routed tree (locality is the point of the mode).
func TestTreeAbsorbMode(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		F:    funcs.SqNorm(5),
		Data: stream.GaussianNoise(5, 8, 300, 0.3, 0.1, 7),
		Core: core.Config{Epsilon: 0.05},
	}
	routed := cfg
	routed.Shards, routed.TreeFanout = 2, 2
	routedRes, err := Run(routed)
	if err != nil {
		t.Fatal(err)
	}
	absorb := routed
	absorb.ShardAbsorb = true
	absorb.Metrics = reg
	absorbRes, err := Run(absorb)
	if err != nil {
		t.Fatal(err)
	}
	if absorbRes.MissedRounds != 0 {
		t.Errorf("absorb mode broke the ε guarantee: %d missed rounds, max err %v (ε=%v)",
			absorbRes.MissedRounds, absorbRes.MaxErr, cfg.Core.Epsilon)
	}
	snap := reg.Snapshot()
	if snap["automon_shard_absorbed_violations_total"] == 0 {
		t.Fatal("absorb mode never absorbed a violation at a leaf — the mode is vacuous on this stream")
	}
	if absorbRes.Messages > routedRes.Messages {
		t.Errorf("absorb mode cost extra wire traffic: routed %d msgs, absorb %d msgs",
			routedRes.Messages, absorbRes.Messages)
	}
	t.Logf("routed: fullsyncs=%d msgs=%d; absorb: fullsyncs=%d msgs=%d absorbed=%v escalated=%v",
		routedRes.Stats.FullSyncs, routedRes.Messages,
		absorbRes.Stats.FullSyncs, absorbRes.Messages,
		snap["automon_shard_absorbed_violations_total"],
		snap["automon_shard_escalated_violations_total"])
}

// TestTreeChaosBitIdenticalSiblings is the S-tier chaos proof, in the shape
// of the multi-tenant isolation harness: a victim tenant and a storm tenant
// run concurrently, sharing a metrics registry and a zone cache. The storm
// kills an entire sub-tree (4 of its 8 nodes) mid-stream and rejoins it 60
// rounds later. The victim's full Result must be bit-identical to a solo run,
// and the storm's own pre-chaos prefix must be bit-identical to an
// undisturbed storm run — chaos in one sub-tree is invisible to everything
// outside it.
func TestTreeChaosBitIdenticalSiblings(t *testing.T) {
	const killRound, rejoinRound = 60, 120
	victimBase := Config{
		F:     funcs.InnerProduct(4),
		Data:  stream.InnerProductPhases(4, 5, 200, 1),
		Core:  core.Config{Epsilon: 0.3, ZoneCacheScope: "victim"},
		Trace: true,
	}
	stormBase := Config{
		F:     funcs.SqNorm(3),
		Data:  stream.GaussianNoise(3, 8, 200, 0.3, 0.1, 7),
		Core:  core.Config{Epsilon: 0.2, ZoneCacheScope: "storm"},
		Trace: true,
	}
	stormBase.Shards, stormBase.TreeFanout = 4, 2

	// Solo baselines, each with private infrastructure.
	soloVictim := victimBase
	soloVictim.Metrics = obs.NewRegistry()
	soloVictim.Core.SharedZoneCache = core.NewZoneCache(256)
	wantVictim, err := Run(soloVictim)
	if err != nil {
		t.Fatal(err)
	}
	calmStorm := stormBase
	calmStorm.Metrics = obs.NewRegistry()
	calmStorm.Core.SharedZoneCache = core.NewZoneCache(256)
	wantStorm, err := Run(calmStorm)
	if err != nil {
		t.Fatal(err)
	}

	// Paired run: shared registry and zone cache, chaos in the storm tenant.
	// Shard 5 is the right sub-tree (leaves 2 and 3, nodes 4–7).
	reg := obs.NewRegistry()
	cache := core.NewZoneCache(256)
	var chaosErr error
	victim := victimBase
	victim.Metrics = reg
	victim.Core.SharedZoneCache = cache
	storm := stormBase
	storm.Metrics = reg
	storm.Core.SharedZoneCache = cache
	storm.ShardChaos = func(round int, tr *shard.Tree) {
		switch round {
		case killRound:
			if err := tr.KillSubtree(5); err != nil && chaosErr == nil {
				chaosErr = err
			}
		case rejoinRound:
			if err := tr.RejoinSubtree(5, nil); err != nil && chaosErr == nil {
				chaosErr = err
			}
		}
	}
	results, err := RunGroups([]Config{victim, storm})
	if err != nil {
		t.Fatal(err)
	}
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}

	if !reflect.DeepEqual(*wantVictim, *results[0]) {
		t.Errorf("victim tenant perturbed by the storm's sub-tree chaos:\nsolo   %+v\npaired %+v",
			*wantVictim, *results[0])
	}
	gotStorm := results[1]
	if !reflect.DeepEqual(wantStorm.EstTrace[:killRound], gotStorm.EstTrace[:killRound]) {
		t.Error("storm's pre-chaos estimate prefix diverges from the undisturbed run")
	}
	if gotStorm.Stats.NodeDeaths != 4 || gotStorm.Stats.Rejoins != 4 {
		t.Errorf("sub-tree kill/rejoin tallies wrong: deaths=%d rejoins=%d, want 4/4",
			gotStorm.Stats.NodeDeaths, gotStorm.Stats.Rejoins)
	}
	// Recovery: after the rejoin's healing full sync the ε guarantee is back.
	for r := rejoinRound + 1; r < len(gotStorm.ErrTrace); r++ {
		if gotStorm.ErrTrace[r] > stormBase.Core.Epsilon+1e-9 {
			t.Fatalf("round %d after rejoin: error %v exceeds ε=%v — tree never recovered",
				r, gotStorm.ErrTrace[r], stormBase.Core.Epsilon)
		}
	}
	snap := reg.Snapshot()
	if snap[`automon_shard_subtree_departures_total{group="1"}`] != 1 ||
		snap[`automon_shard_subtree_rejoins_total{group="1"}`] != 1 {
		t.Errorf("shard chaos counters not attributed to the storm tenant: %v %v",
			snap[`automon_shard_subtree_departures_total{group="1"}`],
			snap[`automon_shard_subtree_rejoins_total{group="1"}`])
	}
}
