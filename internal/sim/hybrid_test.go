package sim

import (
	"math"
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/stream"
)

// noisyQuadratic builds a workload whose per-node jitter makes pure AutoMon
// costlier than centralization at a tight ε, so the hybrid policy must kick
// in.
func noisyWorkload() (*core.Function, *stream.Dataset) {
	f := funcs.SqNorm(2)
	ds := stream.GaussianNoise(2, 6, 400, 1, 0.4, 11)
	return f, ds
}

func TestHybridCapsMessageRate(t *testing.T) {
	f, ds := noisyWorkload()
	eps := 0.02 // tight: plain AutoMon churns
	auto, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Run(Config{F: f, Data: ds, Algorithm: Hybrid, HybridWindow: 40, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	central, err := Run(Config{F: f, Data: ds, Algorithm: Centralization, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Messages <= central.Messages {
		t.Skipf("workload not churny enough to exercise the fallback (automon %d ≤ central %d)",
			auto.Messages, central.Messages)
	}
	if hybrid.Messages >= auto.Messages {
		t.Fatalf("hybrid (%d msgs) must beat plain AutoMon (%d) on a churny workload",
			hybrid.Messages, auto.Messages)
	}
	// The fallback budget allows at most ~centralization cost per window
	// plus the resync overhead; 2× centralization is a generous envelope.
	if hybrid.Messages > 2*central.Messages {
		t.Fatalf("hybrid (%d msgs) exceeded its budget envelope (central %d)",
			hybrid.Messages, central.Messages)
	}
	// Accuracy must not degrade: centralized phases are exact, AutoMon
	// phases carry the ADCD-E guarantee.
	if hybrid.MaxErr > eps+1e-9 {
		t.Fatalf("hybrid error %v above bound %v", hybrid.MaxErr, eps)
	}
}

func TestHybridStaysOnAutoMonWhenCheap(t *testing.T) {
	// On a quiet workload the budget is never exceeded, so Hybrid should
	// behave exactly like AutoMon (same messages).
	f := funcs.SqNorm(2)
	ds := stream.GaussianNoise(2, 4, 200, 1, 0.01, 3)
	eps := 0.5
	auto, err := Run(Config{F: f, Data: ds, Algorithm: AutoMon, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Run(Config{F: f, Data: ds, Algorithm: Hybrid, Core: core.Config{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.Messages != auto.Messages {
		t.Fatalf("quiet workload: hybrid %d msgs, automon %d", hybrid.Messages, auto.Messages)
	}
	if math.Abs(hybrid.MaxErr-auto.MaxErr) > 1e-12 {
		t.Fatalf("quiet workload: hybrid error %v, automon %v", hybrid.MaxErr, auto.MaxErr)
	}
}
