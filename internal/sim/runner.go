// Package sim is the discrete-event simulation harness of §4.1: it replays a
// dataset against a monitoring algorithm on a single machine while counting
// every message and byte that would cross the network, and tracking the
// approximation error of the coordinator's estimate against the true
// function of the global average. All of the paper's simulated experiments
// (Figures 3–9) are driven through this package.
package sim

import (
	"fmt"
	"math"
	"sort"

	"automon/internal/core"
	"automon/internal/linalg"
	"automon/internal/obs"
	"automon/internal/shard"
	"automon/internal/stream"
)

// Algorithm selects the monitoring strategy.
type Algorithm uint8

const (
	// AutoMon runs the full protocol of internal/core: ADCD-E/X selected
	// automatically, slack, and LRU lazy sync (unless disabled in Core).
	// Hand-crafted GM baselines (CB) also take this path via
	// Core.ZoneBuilder.
	AutoMon Algorithm = iota
	// Centralization sends every local-vector update to the coordinator;
	// zero error, maximal communication.
	Centralization
	// Periodic sends all local vectors every Period rounds; non-adaptive.
	Periodic
	// Hybrid runs AutoMon with the §6 fallback policy: when a budget window
	// costs more messages than centralization would, it centralizes for one
	// window and then re-engages AutoMon with a full resync.
	Hybrid
)

func (a Algorithm) String() string {
	switch a {
	case AutoMon:
		return "automon"
	case Centralization:
		return "centralization"
	case Hybrid:
		return "hybrid"
	}
	return "periodic"
}

// Config describes one monitoring run.
type Config struct {
	F    *core.Function
	Data *stream.Dataset

	Algorithm Algorithm
	Core      core.Config // AutoMon-family settings (ε is read from here for error accounting)
	Period    int         // Periodic: rounds between broadcasts

	// TuneRounds runs Algorithm 2 on the first TuneRounds monitored rounds
	// to pick the neighborhood size (only meaningful for ADCD-X runs with
	// Core.R == 0); monitoring statistics cover the remaining rounds.
	TuneRounds int

	// HybridWindow is the message-budget window (rounds) for the Hybrid
	// algorithm; 0 means 50.
	HybridWindow int

	// Elide enables safe-zone check elision for the AutoMon algorithm: each
	// round a node spends its cached distance-to-boundary budget by the
	// window vector's exact movement and re-runs the safe-zone check only
	// once the budget is exhausted (or a protocol event reset it). Protocol
	// outcomes are bit-identical to the per-round path. Requires F to carry
	// a curvature bound (constant Hessian or WithCurvature); Run fails
	// loudly otherwise.
	Elide bool

	// Shards > 0 runs the AutoMon algorithm through a hierarchical sharded
	// coordinator (internal/shard) with that many leaf shards instead of the
	// flat one. In the default routing mode the run is bit-identical to a
	// flat run over the same stream (the differential suite asserts it); with
	// ShardAbsorb leaves absorb safe-zone violations locally and the run is
	// ε-correct but not bitwise comparable. Only meaningful for AutoMon.
	Shards int
	// TreeFanout bounds the children per interior shard tier; 0 means
	// shard.DefaultFanout.
	TreeFanout int
	// ShardAbsorb selects shard.ModeAbsorb for a sharded run.
	ShardAbsorb bool
	// ShardChaos, when set on a sharded run, is invoked at the start of every
	// monitored round with the round index and the live tree — the
	// fault-injection hook chaos tests use to kill and rejoin whole sub-trees
	// mid-stream.
	ShardChaos func(round int, tree *shard.Tree)

	// Trace records per-round estimate/true/error series and the cumulative
	// message count (used by the time-series figures).
	Trace bool

	// Metrics, when set, exposes the run's traffic counters under
	// automon_sim_* names (and is handed to the core coordinator unless
	// Core.Metrics is already set). Because registration is get-or-create,
	// two runs sharing a registry without distinguishing MetricsLabels share
	// (and accumulate into) the same counters.
	Metrics *obs.Registry
	// MetricsLabels is the label set stamped on this run's automon_sim_*
	// metrics, e.g. `alg="automon",fn="inner_product"`.
	MetricsLabels string
}

// Result aggregates one run.
type Result struct {
	Algorithm string
	Function  string
	Rounds    int

	Messages       int
	MessagesByType map[core.MsgType]int
	PayloadBytes   int

	MaxErr, MeanErr, P99Err float64
	MissedRounds            int // rounds with error above ε

	// ElidedChecks counts monitored node-rounds whose safe-zone check the
	// elision budget skipped (Elide runs only; zero otherwise).
	ElidedChecks int

	Stats  core.CoordStats
	TunedR float64
	// FinalR is the coordinator's neighborhood radius when the run ended; it
	// differs from TunedR when §3.6 doubling or the adaptive controller moved
	// r during the run (AutoMon/Hybrid only).
	FinalR float64

	// Traces are populated when Config.Trace is set.
	TrueTrace, EstTrace, ErrTrace []float64
	CumMessages                   []int
}

// Outcome is the protocol-visible footprint of a run: everything the
// protocol determines and nothing the harness shape does. Differential
// suites DeepEqual the Outcome of a sharded-tree run against a flat run to
// prove the tree changes the topology, not the protocol.
type Outcome struct {
	Messages       int
	MessagesByType map[core.MsgType]int
	PayloadBytes   int

	MaxErr, MeanErr, P99Err float64
	MissedRounds            int
	ElidedChecks            int

	Stats          core.CoordStats
	TunedR, FinalR float64

	EstTrace    []float64
	CumMessages []int
}

// Outcome extracts the comparable footprint of the result.
func (r *Result) Outcome() Outcome {
	byType := make(map[core.MsgType]int, len(r.MessagesByType))
	for t, n := range r.MessagesByType {
		byType[t] = n
	}
	return Outcome{
		Messages:       r.Messages,
		MessagesByType: byType,
		PayloadBytes:   r.PayloadBytes,
		MaxErr:         r.MaxErr,
		MeanErr:        r.MeanErr,
		P99Err:         r.P99Err,
		MissedRounds:   r.MissedRounds,
		ElidedChecks:   r.ElidedChecks,
		Stats:          r.Stats,
		TunedR:         r.TunedR,
		FinalR:         r.FinalR,
		EstTrace:       r.EstTrace,
		CumMessages:    r.CumMessages,
	}
}

// countingComm implements core.NodeComm over in-process nodes while
// accounting for every message and its encoded payload size. The counts live
// in obs counters; the Result fields are refreshed from them on every count,
// so a registry scrape and the Result can never disagree. The baseline
// algorithms (centralization, periodic, hybrid fallback) use count too, with
// nodes unset.
type countingComm struct {
	nodes []*core.Node
	res   *Result

	// refresh, when set (elided runs), materializes node id's current window
	// vector into the node before a coordinator data pull, since the elided
	// path leaves node state stale on skipped rounds.
	refresh func(id int)

	reg     *obs.Registry
	lbl     func(extra string) string
	msgs    *obs.Counter
	payload *obs.Counter
	byType  map[core.MsgType]*obs.Counter
}

// newCountingComm wires the comm's counters, registering them when the run
// has a registry.
func newCountingComm(cfg Config, res *Result, nodes []*core.Node) *countingComm {
	// Per-metric labels come first, run-wide MetricsLabels after — the same
	// convention transport.Bind uses ({dir=...,side=...}).
	lbl := func(extra string) string {
		set := extra
		if cfg.MetricsLabels != "" {
			if set != "" {
				set += ","
			}
			set += cfg.MetricsLabels
		}
		if set == "" {
			return ""
		}
		return "{" + set + "}"
	}
	c := &countingComm{
		nodes:  nodes,
		res:    res,
		reg:    cfg.Metrics,
		lbl:    lbl,
		byType: make(map[core.MsgType]*obs.Counter),
	}
	c.msgs = simCounter(cfg.Metrics, "automon_sim_messages_total"+lbl(""),
		"Messages the simulated run would place on the network.")
	c.payload = simCounter(cfg.Metrics, "automon_sim_payload_bytes_total"+lbl(""),
		"Encoded payload bytes of the simulated run.")
	// Pre-register the known types so a scrape shows them at zero even
	// before the first message; typeCounter creates any type not listed
	// here on first sight, so new message types are never silently dropped.
	for _, t := range []core.MsgType{
		core.MsgViolation, core.MsgDataRequest, core.MsgDataResponse,
		core.MsgSync, core.MsgSlack, core.MsgRejoin,
		core.MsgPartial, core.MsgSubtreeRejoin,
	} {
		c.typeCounter(t)
	}
	return c
}

// typeCounter returns the per-message-type counter, creating (and, when the
// run has a registry, registering) it on first use.
func (c *countingComm) typeCounter(t core.MsgType) *obs.Counter {
	if ctr, ok := c.byType[t]; ok {
		return ctr
	}
	ctr := simCounter(c.reg,
		fmt.Sprintf("automon_sim_messages_by_type_total%s", c.lbl(fmt.Sprintf("type=%q", t))),
		"Simulated messages broken down by protocol message type.")
	c.byType[t] = ctr
	return ctr
}

// simCounter is the registry-or-standalone counter helper for this package.
func simCounter(reg *obs.Registry, name, help string) *obs.Counter {
	if c := reg.Counter(name, help); c != nil {
		return c
	}
	return obs.NewCounter()
}

func (c *countingComm) RequestData(id int) []float64 {
	if c.refresh != nil {
		c.refresh(id)
	}
	x := c.nodes[id].LocalVector()
	c.count(&core.DataRequest{NodeID: id})
	c.count(&core.DataResponse{NodeID: id, X: x})
	return x
}

func (c *countingComm) SendSync(id int, m *core.Sync) {
	c.count(m)
	c.nodes[id].ApplySync(m)
}

func (c *countingComm) SendSlack(id int, m *core.Slack) {
	c.count(m)
	c.nodes[id].ApplySlack(m)
}

func (c *countingComm) count(m core.Message) {
	t := m.Type()
	ctr := c.typeCounter(t)
	c.msgs.Inc()
	ctr.Inc()
	c.payload.Add(int64(len(m.Encode())))
	// The Result fields are views: always re-read from the counters.
	c.res.Messages = int(c.msgs.Load())
	c.res.MessagesByType[t] = int(ctr.Load())
	c.res.PayloadBytes = int(c.payload.Load())
}

// Run executes one monitoring run and returns its statistics.
func Run(cfg Config) (*Result, error) {
	if cfg.F == nil || cfg.Data == nil {
		return nil, fmt.Errorf("sim: config requires F and Data")
	}
	res := &Result{
		Algorithm:      cfg.Algorithm.String(),
		Function:       cfg.F.Name,
		MessagesByType: make(map[core.MsgType]int),
	}
	if cfg.Algorithm == Periodic {
		res.Algorithm = fmt.Sprintf("periodic-%d", cfg.Period)
	}

	ds := cfg.Data
	n := ds.Nodes
	windows := make([]stream.Windower, n)
	for i := range windows {
		windows[i] = ds.NewWindow()
	}
	// Warm-up: fill every window before monitoring starts (§4.2).
	for r := 0; r < ds.FillRounds(); r++ {
		for i := 0; i < n; i++ {
			windows[i].Push(ds.FillSample(r, i))
		}
	}
	for i := range windows {
		if !windows[i].Full() {
			return nil, fmt.Errorf("sim: window %d not full after warm-up", i)
		}
	}

	switch cfg.Algorithm {
	case Centralization:
		return runCentralization(cfg, res, windows)
	case Periodic:
		return runPeriodic(cfg, res, windows)
	case Hybrid:
		return runHybrid(cfg, res, windows)
	}
	return runAutoMon(cfg, res, windows)
}

// trueAverage computes the dataset-side ground truth x̄ from the windows.
func trueAverage(dst []float64, windows []stream.Windower) {
	vecs := make([][]float64, len(windows))
	for i, w := range windows {
		vecs[i] = w.Vector()
	}
	linalg.Mean(dst, vecs...)
}

func (r *Result) observe(cfg Config, est, truth float64, trace bool) {
	e := math.Abs(est - truth)
	r.ErrTrace = append(r.ErrTrace, e)
	if trace {
		r.EstTrace = append(r.EstTrace, est)
		r.TrueTrace = append(r.TrueTrace, truth)
		r.CumMessages = append(r.CumMessages, r.Messages)
	}
	if e > cfg.Core.Epsilon {
		r.MissedRounds++
	}
}

// finalize computes the error aggregates from the per-round series.
func (r *Result) finalize(trace bool) {
	errs := r.ErrTrace
	r.Rounds = len(errs)
	if len(errs) == 0 {
		return
	}
	var sum float64
	for _, e := range errs {
		sum += e
		if e > r.MaxErr {
			r.MaxErr = e
		}
	}
	r.MeanErr = sum / float64(len(errs))
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	r.P99Err = sorted[int(0.99*float64(len(sorted)-1))]
	if !trace {
		r.ErrTrace = nil
	}
}

func runAutoMon(cfg Config, res *Result, windows []stream.Windower) (*Result, error) {
	ds := cfg.Data
	n := ds.Nodes
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = core.NewNode(i, cfg.F)
		nodes[i].SetData(windows[i].Vector())
	}
	comm := newCountingComm(cfg, res, nodes)
	if cfg.Elide {
		for i := range nodes {
			if !nodes[i].EnableElision() {
				return nil, fmt.Errorf("sim: elision needs a curvature bound for %s (constant Hessian or WithCurvature)", cfg.F.Name)
			}
		}
		// A skipped round leaves node state stale, so data pulls must
		// materialize the current window vector first. SetData resets the
		// elision budget, and every pulled node then receives a sync or slack
		// (which reset it again), so budget soundness is preserved.
		comm.refresh = func(id int) { nodes[id].SetData(windows[id].Vector()) }
	}

	startRound := 0
	coreCfg := cfg.Core
	if coreCfg.Metrics == nil {
		coreCfg.Metrics = cfg.Metrics
	}
	needsTuning := cfg.TuneRounds > 0 && coreCfg.R == 0 &&
		!coreCfg.DisableADCD && coreCfg.ZoneBuilder == nil && !cfg.F.HasConstantHessian()
	if needsTuning {
		// Build the tuning replay from the first TuneRounds monitored
		// rounds, advancing the real windows as we go (the tuning prefix is
		// consumed, as in §4.2).
		tuneData := make(core.TuningData, 0, cfg.TuneRounds+1)
		snapshot := func() [][]float64 {
			vecs := make([][]float64, n)
			for i := range vecs {
				vecs[i] = linalg.Clone(windows[i].Vector())
			}
			return vecs
		}
		tuneData = append(tuneData, snapshot())
		for r := 0; r < cfg.TuneRounds && r < ds.Rounds; r++ {
			for i := 0; i < n; i++ {
				if s := ds.Sample(r, i); s != nil {
					windows[i].Push(s)
				}
			}
			tuneData = append(tuneData, snapshot())
			startRound++
		}
		tuned, err := core.Tune(cfg.F, tuneData, n, coreCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: neighborhood tuning: %w", err)
		}
		coreCfg.R = tuned.R
		res.TunedR = tuned.R
		for i := range nodes {
			nodes[i].SetData(windows[i].Vector())
		}
	}

	// The flat coordinator and the sharded tree expose the same monitor
	// surface; which one runs is purely a topology choice.
	var coord interface {
		Init() error
		HandleViolation(v *core.Violation) error
		Estimate() float64
		Stats() core.CoordStats
		R() float64
	}
	var tree *shard.Tree
	if cfg.Shards > 0 {
		mode := shard.ModeRoute
		if cfg.ShardAbsorb {
			mode = shard.ModeAbsorb
		}
		var err error
		tree, err = shard.NewTree(cfg.F, n, coreCfg, comm, shard.Options{
			Shards: cfg.Shards,
			Fanout: cfg.TreeFanout,
			Mode:   mode,
		})
		if err != nil {
			return nil, err
		}
		coord = tree
	} else {
		coord = core.NewCoordinator(cfg.F, n, coreCfg, comm)
	}
	if err := coord.Init(); err != nil {
		return nil, err
	}

	// prev tracks each node's last-seen window vector so the elided path can
	// spend the budget by the round's exact movement ‖x_r − x_{r−1}‖.
	var prev [][]float64
	if cfg.Elide {
		prev = make([][]float64, n)
		for i := range prev {
			prev[i] = linalg.Clone(windows[i].Vector())
		}
	}

	avg := make([]float64, cfg.F.Dim())
	for r := startRound; r < ds.Rounds; r++ {
		if tree != nil && cfg.ShardChaos != nil {
			cfg.ShardChaos(r, tree)
		}
		for i := 0; i < n; i++ {
			s := ds.Sample(r, i)
			if s == nil {
				continue
			}
			windows[i].Push(s)
			var v *core.Violation
			if cfg.Elide {
				x := windows[i].Vector()
				norm := math.Sqrt(linalg.SqDist(x, prev[i]))
				copy(prev[i], x)
				if !nodes[i].SpendBudget(norm) {
					res.ElidedChecks++
					continue // proven inside the safe zone: no exact check
				}
				v = nodes[i].UpdateDataRefresh(x)
			} else {
				v = nodes[i].UpdateData(windows[i].Vector())
			}
			if v == nil {
				continue
			}
			if tree != nil && !tree.Live(i) {
				// A node in a killed sub-tree is partitioned away from the
				// coordinator: its window keeps evolving but its violations
				// never reach the wire until the sub-tree rejoins.
				continue
			}
			comm.count(v)
			if err := coord.HandleViolation(v); err != nil {
				return nil, err
			}
		}
		trueAverage(avg, windows)
		res.observe(cfg, coord.Estimate(), cfg.F.Value(avg), cfg.Trace)
	}
	res.Stats = coord.Stats()
	res.FinalR = coord.R()
	if res.TunedR == 0 {
		res.TunedR = coord.R()
	}
	res.finalize(cfg.Trace)
	return res, nil
}

func runCentralization(cfg Config, res *Result, windows []stream.Windower) (*Result, error) {
	ds := cfg.Data
	comm := newCountingComm(cfg, res, nil)
	avg := make([]float64, cfg.F.Dim())
	for r := 0; r < ds.Rounds; r++ {
		for i := 0; i < ds.Nodes; i++ {
			s := ds.Sample(r, i)
			if s == nil {
				continue
			}
			windows[i].Push(s)
			comm.count(&core.DataResponse{NodeID: i, X: windows[i].Vector()})
		}
		trueAverage(avg, windows)
		truth := cfg.F.Value(avg)
		res.observe(cfg, truth, truth, cfg.Trace) // exact estimate
	}
	res.finalize(cfg.Trace)
	return res, nil
}

func runPeriodic(cfg Config, res *Result, windows []stream.Windower) (*Result, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("sim: periodic baseline requires Period > 0")
	}
	ds := cfg.Data
	comm := newCountingComm(cfg, res, nil)
	avg := make([]float64, cfg.F.Dim())
	trueAverage(avg, windows)
	est := cfg.F.Value(avg)
	for r := 0; r < ds.Rounds; r++ {
		for i := 0; i < ds.Nodes; i++ {
			if s := ds.Sample(r, i); s != nil {
				windows[i].Push(s)
			}
		}
		if (r+1)%cfg.Period == 0 {
			for i := 0; i < ds.Nodes; i++ {
				comm.count(&core.DataResponse{NodeID: i, X: windows[i].Vector()})
			}
			trueAverage(avg, windows)
			est = cfg.F.Value(avg)
		}
		trueAverage(avg, windows)
		res.observe(cfg, est, cfg.F.Value(avg), cfg.Trace)
	}
	res.finalize(cfg.Trace)
	return res, nil
}
