package sim

import (
	"fmt"
	"sync"
)

// RunGroups executes several independent monitoring runs concurrently, one
// goroutine per group — the in-process analogue of a
// transport.MultiCoordinator hosting several tenants over one listener.
// Results come back in input order and each is bit-identical to what a solo
// Run of the same Config would produce: the runs share no mutable state, so
// concurrency cannot perturb them.
//
// When groups share a metrics registry, same-named counters are get-or-create
// and would silently accumulate across tenants; any group that has a registry
// but no MetricsLabels of its own is therefore stamped with a group="<index>"
// label, on both its sim counters and its core coordinator metrics.
func RunGroups(cfgs []Config) ([]*Result, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sim: RunGroups requires at least one group")
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		cfg := cfgs[i]
		if cfg.Metrics != nil && cfg.MetricsLabels == "" {
			cfg.MetricsLabels = fmt.Sprintf("group=%q", fmt.Sprint(i))
		}
		if (cfg.Core.Metrics != nil || cfg.Metrics != nil) && cfg.Core.MetricsLabels == "" {
			cfg.Core.MetricsLabels = fmt.Sprintf("group=%q", fmt.Sprint(i))
		}
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			res, err := Run(cfg)
			if err != nil {
				errs[i] = fmt.Errorf("sim: group %d: %w", i, err)
				return
			}
			results[i] = res
		}(i, cfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
