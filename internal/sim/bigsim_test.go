package sim

import (
	"math"
	"os"
	"runtime"
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/shard"
	"automon/internal/stream"
)

// TestBigTreeSim is the scale smoke (CI's big-sim job, gated behind
// AUTOMON_BIG_SIM=1): 100 000 nodes through a three-tier tree (64 leaf
// shards at fan-out 8), with a whole-sub-tree kill and rejoin mid-run. The
// run must hold the ε guarantee and stay under a heap ceiling — per-shard
// state is O(partition size), so the tree adds only a constant factor over
// the node vectors themselves.
func TestBigTreeSim(t *testing.T) {
	if os.Getenv("AUTOMON_BIG_SIM") == "" {
		t.Skip("set AUTOMON_BIG_SIM=1 to run the 100k-node smoke")
	}
	const (
		n      = 100_000
		rounds = 4
		dim    = 2
	)
	data := stream.NewCustom("big-drift", n, rounds, 2, dim, func(r, i int) []float64 {
		base := 0.5 + 0.1*math.Sin(float64(i%97)/97)
		return []float64{base, base + 0.001*float64(r)}
	})
	var chaosErr error
	var liveHeap uint64
	cfg := Config{
		F:    funcs.SqNorm(dim),
		Data: data,
		Core: core.Config{Epsilon: 0.5},

		Shards:     64,
		TreeFanout: 8,
		ShardChaos: func(round int, tr *shard.Tree) {
			// Shard 64 is the first interior branch: leaves 0–7, an eighth of
			// the population. Kill it on round 1, heal it on round 2.
			switch round {
			case 1:
				if err := tr.KillSubtree(64); err != nil && chaosErr == nil {
					chaosErr = err
				}
			case 2:
				if err := tr.RejoinSubtree(64, nil); err != nil && chaosErr == nil {
					chaosErr = err
				}
			case rounds - 1:
				// Measure the live set while every window, node, and shard
				// structure is still reachable — after the run it is all
				// garbage and the ceiling would assert nothing.
				var ms runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&ms)
				liveHeap = ms.HeapAlloc
			}
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	if res.Stats.NodeDeaths != n/8 || res.Stats.Rejoins != n/8 {
		t.Errorf("sub-tree chaos tallies wrong: deaths=%d rejoins=%d, want %d each",
			res.Stats.NodeDeaths, res.Stats.Rejoins, n/8)
	}
	// Rounds 1–2 run degraded by design; the guarantee must hold outside the
	// partition window.
	for _, r := range []int{0, 3} {
		if res.ErrTrace != nil && res.ErrTrace[r] > cfg.Core.Epsilon {
			t.Errorf("round %d error %v exceeds ε=%v", r, res.ErrTrace[r], cfg.Core.Epsilon)
		}
	}
	if res.MissedRounds > 2 {
		t.Errorf("%d rounds over ε; only the two degraded rounds may miss", res.MissedRounds)
	}

	const heapCeiling = 1 << 30 // 1 GiB for 100k nodes ≈ 10 KiB/node, generous
	if liveHeap == 0 {
		t.Error("in-run heap measurement never ran")
	}
	if liveHeap > heapCeiling {
		t.Errorf("live heap during run: %d MiB exceeds the %d MiB ceiling",
			liveHeap>>20, heapCeiling>>20)
	}
	t.Logf("n=%d rounds=%d msgs=%d fullsyncs=%d live heap=%d MiB",
		n, res.Rounds, res.Messages, res.Stats.FullSyncs, liveHeap>>20)
}
