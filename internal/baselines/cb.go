// Package baselines implements the hand-crafted comparison methods of the
// evaluation. Centralization and Periodic live in internal/sim (they are
// trivial schedules); this package provides CB — the Convex Bound method of
// Lazerson et al. [41] — as a drop-in ZoneBuilder for the GM protocol in
// internal/core. For the inner product, CB uses the identity
//
//	⟨u, v⟩ = ¼‖u+v‖² − ¼‖u−v‖²
//
// as a manually derived convex difference, with the §3.3 tangent-plane
// constraints. The paper proves this is equivalent to what ADCD-E derives
// automatically (§4.3); keeping an independent implementation lets the
// benches confirm that equivalence empirically.
package baselines

import (
	"automon/internal/core"
	"automon/internal/linalg"
)

// ConvexBoundInnerProduct returns a core.Config ZoneBuilder implementing the
// CB safe zone for f([u, v]) = ⟨u, v⟩ with u, v ∈ R^half.
func ConvexBoundInnerProduct(half int) func(f *core.Function, x0 []float64, l, u float64) *core.SafeZone {
	g := func(x []float64) float64 { // ¼‖u+v‖²
		var s float64
		for i := 0; i < half; i++ {
			t := x[i] + x[half+i]
			s += t * t
		}
		return 0.25 * s
	}
	h := func(x []float64) float64 { // ¼‖u−v‖²
		var s float64
		for i := 0; i < half; i++ {
			t := x[i] - x[half+i]
			s += t * t
		}
		return 0.25 * s
	}
	// Gradients: ∇g = ½[(u+v); (u+v)], ∇h = ½[(u−v); −(u−v)].
	gradG := func(x, out []float64) {
		for i := 0; i < half; i++ {
			s := 0.5 * (x[i] + x[half+i])
			out[i] = s
			out[half+i] = s
		}
	}
	gradH := func(x, out []float64) {
		for i := 0; i < half; i++ {
			s := 0.5 * (x[i] - x[half+i])
			out[i] = s
			out[half+i] = -s
		}
	}

	return func(f *core.Function, x0 []float64, l, u float64) *core.SafeZone {
		d := 2 * half
		g0 := g(x0)
		h0 := h(x0)
		dg := make([]float64, d)
		dh := make([]float64, d)
		gradG(x0, dg)
		gradH(x0, dh)
		grad := make([]float64, d)
		f0 := f.Grad(x0, grad)
		return &core.SafeZone{
			Method: core.MethodCustom,
			Kind:   core.ConvexDiff,
			X0:     linalg.Clone(x0),
			F0:     f0,
			GradF0: grad,
			L:      l,
			U:      u,
			// Constraints (4) of §3.3 on the hand-crafted decomposition:
			//   g(x) ≤ h(x0) + ∇h(x0)ᵀ(x−x0) + U
			//   h(x) ≤ g(x0) + ∇g(x0)ᵀ(x−x0) − L
			Custom: func(_ *core.Function, v []float64) bool {
				var linH, linG float64
				for i := range v {
					diff := v[i] - x0[i]
					linH += dh[i] * diff
					linG += dg[i] * diff
				}
				if g(v) > h0+linH+u {
					return false
				}
				if h(v) > g0+linG-l {
					return false
				}
				return true
			},
		}
	}
}
