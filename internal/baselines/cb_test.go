package baselines

import (
	"math/rand"
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/linalg"
)

func TestCBZoneSoundAndConvex(t *testing.T) {
	const half = 3
	f := funcs.InnerProduct(half)
	build := ConvexBoundInnerProduct(half)
	rng := rand.New(rand.NewSource(11))

	x0 := make([]float64, 2*half)
	for i := range x0 {
		x0[i] = rng.NormFloat64() * 0.5
	}
	f0 := f.Value(x0)
	zone := build(f, x0, f0-0.4, f0+0.4)

	var inZone [][]float64
	for trial := 0; trial < 8000; trial++ {
		v := make([]float64, 2*half)
		for i := range v {
			v[i] = x0[i] + rng.NormFloat64()*0.5
		}
		if zone.Contains(f, v) {
			// Soundness: CB's hand-derived decomposition is exact, so the
			// zone must sit inside the admissible region.
			if !zone.InAdmissibleRegion(f, v) {
				t.Fatalf("CB zone point %v outside admissible region (f = %v)", v, f.Value(v))
			}
			inZone = append(inZone, v)
		}
	}
	if len(inZone) < 50 {
		t.Fatalf("too few in-zone samples: %d", len(inZone))
	}
	mean := make([]float64, 2*half)
	for trial := 0; trial < 500; trial++ {
		a := inZone[rng.Intn(len(inZone))]
		b := inZone[rng.Intn(len(inZone))]
		linalg.Mean(mean, a, b)
		if !zone.Contains(f, mean) {
			t.Fatalf("CB zone not convex: midpoint %v escaped", mean)
		}
	}
}

func TestCBZoneEquivalentToADCDE(t *testing.T) {
	// §4.3 claims CB's ¼‖u+v‖² − ¼‖u−v‖² equals the ADCD-E decomposition
	// for the inner product. The two safe zones must agree pointwise.
	const half = 2
	f := funcs.InnerProduct(half)
	x0 := []float64{0.3, -0.2, 0.5, 0.1}
	f0 := f.Value(x0)
	l, u := f0-0.3, f0+0.3

	cb := ConvexBoundInnerProduct(half)(f, x0, l, u)
	dec, err := core.DecomposeE(f, x0)
	if err != nil {
		t.Fatal(err)
	}
	e := core.BuildZoneE(f, dec, x0, l, u)

	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5000; trial++ {
		v := make([]float64, 2*half)
		for i := range v {
			v[i] = x0[i] + rng.NormFloat64()*0.6
		}
		if cb.Contains(f, v) != e.Contains(f, v) {
			t.Fatalf("CB and ADCD-E disagree at %v: cb=%v e=%v",
				v, cb.Contains(f, v), e.Contains(f, v))
		}
	}
}
