package sketch

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestRowSeedBitIdentical(t *testing.T) {
	// The precomputed per-row seeds must reproduce the original double-hash
	// bucket/sign assignment exactly — sketches written by older builds stay
	// mergeable with sketches written by this one.
	a, _ := NewAMS(6, 48, 0xfeed)
	for row := 0; row < a.Rows; row++ {
		for item := uint64(0); item < 500; item++ {
			v := mix64(item ^ mix64(uint64(row)+a.seed))
			wantCol := int(v % uint64(a.Cols))
			wantSign := -1.0
			if (v>>32)&1 == 1 {
				wantSign = 1.0
			}
			col, sign := a.cell(row, item)
			if col != wantCol || sign != wantSign {
				t.Fatalf("row %d item %d: cell (%d, %v), reference (%d, %v)", row, item, col, sign, wantCol, wantSign)
			}
		}
	}
	cm, _ := NewCountMin(6, 48, 0xfeed)
	for row := 0; row < cm.Rows; row++ {
		for item := uint64(0); item < 500; item++ {
			want := int(mix64(item^mix64(uint64(row)+cm.seed+0x5bd1)) % uint64(cm.Cols))
			if got := cm.cell(row, item); got != want {
				t.Fatalf("countmin row %d item %d: cell %d, reference %d", row, item, got, want)
			}
		}
	}
}

func TestMergeMismatchRejected(t *testing.T) {
	base, _ := NewAMS(4, 32, 7)
	cases := []*AMS{}
	shape, _ := NewAMS(4, 64, 7)
	rows, _ := NewAMS(8, 32, 7)
	seed, _ := NewAMS(4, 32, 8)
	cases = append(cases, shape, rows, seed)
	for _, other := range cases {
		err := base.Merge(other)
		if err == nil {
			t.Fatalf("merge of %dx%d seed %d into %dx%d seed %d accepted",
				other.Rows, other.Cols, other.seed, base.Rows, base.Cols, base.seed)
		}
		var mm *MismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("merge error is %T, want *MismatchError", err)
		}
		if mm.Op != "merge" || mm.Kind != "ams" {
			t.Fatalf("mismatch error fields: %+v", mm)
		}
		if !strings.Contains(mm.Error(), "incompatible") {
			t.Fatalf("error text: %q", mm.Error())
		}
		if _, err := AverageAMS(base, other); err == nil {
			t.Fatal("average of incompatible sketches accepted")
		}
	}
	// A rejected merge must leave the receiver untouched.
	base.Add(1, 2)
	before := append([]float64(nil), base.Vector()...)
	seed.Add(1, 5)
	if err := base.Merge(seed); err == nil {
		t.Fatal("expected mismatch")
	}
	for i, v := range base.Vector() {
		if v != before[i] {
			t.Fatal("failed merge mutated the receiver")
		}
	}

	cmA, _ := NewCountMin(4, 32, 7)
	cmB, _ := NewCountMin(4, 32, 9)
	err := cmA.Merge(cmB)
	var mm *MismatchError
	if !errors.As(err, &mm) || mm.Kind != "countmin" {
		t.Fatalf("countmin merge error: %v", err)
	}
	if _, err := AverageCountMin(cmA, cmB); err == nil {
		t.Fatal("countmin average of incompatible sketches accepted")
	}
}

func TestMergeAndAverage(t *testing.T) {
	a, _ := NewAMS(4, 32, 3)
	b, _ := NewAMS(4, 32, 3)
	a.Add(10, 2)
	b.Add(11, -3)

	both, _ := NewAMS(4, 32, 3)
	both.Add(10, 2)
	both.Add(11, -3)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Vector() {
		if math.Abs(a.Vector()[i]-both.Vector()[i]) > 1e-12 {
			t.Fatal("merge is not stream concatenation")
		}
	}

	// Average of node sketches = sketch of the averaged stream.
	n1, _ := NewAMS(4, 32, 3)
	n2, _ := NewAMS(4, 32, 3)
	n1.Add(10, 4)
	n2.Add(11, 2)
	avg, err := AverageAMS(n1, n2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewAMS(4, 32, 3)
	want.Add(10, 2)
	want.Add(11, 1)
	for i := range avg.Vector() {
		if math.Abs(avg.Vector()[i]-want.Vector()[i]) > 1e-12 {
			t.Fatal("average is not the sketch of the average stream")
		}
	}
	if avg.Seed() != n1.Seed() {
		t.Fatal("average must preserve the seed")
	}

	c1, _ := NewCountMin(2, 16, 5)
	c2, _ := NewCountMin(2, 16, 5)
	c1.Add(3, 4)
	c2.Add(3, 2)
	cavg, err := AverageCountMin(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if got := cavg.Count(3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("averaged count = %v, want 3", got)
	}
	if _, err := AverageAMS(); err == nil {
		t.Fatal("empty average accepted")
	}
	if _, err := AverageCountMin(); err == nil {
		t.Fatal("empty countmin average accepted")
	}
}

func TestQueryFamily(t *testing.T) {
	// F2Query over a sketch vector equals the sketch's own F2 estimate.
	a, _ := NewAMS(4, 16, 1)
	for i := uint64(0); i < 40; i++ {
		a.Add(i%7, 1)
	}
	f := F2Query(4, 16)
	if got, want := f.Value(a.Vector()), a.F2(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("F2Query = %v, sketch F2 = %v", got, want)
	}
	if _, _, ok := f.CurvBound(); !ok {
		t.Fatal("F2Query must expose an automatic curvature bound")
	}

	// EntropyQuery carries an explicit domain-only curvature bound.
	e := EntropyQuery(3, 8, 0.05)
	k, domainOnly, ok := e.CurvBound()
	if !ok || !domainOnly {
		t.Fatalf("entropy curvature: k=%v domainOnly=%v ok=%v", k, domainOnly, ok)
	}
	if want := (1.0 / 3) / 0.05; math.Abs(k-want) > 1e-12 {
		t.Fatalf("entropy curvature bound = %v, want %v", k, want)
	}
	// Uniform scaled counters: entropy of d equal masses p with smoothing.
	d := 3 * 8
	x := make([]float64, d)
	for i := range x {
		x[i] = 0.25
	}
	p := 0.25 + 0.05
	want := -(float64(d) * p * math.Log(p)) / 3
	if got := e.Value(x); math.Abs(got-want) > 1e-9 {
		t.Fatalf("entropy value = %v, want %v", got, want)
	}

	// InnerProductQuery over stacked same-seed sketches estimates ⟨u, v⟩.
	rows, cols := 8, 128
	su, _ := NewAMS(rows, cols, 9)
	sv, _ := NewAMS(rows, cols, 9)
	// u = v = indicator-ish stream: ⟨u, v⟩ = Σ freq².
	var exact float64
	for i := uint64(0); i < 30; i++ {
		su.Add(i, 1)
		sv.Add(i, 1)
		exact++
	}
	ip := InnerProductQuery(rows, cols)
	x2 := make([]float64, 2*rows*cols)
	copy(x2, su.Vector())
	copy(x2[rows*cols:], sv.Vector())
	if got := ip.Value(x2); math.Abs(got-exact)/exact > 0.5 {
		t.Fatalf("inner product estimate = %v, exact %v", got, exact)
	}
	if !ip.HasConstantHessian() {
		t.Fatal("inner-product query must have a constant Hessian (ADCD-E)")
	}
}

func TestCountMinMergeAccumulates(t *testing.T) {
	a, _ := NewCountMin(2, 16, 5)
	b, _ := NewCountMin(2, 16, 5)
	a.Add(3, 4)
	b.Add(3, 2)
	b.Add(7, 1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(3); math.Abs(got-6) > 1e-12 {
		t.Fatalf("merged count(3) = %v, want 6", got)
	}
	if got := a.Count(7); math.Abs(got-1) > 1e-12 {
		t.Fatalf("merged count(7) = %v, want 1", got)
	}
	if a.Seed() != b.Seed() {
		t.Fatal("merge must not change the hash family")
	}
}
