// Package sketch implements linear stream sketches in the turnstile model —
// AMS (Tug-of-War) and Count-Min — and their composition with AutoMon.
//
// §5 of the AutoMon paper observes that the technique is compatible with
// most sketches because they are linear: "AutoMon can monitor a linear
// sketch by defining f as the query function and x as the sketched data
// structure, since x̄ = 1/n Σ xᵢ". Concretely, each node sketches its local
// substream; the average of the node sketches is exactly the sketch of the
// average frequency vector, so running AutoMon on the query function over
// the sketch vector monitors the global statistic with sub-linear local
// state. The AMS second-moment query is a quadratic form of the sketch, so
// AutoMon selects ADCD-E and the approximation guarantee is deterministic.
package sketch

import "errors"

// mix64 is SplitMix64: a deterministic 64-bit finalizer used for bucket and
// sign hashing, so sketches are reproducible across processes and mergeable
// whenever they share a seed.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Update is one turnstile event: Item's frequency changes by Delta. It is
// the event currency of the ingestion layer (internal/ingest) and the
// stream-level event generators.
type Update struct {
	Item  uint64
	Delta float64
}

// StreamB tags an Update as belonging to the second stream of a two-stream
// source (the inner-product query sketches streams u and v side by side):
// set the bit on Item to route the event; the remaining 63 bits identify
// the item.
const StreamB uint64 = 1 << 63

// AMS is an AMS (Alon–Matias–Szegedy) "Tug-of-War" sketch with Rows × Cols
// counters: every row r keeps S[r][c] = Σ_i s_r(i)·freq(i)·[h_r(i) = c],
// and the second moment F₂ is estimated per row by Σ_c S[r][c]², with the
// final estimate the mean across rows. (The mean keeps the query a smooth
// quadratic form — the classical median is not differentiable — and is
// unbiased as well.)
type AMS struct {
	Rows, Cols int
	seed       uint64
	// rowSeed[r] = mix64(r + seed) is precomputed so the per-event Add loop
	// finalizes one mix64 per row instead of two; the cell function is
	// bit-identical to hashing item ^ mix64(row + seed) on the fly.
	rowSeed []uint64
	data    []float64
}

// NewAMS creates an AMS sketch. Sketches with equal shapes and seeds are
// mergeable: node sketches average coordinate-wise into the sketch of the
// average stream.
func NewAMS(rows, cols int, seed uint64) (*AMS, error) {
	if rows <= 0 || cols <= 0 {
		return nil, errors.New("sketch: AMS needs positive shape")
	}
	rs := make([]uint64, rows)
	for r := range rs {
		rs[r] = mix64(uint64(r) + seed)
	}
	return &AMS{Rows: rows, Cols: cols, seed: seed, rowSeed: rs, data: make([]float64, rows*cols)}, nil
}

// Seed returns the hash seed the sketch was built with; sketches combine
// only when their seeds (hash families) and shapes agree.
func (a *AMS) Seed() uint64 { return a.seed }

// cell returns the (bucket, sign) of an item within a row.
func (a *AMS) cell(row int, item uint64) (col int, sign float64) {
	v := mix64(item ^ a.rowSeed[row])
	col = int(v % uint64(a.Cols))
	if (v>>32)&1 == 1 {
		return col, 1
	}
	return col, -1
}

// Add applies a turnstile update: item frequency changes by delta (which
// may be negative).
func (a *AMS) Add(item uint64, delta float64) {
	for r := 0; r < a.Rows; r++ {
		c, s := a.cell(r, item)
		a.data[r*a.Cols+c] += s * delta
	}
}

// Vector exposes the sketch as the flat local vector AutoMon monitors. The
// returned slice aliases the sketch's storage; copy before mutating.
func (a *AMS) Vector() []float64 { return a.data }

// Dim returns the monitored vector length.
func (a *AMS) Dim() int { return a.Rows * a.Cols }

// F2 returns the sketch's second-moment estimate: the mean over rows of the
// per-row sum of squared counters.
func (a *AMS) F2() float64 {
	var total float64
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			v := a.data[r*a.Cols+c]
			total += v * v
		}
	}
	return total / float64(a.Rows)
}

// CountMin is a Count-Min sketch (cash-register model), the second
// linear-sketch substrate: point queries upper-bound item frequencies, and
// node sketches average exactly like AMS.
type CountMin struct {
	Rows, Cols int
	seed       uint64
	// rowSeed[r] = mix64(r + seed + 0x5bd1): same one-mix64-per-event trick
	// as AMS, bit-identical buckets to the on-the-fly double hash.
	rowSeed []uint64
	data    []float64
}

// NewCountMin creates a Count-Min sketch.
func NewCountMin(rows, cols int, seed uint64) (*CountMin, error) {
	if rows <= 0 || cols <= 0 {
		return nil, errors.New("sketch: CountMin needs positive shape")
	}
	rs := make([]uint64, rows)
	for r := range rs {
		rs[r] = mix64(uint64(r) + seed + 0x5bd1)
	}
	return &CountMin{Rows: rows, Cols: cols, seed: seed, rowSeed: rs, data: make([]float64, rows*cols)}, nil
}

// Seed returns the hash seed the sketch was built with.
func (c *CountMin) Seed() uint64 { return c.seed }

func (c *CountMin) cell(row int, item uint64) int {
	return int(mix64(item^c.rowSeed[row]) % uint64(c.Cols))
}

// Add increases an item's count by delta (delta ≥ 0 for the classical
// guarantee).
func (c *CountMin) Add(item uint64, delta float64) {
	for r := 0; r < c.Rows; r++ {
		c.data[r*c.Cols+c.cell(r, item)] += delta
	}
}

// Count returns the point-query estimate (minimum across rows); it never
// underestimates for non-negative updates.
func (c *CountMin) Count(item uint64) float64 {
	min := c.data[c.cell(0, item)]
	for r := 1; r < c.Rows; r++ {
		if v := c.data[r*c.Cols+c.cell(r, item)]; v < min {
			min = v
		}
	}
	return min
}

// Vector exposes the sketch as a flat vector (aliases storage).
func (c *CountMin) Vector() []float64 { return c.data }

// Dim returns the monitored vector length.
func (c *CountMin) Dim() int { return c.Rows * c.Cols }
