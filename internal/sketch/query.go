package sketch

import (
	"fmt"

	"automon/internal/autodiff"
	"automon/internal/core"
)

// F2Query is the §5 sketch-composition query for an AMS sketch with the
// given shape flattened into the local vector: f(x) = (1/rows)·Σ xᵢ², the
// mean-estimator second moment. A positive-semidefinite quadratic form, so
// AutoMon selects ADCD-E and the approximation guarantee is deterministic;
// the constant Hessian also gives check elision its curvature bound for
// free.
func F2Query(rows, cols int) *core.Function {
	d := rows * cols
	inv := 1.0 / float64(rows)
	return core.NewFunction(fmt.Sprintf("ams-f2-%dx%d", rows, cols), d,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			return b.Mul(b.Const(inv), b.SqNorm(x))
		})
}

// EntropyQuery monitors the smoothed entropy of a Count-Min sketch whose
// counters are scaled into [0, 1] (each row of the sketch is a coarsened
// histogram of the stream, so the per-row entropy of the bucket masses
// estimates the stream entropy up to the collision coarsening):
//
//	f(x) = (1/rows)·Σᵢ −(xᵢ+τ)·log(xᵢ+τ)
//
// The Hessian is diagonal with entries −1/(rows·(xᵢ+τ)), so on the [0, 1]
// domain ‖∇²f‖₂ ≤ 1/(rows·τ) — the explicit curvature bound that licenses
// check elision for this non-constant-Hessian query.
func EntropyQuery(rows, cols int, tau float64) *core.Function {
	d := rows * cols
	inv := 1.0 / float64(rows)
	f := core.NewFunction(fmt.Sprintf("cm-entropy-%dx%d", rows, cols), d,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			t := b.Const(tau)
			terms := make([]autodiff.Ref, d)
			for i := 0; i < d; i++ {
				p := b.Add(x[i], t)
				terms[i] = b.Mul(p, b.Log(p))
			}
			return b.Mul(b.Const(-inv), b.Sum(terms...))
		})
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range hi {
		hi[i] = 1
	}
	return f.WithDomain(lo, hi).WithCurvature(inv / tau)
}

// InnerProductQuery monitors the inner product of two streams sketched into
// a pair of same-seed AMS sketches stacked into one local vector
// x = [sketch(u), sketch(v)]:
//
//	f(x) = (1/rows)·⟨x[:d], x[d:]⟩
//
// which is the classical AMS inner-product estimator (per-row dot products
// of the tug-of-war counters, mean across rows). The Hessian is constant,
// so ADCD-E applies and elision derives its curvature bound automatically.
func InnerProductQuery(rows, cols int) *core.Function {
	d := rows * cols
	inv := 1.0 / float64(rows)
	return core.NewFunction(fmt.Sprintf("sketch-ip-%dx%d", rows, cols), 2*d,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			return b.Mul(b.Const(inv), b.Dot(x[:d], x[d:]))
		})
}
