package sketch

import "fmt"

// MismatchError reports an attempt to combine sketches whose hash families or
// shapes disagree. Combining such sketches is not an approximation error —
// the buckets are unrelated and every query on the result is silently wrong —
// so every combine path rejects it with this typed error.
type MismatchError struct {
	Op           string // "merge", "average", "ingest", ...
	Kind         string // "ams" or "countmin"
	RowsA, ColsA int
	RowsB, ColsB int
	SeedA, SeedB uint64
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("sketch: %s %s: incompatible sketches (shape %dx%d seed %#x vs shape %dx%d seed %#x)",
		e.Op, e.Kind, e.RowsA, e.ColsA, e.SeedA, e.RowsB, e.ColsB, e.SeedB)
}

// Compatible reports whether two AMS sketches share a hash family and shape,
// returning a typed *MismatchError when they do not.
func (a *AMS) Compatible(op string, b *AMS) error {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.seed != b.seed {
		return &MismatchError{Op: op, Kind: "ams",
			RowsA: a.Rows, ColsA: a.Cols, SeedA: a.seed,
			RowsB: b.Rows, ColsB: b.Cols, SeedB: b.seed}
	}
	return nil
}

// Merge adds b into a (sketch linearity: the merged sketch is the sketch of
// the concatenated streams). Errors with *MismatchError on seed or shape
// disagreement, leaving a unchanged.
func (a *AMS) Merge(b *AMS) error {
	if err := a.Compatible("merge", b); err != nil {
		return err
	}
	for i, v := range b.data {
		a.data[i] += v
	}
	return nil
}

// AverageAMS returns a new sketch holding the coordinate-wise mean of the
// inputs — the sketch of the average stream, which is exactly the x̄ AutoMon
// monitors. All inputs must share shape and seed.
func AverageAMS(sketches ...*AMS) (*AMS, error) {
	if len(sketches) == 0 {
		return nil, &MismatchError{Op: "average", Kind: "ams"}
	}
	first := sketches[0]
	out, err := NewAMS(first.Rows, first.Cols, first.seed)
	if err != nil {
		return nil, err
	}
	for _, s := range sketches {
		if err := first.Compatible("average", s); err != nil {
			return nil, err
		}
		for i, v := range s.data {
			out.data[i] += v
		}
	}
	inv := 1 / float64(len(sketches))
	for i := range out.data {
		out.data[i] *= inv
	}
	return out, nil
}

// Compatible reports whether two Count-Min sketches share a hash family and
// shape, returning a typed *MismatchError when they do not.
func (c *CountMin) Compatible(op string, b *CountMin) error {
	if c.Rows != b.Rows || c.Cols != b.Cols || c.seed != b.seed {
		return &MismatchError{Op: op, Kind: "countmin",
			RowsA: c.Rows, ColsA: c.Cols, SeedA: c.seed,
			RowsB: b.Rows, ColsB: b.Cols, SeedB: b.seed}
	}
	return nil
}

// Merge adds b into c. Errors with *MismatchError on seed or shape
// disagreement, leaving c unchanged.
func (c *CountMin) Merge(b *CountMin) error {
	if err := c.Compatible("merge", b); err != nil {
		return err
	}
	for i, v := range b.data {
		c.data[i] += v
	}
	return nil
}

// AverageCountMin returns the coordinate-wise mean of the inputs. All inputs
// must share shape and seed.
func AverageCountMin(sketches ...*CountMin) (*CountMin, error) {
	if len(sketches) == 0 {
		return nil, &MismatchError{Op: "average", Kind: "countmin"}
	}
	first := sketches[0]
	out, err := NewCountMin(first.Rows, first.Cols, first.seed)
	if err != nil {
		return nil, err
	}
	for _, s := range sketches {
		if err := first.Compatible("average", s); err != nil {
			return nil, err
		}
		for i, v := range s.data {
			out.data[i] += v
		}
	}
	inv := 1 / float64(len(sketches))
	for i := range out.data {
		out.data[i] *= inv
	}
	return out, nil
}
