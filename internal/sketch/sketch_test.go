package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAMSLinearity(t *testing.T) {
	// The defining property behind §5's composition: the average of node
	// sketches equals the sketch of the averaged update stream.
	a, err := NewAMS(4, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewAMS(4, 32, 9)
	merged, _ := NewAMS(4, 32, 9)

	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 500; k++ {
		item := uint64(rng.Intn(200))
		delta := rng.NormFloat64()
		if k%2 == 0 {
			a.Add(item, delta)
		} else {
			b.Add(item, delta)
		}
		merged.Add(item, delta/2) // contribution to the average of 2 nodes
	}
	va, vb, vm := a.Vector(), b.Vector(), merged.Vector()
	for i := range vm {
		avg := (va[i] + vb[i]) / 2
		if math.Abs(avg-vm[i]) > 1e-9 {
			t.Fatalf("linearity broken at counter %d: %v vs %v", i, avg, vm[i])
		}
	}
}

func TestAMSF2Accuracy(t *testing.T) {
	// F2 estimate within ~1/√rows relative error of the exact second moment
	// for a skewed stream.
	a, err := NewAMS(12, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	freq := map[uint64]float64{}
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 5000; k++ {
		item := uint64(rng.Intn(100))
		if rng.Float64() < 0.3 {
			item = uint64(rng.Intn(5)) // heavy hitters
		}
		a.Add(item, 1)
		freq[item]++
	}
	var exact float64
	for _, f := range freq {
		exact += f * f
	}
	got := a.F2()
	if rel := math.Abs(got-exact) / exact; rel > 0.35 {
		t.Fatalf("F2 = %v, exact %v, rel err %v", got, exact, rel)
	}
}

func TestAMSDeletionsCancel(t *testing.T) {
	a, _ := NewAMS(3, 16, 5)
	a.Add(42, 7)
	a.Add(42, -7)
	for _, v := range a.Vector() {
		if v != 0 {
			t.Fatalf("turnstile deletions must cancel exactly, counter = %v", v)
		}
	}
	if a.F2() != 0 {
		t.Fatalf("F2 after cancellation = %v", a.F2())
	}
}

func TestAMSDeterministicAcrossInstances(t *testing.T) {
	a, _ := NewAMS(4, 32, 11)
	b, _ := NewAMS(4, 32, 11)
	a.Add(123, 1.5)
	b.Add(123, 1.5)
	for i := range a.Vector() {
		if a.Vector()[i] != b.Vector()[i] {
			t.Fatal("equal seeds must give identical sketches")
		}
	}
	c, _ := NewAMS(4, 32, 12)
	c.Add(123, 1.5)
	same := true
	for i := range a.Vector() {
		if a.Vector()[i] != c.Vector()[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should hash differently")
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cm, err := NewCountMin(4, 64, uint64(seed))
		if err != nil {
			return false
		}
		truth := map[uint64]float64{}
		for k := 0; k < 300; k++ {
			item := uint64(rng.Intn(50))
			cm.Add(item, 1)
			truth[item]++
		}
		for item, want := range truth {
			if cm.Count(item) < want-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBadShapesRejected(t *testing.T) {
	if _, err := NewAMS(0, 4, 1); err == nil {
		t.Fatal("AMS with zero rows accepted")
	}
	if _, err := NewCountMin(4, 0, 1); err == nil {
		t.Fatal("CountMin with zero cols accepted")
	}
}
