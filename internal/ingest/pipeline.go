package ingest

import (
	"fmt"

	"automon/internal/core"
	"automon/internal/sketch"
)

// LogEntry records one protocol-visible event for the differential
// harnesses: which node raised a violation, at which per-node event index,
// and of which kind. Two runs with identical logs (and identical
// coordinator stats) took identical protocol actions.
type LogEntry struct {
	Node int
	Seq  uint64 // per-node event count at the violation (1-based)
	Kind core.ViolationKind
}

// Config assembles a sketch-backed monitoring group.
type Config struct {
	F       *core.Function
	Core    core.Config
	Sources []Source // one per node; must be mutually compatible
	Options Options
}

// Traffic counts the protocol messages a distributed deployment of this
// group would place on the network, with their encoded payload sizes.
// Messages flow only on protocol events (violations, data pulls, syncs,
// slack updates) — never on the per-event ingest path.
type Traffic struct {
	Messages     int
	PayloadBytes int
}

// Pipeline is the end-to-end in-process group: per-node ingestors, the
// coordinator, and the comm fabric between them. It is the ingestion
// counterpart of sim.Run — events in, protocol actions and estimates out.
type Pipeline struct {
	f       *core.Function
	coord   *core.Coordinator
	ings    []*NodeIngestor
	traffic Traffic

	// Log accumulates every violation in arrival order.
	Log []LogEntry
}

func (p *Pipeline) count(m core.Message) {
	p.traffic.Messages++
	p.traffic.PayloadBytes += len(m.Encode())
}

// pipeComm is the coordinator's view of the ingestors. A data pull
// materializes the node's current sketch state first — between exact checks
// the node's vector is stale by design, but the protocol must always read
// fresh data.
type pipeComm struct {
	p *Pipeline
}

func (c *pipeComm) RequestData(id int) []float64 {
	in := c.p.ings[id]
	in.materialize()
	x := in.node.LocalVector()
	c.p.count(&core.DataRequest{NodeID: id})
	c.p.count(&core.DataResponse{NodeID: id, X: x})
	return x
}

func (c *pipeComm) SendSync(id int, m *core.Sync) {
	c.p.count(m)
	c.p.ings[id].node.ApplySync(m)
}

func (c *pipeComm) SendSlack(id int, m *core.Slack) {
	c.p.count(m)
	c.p.ings[id].node.ApplySlack(m)
}

// NewPipeline validates the group (source/function shapes, mutual sketch
// compatibility) and wires ingestors to a coordinator. Call Init after
// warming the sources with their initial events.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.F == nil || len(cfg.Sources) == 0 {
		return nil, fmt.Errorf("ingest: pipeline requires a function and at least one source")
	}
	first, ok := cfg.Sources[0].(compatibility)
	if !ok {
		return nil, fmt.Errorf("ingest: source %T cannot vet group compatibility", cfg.Sources[0])
	}
	for _, s := range cfg.Sources[1:] {
		if err := first.compatibleWith(s); err != nil {
			return nil, err
		}
	}
	p := &Pipeline{f: cfg.F}
	for i, s := range cfg.Sources {
		in, err := NewNodeIngestor(i, cfg.F, s, cfg.Options)
		if err != nil {
			return nil, err
		}
		p.ings = append(p.ings, in)
	}
	p.coord = core.NewCoordinator(cfg.F, len(cfg.Sources), cfg.Core, &pipeComm{p: p})
	return p, nil
}

// Init performs the first full sync from the sources' current state.
func (p *Pipeline) Init() error { return p.coord.Init() }

// Ingest feeds one event to one node and lets the coordinator resolve any
// resulting violation.
func (p *Pipeline) Ingest(node int, u sketch.Update) error {
	in := p.ings[node]
	v := in.Ingest(u)
	if v == nil {
		return nil
	}
	p.Log = append(p.Log, LogEntry{Node: node, Seq: in.stats.Events, Kind: v.Kind})
	p.count(v)
	return p.coord.HandleViolation(v)
}

// Traffic returns the message/byte counters accumulated so far.
func (p *Pipeline) Traffic() Traffic { return p.traffic }

// Estimate returns the coordinator's current approximation of f(x̄).
func (p *Pipeline) Estimate() float64 { return p.coord.Estimate() }

// Coordinator exposes the protocol state machine (stats, radius) for
// experiments and tests.
func (p *Pipeline) Coordinator() *core.Coordinator { return p.coord }

// Ingestor exposes node i's ingestor.
func (p *Pipeline) Ingestor(i int) *NodeIngestor { return p.ings[i] }

// Nodes returns the group size.
func (p *Pipeline) Nodes() int { return len(p.ings) }

// Stats sums the per-node ingestion counters.
func (p *Pipeline) Stats() Stats {
	var total Stats
	for _, in := range p.ings {
		s := in.Stats()
		total.Events += s.Events
		total.Checks += s.Checks
		total.Elided += s.Elided
	}
	return total
}
