package ingest

import (
	"math"
	"reflect"
	"testing"

	"automon/internal/autodiff"
	"automon/internal/core"
	"automon/internal/sketch"
	"automon/internal/stream"
)

// groupSpec describes one differential scenario: a query, a source factory,
// an event stream, and the protocol config.
type groupSpec struct {
	name      string
	f         *core.Function
	newSource func() Source
	events    *stream.Events
	coreCfg   core.Config
}

// runGroup drives a full pipeline over the spec's events and returns it.
func runGroup(t testing.TB, spec groupSpec, opts Options) *Pipeline {
	t.Helper()
	sources := make([]Source, spec.events.Nodes)
	for i := range sources {
		sources[i] = spec.newSource()
	}
	for i, s := range sources {
		for _, u := range spec.events.Warm[i] {
			s.Apply(u)
		}
	}
	p, err := NewPipeline(Config{F: spec.f, Core: spec.coreCfg, Sources: sources, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Init(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < spec.events.EventsPerNode(); k++ {
		for node := 0; node < spec.events.Nodes; node++ {
			evs := spec.events.PerNode[node]
			if k >= len(evs) {
				continue
			}
			if err := p.Ingest(node, evs[k]); err != nil {
				t.Fatalf("%s: ingest node %d event %d: %v", spec.name, node, k, err)
			}
		}
	}
	return p
}

// assertIdentical demands bit-identical protocol outcomes between the
// per-event and elided pipelines: same violation log (node, per-node event
// index, kind — in order), same coordinator counters, same final estimate.
func assertIdentical(t *testing.T, spec groupSpec, ref, elided *Pipeline) {
	t.Helper()
	if !reflect.DeepEqual(ref.Log, elided.Log) {
		rl, el := ref.Log, elided.Log
		n := len(rl)
		if len(el) < n {
			n = len(el)
		}
		for i := 0; i < n; i++ {
			if rl[i] != el[i] {
				t.Fatalf("%s: violation %d differs: per-event %+v, elided %+v", spec.name, i, rl[i], el[i])
			}
		}
		t.Fatalf("%s: violation logs differ in length: per-event %d, elided %d", spec.name, len(rl), len(el))
	}
	refStats, elStats := ref.Coordinator().Stats(), elided.Coordinator().Stats()
	if !reflect.DeepEqual(refStats, elStats) {
		t.Fatalf("%s: coordinator stats differ:\nper-event %+v\nelided    %+v", spec.name, refStats, elStats)
	}
	if math.Float64bits(ref.Estimate()) != math.Float64bits(elided.Estimate()) {
		t.Fatalf("%s: estimates differ: per-event %v, elided %v", spec.name, ref.Estimate(), elided.Estimate())
	}
}

// insertOnly flips every delta to +1, for substrates (Count-Min entropy)
// whose domain excludes negative counters.
func insertOnly(e *stream.Events) *stream.Events {
	for i := range e.Warm {
		for k := range e.Warm[i] {
			e.Warm[i][k].Delta = 1
		}
	}
	for i := range e.PerNode {
		for k := range e.PerNode[i] {
			e.PerNode[i][k].Delta = 1
		}
	}
	return e
}

func diffSpecs(t testing.TB) []groupSpec {
	const nodes = 4
	specs := []groupSpec{
		{
			name: "f2-churn",
			f:    sketch.F2Query(4, 32),
			newSource: func() Source {
				s, err := NewAMSSource(4, 32, 42, 1.0/64)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			events:  stream.SketchChurn(nodes, 400, 3000, 1),
			coreCfg: core.Config{Epsilon: 0.1},
		},
		{
			name: "f2-bursts",
			f:    sketch.F2Query(4, 32),
			newSource: func() Source {
				s, err := NewAMSSource(4, 32, 42, 1.0/64)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			events:  stream.SketchBursts(nodes, 400, 3000, 2),
			coreCfg: core.Config{Epsilon: 0.1},
		},
		{
			name: "cm-entropy",
			f:    sketch.EntropyQuery(3, 16, 0.05),
			newSource: func() Source {
				s, err := NewCMSource(3, 16, 7, 1.0/3400)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			events:  insertOnly(stream.SketchBursts(nodes, 400, 3000, 3)),
			coreCfg: core.Config{Epsilon: 0.05, R: 0.2},
		},
		{
			name: "inner-product",
			f:    sketch.InnerProductQuery(4, 32),
			newSource: func() Source {
				s, err := NewPairSource(4, 32, 9, 1.0/64)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			events:  stream.PairedSketchEvents(nodes, 400, 3000, 4),
			coreCfg: core.Config{Epsilon: 0.1},
		},
		{
			name: "f2-chaos",
			f:    sketch.F2Query(4, 32),
			newSource: func() Source {
				s, err := NewAMSSource(4, 32, 42, 1.0/64)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			events:  stream.SketchChaos(nodes, 400, 3000, 5),
			coreCfg: core.Config{Epsilon: 0.1},
		},
	}
	return specs
}

// TestElisionDifferential is the harness behind the PR's headline claim:
// check elision is a pure performance optimization. For every bundled sketch
// query and a chaos stream, the elided pipeline must reproduce the
// per-event pipeline's protocol outcomes bit-identically — no missed
// violations, no spurious ones, same syncs, same estimate.
func TestElisionDifferential(t *testing.T) {
	for _, spec := range diffSpecs(t) {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			ref := runGroup(t, spec, Options{Elide: false})
			elided := runGroup(t, spec, Options{Elide: true})
			assertIdentical(t, spec, ref, elided)
			st := elided.Stats()
			if st.Elided == 0 {
				t.Fatalf("%s: elision never skipped a check (events=%d checks=%d)", spec.name, st.Events, st.Checks)
			}
			t.Logf("%s: events=%d checks=%d elided=%d (%.1f%%), violations=%d",
				spec.name, st.Events, st.Checks, st.Elided,
				100*float64(st.Elided)/float64(st.Events), len(elided.Log))
		})
	}
}

// TestElisionBatchCap: the staleness cap forces extra exact checks but must
// not change protocol outcomes (forced checks land on in-budget events,
// which are proven non-violations).
func TestElisionBatchCap(t *testing.T) {
	// cm-entropy elides the longest runs, so a small cap visibly binds.
	spec := diffSpecs(t)[2]
	ref := runGroup(t, spec, Options{Elide: false})
	capped := runGroup(t, spec, Options{Elide: true, BatchSize: 4})
	assertIdentical(t, spec, ref, capped)
	uncapped := runGroup(t, spec, Options{Elide: true})
	if capped.Stats().Checks <= uncapped.Stats().Checks {
		t.Fatalf("batch cap 4 should force more checks than the default cap (%d vs %d)",
			capped.Stats().Checks, uncapped.Stats().Checks)
	}
}

// TestPipelineRejectsMismatchedSources: a group whose sketches cannot merge
// must be refused at assembly, with the sketch package's typed error.
func TestPipelineRejectsMismatchedSources(t *testing.T) {
	f := sketch.F2Query(4, 32)
	a, _ := NewAMSSource(4, 32, 1, 1.0/64)
	b, _ := NewAMSSource(4, 32, 2, 1.0/64) // different seed
	if _, err := NewPipeline(Config{F: f, Sources: []Source{a, b}}); err == nil {
		t.Fatal("mismatched seeds accepted")
	}
	c, _ := NewAMSSource(4, 32, 1, 1.0/32) // different scale
	if _, err := NewPipeline(Config{F: f, Sources: []Source{a, c}}); err == nil {
		t.Fatal("mismatched scales accepted")
	}
	cm, _ := NewCMSource(4, 32, 1, 1.0/64)
	if _, err := NewPipeline(Config{F: f, Sources: []Source{a, cm}}); err == nil {
		t.Fatal("mixed source types accepted")
	}
	d, _ := NewAMSSource(4, 16, 1, 1.0/64) // wrong dim for f
	if _, err := NewPipeline(Config{F: f, Sources: []Source{d}}); err == nil {
		t.Fatal("source/function dim mismatch accepted")
	}
}

// TestElideRequiresCurvature: wiring elision to a function with no
// curvature bound must fail loudly, not silently run per-event.
func TestElideRequiresCurvature(t *testing.T) {
	// A non-constant-Hessian function without WithCurvature.
	d := 2 * 8
	bare := core.NewFunction("cubic-bare", d,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			acc := b.Powi(x[0], 3)
			for i := 1; i < d; i++ {
				acc = b.Add(acc, b.Powi(x[i], 3))
			}
			return acc
		})
	s, _ := NewCMSource(2, 8, 1, 1.0/100)
	if _, err := NewNodeIngestor(0, bare, s, Options{Elide: true}); err == nil {
		t.Fatal("elision without a curvature bound must be refused")
	}
	// Per-event mode needs no bound:
	if _, err := NewNodeIngestor(0, bare, s, Options{}); err != nil {
		t.Fatal(err)
	}
	// EntropyQuery ships a curvature bound, so elision works:
	f := sketch.EntropyQuery(2, 8, 0.1)
	s2, _ := NewCMSource(2, 8, 1, 1.0/100)
	if _, err := NewNodeIngestor(0, f, s2, Options{Elide: true}); err != nil {
		t.Fatalf("entropy with curvature bound must allow elision: %v", err)
	}
}

// TestSourceConstructorValidation pins the error paths of the source
// constructors (bad scale, bad sketch shape) and the accessor surface the
// experiments and baselines build on.
func TestSourceConstructorValidation(t *testing.T) {
	if _, err := NewAMSSource(4, 32, 1, 0); err == nil {
		t.Fatal("AMS source accepted zero scale")
	}
	if _, err := NewAMSSource(0, 32, 1, 1); err == nil {
		t.Fatal("AMS source accepted zero rows")
	}
	if _, err := NewCMSource(4, 32, 1, -1); err == nil {
		t.Fatal("Count-Min source accepted negative scale")
	}
	if _, err := NewCMSource(4, 0, 1, 1); err == nil {
		t.Fatal("Count-Min source accepted zero cols")
	}
	if _, err := NewPairSource(4, 32, 1, math.NaN()); err == nil {
		t.Fatal("pair source accepted NaN scale")
	}
	if _, err := NewPairSource(-1, 32, 1, 1); err == nil {
		t.Fatal("pair source accepted negative rows")
	}

	ams, err := NewAMSSource(4, 32, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ams.Sketch() == nil || ams.Sketch().Seed() != 1 {
		t.Fatal("AMS source does not expose its sketch")
	}
	cm, err := NewCMSource(4, 32, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Sketch() == nil || cm.Sketch().Seed() != 2 {
		t.Fatal("Count-Min source does not expose its sketch")
	}
}

// TestPipelineAccessors covers the pipeline's structural accessors.
func TestPipelineAccessors(t *testing.T) {
	srcs := make([]Source, 3)
	for i := range srcs {
		s, err := NewAMSSource(3, 16, 9, 1)
		if err != nil {
			t.Fatal(err)
		}
		s.Apply(sketch.Update{Item: uint64(i), Delta: 1})
		srcs[i] = s
	}
	f := sketch.F2Query(3, 16)
	p, err := NewPipeline(Config{F: f, Core: core.Config{Epsilon: 0.5}, Sources: srcs})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Init(); err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 3 {
		t.Fatalf("Nodes() = %d, want 3", p.Nodes())
	}
	in := p.Ingestor(1)
	if in == nil || in.Node() == nil || in.Source() != srcs[1] {
		t.Fatal("ingestor accessors do not expose the wired node/source")
	}
	if p.Coordinator() == nil {
		t.Fatal("pipeline does not expose its coordinator")
	}
	if tr := p.Traffic(); tr.Messages == 0 || tr.PayloadBytes == 0 {
		t.Fatalf("Init produced no counted traffic: %+v", tr)
	}
}
