// Package ingest is the high-throughput event path of the sketch-backed
// monitoring story (§5 of the paper, ROADMAP item 2): each node holds a
// mergeable linear sketch as its AutoMon local vector and folds raw
// turnstile events into it at millions of events per second, while the
// safe-zone machinery of internal/core decides — via the check-elision
// budget — which events actually need an exact O(d) constraint check. On
// drift-within-zone streams almost none do, so the amortized per-event cost
// is one hash, one counter add, and one budget subtraction.
//
// Protocol outcomes are bit-identical to running Node.UpdateData per event:
// elided events are *proven* in-zone by the budget (see core/budget.go and
// DESIGN.md "Check elision"), which the differential and fuzz tests in this
// package enforce across every bundled query.
package ingest

import (
	"fmt"
	"math"

	"automon/internal/core"
	"automon/internal/sketch"
)

// Source is a node's event-to-vector substrate: a sketch (or stack of
// sketches) that absorbs turnstile updates and materializes the monitored
// vector on demand. Implementations must make UpdateNorm a sound upper
// bound on the L2 movement of the materialized vector per event — the
// elision budget spends exactly that bound, and an understated bound voids
// the protocol-identity guarantee.
type Source interface {
	// Apply folds one event into the sketch.
	Apply(u sketch.Update)
	// UpdateNorm bounds ‖vector-after − vector-before‖₂ for applying u.
	UpdateNorm(u sketch.Update) float64
	// Dim is the monitored vector length.
	Dim() int
	// VectorInto materializes the current monitored vector into dst
	// (len(dst) == Dim()).
	VectorInto(dst []float64)
}

// compatibility is implemented by sources that can vet themselves against a
// peer before being wired into one monitoring group; mismatched hash
// families would silently corrupt the averaged vector.
type compatibility interface {
	compatibleWith(o Source) error
}

// AMSSource adapts one AMS sketch, scaled by a constant factor, to the
// Source interface. Each event touches exactly one counter per row by
// ±delta, so the scaled vector moves by exactly |delta|·scale·√rows — the
// O(1) per-event norm that makes budget accounting cheap.
type AMSSource struct {
	sk          *sketch.AMS
	scale       float64
	normPerUnit float64 // scale·√rows
}

// NewAMSSource builds an AMS-backed source. scale multiplies the raw
// counters into the monitored vector (nodes scale by 1/expected-updates so
// the query value stays O(1)).
func NewAMSSource(rows, cols int, seed uint64, scale float64) (*AMSSource, error) {
	if !(scale > 0) {
		return nil, fmt.Errorf("ingest: scale must be positive, got %v", scale)
	}
	sk, err := sketch.NewAMS(rows, cols, seed)
	if err != nil {
		return nil, err
	}
	return &AMSSource{sk: sk, scale: scale, normPerUnit: scale * math.Sqrt(float64(rows))}, nil
}

// Apply implements Source.
//
//automon:hotpath
func (s *AMSSource) Apply(u sketch.Update) { s.sk.Add(u.Item, u.Delta) }

// UpdateNorm implements Source: the exact L2 movement of the scaled vector.
//
//automon:hotpath
func (s *AMSSource) UpdateNorm(u sketch.Update) float64 {
	return math.Abs(u.Delta) * s.normPerUnit
}

// Dim implements Source.
func (s *AMSSource) Dim() int { return s.sk.Dim() }

// VectorInto implements Source.
func (s *AMSSource) VectorInto(dst []float64) {
	raw := s.sk.Vector()
	for i, v := range raw {
		dst[i] = v * s.scale
	}
}

// Sketch exposes the underlying sketch (for merging into baselines and for
// tests).
func (s *AMSSource) Sketch() *sketch.AMS { return s.sk }

func (s *AMSSource) compatibleWith(o Source) error {
	t, ok := o.(*AMSSource)
	if !ok {
		return fmt.Errorf("ingest: cannot mix AMS source with %T in one group", o)
	}
	if math.Float64bits(s.scale) != math.Float64bits(t.scale) {
		return fmt.Errorf("ingest: AMS sources disagree on scale (%v vs %v)", s.scale, t.scale)
	}
	return s.sk.Compatible("ingest", t.sk)
}

// CMSource adapts a Count-Min sketch (scaled counters) to the Source
// interface — the substrate of the entropy query family.
type CMSource struct {
	sk          *sketch.CountMin
	scale       float64
	normPerUnit float64
}

// NewCMSource builds a Count-Min-backed source.
func NewCMSource(rows, cols int, seed uint64, scale float64) (*CMSource, error) {
	if !(scale > 0) {
		return nil, fmt.Errorf("ingest: scale must be positive, got %v", scale)
	}
	sk, err := sketch.NewCountMin(rows, cols, seed)
	if err != nil {
		return nil, err
	}
	return &CMSource{sk: sk, scale: scale, normPerUnit: scale * math.Sqrt(float64(rows))}, nil
}

// Apply implements Source.
//
//automon:hotpath
func (s *CMSource) Apply(u sketch.Update) { s.sk.Add(u.Item, u.Delta) }

// UpdateNorm implements Source.
//
//automon:hotpath
func (s *CMSource) UpdateNorm(u sketch.Update) float64 {
	return math.Abs(u.Delta) * s.normPerUnit
}

// Dim implements Source.
func (s *CMSource) Dim() int { return s.sk.Dim() }

// VectorInto implements Source.
func (s *CMSource) VectorInto(dst []float64) {
	raw := s.sk.Vector()
	for i, v := range raw {
		dst[i] = v * s.scale
	}
}

// Sketch exposes the underlying sketch.
func (s *CMSource) Sketch() *sketch.CountMin { return s.sk }

func (s *CMSource) compatibleWith(o Source) error {
	t, ok := o.(*CMSource)
	if !ok {
		return fmt.Errorf("ingest: cannot mix Count-Min source with %T in one group", o)
	}
	if math.Float64bits(s.scale) != math.Float64bits(t.scale) {
		return fmt.Errorf("ingest: Count-Min sources disagree on scale (%v vs %v)", s.scale, t.scale)
	}
	return s.sk.Compatible("ingest", t.sk)
}

// PairStream marks an event as belonging to the second stream of a
// PairSource: set the bit on Update.Item to route the event into the v
// sketch (the remaining 63 bits identify the item).
const PairStream = sketch.StreamB

// PairSource stacks two same-seed AMS sketches — streams u and v — into one
// local vector for the inner-product query. Events route on the PairStream
// bit of the item.
type PairSource struct {
	u, v        *sketch.AMS
	scale       float64
	normPerUnit float64
}

// NewPairSource builds the two-stream source for sketch.InnerProductQuery.
func NewPairSource(rows, cols int, seed uint64, scale float64) (*PairSource, error) {
	if !(scale > 0) {
		return nil, fmt.Errorf("ingest: scale must be positive, got %v", scale)
	}
	u, err := sketch.NewAMS(rows, cols, seed)
	if err != nil {
		return nil, err
	}
	v, err := sketch.NewAMS(rows, cols, seed)
	if err != nil {
		return nil, err
	}
	return &PairSource{u: u, v: v, scale: scale, normPerUnit: scale * math.Sqrt(float64(rows))}, nil
}

// Apply implements Source: the PairStream bit selects the sketch.
//
//automon:hotpath
func (s *PairSource) Apply(u sketch.Update) {
	if u.Item&PairStream != 0 {
		s.v.Add(u.Item&^PairStream, u.Delta)
		return
	}
	s.u.Add(u.Item, u.Delta)
}

// UpdateNorm implements Source: one sketch (hence one counter per row)
// moves per event.
//
//automon:hotpath
func (s *PairSource) UpdateNorm(u sketch.Update) float64 {
	return math.Abs(u.Delta) * s.normPerUnit
}

// Dim implements Source.
func (s *PairSource) Dim() int { return s.u.Dim() + s.v.Dim() }

// VectorInto implements Source: [scaled u-sketch, scaled v-sketch].
func (s *PairSource) VectorInto(dst []float64) {
	ru := s.u.Vector()
	for i, x := range ru {
		dst[i] = x * s.scale
	}
	off := len(ru)
	for i, x := range s.v.Vector() {
		dst[off+i] = x * s.scale
	}
}

func (s *PairSource) compatibleWith(o Source) error {
	t, ok := o.(*PairSource)
	if !ok {
		return fmt.Errorf("ingest: cannot mix pair source with %T in one group", o)
	}
	if math.Float64bits(s.scale) != math.Float64bits(t.scale) {
		return fmt.Errorf("ingest: pair sources disagree on scale (%v vs %v)", s.scale, t.scale)
	}
	if err := s.u.Compatible("ingest", t.u); err != nil {
		return err
	}
	return s.v.Compatible("ingest", t.v)
}

// Options configures a node's ingestion path.
type Options struct {
	// Elide enables safe-zone check elision. Off, every event pays an exact
	// Node.UpdateData — the per-event baseline the differential harness and
	// the headline benchmark compare against.
	Elide bool
	// BatchSize caps how many consecutive events may elide the exact check,
	// bounding how stale the node's materialized vector (and hence a
	// coordinator data pull) can get. 0 means 1024. Only meaningful with
	// Elide; forced checks land on in-budget events, which are proven
	// non-violations, so the cap never changes protocol outcomes.
	BatchSize int
}

// DefaultBatchSize is the elision staleness cap when Options.BatchSize is 0.
const DefaultBatchSize = 1024

// Stats counts one ingestor's traffic.
type Stats struct {
	Events uint64 // events folded into the sketch
	Checks uint64 // exact safe-zone checks run
	Elided uint64 // events whose check was skipped under budget
}

// NodeIngestor drives one node's monitoring loop from raw events: fold the
// event into the sketch, spend its norm from the elision budget, and run the
// exact check only when the budget (or the batch cap) demands one.
type NodeIngestor struct {
	src  Source
	node *core.Node
	vec  []float64 // materialization scratch

	elide      bool
	batch      int
	sinceCheck int

	stats Stats
}

// NewNodeIngestor wires a source to a fresh monitoring node for f. With
// Options.Elide it fails when f exposes no curvature bound (see
// Function.CurvBound) rather than silently running per-event.
func NewNodeIngestor(id int, f *core.Function, src Source, opts Options) (*NodeIngestor, error) {
	if src.Dim() != f.Dim() {
		return nil, fmt.Errorf("ingest: source dim %d, function %s dim %d", src.Dim(), f.Name, f.Dim())
	}
	node := core.NewNode(id, f)
	if opts.Elide && !node.EnableElision() {
		return nil, fmt.Errorf("ingest: function %s has no curvature bound; check elision unavailable (use WithCurvature or a constant-Hessian query)", f.Name)
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	return &NodeIngestor{
		src:   src,
		node:  node,
		vec:   make([]float64, f.Dim()),
		elide: opts.Elide,
		batch: batch,
	}, nil
}

// Ingest folds one event into the node's sketch and returns a Violation when
// the (exact) safe-zone check fails, nil otherwise — including when the
// check was provably unnecessary and elided.
//
//automon:hotpath
func (in *NodeIngestor) Ingest(u sketch.Update) *core.Violation {
	in.stats.Events++
	in.src.Apply(u) //automon:allow hotpath Source dispatch: all concrete Apply methods are themselves annotated hotpath roots
	if in.elide {
		in.sinceCheck++
		spent := in.node.SpendBudget(in.src.UpdateNorm(u)) //automon:allow hotpath Source dispatch: all concrete UpdateNorm methods are themselves annotated hotpath roots
		if !spent && in.sinceCheck < in.batch {
			in.stats.Elided++
			return nil
		}
	}
	return in.exactCheck()
}

// exactCheck materializes the vector and runs the full constraint check,
// refreshing the elision budget on a pass.
func (in *NodeIngestor) exactCheck() *core.Violation {
	in.stats.Checks++
	in.sinceCheck = 0
	in.src.VectorInto(in.vec) //automon:allow hotpath Source dispatch: concrete VectorInto methods are scale-and-copy loops with no allocation
	if in.elide {
		return in.node.UpdateDataRefresh(in.vec)
	}
	return in.node.UpdateData(in.vec)
}

// materialize pushes the current sketch state into the node without a
// constraint check — the coordinator is about to read the vector (data
// pull), so the node's view must be current. Resets the budget: the next
// event re-checks exactly.
func (in *NodeIngestor) materialize() {
	in.src.VectorInto(in.vec)
	in.node.SetData(in.vec)
	in.sinceCheck = 0
}

// Node exposes the underlying monitoring node.
func (in *NodeIngestor) Node() *core.Node { return in.node }

// Source exposes the underlying sketch source.
func (in *NodeIngestor) Source() Source { return in.src }

// Stats returns a snapshot of the ingestor's counters.
func (in *NodeIngestor) Stats() Stats { return in.stats }
