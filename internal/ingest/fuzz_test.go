package ingest

import (
	"math"
	"reflect"
	"testing"

	"automon/internal/core"
	"automon/internal/sketch"
)

// decodeUpdates turns fuzz bytes into a finite adversarial event stream:
// every 3 bytes give (item, signed mantissa, signed exponent), producing
// deltas spanning ±mantissa·10^[−4, +4] — magnitudes the budget accounting
// must survive without ever missing a violation.
func decodeUpdates(data []byte) []sketch.Update {
	n := len(data) / 3
	if n > 4096 {
		n = 4096
	}
	evs := make([]sketch.Update, 0, n)
	for i := 0; i < n; i++ {
		item := uint64(data[3*i])
		mant := float64(int8(data[3*i+1]))
		exp := int(int8(data[3*i+2])) % 5 // [-128,127]%5 ∈ [-4,4]
		delta := mant * math.Pow(10, float64(exp))
		evs = append(evs, sketch.Update{Item: item, Delta: delta})
	}
	return evs
}

// FuzzElisionBudget replays an adversarial event stream through the elided
// and per-event node paths and demands identical violation logs — the "no
// missed violations, ever" property, with the fuzzer hunting for magnitude
// patterns that break the budget accounting.
func FuzzElisionBudget(f *testing.F) {
	f.Add([]byte{1, 10, 0, 2, 246, 1, 3, 100, 254})
	f.Add([]byte{0, 1, 4, 0, 255, 4, 7, 127, 3, 7, 129, 3})
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 200; i++ {
			b = append(b, byte(i%11), byte(1+i%3), byte(i%9))
		}
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		evs := decodeUpdates(data)
		if len(evs) == 0 {
			return
		}
		run := func(elide bool) ([]LogEntry, error) {
			// Two nodes: node 0 takes the fuzz stream, node 1 a fixed one.
			q := sketch.F2Query(2, 8)
			mk := func() Source {
				s, err := NewAMSSource(2, 8, 3, 1.0/16)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 50; i++ {
					s.Apply(sketch.Update{Item: uint64(i % 11), Delta: 1})
				}
				return s
			}
			p, err := NewPipeline(Config{
				F:       q,
				Core:    core.Config{Epsilon: 0.1},
				Sources: []Source{mk(), mk()},
				Options: Options{Elide: elide, BatchSize: 64},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Init(); err != nil {
				t.Fatal(err)
			}
			for k, u := range evs {
				if err := p.Ingest(0, u); err != nil {
					return p.Log, err
				}
				if err := p.Ingest(1, sketch.Update{Item: uint64(k % 7), Delta: 1}); err != nil {
					return p.Log, err
				}
			}
			return p.Log, nil
		}
		refLog, refErr := run(false)
		elLog, elErr := run(true)
		if (refErr == nil) != (elErr == nil) {
			t.Fatalf("coordinator error divergence: per-event %v, elided %v", refErr, elErr)
		}
		if !reflect.DeepEqual(refLog, elLog) {
			t.Fatalf("violation logs diverge:\nper-event %+v\nelided    %+v", refLog, elLog)
		}
	})
}
