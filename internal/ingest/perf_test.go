package ingest

import (
	"testing"

	"automon/internal/core"
	"automon/internal/sketch"
	"automon/internal/testenv"
)

// benchPipeline assembles a one-node F2 group over a 4×64 sketch, warmed
// and synced, plus the churn cycle the benchmark replays. The churn pairs
// +1/−1 on a small working set, so the sketch oscillates inside the safe
// zone — the drift-within-zone regime the elision budget is built for.
func benchPipeline(tb testing.TB, elide bool) (*Pipeline, []sketch.Update) {
	tb.Helper()
	const rows, cols = 4, 64
	src, err := NewAMSSource(rows, cols, 42, 1.0/1024)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		src.Apply(sketch.Update{Item: uint64(i % 97), Delta: 1})
	}
	p, err := NewPipeline(Config{
		F:       sketch.F2Query(rows, cols),
		Core:    core.Config{Epsilon: 0.1},
		Sources: []Source{src},
		Options: Options{Elide: elide},
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := p.Init(); err != nil {
		tb.Fatal(err)
	}
	churn := make([]sketch.Update, 4096)
	for i := range churn {
		d := 1.0
		if i%2 == 1 {
			d = -1
		}
		churn[i] = sketch.Update{Item: uint64((i / 2) % 97), Delta: d}
	}
	return p, churn
}

// TestIngestZeroAllocsPerEvent locks in the allocation-free fast path, with
// a tiny batch cap so the measured loop exercises the exact-check-and-
// refresh path too, not just the elided branch.
func TestIngestZeroAllocsPerEvent(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	for _, mode := range []struct {
		name  string
		elide bool
	}{{"elided", true}, {"perevent", false}} {
		t.Run(mode.name, func(t *testing.T) {
			p, churn := benchPipeline(t, mode.elide)
			in := p.Ingestor(0)
			// Force frequent exact checks in elided mode.
			in.batch = 4
			k := 0
			allocs := testing.AllocsPerRun(2000, func() {
				if v := in.Ingest(churn[k%len(churn)]); v != nil {
					t.Fatalf("churn event %d violated: %+v", k, v.Kind)
				}
				k++
			})
			if allocs != 0 {
				t.Fatalf("%s Ingest allocates %.1f objects per event, want 0", mode.name, allocs)
			}
		})
	}
}

// BenchmarkIngestEventsPerSec is the headline: per-node event throughput of
// the elided path vs the per-event UpdateData baseline on the same
// drift-within-zone stream. Recorded in BENCH_after.json; the acceptance
// bar is ≥ 5×.
func BenchmarkIngestEventsPerSec(b *testing.B) {
	for _, mode := range []struct {
		name  string
		elide bool
	}{{"perevent", false}, {"elided", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p, churn := benchPipeline(b, mode.elide)
			in := p.Ingestor(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v := in.Ingest(churn[i%len(churn)]); v != nil {
					b.Fatalf("churn event violated: %+v", v.Kind)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
			st := in.Stats()
			b.ReportMetric(100*float64(st.Elided)/float64(st.Events), "%elided")
		})
	}
}
