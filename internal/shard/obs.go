package shard

import (
	"strings"

	"automon/internal/obs"
)

// treeObs bundles the shard tier's observability instruments: tree shape
// gauges, partial-aggregate flow, frame rejections by reason, and the
// absorb/escalate split. They live next to — not inside — the root machine's
// coordinator series: the machine does not know it is sharded.
type treeObs struct {
	leaves *obs.Gauge
	depth  *obs.Gauge
	fanout *obs.Gauge

	partials        *obs.Counter
	rejectedCorrupt *obs.Counter
	rejectedStale   *obs.Counter
	rejectedWeight  *obs.Counter

	absorbed  *obs.Counter
	escalated *obs.Counter

	subtreeDeparts *obs.Counter
	subtreeRejoins *obs.Counter
}

// shardLabeledName merges a rendered label set into a metric name, exactly
// like the coordinator's labeledName (multi-tenant registries share one
// namespace, so shard series carry the same group labels).
func shardLabeledName(name, extra string) string {
	if extra == "" {
		return name
	}
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + extra + "}"
	}
	return name + "{" + extra + "}"
}

// newTreeObs creates the instruments, registered in reg when non-nil; a nil
// registry keeps them standalone, same as the coordinator's.
func newTreeObs(reg *obs.Registry, labels string) treeObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	name := func(n string) string { return shardLabeledName(n, labels) }
	const rejectHelp = "shard partial-aggregate frames rejected before merging, by reason"
	return treeObs{
		leaves: reg.Gauge(name("automon_shard_leaves"), "leaf shards in the coordinator tree"),
		depth:  reg.Gauge(name("automon_shard_tree_depth"), "tiers from the root shard to the leaves"),
		fanout: reg.Gauge(name("automon_shard_tree_fanout"), "maximum children per interior shard"),

		partials:        reg.Counter(name("automon_shard_partials_total"), "partial-aggregate frames produced across all tiers"),
		rejectedCorrupt: reg.Counter(name(`automon_shard_partials_rejected_total{reason="corrupt"}`), rejectHelp),
		rejectedStale:   reg.Counter(name(`automon_shard_partials_rejected_total{reason="stale_epoch"}`), rejectHelp),
		rejectedWeight:  reg.Counter(name(`automon_shard_partials_rejected_total{reason="weight"}`), rejectHelp),

		absorbed:  reg.Counter(name("automon_shard_absorbed_violations_total"), "safe-zone violations absorbed by a leaf's partition-local lazy sync"),
		escalated: reg.Counter(name("automon_shard_escalated_violations_total"), "violations a leaf could not absorb and escalated to the root"),

		subtreeDeparts: reg.Counter(name("automon_shard_subtree_departures_total"), "whole sub-trees marked dead"),
		subtreeRejoins: reg.Counter(name("automon_shard_subtree_rejoins_total"), "whole sub-trees re-admitted after a partition healed"),
	}
}
