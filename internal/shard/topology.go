package shard

import (
	"automon/internal/core"
	"automon/internal/linalg"
)

// treeNode is one shard in the sub-coordinator tree: a leaf owning a node
// partition or an interior branch owning its children's union. Collect
// builds the shard's partial-aggregate frame bottom-up; distribute fans a
// full sync top-down. Both visit nodes in ascending global order, so the
// fabric sees exactly the message sequence a flat coordinator produces.
type treeNode interface {
	shardID() int
	// maxWeight is the largest live-node count this shard could truthfully
	// report: its subtree size. Partials claiming more are count lies.
	maxWeight() int
	nodeIDs() []int
	collect(fresh map[int]bool) *core.Partial
	distribute(tmpl *core.Sync, zone *core.SafeZone)
}

// leaf owns the contiguous node partition [lo, hi): last-known vectors,
// slack assignments and ADCD-E matrix bookkeeping for those nodes, indexed
// locally (global id g ↔ local index g-lo). In ModeAbsorb it additionally
// runs its own protocol machine over the partition to absorb safe-zone
// violations without involving the parent.
type leaf struct {
	t      *Tree
	id     int
	lo, hi int

	lastX      [][]float64
	slacks     [][]float64
	matrixSent []bool

	absorb *core.Machine
}

func newLeaf(t *Tree, id, lo, hi, dim int) *leaf {
	k := hi - lo
	lf := &leaf{
		t:          t,
		id:         id,
		lo:         lo,
		hi:         hi,
		lastX:      make([][]float64, k),
		slacks:     make([][]float64, k),
		matrixSent: make([]bool, k),
	}
	for i := 0; i < k; i++ {
		lf.lastX[i] = make([]float64, dim)
		lf.slacks[i] = make([]float64, dim)
	}
	return lf
}

// enableAbsorb attaches the leaf's own protocol machine — the same
// core.Machine that runs at the root — over the partition, for
// partition-local lazy-sync absorption. The leaf machine never performs a
// full sync and never computes zones (it adopts the root's), so adaptive
// radius control and zone caching are stripped from its config; its private
// counters stay unregistered so the root's series are the only ones scraped.
func (lf *leaf) enableAbsorb(cfg core.Config) {
	cfg.Metrics = nil
	cfg.Tracer = nil
	cfg.MetricsLabels = ""
	cfg.AdaptiveR = false
	cfg.SharedZoneCache = nil
	cfg.ZoneCacheSize = 0
	cfg.ZoneCacheScope = ""
	lf.absorb = core.NewMachine(lf.t.f, lf.hi-lf.lo, cfg, &leafLocalOwner{lf: lf})
}

func (lf *leaf) shardID() int   { return lf.id }
func (lf *leaf) maxWeight() int { return lf.hi - lf.lo }

func (lf *leaf) nodeIDs() []int {
	ids := make([]int, 0, lf.hi-lf.lo)
	for g := lf.lo; g < lf.hi; g++ {
		ids = append(ids, g)
	}
	return ids
}

// collect answers a parent's gather with the leaf's partial-aggregate frame:
// refresh every live partition node not already fresh in this resolution,
// then fold the live vectors into exact per-dimension accumulators. Node
// liveness is protocol state and lives at the root machine; the refresh may
// flag losses re-entrantly through it (NodeComm contract), which the fold
// loop then observes.
func (lf *leaf) collect(fresh map[int]bool) *core.Partial {
	t := lf.t
	p := &core.Partial{
		ShardID: lf.id,
		NodeID:  -1,
		Epoch:   t.epoch,
		Accs:    make([]linalg.Acc, t.f.Dim()),
	}
	for g := lf.lo; g < lf.hi; g++ {
		if fresh[g] || !t.root.Live(g) {
			continue
		}
		if x := t.comm.RequestData(g); x != nil {
			copy(lf.lastX[g-lf.lo], x)
		}
	}
	for g := lf.lo; g < lf.hi; g++ {
		if !t.root.Live(g) {
			continue
		}
		linalg.AddVec(p.Accs, lf.lastX[g-lf.lo])
		p.Weight++
	}
	t.obs.partials.Inc()
	return p
}

// distribute applies a full sync to the partition: assign slack
// sᵢ = x0 − xᵢ (zeroed for dead nodes and under DisableSlack) and send each
// live node its Sync built from the root's template — the same per-node
// construction the flat coordinator performs, so the wire traffic is
// byte-identical. In ModeAbsorb the leaf machine adopts the new zone so its
// next absorption checks the fresh constraints.
func (lf *leaf) distribute(tmpl *core.Sync, zone *core.SafeZone) {
	t := lf.t
	for g := lf.lo; g < lf.hi; g++ {
		lid := g - lf.lo
		if !t.root.Live(g) {
			for j := range lf.slacks[lid] {
				lf.slacks[lid][j] = 0
			}
			continue
		}
		if t.root.Cfg.DisableSlack {
			for j := range lf.slacks[lid] {
				lf.slacks[lid][j] = 0
			}
		} else {
			linalg.Sub(lf.slacks[lid], tmpl.X0, lf.lastX[lid])
		}
		msg := &core.Sync{
			NodeID: g,
			Method: tmpl.Method,
			Kind:   tmpl.Kind,
			X0:     linalg.Clone(tmpl.X0),
			F0:     tmpl.F0,
			GradF0: linalg.Clone(tmpl.GradF0),
			L:      tmpl.L,
			U:      tmpl.U,
			Lam:    tmpl.Lam,
			R:      tmpl.R,
			Slack:  linalg.Clone(lf.slacks[lid]),
		}
		if t.root.Method() == core.MethodE && !lf.matrixSent[lid] {
			msg.WithMatrix = true
			if zone.Kind == core.ConvexDiff {
				msg.Matrix = zone.HMinus
			} else {
				msg.Matrix = zone.HPlus
			}
			lf.matrixSent[lid] = true
		}
		if t.root.Method() == core.MethodCustom {
			msg.Zone = zone
		}
		t.comm.SendSync(g, msg)
	}
	if lf.absorb != nil {
		lf.absorb.AdoptZone(zone)
	}
}

// tryAbsorb attempts a partition-local lazy sync for a safe-zone violation
// from one of the leaf's nodes. The leaf machine's liveness view is
// refreshed from the root first: liveness is protocol state owned by the
// root, and the leaf must not balance against a node the root has excluded.
func (lf *leaf) tryAbsorb(v *core.Violation) bool {
	if v.NodeID < lf.lo || v.NodeID >= lf.hi {
		return false
	}
	for g := lf.lo; g < lf.hi; g++ {
		lid := g - lf.lo
		if lf.t.root.Live(g) {
			lf.absorb.MarkLive(lid)
		} else {
			lf.absorb.MarkDead(lid)
		}
	}
	lv := &core.Violation{NodeID: v.NodeID - lf.lo, Kind: v.Kind, X: v.X}
	return lf.absorb.TryLazyAbsorb(lv)
}

// leafLocalOwner is the absorb machine's data plane: the leaf's own arrays,
// addressed by local index, with fabric traffic translated to global node
// IDs. Store/Refresh/AddSlacked/Rebalance are what TryLazyAbsorb exercises;
// Collect/Distribute/Snapshot complete the Ownership contract over the
// partition (the leaf machine performs no full syncs in absorb mode, but the
// implementations are real, not stubs).
type leafLocalOwner struct{ lf *leaf }

func (o *leafLocalOwner) Store(lid int, x []float64) { copy(o.lf.lastX[lid], x) }

func (o *leafLocalOwner) Refresh(lid int) bool {
	x := o.lf.t.comm.RequestData(o.lf.lo + lid)
	if x == nil {
		return false
	}
	copy(o.lf.lastX[lid], x)
	return true
}

func (o *leafLocalOwner) AddSlacked(sum []float64, lid int) {
	for j := range sum {
		sum[j] += o.lf.lastX[lid][j] + o.lf.slacks[lid][j]
	}
}

func (o *leafLocalOwner) Rebalance(set []int, mean []float64) {
	for _, lid := range set {
		linalg.Sub(o.lf.slacks[lid], mean, o.lf.lastX[lid])
		g := o.lf.lo + lid
		o.lf.t.comm.SendSlack(g, &core.Slack{NodeID: g, Slack: linalg.Clone(o.lf.slacks[lid])})
	}
}

func (o *leafLocalOwner) Collect(fresh map[int]bool, accs []linalg.Acc) int {
	m := o.lf.absorb
	for lid := 0; lid < o.lf.hi-o.lf.lo; lid++ {
		if fresh[lid] || !m.Live(lid) {
			continue
		}
		o.Refresh(lid)
	}
	weight := 0
	for lid := 0; lid < o.lf.hi-o.lf.lo; lid++ {
		if !m.Live(lid) {
			continue
		}
		linalg.AddVec(accs, o.lf.lastX[lid])
		weight++
	}
	return weight
}

func (o *leafLocalOwner) Distribute(tmpl *core.Sync, zone *core.SafeZone) {
	// The absorb machine adopts zones from the root instead of distributing
	// its own; reaching here would mean it ran a full sync, which ModeAbsorb
	// never asks of it. Deliver to the partition anyway so the contract holds.
	lf := o.lf
	for lid := 0; lid < lf.hi-lf.lo; lid++ {
		if !lf.absorb.Live(lid) {
			continue
		}
		g := lf.lo + lid
		msg := &core.Sync{
			NodeID: g,
			Method: tmpl.Method,
			Kind:   tmpl.Kind,
			X0:     linalg.Clone(tmpl.X0),
			F0:     tmpl.F0,
			GradF0: linalg.Clone(tmpl.GradF0),
			L:      tmpl.L,
			U:      tmpl.U,
			Lam:    tmpl.Lam,
			R:      tmpl.R,
			Slack:  linalg.Clone(lf.slacks[lid]),
		}
		lf.t.comm.SendSync(g, msg)
	}
}

func (o *leafLocalOwner) Forget(lid int) { o.lf.matrixSent[lid] = false }

func (o *leafLocalOwner) Snapshot() [][]float64 {
	round := make([][]float64, len(o.lf.lastX))
	for i := range o.lf.lastX {
		round[i] = append([]float64(nil), o.lf.lastX[i]...)
	}
	return round
}

// branch is an interior shard: it owns no nodes directly, only the union of
// its children. Its collect merges the children's partial frames — each
// validated against the current epoch and the child's maximum plausible
// weight before it may touch the aggregate — and its distribute recurses in
// child order, preserving the global ascending node order.
type branch struct {
	t        *Tree
	id       int
	children []treeNode
}

func (b *branch) shardID() int { return b.id }

func (b *branch) maxWeight() int {
	w := 0
	for _, c := range b.children {
		w += c.maxWeight()
	}
	return w
}

func (b *branch) nodeIDs() []int {
	var ids []int
	for _, c := range b.children {
		ids = append(ids, c.nodeIDs()...)
	}
	return ids
}

func (b *branch) collect(fresh map[int]bool) *core.Partial {
	t := b.t
	p := &core.Partial{
		ShardID: b.id,
		NodeID:  -1,
		Epoch:   t.epoch,
		Accs:    make([]linalg.Acc, t.f.Dim()),
	}
	for _, c := range b.children {
		cp := c.collect(fresh)
		if !t.acceptPartial(cp, c.maxWeight()) {
			continue
		}
		linalg.MergeVec(p.Accs, cp.Accs)
		p.Weight += cp.Weight
	}
	t.obs.partials.Inc()
	return p
}

func (b *branch) distribute(tmpl *core.Sync, zone *core.SafeZone) {
	for _, c := range b.children {
		c.distribute(tmpl, zone)
	}
}
