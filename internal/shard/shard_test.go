package shard_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/linalg"
	"automon/internal/obs"
	"automon/internal/shard"
)

// memComm delivers synchronously into in-process nodes, like the sim and
// oracle fabrics.
type memComm struct{ nodes []*core.Node }

func (c *memComm) RequestData(id int) []float64    { return c.nodes[id].LocalVector() }
func (c *memComm) SendSync(id int, m *core.Sync)   { c.nodes[id].ApplySync(m) }
func (c *memComm) SendSlack(id int, m *core.Slack) { c.nodes[id].ApplySlack(m) }

func newCluster(t *testing.T, f *core.Function, n int, gen func(i int) []float64) ([]*core.Node, *memComm) {
	t.Helper()
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = core.NewNode(i, f)
		nodes[i].SetData(gen(i))
	}
	return nodes, &memComm{nodes: nodes}
}

func TestTreeShapeAndSubtrees(t *testing.T) {
	f := funcs.SqNorm(2)
	gen := func(i int) []float64 { return []float64{0.5, 0.5} }
	_, comm := newCluster(t, f, 12, gen)

	tr, err := shard.NewTree(f, 12, core.Config{Epsilon: 0.5}, comm, shard.Options{Shards: 6, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 6 {
		t.Fatalf("Leaves() = %d, want 6", tr.Leaves())
	}
	// 6 leaves → 3 branches → 2 branches → 1: four tiers.
	if tr.Depth() != 4 {
		t.Fatalf("Depth() = %d, want 4", tr.Depth())
	}
	ids, err := tr.Subtree(0)
	if err != nil || !reflect.DeepEqual(ids, []int{0, 1}) {
		t.Fatalf("Subtree(0) = %v, %v; want [0 1]", ids, err)
	}
	// The top shard is the last ID assigned and owns every node.
	topIDs := -1
	for sid := 0; ; sid++ {
		ids, err := tr.Subtree(sid)
		if err != nil {
			break
		}
		if len(ids) == 12 {
			topIDs = sid
		}
	}
	if topIDs < 6 {
		t.Fatalf("no interior shard owns the full population (last full shard %d)", topIDs)
	}
	if _, err := tr.Subtree(999); err == nil {
		t.Fatal("Subtree(999) of an unknown shard succeeded")
	}

	if _, err := shard.NewTree(f, 12, core.Config{}, comm, shard.Options{Shards: 4, Fanout: 1}); err == nil {
		t.Fatal("fan-out 1 accepted")
	}
	clamped, err := shard.NewTree(f, 5, core.Config{}, comm, shard.Options{Shards: 50})
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Leaves() != 5 {
		t.Fatalf("shard count not clamped to n: %d leaves for 5 nodes", clamped.Leaves())
	}
}

// monitorish is the surface the bit-identity harness drives.
type monitorish interface {
	Init() error
	HandleViolation(v *core.Violation) error
	Estimate() float64
	Stats() core.CoordStats
}

// drive replays a deterministic drift schedule through mon over its own node
// set and returns the per-round estimates.
func drive(t *testing.T, mon monitorish, nodes []*core.Node, rounds int, gen func(r, i int) []float64) []float64 {
	t.Helper()
	if err := mon.Init(); err != nil {
		t.Fatal(err)
	}
	var ests []float64
	for r := 1; r <= rounds; r++ {
		for i, nd := range nodes {
			if v := nd.UpdateData(gen(r, i)); v != nil {
				if err := mon.HandleViolation(v); err != nil {
					t.Fatalf("round %d node %d: %v", r, i, err)
				}
			}
		}
		ests = append(ests, mon.Estimate())
	}
	return ests
}

// TestTreeBitIdenticalToFlat drives the same drift schedule through a flat
// coordinator and through routing-mode trees of several shapes and requires
// bitwise-equal per-round estimates and identical protocol stats: the exact
// partial aggregates make tree shape invisible to the protocol.
func TestTreeBitIdenticalToFlat(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    *core.Function
		dim  int
		cfg  core.Config
	}{
		{"sqnorm-adcd-e", funcs.SqNorm(2), 2, core.Config{Epsilon: 0.3}},
		{"sine-adcd-x", funcs.Sine(), 1, core.Config{Epsilon: 0.1, R: 0.5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n, rounds = 6, 40
			gen := func(r, i int) []float64 {
				x := make([]float64, tc.dim)
				for j := range x {
					x[j] = 0.5 + 0.01*float64(r) + 0.03*math.Sin(float64(i+r+j))
				}
				return x
			}
			gen0 := func(i int) []float64 { return gen(0, i) }

			flatNodes, flatComm := newCluster(t, tc.f, n, gen0)
			flat := core.NewCoordinator(tc.f, n, tc.cfg, flatComm)
			want := drive(t, flat, flatNodes, rounds, gen)

			for _, opt := range []shard.Options{
				{Shards: 6, Fanout: 2},
				{Shards: 3, Fanout: 8},
				{Shards: 2, Fanout: 64},
			} {
				treeNodes, treeComm := newCluster(t, tc.f, n, gen0)
				tr, err := shard.NewTree(tc.f, n, tc.cfg, treeComm, opt)
				if err != nil {
					t.Fatal(err)
				}
				got := drive(t, tr, treeNodes, rounds, gen)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("shards=%d fanout=%d (depth %d): estimates diverge from flat run\nflat %v\ntree %v",
						opt.Shards, opt.Fanout, tr.Depth(), want, got)
				}
				if fs, ts := flat.Stats(), tr.Stats(); fs != ts {
					t.Errorf("shards=%d fanout=%d: stats diverge\nflat %+v\ntree %+v", opt.Shards, opt.Fanout, fs, ts)
				}
			}
		})
	}
}

func TestAcceptPartialValidation(t *testing.T) {
	f := funcs.SqNorm(2)
	_, comm := newCluster(t, f, 8, func(i int) []float64 { return []float64{0.4, 0.4} })
	reg := obs.NewRegistry()
	tr, err := shard.NewTree(f, 8, core.Config{Epsilon: 0.5, Metrics: reg}, comm, shard.Options{Shards: 4, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(); err != nil {
		t.Fatal(err)
	}

	good := func() *core.Partial {
		return &core.Partial{ShardID: 0, NodeID: -1, Epoch: tr.Epoch(), Weight: 2, Accs: make([]linalg.Acc, f.Dim())}
	}
	if !tr.AcceptPartial(good()) {
		t.Fatal("well-formed current-epoch partial rejected")
	}
	cases := []struct {
		name   string
		mut    func(p *core.Partial)
		reason string
	}{
		{"nil-accs", func(p *core.Partial) { p.Accs = nil }, "corrupt"},
		{"wrong-dims", func(p *core.Partial) { p.Accs = make([]linalg.Acc, 7) }, "corrupt"},
		{"stale-epoch", func(p *core.Partial) { p.Epoch-- }, "stale_epoch"},
		{"future-epoch", func(p *core.Partial) { p.Epoch += 3 }, "stale_epoch"},
		{"count-lie", func(p *core.Partial) { p.Weight = 3 }, "weight"}, // leaf 0 owns 2 nodes
		{"negative-weight", func(p *core.Partial) { p.Weight = -1 }, "weight"},
	}
	for _, tc := range cases {
		p := good()
		tc.mut(p)
		before := reg.Snapshot()[`automon_shard_partials_rejected_total{reason="`+tc.reason+`"}`]
		if tr.AcceptPartial(p) {
			t.Errorf("%s: hostile partial accepted", tc.name)
			continue
		}
		after := reg.Snapshot()[`automon_shard_partials_rejected_total{reason="`+tc.reason+`"}`]
		if after != before+1 {
			t.Errorf("%s: rejection not counted under reason=%q (%v -> %v)", tc.name, tc.reason, before, after)
		}
	}
}

func TestKillAndRejoinSubtree(t *testing.T) {
	f := funcs.SqNorm(2)
	gen := func(i int) []float64 { return []float64{0.3 + 0.05*float64(i), 0.4} }
	nodes, comm := newCluster(t, f, 8, gen)
	tr, err := shard.NewTree(f, 8, core.Config{Epsilon: 0.5}, comm, shard.Options{Shards: 4, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(); err != nil {
		t.Fatal(err)
	}

	// Kill leaf shard 1 (nodes 2, 3): survivors re-sync over the live set.
	if err := tr.KillSubtree(1); err != nil {
		t.Fatal(err)
	}
	if !tr.Degraded() || tr.LiveCount() != 6 {
		t.Fatalf("after subtree kill: degraded=%v live=%d, want true/6", tr.Degraded(), tr.LiveCount())
	}
	if st := tr.Stats(); st.NodeDeaths != 2 {
		t.Fatalf("NodeDeaths = %d, want 2", st.NodeDeaths)
	}
	liveAvg := make([]float64, 2)
	for _, i := range []int{0, 1, 4, 5, 6, 7} {
		linalg.Add(liveAvg, liveAvg, nodes[i].LocalVector())
	}
	linalg.Scale(liveAvg, 1.0/6, liveAvg)
	if est, want := tr.Estimate(), f.Value(liveAvg); math.Abs(est-want) > 1e-12 {
		t.Fatalf("degraded estimate %v does not track the live-node average %v", est, want)
	}

	// Heal: the sub-tree rejoins with fresh vectors and one full sync.
	xs := [][]float64{{0.9, 0.1}, {0.8, 0.2}}
	if err := tr.RejoinSubtree(1, xs); err != nil {
		t.Fatal(err)
	}
	if tr.Degraded() || tr.LiveCount() != 8 {
		t.Fatalf("after subtree rejoin: degraded=%v live=%d, want false/8", tr.Degraded(), tr.LiveCount())
	}
	if st := tr.Stats(); st.Rejoins != 2 {
		t.Fatalf("Rejoins = %d, want 2", st.Rejoins)
	}
	full := make([]float64, 2)
	for i := 0; i < 8; i++ {
		x := nodes[i].LocalVector()
		if i == 2 || i == 3 {
			x = xs[i-2]
		}
		linalg.Add(full, full, x)
	}
	linalg.Scale(full, 1.0/8, full)
	if est, want := tr.Estimate(), f.Value(full); math.Abs(est-want) > 1e-12 {
		t.Fatalf("healed estimate %v does not track the full average %v", est, want)
	}

	// Vector-count mismatch is rejected before touching protocol state.
	if err := tr.RejoinSubtree(1, [][]float64{{1, 1}}); err == nil {
		t.Fatal("rejoin with 1 vector for a 2-node subtree accepted")
	}
}

// TestKillEntireTree: killing the top shard leaves no live node; the error
// is the degraded-but-recoverable ErrNoLiveNodes, same as flat departures.
func TestKillEntireTree(t *testing.T) {
	f := funcs.SqNorm(2)
	_, comm := newCluster(t, f, 4, func(i int) []float64 { return []float64{0.5, 0.5} })
	tr, err := shard.NewTree(f, 4, core.Config{Epsilon: 0.5}, comm, shard.Options{Shards: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(); err != nil {
		t.Fatal(err)
	}
	top := 2 // shard IDs: leaves 0,1 then the single branch
	if err := tr.KillSubtree(top); !errors.Is(err, core.ErrNoLiveNodes) {
		t.Fatalf("killing the whole tree: err = %v, want ErrNoLiveNodes", err)
	}
	if err := tr.RejoinSubtree(top, nil); err != nil {
		t.Fatalf("whole-tree rejoin: %v", err)
	}
	if tr.Degraded() {
		t.Fatal("still degraded after whole-tree rejoin")
	}
}

func TestSubtreeRejoinMsgValidation(t *testing.T) {
	f := funcs.SqNorm(2)
	_, comm := newCluster(t, f, 8, func(i int) []float64 { return []float64{0.5, 0.5} })
	tr, err := shard.NewTree(f, 8, core.Config{Epsilon: 0.5}, comm, shard.Options{Shards: 4, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(); err != nil {
		t.Fatal(err)
	}
	if err := tr.KillSubtree(2); err != nil {
		t.Fatal(err)
	}

	bad := []*core.SubtreeRejoin{
		{ShardID: 99, IDs: []int{4, 5}, Xs: [][]float64{{1, 1}, {1, 1}}},           // unknown shard
		{ShardID: 2, IDs: []int{4}, Xs: [][]float64{{1, 1}}},                       // partial population
		{ShardID: 2, IDs: []int{4, 6}, Xs: [][]float64{{1, 1}, {1, 1}}},            // foreign node
		{ShardID: 2, IDs: []int{4, 5}, Xs: [][]float64{{1, 1}, {1, 1, 1}}},         // wrong dimension
		{ShardID: 2, IDs: []int{4, 5, 6}, Xs: [][]float64{{1, 1}, {1, 1}, {1, 1}}}, // inflated population
	}
	for _, m := range bad {
		if err := tr.HandleSubtreeRejoinMsg(m); err == nil {
			t.Errorf("forged rejoin frame %+v accepted", m)
		}
	}
	if tr.LiveCount() != 6 {
		t.Fatalf("forged frames changed liveness: %d live", tr.LiveCount())
	}
	ok := &core.SubtreeRejoin{ShardID: 2, IDs: []int{4, 5}, Xs: [][]float64{{0.6, 0.6}, {0.4, 0.4}}}
	if err := tr.HandleSubtreeRejoinMsg(ok); err != nil {
		t.Fatal(err)
	}
	if tr.Degraded() {
		t.Fatal("valid rejoin frame did not heal the tree")
	}
}

// TestModeAbsorbAbsorbsLocally proves the leaf-tier machine resolves a small
// safe-zone violation inside its partition — no root full sync — and that a
// violation it cannot absorb escalates. The perturbed node starts exactly at
// the reference point, so half its displacement (the 2-node balancing mean)
// is inside any convex zone whose boundary the displacement just crossed.
func TestModeAbsorbAbsorbsLocally(t *testing.T) {
	f := funcs.SqNorm(2)
	base := []float64{0.5, 0.5}
	nodes, comm := newCluster(t, f, 9, func(i int) []float64 { return append([]float64(nil), base...) })
	reg := obs.NewRegistry()
	tr, err := shard.NewTree(f, 9, core.Config{Epsilon: 0.2, Metrics: reg}, comm,
		shard.Options{Shards: 3, Fanout: 2, Mode: shard.ModeAbsorb})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(); err != nil {
		t.Fatal(err)
	}
	syncsAfterInit := tr.Stats().FullSyncs

	// Grow the displacement until node 0 reports a violation.
	var v *core.Violation
	for d := 0.01; d < 10; d *= 2 {
		v = nodes[0].UpdateData([]float64{base[0] + d, base[1] + d})
		if v != nil {
			break
		}
	}
	if v == nil {
		t.Fatal("no displacement ever left the safe zone")
	}
	if err := tr.HandleViolation(v); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["automon_shard_absorbed_violations_total"] < 1 {
		t.Fatalf("violation was not absorbed at the leaf: %v", snap["automon_shard_absorbed_violations_total"])
	}
	if got := tr.Stats().FullSyncs; got != syncsAfterInit {
		t.Fatalf("absorbed violation still caused a root full sync (%d -> %d)", syncsAfterInit, got)
	}

	// A displacement far beyond anything the partition can balance escalates.
	v = nodes[1].UpdateData([]float64{base[0] + 50, base[1] + 50})
	if v == nil {
		t.Fatal("huge displacement produced no violation")
	}
	if err := tr.HandleViolation(v); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if snap["automon_shard_escalated_violations_total"] < 1 {
		t.Fatal("unabsorbable violation was not escalated")
	}
	if got := tr.Stats().FullSyncs; got <= syncsAfterInit {
		t.Fatal("escalated violation never reached the root")
	}
}
