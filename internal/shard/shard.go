// Package shard implements hierarchical sharded coordination (ROADMAP item
// 1): one core.Machine — the same protocol state machine that drives the
// flat core.Coordinator — runs at the root of a tree of sub-coordinators,
// while data ownership (node vectors, slack assignments, ADCD-E matrix
// bookkeeping) is partitioned across the tree's leaves. Each leaf owns a
// contiguous node partition, maintains its exact partial aggregate
// (linalg.Acc) and its local violation set, and forwards only partial
// aggregates, unresolved violations, and sync decisions across tree edges —
// the aggregation shape of the coordinator model (arXiv:2403.20307) applied
// to AutoMon's §3 protocol.
//
// Because the per-dimension partial sums are exact, merging them up the tree
// is associative: a tree of any depth and fan-out reproduces the flat
// coordinator's reference point x̄ bit-for-bit. In ModeRoute every protocol
// decision is made by the root machine, and an entire run — estimates,
// violations, syncs, message counts — is bitwise identical to a flat run
// over the same stream (asserted by the sim differential suite). ModeAbsorb
// additionally runs the same Machine at every leaf to absorb safe-zone
// violations inside the partition via local lazy-sync balancing; absorption
// preserves the partition-local slack sum, so Σᵢ sᵢ = 0 still holds globally
// and the run stays ε-correct (asserted by the oracle tree replay), though
// its balancing choices — and therefore its exact message trace — differ
// from the flat LRU's.
package shard

import (
	"fmt"
	"sync"

	"automon/internal/core"
	"automon/internal/linalg"
)

// Mode selects how much protocol authority the tree's lower tiers hold.
type Mode uint8

const (
	// ModeRoute routes every violation to the root machine; the tree is
	// purely a distributed data plane. Bit-identical to a flat coordinator.
	ModeRoute Mode = iota
	// ModeAbsorb runs the same protocol machine at each leaf to absorb
	// safe-zone violations with partition-local lazy syncs, escalating only
	// what it cannot resolve. ε-correct; not bitwise comparable to flat.
	ModeAbsorb
)

func (m Mode) String() string {
	if m == ModeAbsorb {
		return "absorb"
	}
	return "route"
}

// DefaultFanout is the interior fan-out used when Options.Fanout is zero.
const DefaultFanout = 8

// Options shapes the sub-coordinator tree.
type Options struct {
	// Shards is the number of leaf shards; values below 1 (or above the node
	// count) are clamped.
	Shards int
	// Fanout is the maximum children per interior tier; 0 means
	// DefaultFanout. With Shards ≤ Fanout the tree has a single shard tier.
	Fanout int
	// Mode selects routing-only or leaf-absorbing shards.
	Mode Mode
}

// Tree is a hierarchical coordinator: the root protocol machine plus the
// shard tree that owns its data plane. Its method surface mirrors the flat
// Coordinator so simulation and transport drivers can use either.
type Tree struct {
	f    *core.Function
	n    int
	mode Mode
	comm core.NodeComm

	// mu serializes every state-touching public method: the transport tier's
	// SubtreeListener invokes the tree from per-connection goroutines, so the
	// public surface must be safe for concurrent use. Internal flows (the
	// root machine calling back into treeOwner and the topology) never
	// re-enter the public surface, so a plain mutex at the boundary suffices.
	// Shape getters (Depth, Leaves, Mode, Subtree) read only immutable
	// post-construction state and stay lock-free; Root is an escape hatch
	// whose caller takes over the serialization obligation.
	mu sync.Mutex

	root   *core.Machine
	topo   treeNode
	leaves []*leaf // by shard ID (leaf shard IDs are 0..len(leaves)-1)
	leafOf []*leaf // by global node ID
	byID   map[int]treeNode

	depth  int
	fanout int
	epoch  uint64

	obs treeObs
}

// NewTree builds the shard tree and its root machine for n nodes over f.
// The comm fabric is shared by every leaf: node-facing traffic (data pulls,
// syncs, slack) is identical to a flat coordinator's, only its ownership is
// partitioned.
func NewTree(f *core.Function, n int, cfg core.Config, comm core.NodeComm, opt Options) (*Tree, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: tree needs at least one node, got %d", n)
	}
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	fanout := opt.Fanout
	if fanout == 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		return nil, fmt.Errorf("shard: tree fan-out must be at least 2, got %d", fanout)
	}
	t := &Tree{
		f:      f,
		n:      n,
		mode:   opt.Mode,
		comm:   comm,
		fanout: fanout,
		byID:   make(map[int]treeNode),
		obs:    newTreeObs(cfg.Metrics, cfg.MetricsLabels),
	}

	// Leaves own contiguous, balanced partitions in global node order, so a
	// depth-first collect visits nodes exactly as a flat gather would.
	absorbing := opt.Mode == ModeAbsorb && !cfg.DisableLazySync && !cfg.DisableSlack
	t.leaves = make([]*leaf, shards)
	t.leafOf = make([]*leaf, n)
	for s := 0; s < shards; s++ {
		lo := s * n / shards
		hi := (s + 1) * n / shards
		lf := newLeaf(t, s, lo, hi, f.Dim())
		if absorbing {
			lf.enableAbsorb(cfg)
		}
		t.leaves[s] = lf
		t.byID[s] = lf
		for g := lo; g < hi; g++ {
			t.leafOf[g] = lf
		}
	}

	// Stack interior tiers bottom-up until one shard remains under the root
	// machine; shard IDs continue past the leaves.
	level := make([]treeNode, shards)
	for i, lf := range t.leaves {
		level[i] = lf
	}
	nextID := shards
	t.depth = 1
	for len(level) > 1 {
		var up []treeNode
		for lo := 0; lo < len(level); lo += fanout {
			hi := lo + fanout
			if hi > len(level) {
				hi = len(level)
			}
			b := &branch{t: t, id: nextID, children: append([]treeNode(nil), level[lo:hi]...)}
			t.byID[nextID] = b
			nextID++
			up = append(up, b)
		}
		level = up
		t.depth++
	}
	t.topo = level[0]

	rootCfg := cfg
	if t.mode == ModeAbsorb {
		// Leaves own the lazy path; everything that reaches the root is
		// already an escalation and resolves with a full sync.
		rootCfg.DisableLazySync = true
	}
	t.root = core.NewMachine(f, n, rootCfg, &treeOwner{t: t})

	t.obs.leaves.Set(float64(shards))
	t.obs.depth.Set(float64(t.depth))
	t.obs.fanout.Set(float64(fanout))
	return t, nil
}

// Root exposes the root protocol machine (liveness queries, zone, radius).
func (t *Tree) Root() *core.Machine { return t.root }

// Depth returns the number of tiers from root shard to leaves (1 = a single
// shard tier).
func (t *Tree) Depth() int { return t.depth }

// Leaves returns the number of leaf shards.
func (t *Tree) Leaves() int { return len(t.leaves) }

// Mode returns the tree's protocol mode.
func (t *Tree) Mode() Mode { return t.mode }

// Epoch returns the current full-sync generation; partial-aggregate frames
// from older generations are rejected.
func (t *Tree) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Init pulls all node vectors through the leaves and performs the first full
// sync.
func (t *Tree) Init() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.Init()
}

// Resync forces a full synchronization through the tree.
func (t *Tree) Resync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.Resync()
}

// Estimate returns the root machine's current approximation f(x̄).
func (t *Tree) Estimate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.Estimate()
}

// Zone returns the current safe zone (nil before Init).
func (t *Tree) Zone() *core.SafeZone {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.Zone()
}

// Stats snapshots the root machine's protocol counters.
func (t *Tree) Stats() core.CoordStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.Stats()
}

// R returns the root machine's current neighborhood radius.
func (t *Tree) R() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.R()
}

// Degraded reports whether any node is currently excluded from the estimate.
func (t *Tree) Degraded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.Degraded()
}

// Live reports whether global node id is currently considered reachable.
func (t *Tree) Live(id int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.Live(id)
}

// LiveCount returns the number of reachable nodes.
func (t *Tree) LiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.LiveCount()
}

// MarkDead excludes a node, exactly like Coordinator.MarkDead.
func (t *Tree) MarkDead(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root.MarkDead(id)
}

// MarkLive reverses MarkDead.
func (t *Tree) MarkLive(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root.MarkLive(id)
}

// HandleViolation reacts to a node-reported violation. In ModeAbsorb the
// owning leaf first attempts to absorb a safe-zone violation with a
// partition-local lazy sync; only unresolved violations escalate to the
// root.
func (t *Tree) HandleViolation(v *core.Violation) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mode == ModeAbsorb && v != nil && v.NodeID >= 0 && v.NodeID < t.n {
		lf := t.leafOf[v.NodeID]
		if lf.absorb != nil && t.root.Live(v.NodeID) && lf.tryAbsorb(v) {
			t.obs.absorbed.Inc()
			return nil
		}
		t.obs.escalated.Inc()
	}
	return t.root.HandleViolation(v)
}

// HandleRejoin re-admits a single node, exactly like Coordinator.HandleRejoin.
func (t *Tree) HandleRejoin(id int, x []float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.HandleRejoin(id, x)
}

// Subtree returns the global node IDs owned by shard shardID's subtree (a
// leaf's partition, or the union of an interior shard's leaves), ascending.
func (t *Tree) Subtree(shardID int) ([]int, error) {
	nd, ok := t.byID[shardID]
	if !ok {
		return nil, fmt.Errorf("shard: unknown shard %d", shardID)
	}
	return nd.nodeIDs(), nil
}

// KillSubtree marks every node under shard shardID dead and re-synchronizes
// the survivors in one full sync — the whole-partition analogue of
// HandleDeparture. Returns core.ErrNoLiveNodes when the subtree was the
// entire population.
func (t *Tree) KillSubtree(shardID int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids, err := t.Subtree(shardID)
	if err != nil {
		return err
	}
	t.obs.subtreeDeparts.Inc()
	return t.root.HandleSubtreeDeparture(ids)
}

// RejoinSubtree re-admits every node under shard shardID with fresh vectors
// (xs indexed in the subtree's ascending node order; nil entries keep the
// stale vector) and runs one full sync over the healed population.
func (t *Tree) RejoinSubtree(shardID int, xs [][]float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids, err := t.Subtree(shardID)
	if err != nil {
		return err
	}
	if xs != nil && len(xs) != len(ids) {
		return fmt.Errorf("shard: subtree %d rejoin carries %d vectors for %d nodes", shardID, len(xs), len(ids))
	}
	t.obs.subtreeRejoins.Inc()
	return t.root.HandleSubtreeRejoin(ids, xs)
}

// HandleSubtreeRejoinMsg applies a decoded wire-form SubtreeRejoin: the
// frame's node set must exactly match the shard's subtree (a partial or
// inflated population is a forged frame and is rejected without touching
// protocol state).
func (t *Tree) HandleSubtreeRejoinMsg(m *core.SubtreeRejoin) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids, err := t.Subtree(m.ShardID)
	if err != nil {
		t.obs.rejectedCorrupt.Inc()
		return err
	}
	if len(m.IDs) != len(ids) {
		t.obs.rejectedCorrupt.Inc()
		return fmt.Errorf("shard: subtree %d rejoin frame names %d nodes, owns %d", m.ShardID, len(m.IDs), len(ids))
	}
	for i := range ids {
		if m.IDs[i] != ids[i] {
			t.obs.rejectedCorrupt.Inc()
			return fmt.Errorf("shard: subtree %d rejoin frame names node %d outside the partition", m.ShardID, m.IDs[i])
		}
		if len(m.Xs[i]) != t.f.Dim() {
			t.obs.rejectedCorrupt.Inc()
			return fmt.Errorf("shard: subtree %d rejoin vector %d has dimension %d, want %d", m.ShardID, i, len(m.Xs[i]), t.f.Dim())
		}
	}
	t.obs.subtreeRejoins.Inc()
	return t.root.HandleSubtreeRejoin(ids, m.Xs)
}

// AcceptPartial validates a partial-aggregate frame against the current
// epoch and the sender's maximum plausible weight (its subtree size).
// Rejected frames are counted by reason and contribute nothing — a count lie
// or a stale epoch cannot skew the reference point. The transport tier calls
// this for frames arriving off the wire; the in-process tiers run the same
// check on every merge.
func (t *Tree) AcceptPartial(p *core.Partial) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	maxW := t.n
	if p != nil {
		if nd, ok := t.byID[p.ShardID]; ok {
			maxW = nd.maxWeight()
		}
	}
	return t.acceptPartial(p, maxW)
}

func (t *Tree) acceptPartial(p *core.Partial, maxWeight int) bool {
	switch {
	case p == nil || len(p.Accs) != t.f.Dim():
		t.obs.rejectedCorrupt.Inc()
		return false
	case p.Epoch != t.epoch:
		t.obs.rejectedStale.Inc()
		return false
	case p.Weight < 0 || p.Weight > maxWeight:
		t.obs.rejectedWeight.Inc()
		return false
	}
	return true
}

// treeOwner adapts the shard tree to core.Ownership: the root machine's data
// plane. Single-node operations route straight to the owning leaf;
// collective operations (Collect, Distribute) recurse the topology so
// partial aggregates are built and merged tier by tier.
type treeOwner struct{ t *Tree }

func (o *treeOwner) Store(id int, x []float64) {
	lf := o.t.leafOf[id]
	copy(lf.lastX[id-lf.lo], x)
}

func (o *treeOwner) Refresh(id int) bool {
	x := o.t.comm.RequestData(id)
	if x == nil {
		return false
	}
	lf := o.t.leafOf[id]
	copy(lf.lastX[id-lf.lo], x)
	return true
}

func (o *treeOwner) AddSlacked(sum []float64, id int) {
	lf := o.t.leafOf[id]
	lid := id - lf.lo
	for j := range sum {
		sum[j] += lf.lastX[lid][j] + lf.slacks[lid][j]
	}
}

func (o *treeOwner) Rebalance(set []int, mean []float64) {
	for _, g := range set {
		lf := o.t.leafOf[g]
		lid := g - lf.lo
		linalg.Sub(lf.slacks[lid], mean, lf.lastX[lid])
		o.t.comm.SendSlack(g, &core.Slack{NodeID: g, Slack: linalg.Clone(lf.slacks[lid])})
	}
}

func (o *treeOwner) Collect(fresh map[int]bool, accs []linalg.Acc) int {
	p := o.t.topo.collect(fresh)
	if !o.t.acceptPartial(p, o.t.n) {
		return 0
	}
	linalg.MergeVec(accs, p.Accs)
	return p.Weight
}

func (o *treeOwner) Distribute(tmpl *core.Sync, zone *core.SafeZone) {
	o.t.epoch++
	o.t.topo.distribute(tmpl, zone)
}

func (o *treeOwner) Forget(id int) {
	lf := o.t.leafOf[id]
	lf.matrixSent[id-lf.lo] = false
}

func (o *treeOwner) Snapshot() [][]float64 {
	round := make([][]float64, o.t.n)
	for g := range round {
		lf := o.t.leafOf[g]
		round[g] = append([]float64(nil), lf.lastX[g-lf.lo]...)
	}
	return round
}
