package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the observability HTTP handler:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    flat JSON dump of the registry
//	/debug/events  JSON array of the tracer's retained protocol events
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Either argument may be nil; the corresponding endpoints then serve empty
// documents.
func NewMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w) //automon:allow erreig write error to a scraping client is the client's problem, not the server's
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w) //automon:allow erreig write error to a scraping client is the client's problem, not the server's
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = tr.WriteJSON(w) //automon:allow erreig write error to a scraping client is the client's problem, not the server's
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint; Close stops it.
type Server struct {
	Addr string // the bound address (resolves ":0" requests)
	ln   net.Listener
	srv  *http.Server
}

// Serve starts the observability HTTP server on addr (e.g. "127.0.0.1:7800",
// or ":0" for an ephemeral port — read the bound address from Server.Addr).
// The server runs until Close.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv: &http.Server{
			Handler:           NewMux(reg, tr),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }() //automon:allow erreig Serve always returns ErrServerClosed after Close
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
