package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds recorded by the protocol layers. Kinds are plain strings so
// obs stays dependency-free; the protocol packages own their vocabulary.
const (
	// Coordinator protocol events (internal/core).
	EventViolation = "violation" // Label: violation kind; Node: reporter
	EventFullSync  = "full_sync" // Value: live-node count
	EventLazySync  = "lazy_sync" // Value: balancing-set size
	EventRDouble   = "r_double"  // Value: new neighborhood radius
	EventNodeDeath = "node_death"
	EventRejoin    = "rejoin"

	// Adaptive radius controller events (internal/core/radius.go).
	EventRSaturated = "r_saturated" // Value: the RMax cap a doubling clamped to
	EventRShrink    = "r_shrink"    // Value: new (smaller) radius swapped in at a sync
	EventRGrow      = "r_grow"      // Value: new (larger) radius swapped in at a sync
	EventRetune     = "retune"      // Value: staged radius; Label: staged | within-noise | bracket-failed

	// Transport events (internal/transport).
	EventFrameSent       = "frame_sent"        // Value: wire bytes; Label: message type
	EventFrameReceived   = "frame_recv"        // Value: wire bytes; Label: message type
	EventReconnectTry    = "reconnect_attempt" // Value: backoff wait (seconds)
	EventReconnected     = "reconnected"
	EventReconnectFailed = "reconnect_gave_up"
	EventDeadlineHit     = "deadline_hit" // Label: which deadline expired
)

// Event is one structured protocol event. Events are fixed-size records:
// the generic Value/Label fields carry the per-kind payload (balancing-set
// size, bytes on wire, new radius, violation kind, ...).
type Event struct {
	Seq   uint64  `json:"seq"`
	Unix  int64   `json:"unix_nanos"`
	Kind  string  `json:"kind"`
	Node  int     `json:"node"`
	Value float64 `json:"value,omitempty"`
	Label string  `json:"label,omitempty"`
}

// Tracer records events into a fixed-size ring buffer: the most recent
// Size() events are retained, older ones are overwritten. A nil Tracer is a
// valid no-op sink — tracing is the part of the observability layer that is
// genuinely off by default, so the Record path of an untraced process is a
// single nil check.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; buf[next%len] is the write slot
}

// NewTracer creates a tracer retaining the last size events (minimum 16).
func NewTracer(size int) *Tracer {
	if size < 16 {
		size = 16
	}
	return &Tracer{buf: make([]Event, size)}
}

// Record appends one event. Safe for concurrent use; no-op on nil.
func (t *Tracer) Record(kind string, node int, value float64, label string) {
	if t == nil {
		return
	}
	//automon:allow statepure observability timestamping only; the protocol state machine never reads an event's wall-clock field back
	now := time.Now().UnixNano()
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = Event{
		Seq: t.next, Unix: now, Kind: kind, Node: node, Value: value, Label: label,
	}
	t.next++
	t.mu.Unlock()
}

// Total returns how many events have ever been recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Size returns the ring capacity (0 on nil).
func (t *Tracer) Size() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Snapshot returns the retained events in recording order (oldest first).
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	start := uint64(0)
	count := t.next
	if t.next > n {
		start = t.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for seq := start; seq < t.next; seq++ {
		out = append(out, t.buf[seq%n])
	}
	return out
}

// WriteJSON renders the retained events as a JSON array (the /debug/events
// payload).
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Snapshot()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}
