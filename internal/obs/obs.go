// Package obs is the repository's dependency-free observability layer:
// counters, gauges, and histograms with atomic hot paths, a structured
// protocol-event tracer, and plaintext HTTP exposition (Prometheus text
// format, /debug/vars JSON, and net/http/pprof).
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, or *Tracer are no-ops, so instrumented code never branches on
// "is observability enabled" — it simply holds nil handles when it is not.
// The protocol packages (internal/core, internal/transport, internal/sim)
// always count through real counters, because their test-visible Stats
// structs are views over the same instruments; only the optional extras
// (event tracing, the HTTP server) are disabled by default.
//
// Metric names follow the Prometheus convention: a base name, optionally
// followed by a {label="value",...} suffix that is carried verbatim into the
// exposition. Two registrations with the same full name share one
// instrument, which is what makes a registry scrape and a Stats snapshot
// structurally unable to diverge.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// create counters with NewCounter or Registry.Counter. A nil Counter is a
// valid no-op sink.
type Counter struct {
	v atomic.Int64
}

// NewCounter creates a standalone (unregistered) counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Load returns the current count. Load on a nil counter returns 0.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (a level, not a count). A nil
// Gauge is a valid no-op sink.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge creates a standalone (unregistered) gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative ≤-bound buckets, Prometheus
// style, plus a running sum and count. All updates are atomic; a nil
// Histogram is a valid no-op sink.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram creates a standalone histogram over the given ascending
// upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metricKind tags a registry entry for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("metricKind(%d)", uint8(k))
}

type metric struct {
	name string // full name including any {labels} suffix
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// baseName strips the {labels} suffix from a full metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labels returns the label suffix without braces ("" when unlabelled).
func labels(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name[i+1:], "}")
	}
	return ""
}

// Registry holds named instruments for exposition. Registration is
// get-or-create: asking twice for the same full name returns the same
// instrument. All methods are safe for concurrent use; a nil *Registry
// hands out nil (no-op) instruments, so optional instrumentation can pass
// registries through without guarding every call site.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) lookupOrAdd(name, help string, kind metricKind, make_ func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			// Handing back the mismatched entry would give the caller a nil
			// instrument, which the Or-helpers silently replace with an
			// unregistered standalone one — exactly the Stats/scrape
			// divergence this registry exists to rule out. A registration
			// conflict is a programming error, so fail loudly.
			panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested as a %s", name, m.kind, kind))
		}
		return m
	}
	m := make_()
	m.name, m.help, m.kind = name, help, kind
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter registered under name (with optional
// {label="v"} suffix), creating it on first use. Nil registries return nil.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookupOrAdd(name, help, kindCounter, func() *metric {
		return &metric{counter: NewCounter()}
	}).counter
}

// RegisterCounter exposes an existing counter under name. If the name is
// already taken the existing registration wins and the counter is NOT
// replaced (the caller keeps its handle; the scrape shows the first one).
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.lookupOrAdd(name, help, kindCounter, func() *metric {
		return &metric{counter: c}
	})
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookupOrAdd(name, help, kindGauge, func() *metric {
		return &metric{gauge: NewGauge()}
	}).gauge
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookupOrAdd(name, help, kindHistogram, func() *metric {
		return &metric{hist: NewHistogram(bounds)}
	}).hist
}

// snapshotMetrics copies the ordered metric list under the lock.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.ordered...)
}

// Snapshot returns the current value of every instrument, keyed by full
// name. Histograms contribute name_count and name_sum entries. A nil
// registry returns an empty map.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			out[m.name] = float64(m.counter.Load())
		case kindGauge:
			out[m.name] = m.gauge.Load()
		case kindHistogram:
			base, lb := baseName(m.name), labels(m.name)
			suffix := ""
			if lb != "" {
				suffix = "{" + lb + "}"
			}
			out[base+"_count"+suffix] = float64(m.hist.Count())
			out[base+"_sum"+suffix] = m.hist.Sum()
		}
	}
	return out
}

// formatValue renders a float the way Prometheus expects (integers without
// an exponent, +Inf as "+Inf").
func formatValue(v float64) string {
	//automon:allow nofloateq exact integrality test chooses the integer rendering; both branches are correct
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// mergeLabels joins an existing label set with an extra label.
func mergeLabels(existing, extra string) string {
	if existing == "" {
		return "{" + extra + "}"
	}
	return "{" + existing + "," + extra + "}"
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4). HELP/TYPE headers are emitted
// once per base name, so labelled variants of one metric group correctly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	seenHeader := make(map[string]bool)
	header := func(base, help string, kind metricKind) string {
		if seenHeader[base] {
			return ""
		}
		seenHeader[base] = true
		typ := "counter"
		switch kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s %s\n", base, help, base, typ)
	}
	for _, m := range r.snapshotMetrics() {
		base := baseName(m.name)
		if _, err := io.WriteString(w, header(base, m.help, m.kind)); err != nil {
			return err
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Load()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.gauge.Load())); err != nil {
				return err
			}
		case kindHistogram:
			lb := labels(m.name)
			cum := int64(0)
			for i, bound := range m.hist.bounds {
				cum += m.hist.buckets[i].Load()
				le := mergeLabels(lb, fmt.Sprintf("le=%q", formatValue(bound)))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, le, cum); err != nil {
					return err
				}
			}
			cum += m.hist.buckets[len(m.hist.bounds)].Load()
			le := mergeLabels(lb, `le="+Inf"`)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, le, cum); err != nil {
				return err
			}
			suffix := ""
			if lb != "" {
				suffix = "{" + lb + "}"
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatValue(m.hist.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, m.hist.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonValue renders a float for the JSON exposition. JSON has no literal for
// non-finite numbers, so NaN/±Inf become null rather than breaking parsers.
func jsonValue(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return formatValue(v)
}

// WriteJSON renders the registry as a flat JSON object (the /debug/vars
// payload), keyed by full metric name.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, n := range names {
		sep := ",\n"
		if i == len(names)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "  %q: %s%s", n, jsonValue(snap[n]), sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
