package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	tr.Record(EventFullSync, 0, 1, "")
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 || tr.Total() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryGetOrCreateShares(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`msgs_total{side="node"}`, "messages")
	b := r.Counter(`msgs_total{side="node"}`, "messages")
	if a != b {
		t.Fatal("same full name must return the same counter")
	}
	other := r.Counter(`msgs_total{side="coord"}`, "messages")
	if other == a {
		t.Fatal("distinct label sets must be distinct counters")
	}
	a.Add(3)
	if b.Load() != 3 {
		t.Fatalf("shared counter reads %d, want 3", b.Load())
	}
}

func TestCountersAreConcurrencySafe(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("concurrent_total", "")
	h := r.Histogram("lat_seconds", "", []float64{0.1, 1})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.05)
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-workers*per*0.05) > 1e-6 {
		t.Fatalf("histogram sum = %v", h.Sum())
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`automon_syncs_total{kind="full"}`, "syncs by kind").Add(7)
	r.Counter(`automon_syncs_total{kind="lazy"}`, "syncs by kind").Add(2)
	r.Gauge("automon_radius", "neighborhood radius").Set(0.25)
	h := r.Histogram("automon_set_size", "balancing set", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE automon_syncs_total counter",
		`automon_syncs_total{kind="full"} 7`,
		`automon_syncs_total{kind="lazy"} 2`,
		"# TYPE automon_radius gauge",
		"automon_radius 0.25",
		"# TYPE automon_set_size histogram",
		`automon_set_size_bucket{le="1"} 1`,
		`automon_set_size_bucket{le="4"} 2`,
		`automon_set_size_bucket{le="+Inf"} 3`,
		"automon_set_size_sum 104",
		"automon_set_size_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once per base name even with labels.
	if n := strings.Count(out, "# TYPE automon_syncs_total"); n != 1 {
		t.Fatalf("TYPE header emitted %d times, want 1", n)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(4)
	r.Gauge("b", "").Set(-1.5)
	r.Histogram("c_seconds", "", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if snap["a_total"] != 4 || snap["b"] != -1.5 || snap["c_seconds_count"] != 1 || snap["c_seconds_sum"] != 0.5 {
		t.Fatalf("snapshot = %v", snap)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded["a_total"] != 4 {
		t.Fatalf("JSON a_total = %v", decoded["a_total"])
	}
}

func TestWriteJSONNonFiniteValues(t *testing.T) {
	// JSON has no literal for NaN/Inf; a poisoned gauge must render as null
	// instead of breaking every /debug/vars consumer.
	r := NewRegistry()
	r.Gauge("nan_gauge", "").Set(math.NaN())
	r.Gauge("inf_gauge", "").Set(math.Inf(1))
	r.Gauge("neg_inf_gauge", "").Set(math.Inf(-1))
	r.Gauge("ok", "").Set(2.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]*float64
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON with non-finite gauges is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, name := range []string{"nan_gauge", "inf_gauge", "neg_inf_gauge"} {
		if decoded[name] != nil {
			t.Fatalf("%s should render as null, got %v", name, *decoded[name])
		}
	}
	if decoded["ok"] == nil || *decoded["ok"] != 2.5 {
		t.Fatalf("finite value mangled:\n%s", buf.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	// Handing a counter registration back to a gauge request would yield a
	// nil instrument and silently fork the caller onto an unregistered
	// standalone one — the exact Stats/scrape divergence the registry rules
	// out — so the conflict must fail loudly.
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting x_total as a gauge after registering it as a counter must panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestTracerRingRetainsNewest(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Record(EventViolation, i, float64(i), "safe_zone")
	}
	if tr.Total() != 40 {
		t.Fatalf("total = %d, want 40", tr.Total())
	}
	events := tr.Snapshot()
	if len(events) != 16 {
		t.Fatalf("retained %d events, want 16", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(24 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d (oldest-first order)", i, e.Seq, wantSeq)
		}
	}
	if events[len(events)-1].Node != 39 {
		t.Fatal("newest event missing")
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(EventFrameSent, 0, 1, "sync")
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", tr.Total())
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("automon_http_test_total", "endpoint test").Add(11)
	tr := NewTracer(16)
	tr.Record(EventFullSync, -1, 3, "")

	srv, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "automon_http_test_total 11") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	var vars map[string]float64
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars["automon_http_test_total"] != 11 {
		t.Fatalf("/debug/vars = %v", vars)
	}
	var events []Event
	if err := json.Unmarshal([]byte(get("/debug/events")), &events); err != nil {
		t.Fatalf("/debug/events not JSON: %v", err)
	}
	if len(events) != 1 || events[0].Kind != EventFullSync {
		t.Fatalf("/debug/events = %+v", events)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Fatal("/debug/pprof/ index missing")
	}
}
