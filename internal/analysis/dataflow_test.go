package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// dataflow_test.go covers the interprocedural layer (summary.go, cfg.go)
// through its four analyzers — statepure, lockorder, golifecycle, floatflow
// — plus the properties the layer itself guarantees: deterministic
// diagnostics at any analysis order, build-tag/testdata handling in the
// loader, the statepure root manifest, and the real tree's acyclic lock
// graph.

func TestStatepureFixture(t *testing.T) {
	runFixture(t, Statepure, "statepure", "fixture/statepure")
}

// The lockorder fixture is loaded under fixture/internal/core so the
// package falls inside the graphed scope.
func TestLockorderFixture(t *testing.T) {
	runFixture(t, Lockorder, "lockorder", "fixture/internal/core")
}

// TestLockorderScopedToLockPackages reloads the same fixture under a path
// outside core/transport/obs and requires zero findings.
func TestLockorderScopedToLockPackages(t *testing.T) {
	mod, err := LoadFixture(filepath.Join("testdata", "src", "lockorder"), "fixture/free")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(mod, []*Analyzer{Lockorder})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("lockorder fired outside its package scope: %s", d)
	}
}

func TestGolifecycleFixture(t *testing.T) {
	runFixture(t, Golifecycle, "golifecycle", "fixture/golifecycle")
}

// TestFloatflowTreeFixture exercises the cross-package rules on a fixture
// tree: a fake internal/core (the deterministic root set), a helper package
// holding the taint sites, and a fake internal/obs providing metric sinks.
func TestFloatflowTreeFixture(t *testing.T) {
	mod, err := LoadFixtureTree(filepath.Join("testdata", "src", "floatflowtree"), "fixture/floatflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Pkgs) != 3 {
		t.Fatalf("fixture tree loaded %d packages, want 3", len(mod.Pkgs))
	}
	checkFixture(t, mod, Floatflow)
}

// statepureManifest is the reviewed protocol transition set: full-sync
// resolution, violation handling, and lazy-sync slack application. Marking
// a new transition //automon:statepure without extending this list — or
// unmarking one — is forced into review, mirroring the hotpath manifest.
var statepureManifest = map[string]bool{
	"core.Machine.HandleViolation": true,
	"core.Machine.fullSync":        true,
	"core.Machine.lazySync":        true,
}

func TestStatepureAnnotationsMatchManifest(t *testing.T) {
	fset := token.NewFileSet()
	found := make(map[string]bool)
	root := "../.."
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if p != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective(fd, statepureMarker) {
				found[f.Name.Name+"."+declName(fd)] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for fn := range statepureManifest {
		if !found[fn] {
			t.Errorf("%s is in the statepure manifest but carries no //automon:statepure annotation", fn)
		}
	}
	for fn := range found {
		if !statepureManifest[fn] {
			t.Errorf("%s is annotated //automon:statepure but missing from the manifest in dataflow_test.go", fn)
		}
	}
}

// TestLockorderRealGraphAcyclic proves the real acquisition graph acyclic
// with suppression disabled: unlike TestRepoIsLintClean, a waiver could not
// hide a cycle here. The pass runs with an empty allow index so nothing is
// pruned or filtered.
func TestLockorderRealGraphAcyclic(t *testing.T) {
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	var raw []Diagnostic
	pass := &Pass{Fset: mod.Fset, Pkgs: mod.Pkgs, analyzer: Lockorder, allows: make(allowIndex), diags: &raw}
	if err := Lockorder.Run(pass); err != nil {
		t.Fatal(err)
	}
	for _, d := range raw {
		t.Errorf("lock-order violation in the real tree (waivers disabled): %s", d)
	}
}

// TestDataflowDiagnosticsOrderInvariant pins summary determinism: the same
// module analyzed with the package list and the analyzer list reversed must
// report the identical diagnostics. The call graph's position-sorted order
// and the harness's final sort make the output a pure function of the
// source, not of traversal order.
func TestDataflowDiagnosticsOrderInvariant(t *testing.T) {
	dir := filepath.Join("testdata", "src", "floatflowtree")
	mod, err := LoadFixtureTree(dir, "fixture/floatflow")
	if err != nil {
		t.Fatal(err)
	}
	suite := []*Analyzer{Statepure, Lockorder, Golifecycle, Floatflow}
	base, err := Lint(mod, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("fixture tree produced no diagnostics; the invariance check is vacuous")
	}

	revPkgs := make([]*Package, len(mod.Pkgs))
	for i, pkg := range mod.Pkgs {
		revPkgs[len(revPkgs)-1-i] = pkg
	}
	revSuite := make([]*Analyzer, len(suite))
	for i, a := range suite {
		revSuite[len(revSuite)-1-i] = a
	}
	again, err := Lint(&Module{Fset: mod.Fset, Pkgs: revPkgs}, revSuite)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(base) {
		t.Fatalf("reversed-order lint reported %d diagnostics, want %d", len(again), len(base))
	}
	for i := range base {
		if base[i].String() != again[i].String() {
			t.Errorf("diagnostic %d differs across analysis orders:\n  forward:  %s\n  reversed: %s",
				i, base[i], again[i])
		}
	}
}

// TestLoaderRespectsBuildTagsAndSkipsTestdata pins the driver edge cases:
// testdata fixtures (which intentionally violate every invariant) must not
// load, and build-tag-gated files resolve with the default (race-off)
// context — internal/testenv ships race_on.go/race_off.go exactly to gate
// on that tag.
func TestLoaderRespectsBuildTagsAndSkipsTestdata(t *testing.T) {
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	var testenvPkg *Package
	for _, pkg := range mod.Pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("loader picked up a testdata package: %s", pkg.Path)
		}
		if strings.HasSuffix(pkg.Path, "internal/testenv") {
			testenvPkg = pkg
		}
	}
	if testenvPkg == nil {
		t.Fatal("internal/testenv did not load; the build-tag check is vacuous")
	}
	names := make(map[string]bool)
	for _, f := range testenvPkg.Files {
		names[filepath.Base(mod.Fset.Position(f.Pos()).Filename)] = true
	}
	if !names["race_off.go"] {
		t.Error("internal/testenv/race_off.go (//go:build !race) did not load under the default context")
	}
	if names["race_on.go"] {
		t.Error("internal/testenv/race_on.go (//go:build race) loaded despite its build tag")
	}
}
