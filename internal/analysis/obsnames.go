package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// Obsnames proves the metric-namespace grammar and the constructor/kind match
// at compile time, extending the PR-2 review's runtime kind-mismatch panic in
// obs.Registry.lookupOrAdd. Every automon_* metric name that reaches a
// counter/gauge/histogram constructor (directly or through the registry-or-
// standalone helpers — any callee whose name contains Counter, Gauge or
// Histogram) must follow
//
//	automon_<subsystem>_<name>[{labels}]
//
// in lower_snake_case, where counters end in _total (optionally preceded by a
// _seconds/_bytes unit) and gauges/histograms must NOT end in _total or claim
// the Prometheus-reserved _bucket/_count/_sum suffixes the exposition appends
// itself. Names built at runtime are validated on their constant prefix; a
// name with no constant part is out of reach and stays a runtime concern.
var Obsnames = &Analyzer{
	Name: "obsnames",
	Doc:  "metric names must match automon_<subsystem>_<name> with a kind-consistent suffix (_total for counters)",
	Run:  runObsnames,
}

var metricBaseRe = regexp.MustCompile(`^automon_[a-z0-9]+(_[a-z0-9]+)*$`)
var metricPrefixRe = regexp.MustCompile(`^automon(_[a-z0-9]+)*_?$`)

// metricKindOf classifies a constructor by callee name (case-insensitive, so
// the registry-or-standalone helpers counterOr/histogramOr/simCounter are
// covered alongside the Registry methods).
func metricKindOf(name string) string {
	lower := strings.ToLower(name)
	switch {
	case strings.Contains(lower, "counter"):
		return "counter"
	case strings.Contains(lower, "gauge"):
		return "gauge"
	case strings.Contains(lower, "histogram"):
		return "histogram"
	}
	return ""
}

// constantName extracts the compile-time-known part of a metric-name
// expression: a fully constant string (including folded concatenation), the
// constant left side of a `const + dynamic` concatenation, or the prefix of a
// fmt.Sprintf format cut at its first verb. complete reports whether the
// returned string is the whole base name (dynamic remainders that only append
// a {label} set keep the base complete).
func constantName(info *types.Info, e ast.Expr) (name string, complete bool) {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		left, leftComplete := constantName(info, e.X)
		if left == "" || !leftComplete {
			return left, false
		}
		// automon_..._total + lbl(...): the dynamic part appends labels, so
		// the base name ends with the constant prefix iff it already carries
		// a brace or a terminal suffix; report it as incomplete and let the
		// checker decide what it can still verify.
		return left, false
	case *ast.CallExpr:
		if fn := callee(info, e); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf" && len(e.Args) > 0 {
			format, ok := constantName(info, e.Args[0])
			if !ok {
				return "", false
			}
			if i := strings.IndexByte(format, '%'); i >= 0 {
				// A single trailing %s appends a label set; the base is
				// complete. Anything else leaves the base open.
				if i == len(format)-2 && strings.HasSuffix(format, "%s") && strings.Count(format, "%") == 1 {
					return format[:i], true
				}
				return format[:i], false
			}
			return format, true
		}
	}
	return "", false
}

// reservedSuffixes are appended by the Prometheus exposition itself and may
// not appear in gauge/histogram base names; _total marks a counter.
var reservedSuffixes = []string{"_bucket", "_count", "_sum"}

func checkMetricName(p *Pass, pos ast.Node, kind, name string, complete bool) {
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base, complete = base[:i], true
	}
	if !complete {
		// Only the charset and the automon_ prefix are checkable.
		if !metricPrefixRe.MatchString(base) {
			p.Reportf(pos.Pos(), "metric name prefix %q does not follow automon_<subsystem>_<name> lower_snake_case", base)
			return
		}
		if kind == "counter" && strings.HasSuffix(base, "_total") {
			return // dynamic remainder is a label set on a well-formed counter
		}
		return
	}
	if !metricBaseRe.MatchString(base) {
		p.Reportf(pos.Pos(), "metric name %q does not follow automon_<subsystem>_<name> lower_snake_case", base)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(base, "_total") {
			p.Reportf(pos.Pos(), "counter %q must end in _total (unit suffixes like _bytes_total come before it)", base)
		}
	case "gauge", "histogram":
		if strings.HasSuffix(base, "_total") {
			p.Reportf(pos.Pos(), "%s %q must not end in _total: that suffix marks counters, and obs.Registry panics on kind mismatch at runtime", kind, base)
			return
		}
		for _, s := range reservedSuffixes {
			if strings.HasSuffix(base, s) {
				p.Reportf(pos.Pos(), "%s %q must not end in %s: the exposition appends that suffix itself", kind, base, s)
			}
		}
	}
}

func runObsnames(p *Pass) error {
	for _, pkg := range p.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(info, call)
				if fn == nil {
					return true
				}
				kind := metricKindOf(fn.Name())
				if kind == "" {
					return true
				}
				// The first string-typed argument is the metric name by
				// convention (Registry methods, Register* and the *Or/sim
				// helpers all agree on it).
				for _, arg := range call.Args {
					tv, ok := info.Types[arg]
					if !ok {
						continue
					}
					b, ok := tv.Type.Underlying().(*types.Basic)
					if !ok || b.Info()&types.IsString == 0 {
						continue
					}
					name, complete := constantName(info, arg)
					if name == "" {
						break // dynamic name: out of static reach
					}
					if !strings.HasPrefix(name, "automon_") {
						p.Reportf(arg.Pos(), "metric name %q must start with automon_<subsystem>_", name)
						break
					}
					checkMetricName(p, arg, kind, name, complete)
					break
				}
				return true
			})
		}
	}
	return nil
}
