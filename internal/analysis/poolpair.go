package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Poolpair enforces the buffer-pool discipline behind the allocation-free
// monitoring loop: within one function, every Get from a pool-like value
// (sync.Pool, or any named type whose name contains "pool" — the autodiff
// bufferPool with its PR-3 dirty-get/zeroed-get split) must be matched by a
// Put on the same pool, counting deferred Puts. A function that returns a
// buffer it got transfers ownership to its caller and is exempt, which is
// exactly how the pool wrappers themselves (bufferPool.get/getZeroed) hand
// buffers out.
var Poolpair = &Analyzer{
	Name: "poolpair",
	Doc:  "every pool Get needs a matching Put on all paths of the same function (or the buffer must be returned)",
	Run:  runPoolpair,
}

var poolGetNames = map[string]bool{"get": true, "Get": true, "getZeroed": true, "GetZeroed": true}
var poolPutNames = map[string]bool{"put": true, "Put": true}

// isPoolType reports whether t names a pool: sync.Pool or a declared type
// whose name contains "pool".
func isPoolType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool" {
		return true
	}
	return strings.Contains(strings.ToLower(obj.Name()), "pool")
}

// poolCall describes one Get/Put on a pool receiver inside a function.
type poolCall struct {
	call *ast.CallExpr
	recv string // printed receiver expression, e.g. "g.pool"
	get  bool
}

// poolCalls collects the pool operations in a function body.
func poolCalls(info *types.Info, body *ast.BlockStmt) []poolCall {
	var out []poolCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		isGet, isPut := poolGetNames[sel.Sel.Name], poolPutNames[sel.Sel.Name]
		if !isGet && !isPut {
			return true
		}
		tv, ok := info.Types[sel.X]
		if !ok || !isPoolType(tv.Type) {
			return true
		}
		out = append(out, poolCall{call: call, recv: types.ExprString(sel.X), get: isGet})
		return true
	})
	return out
}

// returnsPoolBuffer reports whether any return statement mentions a variable
// assigned from one of the function's pool Gets — the ownership-transfer
// exemption.
func returnsPoolBuffer(body *ast.BlockStmt, calls []poolCall) bool {
	vars := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			for _, pc := range calls {
				if !pc.get {
					continue
				}
				if containsNode(rhs, pc.call) && i < len(assign.Lhs) {
					if id, ok := assign.Lhs[i].(*ast.Ident); ok {
						vars[id.Name] = true
					}
				}
			}
		}
		return true
	})
	if len(vars) == 0 {
		return false
	}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || escaped {
			return !escaped
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && vars[id.Name] {
					escaped = true
				}
				return !escaped
			})
		}
		return true
	})
	return escaped
}

// containsNode reports whether target appears within root.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

func runPoolpair(p *Pass) error {
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				calls := poolCalls(pkg.Info, decl.Body)
				if len(calls) == 0 {
					continue
				}
				if returnsPoolBuffer(decl.Body, calls) {
					continue // ownership transferred to the caller
				}
				type tally struct {
					gets, puts int
					firstGet   *ast.CallExpr
				}
				byRecv := make(map[string]*tally)
				for _, pc := range calls {
					t := byRecv[pc.recv]
					if t == nil {
						t = &tally{}
						byRecv[pc.recv] = t
					}
					if pc.get {
						t.gets++
						if t.firstGet == nil {
							t.firstGet = pc.call
						}
					} else {
						t.puts++
					}
				}
				for recv, t := range byRecv {
					if t.gets > t.puts && t.firstGet != nil {
						p.Reportf(t.firstGet.Pos(),
							"%s has %d Get(s) but %d Put(s) on pool %s: a leaked buffer defeats the allocation-free loop",
							declName(decl), t.gets, t.puts, recv)
					}
				}
			}
		}
	}
	return nil
}
