package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// hotpathManifest is the reviewed list of //automon:hotpath roots: the PR-3
// zero-allocation entry points of the monitoring loop, plus the interval
// eigen-engine's inner arithmetic (the per-node loops of the certified
// Hessian enclosure — pooled scratch, no per-op allocation), plus the
// ingestion layer's per-event path (sketch apply, update-norm bound, budget
// debit, and the elision-aware check entry points). Adding an
// annotation anywhere in the module without extending this list — or
// dropping one — is a deliberate decision this test forces into review.
var hotpathManifest = map[string]bool{
	"core.Node.UpdateData":          true,
	"core.Node.UpdateDataRefresh":   true,
	"core.Node.SpendBudget":         true,
	"core.SafeZone.ContainsScratch": true,
	"ingest.NodeIngestor.Ingest":    true,
	"ingest.AMSSource.Apply":        true,
	"ingest.AMSSource.UpdateNorm":   true,
	"ingest.CMSource.Apply":         true,
	"ingest.CMSource.UpdateNorm":    true,
	"ingest.PairSource.Apply":       true,
	"ingest.PairSource.UpdateNorm":  true,
	"autodiff.Graph.Value":          true,
	"autodiff.Graph.Grad":           true,
	"autodiff.Graph.Hessian":        true,
	"interval.Evaluator.hvpBasis":   true,
	"interval.ivalDualForward":      true,
	"interval.ivalDualPartials":     true,
	"interval.Interval.Add":         true,
	"interval.Interval.Sub":         true,
	"interval.Interval.Neg":         true,
	"interval.Interval.Mul":         true,
	"interval.Interval.Div":         true,
	"interval.Interval.Square":      true,
	"interval.Interval.Powi":        true,
	"interval.Interval.Exp":         true,
	"interval.Interval.Log":         true,
	"interval.Interval.Sqrt":        true,
	"interval.Interval.Tanh":        true,
	"interval.Interval.Sigmoid":     true,
	"interval.Interval.Relu":        true,
	"interval.Interval.Step":        true,
	"interval.Interval.Abs":         true,
	"interval.Interval.Sign":        true,
	"interval.Interval.Sin":         true,
	"interval.Interval.Cos":         true,
}

// annotatedHotpathFuncs parses every non-test file of the module and returns
// the set of //automon:hotpath-marked functions as "pkgname.Type.Method".
func annotatedHotpathFuncs(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	found := make(map[string]bool)
	root := "../.."
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if p != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasMarker(fd) {
				found[f.Name.Name+"."+declName(fd)] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return found
}

// TestHotpathAnnotationsMatchManifest requires the annotations in the source
// tree and the manifest above to be exactly the same set.
func TestHotpathAnnotationsMatchManifest(t *testing.T) {
	found := annotatedHotpathFuncs(t)
	for fn := range hotpathManifest {
		if !found[fn] {
			t.Errorf("%s is in the hotpath manifest but carries no //automon:hotpath annotation", fn)
		}
	}
	for fn := range found {
		if !hotpathManifest[fn] {
			t.Errorf("%s is annotated //automon:hotpath but missing from the manifest in hotpathsync_test.go", fn)
		}
	}
}

// TestAllocsPerRunTargetsAnnotated ties the static annotations to the runtime
// allocation tests: every method a testing.AllocsPerRun closure in
// internal/core/perf_test.go drives that names a manifest method must be an
// annotated hotpath root, so the two layers of the zero-alloc guarantee can
// never drift apart silently.
func TestAllocsPerRunTargetsAnnotated(t *testing.T) {
	manifestMethods := make(map[string]string) // method name → qualified entry
	for entry := range hotpathManifest {
		parts := strings.Split(entry, ".")
		manifestMethods[parts[len(parts)-1]] = entry
	}

	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "../core/perf_test.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var targets []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "AllocsPerRun" || len(call.Args) != 2 {
			return true
		}
		fn, ok := call.Args[1].(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fn, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				if s, ok := c.Fun.(*ast.SelectorExpr); ok {
					targets = append(targets, s.Sel.Name)
				}
			}
			return true
		})
		return true
	})
	if len(targets) == 0 {
		t.Fatal("no testing.AllocsPerRun closures found in internal/core/perf_test.go; the regression link is vacuous")
	}

	annotated := annotatedHotpathFuncs(t)
	driven := 0
	for _, name := range targets {
		entry, inManifest := manifestMethods[name]
		if !inManifest {
			continue // helper calls inside the closure (t.Fatalf etc.)
		}
		driven++
		if !annotated[entry] {
			t.Errorf("AllocsPerRun drives %s but %s carries no //automon:hotpath annotation", name, entry)
		}
	}
	if driven == 0 {
		t.Error("AllocsPerRun closures drive no manifest method; update hotpathManifest or perf_test.go")
	}
}
