package analysis

import (
	"bytes"
	"sort"
	"strings"
)

// fix.go implements automon-lint -fix: the mechanical remediations that need
// no judgement. Two transformations, both idempotent:
//
//  1. For every surviving finding, insert an //automon:allow scaffold above
//     the flagged line, indentation-matched, carrying a TODO reason the
//     author must replace (a TODO is still a reason, so the tree lints clean
//     while the waiver is visibly unreviewed — and obviously greppable).
//  2. Sort every run of consecutive own-line //automon:allow directives by
//     analyzer name, so stacked waivers read in one canonical order and
//     diffs don't churn on insertion order.
//
// Directive-hygiene findings (malformed //automon:allow forms) are not
// scaffoldable — waiving a broken waiver is nonsense — and are skipped.

// fixTODOReason is the placeholder reason -fix writes; it satisfies the
// mandatory-reason rule while flagging the waiver as unreviewed.
const fixTODOReason = "TODO(automon-lint): justify this waiver"

// FixSource applies the mechanical remediations to one file's contents.
// diags are the surviving (unsuppressed) findings whose positions lie in
// this file; line numbers refer to src as given. The result is the fixed
// file; applying FixSource to its own output with the (now suppressed)
// findings removed is the identity.
func FixSource(src []byte, diags []Diagnostic) []byte {
	lines := splitLines(src)

	// Collect the analyzers to scaffold per flagged line, deduplicated.
	perLine := make(map[int]map[string]bool)
	for _, d := range diags {
		if d.Analyzer == directiveRuleID {
			continue
		}
		if d.Pos.Line < 1 || d.Pos.Line > len(lines) {
			continue
		}
		set := perLine[d.Pos.Line]
		if set == nil {
			set = make(map[string]bool)
			perLine[d.Pos.Line] = set
		}
		set[d.Analyzer] = true
	}

	// Insert scaffolds bottom-up so earlier line numbers stay valid.
	var flagged []int
	for line := range perLine {
		flagged = append(flagged, line)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(flagged)))
	for _, line := range flagged {
		var names []string
		for name := range perLine[line] {
			names = append(names, name)
		}
		sort.Strings(names)
		indent := leadingWhitespace(lines[line-1])
		scaffolds := make([]string, 0, len(names))
		for _, name := range names {
			scaffolds = append(scaffolds, indent+allowPrefix+name+" "+fixTODOReason)
		}
		lines = append(lines[:line-1:line-1], append(scaffolds, lines[line-1:]...)...)
	}

	sortDirectiveRuns(lines)
	return joinLines(lines)
}

// sortDirectiveRuns orders each run of consecutive directive-only lines by
// analyzer name (then full text, for stable ties), in place.
func sortDirectiveRuns(lines []string) {
	isDirectiveLine := func(s string) bool {
		return strings.HasPrefix(strings.TrimSpace(s), strings.TrimSpace(allowPrefix))
	}
	for i := 0; i < len(lines); {
		if !isDirectiveLine(lines[i]) {
			i++
			continue
		}
		j := i
		for j < len(lines) && isDirectiveLine(lines[j]) {
			j++
		}
		run := lines[i:j]
		sort.SliceStable(run, func(a, b int) bool {
			na := directiveAnalyzer(run[a])
			nb := directiveAnalyzer(run[b])
			if na != nb {
				return na < nb
			}
			return run[a] < run[b]
		})
		i = j
	}
}

// directiveAnalyzer extracts the analyzer name from a directive line.
func directiveAnalyzer(line string) string {
	rest := strings.TrimPrefix(strings.TrimSpace(line), strings.TrimSpace(allowPrefix))
	rest = strings.TrimSpace(rest)
	name, _, _ := strings.Cut(rest, " ")
	return name
}

func leadingWhitespace(s string) string {
	for i, r := range s {
		if r != ' ' && r != '\t' {
			return s[:i]
		}
	}
	return s
}

// splitLines splits keeping no terminators; joinLines restores them with a
// trailing newline, the gofmt canonical form.
func splitLines(src []byte) []string {
	s := strings.TrimSuffix(string(src), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func joinLines(lines []string) []byte {
	var buf bytes.Buffer
	for _, l := range lines {
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
