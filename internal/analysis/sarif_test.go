package analysis

import (
	"encoding/json"
	"go/token"
	"testing"
)

// TestSARIFStructure validates the emitted log against the SARIF 2.1.0
// schema's requirements for the subset automon-lint produces, offline: the
// required top-level properties ($schema, version, runs), the tool driver
// with its rule table, and per-result ruleId/ruleIndex consistency with
// physical locations. The generic re-decode (not the emitter's own structs)
// is what makes this a schema check rather than a round-trip.
func TestSARIFStructure(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/core/coordinator.go", Line: 10, Column: 3},
			Analyzer: "floatflow",
			Message:  "taint finding",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 2, Column: 1},
			Analyzer: "automon-lint",
			Message:  "malformed directive",
		},
	}
	out, err := SARIF(diags, All(), "/mod")
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}

	if log.Schema != "https://json.schemastore.org/sarif-2.1.0.json" {
		t.Errorf("$schema = %q", log.Schema)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "automon-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Rule table: the directive pseudo-rule first, then every registered
	// analyzer — findings or not — each with a non-empty description.
	if want := 1 + len(All()); len(run.Tool.Driver.Rules) != want {
		t.Fatalf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	if run.Tool.Driver.Rules[0].ID != "automon-lint" {
		t.Errorf("rules[0].id = %q, want the directive pseudo-rule", run.Tool.Driver.Rules[0].ID)
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription", r)
		}
	}

	if len(run.Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(diags))
	}
	for i, res := range run.Results {
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("results[%d].ruleIndex = %d out of range", i, res.RuleIndex)
		}
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("results[%d]: ruleIndex %d resolves to %q, ruleId says %q",
				i, res.RuleIndex, run.Tool.Driver.Rules[res.RuleIndex].ID, res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("results[%d].level = %q", i, res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("results[%d] has no message text", i)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("results[%d] has %d locations, want 1", i, len(res.Locations))
		}
	}

	// In-root paths relativize under SRCROOT with forward slashes; paths
	// outside the root stay absolute with no uriBase.
	loc0 := run.Results[0].Locations[0].PhysicalLocation
	if loc0.ArtifactLocation.URI != "internal/core/coordinator.go" || loc0.ArtifactLocation.URIBaseID != "SRCROOT" {
		t.Errorf("in-root location = %+v, want relative URI under SRCROOT", loc0.ArtifactLocation)
	}
	if loc0.Region.StartLine != 10 || loc0.Region.StartColumn != 3 {
		t.Errorf("region = %+v, want 10:3", loc0.Region)
	}
	loc1 := run.Results[1].Locations[0].PhysicalLocation
	if loc1.ArtifactLocation.URIBaseID != "" {
		t.Errorf("out-of-root location carries uriBaseId %q", loc1.ArtifactLocation.URIBaseID)
	}
}

// TestSARIFEmptyRun keeps a clean run schema-valid: results must be an
// empty array, not null, and the rule table still documents the suite.
func TestSARIFEmptyRun(t *testing.T) {
	out, err := SARIF(nil, All(), "")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []json.RawMessage `json:"results"`
			Tool    struct {
				Driver struct {
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(out, &generic); err != nil {
		t.Fatal(err)
	}
	runs := generic["runs"].([]any)
	if results, ok := runs[0].(map[string]any)["results"]; !ok || results == nil {
		t.Error("clean run emits null results; the schema requires an array")
	}
	if len(log.Runs[0].Tool.Driver.Rules) != 1+len(All()) {
		t.Errorf("clean run documents %d rules, want %d", len(log.Runs[0].Tool.Driver.Rules), 1+len(All()))
	}
}
