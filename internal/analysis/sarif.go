package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// sarif.go renders diagnostics as a SARIF 2.1.0 log so CI systems (GitHub
// code scanning, IDE SARIF viewers) can annotate findings in place. The
// structs mirror the subset of the schema one static-analysis run needs:
// one run, one tool driver with a rule per analyzer, one result per
// diagnostic with a physical location. File URIs are emitted relative to
// the module root under the SRCROOT uriBase, the schema's portable way to
// keep logs machine-independent.

const (
	sarifVersion   = "2.1.0"
	sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// directiveRuleID is the pseudo-rule for the harness's own directive-hygiene
// diagnostics (malformed //automon:allow forms), which carry no analyzer.
const directiveRuleID = "automon-lint"

// SARIF renders diagnostics as a SARIF 2.1.0 log. analyzers populates the
// rule table (every analyzer appears, findings or not, so a clean run still
// documents what was checked); root, when non-empty, relativizes file paths
// against the module root.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := []sarifRule{{
		ID:               directiveRuleID,
		ShortDescription: sarifText{Text: "suppression directives must be well-formed and carry a reason"},
	}}
	index := map[string]int{directiveRuleID: 0}
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		ruleIndex, ok := index[d.Analyzer]
		if !ok {
			ruleIndex = 0
		}
		uri := d.Pos.Filename
		baseID := ""
		if root != "" {
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				uri = filepath.ToSlash(rel)
				baseID = "SRCROOT"
			}
		}
		results = append(results, sarifResult{
			RuleID:    rules[ruleIndex].ID,
			RuleIndex: ruleIndex,
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: baseID},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "automon-lint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
