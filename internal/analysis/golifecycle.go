package analysis

import (
	"go/ast"
	"go/types"
)

// Golifecycle requires every spawned goroutine to have a reachable
// termination path: a return reached through a conditional, a quit/context
// channel case, a range over a closable channel, or a bounded loop. A `go`
// statement whose body can never reach its exit — the bare `for { work() }`
// shape — leaks one goroutine per spawn, which under MultiCoordinator group
// churn (register, depart, re-register) accumulates until the process dies.
//
// The check is per-function over the explicit CFG (cfg.go): ranging over a
// channel and select cases count as exits the way the quit-channel idiom
// intends, and panic/os.Exit count as (ungraceful) termination. Bodies
// behind function values or interface calls are not resolvable and are
// skipped; the analyzer checks function literals and statically named
// module functions, which covers every spawn shape the module uses.
var Golifecycle = &Analyzer{
	Name: "golifecycle",
	Doc:  "every go statement (and time.AfterFunc callback) must have a reachable termination path tied to a quit signal or bounded loop",
	Run:  runGolifecycle,
}

func runGolifecycle(p *Pass) error {
	funcs := indexFuncs(p)
	for _, pkg := range p.Pkgs {
		info := pkg.Info
		terminal := terminalCall(info)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					body, where := spawnedBody(info, funcs, n.Call)
					if body == nil {
						return true
					}
					if !buildCFG(body, terminal).terminates() {
						p.Reportf(n.Pos(), "goroutine %s has no reachable termination path; tie its loop to a context/quit channel or bound it", where)
					}
				case *ast.CallExpr:
					fn := callee(info, n)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "AfterFunc" {
						return true
					}
					if len(n.Args) != 2 {
						return true
					}
					body, where := callbackBody(info, funcs, n.Args[1])
					if body == nil {
						return true
					}
					if !buildCFG(body, terminal).terminates() {
						p.Reportf(n.Pos(), "time.AfterFunc callback %s has no reachable termination path", where)
					}
				}
				return true
			})
		}
	}
	return nil
}

// spawnedBody resolves the body a go statement runs: a function literal or
// a statically named module function. Function values and interface methods
// return nil.
func spawnedBody(info *types.Info, funcs map[*types.Func]funcBody, call *ast.CallExpr) (*ast.BlockStmt, string) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, "(func literal)"
	}
	if fn := callee(info, call); fn != nil {
		if body, ok := funcs[fn]; ok {
			return body.decl.Body, declName(body.decl)
		}
	}
	return nil, ""
}

// callbackBody resolves a function-typed argument (time.AfterFunc's second
// parameter) the same way.
func callbackBody(info *types.Info, funcs map[*types.Func]funcBody, arg ast.Expr) (*ast.BlockStmt, string) {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return a.Body, "(func literal)"
	case *ast.Ident:
		if fn, ok := info.Uses[a].(*types.Func); ok {
			if body, ok := funcs[fn]; ok {
				return body.decl.Body, declName(body.decl)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
			if body, ok := funcs[fn]; ok {
				return body.decl.Body, declName(body.decl)
			}
		}
	}
	return nil, ""
}
