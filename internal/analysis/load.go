package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// stdlibImporter resolves non-module imports. It tries the gc (export-data)
// importer first and falls back to type-checking the standard library from
// source, so the suite works both on developer machines and in minimal CI
// images.
type stdlibImporter struct {
	fset  *token.FileSet
	gc    types.Importer
	src   types.Importer
	cache map[string]*types.Package
}

func newStdlibImporter(fset *token.FileSet) *stdlibImporter {
	return &stdlibImporter{fset: fset, cache: make(map[string]*types.Package)}
}

func (s *stdlibImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.cache[path]; ok {
		return pkg, nil
	}
	if s.gc == nil {
		s.gc = importer.ForCompiler(s.fset, "gc", nil)
	}
	pkg, err := s.gc.Import(path)
	if err != nil {
		if s.src == nil {
			s.src = importer.ForCompiler(s.fset, "source", nil)
		}
		pkg, err = s.src.Import(path)
	}
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	s.cache[path] = pkg
	return pkg, nil
}

// loader type-checks the module's packages in dependency order, sharing one
// FileSet and one stdlib importer so *types.Func identities line up across
// packages (the hotpath call graph depends on that).
type loader struct {
	fset    *token.FileSet
	root    string // absolute module root
	modPath string // module path from go.mod
	std     *stdlibImporter
	pkgs    map[string]*Package // import path → loaded package
	loading map[string]bool
	order   []*Package
}

// Import implements types.Importer over the chained local/stdlib resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps an import path to its directory under the module root.
func (l *loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// load parses and type-checks one module package (and, recursively, its
// module dependencies).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := typeCheck(l.fset, path, files, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// typeCheck runs go/types over one package's files with full Info.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	return &Package{Path: path, Pkg: tpkg, Info: info, Files: files}, nil
}

// modulePath extracts the module path from go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// skipDir reports whether a directory is outside the lintable module source:
// VCS metadata, testdata fixtures (including this package's analyzer
// fixtures, which intentionally violate the invariants), and result output.
func skipDir(name string) bool {
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
		name == "testdata" || name == "results"
}

// LoadModule parses and type-checks every non-test package under root.
// Packages are returned in dependency order.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		root:    abs,
		modPath: modPath,
		std:     newStdlibImporter(fset),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}

	var paths []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if p != abs && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		if _, err := build.ImportDir(p, 0); err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				return nil
			}
			return err
		}
		rel, err := filepath.Rel(abs, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, modPath)
		} else {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
	}
	return &Module{Fset: fset, Pkgs: l.order}, nil
}

// LoadFixtureTree parses and type-checks a directory tree of fixture
// packages rooted at dir: the root directory (if it has Go files) becomes
// the package pkgBase, each subdirectory becomes pkgBase+"/"+<relative
// path>. Imports resolve within the tree first (so fixtures can exercise
// cross-package dataflow, e.g. a fake internal/core calling a helper
// package), then fall back to the standard library. Package-scoped rules
// key off the synthesized paths exactly as they do for the real module.
func LoadFixtureTree(dir, pkgBase string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		root:    abs,
		modPath: pkgBase,
		std:     newStdlibImporter(fset),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	var paths []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if p != abs && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		if _, err := build.ImportDir(p, 0); err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				return nil
			}
			return err
		}
		rel, err := filepath.Rel(abs, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, pkgBase)
		} else {
			paths = append(paths, pkgBase+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
	}
	if len(l.order) == 0 {
		return nil, fmt.Errorf("no Go packages under %s", dir)
	}
	return &Module{Fset: fset, Pkgs: l.order}, nil
}

// LoadFixture parses and type-checks a single directory of Go files as the
// package pkgPath, resolving imports from the standard library only. It is
// the analysistest-style entry used by the fixture tests: pkgPath controls
// which package-scoped rules (e.g. the determinism package list) apply.
func LoadFixture(dir, pkgPath string) (*Module, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, err := typeCheck(fset, pkgPath, files, newStdlibImporter(fset))
	if err != nil {
		return nil, err
	}
	return &Module{Fset: fset, Pkgs: []*Package{pkg}}, nil
}
