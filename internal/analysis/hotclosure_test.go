package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// hotClosure walks the static call graph from every //automon:hotpath root —
// the same traversal runHotpath performs, including suppression pruning at
// waived call sites — and returns the set of module functions it reaches.
func hotClosure(mod *Module) map[*types.Func]bool {
	pass := &Pass{Fset: mod.Fset, Pkgs: mod.Pkgs, analyzer: Hotpath}
	pass.allows, _ = collectAllows(mod, map[string]bool{Hotpath.Name: true})
	funcs := indexFuncs(pass)

	var work []*types.Func
	for fn, body := range funcs {
		if hasMarker(body.decl) {
			work = append(work, fn)
		}
	}
	visited := make(map[*types.Func]bool)
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		body, ok := funcs[fn]
		if !ok {
			continue
		}
		ast.Inspect(body.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.Suppressed(call.Pos()) {
				return false
			}
			if target := callee(body.pkg.Info, call); target != nil {
				if _, inModule := funcs[target]; inModule && !visited[target] {
					work = append(work, target)
				}
			}
			return true
		})
	}
	return visited
}

// TestRadiusControllerOutsideHotClosure proves the adaptive radius controller
// never rides the zero-allocation monitoring loop: no function declared in
// internal/core/radius.go — and none of the Algorithm-2 tuning machinery the
// controller's re-tunes invoke — is statically reachable from any
// //automon:hotpath root. The controller runs only on the coordinator's
// violation path (which already allocates by design), so its EWMAs, window
// snapshots, and Tune replays cannot tax the per-sample node loop.
func TestRadiusControllerOutsideHotClosure(t *testing.T) {
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	closure := hotClosure(mod)
	if len(closure) == 0 {
		t.Fatal("hot closure is empty; the traversal is vacuous")
	}

	sawRoot := false
	for fn := range closure {
		pos := mod.Fset.Position(fn.Pos())
		if filepath.Base(pos.Filename) == "radius.go" &&
			strings.Contains(pos.Filename, filepath.Join("internal", "core")) {
			t.Errorf("hot closure reaches %s (declared in %s): the adaptive controller must stay off the hot path",
				fn.FullName(), pos.Filename)
		}
		switch fn.Name() {
		case "Tune", "Replay", "tuneWith", "tuneWithWorkers", "retune", "maybeRetune", "applyPending":
			if strings.HasPrefix(fn.FullName(), "automon/internal/core.") {
				t.Errorf("hot closure reaches the tuning machinery via %s", fn.FullName())
			}
		case "UpdateData":
			sawRoot = true
		}
	}
	if !sawRoot {
		t.Error("hot closure misses core.Node.UpdateData; the root set is wrong")
	}
}
