package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// summary.go is the interprocedural layer under statepure, lockorder,
// golifecycle and floatflow: a module-wide call graph keyed by the shared
// *types.Func identities the loader guarantees, with a per-function effect
// summary computed from one AST walk. Analyzers combine the summaries
// bottom-up (totalEffects fixpoint) or top-down (reachableFrom BFS, which
// prunes at //automon:allow-waived call sites exactly like hotpath does).
//
// Calls through function values and interface methods are opaque: no effect
// propagates across them. That is a deliberate contract, not a soundness
// hole — NodeComm is exactly the dependency-injection seam the statepure
// boundary must not see through, and the routing layer behind it is where
// the effects are supposed to live.

// effect is the effect lattice: a bitmask ordered by set inclusion, joined
// with |. Each bit is one observable behavior the analyzers care about.
type effect uint8

const (
	// effIO: file, network or terminal I/O (os, net, io writers, fmt prints).
	effIO effect = 1 << iota
	// effClock: reads or schedules against the wall clock (time package).
	effClock
	// effRand: draws from a global or OS entropy source (unseeded math/rand,
	// crypto/rand).
	effRand
	// effSpawn: starts a goroutine (go statement, time.AfterFunc).
	effSpawn
	// effGlobalWrite: assigns through a package-level variable.
	effGlobalWrite
	// effNondetOrder: result depends on scheduler or map-iteration order
	// (order-sensitive map range, select racing ≥2 non-timeout channels).
	effNondetOrder
)

// effectSite is one local occurrence of an effect inside a function body.
type effectSite struct {
	pos  token.Pos
	eff  effect
	what string // human-readable cause, e.g. "time.Now" or "go statement"
}

// callSite is one statically resolved module-internal call.
type callSite struct {
	pos token.Pos
	fn  *types.Func
}

// funcSummary is the per-function result of the effect scan.
type funcSummary struct {
	sites []effectSite
	calls []callSite
}

// callGraph ties every module function to its body and summary. order is
// position-sorted so every fixpoint and BFS below is deterministic
// regardless of map iteration or package load order.
type callGraph struct {
	funcs     map[*types.Func]funcBody
	summaries map[*types.Func]*funcSummary
	order     []*types.Func
}

// buildCallGraph scans every module function once and assembles the graph.
func buildCallGraph(p *Pass) *callGraph {
	cg := &callGraph{
		funcs:     indexFuncs(p),
		summaries: make(map[*types.Func]*funcSummary),
	}
	for fn := range cg.funcs {
		cg.order = append(cg.order, fn)
	}
	sort.Slice(cg.order, func(i, j int) bool {
		a := p.Fset.Position(cg.order[i].Pos())
		b := p.Fset.Position(cg.order[j].Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, fn := range cg.order {
		body := cg.funcs[fn]
		cg.summaries[fn] = scanFunc(body, cg.funcs)
	}
	return cg
}

// label renders a function as pkgname.Type.Method for diagnostics.
func (cg *callGraph) label(fn *types.Func) string {
	if body, ok := cg.funcs[fn]; ok {
		return body.pkg.Pkg.Name() + "." + declName(body.decl)
	}
	return fn.FullName()
}

// scanFunc computes the local effect summary of one function body. Nested
// function literals are attributed to the enclosing function: a closure's
// effects happen on behalf of whoever defined it.
func scanFunc(body funcBody, funcs map[*types.Func]funcBody) *funcSummary {
	info := body.pkg.Info
	s := &funcSummary{}
	ast.Inspect(body.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := callee(info, n)
			if fn == nil {
				return true // builtin, conversion, func value or interface: opaque
			}
			if _, inModule := funcs[fn]; inModule {
				s.calls = append(s.calls, callSite{pos: n.Pos(), fn: fn})
				return true
			}
			if eff, what := classifyExternal(fn); eff != 0 {
				s.sites = append(s.sites, effectSite{pos: n.Pos(), eff: eff, what: what})
			}
		case *ast.GoStmt:
			s.sites = append(s.sites, effectSite{pos: n.Pos(), eff: effSpawn, what: "go statement"})
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := packageLevelTarget(info, lhs); v != nil {
					s.sites = append(s.sites, effectSite{pos: lhs.Pos(), eff: effGlobalWrite,
						what: fmt.Sprintf("write to package-level %s.%s", v.Pkg().Name(), v.Name())})
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(info, n.X); v != nil {
				s.sites = append(s.sites, effectSite{pos: n.Pos(), eff: effGlobalWrite,
					what: fmt.Sprintf("write to package-level %s.%s", v.Pkg().Name(), v.Name())})
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !orderInsensitiveBody(n) {
					s.sites = append(s.sites, effectSite{pos: n.Pos(), eff: effNondetOrder,
						what: "order-sensitive map iteration"})
				}
			}
		case *ast.SelectStmt:
			real := 0
			for _, c := range n.Body.List {
				clause := c.(*ast.CommClause)
				if clause.Comm == nil {
					continue
				}
				if ch := commChannel(clause); ch != nil && isTimeChan(info, ch) {
					continue
				}
				real++
			}
			if real >= 2 {
				s.sites = append(s.sites, effectSite{pos: n.Pos(), eff: effNondetOrder,
					what: fmt.Sprintf("select racing %d channels", real)})
			}
		}
		return true
	})
	return s
}

// ioPkgs are the external packages whose calls count as I/O wholesale.
var ioPkgs = map[string]bool{
	"os": true, "os/exec": true, "os/signal": true,
	"net": true, "net/http": true, "syscall": true,
	"io": true, "io/fs": true, "io/ioutil": true, "bufio": true,
	"encoding/csv": true, "database/sql": true, "log": true,
}

// clockFuncs are the time-package entry points that read or schedule
// against the wall clock. Pure arithmetic (time.Duration math, Parse,
// Unix construction) stays effect-free.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// classifyExternal assigns effects to a call outside the module. Unlisted
// packages (strings, sort, math, strconv, errors, …) are effect-free.
func classifyExternal(fn *types.Func) (effect, string) {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0, ""
	}
	qual := pkg.Name() + "." + fn.Name()
	switch path := pkg.Path(); path {
	case "time":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && clockFuncs[fn.Name()] {
			if fn.Name() == "AfterFunc" {
				return effClock | effSpawn, qual
			}
			return effClock, qual
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
			!seededRandConstructors[fn.Name()] {
			return effRand | effNondetOrder, qual + " (global source)"
		}
	case "crypto/rand":
		return effRand | effNondetOrder, qual + " (OS entropy)"
	case "fmt":
		switch {
		case strings.HasPrefix(fn.Name(), "Print"),
			strings.HasPrefix(fn.Name(), "Fprint"),
			strings.HasPrefix(fn.Name(), "Scan"),
			strings.HasPrefix(fn.Name(), "Fscan"):
			return effIO, qual
		}
	default:
		if ioPkgs[path] {
			return effIO, qual
		}
	}
	return 0, ""
}

// packageLevelTarget resolves an assignment target to the package-level
// variable it writes through, or nil for locals, fields of locals and
// blank assignments. Writes through a dereferenced local pointer are not
// tracked — passing a pointer to global state across a function boundary
// is already a module-internal call the summaries follow.
func packageLevelTarget(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := info.Uses[e.Sel].(*types.Var); ok {
						return v
					}
					return nil
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			return nil // deref of a pointer value: target identity unknown
		default:
			return nil
		}
	}
}

// totalEffects folds every function's local effects with its callees' via a
// fixpoint over the call graph, giving the full transitive effect mask.
// Recursive cycles converge because the lattice is finite and join-monotone.
func (cg *callGraph) totalEffects() map[*types.Func]effect {
	total := make(map[*types.Func]effect, len(cg.order))
	for _, fn := range cg.order {
		var e effect
		for _, site := range cg.summaries[fn].sites {
			e |= site.eff
		}
		total[fn] = e
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.order {
			e := total[fn]
			for _, c := range cg.summaries[fn].calls {
				e |= total[c.fn]
			}
			if e != total[fn] {
				total[fn] = e
				changed = true
			}
		}
	}
	return total
}

// reachResult is the output of a top-down reachability BFS: the functions
// reachable from a root set, each with the call-site parent that first
// reached it, for rendering "via" chains in diagnostics.
type reachResult struct {
	order  []*types.Func // visit order, deterministic
	parent map[*types.Func]*types.Func
	root   map[*types.Func]*types.Func
}

// reachableFrom walks the call graph from roots. A call site waived for the
// running analyzer prunes the edge, mirroring hotpath's rule: a deliberate
// waiver covers the subtree behind it, not just the line.
func reachableFrom(p *Pass, cg *callGraph, roots []*types.Func) *reachResult {
	r := &reachResult{
		parent: make(map[*types.Func]*types.Func),
		root:   make(map[*types.Func]*types.Func),
	}
	type item struct{ fn, parent, root *types.Func }
	var queue []item
	for _, fn := range roots {
		queue = append(queue, item{fn: fn, root: fn})
	}
	visited := make(map[*types.Func]bool)
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if visited[it.fn] {
			continue
		}
		visited[it.fn] = true
		r.order = append(r.order, it.fn)
		r.parent[it.fn] = it.parent
		r.root[it.fn] = it.root
		sum, ok := cg.summaries[it.fn]
		if !ok {
			continue
		}
		for _, c := range sum.calls {
			if visited[c.fn] || p.Suppressed(c.pos) {
				continue
			}
			queue = append(queue, item{fn: c.fn, parent: it.fn, root: it.root})
		}
	}
	return r
}

// chain renders the call path from a function back to its root, capped so
// diagnostics stay one line.
func (r *reachResult) chain(cg *callGraph, fn *types.Func) string {
	var hops []string
	for cur := fn; cur != nil; cur = r.parent[cur] {
		hops = append(hops, cg.label(cur))
		if len(hops) >= 5 && r.parent[cur] != nil {
			hops = append(hops, "…", cg.label(r.root[fn]))
			break
		}
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return strings.Join(hops, " → ")
}

// terminalCall classifies calls that never return (panic, os.Exit,
// log.Fatal*, runtime.Goexit) for CFG construction.
func terminalCall(info *types.Info) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "panic" {
				return true
			}
		case *ast.SelectorExpr:
			fn, _ := info.Uses[fun.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil {
				return false
			}
			switch fn.Pkg().Path() {
			case "os":
				return fn.Name() == "Exit"
			case "runtime":
				return fn.Name() == "Goexit"
			case "log":
				return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
			}
		}
		return false
	}
}
