package analysis

import (
	"go/ast"
	"go/types"
)

// Erreig bans discarding errors with the blank identifier. The eigensolver
// and optimizer surface convergence failures exclusively through their error
// results (EigenSym, ExtremeEigenvalues, Minimize, Tune's bracket errors); a
// dropped error there silently converts "the decomposition is wrong" into
// "the safe zone looks fine", which is precisely the failure mode the §3.7
// sanity check exists to catch. The rule is module-wide: any `_`-assignment
// of an error value is a finding, and deliberate fire-and-forget sites (e.g.
// best-effort sends on a faulty transport) must say so via //automon:allow.
var Erreig = &Analyzer{
	Name: "erreig",
	Doc:  "error results must not be discarded with _; handle them or suppress with a reason",
	Run:  runErreig,
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

func runErreig(p *Pass) error {
	for _, pkg := range p.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				assign, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				// a, _ := f()  — one call, multiple results.
				if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
					tv, ok := info.Types[assign.Rhs[0]]
					if !ok {
						return true
					}
					tuple, ok := tv.Type.(*types.Tuple)
					if !ok {
						return true
					}
					for i, lhs := range assign.Lhs {
						if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
							p.Reportf(lhs.Pos(), "error result of %s discarded with _", types.ExprString(assign.Rhs[0]))
						}
					}
					return true
				}
				// _ = expr — element-wise assignment.
				for i, lhs := range assign.Lhs {
					if !isBlank(lhs) || i >= len(assign.Rhs) {
						continue
					}
					if tv, ok := info.Types[assign.Rhs[i]]; ok && isErrorType(tv.Type) {
						p.Reportf(lhs.Pos(), "error value of %s discarded with _", types.ExprString(assign.Rhs[i]))
					}
				}
				return true
			})
		}
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
