package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture tests are analysistest-style: each analyzer has a package under
// testdata/src/<name> whose comments carry `// want "regex"` expectations.
// Every diagnostic must match a want on its line, and every want must be hit
// by a diagnostic — so the fixtures pin both the positive cases (the analyzer
// fires) and the negative ones (clean idioms stay clean).

var wantRe = regexp.MustCompile(`// want (.*)$`)
var wantQuoted = regexp.MustCompile(`"((?:\\.|[^"\\])*)"`)

type expectation struct {
	re  *regexp.Regexp
	hit bool
}

// collectWants parses the want expectations out of a fixture module's
// comments, keyed by file and line.
func collectWants(t *testing.T, mod *Module) map[string]map[int][]*expectation {
	t.Helper()
	wants := make(map[string]map[int][]*expectation)
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					qs := wantQuoted.FindAllStringSubmatch(m[1], -1)
					if len(qs) == 0 {
						t.Fatalf("%s: want comment carries no quoted pattern", pos)
					}
					for _, q := range qs {
						re, err := regexp.Compile(q[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, q[1], err)
						}
						file := wants[pos.Filename]
						if file == nil {
							file = make(map[int][]*expectation)
							wants[pos.Filename] = file
						}
						file[pos.Line] = append(file[pos.Line], &expectation{re: re})
					}
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<fixture> as pkgPath, runs the single
// analyzer, and checks diagnostics against the want expectations.
func runFixture(t *testing.T, a *Analyzer, fixture, pkgPath string) {
	t.Helper()
	mod, err := LoadFixture(filepath.Join("testdata", "src", fixture), pkgPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	checkFixture(t, mod, a)
}

// checkFixture runs one analyzer over an already-loaded fixture module
// (single-package or tree) and checks diagnostics against the wants.
func checkFixture(t *testing.T, mod *Module, a *Analyzer) {
	t.Helper()
	diags, err := Lint(mod, []*Analyzer{a})
	if err != nil {
		t.Fatalf("lint fixture: %v", err)
	}
	wants := collectWants(t, mod)
	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matched %q", file, line, w.re)
				}
			}
		}
	}
}

func TestHotpathFixture(t *testing.T) {
	runFixture(t, Hotpath, "hotpath", "fixture/hotpath")
}

func TestPoolpairFixture(t *testing.T) {
	runFixture(t, Poolpair, "poolpair", "fixture/poolpair")
}

// The determinism fixture is loaded under fixture/internal/core so the
// package-scoped contract applies to it.
func TestDeterminismFixture(t *testing.T) {
	runFixture(t, Determinism, "determinism", "fixture/internal/core")
}

// TestDeterminismScopedToContractPackages reloads the same fixture under a
// path outside the deterministic-package list and requires zero findings:
// the contract must not leak into unrelated packages.
func TestDeterminismScopedToContractPackages(t *testing.T) {
	mod, err := LoadFixture(filepath.Join("testdata", "src", "determinism"), "fixture/free")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(mod, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("determinism fired outside its package list: %s", d)
	}
}

func TestErreigFixture(t *testing.T) {
	runFixture(t, Erreig, "erreig", "fixture/erreig")
}

func TestObsnamesFixture(t *testing.T) {
	runFixture(t, Obsnames, "obsnames", "fixture/obsnames")
}

func TestNofloateqFixture(t *testing.T) {
	runFixture(t, Nofloateq, "nofloateq", "fixture/nofloateq")
}

// TestSuppressionDirectives pins the directive hygiene rules on the allowform
// fixture: malformed directives are diagnostics and do not waive findings;
// well-formed ones do.
func TestSuppressionDirectives(t *testing.T) {
	mod, err := LoadFixture(filepath.Join("testdata", "src", "allowform"), "fixture/allowform")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(mod, []*Analyzer{Erreig})
	if err != nil {
		t.Fatal(err)
	}
	count := func(pattern string) int {
		re := regexp.MustCompile(pattern)
		n := 0
		for _, d := range diags {
			if re.MatchString(d.Message) {
				n++
			}
		}
		return n
	}
	if got := count("needs a reason"); got != 1 {
		t.Errorf("reasonless directive diagnostics = %d, want 1", got)
	}
	if got := count("unknown analyzer"); got != 1 {
		t.Errorf("unknown-analyzer directive diagnostics = %d, want 1", got)
	}
	if got := count("missing analyzer name"); got != 1 {
		t.Errorf("nameless directive diagnostics = %d, want 1", got)
	}
	// The three malformed directives must not suppress their findings; the
	// one well-formed directive must.
	if got := count("discarded with _"); got != 3 {
		t.Errorf("surviving erreig findings = %d, want 3 (malformed directives must not suppress)", got)
	}
	if len(diags) != 6 {
		for _, d := range diags {
			t.Logf("  %s", d)
		}
		t.Errorf("total diagnostics = %d, want 6", len(diags))
	}
}
