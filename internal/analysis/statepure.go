package analysis

import (
	"go/ast"
	"go/types"
)

// Statepure is the machine-checked purity contract for ROADMAP item 1's
// state-machine/routing split: every function annotated //automon:statepure
// — the coordinator's protocol transition set — and every module function in
// its static call closure may not perform I/O, read the wall clock, spawn
// goroutines, draw from global rand, or write package-level state. A
// transition that holds this contract runs identically at root, mid-tier or
// leaf of a sharded coordinator tree, which is what makes the split safe.
//
// What the contract deliberately permits:
//
//   - Mutex use. Transitions serialize access to coordinator-owned state
//     (zone cache, tracer buffers); locking is how the boundary is kept, not
//     a violation of it.
//   - Reads of package-level state (sentinel errors, method tables).
//     Only writes are effects.
//   - Calls through interfaces and function values. NodeComm is exactly the
//     routing seam the pure side must not see through; its implementations
//     live outside the contract and are checked by the other analyzers.
//
// A waived call site prunes the traversal, like hotpath: the waiver's reason
// covers the subtree behind it.
var Statepure = &Analyzer{
	Name: "statepure",
	Doc:  "functions marked //automon:statepure and their static callees must not reach I/O, the clock, goroutine spawns, global rand, or package-level writes",
	Run:  runStatepure,
}

const statepureMarker = "//automon:statepure"

// statepureBanned is the effect mask the transition closure must avoid.
const statepureBanned = effIO | effClock | effRand | effSpawn | effGlobalWrite

// statepureRoots returns the annotated root set in deterministic order.
func statepureRoots(p *Pass, cg *callGraph) []*types.Func {
	var roots []*types.Func
	for _, fn := range cg.order {
		if hasDirective(cg.funcs[fn].decl, statepureMarker) {
			roots = append(roots, fn)
		}
	}
	return roots
}

// hasDirective reports whether the declaration's doc comment carries the
// given marker line.
func hasDirective(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == marker {
			return true
		}
	}
	return false
}

func runStatepure(p *Pass) error {
	cg := buildCallGraph(p)
	roots := statepureRoots(p, cg)
	reach := reachableFrom(p, cg, roots)
	for _, fn := range reach.order {
		sum := cg.summaries[fn]
		for _, site := range sum.sites {
			if site.eff&statepureBanned == 0 {
				continue
			}
			p.Reportf(site.pos, "%s is impure for the protocol transition set (statepure closure: %s)",
				site.what, reach.chain(cg, fn))
		}
	}
	return nil
}
