package analysis

import (
	"go/ast"
	"go/token"
)

// cfg.go builds an explicit per-function control-flow graph over the AST.
// The graph is deliberately coarse — basic blocks carry statements, edges
// carry no conditions — because the analyzers built on it (golifecycle) only
// ask reachability questions: "does this function body have a path from
// entry to a normal exit?". A goroutine whose body cannot reach Exit is a
// fire-and-forget loop that leaks under MultiCoordinator group churn.
//
// Modeling choices, chosen to be sound for the termination question:
//
//   - `for { ... }` with no condition and no break has no edge out of the
//     loop; code after it is unreachable.
//   - `for range ch` has an exit edge: ranging over a channel terminates
//     when the channel is closed, which is exactly the quit-channel idiom.
//   - select with at least one case is assumed to eventually take a case;
//     `select {}` (block forever) has no successor.
//   - panic, runtime.Goexit and os.Exit/log.Fatal* edges go to Exit: the
//     goroutine terminates, even if not gracefully.
//   - goto is treated optimistically as an exit edge (the module does not
//     use goto; the conservative direction here would flag nothing new).

// cfgBlock is one basic block: a run of statements with successor edges.
type cfgBlock struct {
	stmts []ast.Stmt
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// terminates reports whether the function has at least one path from entry
// to a normal (or panicking) exit.
func (g *funcCFG) terminates() bool {
	seen := make(map[*cfgBlock]bool)
	stack := []*cfgBlock{g.entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if b == g.exit {
			return true
		}
		stack = append(stack, b.succs...)
	}
	return false
}

// cfgBuilder holds the construction state. cur is the block under
// construction; nil means the current position is unreachable (after a
// return or break), in which case a fresh detached block is opened so
// syntactically-following statements still build without edges into them.
type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock
	// breakables is the stack of enclosing break targets (loops, switches,
	// selects); loops additionally carry a continue target.
	breakables []breakTarget
	// pendingLabel is the label of an immediately enclosing LabeledStmt,
	// consumed by the next loop/switch/select.
	pendingLabel string
	// isTerminalCall classifies a call expression as non-returning
	// (panic, os.Exit, log.Fatal, runtime.Goexit).
	isTerminalCall func(*ast.CallExpr) bool
}

type breakTarget struct {
	label string
	brk   *cfgBlock
	cont  *cfgBlock // nil for switch/select
}

// buildCFG constructs the CFG of one function body. terminal classifies
// calls that never return; pass nil for a purely syntactic build.
func buildCFG(body *ast.BlockStmt, terminal func(*ast.CallExpr) bool) *funcCFG {
	if terminal == nil {
		terminal = func(*ast.CallExpr) bool { return false }
	}
	b := &cfgBuilder{g: &funcCFG{}, isTerminalCall: terminal}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.exit)
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// reach ensures there is a current block to build into, opening a detached
// (unreachable) one after a return/break so construction can continue.
func (b *cfgBuilder) reach() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findBreak locates the break target for an optional label.
func (b *cfgBuilder) findBreak(label string) *cfgBlock {
	for i := len(b.breakables) - 1; i >= 0; i-- {
		t := b.breakables[i]
		if label == "" || t.label == label {
			return t.brk
		}
	}
	return nil
}

// findContinue locates the continue target (innermost loop, or labeled loop).
func (b *cfgBuilder) findContinue(label string) *cfgBlock {
	for i := len(b.breakables) - 1; i >= 0; i-- {
		t := b.breakables[i]
		if t.cont == nil {
			continue // switch/select: continue passes through
		}
		if label == "" || t.label == label {
			return t.cont
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		cur := b.reach()
		cur.stmts = append(cur.stmts, s)
		b.edge(cur, b.g.exit)
		b.cur = nil

	case *ast.BranchStmt:
		cur := b.reach()
		cur.stmts = append(cur.stmts, s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(label); t != nil {
				b.edge(cur, t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findContinue(label); t != nil {
				b.edge(cur, t)
			}
			b.cur = nil
		case token.GOTO:
			// Optimistic: treat as able to reach an exit.
			b.edge(cur, b.g.exit)
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by the switch construction; the edge to
			// the next case body is added there.
		}

	case *ast.IfStmt:
		cur := b.reach()
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(cur, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(cur, after) // condition false
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		cur := b.reach()
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		body := b.newBlock()
		b.edge(cur, head)
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after) // condition false exits the loop
		}
		b.breakables = append(b.breakables, breakTarget{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			if s.Post != nil {
				b.cur.stmts = append(b.cur.stmts, s.Post)
			}
			b.edge(b.cur, head)
		}
		b.breakables = b.breakables[:len(b.breakables)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		cur := b.reach()
		head := b.newBlock()
		after := b.newBlock()
		body := b.newBlock()
		b.edge(cur, head)
		b.edge(head, body)
		// Ranges terminate: collections are finite, and ranging a channel
		// ends when the channel closes (the quit-channel idiom).
		b.edge(head, after)
		b.breakables = append(b.breakables, breakTarget{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.breakables = b.breakables[:len(b.breakables)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.takeLabel()
		cur := b.reach()
		var body *ast.BlockStmt
		hasInit := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			body = sw.Body
			hasInit = sw.Init != nil
			if hasInit {
				cur.stmts = append(cur.stmts, sw.Init)
			}
		case *ast.TypeSwitchStmt:
			body = sw.Body
			if sw.Init != nil {
				cur.stmts = append(cur.stmts, sw.Init)
			}
		}
		after := b.newBlock()
		b.breakables = append(b.breakables, breakTarget{label: label, brk: after})
		hasDefault := false
		// Build case bodies; a fallthrough as the final statement falls
		// into the next case's block.
		var caseBlocks []*cfgBlock
		var caseClauses []*ast.CaseClause
		for _, c := range body.List {
			clause, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if clause.List == nil {
				hasDefault = true
			}
			caseBlocks = append(caseBlocks, b.newBlock())
			caseClauses = append(caseClauses, clause)
		}
		for i, clause := range caseClauses {
			b.edge(cur, caseBlocks[i])
			b.cur = caseBlocks[i]
			b.stmtList(clause.Body)
			if fallsThrough(clause.Body) && i+1 < len(caseBlocks) {
				if b.cur != nil {
					b.edge(b.cur, caseBlocks[i+1])
				}
			} else if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		if !hasDefault {
			b.edge(cur, after) // no case matches
		}
		b.breakables = b.breakables[:len(b.breakables)-1]
		b.cur = after

	case *ast.SelectStmt:
		label := b.takeLabel()
		cur := b.reach()
		after := b.newBlock()
		b.breakables = append(b.breakables, breakTarget{label: label, brk: after})
		for _, c := range s.Body.List {
			clause, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			caseB := b.newBlock()
			b.edge(cur, caseB)
			b.cur = caseB
			if clause.Comm != nil {
				caseB.stmts = append(caseB.stmts, clause.Comm)
			}
			b.stmtList(clause.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		// select{} blocks forever: no cases means no edge into after.
		b.breakables = b.breakables[:len(b.breakables)-1]
		b.cur = after

	case *ast.ExprStmt:
		cur := b.reach()
		cur.stmts = append(cur.stmts, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isTerminalCall(call) {
			b.edge(cur, b.g.exit)
			b.cur = nil
		}

	default:
		// Assignments, declarations, go/defer/send/incdec: straight-line.
		cur := b.reach()
		cur.stmts = append(cur.stmts, s)
	}
}

// fallsThrough reports whether a case body ends in a fallthrough statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}
