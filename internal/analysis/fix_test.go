package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestFixSourceGolden pins -fix end to end on the fixgolden fixture: the
// surviving findings get TODO-reason scaffolds (sorted per line) and the
// out-of-order directive stack is canonicalized, matching the golden file
// byte for byte. The golden is not named *.go so the fixture loader ignores
// it.
func TestFixSourceGolden(t *testing.T) {
	dir := filepath.Join("testdata", "src", "fixgolden")
	suite := []*Analyzer{Erreig, Nofloateq}
	mod, err := LoadFixture(dir, "fixture/fixgolden")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(mod, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixgolden fixture produced no findings; the golden check is vacuous")
	}

	src, err := os.ReadFile(filepath.Join(dir, "input.go"))
	if err != nil {
		t.Fatal(err)
	}
	got := FixSource(src, diags)
	golden, err := os.ReadFile(filepath.Join(dir, "input.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("FixSource output differs from input.go.golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}

	// Idempotency: the fixed file lints clean (the scaffolds' TODO reasons
	// satisfy the mandatory-reason rule and the stacked directives chain to
	// the flagged lines), so re-fixing it is the identity.
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "input.go"), got, 0o644); err != nil {
		t.Fatal(err)
	}
	fixedMod, err := LoadFixture(tmp, "fixture/fixgolden")
	if err != nil {
		t.Fatal(err)
	}
	survivors, err := Lint(fixedMod, suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range survivors {
		t.Errorf("finding survives its own scaffold: %s", d)
	}
	if again := FixSource(got, survivors); !bytes.Equal(again, got) {
		t.Errorf("FixSource is not idempotent:\n--- second pass ---\n%s\n--- first pass ---\n%s", again, got)
	}
}

// TestFixSourceSkipsDirectiveFindings keeps -fix from scaffolding a waiver
// for a malformed waiver: directive-hygiene findings are not fixable.
func TestFixSourceSkipsDirectiveFindings(t *testing.T) {
	src := []byte("package p\n\nfunc f() {\n}\n")
	diags := []Diagnostic{{
		Pos:      token.Position{Filename: "p.go", Line: 3, Column: 1},
		Analyzer: directiveRuleID,
		Message:  "malformed //automon:allow directive: missing analyzer name",
	}}
	if got := FixSource(src, diags); !bytes.Equal(got, src) {
		t.Errorf("FixSource altered the file for a directive-hygiene finding:\n%s", got)
	}
}
