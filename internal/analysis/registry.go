package analysis

// All returns every analyzer in the suite, in stable order. cmd/automon-lint
// runs exactly this list; the meta-test in this package asserts the two never
// drift apart. The first six are PR 4's syntactic suite; the last four ride
// the interprocedural dataflow layer (summary.go, cfg.go).
func All() []*Analyzer {
	return []*Analyzer{
		Hotpath,
		Poolpair,
		Determinism,
		Erreig,
		Obsnames,
		Nofloateq,
		Statepure,
		Lockorder,
		Golifecycle,
		Floatflow,
	}
}
