package analysis

// All returns every analyzer in the suite, in stable order. cmd/automon-lint
// runs exactly this list; the meta-test in this package asserts the two never
// drift apart.
func All() []*Analyzer {
	return []*Analyzer{
		Hotpath,
		Poolpair,
		Determinism,
		Erreig,
		Obsnames,
		Nofloateq,
	}
}
