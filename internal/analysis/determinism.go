package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism guards the bit-reproducibility PR 3 promised for the protocol
// and experiment pipeline: in the deterministic packages (core, optimize,
// experiments) it flags map iteration (unordered by language spec), wall
// clocks (time.Now/Since/Until) and the globally seeded math/rand functions
// (seeded constructors rand.New(rand.NewSource(seed)) remain fine), and
// selects that race two non-timeout channels against each other. Worker
// determinism — identical results at any worker count — depends on exactly
// these constructs never deciding an output.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic packages must not iterate maps into output, read wall clocks, use global math/rand, or race channels",
	Run:  runDeterminism,
}

// deterministicPkgSuffixes selects the packages under the determinism
// contract by import-path suffix. Fixture packages opt in by ending their
// path the same way.
var deterministicPkgSuffixes = []string{
	"internal/core",
	"internal/optimize",
	"internal/experiments",
}

func isDeterministicPkg(path string) bool {
	for _, s := range deterministicPkgSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// seededRandConstructors are the math/rand entry points that build an
// explicitly seeded stream; everything else package-level draws from the
// shared global source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// isTimeChan reports whether expr is a channel of time.Time — a timeout arm
// (time.After, Timer.C, Ticker.C), which a select may legitimately race
// against one real channel.
func isTimeChan(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	named, ok := ch.Elem().(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Time"
}

// commChannel extracts the channel expression of a select case, or nil for
// the default case.
func commChannel(clause *ast.CommClause) ast.Expr {
	switch s := clause.Comm.(type) {
	case *ast.SendStmt:
		return s.Chan
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok {
				return u.X
			}
		}
	}
	return nil
}

// orderInsensitiveBody recognizes the two map-range shapes whose result is
// independent of iteration order, so the sorted-keys fix idiom and plain
// re-keyed copies don't need suppressions:
//
//	for k := range m { keys = append(keys, k) }   // collect, then sort
//	for k, v := range m { m2[k] = f(v) }          // keyed write, commutative
//
// Anything else — appending values, emitting output, accumulating floats —
// stays a finding: those leak the iteration order into the result.
func orderInsensitiveBody(r *ast.RangeStmt) bool {
	if len(r.Body.List) != 1 {
		return false
	}
	assign, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	keyID, _ := r.Key.(*ast.Ident)
	if keyID == nil || keyID.Name == "_" {
		return false
	}
	// keys = append(keys, k)
	if call, ok := assign.Rhs[0].(*ast.CallExpr); ok {
		if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "append" && len(call.Args) == 2 {
			if arg, ok := call.Args[1].(*ast.Ident); ok && arg.Name == keyID.Name {
				return true
			}
		}
	}
	// m2[k] = rhs
	if ix, ok := assign.Lhs[0].(*ast.IndexExpr); ok && assign.Tok == token.ASSIGN {
		if idx, ok := ix.Index.(*ast.Ident); ok && idx.Name == keyID.Name {
			return true
		}
	}
	return false
}

func runDeterminism(p *Pass) error {
	for _, pkg := range p.Pkgs {
		if !isDeterministicPkg(pkg.Path) {
			continue
		}
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if tv, ok := info.Types[n.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !orderInsensitiveBody(n) {
							p.Reportf(n.Pos(), "map iteration order is nondeterministic; iterate sorted keys or restructure")
						}
					}
				case *ast.CallExpr:
					fn := callee(info, n)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					switch fn.Pkg().Path() {
					case "time":
						switch fn.Name() {
						case "Now", "Since", "Until":
							p.Reportf(n.Pos(), "time.%s reads the wall clock; deterministic packages must not depend on real time", fn.Name())
						}
					case "math/rand", "math/rand/v2":
						if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
							!seededRandConstructors[fn.Name()] {
							p.Reportf(n.Pos(), "rand.%s draws from the global source; use a seeded rand.New(rand.NewSource(seed))", fn.Name())
						}
					}
				case *ast.SelectStmt:
					real := 0
					for _, c := range n.Body.List {
						clause := c.(*ast.CommClause)
						if clause.Comm == nil {
							continue // default case
						}
						if ch := commChannel(clause); ch != nil && isTimeChan(info, ch) {
							continue // timeout arm
						}
						real++
					}
					if real >= 2 {
						p.Reportf(n.Pos(), "select races %d channels; receive order is nondeterministic", real)
					}
				}
				return true
			})
		}
	}
	return nil
}
