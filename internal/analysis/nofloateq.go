package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Nofloateq flags ==/!= between floating-point expressions, including float
// switch cases (a chain of == under the hood). Rounded protocol thresholds
// compared with equality are exactly how a bit-drifting refactor slips past
// the worker-determinism tests. Two comparisons are exact by IEEE-754 and
// allowed without ceremony: against literal 0 (the sentinel/sparsity idiom
// used by the adjoint loops) and against NaN-free constant ±Inf. Everything
// else needs an epsilon, an integer representation, or an //automon:allow
// with the reason the comparison is exact. Test files are outside the lint
// closure entirely.
var Nofloateq = &Analyzer{
	Name: "nofloateq",
	Doc:  "no ==/!= on float64 expressions (exact-zero and ±Inf comparisons excepted)",
	Run:  runNofloateq,
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exactConstant reports whether e is a compile-time constant that compares
// exactly: literal zero or an infinity.
func exactConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		if constant.Sign(tv.Value) == 0 {
			return true
		}
		if v, ok := constant.Float64Val(tv.Value); ok && (v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
			return true
		}
	}
	return false
}

func runNofloateq(p *Pass) error {
	for _, pkg := range p.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					xt, xok := info.Types[n.X]
					yt, yok := info.Types[n.Y]
					if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
						return true
					}
					if exactConstant(info, n.X) || exactConstant(info, n.Y) {
						return true
					}
					p.Reportf(n.OpPos, "%s on float operands is bit-fragile; compare with a tolerance or an exact representation", n.Op)
				case *ast.SwitchStmt:
					if n.Tag == nil {
						return true
					}
					tv, ok := info.Types[n.Tag]
					if !ok || !isFloat(tv.Type) {
						return true
					}
					for _, c := range n.Body.List {
						clause := c.(*ast.CaseClause)
						for _, e := range clause.List {
							if !exactConstant(info, e) {
								p.Reportf(e.Pos(), "switch on float64 compares cases with ==; use explicit tolerances or strconv formatting")
							}
						}
					}
				}
				return true
			})
		}
	}
	return nil
}
