package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Floatflow upgrades the determinism contract from syntactic to
// interprocedural: PR 4's determinism analyzer bans nondeterminism *inside*
// the contract packages (core, optimize, experiments); floatflow follows
// the call graph *out* of them and reports every nondeterminism source —
// order-sensitive map iteration, selects racing real channels, global or OS
// rand — that protocol code can reach in the rest of the module. The
// float64 protocol outputs (thresholds, zone parameters, figure CSVs) must
// be bit-identical run to run; a racy select three calls below fullSync
// breaks that exactly as surely as one inside it.
//
// A second, module-wide rule guards the sinks directly: an argument to a
// metric update (obs Inc/Add/Set/Observe) or a csv.Writer write whose value
// is computed by a function with a nondeterministic call closure is
// reported at the sink, wherever the sink lives.
//
// Interface and function-value calls stay opaque here too: NodeComm hides
// the transport's event races from the protocol by design, and the
// scheduler-order nondeterminism *of delivery* is the monitoring problem
// itself, not a float-taint bug. What floatflow catches is computation the
// protocol invokes that silently depends on iteration or scheduling order.
var Floatflow = &Analyzer{
	Name: "floatflow",
	Doc:  "nondeterminism sources reachable from the deterministic packages, and nondeterministic values flowing into metric/CSV sinks, taint protocol output",
	Run:  runFloatflow,
}

// floatflowTaint is the effect mask that counts as a nondeterminism source.
const floatflowTaint = effRand | effNondetOrder

func runFloatflow(p *Pass) error {
	cg := buildCallGraph(p)

	// Rule 1: reachability. Roots are every function of the deterministic
	// packages; any taint site in reached code outside them is a finding.
	// Sites inside the contract packages belong to the determinism analyzer.
	var roots []*types.Func
	for _, fn := range cg.order {
		if isDeterministicPkg(cg.funcs[fn].pkg.Path) {
			roots = append(roots, fn)
		}
	}
	reach := reachableFrom(p, cg, roots)
	for _, fn := range reach.order {
		if isDeterministicPkg(cg.funcs[fn].pkg.Path) {
			continue
		}
		for _, site := range cg.summaries[fn].sites {
			if site.eff&floatflowTaint == 0 {
				continue
			}
			p.Reportf(site.pos, "%s is reachable from the deterministic packages (%s); its outcome can leak into protocol output",
				site.what, reach.chain(cg, fn))
		}
	}

	// Rule 2: sinks. totalEffects gives each function's full closure mask;
	// a call computing a sink argument with taint in its closure is a
	// finding at the sink call.
	total := cg.totalEffects()
	for _, fn := range cg.order {
		body := cg.funcs[fn]
		info := body.pkg.Info
		ast.Inspect(body.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink := sinkName(info, call)
			if sink == "" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					inner, ok := a.(*ast.CallExpr)
					if !ok {
						return true
					}
					target := callee(info, inner)
					if target == nil {
						return true
					}
					if eff, what := classifyExternal(target); eff&floatflowTaint != 0 {
						p.Reportf(inner.Pos(), "%s flows into %s; the recorded value is nondeterministic", what, sink)
						return true
					}
					if total[target]&floatflowTaint != 0 {
						p.Reportf(inner.Pos(), "%s has nondeterminism in its call closure and flows into %s",
							cg.label(target), sink)
					}
					return true
				})
			}
			return true
		})
	}
	return nil
}

// sinkName classifies a call as a protocol-output sink: module obs metric
// updates and encoding/csv writes. Returns "" for everything else.
func sinkName(info *types.Info, call *ast.CallExpr) string {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	switch {
	case fn.Pkg().Path() == "encoding/csv":
		if fn.Name() == "Write" || fn.Name() == "WriteAll" {
			return "csv." + fn.Name()
		}
	case strings.HasSuffix(fn.Pkg().Path(), "internal/obs"):
		switch fn.Name() {
		case "Inc", "Add", "Set", "Observe":
			return "metric " + typeLabel(sig.Recv().Type()) + "." + fn.Name()
		}
	}
	return ""
}
