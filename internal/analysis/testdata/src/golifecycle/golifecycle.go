// Package golifecycle exercises goroutine-termination checking: every go
// statement and time.AfterFunc callback needs a reachable exit path.
// Positive cases are the bare infinite-loop shapes; negatives are the
// quit-channel select, ranging a closable channel, bounded loops, panic
// paths, opaque function values, and a waived process-lifetime worker.
package golifecycle

import "time"

func work() {}

func wedged() bool { return false }

// Leaky spawns a literal that can never reach its exit.
func Leaky() {
	go func() { // want "goroutine \(func literal\) has no reachable termination path"
		for {
			work()
		}
	}()
}

// spin loops forever; spawning it by name is still resolvable.
func spin() {
	for {
		work()
	}
}

func LeakyNamed() {
	go spin() // want "goroutine spin has no reachable termination path"
}

// LeakyTimer's callback never returns, so the timer goroutine wedges.
func LeakyTimer() {
	time.AfterFunc(time.Second, func() { // want "time.AfterFunc callback \(func literal\) has no reachable termination path"
		for {
			work()
		}
	})
}

// QuitChannel is the canonical worker: the quit case reaches return.
func QuitChannel(ch <-chan int, quit <-chan struct{}) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
				work()
			case <-quit:
				return
			}
		}
	}()
}

// RangeWorker terminates when the channel is closed.
func RangeWorker(ch <-chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// Bounded loops finitely.
func Bounded() {
	go func() {
		for i := 0; i < 8; i++ {
			work()
		}
	}()
}

// Panics terminates ungracefully, but terminates.
func Panics() {
	go func() {
		for {
			if wedged() {
				panic("wedged")
			}
			work()
		}
	}()
}

// OnceTimer's callback runs to completion; resolving a named callback
// through an identifier works like a literal.
func OnceTimer() *time.Timer {
	return time.AfterFunc(time.Second, work)
}

// Opaque spawns through a function value: the body is not resolvable and
// the spawn is skipped by contract.
func Opaque(f func()) {
	go f()
}

// Waived is a deliberate process-lifetime pump.
func Waived() {
	//automon:allow golifecycle fixture: process-lifetime pump by design, reaped at process exit
	go spin()
}
