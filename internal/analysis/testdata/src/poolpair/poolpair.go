// Package poolpair exercises the poolpair analyzer: within one function,
// every Get from a pool-like value needs a matching Put on the same pool,
// unless the buffer is returned (ownership transfer).
package poolpair

import "sync"

type bufPool struct{ pool sync.Pool }

// get hands the buffer to its caller: the ownership-transfer exemption, so
// the unbalanced p.pool.Get here is fine.
func (p *bufPool) get() *[]float64 {
	if v := p.pool.Get(); v != nil {
		return v.(*[]float64)
	}
	s := make([]float64, 8)
	return &s
}

func (p *bufPool) put(b *[]float64) { p.pool.Put(b) }

// Leaky gets a buffer and never puts it back.
func Leaky(p *bufPool) float64 {
	b := p.get() // want "1 Get.s. but 0 Put"
	s := *b
	return s[0]
}

// Balanced pairs its get with a deferred put: no finding.
func Balanced(p *bufPool) float64 {
	b := p.get()
	defer p.put(b)
	s := *b
	return s[0]
}

var scratch sync.Pool

// LeakFromGlobal leaks straight from a sync.Pool.
func LeakFromGlobal() float64 {
	b := scratch.Get().(*[]float64) // want "1 Get.s. but 0 Put"
	s := *b
	return s[0]
}

// HandsOff returns the buffer it got: ownership transferred, no finding.
func HandsOff() *[]float64 {
	b := scratch.Get().(*[]float64)
	return b
}
