// Package allowform exercises the suppression-directive hygiene rules: a
// directive without a reason, without a name, or naming an unknown analyzer
// is itself a diagnostic and does NOT waive the underlying finding. The
// expectations are asserted programmatically (TestSuppressionDirectives)
// rather than with want comments, because the malformed directives under
// test occupy the comment position a want marker would need.
package allowform

import "errors"

func errFn() error { return errors.New("x") }

func missingReason() {
	//automon:allow erreig
	_ = errFn()
}

func unknownAnalyzer() {
	//automon:allow nosuch because reasons
	_ = errFn()
}

func missingName() {
	//automon:allow
	_ = errFn()
}

func wellFormed() {
	//automon:allow erreig deliberate fixture waiver
	_ = errFn()
}
