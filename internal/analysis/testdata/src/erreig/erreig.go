// Package erreig exercises the erreig analyzer: error values must not be
// discarded with the blank identifier, in either tuple or element-wise form.
package erreig

import "errors"

func mayFail() (int, error) { return 0, errors.New("boom") }

func onlyErr() error { return nil }

// Tuple discards the error result of a multi-value call.
func Tuple() int {
	v, _ := mayFail() // want "error result of mayFail.. discarded"
	return v
}

// Elem discards a bare error value.
func Elem() {
	_ = onlyErr() // want "error value of onlyErr.. discarded"
}

// Handled checks the error: no finding.
func Handled() int {
	v, err := mayFail()
	if err != nil {
		return -1
	}
	return v
}

// Waived discards deliberately, with a reasoned suppression: no finding.
func Waived() {
	_ = onlyErr() //automon:allow erreig fixture: fire-and-forget by design
}

// NonError blank-assigns a non-error value: no finding.
func NonError() {
	_, _ = mayFail2()
}

func mayFail2() (int, int) { return 1, 2 }
