// Package lockorder exercises the lock-acquisition-order analyzer. The
// fixture is loaded under fixture/internal/core so its package is in the
// graphed scope. Cases: an AB/BA inversion (both edges reported), a
// self-deadlock through a call, a direct double-lock, a double-lock on an
// embedded mutex, a propagated cycle through a callee, a consistently
// ordered pair (clean), goroutine bodies starting with an empty held set
// (clean), and a waived edge whose opposite direction still fires.
package lockorder

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

// AB and BA together close the classic inversion; each direction's
// acquisition site is one cycle edge.
func (s *S) AB() {
	s.a.Lock()
	s.b.Lock() // want "closes a lock-order cycle"
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) BA() {
	s.b.Lock()
	s.a.Lock() // want "closes a lock-order cycle"
	s.a.Unlock()
	s.b.Unlock()
}

type R struct {
	mu sync.Mutex
}

// Outer holds mu across a call whose callee may reacquire it.
func (r *R) Outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner() // want "may reacquire"
}

func (r *R) inner() {
	r.mu.Lock()
	r.mu.Unlock()
}

// Twice reacquires directly.
func (r *R) Twice() {
	r.mu.Lock()
	r.mu.Lock() // want "reacquiring"
	r.mu.Unlock()
	r.mu.Unlock()
}

// E's mutex is embedded; the promoted Lock still resolves to the field.
type E struct {
	sync.Mutex
}

func (e *E) Double() {
	e.Lock()
	e.Lock() // want "reacquiring"
	e.Unlock()
	e.Unlock()
}

type T struct {
	m sync.Mutex
	n sync.Mutex
}

// MN acquires n only through lockN: the edge is propagated via the
// mayAcquire fixpoint and reported at the call site.
func (t *T) MN() {
	t.m.Lock()
	t.lockN() // want "via call to .* closes a lock-order cycle"
	t.m.Unlock()
}

func (t *T) lockN() {
	t.n.Lock()
	t.n.Unlock()
}

func (t *T) NM() {
	t.n.Lock()
	t.m.Lock() // want "closes a lock-order cycle"
	t.m.Unlock()
	t.n.Unlock()
}

// C's locks are always taken c before d: a consistent order is clean.
type C struct {
	c sync.Mutex
	d sync.Mutex
}

func (x *C) CD1() {
	x.c.Lock()
	x.d.Lock()
	x.d.Unlock()
	x.c.Unlock()
}

func (x *C) CD2() {
	x.c.Lock()
	defer x.c.Unlock()
	x.d.Lock()
	defer x.d.Unlock()
}

// G spawns a goroutine while holding g1; the goroutine does not run under
// the caller's locks, so its g2 acquisition orders nothing after g1.
type G struct {
	g1 sync.Mutex
	g2 sync.Mutex
}

func (g *G) SpawnClean(done chan struct{}) {
	g.g1.Lock()
	go func() {
		g.g2.Lock()
		g.g2.Unlock()
		close(done)
	}()
	g.g1.Unlock()
	g.g2.Lock()
	g.g2.Unlock()
}

// W pins an instance order by waiver: the waived direction is suppressed,
// the unwaived inverse still fires.
type W struct {
	p sync.Mutex
	q sync.Mutex
}

func (w *W) PQ() {
	w.p.Lock()
	//automon:allow lockorder fixture: p-before-q is the pinned order; this edge is the documented direction
	w.q.Lock()
	w.q.Unlock()
	w.p.Unlock()
}

func (w *W) QP() {
	w.q.Lock()
	w.p.Lock() // want "closes a lock-order cycle"
	w.p.Unlock()
	w.q.Unlock()
}
