// Package statepure exercises the purity-boundary analyzer: functions
// marked //automon:statepure and their static call closure may not reach
// I/O, the clock, goroutine spawns, global rand, or package-level writes.
// Locks, package-level reads, seeded rand and interface calls stay legal.
package statepure

import (
	"math/rand"
	"sync"
	"time"
)

var counter int

var limit = 16

var mu sync.Mutex

// Transition is a root: its own violations and its callees' are findings.
//
//automon:statepure
func Transition(x float64) float64 {
	now := time.Now() // want "time.Now is impure for the protocol transition set"
	_ = now
	return helper(x)
}

// helper is reached transitively from Transition.
func helper(x float64) float64 {
	go func() { _ = x }()     // want "go statement is impure for the protocol transition set"
	counter = 1               // want "write to package-level statepure.counter is impure"
	return x + rand.Float64() // want "rand.Float64 \(global source\) is impure"
}

// clean is also reached from a root and holds the contract: locks, reads of
// package-level state, and seeded rand are all permitted.
func clean(x float64) float64 {
	mu.Lock()
	defer mu.Unlock()
	r := rand.New(rand.NewSource(7))
	if int(x) > limit {
		return r.Float64()
	}
	return x
}

type comm interface {
	Send(v float64)
}

// Route is a root whose only effectful call goes through an interface: the
// routing seam is opaque by contract, so nothing is reported.
//
//automon:statepure
func Route(c comm, x float64) float64 {
	c.Send(x)
	return clean(x)
}

// Waived is a root whose impure callee is waived at the call site; the
// waiver prunes the subtree, so sloppy's violations are not findings.
//
//automon:statepure
func Waived() {
	//automon:allow statepure fixture: pruned subtree demonstrates waiver semantics
	sloppy()
}

// sloppy is only reachable through the waived call site above.
func sloppy() {
	time.Sleep(time.Millisecond)
}

// Unmarked has effects but is no root and unreachable from one: clean.
func Unmarked() {
	counter = 2
	time.Sleep(time.Millisecond)
}
