// Package core exercises the determinism analyzer. The fixture is loaded
// under the import path fixture/internal/core, which opts it into the
// deterministic-package contract.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// LeakOrder appends map values in iteration order: the order leaks into the
// result.
func LeakOrder(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order is nondeterministic"
		out = append(out, v)
	}
	return out
}

// SortedKeys uses the collect-then-sort idiom; the first range is
// order-insensitive and must not be flagged.
func SortedKeys(m map[string]int) []int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// KeyedCopy re-keys one map into another: commutative, no finding.
func KeyedCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().Unix() // want "reads the wall clock"
}

// Roll draws from the global math/rand source.
func Roll() int {
	return rand.Intn(6) // want "draws from the global source"
}

// Seeded builds an explicitly seeded stream: the blessed constructors and
// method calls on the seeded *rand.Rand are fine.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Race selects between two real channels.
func Race(a, b chan int) int {
	select { // want "receive order is nondeterministic"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Timeout races one real channel against a timer arm only: allowed.
func Timeout(a chan int) int {
	select {
	case v := <-a:
		return v
	case <-time.After(time.Second):
		return -1
	}
}
