// Package obsnames exercises the obsnames analyzer: any automon_* metric
// name reaching a constructor whose callee name mentions counter, gauge or
// histogram must follow automon_<subsystem>_<name> lower_snake_case with a
// kind-consistent suffix.
package obsnames

import "fmt"

type metric struct{ name string }

func newCounter(name string) *metric  { return &metric{name: name} }
func newGauge(name string) *metric    { return &metric{name: name} }
func histogramOr(name string) *metric { return &metric{name: name} }

var (
	good     = newCounter("automon_sim_rounds_total")
	okGauge  = newGauge("automon_queue_depth")
	noTotal  = newCounter("automon_sim_rounds")             // want "must end in _total"
	gaugeTot = newGauge("automon_queue_depth_total")        // want "must not end in _total"
	camel    = newCounter("automon_SimRounds_total")        // want "lower_snake_case"
	foreign  = newCounter("node_rounds_total")              // want "must start with automon_"
	reserved = histogramOr("automon_latency_seconds_count") // want "must not end in _count"
)

func lbl(s string) string { return s }

// Labeled appends a label set after a well-formed counter base: no finding.
var labeled = newCounter("automon_transport_frames_total{" + lbl("node") + "}")

// PerNode builds the name with Sprintf; the constant prefix is checkable and
// well-formed, the rest is a runtime concern: no finding.
func PerNode(i int) *metric {
	return newCounter(fmt.Sprintf("automon_node_%d_msgs_total", i))
}

// BadDyn has a fully constant base (single trailing %s appends labels) that
// breaks the prefix rule.
func BadDyn(shard string) *metric {
	return newGauge(fmt.Sprintf("AutomonShard%s", shard)) // want "must start with automon_"
}

// Opaque passes a wholly dynamic name: out of static reach, no finding.
func Opaque(name string) *metric {
	return newCounter(name)
}
