// Package nofloateq exercises the nofloateq analyzer: ==/!= on float64
// operands is flagged unless one side is an exact constant (literal zero or
// ±Inf), and float switch statements are a chain of == in disguise.
package nofloateq

// Eq compares two floats for equality.
func Eq(a, b float64) bool {
	return a == b // want "float operands is bit-fragile"
}

// Neq is the != spelling of the same bug.
func Neq(a, b float64) bool {
	return a != b // want "float operands is bit-fragile"
}

// Zero compares against literal zero, which is exact: no finding.
func Zero(a float64) bool {
	return a == 0
}

// Ints compares integers: no finding.
func Ints(a, b int) bool {
	return a == b
}

// Switch compares the tag against each case with ==; only the exact-zero
// case escapes.
func Switch(x float64) string {
	switch x {
	case 0:
		return "zero"
	case 1.5: // want "switch on float64"
		return "mid"
	}
	return "other"
}

// Waived carries a reasoned suppression: no finding.
func Waived(a, b float64) bool {
	return a == b //automon:allow nofloateq fixture: bitwise identity is the intent
}
