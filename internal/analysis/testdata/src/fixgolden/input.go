// Package fixgolden is the -fix golden fixture: FixSource must scaffold
// TODO waivers above each flagged line (sorted per line when one line has
// findings from several analyzers) and canonicalize the out-of-order
// directive stack at the bottom of the file.
package fixgolden

import "errors"

func mightFail() error { return errors.New("boom") }

func value() (float64, error) { return 0, nil }

func scaffoldTargets(a, b float64) bool {
	_ = mightFail()
	if a == b {
		return true
	}
	if v, _ := value(); v == a {
		return false
	}
	return false
}

// The stack below is deliberately out of canonical order; -fix sorts it
// even when no scaffolds are inserted nearby.
func sorted(c, d float64) {
	//automon:allow nofloateq fixture: stack kept to exercise canonical sorting
	//automon:allow erreig fixture: stack kept to exercise canonical sorting
	_, _ = d, c
}
