// Package hotpath exercises the hotpath analyzer: functions marked
// //automon:hotpath and every module function statically reachable from one
// must not allocate, box float slices into interfaces, or take locks.
package hotpath

import "sync"

// Root allocates directly inside a marked function.
//
//automon:hotpath
func Root(x []float64) float64 {
	s := make([]float64, len(x)) // want "make allocates"
	copy(s, x)
	return helper(s)
}

// helper is allocation-free and reachable from Root; it must produce no
// finding.
func helper(x []float64) float64 {
	total := 0.0
	for _, v := range x {
		total += v
	}
	return total
}

// Transitive reaches an allocation one hop down the static call graph.
//
//automon:hotpath
func Transitive(x []float64) []float64 {
	return grow(x)
}

func grow(x []float64) []float64 {
	return append(x, 1) // want "append may grow"
}

//automon:hotpath
func LockRoot(mu *sync.Mutex) {
	mu.Lock() // want "acquires a lock"
	mu.Unlock()
}

func boxy(v interface{}) bool { return v != nil }

//automon:hotpath
func BoxRoot(x []float64) bool {
	return boxy(x) // want "boxed into an interface parameter"
}

//automon:hotpath
func DynRoot(f func() float64) float64 {
	return f() // want "cannot be proven allocation-free"
}

// Waived allocates behind a suppression; the directive also prunes the
// traversal, so pruned's own make is not dragged into the hot closure.
//
//automon:hotpath
func Waived(n int) float64 {
	//automon:allow hotpath fixture: cold setup path by construction
	s := pruned(n)
	return s[0]
}

func pruned(n int) []float64 {
	return make([]float64, n)
}

// Unmarked allocates but is reachable from no marked root: no finding.
func Unmarked(n int) []float64 {
	return make([]float64, n)
}
