// Package core is the deterministic-package root set of the floatflow tree
// fixture (loaded under fixture/floatflow/internal/core): every function
// here is a rule-1 reachability root, and Dump/Report exercise the rule-2
// sinks. Taint sites inside this package belong to the determinism
// analyzer, so rule 1 reports only at the sites in helper.
package core

import (
	"encoding/csv"
	"math/rand"
	"strconv"

	"fixture/floatflow/helper"
	"fixture/floatflow/internal/obs"
)

// Resolve reaches helper's order-sensitive map fold.
func Resolve(m map[string]float64) float64 {
	return helper.Fold(m)
}

// Idle reaches helper's racing select.
func Idle(a, b chan int) int {
	return helper.Race(a, b)
}

// Stats reaches global rand two calls down.
func Stats() float64 {
	return helper.Draw()
}

// Sampled waives the call edge: the waiver prunes helper.Sampler's subtree.
func Sampled(m map[string]float64) float64 {
	//automon:allow floatflow fixture: sampled diagnostics only, never protocol state
	return helper.Sampler(m)
}

// Dump exercises the CSV sink: rowOf has an order-sensitive fold in its
// call closure, and rand.Int is a direct external taint source.
func Dump(w *csv.Writer, rows map[string][]string) error {
	if err := w.Write(rowOf(rows)); err != nil { // want "core.rowOf has nondeterminism in its call closure and flows into csv.Write"
		return err
	}
	return w.Write([]string{strconv.Itoa(rand.Int())}) // want "rand.Int \(global source\) flows into csv.Write; the recorded value is nondeterministic"
}

// Report taints a metric sink through a module call closure; the clean
// closure next to it stays clean.
func Report(g *obs.Gauge) {
	g.Set(helper.Draw()) // want "helper.Draw has nondeterminism in its call closure and flows into metric obs.Gauge.Set"
	g.Set(cleanValue())
}

func rowOf(rows map[string][]string) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}

func cleanValue() float64 { return 1.5 }
