// Package obs mimics the module's metric types so sinkName's internal/obs
// suffix rule applies inside the fixture tree.
package obs

// Gauge is a minimal metric with the Set sink method.
type Gauge struct{ v float64 }

// Set records v.
func (g *Gauge) Set(v float64) { g.v = v }
