// Package helper sits outside the deterministic packages; its taint sites
// are findings only when protocol code reaches them (rule 1), and only at
// the site, with the call chain in the message.
package helper

import "math/rand"

// Fold is order-sensitive: float accumulation depends on map iteration
// order, so the sum differs run to run.
func Fold(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "order-sensitive map iteration is reachable from the deterministic packages"
		s += v
	}
	return s
}

// Race returns whichever channel delivers first.
func Race(a, b chan int) int {
	select { // want "select racing 2 channels is reachable from the deterministic packages"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Draw reaches global rand one call deeper; the chain in the diagnostic
// names the root in core.
func Draw() float64 {
	return deep()
}

func deep() float64 {
	return rand.Float64() // want "rand.Float64 \(global source\) is reachable from the deterministic packages"
}

// Sampler is reached only through a waived call edge in core: pruned.
func Sampler(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Orphan is never reached from the deterministic packages: clean.
func Orphan() float64 {
	return rand.Float64()
}
