// Package analysis is automon's project-specific static-analyzer framework:
// a small go/analysis-style harness built only on the standard library
// (go/parser + go/types), so the module stays dependency-free while the
// invariants PR 3 established at runtime — allocation-free hot paths,
// bit-determinism at any worker count, paired pool buffers, honest error
// handling, and a coherent metric namespace — are proven on every build of
// every package instead of only on the code paths the tests happen to drive.
//
// The suite runs via `go run ./cmd/automon-lint ./...` and via the fixture
// tests in this package. Analyzers report Diagnostics; a finding is
// suppressed by a mandatory-reason directive on the flagged line or the line
// directly above it:
//
//	//automon:allow <analyzer> <reason>
//
// A directive without a reason, or naming an unknown analyzer, is itself a
// diagnostic: suppressions must stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Run inspects every package of the
// Pass and reports findings through it; it must be stateless so the same
// Analyzer value can serve the CLI and concurrent tests.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //automon:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is the one-line invariant statement shown by `automon-lint -help`.
	Doc string
	// Run performs the analysis over the whole module.
	Run func(*Pass) error
}

// Package is one type-checked package of the loaded module.
type Package struct {
	// Path is the import path ("automon/internal/core").
	Path string
	// Pkg is the type-checker's package object.
	Pkg *types.Package
	// Info holds the resolved types, uses, defs and selections for Files.
	Info *types.Info
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
}

// Module is a fully loaded and type-checked set of packages sharing one
// FileSet. Packages appear in dependency order.
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Diagnostic is one reported finding, already positioned for display.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer run over a module. Analyzers iterate Pkgs and
// call Reportf; Suppressed lets whole-program analyzers (hotpath) prune
// traversal at deliberately waived call sites.
type Pass struct {
	Fset *token.FileSet
	Pkgs []*Package

	analyzer *Analyzer
	allows   allowIndex
	diags    *[]Diagnostic
}

// Reportf records a finding at pos. Findings on suppressed lines are dropped
// by the harness, not by the analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether a finding by the running analyzer at pos would
// be waived by an //automon:allow directive.
func (p *Pass) Suppressed(pos token.Pos) bool {
	return p.allows.covers(p.Fset.Position(pos), p.analyzer.Name)
}

// allow is one parsed //automon:allow directive.
type allow struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// allowIndex maps filename → line → directives that cover that line. A
// directive covers its own line (trailing comment) and the next code line:
// for an own-line directive, consecutive directive-only lines chain, so a
// stack of //automon:allow lines (one per analyzer, as -fix writes them)
// all cover the first statement after the stack.
type allowIndex map[string]map[int][]*allow

func (ai allowIndex) covers(pos token.Position, analyzer string) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	for _, a := range lines[pos.Line] {
		if a.analyzer == analyzer {
			a.used = true
			return true
		}
	}
	return false
}

const allowPrefix = "//automon:allow "

// collectAllows scans every comment of the module for suppression
// directives. Malformed directives are returned as diagnostics.
func collectAllows(mod *Module, known map[string]bool) (allowIndex, []Diagnostic) {
	idx := make(allowIndex)
	var bad []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			codeLines := nonCommentLines(mod.Fset, f)
			// First pass: parse every well-formed directive of the file and
			// note which lines are directive-only (no code on them), so
			// stacked directives can chain over each other.
			var allows []*allow
			directiveOnly := make(map[int]bool)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, strings.TrimSpace(allowPrefix)) {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, strings.TrimSpace(allowPrefix)))
					name, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					switch {
					case name == "":
						bad = append(bad, Diagnostic{Pos: pos, Analyzer: "automon-lint",
							Message: "malformed //automon:allow directive: missing analyzer name"})
						continue
					case !known[name]:
						bad = append(bad, Diagnostic{Pos: pos, Analyzer: "automon-lint",
							Message: fmt.Sprintf("//automon:allow names unknown analyzer %q", name)})
						continue
					case reason == "":
						bad = append(bad, Diagnostic{Pos: pos, Analyzer: "automon-lint",
							Message: fmt.Sprintf("//automon:allow %s needs a reason: suppressions must say why the invariant is waived", name)})
						continue
					}
					allows = append(allows, &allow{pos: pos, analyzer: name, reason: reason})
					if !codeLines[pos.Line] {
						directiveOnly[pos.Line] = true
					}
				}
			}
			if len(allows) == 0 {
				continue
			}
			// Second pass: assign coverage. Every directive covers its own
			// line (trailing form). An own-line directive additionally covers
			// the first following line that is not itself a directive-only
			// line, so a stack of waivers all reach the flagged statement.
			file := idx[mod.Fset.Position(f.Pos()).Filename]
			if file == nil {
				file = make(map[int][]*allow)
				idx[mod.Fset.Position(f.Pos()).Filename] = file
			}
			for _, a := range allows {
				file[a.pos.Line] = append(file[a.pos.Line], a)
				next := a.pos.Line + 1
				if directiveOnly[a.pos.Line] {
					for directiveOnly[next] {
						next++
					}
				}
				file[next] = append(file[next], a)
			}
		}
	}
	return idx, bad
}

// nonCommentLines marks every line of the file that carries a non-comment
// token, so an //automon:allow directive can be classified as trailing
// (sharing a line with code) or own-line (free to chain over a stack of
// neighbouring directives).
func nonCommentLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// Lint runs the analyzers over the module, applies suppression directives,
// and returns the surviving diagnostics sorted by position. Malformed
// directives are reported as findings so a bad suppression cannot silently
// disable a check.
func Lint(mod *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, bad := collectAllows(mod, known)

	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     mod.Fset,
			Pkgs:     mod.Pkgs,
			analyzer: a,
			allows:   allows,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	out := bad
	for _, d := range raw {
		if allows.covers(d.Pos, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
