package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath proves the PR-3 zero-allocation invariant at compile time: every
// function annotated //automon:hotpath — and every module function statically
// reachable from one — may not allocate (make/new/append, composite literals
// that escape, closures, goroutines), may not box a []float64 into an
// interface, and may not acquire a mutex. The runtime AllocsPerRun tests
// sample two entry points on the configurations they happen to drive; this
// analyzer covers the whole static call closure on every build.
//
// Deliberate exceptions (violation paths that build a message, pool-miss
// allocations, opt-in custom zones) carry //automon:allow hotpath directives
// with reasons; a suppressed call site also prunes the traversal, so a waived
// branch does not drag its callees into the hot closure.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //automon:hotpath and their static callees must be allocation-free, box-free and lock-free",
	Run:  runHotpath,
}

const hotpathMarker = "//automon:hotpath"

// funcBody ties a module function to its declaration for traversal.
type funcBody struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// declName renders Type.Method or Func for diagnostics.
func declName(decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + decl.Name.Name
		}
		if ix, ok := t.(*ast.IndexExpr); ok {
			if id, ok := ix.X.(*ast.Ident); ok {
				return id.Name + "." + decl.Name.Name
			}
		}
	}
	return decl.Name.Name
}

// hasMarker reports whether the declaration's doc comment carries the
// //automon:hotpath directive.
func hasMarker(decl *ast.FuncDecl) bool {
	return hasDirective(decl, hotpathMarker)
}

// indexFuncs maps every module function object to its body.
func indexFuncs(p *Pass) map[*types.Func]funcBody {
	idx := make(map[*types.Func]funcBody)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
					idx[fn] = funcBody{pkg: pkg, decl: decl}
				}
			}
		}
	}
	return idx
}

// callee resolves the static *types.Func a call expression targets, or nil
// for builtins, conversions, function values and interface methods.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isFloatSlice reports whether t is []float64 (possibly behind a named type).
func isFloatSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// isMutexLock reports whether fn is a lock acquisition on a sync primitive.
func isMutexLock(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

func runHotpath(p *Pass) error {
	funcs := indexFuncs(p)

	type workItem struct {
		fn   *types.Func
		root string
	}
	var work []workItem
	for fn, body := range funcs {
		if hasMarker(body.decl) {
			work = append(work, workItem{fn, body.pkg.Pkg.Name() + "." + declName(body.decl)})
		}
	}

	visited := make(map[*types.Func]bool)
	for len(work) > 0 {
		item := work[0]
		work = work[1:]
		if visited[item.fn] {
			continue
		}
		visited[item.fn] = true
		body, ok := funcs[item.fn]
		if !ok {
			continue
		}
		info := body.pkg.Info
		where := declName(body.decl)

		report := func(pos token.Pos, format string, args ...any) {
			args = append(args, where, item.root)
			p.Reportf(pos, format+" in %s (hot path via //automon:hotpath %s)", args...)
		}

		ast.Inspect(body.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if p.Suppressed(n.Pos()) {
					return false // waived call sites prune the traversal
				}
				// Builtin allocators.
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						switch id.Name {
						case "make":
							report(n.Pos(), "make allocates")
						case "new":
							report(n.Pos(), "new allocates")
						case "append":
							report(n.Pos(), "append may grow its backing array")
						}
						return true
					}
				}
				// Conversions that box a float slice.
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(n.Args) == 1 {
						if at, ok := info.Types[n.Args[0]]; ok && isFloatSlice(at.Type) {
							report(n.Pos(), "conversion boxes []float64 into an interface")
						}
					}
					return true
				}
				fn := callee(info, n)
				if fn == nil {
					report(n.Pos(), "call through a function value or interface cannot be proven allocation-free")
					return true
				}
				if isMutexLock(fn) {
					report(n.Pos(), "%s acquires a lock", fn.FullName())
				}
				// Arguments boxed into interface parameters.
				if sig, ok := fn.Type().(*types.Signature); ok {
					checkBoxedArgs(report, info, n, sig)
				}
				if _, inModule := funcs[fn]; inModule && !visited[fn] {
					work = append(work, workItem{fn, item.root})
				}
			case *ast.CompositeLit:
				if p.Suppressed(n.Pos()) {
					return false
				}
				switch info.Types[n].Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "composite literal allocates a %s", "slice or map")
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !p.Suppressed(n.Pos()) {
						report(n.Pos(), "&composite literal escapes to the heap")
					}
				}
			case *ast.FuncLit:
				if p.Suppressed(n.Pos()) {
					return false
				}
				report(n.Pos(), "function literal allocates a closure")
				return false
			case *ast.GoStmt:
				if !p.Suppressed(n.Pos()) {
					report(n.Pos(), "go statement spawns a goroutine")
				}
			}
			return true
		})
	}
	return nil
}

// checkBoxedArgs flags arguments whose static type is []float64 passed to
// interface-typed parameters (including variadic ...any), the exact boxing
// the PR-3 pool design eliminated by storing *[]float64.
func checkBoxedArgs(report func(token.Pos, string, ...any), info *types.Info, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		at, ok := info.Types[arg]
		if !ok || !isFloatSlice(at.Type) {
			continue
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passed as a whole slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			report(arg.Pos(), "[]float64 argument is boxed into an interface parameter")
		}
	}
}
