package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder builds the global lock-acquisition-order graph across core,
// transport and obs and reports every edge that participates in a cycle: an
// AB/BA inversion between two goroutines is a deadlock waiting for load, and
// the MultiCoordinator accept loop plus the per-connection writers are
// exactly the kind of code where one grows unnoticed.
//
// Locks are identified by their declaration — the *types.Var of the mutex
// field or variable — so every instance of transport.Coordinator.connsMu is
// one node. That conflates instances (standard for static lock-order
// analysis) and means an ordering violation between two *different*
// instances of the same lock class is reported as a self-cycle; such
// hierarchies must pick an instance order and waive with the reason.
//
// Held sets propagate through module-internal calls: if f locks A and calls
// g, every lock g may transitively acquire is ordered after A. Goroutine
// bodies and deferred calls start with an empty held set (they do not run
// under the caller's locks), but their acquisitions still count toward what
// a callee "may acquire". Function literals invoked later inherit nothing;
// scanned standalone they still contribute their internal ordering.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "the lock-acquisition-order graph across core, transport and obs must be acyclic; held sets propagate through calls",
	Run:  runLockorder,
}

// lockScopeSuffixes selects the packages whose lock acquisitions are graphed.
var lockScopeSuffixes = []string{
	"internal/core",
	"internal/transport",
	"internal/obs",
}

func isLockScopePkg(path string) bool {
	for _, s := range lockScopeSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// lockRef is one resolved lock identity: the declaring object plus a stable
// human label like "transport.Coordinator.connsMu".
type lockRef struct {
	obj   types.Object
	label string
}

// lockEdge records "to acquired while from was held" at pos inside fn.
type lockEdge struct {
	from, to lockRef
	pos      token.Pos
	fn       string // enclosing function label
	via      string // callee label when propagated through a call, else ""
}

// lockWalk accumulates the per-function scan results.
type lockWalk struct {
	info    *types.Info
	fnLabel string
	inScope bool
	held    []lockRef
	edges   *[]lockEdge
	// acquires is the function's own acquisition set, feeding mayAcquire.
	acquires map[types.Object]lockRef
	// pending are module calls made with locks held, resolved after the
	// mayAcquire fixpoint.
	pending *[]pendingLockCall
	funcs   map[*types.Func]funcBody
}

type pendingLockCall struct {
	caller  *types.Func
	callee  *types.Func
	held    []lockRef
	pos     token.Pos
	fnLabel string
	inScope bool
}

func runLockorder(p *Pass) error {
	cg := buildCallGraph(p)

	var edges []lockEdge
	var pending []pendingLockCall
	acquires := make(map[*types.Func]map[types.Object]lockRef)

	for _, fn := range cg.order {
		body := cg.funcs[fn]
		w := &lockWalk{
			info:     body.pkg.Info,
			fnLabel:  cg.label(fn),
			inScope:  isLockScopePkg(body.pkg.Path),
			edges:    &edges,
			acquires: make(map[types.Object]lockRef),
			pending:  &pending,
			funcs:    cg.funcs,
		}
		w.walkStmts(fn, body.decl.Body.List)
		acquires[fn] = w.acquires
	}

	// mayAcquire fixpoint: fold callee acquisition sets into callers until
	// stable. Cycles in the call graph converge because sets only grow.
	mayAcquire := make(map[*types.Func]map[types.Object]lockRef, len(cg.order))
	for _, fn := range cg.order {
		set := make(map[types.Object]lockRef, len(acquires[fn]))
		for o, r := range acquires[fn] {
			set[o] = r
		}
		mayAcquire[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.order {
			set := mayAcquire[fn]
			for _, c := range cg.summaries[fn].calls {
				for o, r := range mayAcquire[c.fn] {
					if _, ok := set[o]; !ok {
						set[o] = r
						changed = true
					}
				}
			}
		}
	}

	// Resolve calls made under held locks into propagated edges.
	for _, pc := range pending {
		if !pc.inScope {
			continue
		}
		targets := sortedLockRefs(mayAcquire[pc.callee])
		for _, to := range targets {
			heldSame := false
			for _, h := range pc.held {
				if h.obj == to.obj {
					heldSame = true
				}
			}
			if heldSame {
				if !p.Suppressed(pc.pos) {
					p.Reportf(pc.pos, "call into %s may reacquire %s already held in %s (self-deadlock)",
						cg.label(pc.callee), to.label, pc.fnLabel)
				}
				continue
			}
			for _, h := range pc.held {
				edges = append(edges, lockEdge{from: h, to: to, pos: pc.pos,
					fn: pc.fnLabel, via: cg.label(pc.callee)})
			}
		}
	}

	reportLockCycles(p, edges)
	return nil
}

// walkStmts scans statements in source order, tracking the held-lock set.
func (w *lockWalk) walkStmts(fn *types.Func, stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkNode(fn, s)
	}
}

func (w *lockWalk) walkNode(fn *types.Func, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			// A literal's body runs with its own (empty) held set; its
			// acquisitions still count toward this function's mayAcquire.
			saved := w.held
			w.held = nil
			w.walkStmts(fn, c.Body.List)
			w.held = saved
			return false
		case *ast.GoStmt:
			// The spawned goroutine does not hold the caller's locks.
			saved := w.held
			w.held = nil
			w.walkNode(fn, c.Call)
			w.held = saved
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function end; any
			// other deferred call runs at exit with an unknowable held set.
			if tgt := calleeOfLockCall(w.info, c.Call); tgt == lockOpUnlock {
				return false
			}
			saved := w.held
			w.held = nil
			w.walkNode(fn, c.Call)
			w.held = saved
			return false
		case *ast.CallExpr:
			w.call(fn, c)
			return true
		}
		return true
	})
}

// lockOp classifies a call as lock, unlock or neither.
type lockOp int

const (
	lockOpNone lockOp = iota
	lockOpLock
	lockOpUnlock
)

// calleeOfLockCall classifies a call against the sync primitives.
func calleeOfLockCall(info *types.Info, call *ast.CallExpr) lockOp {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOpNone
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return lockOpLock
	case "Unlock", "RUnlock":
		return lockOpUnlock
	}
	return lockOpNone
}

func (w *lockWalk) call(fn *types.Func, call *ast.CallExpr) {
	switch calleeOfLockCall(w.info, call) {
	case lockOpLock:
		ref, ok := resolveLock(w.info, w.fnLabel, call)
		if !ok {
			return
		}
		if w.inScope {
			for _, h := range w.held {
				*w.edges = append(*w.edges, lockEdge{from: h, to: ref, pos: call.Pos(), fn: w.fnLabel})
			}
		}
		w.held = append(w.held, ref)
		w.acquires[ref.obj] = ref
	case lockOpUnlock:
		ref, ok := resolveLock(w.info, w.fnLabel, call)
		if !ok {
			return
		}
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i].obj == ref.obj {
				w.held = append(w.held[:i:i], w.held[i+1:]...)
				break
			}
		}
	default:
		target := callee(w.info, call)
		if target == nil {
			return
		}
		if _, inModule := w.funcs[target]; inModule && len(w.held) > 0 {
			held := make([]lockRef, len(w.held))
			copy(held, w.held)
			*w.pending = append(*w.pending, pendingLockCall{
				caller: fn, callee: target, held: held,
				pos: call.Pos(), fnLabel: w.fnLabel, inScope: w.inScope,
			})
		}
	}
}

// resolveLock identifies the mutex a Lock/Unlock call operates on: the
// declaring field or variable object, labeled for diagnostics. Indexed
// mutexes (locks[i]) and derefs of pointer values are not tracked.
func resolveLock(info *types.Info, fnLabel string, call *ast.CallExpr) (lockRef, bool) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, false
	}
	// Promoted method through one or more embedded fields: identify the
	// deepest embedded field that carries the mutex.
	if sel := info.Selections[fun]; sel != nil && len(sel.Index()) > 1 {
		t := sel.Recv()
		var field *types.Var
		for _, i := range sel.Index()[:len(sel.Index())-1] {
			for {
				if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
					t = ptr.Elem()
					continue
				}
				break
			}
			st, isStruct := t.Underlying().(*types.Struct)
			if !isStruct {
				return lockRef{}, false
			}
			field = st.Field(i)
			t = field.Type()
		}
		if field == nil {
			return lockRef{}, false
		}
		return lockRef{obj: field, label: typeLabel(sel.Recv()) + "." + field.Name()}, true
	}
	return resolveLockExpr(info, fnLabel, fun.X)
}

func resolveLockExpr(info *types.Info, fnLabel string, expr ast.Expr) (lockRef, bool) {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return lockRef{}, false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockRef{obj: v, label: v.Pkg().Name() + "." + v.Name()}, true
		}
		return lockRef{obj: v, label: fnLabel + "." + v.Name()}, true
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return lockRef{}, false
			}
			return lockRef{obj: v, label: typeLabel(sel.Recv()) + "." + v.Name()}, true
		}
		// Qualified identifier pkg.Var.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return lockRef{obj: v, label: v.Pkg().Name() + "." + v.Name()}, true
		}
	}
	return lockRef{}, false
}

// typeLabel renders a receiver type as pkgname.TypeName.
func typeLabel(t types.Type) string {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}

func sortedLockRefs(set map[types.Object]lockRef) []lockRef {
	refs := make([]lockRef, 0, len(set))
	for _, r := range set {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].label < refs[j].label })
	return refs
}

// reportLockCycles deduplicates edges by (from, to) — first acquisition site
// wins — and reports every edge that lies on a cycle.
func reportLockCycles(p *Pass, edges []lockEdge) {
	type pair struct{ from, to types.Object }
	first := make(map[pair]lockEdge)
	var order []pair
	for _, e := range edges {
		k := pair{e.from.obj, e.to.obj}
		if _, ok := first[k]; !ok {
			first[k] = e
			order = append(order, k)
		}
	}
	succs := make(map[types.Object][]types.Object)
	for _, k := range order {
		succs[k.from] = append(succs[k.from], k.to)
	}
	// reaches reports whether from can reach target through the edge set.
	reaches := func(from, target types.Object) bool {
		seen := make(map[types.Object]bool)
		stack := []types.Object{from}
		for len(stack) > 0 {
			o := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if o == target {
				return true
			}
			if seen[o] {
				continue
			}
			seen[o] = true
			stack = append(stack, succs[o]...)
		}
		return false
	}
	for _, k := range order {
		e := first[k]
		if e.from.obj == e.to.obj {
			p.Reportf(e.pos, "reacquiring %s while already held in %s (self-deadlock)", e.to.label, e.fn)
			continue
		}
		if reaches(e.to.obj, e.from.obj) {
			via := ""
			if e.via != "" {
				via = " via call to " + e.via
			}
			p.Reportf(e.pos, "acquiring %s while holding %s%s closes a lock-order cycle (%s → %s → %s) in %s",
				e.to.label, e.from.label, via, e.from.label, e.to.label, e.from.label, e.fn)
		}
	}
}
