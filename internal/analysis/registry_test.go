package analysis

import (
	"os"
	"strings"
	"testing"
)

// TestRegistryComplete is the meta-test: the registry carries exactly the ten
// analyzers of the suite, in stable order, each fully populated.
func TestRegistryComplete(t *testing.T) {
	want := []string{"hotpath", "poolpair", "determinism", "erreig", "obsnames", "nofloateq",
		"statepure", "lockorder", "golifecycle", "floatflow"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returns %d analyzers, want %d", len(all), len(want))
	}
	seen := make(map[string]bool)
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("analyzer name %q registered twice", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestDriverRunsFullSuite keeps cmd/automon-lint wired to the registry: the
// driver must run analysis.All(), so adding an analyzer there is enough to
// put it in CI.
func TestDriverRunsFullSuite(t *testing.T) {
	src, err := os.ReadFile("../../cmd/automon-lint/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "analysis.All()") {
		t.Error("cmd/automon-lint does not call analysis.All(); the driver must run the registered suite")
	}
}

// TestRepoIsLintClean runs the full suite over the real module, exactly as CI
// does: the repository itself must hold its own invariants.
func TestRepoIsLintClean(t *testing.T) {
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(mod, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
