// Package optimize provides box-constrained numerical minimization: a
// projected L-BFGS with Armijo backtracking plus a multi-start driver.
// It stands in for SciPy's L-BFGS-B in the AutoMon paper: the coordinator
// uses it to search a neighborhood B for the extreme eigenvalues of the
// Hessian (§3.1). Like the original, it is a local method with no global
// guarantee — the AutoMon protocol is designed to tolerate that (§3.7).
package optimize

import (
	"errors"
	"math"
	"math/rand"

	"automon/internal/linalg"
)

// Objective evaluates the function to minimize at x.
type Objective func(x []float64) float64

// Gradient writes ∇f(x) into grad. Optional: when absent the solver falls
// back to central finite differences.
type Gradient func(x, grad []float64)

// Options configure Minimize.
type Options struct {
	MaxIter   int     // maximum outer iterations (default 100)
	Memory    int     // L-BFGS history pairs (default 8)
	GradTol   float64 // stop when the projected gradient ∞-norm falls below (default 1e-6)
	StepTol   float64 // stop when steps stall below this size (default 1e-10)
	FDStep    float64 // finite-difference half-step for numerical gradients (default 1e-6)
	Gradient  Gradient
	MaxFunEva int // cap on objective evaluations, 0 = unlimited
}

func (o *Options) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Memory <= 0 {
		o.Memory = 8
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	if o.StepTol <= 0 {
		o.StepTol = 1e-10
	}
	if o.FDStep <= 0 {
		o.FDStep = 1e-6
	}
}

// Result reports the outcome of a minimization.
type Result struct {
	X         []float64
	F         float64
	Iters     int
	FuncEvals int
	Converged bool // projected-gradient tolerance reached
}

// ErrBadBox is returned when the box is inconsistent with the start point
// dimensions or has lo > hi.
var ErrBadBox = errors.New("optimize: inconsistent box constraints")

type counter struct {
	f     Objective
	n     int
	limit int
}

func (c *counter) eval(x []float64) float64 {
	c.n++
	return c.f(x)
}

func (c *counter) exhausted() bool { return c.limit > 0 && c.n >= c.limit }

// Minimize finds a local minimum of f over the box [lo, hi] starting from
// x0 (which is clamped into the box). It implements projected L-BFGS:
// quasi-Newton directions from a limited history, backtracking line search
// along the projected path, and active-set handling by projection.
func Minimize(f Objective, x0, lo, hi []float64, opts Options) (Result, error) {
	d := len(x0)
	if len(lo) != d || len(hi) != d {
		return Result{}, ErrBadBox
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Result{}, ErrBadBox
		}
	}
	opts.defaults()
	cnt := &counter{f: f, limit: opts.MaxFunEva}

	x := make([]float64, d)
	linalg.Clamp(x, x0, lo, hi)
	fx := cnt.eval(x)

	grad := make([]float64, d)
	gradAt := func(p, g []float64) {
		if opts.Gradient != nil {
			opts.Gradient(p, g)
			return
		}
		numGrad(cnt, p, g, lo, hi, opts.FDStep)
	}
	gradAt(x, grad)

	// L-BFGS history.
	m := opts.Memory
	sHist := make([][]float64, 0, m)
	yHist := make([][]float64, 0, m)
	rho := make([]float64, 0, m)

	dir := make([]float64, d)
	xNew := make([]float64, d)
	gradNew := make([]float64, d)
	pg := make([]float64, d)
	skippedPairs := 0

	res := Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iters = iter + 1
		projGrad(pg, x, grad, lo, hi)
		if infNorm(pg) < opts.GradTol {
			res.Converged = true
			break
		}
		if cnt.exhausted() {
			break
		}

		twoLoop(dir, grad, sHist, yHist, rho)
		for i := range dir {
			dir[i] = -dir[i]
		}
		// Fall back to steepest descent when the quasi-Newton direction is
		// not a descent direction (can happen right after projections).
		if linalg.Dot(dir, grad) >= 0 {
			for i := range dir {
				dir[i] = -grad[i]
			}
		}

		fNew, accepted := lineSearch(cnt, x, dir, grad, fx, lo, hi, xNew, opts)
		if !accepted && len(sHist) > 0 {
			// The quasi-Newton model may be stale after box projections;
			// drop the history and retry along the raw gradient.
			sHist, yHist, rho = sHist[:0], yHist[:0], rho[:0]
			for i := range dir {
				dir[i] = -grad[i]
			}
			fNew, accepted = lineSearch(cnt, x, dir, grad, fx, lo, hi, xNew, opts)
		}
		if !accepted {
			break // stalled: local minimum w.r.t. the search direction
		}

		gradAt(xNew, gradNew)

		// Update history with s = xNew - x, y = gradNew - grad.
		s := make([]float64, d)
		y := make([]float64, d)
		linalg.Sub(s, xNew, x)
		linalg.Sub(y, gradNew, grad)
		sy := linalg.Dot(s, y)
		if sy > 1e-12 {
			if len(sHist) == m {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rho = rho[1:]
			}
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rho = append(rho, 1/sy)
			skippedPairs = 0
		} else {
			// Negative curvature along the step: the quasi-Newton model is
			// unreliable here. After repeated skips, restart the history so
			// the next direction is a fresh steepest descent.
			skippedPairs++
			if skippedPairs >= 2 {
				sHist, yHist, rho = sHist[:0], yHist[:0], rho[:0]
				skippedPairs = 0
			}
		}

		copy(x, xNew)
		copy(grad, gradNew)
		fx = fNew
		if cnt.exhausted() {
			break
		}
	}
	res.X = x
	res.F = fx
	res.FuncEvals = cnt.n
	return res, nil
}

// lineSearch performs backtracking Armijo search along the projected path
// x(t) = clamp(x + t·dir), writing the accepted point into xNew.
func lineSearch(cnt *counter, x, dir, grad []float64, fx float64, lo, hi, xNew []float64, opts Options) (fNew float64, accepted bool) {
	const c1 = 1e-4
	// Scale the first trial step so steepest-descent directions with huge
	// gradients do not immediately leave the region of model validity.
	t := 1.0
	if n := infNorm(dir); n > 1e3 {
		t = 1e3 / n
	}
	probe := make([]float64, len(x))
	armijo := func(t float64) (float64, bool) {
		linalg.AXPY(probe, t, dir, x)
		linalg.Clamp(probe, probe, lo, hi)
		if linalg.MaxAbsDiff(probe, x) < opts.StepTol {
			return 0, false
		}
		f := cnt.eval(probe)
		var gTd float64
		for i := range x {
			gTd += grad[i] * (probe[i] - x[i])
		}
		return f, f <= fx+c1*gTd && f < fx
	}
	for ls := 0; ls < 50; ls++ {
		f, ok := armijo(t)
		if ok {
			copy(xNew, probe)
			fNew = f
			if ls == 0 {
				// Accepted on the first probe: the step may be far too
				// conservative (e.g. a stale quasi-Newton scaling). Expand
				// while the objective keeps improving under Armijo.
				for exp := 0; exp < 20 && !cnt.exhausted(); exp++ {
					f2, ok2 := armijo(t * 2)
					if !ok2 || f2 >= fNew {
						break
					}
					t *= 2
					copy(xNew, probe)
					fNew = f2
				}
			}
			return fNew, true
		}
		if cnt.exhausted() {
			return 0, false
		}
		t *= 0.5
	}
	return 0, false
}

// twoLoop computes H·g (the L-BFGS inverse-Hessian application) into dst.
func twoLoop(dst, g []float64, sHist, yHist [][]float64, rho []float64) {
	copy(dst, g)
	k := len(sHist)
	if k == 0 {
		return
	}
	alpha := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		alpha[i] = rho[i] * linalg.Dot(sHist[i], dst)
		linalg.AXPY(dst, -alpha[i], yHist[i], dst)
	}
	// Initial Hessian scaling γ = sᵀy / yᵀy from the most recent pair.
	gamma := 1 / (rho[k-1] * linalg.Dot(yHist[k-1], yHist[k-1]))
	linalg.Scale(dst, gamma, dst)
	for i := 0; i < k; i++ {
		beta := rho[i] * linalg.Dot(yHist[i], dst)
		linalg.AXPY(dst, alpha[i]-beta, sHist[i], dst)
	}
}

// projGrad computes the projected gradient: components pointing out of the
// box at active bounds are zeroed.
func projGrad(dst, x, grad, lo, hi []float64) {
	for i := range x {
		g := grad[i]
		if x[i] <= lo[i] && g > 0 {
			g = 0
		}
		if x[i] >= hi[i] && g < 0 {
			g = 0
		}
		dst[i] = g
	}
}

func infNorm(v []float64) float64 {
	var m float64
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// numGrad computes a central finite-difference gradient that respects the
// box: steps that would leave the box become one-sided.
func numGrad(cnt *counter, x, grad, lo, hi []float64, h float64) {
	xp := make([]float64, len(x))
	copy(xp, x)
	for i := range x {
		up := math.Min(x[i]+h, hi[i])
		down := math.Max(x[i]-h, lo[i])
		if up == down { //automon:allow nofloateq exact degeneracy test: identical clamped endpoints would make the difference step 0/0
			grad[i] = 0
			continue
		}
		xp[i] = up
		fp := cnt.eval(xp)
		xp[i] = down
		fm := cnt.eval(xp)
		xp[i] = x[i]
		grad[i] = (fp - fm) / (up - down)
	}
}

// MultiStart runs Minimize from x0 plus (starts-1) uniform random points in
// the box and returns the best result found. The rng makes runs
// reproducible; a nil rng uses a fixed seed.
func MultiStart(f Objective, x0, lo, hi []float64, starts int, rng *rand.Rand, opts Options) (Result, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if starts < 1 {
		starts = 1
	}
	best, err := Minimize(f, x0, lo, hi, opts)
	if err != nil {
		return best, err
	}
	total := best.FuncEvals
	pt := make([]float64, len(x0))
	for s := 1; s < starts; s++ {
		for i := range pt {
			pt[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		r, err := Minimize(f, pt, lo, hi, opts)
		if err != nil {
			return best, err
		}
		total += r.FuncEvals
		if r.F < best.F {
			best = r
		}
	}
	best.FuncEvals = total
	return best, nil
}
