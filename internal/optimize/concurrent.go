package optimize

import (
	"runtime"
	"sync"
)

// Task is one unit of a concurrent multi-start: an objective with its own
// (private) closure state, a start point, and per-task options. Tasks must
// not share mutable state through their closures unless that state is
// independently synchronized — the whole point of per-task objectives is to
// give each minimization private scratch.
type Task struct {
	F    Objective
	X0   []float64
	Opts Options
}

// RunConcurrent minimizes every task over the shared box [lo, hi] using at
// most workers goroutines (workers <= 0 means GOMAXPROCS; workers == 1 runs
// inline with no goroutines). Results come back in task order, so any
// selection the caller performs is deterministic regardless of scheduling,
// and the returned error is the one from the lowest-index failing task —
// exactly what a sequential loop over the tasks would surface.
func RunConcurrent(tasks []Task, lo, hi []float64, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]Result, len(tasks))
	errs := make([]error, len(tasks))
	if workers <= 1 {
		for i, t := range tasks {
			results[i], errs[i] = Minimize(t.F, t.X0, lo, hi, t.Opts)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					t := tasks[i]
					results[i], errs[i] = Minimize(t.F, t.X0, lo, hi, t.Opts)
				}
			}()
		}
		for i := range tasks {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
