package optimize

import (
	"math"
	"math/rand"
	"testing"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	return (1-x[0])*(1-x[0]) + 100*(x[1]-x[0]*x[0])*(x[1]-x[0]*x[0])
}

func box(d int, lo, hi float64) ([]float64, []float64) {
	l := make([]float64, d)
	h := make([]float64, d)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return l, h
}

func TestMinimizeSphere(t *testing.T) {
	lo, hi := box(5, -10, 10)
	x0 := []float64{3, -4, 5, 1, -2}
	r, err := Minimize(sphere, x0, lo, hi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("did not converge: %+v", r)
	}
	if r.F > 1e-10 {
		t.Fatalf("sphere minimum = %v at %v", r.F, r.X)
	}
}

func TestMinimizeSphereWithAnalyticGradient(t *testing.T) {
	lo, hi := box(5, -10, 10)
	x0 := []float64{3, -4, 5, 1, -2}
	opts := Options{Gradient: func(x, g []float64) {
		for i := range x {
			g[i] = 2 * x[i]
		}
	}}
	r, err := Minimize(sphere, x0, lo, hi, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.F > 1e-10 {
		t.Fatalf("minimum = %v", r.F)
	}
	// With an analytic gradient, objective evaluations come only from the
	// line search — far fewer than finite differences would need.
	if r.FuncEvals > 60 {
		t.Fatalf("too many evaluations with analytic gradient: %d", r.FuncEvals)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	lo, hi := box(2, -5, 5)
	r, err := Minimize(rosenbrock, []float64{-1.2, 1}, lo, hi, Options{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-3 || math.Abs(r.X[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock solution = %v (f=%v)", r.X, r.F)
	}
}

func TestMinimizeRespectsBox(t *testing.T) {
	// Minimum of (x-3)² over [-1, 1] is at x = 1.
	f := func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) }
	r, err := Minimize(f, []float64{0}, []float64{-1}, []float64{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-8 {
		t.Fatalf("bound-constrained solution = %v, want 1", r.X[0])
	}
}

func TestMinimizeStartOutsideBoxIsClamped(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	r, err := Minimize(f, []float64{100}, []float64{-1}, []float64{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] < -1 || r.X[0] > 2 {
		t.Fatalf("solution %v escaped the box", r.X[0])
	}
	if math.Abs(r.X[0]) > 1e-5 {
		t.Fatalf("solution = %v, want 0", r.X[0])
	}
}

func TestMinimizeBadBox(t *testing.T) {
	if _, err := Minimize(sphere, []float64{0}, []float64{1}, []float64{-1}, Options{}); err == nil {
		t.Fatal("expected ErrBadBox for lo > hi")
	}
	if _, err := Minimize(sphere, []float64{0, 0}, []float64{0}, []float64{1}, Options{}); err == nil {
		t.Fatal("expected ErrBadBox for dimension mismatch")
	}
}

func TestMinimizeMaxFunEvals(t *testing.T) {
	r, err := Minimize(rosenbrock, []float64{-1.2, 1}, []float64{-5, -5}, []float64{5, 5},
		Options{MaxIter: 1000, MaxFunEva: 30})
	if err != nil {
		t.Fatal(err)
	}
	// The line search may finish its current probe, but the cap must
	// roughly hold.
	if r.FuncEvals > 40 {
		t.Fatalf("evaluation cap ignored: %d evals", r.FuncEvals)
	}
}

func TestMinimizeDegenerateBox(t *testing.T) {
	// lo == hi pins the variable; solver must return immediately with that point.
	f := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	r, err := Minimize(f, []float64{5, 3}, []float64{2, -10}, []float64{2, 10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] != 2 {
		t.Fatalf("pinned variable moved: %v", r.X[0])
	}
	if math.Abs(r.X[1]) > 1e-6 {
		t.Fatalf("free variable not optimized: %v", r.X[1])
	}
}

// A multimodal function where multi-start matters: two wells, global at x=2.
func twoWells(x []float64) float64 {
	a := (x[0] + 2) * (x[0] + 2)
	b := (x[0]-2)*(x[0]-2) - 1
	return math.Min(a, b)
}

func TestMultiStartFindsGlobalWell(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r, err := MultiStart(twoWells, []float64{-2}, []float64{-5}, []float64{5}, 8, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1e-3 {
		t.Fatalf("multi-start stuck in local well: x=%v f=%v", r.X, r.F)
	}
	if r.F > -0.999 {
		t.Fatalf("global value not reached: %v", r.F)
	}
}

func TestMultiStartNilRNG(t *testing.T) {
	if _, err := MultiStart(sphere, []float64{1}, []float64{-2}, []float64{2}, 3, nil, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeQuadraticBowlRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		d := 1 + rng.Intn(6)
		center := make([]float64, d)
		for i := range center {
			center[i] = rng.NormFloat64()
		}
		f := func(x []float64) float64 {
			var s float64
			for i := range x {
				v := x[i] - center[i]
				s += float64(i+1) * v * v
			}
			return s
		}
		lo, hi := box(d, -10, 10)
		x0 := make([]float64, d)
		r, err := Minimize(f, x0, lo, hi, Options{MaxIter: 200})
		if err != nil {
			t.Fatal(err)
		}
		for i := range center {
			if math.Abs(r.X[i]-center[i]) > 1e-4 {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, r.X[i], center[i])
			}
		}
	}
}
