package core

import (
	"fmt"
	"math"
	"math/rand"

	"automon/internal/linalg"
	"automon/internal/optimize"
)

// DecompOptions configure the ADCD decomposition step.
type DecompOptions struct {
	// OptStarts is the number of multi-start points for the eigenvalue
	// search (default 2: x0 plus one random point in B).
	OptStarts int
	// OptMaxIter caps L-BFGS iterations per start (default 40).
	OptMaxIter int
	// OptMaxFunEvals caps objective evaluations per start (default 400).
	OptMaxFunEvals int
	// Seed makes the multi-start reproducible.
	Seed int64
	// UsePowerIteration estimates the extreme Hessian eigenvalues by
	// shifted power iteration over Hessian-vector products instead of a
	// dense eigendecomposition — the §6 scaling extension. Cheaper per
	// evaluation at high dimension; slightly less accurate when the
	// spectral gap is small (the §3.7 sanity check covers the slack).
	UsePowerIteration bool
	// PowerIters bounds the power-iteration count (default 100).
	PowerIters int
}

func (o *DecompOptions) defaults() {
	if o.OptStarts <= 0 {
		o.OptStarts = 2
	}
	if o.OptMaxIter <= 0 {
		o.OptMaxIter = 40
	}
	if o.OptMaxFunEvals <= 0 {
		o.OptMaxFunEvals = 400
	}
}

// EDecomposition holds the one-time ADCD-E artifacts for a constant-Hessian
// function: the split H = H⁻ + H⁺ and the extreme eigenvalues.
type EDecomposition struct {
	HMinus, HPlus  *linalg.Mat
	LamMin, LamMax float64
	Kind           DCKind
}

// DecomposeE computes the ADCD-E decomposition (Lemma 2). It must only be
// called for functions with constant Hessians; the Hessian is evaluated at
// x0 (any point gives the same matrix).
func DecomposeE(f *Function, x0 []float64) (*EDecomposition, error) {
	d := f.Dim()
	h := linalg.NewMat(d, d)
	f.Hessian(x0, h)
	minus, plus, err := linalg.SplitPSD(h)
	if err != nil {
		return nil, fmt.Errorf("core: ADCD-E eigendecomposition: %w", err)
	}
	lamMin, lamMax, err := linalg.ExtremeEigenvalues(h)
	if err != nil {
		return nil, err
	}
	return &EDecomposition{
		HMinus: minus,
		HPlus:  plus,
		LamMin: lamMin,
		LamMax: lamMax,
		Kind:   chooseKindE(lamMin, lamMax),
	}, nil
}

// ExtremeEigsOverBox solves the two §3.1 optimization problems
//
//	λ̂min = min_{x∈B} λmin(H(x)),   λ̂max = max_{x∈B} λmax(H(x))
//
// using projected L-BFGS with the analytic Hellmann–Feynman gradient and
// multi-start. Like the SciPy solver in the paper, it may return local
// optima; the protocol's sanity check (§3.7) guards against that.
func ExtremeEigsOverBox(f *Function, x0, lo, hi []float64, opts DecompOptions) (lamMin, lamMax float64, err error) {
	opts.defaults()
	d := f.Dim()
	rng := rand.New(rand.NewSource(opts.Seed + 1))

	eigsAt := f.ExtremeEigsAt
	if opts.UsePowerIteration {
		iters := opts.PowerIters
		if iters <= 0 {
			iters = 100
		}
		eigsAt = func(x []float64) (float64, float64, []float64, []float64, error) {
			return f.ExtremeEigsAtPower(x, iters, opts.Seed+2)
		}
	}

	grad := make([]float64, d)
	var evalErr error
	minObjective := func(x []float64) float64 {
		lm, _, _, _, e := eigsAt(x)
		if e != nil {
			evalErr = e
			return math.Inf(1)
		}
		return lm
	}
	minGradient := func(x, g []float64) {
		_, _, vMin, _, e := eigsAt(x)
		if e != nil {
			evalErr = e
			for i := range g {
				g[i] = 0
			}
			return
		}
		f.EigGrad(x, vMin, grad)
		copy(g, grad)
	}
	maxObjective := func(x []float64) float64 {
		_, lM, _, _, e := eigsAt(x)
		if e != nil {
			evalErr = e
			return math.Inf(1)
		}
		return -lM
	}
	maxGradient := func(x, g []float64) {
		_, _, _, vMax, e := eigsAt(x)
		if e != nil {
			evalErr = e
			for i := range g {
				g[i] = 0
			}
			return
		}
		f.EigGrad(x, vMax, grad)
		for i := range g {
			g[i] = -grad[i]
		}
	}

	optOpts := optimize.Options{
		MaxIter:   opts.OptMaxIter,
		MaxFunEva: opts.OptMaxFunEvals,
		GradTol:   1e-5,
	}
	optOpts.Gradient = minGradient
	rMin, err := optimize.MultiStart(minObjective, x0, lo, hi, opts.OptStarts, rng, optOpts)
	if err != nil {
		return 0, 0, err
	}
	optOpts.Gradient = maxGradient
	rMax, err := optimize.MultiStart(maxObjective, x0, lo, hi, opts.OptStarts, rng, optOpts)
	if err != nil {
		return 0, 0, err
	}
	if evalErr != nil {
		return 0, 0, evalErr
	}
	return rMin.F, -rMax.F, nil
}

// BuildZoneX derives an ADCD-X safe zone around x0 with thresholds L, U and
// neighborhood box [bLo, bHi] (already intersected with the domain).
func BuildZoneX(f *Function, x0 []float64, l, u float64, bLo, bHi []float64, opts DecompOptions) (*SafeZone, error) {
	lamMin, lamMax, err := ExtremeEigsOverBox(f, x0, bLo, bHi, opts)
	if err != nil {
		return nil, err
	}
	// Lemma 1: λ⁻min = min{0, λmin}, λ⁺max = max{0, λmax}.
	lamAbsNeg := 0.0
	if lamMin < 0 {
		lamAbsNeg = -lamMin
	}
	lamPosMax := math.Max(0, lamMax)

	// Eigenvalues of H(x0) for the DC heuristic.
	h0Min, h0Max, _, _, err := f.ExtremeEigsAt(x0)
	if err != nil {
		return nil, err
	}
	kind := chooseKindX(h0Min, h0Max, lamAbsNeg, lamPosMax)

	grad := make([]float64, f.Dim())
	f0 := f.Grad(x0, grad)
	z := &SafeZone{
		Method: MethodX,
		Kind:   kind,
		X0:     linalg.Clone(x0),
		F0:     f0,
		GradF0: grad,
		L:      l,
		U:      u,
		BLo:    linalg.Clone(bLo),
		BHi:    linalg.Clone(bHi),
	}
	if kind == ConvexDiff {
		z.Lam = lamAbsNeg
	} else {
		z.Lam = lamPosMax
	}
	return z, nil
}

// BuildZoneE derives an ADCD-E safe zone around x0 from a precomputed
// decomposition. ADCD-E constraints are valid over the whole domain, so no
// neighborhood box is attached.
func BuildZoneE(f *Function, dec *EDecomposition, x0 []float64, l, u float64) *SafeZone {
	grad := make([]float64, f.Dim())
	f0 := f.Grad(x0, grad)
	return &SafeZone{
		Method: MethodE,
		Kind:   dec.Kind,
		X0:     linalg.Clone(x0),
		F0:     f0,
		GradF0: grad,
		L:      l,
		U:      u,
		HMinus: dec.HMinus,
		HPlus:  dec.HPlus,
	}
}

// BuildZoneNone derives the no-ADCD ablation zone: the admissible region
// itself is used as the local constraint.
func BuildZoneNone(f *Function, x0 []float64, l, u float64) *SafeZone {
	grad := make([]float64, f.Dim())
	f0 := f.Grad(x0, grad)
	return &SafeZone{
		Method: MethodNone,
		X0:     linalg.Clone(x0),
		F0:     f0,
		GradF0: grad,
		L:      l,
		U:      u,
	}
}

// NeighborhoodBox returns the box B = [x0−r, x0+r] ∩ D.
func NeighborhoodBox(f *Function, x0 []float64, r float64) (lo, hi []float64) {
	d := len(x0)
	lo = make([]float64, d)
	hi = make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = x0[i] - r
		hi[i] = x0[i] + r
		if f.DomainLo != nil && lo[i] < f.DomainLo[i] {
			lo[i] = f.DomainLo[i]
		}
		if f.DomainHi != nil && hi[i] > f.DomainHi[i] {
			hi[i] = f.DomainHi[i]
		}
		if lo[i] > hi[i] { // degenerate: x0 clamped to a domain face
			lo[i], hi[i] = hi[i], lo[i]
		}
	}
	return lo, hi
}
