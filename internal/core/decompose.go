package core

import (
	"fmt"
	"math"
	"math/rand"

	"automon/internal/linalg"
	"automon/internal/obs"
	"automon/internal/optimize"
)

// DecompOptions configure the ADCD decomposition step.
type DecompOptions struct {
	// OptStarts is the number of multi-start points for the eigenvalue
	// search (default 2: x0 plus one random point in B).
	OptStarts int
	// OptMaxIter caps L-BFGS iterations per start (default 40).
	OptMaxIter int
	// OptMaxFunEvals caps objective evaluations per start (default 400).
	OptMaxFunEvals int
	// Seed makes the multi-start reproducible.
	Seed int64
	// UsePowerIteration estimates the extreme Hessian eigenvalues by
	// shifted power iteration over Hessian-vector products instead of a
	// dense eigendecomposition — the §6 scaling extension. Cheaper per
	// evaluation at high dimension; slightly less accurate when the
	// spectral gap is small (the §3.7 sanity check covers the slack).
	UsePowerIteration bool
	// PowerIters bounds the power-iteration count (default 100).
	PowerIters int
	// Workers bounds the goroutines running the λ̂min/λ̂max searches and
	// their multi-starts. 0 means one worker per core (GOMAXPROCS); 1 runs
	// sequentially. The start points are pre-drawn from Seed and the best
	// result is selected in start order, so the outcome is bit-identical at
	// every worker count.
	Workers int
	// DisableEvalMemo turns off the per-search eigensolve memoization that
	// lets the objective and gradient closures share eigendecompositions at
	// the same point. Only useful for measuring what the memo saves.
	DisableEvalMemo bool
	// EigsolveCounter, when non-nil, is incremented once per eigensolver
	// evaluation (a dense eigendecomposition, or one power-iteration solve).
	// Memo hits are not counted — the counter measures actual solver work.
	EigsolveCounter *obs.Counter
	// Backend selects the eigen-engine bounding the extreme eigenvalues over
	// the neighborhood box: the default L-BFGS multi-start search, the
	// certified interval engine, or the hybrid (see EigBackend).
	Backend EigBackend
	// HybridSlack is the BackendHybrid escalation threshold: the L-BFGS
	// refinement runs only when the certified range is wider than the H(x0)
	// spectral spread by more than this. 0 means DefaultHybridSlack; negative
	// disables refinement entirely (pure certificate).
	HybridSlack float64
	// OptEvalCounter, when non-nil, counts eigensolver evaluations performed
	// *inside* the L-BFGS search (the x0 solve every backend needs for the
	// §3.4 heuristic is excluded). BackendInterval leaves it untouched —
	// that zero is the "no optimizer work" claim, counter-verified.
	OptEvalCounter *obs.Counter
}

func (o *DecompOptions) defaults() {
	if o.OptStarts <= 0 {
		o.OptStarts = 2
	}
	if o.OptMaxIter <= 0 {
		o.OptMaxIter = 40
	}
	if o.OptMaxFunEvals <= 0 {
		o.OptMaxFunEvals = 400
	}
}

// EDecomposition holds the one-time ADCD-E artifacts for a constant-Hessian
// function: the split H = H⁻ + H⁺ and the extreme eigenvalues.
type EDecomposition struct {
	HMinus, HPlus  *linalg.Mat
	LamMin, LamMax float64
	Kind           DCKind
}

// DecomposeE computes the ADCD-E decomposition (Lemma 2). It must only be
// called for functions with constant Hessians; the Hessian is evaluated at
// x0 (any point gives the same matrix).
func DecomposeE(f *Function, x0 []float64) (*EDecomposition, error) {
	d := f.Dim()
	h := linalg.NewMat(d, d)
	f.Hessian(x0, h)
	minus, plus, err := linalg.SplitPSD(h)
	if err != nil {
		return nil, fmt.Errorf("core: ADCD-E eigendecomposition: %w", err)
	}
	lamMin, lamMax, err := linalg.ExtremeEigenvalues(h)
	if err != nil {
		return nil, err
	}
	return &EDecomposition{
		HMinus: minus,
		HPlus:  plus,
		LamMin: lamMin,
		LamMax: lamMax,
		Kind:   chooseKindE(lamMin, lamMax),
	}, nil
}

// eigsAtFunc returns the extreme-eigenpair evaluator selected by opts (dense
// eigendecomposition or power iteration), wrapped so every actual solver
// invocation bumps opts.EigsolveCounter. Memoization layers above call this
// only on cache misses, which is exactly what the counter should measure.
func eigsAtFunc(f *Function, opts DecompOptions) func(x []float64) (float64, float64, []float64, []float64, error) {
	counter := opts.EigsolveCounter
	if opts.UsePowerIteration {
		iters := opts.PowerIters
		if iters <= 0 {
			iters = 100
		}
		return func(x []float64) (float64, float64, []float64, []float64, error) {
			counter.Inc()
			return f.ExtremeEigsAtPower(x, iters, opts.Seed+2)
		}
	}
	return func(x []float64) (float64, float64, []float64, []float64, error) {
		counter.Inc()
		return f.ExtremeEigsAt(x)
	}
}

// eigCacheSize is the ring capacity of the per-task eigensolve memo. The
// L-BFGS line search may probe a few points between consecutive gradient
// calls (Armijo expansion keeps going past the accepted point), so a
// last-point cache alone misses some objective/gradient pairs; a handful of
// entries covers the expansion window.
const eigCacheSize = 4

type eigResult struct {
	lamMin, lamMax float64
	vMin, vMax     []float64
}

// eigEvaluator computes extreme Hessian eigenpairs with a small keyed memo
// so the objective and gradient closures of one optimization task share
// eigendecompositions instead of recomputing them at the same point (the
// optimizer evaluates f and ∇f back-to-back at identical points). Every task
// owns a private evaluator — no locks, no shared scratch, no data races.
type eigEvaluator struct {
	f      *Function
	eigsAt func(x []float64) (float64, float64, []float64, []float64, error)
	memo   bool

	keys [eigCacheSize][]float64
	vals [eigCacheSize]eigResult
	n    int // valid entries
	next int // ring write position

	err error // first eigensolver failure, sticky
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //automon:allow nofloateq memo-key identity must be bitwise: only an exact hit may reuse a cached eigensolve
			return false
		}
	}
	return true
}

// seed pre-populates the memo with a known eigenpair (typically at x0, which
// both searches evaluate first).
func (e *eigEvaluator) seed(x []float64, r eigResult) {
	if !e.memo {
		return
	}
	e.store(x, r)
}

func (e *eigEvaluator) store(x []float64, r eigResult) {
	if e.keys[e.next] == nil {
		e.keys[e.next] = make([]float64, len(x))
	}
	copy(e.keys[e.next], x)
	e.vals[e.next] = r
	e.next = (e.next + 1) % eigCacheSize
	if e.n < eigCacheSize {
		e.n++
	}
}

// at returns the extreme eigenpairs of H(x), from the memo when possible.
// On solver failure it records the first error and reports ok=false; the
// closures then degrade exactly like the pre-memo implementation (+Inf
// objective, zero gradient) and the caller surfaces e.err afterwards.
func (e *eigEvaluator) at(x []float64) (eigResult, bool) {
	if e.memo {
		for i := 0; i < e.n; i++ {
			if floatsEqual(e.keys[i], x) {
				return e.vals[i], true
			}
		}
	}
	lamMin, lamMax, vMin, vMax, err := e.eigsAt(x)
	if err != nil {
		if e.err == nil {
			e.err = err
		}
		return eigResult{}, false
	}
	r := eigResult{lamMin: lamMin, lamMax: lamMax, vMin: vMin, vMax: vMax}
	if e.memo {
		e.store(x, r)
	}
	return r, true
}

func (e *eigEvaluator) minObjective(x []float64) float64 {
	r, ok := e.at(x)
	if !ok {
		return math.Inf(1)
	}
	return r.lamMin
}

func (e *eigEvaluator) minGradient(x, g []float64) {
	r, ok := e.at(x)
	if !ok {
		for i := range g {
			g[i] = 0
		}
		return
	}
	e.f.EigGrad(x, r.vMin, g)
}

func (e *eigEvaluator) maxObjective(x []float64) float64 {
	r, ok := e.at(x)
	if !ok {
		return math.Inf(1)
	}
	return -r.lamMax
}

func (e *eigEvaluator) maxGradient(x, g []float64) {
	r, ok := e.at(x)
	if !ok {
		for i := range g {
			g[i] = 0
		}
		return
	}
	e.f.EigGrad(x, r.vMax, g)
	for i := range g {
		g[i] = -g[i]
	}
}

// ExtremeEigsOverBox solves the two §3.1 optimization problems
//
//	λ̂min = min_{x∈B} λmin(H(x)),   λ̂max = max_{x∈B} λmax(H(x))
//
// using projected L-BFGS with the analytic Hellmann–Feynman gradient and
// multi-start. Like the SciPy solver in the paper, it may return local
// optima; the protocol's sanity check (§3.7) guards against that.
//
// All 2·OptStarts searches run on a worker pool bounded by opts.Workers,
// each with a private eigensolve memo. Start points are pre-drawn from Seed
// in the order the sequential implementation consumed them and the best
// result per search is picked in start order, so the returned bounds are
// bit-identical at every worker count.
func ExtremeEigsOverBox(f *Function, x0, lo, hi []float64, opts DecompOptions) (lamMin, lamMax float64, err error) {
	opts.defaults()
	return extremeEigsOverBox(f, x0, lo, hi, opts, nil)
}

func extremeEigsOverBox(f *Function, x0, lo, hi []float64, opts DecompOptions, seedAtX0 *eigResult) (lamMin, lamMax float64, err error) {
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	eigsAt := eigsAtFunc(f, opts)
	if opts.OptEvalCounter != nil {
		// Count search-driven eigensolves separately from the total: memo
		// layers sit above this closure, so only actual solver work lands here.
		inner := eigsAt
		counter := opts.OptEvalCounter
		eigsAt = func(x []float64) (float64, float64, []float64, []float64, error) {
			counter.Inc()
			return inner(x)
		}
	}
	nStarts := opts.OptStarts

	// Pre-draw the multi-start points in the legacy order (min-search extras
	// first, then max-search extras) so the rng stream — and therefore every
	// result — matches the sequential implementation for a fixed Seed.
	drawExtras := func() [][]float64 {
		pts := make([][]float64, 0, nStarts)
		pts = append(pts, linalg.Clone(x0))
		for s := 1; s < nStarts; s++ {
			pt := make([]float64, len(x0))
			for i := range pt {
				pt[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			pts = append(pts, pt)
		}
		return pts
	}
	minStarts := drawExtras()
	maxStarts := drawExtras()

	optOpts := optimize.Options{
		MaxIter:   opts.OptMaxIter,
		MaxFunEva: opts.OptMaxFunEvals,
		GradTol:   1e-5,
	}
	evals := make([]*eigEvaluator, 0, 2*nStarts)
	tasks := make([]optimize.Task, 0, 2*nStarts)
	addTask := func(start []float64, min bool) {
		ev := &eigEvaluator{f: f, eigsAt: eigsAt, memo: !opts.DisableEvalMemo}
		if seedAtX0 != nil {
			ev.seed(x0, *seedAtX0)
		}
		t := optimize.Task{X0: start, Opts: optOpts}
		if min {
			t.F = ev.minObjective
			t.Opts.Gradient = ev.minGradient
		} else {
			t.F = ev.maxObjective
			t.Opts.Gradient = ev.maxGradient
		}
		evals = append(evals, ev)
		tasks = append(tasks, t)
	}
	for _, start := range minStarts {
		addTask(start, true)
	}
	for _, start := range maxStarts {
		addTask(start, false)
	}

	results, err := optimize.RunConcurrent(tasks, lo, hi, opts.Workers)
	if err != nil {
		return 0, 0, err
	}
	for _, ev := range evals {
		if ev.err != nil {
			return 0, 0, ev.err
		}
	}
	// Best per search by strict improvement in start order, replicating the
	// sequential MultiStart tie-breaking (earliest start wins ties).
	bestMin := results[0].F
	for i := 1; i < nStarts; i++ {
		if results[i].F < bestMin {
			bestMin = results[i].F
		}
	}
	bestMax := results[nStarts].F
	for i := nStarts + 1; i < 2*nStarts; i++ {
		if results[i].F < bestMax {
			bestMax = results[i].F
		}
	}
	return bestMin, -bestMax, nil
}

// XDecomposition holds the reusable artifacts of one ADCD-X decomposition:
// the Lemma-1 curvature bounds over B and the H(x0) extreme eigenvalues
// driving the §3.4 DC heuristic. Reference-point data (f0, ∇f0) and the
// thresholds are deliberately not part of it: a cached XDecomposition may be
// reused for a nearby (x0, r) zone, but those are always rebuilt exactly.
type XDecomposition struct {
	LamAbsNeg float64 // |λ⁻min| over B (Lemma 1)
	LamPosMax float64 // λ⁺max over B (Lemma 1)
	H0Min     float64 // λmin(H(x0)), §3.4 heuristic input
	H0Max     float64 // λmax(H(x0)), §3.4 heuristic input

	// Backend records which eigen-engine produced the Lemma-1 bounds.
	Backend EigBackend
	// Certified reports that [CertMin, CertMax] is a sound enclosure of
	// every Hessian eigenvalue over B (interval and hybrid backends).
	Certified        bool
	CertMin, CertMax float64
	// Refined reports that a hybrid escalation ran the L-BFGS search on top
	// of the certificate.
	Refined bool
}

// DecomposeX bounds the extreme Hessian eigenvalues over [bLo, bHi] with the
// engine selected by opts.Backend and returns the decomposition artifacts.
// The eigensolve at x0 is computed once and shared across every backend: it
// provides the H(x0) spectrum for the §3.4 DC heuristic, seeds the L-BFGS
// search memos (both searches evaluate x0 first), and calibrates the hybrid
// escalation rule.
func DecomposeX(f *Function, x0, bLo, bHi []float64, opts DecompOptions) (*XDecomposition, error) {
	opts.defaults()
	eigsAt := eigsAtFunc(f, opts)
	lm0, lM0, vMin0, vMax0, err := eigsAt(x0)
	if err != nil {
		return nil, err
	}
	spec := X0Spectrum{LamMin: lm0, LamMax: lM0, VMin: vMin0, VMax: vMax0}
	h0Min, h0Max := lm0, lM0
	if opts.UsePowerIteration {
		// The searches use the power-iteration estimates, but the heuristic
		// keeps the exact H(x0) spectrum so the chosen DC kind matches the
		// dense path (one extra dense solve, as before this refactor).
		opts.EigsolveCounter.Inc()
		h0Min, h0Max, _, _, err = f.ExtremeEigsAt(x0)
		if err != nil {
			return nil, err
		}
	}
	res, err := BounderFor(opts.Backend).BoundEigs(f, x0, bLo, bHi, spec, opts)
	if err != nil {
		return nil, err
	}
	// Lemma 1: λ⁻min = min{0, λmin}, λ⁺max = max{0, λmax}.
	lamAbsNeg := 0.0
	if res.LamMin < 0 {
		lamAbsNeg = -res.LamMin
	}
	return &XDecomposition{
		LamAbsNeg: lamAbsNeg,
		LamPosMax: math.Max(0, res.LamMax),
		H0Min:     h0Min,
		H0Max:     h0Max,
		Backend:   opts.Backend,
		Certified: res.Certified,
		CertMin:   res.CertMin,
		CertMax:   res.CertMax,
		Refined:   res.Refined,
	}, nil
}

// BuildZoneXFrom assembles an ADCD-X safe zone around x0 with thresholds
// L, U and neighborhood box [bLo, bHi] from precomputed decomposition
// artifacts. f0 and ∇f0 are evaluated fresh at x0, so a dec reused from the
// coordinator's zone cache still yields exact reference-point data.
func BuildZoneXFrom(f *Function, x0 []float64, l, u float64, bLo, bHi []float64, dec *XDecomposition) *SafeZone {
	kind := chooseKindX(dec.H0Min, dec.H0Max, dec.LamAbsNeg, dec.LamPosMax)
	grad := make([]float64, f.Dim())
	f0 := f.Grad(x0, grad)
	z := &SafeZone{
		Method: MethodX,
		Kind:   kind,
		X0:     linalg.Clone(x0),
		F0:     f0,
		GradF0: grad,
		L:      l,
		U:      u,
		BLo:    linalg.Clone(bLo),
		BHi:    linalg.Clone(bHi),
	}
	if kind == ConvexDiff {
		z.Lam = dec.LamAbsNeg
	} else {
		z.Lam = dec.LamPosMax
	}
	return z
}

// BuildZoneX derives an ADCD-X safe zone around x0 with thresholds L, U and
// neighborhood box [bLo, bHi] (already intersected with the domain).
func BuildZoneX(f *Function, x0 []float64, l, u float64, bLo, bHi []float64, opts DecompOptions) (*SafeZone, error) {
	dec, err := DecomposeX(f, x0, bLo, bHi, opts)
	if err != nil {
		return nil, err
	}
	return BuildZoneXFrom(f, x0, l, u, bLo, bHi, dec), nil
}

// BuildZoneE derives an ADCD-E safe zone around x0 from a precomputed
// decomposition. ADCD-E constraints are valid over the whole domain, so no
// neighborhood box is attached.
func BuildZoneE(f *Function, dec *EDecomposition, x0 []float64, l, u float64) *SafeZone {
	grad := make([]float64, f.Dim())
	f0 := f.Grad(x0, grad)
	return &SafeZone{
		Method: MethodE,
		Kind:   dec.Kind,
		X0:     linalg.Clone(x0),
		F0:     f0,
		GradF0: grad,
		L:      l,
		U:      u,
		HMinus: dec.HMinus,
		HPlus:  dec.HPlus,
	}
}

// BuildZoneNone derives the no-ADCD ablation zone: the admissible region
// itself is used as the local constraint.
func BuildZoneNone(f *Function, x0 []float64, l, u float64) *SafeZone {
	grad := make([]float64, f.Dim())
	f0 := f.Grad(x0, grad)
	return &SafeZone{
		Method: MethodNone,
		X0:     linalg.Clone(x0),
		F0:     f0,
		GradF0: grad,
		L:      l,
		U:      u,
	}
}

// NeighborhoodBox returns the box B = [x0−r, x0+r] ∩ D.
func NeighborhoodBox(f *Function, x0 []float64, r float64) (lo, hi []float64) {
	d := len(x0)
	lo = make([]float64, d)
	hi = make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = x0[i] - r
		hi[i] = x0[i] + r
		if f.DomainLo != nil && lo[i] < f.DomainLo[i] {
			lo[i] = f.DomainLo[i]
		}
		if f.DomainHi != nil && hi[i] > f.DomainHi[i] {
			hi[i] = f.DomainHi[i]
		}
		if lo[i] > hi[i] { // degenerate: x0 clamped to a domain face
			lo[i], hi[i] = hi[i], lo[i]
		}
	}
	return lo, hi
}
