package core

import (
	"math"

	"automon/internal/linalg"
)

// DCKind selects between the two DC representations of §3.3/§3.4.
type DCKind uint8

const (
	// ConvexDiff represents f = g − ȟ with g, ȟ convex.
	ConvexDiff DCKind = iota
	// ConcaveDiff represents f = ĝ − ĥ with ĝ, ĥ concave.
	ConcaveDiff
)

func (k DCKind) String() string {
	if k == ConvexDiff {
		return "convex-difference"
	}
	return "concave-difference"
}

// Method identifies how the DC decomposition was derived.
type Method uint8

const (
	// MethodX is ADCD-X (§3.1): extreme Hessian eigenvalues over the
	// neighborhood B found by numerical optimization (Lemma 1).
	MethodX Method = iota
	// MethodE is ADCD-E (§3.2): exact eigendecomposition split of a constant
	// Hessian (Lemma 2). Its constraints are valid on the whole domain.
	MethodE
	// MethodNone disables ADCD and uses the admissible region L ≤ f(v) ≤ U
	// directly as the local constraint. This is the §4.6 ablation: the
	// resulting "safe zone" is generally non-convex, so violations can be
	// missed.
	MethodNone
	// MethodCustom marks a hand-crafted zone installed via
	// Config.ZoneBuilder (GM baselines like Convex Bound).
	MethodCustom
)

func (m Method) String() string {
	switch m {
	case MethodX:
		return "ADCD-X"
	case MethodE:
		return "ADCD-E"
	case MethodCustom:
		return "custom"
	}
	return "no-ADCD"
}

// SafeZone is the local constraint distributed by the coordinator: the set
// of vectors v for which the node stays silent. It bundles the DC
// decomposition parameters, the thresholds, and the neighborhood box.
type SafeZone struct {
	Method Method
	Kind   DCKind

	X0     []float64 // reference point (global average at last full sync)
	F0     float64   // f(x0)
	GradF0 []float64 // ∇f(x0)
	L, U   float64   // thresholds: admissible region is L ≤ f ≤ U

	// Lam is the ADCD-X curvature bound: |λ⁻min| over B for ConvexDiff, or
	// λ⁺max over B for ConcaveDiff (Lemma 1).
	Lam float64

	// HMinus / HPlus are the ADCD-E split H = H⁻ + H⁺ (Lemma 2). Only the
	// matrix matching Kind is used: H⁻ for ConvexDiff, H⁺ for ConcaveDiff.
	HMinus, HPlus *linalg.Mat

	// BLo/BHi is the neighborhood box B ∩ D for ADCD-X. Empty for ADCD-E,
	// whose constraints hold on all of D.
	BLo, BHi []float64

	// Custom overrides the built-in constraint checks when non-nil. It is
	// used by hand-crafted GM baselines (e.g. the Convex Bound zone for the
	// inner product) that plug into the same protocol for comparison. Custom
	// zones are in-memory only: they are not serialized by Sync.Encode.
	Custom func(f *Function, v []float64) bool
}

// InNeighborhood reports whether v lies inside B (always true for ADCD-E and
// the no-ADCD ablation, whose constraints are global).
func (z *SafeZone) InNeighborhood(v []float64) bool {
	if len(z.BLo) == 0 {
		return true
	}
	return linalg.InBox(v, z.BLo, z.BHi)
}

// Contains reports whether v satisfies the ADCD local constraints (§3.3,
// simplified forms). The caller is responsible for checking InNeighborhood
// first; Contains itself does not require v ∈ B.
func (z *SafeZone) Contains(f *Function, v []float64) bool {
	return z.ContainsScratch(f, v, nil)
}

// ContainsScratch is Contains with caller-provided scratch: when diff is
// non-nil and len(diff) == len(v) the ADCD-E path uses it instead of
// allocating, making the per-update check allocation-free. diff is
// overwritten; it must not alias v or z.X0.
//
//automon:hotpath
func (z *SafeZone) ContainsScratch(f *Function, v, diff []float64) bool {
	if z.Custom != nil {
		//automon:allow hotpath custom zones are hand-crafted GM baselines, never installed on the measured monitoring path
		return z.Custom(f, v)
	}
	switch z.Method {
	case MethodNone:
		fv := f.Value(v)
		return z.L <= fv && fv <= z.U
	case MethodX:
		q := 0.5 * z.Lam * linalg.SqDist(v, z.X0)
		return z.containsWithQuadratic(f, v, q)
	case MethodE:
		if len(diff) != len(v) {
			//automon:allow hotpath scratch-miss fallback: the monitoring loop always passes node-owned scratch
			diff = make([]float64, len(v))
		}
		linalg.Sub(diff, v, z.X0)
		// The helper expects q with g = f+q, ȟ = q (convex kind) or
		// ĝ = f−q, ĥ = −q (concave kind). From Lemma 2:
		//   convex:  g = f − ½dᵀH⁻d  ⇒ q = −½dᵀH⁻d  (≥ 0, H⁻ NSD)
		//   concave: ĝ = f − ½dᵀH⁺d ⇒ q = +½dᵀH⁺d  (≥ 0, H⁺ PSD)
		var q float64
		if z.Kind == ConvexDiff {
			q = -0.5 * z.HMinus.QuadForm(diff)
		} else {
			q = 0.5 * z.HPlus.QuadForm(diff)
		}
		return z.containsWithQuadratic(f, v, q)
	}
	return false
}

// containsWithQuadratic evaluates the simplified §3.3 constraints where q is
// the convex (resp. concave) quadratic term of the decomposition:
//
//	ConvexDiff:  g(v) = f(v) + q ≤ U   and   ȟ(v) = q ≤ f0 + ∇f0ᵀ(v−x0) − L
//	ConcaveDiff: ĥ(v) = −q ≥ f0 + ∇f0ᵀ(v−x0) − U   and   ĝ(v) = f(v) − q ≥ L
//
// For ADCD-X, q = ½·Lam·‖v−x0‖² in both kinds (with Lam the relevant extreme
// eigenvalue magnitude); for ADCD-E, q = −½(v−x0)ᵀH⁻(v−x0) (convex kind,
// PSD) or −½(v−x0)ᵀH⁺(v−x0) (concave kind, NSD). In the concave kind the
// roles flip sign so the same helper serves both:
func (z *SafeZone) containsWithQuadratic(f *Function, v []float64, q float64) bool {
	fv := f.Value(v)
	lin := z.F0
	for i := range v {
		lin += z.GradF0[i] * (v[i] - z.X0[i])
	}
	if z.Kind == ConvexDiff {
		if fv+q > z.U {
			return false
		}
		if q > lin-z.L {
			return false
		}
		return true
	}
	// Concave difference: ĥ(v) = −q must dominate the tangent minus U, and
	// ĝ(v) = f(v) − q must stay above L.
	if -q < lin-z.U {
		return false
	}
	if fv-q < z.L {
		return false
	}
	return true
}

// InAdmissibleRegion reports whether L ≤ f(v) ≤ U — the §3.7 sanity check.
func (z *SafeZone) InAdmissibleRegion(f *Function, v []float64) bool {
	fv := f.Value(v)
	return z.L <= fv && fv <= z.U
}

// chooseKind applies the DC Heuristic of §3.4: pick the representation whose
// two component functions are less curved near x0.
//
// For ADCD-X with extreme bounds lamAbsNeg = |λ⁻min| and lamPosMax = λ⁺max
// over B, and H(x0) eigenvalues (hMin, hMax):
//
//	λmin(H_g)  = hMin + |λ⁻min|,  λmin(H_ȟ) = |λ⁻min|
//	λmax(H_ĥ) = −λ⁺max,          λmax(H_ĝ) = hMax − λ⁺max
//
// Choose the convex difference when
//
//	λmin(H_g) + λmin(H_ȟ) ≤ |λmax(H_ĥ) + λmax(H_ĝ)|.
func chooseKindX(hMin, hMax, lamAbsNeg, lamPosMax float64) DCKind {
	left := (hMin + lamAbsNeg) + lamAbsNeg
	right := math.Abs(-lamPosMax + (hMax - lamPosMax))
	if left <= right {
		return ConvexDiff
	}
	return ConcaveDiff
}

// chooseKindE is the constant-Hessian specialization: |λmin| ≤ λmax picks
// the convex difference.
func chooseKindE(lamMin, lamMax float64) DCKind {
	if math.Abs(lamMin) <= lamMax {
		return ConvexDiff
	}
	return ConcaveDiff
}
