package core

// Liveness invariants: dead nodes are excluded from the reference-point
// average, from lazy-sync balancing, and from message fan-out; the estimate
// degrades to the live-node average with Degraded() raised; rejoins restore
// the full population through a full sync that re-establishes Σᵢ sᵢ = 0 over
// the live set.

import (
	"math"
	"testing"

	"automon/internal/linalg"
)

// faultyComm simulates a fabric with failure detection: requests to nodes in
// the failed set return nil after marking the node dead, and messages to them
// are swallowed. It records which nodes were contacted.
type faultyComm struct {
	nodes  []*Node
	failed map[int]bool
	coord  *Coordinator // set after NewCoordinator

	requested map[int]int
	synced    map[int]int
	slacked   map[int]int
}

func newFaultyComm(nodes []*Node) *faultyComm {
	return &faultyComm{
		nodes:     nodes,
		failed:    map[int]bool{},
		requested: map[int]int{},
		synced:    map[int]int{},
		slacked:   map[int]int{},
	}
}

func (c *faultyComm) RequestData(id int) []float64 {
	c.requested[id]++
	if c.failed[id] {
		c.coord.MarkDead(id)
		return nil
	}
	return c.nodes[id].LocalVector()
}

func (c *faultyComm) SendSync(id int, m *Sync) {
	c.synced[id]++
	if !c.failed[id] {
		c.nodes[id].ApplySync(m)
	}
}

func (c *faultyComm) SendSlack(id int, m *Slack) {
	c.slacked[id]++
	if !c.failed[id] {
		c.nodes[id].ApplySlack(m)
	}
}

// liveCluster builds n nodes over the saddle function with the given initial
// vectors, plus a coordinator wired through a faultyComm.
func liveCluster(t *testing.T, initial [][]float64, cfg Config) (*Coordinator, []*Node, *faultyComm) {
	t.Helper()
	f := saddleFunc()
	nodes := make([]*Node, len(initial))
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData(initial[i])
	}
	comm := newFaultyComm(nodes)
	coord := NewCoordinator(f, len(nodes), cfg, comm)
	comm.coord = coord
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	return coord, nodes, comm
}

// liveMean computes the mean of the live nodes' vectors.
func liveMean(coord *Coordinator, nodes []*Node) []float64 {
	var vecs [][]float64
	for i, nd := range nodes {
		if coord.Live(i) {
			vecs = append(vecs, nd.LocalVector())
		}
	}
	mean := make([]float64, len(nodes[0].LocalVector()))
	linalg.Mean(mean, vecs...)
	return mean
}

// slackSumOverLive asserts Σᵢ sᵢ = 0 over the live set (coordinator's view).
func slackSumOverLive(t *testing.T, coord *Coordinator) {
	t.Helper()
	sum := make([]float64, coord.F.Dim())
	for i := 0; i < coord.N; i++ {
		if coord.Live(i) {
			linalg.Add(sum, sum, coord.own.slacks[i])
		}
	}
	for j, v := range sum {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("live slack sum ≠ 0: component %d = %v", j, v)
		}
	}
}

func TestDepartureDegradesEstimateToLiveAverage(t *testing.T) {
	initial := [][]float64{{1, 0}, {0, 1}, {0, 2}}
	coord, nodes, comm := liveCluster(t, initial, Config{Epsilon: 0.1})
	f := coord.F

	if coord.Degraded() {
		t.Fatal("fresh cluster reports Degraded")
	}
	full := []float64{1.0 / 3, 1}
	if got := coord.Estimate(); math.Abs(got-f.Value(full)) > 1e-9 {
		t.Fatalf("initial estimate %v, want f(x̄)=%v", got, f.Value(full))
	}

	comm.failed[2] = true
	if err := coord.HandleDeparture(2); err != nil {
		t.Fatal(err)
	}
	if !coord.Degraded() || coord.LiveCount() != 2 || coord.Live(2) {
		t.Fatalf("after departure: degraded=%v live=%d", coord.Degraded(), coord.LiveCount())
	}
	want := f.Value(liveMean(coord, nodes))
	if got := coord.Estimate(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("degraded estimate %v, want live-node value %v", got, want)
	}
	slackSumOverLive(t, coord)
	if coord.Stats().NodeDeaths != 1 {
		t.Fatalf("NodeDeaths = %d, want 1", coord.Stats().NodeDeaths)
	}
	// The dead node must hold no slack in the coordinator's book-keeping.
	for j, v := range coord.own.slacks[2] {
		if v != 0 {
			t.Fatalf("dead node retains slack: component %d = %v", j, v)
		}
	}
}

func TestRejoinRestoresFullPopulation(t *testing.T) {
	initial := [][]float64{{1, 0}, {0, 1}, {0, 2}}
	coord, nodes, comm := liveCluster(t, initial, Config{Epsilon: 0.1})
	f := coord.F

	comm.failed[2] = true
	if err := coord.HandleDeparture(2); err != nil {
		t.Fatal(err)
	}

	// The node comes back with a fresh vector.
	comm.failed[2] = false
	nodes[2].SetData([]float64{2, 2})
	if err := coord.HandleRejoin(2, []float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	if coord.Degraded() || coord.LiveCount() != 3 {
		t.Fatalf("after rejoin: degraded=%v live=%d", coord.Degraded(), coord.LiveCount())
	}
	want := f.Value(liveMean(coord, nodes))
	if got := coord.Estimate(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("restored estimate %v, want %v", got, want)
	}
	slackSumOverLive(t, coord)
	if coord.Stats().Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1", coord.Stats().Rejoins)
	}
}

func TestViolationFromDeadNodeRevivesIt(t *testing.T) {
	initial := [][]float64{{1, 0}, {0, 1}, {0, 2}}
	coord, nodes, comm := liveCluster(t, initial, Config{Epsilon: 0.1})

	comm.failed[1] = true
	if err := coord.HandleDeparture(1); err != nil {
		t.Fatal(err)
	}
	// The "dead" node speaks again: a false suspicion. Its violation revives
	// it through a full sync.
	comm.failed[1] = false
	nodes[1].SetData([]float64{3, 3})
	syncsBefore := coord.Stats().FullSyncs
	err := coord.HandleViolation(&Violation{NodeID: 1, Kind: ViolationSafeZone, X: []float64{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !coord.Live(1) || coord.Degraded() {
		t.Fatal("violation from a dead node must revive it")
	}
	if coord.Stats().FullSyncs != syncsBefore+1 {
		t.Fatal("revival must resolve through a full sync (slack invariant)")
	}
	if coord.Stats().Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1", coord.Stats().Rejoins)
	}
	slackSumOverLive(t, coord)
}

func TestLazySyncExcludesDeadNodes(t *testing.T) {
	// Four nodes so the |set| ≤ liveCount/2 bound leaves room to balance
	// after one death.
	initial := [][]float64{{0, 0}, {0, 0}, {0, 0}, {0, 0}}
	coord, nodes, comm := liveCluster(t, initial, Config{Epsilon: 0.5})

	comm.failed[3] = true
	if err := coord.HandleDeparture(3); err != nil {
		t.Fatal(err)
	}
	comm.requested = map[int]int{}
	comm.synced = map[int]int{}
	comm.slacked = map[int]int{}

	// Drive safe-zone violations from node 0; resolutions must never touch
	// the dead node 3.
	for step := 1; step <= 6; step++ {
		x := []float64{0, 0.4 * float64(step)}
		nodes[0].SetData(x)
		if v := nodes[0].Check(); v != nil {
			if err := coord.HandleViolation(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := comm.requested[3] + comm.synced[3] + comm.slacked[3]; n != 0 {
		t.Fatalf("dead node contacted %d times during resolutions", n)
	}
	slackSumOverLive(t, coord)
}

func TestAllNodesDeadFreezesEstimate(t *testing.T) {
	initial := [][]float64{{1, 0}, {0, 1}}
	coord, nodes, comm := liveCluster(t, initial, Config{Epsilon: 0.1})

	comm.failed[0] = true
	if err := coord.HandleDeparture(0); err != nil {
		t.Fatal(err)
	}
	before := coord.Estimate() // f over node 1, the last live node
	comm.failed[1] = true
	if err := coord.HandleDeparture(1); err != ErrNoLiveNodes {
		t.Fatalf("last departure: err=%v, want ErrNoLiveNodes", err)
	}
	if coord.LiveCount() != 0 || !coord.Degraded() {
		t.Fatalf("live=%d degraded=%v", coord.LiveCount(), coord.Degraded())
	}
	// The estimate freezes at its last value instead of becoming NaN/0.
	if got := coord.Estimate(); got != before {
		t.Fatalf("estimate moved with no live nodes: %v → %v", before, got)
	}

	// The first rejoin repairs the cluster.
	comm.failed[0] = false
	nodes[0].SetData([]float64{2, 0})
	if err := coord.HandleRejoin(0, []float64{2, 0}); err != nil {
		t.Fatal(err)
	}
	if coord.LiveCount() != 1 {
		t.Fatalf("live=%d after rejoin, want 1", coord.LiveCount())
	}
	want := coord.F.Value([]float64{2, 0})
	if got := coord.Estimate(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("estimate %v after solo rejoin, want %v", got, want)
	}
}

func TestRequestFailureDuringFullSyncMarksDead(t *testing.T) {
	initial := [][]float64{{1, 0}, {0, 1}, {0, 2}}
	coord, nodes, comm := liveCluster(t, initial, Config{Epsilon: 0.1})
	f := coord.F

	// Node 2 stops answering; the next full sync must degrade around it
	// rather than fail.
	comm.failed[2] = true
	if err := coord.Resync(); err != nil {
		t.Fatal(err)
	}
	if coord.Live(2) || coord.LiveCount() != 2 {
		t.Fatalf("silent node not marked dead: live=%d", coord.LiveCount())
	}
	want := f.Value(liveMean(coord, nodes))
	if got := coord.Estimate(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("estimate %v, want live average %v", got, want)
	}
	slackSumOverLive(t, coord)
}
