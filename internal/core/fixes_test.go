package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"automon/internal/obs"
)

// --- Thresholds: multiplicative floor -------------------------------------

func TestThresholdsMultiplicativeFloor(t *testing.T) {
	f := saddleFunc()
	cases := []struct {
		name         string
		cfg          Config
		f0           float64
		wantL, wantU float64
	}{
		{
			name: "zero f0 gets the default floor",
			cfg:  Config{Epsilon: 0.1, ErrorType: Multiplicative},
			f0:   0, wantL: -DefaultThresholdFloor, wantU: DefaultThresholdFloor,
		},
		{
			name: "tiny f0 widens to the custom floor",
			cfg:  Config{Epsilon: 0.1, ErrorType: Multiplicative, ThresholdFloor: 0.05},
			f0:   1e-6, wantL: 1e-6 - 0.05, wantU: 1e-6 + 0.05,
		},
		{
			name: "large f0 is unaffected by the floor",
			cfg:  Config{Epsilon: 0.1, ErrorType: Multiplicative, ThresholdFloor: 0.05},
			f0:   10, wantL: 9, wantU: 11,
		},
		{
			name: "negative f0 stays ordered and floored",
			cfg:  Config{Epsilon: 0.1, ErrorType: Multiplicative, ThresholdFloor: 0.5},
			f0:   -1, wantL: -1.5, wantU: -0.5,
		},
		{
			name: "negative floor disables the guard",
			cfg:  Config{Epsilon: 0.1, ErrorType: Multiplicative, ThresholdFloor: -1},
			f0:   0, wantL: 0, wantU: 0,
		},
		{
			name: "additive error ignores the floor",
			cfg:  Config{Epsilon: 0.25, ThresholdFloor: 5},
			f0:   1, wantL: 0.75, wantU: 1.25,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCoordinator(f, 2, tc.cfg, &directComm{})
			l, u := c.Thresholds(tc.f0)
			if math.Abs(l-tc.wantL) > 1e-12 || math.Abs(u-tc.wantU) > 1e-12 {
				t.Fatalf("Thresholds(%v) = (%v, %v), want (%v, %v)", tc.f0, l, u, tc.wantL, tc.wantU)
			}
			if l > u {
				t.Fatalf("Thresholds(%v) inverted: (%v, %v)", tc.f0, l, u)
			}
		})
	}
}

func TestMultiplicativeFloorPreventsViolationStorm(t *testing.T) {
	// The saddle function is ≈ 0 when all nodes sit near the origin, so
	// multiplicative thresholds collapse and every noisy update becomes a
	// violation. A floor commensurate with the noise absorbs them.
	f := saddleFunc()
	data := make(TuningData, 120)
	for r := range data {
		// Deterministic jitter around the origin, alternating sign so the
		// average stays ≈ 0 and f(x̄) keeps hovering at its zero crossing.
		j := 0.001 * float64(r%7)
		data[r] = [][]float64{{j, -j}, {-j, j}, {j / 2, j / 3}, {-j / 2, -j / 3}}
	}

	run := func(floor float64) int {
		_, coord, _ := runProtocol(t, f, data, Config{
			Epsilon: 0.1, ErrorType: Multiplicative, ThresholdFloor: floor,
		})
		return coord.Stats().FullSyncs
	}
	stormy := run(1e-12) // effectively no floor: zero-width interval
	calm := run(0.05)    // floor above the jitter amplitude
	if calm >= stormy/4 {
		t.Fatalf("floor did not calm the violation storm: %d full syncs with floor vs %d without", calm, stormy)
	}
	if calm > 2 {
		t.Fatalf("floored run should sync at most on init, got %d full syncs", calm)
	}
}

// --- consecNeigh streak reset ---------------------------------------------

// streakCoordinator builds a 2-node ADCD-X coordinator with RDoubleAfter=3
// whose violations the test crafts by hand.
func streakCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	f := rosenbrockFunc()
	n := 2
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0, 0})
	}
	cfg := Config{Epsilon: 5, R: 0.01, RDoubleAfter: 3, Decomp: DecompOptions{Seed: 1}}
	coord := NewCoordinator(f, n, cfg, &directComm{nodes})
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	return coord
}

func TestNeighborhoodStreakResets(t *testing.T) {
	// Any full sync not caused by a neighborhood violation must reset the
	// §3.6 streak; before the fix only safe-zone violations did, so faulty
	// violations, rejoins, and explicit resyncs let non-consecutive
	// neighborhood violations accumulate into a spurious r-doubling.
	neigh := func(c *Coordinator) error {
		return c.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
	}
	cases := []struct {
		name        string
		interrupt   func(c *Coordinator) error
		wantDouble  bool
		wantStreak  int
		extraNeighs int // neighborhood violations after the interrupt
	}{
		{
			name:       "three consecutive neighborhood violations still double r",
			interrupt:  nil,
			wantDouble: true, wantStreak: 0, extraNeighs: 1,
		},
		{
			name: "faulty violation resets the streak",
			interrupt: func(c *Coordinator) error {
				return c.HandleViolation(&Violation{NodeID: 1, Kind: ViolationFaulty, X: []float64{0.01, 0}})
			},
			wantDouble: false, wantStreak: 1, extraNeighs: 1,
		},
		{
			name: "safe-zone violation resets the streak",
			interrupt: func(c *Coordinator) error {
				return c.HandleViolation(&Violation{NodeID: 1, Kind: ViolationSafeZone, X: []float64{0.005, 0}})
			},
			wantDouble: false, wantStreak: 1, extraNeighs: 1,
		},
		{
			name: "rejoin full sync resets the streak",
			interrupt: func(c *Coordinator) error {
				return c.HandleRejoin(1, []float64{0, 0})
			},
			wantDouble: false, wantStreak: 1, extraNeighs: 1,
		},
		{
			name: "revival via violation from a dead node resets the streak",
			interrupt: func(c *Coordinator) error {
				c.MarkDead(1)
				return c.HandleViolation(&Violation{NodeID: 1, Kind: ViolationSafeZone, X: []float64{0.01, 0}})
			},
			wantDouble: false, wantStreak: 1, extraNeighs: 1,
		},
		{
			name:       "explicit Resync resets the streak",
			interrupt:  func(c *Coordinator) error { return c.Resync() },
			wantDouble: false, wantStreak: 1, extraNeighs: 1,
		},
		{
			name:       "departure full sync resets the streak",
			interrupt:  func(c *Coordinator) error { return c.HandleDeparture(1) },
			wantDouble: false, wantStreak: 1, extraNeighs: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coord := streakCoordinator(t)
			r0 := coord.R()
			// Two neighborhood violations: streak = 2, one short of doubling.
			for k := 0; k < 2; k++ {
				if err := neigh(coord); err != nil {
					t.Fatal(err)
				}
			}
			if coord.consecNeigh != 2 {
				t.Fatalf("streak after 2 neighborhood violations = %d, want 2", coord.consecNeigh)
			}
			if tc.interrupt != nil {
				if err := tc.interrupt(coord); err != nil {
					t.Fatal(err)
				}
				if coord.consecNeigh != 0 {
					t.Fatalf("streak after interrupting full sync = %d, want 0", coord.consecNeigh)
				}
			}
			for k := 0; k < tc.extraNeighs; k++ {
				if err := neigh(coord); err != nil {
					t.Fatal(err)
				}
			}
			doubled := coord.R() > r0
			if doubled != tc.wantDouble {
				t.Fatalf("r = %v (was %v), doubled = %v, want %v", coord.R(), r0, doubled, tc.wantDouble)
			}
			if coord.consecNeigh != tc.wantStreak {
				t.Fatalf("final streak = %d, want %d", coord.consecNeigh, tc.wantStreak)
			}
			wantDoublings := 0
			if tc.wantDouble {
				wantDoublings = 1
			}
			if coord.Stats().RDoublings != wantDoublings {
				t.Fatalf("RDoublings = %d, want %d", coord.Stats().RDoublings, wantDoublings)
			}
		})
	}
}

// --- Tune: memoization and bracket convergence ----------------------------

// syntheticReplay fabricates Algorithm-2 violation profiles as a function of
// r and counts how often each radius is actually replayed.
type syntheticReplay struct {
	counts  func(r float64) ReplayCounts
	replays map[float64]int
}

func (s *syntheticReplay) run(r float64) (ReplayCounts, error) {
	if s.replays == nil {
		s.replays = make(map[float64]int)
	}
	s.replays[r]++
	return s.counts(r), nil
}

// wellBehaved is a canonical profile: safe-zone violations grow with r,
// neighborhood violations shrink with r, both vanishing inside the budget.
func wellBehaved(r float64) ReplayCounts {
	c := ReplayCounts{}
	if r > 0.01 {
		c.SafeZone = int(r * 100)
	}
	if r < 4 {
		c.Neighborhood = int(4 / (r + 1e-9))
	}
	return c
}

func TestTuneNeverReplaysTheSameRadiusTwice(t *testing.T) {
	s := &syntheticReplay{counts: wellBehaved}
	res, err := tuneWith(s.run)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for r, n := range s.replays {
		total += n
		if n > 1 {
			t.Errorf("radius %v replayed %d times, want at most 1", r, n)
		}
	}
	if res.Replays != total {
		t.Fatalf("Replays = %d, but %d distinct replays ran", res.Replays, total)
	}
	// The grid endpoints coincide with lo and hi, which the phase-2 walks
	// already replayed — the per-radius ≤1 check above only bites if
	// memoization actually deduplicated those revisits.
	if len(res.GridR) == 0 || res.GridR[0] != res.Lo || res.GridR[len(res.GridR)-1] != res.Hi {
		t.Fatalf("grid %v does not revisit bracket [%v, %v]", res.GridR, res.Lo, res.Hi)
	}
	if !res.LoConverged || !res.HiConverged {
		t.Fatalf("well-behaved profile must converge both ends: %+v", res)
	}
}

func TestTuneRecordsBracketConvergence(t *testing.T) {
	cases := []struct {
		name               string
		counts             func(r float64) ReplayCounts
		wantLo, wantHi     bool
		wantErr            error
		wantRInsideBracket bool
	}{
		{
			name:   "both ends converge",
			counts: wellBehaved,
			wantLo: true, wantHi: true, wantErr: nil, wantRInsideBracket: true,
		},
		{
			name: "lo never sheds safe-zone violations",
			counts: func(r float64) ReplayCounts {
				// Safe-zone violations at every radius; neighborhood
				// violations vanish for large r.
				c := ReplayCounts{SafeZone: 5}
				if r < 2 {
					c.Neighborhood = 3
				}
				return c
			},
			wantLo: false, wantHi: true, wantErr: nil, wantRInsideBracket: true,
		},
		{
			name: "hi never sheds neighborhood violations",
			counts: func(r float64) ReplayCounts {
				c := ReplayCounts{Neighborhood: 3}
				if r > 0.5 {
					c.SafeZone = 5
				}
				return c
			},
			wantLo: true, wantHi: false, wantErr: nil, wantRInsideBracket: true,
		},
		{
			name: "neither end converges",
			counts: func(r float64) ReplayCounts {
				return ReplayCounts{SafeZone: 5, Neighborhood: 5}
			},
			wantLo: false, wantHi: false, wantErr: ErrBracketNotConverged, wantRInsideBracket: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &syntheticReplay{counts: tc.counts}
			res, err := tuneWith(s.run)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if res.LoConverged != tc.wantLo || res.HiConverged != tc.wantHi {
				t.Fatalf("convergence = (lo %v, hi %v), want (lo %v, hi %v)",
					res.LoConverged, res.HiConverged, tc.wantLo, tc.wantHi)
			}
			for r, n := range s.replays {
				if n > 1 {
					t.Errorf("radius %v replayed %d times, want at most 1", r, n)
				}
			}
			if tc.wantRInsideBracket && (res.R < res.Lo-1e-12 || res.R > res.Hi+1e-12) {
				t.Fatalf("chosen r %v outside bracket [%v, %v]", res.R, res.Lo, res.Hi)
			}
			// Even a non-converged result must be inspectable: the grid ran
			// and the bracket it searched is recorded.
			if len(res.GridR) == 0 || res.Lo <= 0 || res.Hi <= 0 {
				t.Fatalf("result not inspectable: %+v", res)
			}
		})
	}
}

// --- CoordStats is a view over the metric registry ------------------------

func TestCoordinatorMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(9))
	f := saddleFunc()
	starts := [][]float64{{0, 0}, {0.1, 0.1}, {-0.1, 0.1}}
	targets := [][]float64{{1, 0.5}, {0.8, 0.6}, {1.2, 0.4}}
	data := driftData(rng, 80, starts, targets, 0.02)
	_, coord, _ := runProtocol(t, f, data, Config{Epsilon: 0.2, Metrics: reg})

	stats := coord.Stats()
	snap := reg.Snapshot()
	for name, want := range map[string]int{
		"automon_coordinator_full_syncs_total":                      stats.FullSyncs,
		"automon_coordinator_lazy_sync_attempts_total":              stats.LazyAttempts,
		"automon_coordinator_lazy_syncs_resolved_total":             stats.LazyResolved,
		`automon_coordinator_violations_total{kind="neighborhood"}`: stats.NeighborhoodViolations,
		`automon_coordinator_violations_total{kind="safe_zone"}`:    stats.SafeZoneViolations,
		`automon_coordinator_violations_total{kind="faulty"}`:       stats.FaultyViolations,
		"automon_coordinator_r_doublings_total":                     stats.RDoublings,
		"automon_coordinator_node_deaths_total":                     stats.NodeDeaths,
		"automon_coordinator_rejoins_total":                         stats.Rejoins,
	} {
		got, ok := snap[name]
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		if int(got) != want {
			t.Errorf("metric %s = %v, Stats reports %d", name, got, want)
		}
	}
	if got := snap["automon_coordinator_live_nodes"]; int(got) != coord.LiveCount() {
		t.Errorf("live_nodes gauge = %v, want %d", got, coord.LiveCount())
	}
	if got := snap[`automon_coordinator_balancing_set_size_count`]; int64(got) != int64(stats.LazyResolved) {
		t.Errorf("balancing-set histogram count = %v, want %d (one observation per resolved lazy sync)", got, stats.LazyResolved)
	}
	if stats.FullSyncs == 0 || stats.SafeZoneViolations == 0 {
		t.Fatalf("run too quiet to validate identity: %+v", stats)
	}
}

func TestTuneEndToEndStillConverges(t *testing.T) {
	// The real Algorithm-2 path (Rosenbrock replay) must keep working after
	// the memoization refactor, and report a converged bracket.
	f := rosenbrockFunc()
	n := 4
	data := rosenbrockData(rand.New(rand.NewSource(41)), 80, n)
	res, err := Tune(f, data, n, Config{Epsilon: 0.25, Decomp: DecompOptions{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LoConverged || !res.HiConverged {
		t.Fatalf("bracket did not converge on well-behaved data: %+v", res)
	}
}

func TestTuneReplaysDoNotPolluteSharedRegistry(t *testing.T) {
	// Tuning replays must run on private instruments. With get-or-create
	// registration, replays sharing the caller's registry would all read and
	// write the same automon_coordinator_* counters, so the bracketing search
	// would see violation counts accumulated across every prior replay (hi
	// could never reach zero neighborhood violations) and the caller's scrape
	// would absorb the probes' events.
	f := rosenbrockFunc()
	n := 4
	data := rosenbrockData(rand.New(rand.NewSource(41)), 80, n)
	base, err := Tune(f, data, n, Config{Epsilon: 0.25, Decomp: DecompOptions{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	shared, err := Tune(f, data, n, Config{
		Epsilon: 0.25, Decomp: DecompOptions{Seed: 2}, Metrics: reg, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared.R != base.R || shared.Counts != base.Counts || shared.Replays != base.Replays ||
		shared.LoConverged != base.LoConverged || shared.HiConverged != base.HiConverged {
		t.Fatalf("shared registry changed tuning:\nbase   %+v\nshared %+v", base, shared)
	}
	if snap := reg.Snapshot(); len(snap) != 0 {
		t.Fatalf("tuning replays registered metrics in the caller's registry: %v", snap)
	}
	if tr.Total() != 0 {
		t.Fatalf("tuning replays recorded %d events in the caller's tracer", tr.Total())
	}
}
