package core

import (
	"math"
	"strconv"
	"strings"
	"sync"
)

// DefaultZoneCacheQuantum is the grid size used to quantize (x0, r) for
// decomposition-cache keys when Config.ZoneCacheQuantum is zero.
const DefaultZoneCacheQuantum = 1e-2

// ZoneCache is a small LRU of ADCD-X decomposition artifacts keyed by the
// quantized (x0, r) of a full sync. Reusing an entry skips the eigenvalue
// search; the quantization means the cached Lemma-1 bounds were computed for
// a reference point up to one quantum away, which the protocol tolerates the
// same way it tolerates the optimizer's local optima: the §3.7 sanity check
// turns any resulting unsound zone into a Faulty violation and a fresh full
// sync. Thresholds, f0 and ∇f0 are never cached — BuildZoneXFrom recomputes
// them exactly for the true x0.
//
// A ZoneCache is safe for concurrent use: a multi-tenant coordinator process
// shares one cache across every monitoring group (Config.SharedZoneCache),
// with each group's keys disambiguated by Config.ZoneCacheScope. A private
// per-coordinator cache pays the same (uncontended) mutex.
type ZoneCache struct {
	mu   sync.Mutex
	cap  int
	keys []string // LRU order: least recently used first
	vals map[string]*XDecomposition
}

// NewZoneCache creates a cache bounded to capacity entries. Capacity must be
// positive.
func NewZoneCache(capacity int) *ZoneCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &ZoneCache{cap: capacity, vals: make(map[string]*XDecomposition, capacity)}
}

// Len returns the current number of cached decompositions.
func (zc *ZoneCache) Len() int {
	zc.mu.Lock()
	defer zc.mu.Unlock()
	return len(zc.keys)
}

// maxQuantCell bounds the grid coordinates quantizeKey will render: beyond
// 2⁵³ a float64 no longer represents every integer, so two distinct radii
// (or reference coordinates) could silently round to the same cell — and a
// float-to-int64 conversion past the int64 range is undefined. Values this
// large only arise from pathology (unbounded §3.6 doubling, NaN/Inf inputs);
// the cache is bypassed rather than risking key aliasing.
const maxQuantCell = float64(1 << 53)

// scopePrefix renders a coordinator's scope as an unambiguous key prefix.
// The length prefix guarantees that distinct scopes can never produce keys
// where one coordinator's prefix is a prefix of another's full key (":" is
// never a digit), which InvalidateScope relies on.
func scopePrefix(scope string) string {
	return strconv.Itoa(len(scope)) + ":" + scope + "e"
}

// quantizeCell maps one value onto the grid of pitch q, reporting whether
// the cell index survives the float→int64 round trip. NaN, ±Inf and
// magnitudes beyond maxQuantCell are unrepresentable: they would alias
// unrelated keys, so the caller must bypass the cache instead.
func quantizeCell(v, q float64) (int64, bool) {
	g := math.Round(v / q)
	if math.IsNaN(g) || g < -maxQuantCell || g > maxQuantCell {
		return 0, false
	}
	return int64(g), true
}

// quantizeKey maps (x0, r) onto a grid of pitch q and renders the grid
// coordinates as the cache key, prefixed by the owning coordinator's scope
// so groups sharing one cache never collide, and by the eigen-engine backend
// so A/B runs over the same schedule never reuse each other's bounds (an
// L-BFGS estimate is not a certificate, and vice versa). The second return
// is false when any coordinate is too large (or not finite) to quantize
// soundly; such syncs must skip the cache entirely.
func quantizeKey(scope string, backend EigBackend, x0 []float64, r, q float64) (string, bool) {
	b := make([]byte, 0, len(scope)+16*(len(x0)+1)+8)
	b = append(b, scopePrefix(scope)...)
	b = strconv.AppendUint(b, uint64(backend), 10)
	b = append(b, '|')
	cell, ok := quantizeCell(r, q)
	if !ok {
		return "", false
	}
	b = strconv.AppendInt(b, cell, 10)
	for _, v := range x0 {
		b = append(b, ',')
		cell, ok = quantizeCell(v, q)
		if !ok {
			return "", false
		}
		b = strconv.AppendInt(b, cell, 10)
	}
	return string(b), true
}

// InvalidateScope drops every cached decomposition written under the given
// scope and returns how many entries were removed. Coordinators call it when
// their neighborhood radius changes (§3.6 doubling or an adaptive shrink):
// old-radius decompositions can never be looked up again — their keys embed
// the quantized old r — so leaving them in a shared cache would squeeze out
// other tenants' live entries until LRU pressure finally evicts them.
func (zc *ZoneCache) InvalidateScope(scope string) int {
	prefix := scopePrefix(scope)
	zc.mu.Lock()
	defer zc.mu.Unlock()
	kept := zc.keys[:0]
	removed := 0
	for _, k := range zc.keys {
		if strings.HasPrefix(k, prefix) {
			delete(zc.vals, k)
			removed++
		} else {
			kept = append(kept, k)
		}
	}
	// Zero the tail so evicted keys don't pin their strings via the backing
	// array.
	for i := len(kept); i < len(zc.keys); i++ {
		zc.keys[i] = ""
	}
	zc.keys = kept
	return removed
}

func (zc *ZoneCache) get(key string) (*XDecomposition, bool) {
	zc.mu.Lock()
	defer zc.mu.Unlock()
	dec, ok := zc.vals[key]
	if ok {
		zc.touch(key)
	}
	return dec, ok
}

func (zc *ZoneCache) put(key string, dec *XDecomposition) {
	zc.mu.Lock()
	defer zc.mu.Unlock()
	if _, ok := zc.vals[key]; ok {
		zc.vals[key] = dec
		zc.touch(key)
		return
	}
	if len(zc.keys) >= zc.cap {
		evict := zc.keys[0]
		zc.keys = zc.keys[1:]
		delete(zc.vals, evict)
	}
	zc.keys = append(zc.keys, key)
	zc.vals[key] = dec
}

// touch is called with zc.mu held.
func (zc *ZoneCache) touch(key string) {
	for i, k := range zc.keys {
		if k == key {
			copy(zc.keys[i:], zc.keys[i+1:])
			zc.keys[len(zc.keys)-1] = key
			return
		}
	}
}
