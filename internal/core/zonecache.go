package core

import (
	"math"
	"strconv"
	"sync"
)

// DefaultZoneCacheQuantum is the grid size used to quantize (x0, r) for
// decomposition-cache keys when Config.ZoneCacheQuantum is zero.
const DefaultZoneCacheQuantum = 1e-2

// ZoneCache is a small LRU of ADCD-X decomposition artifacts keyed by the
// quantized (x0, r) of a full sync. Reusing an entry skips the eigenvalue
// search; the quantization means the cached Lemma-1 bounds were computed for
// a reference point up to one quantum away, which the protocol tolerates the
// same way it tolerates the optimizer's local optima: the §3.7 sanity check
// turns any resulting unsound zone into a Faulty violation and a fresh full
// sync. Thresholds, f0 and ∇f0 are never cached — BuildZoneXFrom recomputes
// them exactly for the true x0.
//
// A ZoneCache is safe for concurrent use: a multi-tenant coordinator process
// shares one cache across every monitoring group (Config.SharedZoneCache),
// with each group's keys disambiguated by Config.ZoneCacheScope. A private
// per-coordinator cache pays the same (uncontended) mutex.
type ZoneCache struct {
	mu   sync.Mutex
	cap  int
	keys []string // LRU order: least recently used first
	vals map[string]*XDecomposition
}

// NewZoneCache creates a cache bounded to capacity entries. Capacity must be
// positive.
func NewZoneCache(capacity int) *ZoneCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &ZoneCache{cap: capacity, vals: make(map[string]*XDecomposition, capacity)}
}

// Len returns the current number of cached decompositions.
func (zc *ZoneCache) Len() int {
	zc.mu.Lock()
	defer zc.mu.Unlock()
	return len(zc.keys)
}

// quantizeKey maps (x0, r) onto a grid of pitch q and renders the grid
// coordinates as the cache key, prefixed by the owning coordinator's scope
// so groups sharing one cache never collide, and by the eigen-engine backend
// so A/B runs over the same schedule never reuse each other's bounds (an
// L-BFGS estimate is not a certificate, and vice versa).
func quantizeKey(scope string, backend EigBackend, x0 []float64, r, q float64) string {
	b := make([]byte, 0, len(scope)+16*(len(x0)+1)+4)
	b = append(b, scope...)
	b = append(b, 'e')
	b = strconv.AppendUint(b, uint64(backend), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(math.Round(r/q)), 10)
	for _, v := range x0 {
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(math.Round(v/q)), 10)
	}
	return string(b)
}

func (zc *ZoneCache) get(key string) (*XDecomposition, bool) {
	zc.mu.Lock()
	defer zc.mu.Unlock()
	dec, ok := zc.vals[key]
	if ok {
		zc.touch(key)
	}
	return dec, ok
}

func (zc *ZoneCache) put(key string, dec *XDecomposition) {
	zc.mu.Lock()
	defer zc.mu.Unlock()
	if _, ok := zc.vals[key]; ok {
		zc.vals[key] = dec
		zc.touch(key)
		return
	}
	if len(zc.keys) >= zc.cap {
		evict := zc.keys[0]
		zc.keys = zc.keys[1:]
		delete(zc.vals, evict)
	}
	zc.keys = append(zc.keys, key)
	zc.vals[key] = dec
}

// touch is called with zc.mu held.
func (zc *ZoneCache) touch(key string) {
	for i, k := range zc.keys {
		if k == key {
			copy(zc.keys[i:], zc.keys[i+1:])
			zc.keys[len(zc.keys)-1] = key
			return
		}
	}
}
