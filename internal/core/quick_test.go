package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"automon/internal/linalg"
)

// boundedVec generates reproducible random vectors with sane magnitudes for
// property-based tests.
type boundedVec []float64

// Generate implements quick.Generator.
func (boundedVec) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(16)
	v := make(boundedVec, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return reflect.ValueOf(v)
}

// TestQuickViolationCodecRoundTrip property-checks the wire codec on random
// payloads.
func TestQuickViolationCodecRoundTrip(t *testing.T) {
	f := func(node uint16, kind uint8, x boundedVec) bool {
		m := &Violation{
			NodeID: int(node),
			Kind:   ViolationKind(kind%3 + 1),
			X:      []float64(x),
		}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSyncCodecRoundTrip property-checks the richest message type.
func TestQuickSyncCodecRoundTrip(t *testing.T) {
	f := func(node uint16, f0, l, u, lam, r float64, x0, grad, slack boundedVec) bool {
		if math.IsNaN(f0) || math.IsInf(f0, 0) {
			return true
		}
		m := &Sync{
			NodeID: int(node), Method: MethodX, Kind: ConcaveDiff,
			X0: x0, F0: f0, GradF0: grad, L: l, U: u, Lam: lam, R: r, Slack: slack,
		}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickThresholdsOrdered: L ≤ U must hold for every f0 and ε under both
// error types, including negative and zero reference values.
func TestQuickThresholdsOrdered(t *testing.T) {
	f := saddleFunc()
	add := NewCoordinator(f, 2, Config{Epsilon: 0.25}, &directComm{})
	mul := NewCoordinator(f, 2, Config{Epsilon: 0.25, ErrorType: Multiplicative}, &directComm{})
	check := func(f0 float64) bool {
		if math.IsNaN(f0) || math.IsInf(f0, 0) {
			return true
		}
		l1, u1 := add.Thresholds(f0)
		l2, u2 := mul.Thresholds(f0)
		return l1 <= f0 && f0 <= u1 && l2 <= f0 && f0 <= u2
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNeighborhoodBoxContainsReference: x0 (clamped into the domain)
// is always inside B, and B is always inside the domain.
func TestQuickNeighborhoodBoxContainsReference(t *testing.T) {
	f := sineFunc() // domain [0, π]
	check := func(x0raw, rraw float64) bool {
		if math.IsNaN(x0raw) || math.IsInf(x0raw, 0) || math.IsNaN(rraw) {
			return true
		}
		r := math.Abs(math.Mod(rraw, 3)) + 1e-6
		x0 := math.Min(math.Max(math.Mod(x0raw, math.Pi), 0), math.Pi)
		lo, hi := NeighborhoodBox(f, []float64{x0}, r)
		if lo[0] < 0 || hi[0] > math.Pi {
			return false
		}
		return lo[0] <= x0+1e-12 && x0 <= hi[0]+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSafeZoneADCDESound: for random constant-Hessian quadratics,
// random safe-zone members are always admissible — the paper's central
// correctness property, as a quick.Check over decompositions.
func TestQuickSafeZoneADCDESound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		q := linalg.NewMat(d, d)
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				v := rng.NormFloat64()
				q.Set(i, j, v)
				q.Set(j, i, v)
			}
		}
		f := quadraticFunc(q)
		x0 := make([]float64, d)
		for i := range x0 {
			x0[i] = rng.NormFloat64() * 0.3
		}
		dec, err := DecomposeE(f, x0)
		if err != nil {
			return false
		}
		f0 := f.Value(x0)
		zone := BuildZoneE(f, dec, x0, f0-0.5, f0+0.5)
		for trial := 0; trial < 200; trial++ {
			v := make([]float64, d)
			for i := range v {
				v[i] = x0[i] + rng.NormFloat64()*0.5
			}
			if zone.Contains(f, v) && !zone.InAdmissibleRegion(f, v) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLRUPermutationInvariant: touching ids in any order keeps the LRU
// list a permutation of all node ids.
func TestQuickLRUPermutationInvariant(t *testing.T) {
	f := saddleFunc()
	check := func(touches []uint8) bool {
		c := NewCoordinator(f, 6, Config{Epsilon: 0.1}, &directComm{})
		for _, id := range touches {
			c.touchLRU(int(id) % 6)
		}
		seen := map[int]bool{}
		for _, id := range c.lru {
			if id < 0 || id >= 6 || seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(seen) == 6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
