package core

import (
	"math"
	"math/rand"
	"testing"

	"automon/internal/linalg"
)

// budgetTestZone builds a node with the requested zone method installed
// around x0, plus a per-event reference node sharing the same function.
func budgetTestZone(t *testing.T, method Method, d int, eps float64) (elided, ref *Node, x0 []float64) {
	t.Helper()
	var f *Function
	var zone *SafeZone
	x0 = make([]float64, d)
	for i := range x0 {
		x0[i] = 0.1 + 0.05*float64(i%3)
	}
	switch method {
	case MethodX:
		f = benchCubic(d)
		// Generous spectral-norm bound for the cubic's Hessian on the small
		// walk region; overstating K only shrinks budgets.
		f.WithCurvature(60)
		grad := make([]float64, d)
		f0 := f.Grad(x0, grad)
		bLo, bHi := NeighborhoodBox(f, x0, 0.5)
		z, err := BuildZoneX(f, x0, f0-eps, f0+eps, bLo, bHi, DecompOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		zone = z
	case MethodE:
		f = benchBilinear(d)
		dec, err := DecomposeE(f, x0)
		if err != nil {
			t.Fatal(err)
		}
		f0 := f.Value(x0)
		zone = BuildZoneE(f, dec, x0, f0-eps, f0+eps)
	case MethodNone:
		f = benchCubic(d)
		lo := make([]float64, d)
		hi := make([]float64, d)
		for i := range lo {
			lo[i], hi[i] = -1, 1
		}
		// Domain-only curvature: exercises the domain-box budget clamp.
		f.WithDomain(lo, hi).WithCurvature(60)
		f0 := f.Value(x0)
		zone = BuildZoneNone(f, x0, f0-eps, f0+eps)
	default:
		t.Fatalf("unsupported method %v", method)
	}
	elided = NewNode(0, f)
	ref = NewNode(1, f)
	elided.ApplySync(syncForZone(zone, 0.5, d))
	ref.ApplySync(syncForZone(zone, 0.5, d))
	if !elided.EnableElision() {
		t.Fatalf("EnableElision failed for %v", method)
	}
	return elided, ref, x0
}

// TestBudgetSoundnessRandomWalk drives the elided and per-event node pairs
// through identical random walks and demands bit-identical outcomes: every
// elided (skipped) event must be a non-violation on the reference node, and
// the first violation must land on the same event with the same kind.
func TestBudgetSoundnessRandomWalk(t *testing.T) {
	const d = 6
	for _, method := range []Method{MethodX, MethodE, MethodNone} {
		var totalSkipped, totalViolations int
		for seed := int64(0); seed < 8; seed++ {
			elided, ref, x0 := budgetTestZone(t, method, d, 0.4)
			rng := rand.New(rand.NewSource(seed))
			x := linalg.Clone(x0)
			step := make([]float64, d)
			for ev := 0; ev < 4000; ev++ {
				scale := 0.004
				if rng.Float64() < 0.01 {
					scale = 0.15 // occasional jump to force violations
				}
				var norm float64
				for i := range step {
					step[i] = rng.NormFloat64() * scale
					norm += step[i] * step[i]
				}
				norm = math.Sqrt(norm)
				linalg.Add(x, x, step)

				vRef := ref.UpdateData(x)
				var vEl *Violation
				if elided.SpendBudget(norm) {
					vEl = elided.UpdateDataRefresh(x)
				} else {
					totalSkipped++
				}
				if vEl == nil {
					if vRef != nil {
						t.Fatalf("%v seed %d event %d: elided path missed violation %v", method, seed, ev, vRef.Kind)
					}
					continue
				}
				if vRef == nil {
					t.Fatalf("%v seed %d event %d: elided path raised spurious violation %v", method, seed, ev, vEl.Kind)
				}
				if vEl.Kind != vRef.Kind {
					t.Fatalf("%v seed %d event %d: kinds differ (%v vs %v)", method, seed, ev, vEl.Kind, vRef.Kind)
				}
				totalViolations++
				break // first violation ends the zone's life, as in the protocol
			}
		}
		if totalSkipped == 0 {
			t.Fatalf("%v: elision never skipped a check — budget machinery inert", method)
		}
		if totalViolations == 0 {
			t.Fatalf("%v: no walk reached a violation — differential has no teeth", method)
		}
	}
}

// TestBudgetSpendGuards locks in the failure-to-safety contract of
// SpendBudget: NaN or negative norms invalidate the budget rather than
// extending it, and invalid budgets always demand exact checks.
func TestBudgetSpendGuards(t *testing.T) {
	elided, _, x0 := budgetTestZone(t, MethodE, 6, 0.4)
	if !elided.SpendBudget(0) {
		t.Fatal("fresh node (no refresh yet) must demand an exact check")
	}
	if v := elided.UpdateDataRefresh(x0); v != nil {
		t.Fatalf("x0 must pass its own zone: %v", v)
	}
	if elided.SpendBudget(0) {
		t.Fatal("zero spend against a fresh budget must not demand a check")
	}
	if !elided.SpendBudget(math.NaN()) {
		t.Fatal("NaN spend must demand an exact check")
	}
	if !elided.SpendBudget(0) {
		t.Fatal("budget must stay invalid after a NaN spend")
	}
	if v := elided.UpdateDataRefresh(x0); v != nil {
		t.Fatal(v)
	}
	if !elided.SpendBudget(-1) {
		t.Fatal("negative spend must demand an exact check")
	}
	if v := elided.UpdateDataRefresh(x0); v != nil {
		t.Fatal(v)
	}
	if !elided.SpendBudget(math.Inf(1)) {
		t.Fatal("infinite spend must exhaust any budget")
	}
}

// TestBudgetResetOnProtocolEvents verifies that every state change the
// budget was not derived from — raw SetData, a new zone, a slack rebalance —
// forces the next event onto the exact path.
func TestBudgetResetOnProtocolEvents(t *testing.T) {
	const d = 6
	elided, _, x0 := budgetTestZone(t, MethodE, d, 0.4)
	refresh := func() {
		if v := elided.UpdateDataRefresh(x0); v != nil {
			t.Fatal(v)
		}
		if elided.SpendBudget(0) {
			t.Fatal("expected a live budget after refresh")
		}
	}

	refresh()
	elided.SetData(x0)
	if !elided.SpendBudget(0) {
		t.Fatal("SetData must invalidate the budget")
	}

	refresh()
	zone := elided.Zone()
	elided.ApplySync(syncForZone(zone, 0.5, d))
	if !elided.SpendBudget(0) {
		t.Fatal("ApplySync must invalidate the budget")
	}

	refresh()
	elided.ApplySlack(&Slack{NodeID: 0, Slack: make([]float64, d)})
	if !elided.SpendBudget(0) {
		t.Fatal("ApplySlack must invalidate the budget")
	}
}

// TestEnableElisionRequiresCurvature: elision is licensed by a curvature
// bound — automatic for constant-Hessian functions, explicit otherwise.
func TestEnableElisionRequiresCurvature(t *testing.T) {
	cubic := benchCubic(4)
	n := NewNode(0, cubic)
	if n.EnableElision() {
		t.Fatal("non-constant Hessian with no WithCurvature must refuse elision")
	}
	if n.ElisionEnabled() {
		t.Fatal("failed EnableElision must leave elision off")
	}
	cubic.WithCurvature(10)
	if !n.EnableElision() {
		t.Fatal("explicit curvature bound must license elision")
	}

	bilinear := benchBilinear(4)
	k, domainOnly, ok := bilinear.CurvBound()
	if !ok || domainOnly {
		t.Fatalf("constant Hessian must give a global automatic bound (k=%v domainOnly=%v ok=%v)", k, domainOnly, ok)
	}
	// benchBilinear's Hessian is tridiagonal with unit off-diagonals:
	// Gershgorin gives 2.
	if math.Abs(k-2) > 1e-12 {
		t.Fatalf("bilinear Gershgorin bound = %v, want 2", k)
	}
	if !NewNode(0, bilinear).EnableElision() {
		t.Fatal("constant-Hessian function must enable elision automatically")
	}
}

func TestWithCurvatureRejectsBadBounds(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("WithCurvature(%v) did not panic", bad)
				}
			}()
			benchBilinear(2).WithCurvature(bad)
		}()
	}
}

// TestSolveRadius pins the closed form: a·t + ½·b·t² ≤ c.
func TestSolveRadius(t *testing.T) {
	cases := []struct {
		a, b, c, want float64
	}{
		{2, 0, 1, 0.5},          // pure Lipschitz
		{0, 2, 1, 1},            // pure curvature: ½·2·t² = 1 ⇒ t = 1
		{1, 2, 4, 1.5615528128}, // (√(1+16)−1)/2
		{1, 1, 0, 0},            // no margin
		{1, 1, -3, 0},           // violated margin
		{0, 0, 1, math.Inf(1)},  // constraint cannot move
	}
	for _, tc := range cases {
		got := solveRadius(tc.a, tc.b, tc.c)
		if math.IsInf(tc.want, 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("solveRadius(%v,%v,%v) = %v, want +Inf", tc.a, tc.b, tc.c, got)
			}
			continue
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("solveRadius(%v,%v,%v) = %v, want %v", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
	if solveRadius(1, 0, math.NaN()) != 0 {
		t.Fatal("NaN margin must give zero radius")
	}
}
