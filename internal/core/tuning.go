package core

import (
	"errors"
	"fmt"
	"sync"
)

// TuningData is a replayable prefix of the monitoring task: per round, the
// local vector of every node (rounds × nodes × dim). The first round also
// provides the initial vectors for the protocol's initial full sync.
type TuningData [][][]float64

// Validate checks the data is rectangular and matches the function.
func (t TuningData) Validate(f *Function, n int) error {
	if len(t) < 2 {
		return errors.New("core: tuning data needs at least two rounds")
	}
	for r, round := range t {
		if len(round) != n {
			return fmt.Errorf("core: tuning round %d has %d nodes, want %d", r, len(round), n)
		}
		for i, v := range round {
			if len(v) != f.Dim() {
				return fmt.Errorf("core: tuning round %d node %d has dim %d, want %d", r, i, len(v), f.Dim())
			}
		}
	}
	return nil
}

// directComm wires a coordinator straight to in-memory nodes; used for
// tuning replays (and reused by the simulation driver via the same pattern).
type directComm struct {
	nodes []*Node
}

func (c *directComm) RequestData(id int) []float64 { return c.nodes[id].LocalVector() }
func (c *directComm) SendSync(id int, m *Sync)     { c.nodes[id].ApplySync(m) }
func (c *directComm) SendSlack(id int, m *Slack)   { c.nodes[id].ApplySlack(m) }

// ReplayCounts reports the violations observed while replaying a dataset.
type ReplayCounts struct {
	Neighborhood int
	SafeZone     int
	Faulty       int
}

// Total returns the combined violation count minimized by Algorithm 2.
func (r ReplayCounts) Total() int { return r.Neighborhood + r.SafeZone + r.Faulty }

// Replay monitors the dataset with the given configuration and returns the
// violation counts. It is the "monitor with r" primitive of Algorithm 2.
func Replay(f *Function, data TuningData, n int, cfg Config) (ReplayCounts, error) {
	if err := data.Validate(f, n); err != nil {
		return ReplayCounts{}, err
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData(data[0][i])
	}
	coord := NewCoordinator(f, n, cfg, &directComm{nodes})
	if err := coord.Init(); err != nil {
		return ReplayCounts{}, err
	}
	for _, round := range data[1:] {
		for i, x := range round {
			v := nodes[i].UpdateData(x)
			if v == nil {
				continue
			}
			if err := coord.HandleViolation(v); err != nil {
				return ReplayCounts{}, err
			}
		}
	}
	stats := coord.Stats()
	return ReplayCounts{
		Neighborhood: stats.NeighborhoodViolations,
		SafeZone:     stats.SafeZoneViolations,
		Faulty:       stats.FaultyViolations,
	}, nil
}

// ErrBracketNotConverged is returned by Tune when neither end of the
// bracketing range reached its zero-violation goal within the halving
// budget: lo still sees safe-zone violations and hi still sees neighborhood
// violations. The TuneResult is still populated (with the best grid point
// over the degenerate bracket), so callers may inspect it, but a radius
// picked from such a bracket carries no Algorithm-2 quality argument.
var ErrBracketNotConverged = errors.New("core: tuning bracket did not converge at either end")

// TuneResult reports the outcome of the neighborhood-size tuning procedure.
type TuneResult struct {
	R          float64        // recommended neighborhood size r̂
	Lo, Hi     float64        // bracketing range searched
	Counts     ReplayCounts   // violations at the chosen r
	Replays    int            // number of monitoring replays performed (memoized reruns excluded)
	GridCounts []ReplayCounts // violation counts on the final grid
	GridR      []float64      // the grid itself

	// LoConverged reports whether lo eliminated safe-zone violations, and
	// HiConverged whether hi eliminated neighborhood violations, within the
	// halving budget. When both are false Tune also returns
	// ErrBracketNotConverged; when only one is false the bracket is usable
	// but one-sided, and the caller may want a larger tuning prefix.
	LoConverged bool
	HiConverged bool
}

// Tune implements Algorithm 2 (Neighborhood Size Tuning): bracket a range
// [lo, hi] where lo is small enough to eliminate safe-zone violations and hi
// large enough to eliminate neighborhood violations, then grid-search ten
// sizes in between for the fewest total violations. cfg.R is ignored.
//
// Replays are memoized on r: the bracket endpoints are re-visited by the
// grid (and phase 2 starts from phase 1's last b), so without memoization
// the same monitoring replay — by far the dominant cost — would run up to
// three times for the same radius.
func Tune(f *Function, data TuningData, n int, cfg Config) (TuneResult, error) {
	if err := data.Validate(f, n); err != nil {
		return TuneResult{}, err
	}
	replay := func(r float64) (ReplayCounts, error) {
		c := cfg
		c.R = r
		// Tuning replays are throwaway probe runs, not the monitored
		// deployment: give each its own private instruments. With a shared
		// registry the get-or-create semantics would hand every replay's
		// coordinator the same automon_coordinator_* counters, so the
		// bracketing search would read violation counts accumulated across
		// all prior replays (hi could never reach Neighborhood == 0) and the
		// caller's scrape would absorb the probes' events.
		c.Metrics = nil
		c.Tracer = nil
		// A probe run evaluating a candidate r must hold that r fixed: with
		// the adaptive controller live inside a replay, probes would retune —
		// and therefore Tune — recursively, and the violation counts would no
		// longer describe the candidate radius.
		c.AdaptiveR = false
		return Replay(f, data, n, c)
	}
	if cfg.TuneWorkers > 1 {
		return tuneWithWorkers(replay, cfg.TuneWorkers)
	}
	return tuneWith(replay)
}

// tuneWith is Tune's search logic over an abstract replay primitive; tests
// drive it with synthetic violation profiles.
func tuneWith(replay func(r float64) (ReplayCounts, error)) (TuneResult, error) {
	const maxHalvings = 20
	res := TuneResult{}

	memo := make(map[float64]ReplayCounts)
	run := func(r float64) (ReplayCounts, error) {
		if counts, ok := memo[r]; ok {
			return counts, nil
		}
		counts, err := replay(r)
		if err != nil {
			return counts, err
		}
		res.Replays++
		memo[r] = counts
		return counts, nil
	}

	// Phase 1: find b with neighborhood violations, starting from 1.
	b := 1.0
	var counts ReplayCounts
	var err error
	for i := 0; i < maxHalvings; i++ {
		counts, err = run(b)
		if err != nil {
			return res, err
		}
		if counts.Neighborhood > 0 {
			break
		}
		b /= 2
	}

	// Phase 2: push lo down until safe-zone violations vanish, and hi up
	// until neighborhood violations vanish. Either loop can exhaust its
	// halving budget without reaching the goal; that is recorded instead of
	// silently proceeding with a bad bracket.
	lo, hi := b, b
	for i := 0; i < maxHalvings; i++ {
		counts, err = run(lo)
		if err != nil {
			return res, err
		}
		if counts.SafeZone == 0 {
			res.LoConverged = true
			break
		}
		if i < maxHalvings-1 {
			lo /= 2
		}
	}
	for i := 0; i < maxHalvings; i++ {
		counts, err = run(hi)
		if err != nil {
			return res, err
		}
		if counts.Neighborhood == 0 {
			res.HiConverged = true
			break
		}
		if i < maxHalvings-1 {
			hi *= 2
		}
	}

	// Phase 3: grid search for the minimum total violations.
	res.Lo, res.Hi = lo, hi
	const gridSize = 10
	bestR := lo
	bestCounts := ReplayCounts{Neighborhood: 1 << 30}
	for i := 0; i < gridSize; i++ {
		r := lo + (hi-lo)*float64(i)/float64(gridSize-1)
		if r <= 0 {
			continue
		}
		counts, err = run(r)
		if err != nil {
			return res, err
		}
		res.GridR = append(res.GridR, r)
		res.GridCounts = append(res.GridCounts, counts)
		if counts.Total() < bestCounts.Total() {
			bestCounts = counts
			bestR = r
		}
	}
	res.R = bestR
	res.Counts = bestCounts
	if !res.LoConverged && !res.HiConverged {
		return res, ErrBracketNotConverged
	}
	return res, nil
}

// tuneWithWorkers is tuneWith with speculative parallel replays. Each phase
// of Algorithm 2 probes a radius sequence known in advance (halvings,
// doublings, the grid), so the search evaluates them in waves of `workers`
// concurrent replays and then scans the results in sequence order. The
// scan applies exactly the sequential stopping rules, so R, Lo, Hi, the
// grid, and the convergence flags are identical to tuneWith for the same
// replay primitive; only Replays can be larger, counting the speculative
// probes past each phase's stopping point.
func tuneWithWorkers(replay func(r float64) (ReplayCounts, error), workers int) (TuneResult, error) {
	const maxHalvings = 20
	res := TuneResult{}
	memo := make(map[float64]ReplayCounts)

	// runBatch replays every radius in rs not yet memoized, at most workers
	// at a time, and surfaces the error of the lowest-index failure — what a
	// sequential loop over rs would have returned first. The memo is only
	// touched after the batch fully drains, so it needs no lock.
	runBatch := func(rs []float64) error {
		todo := make([]float64, 0, len(rs))
		seen := make(map[float64]bool, len(rs))
		for _, r := range rs {
			if _, ok := memo[r]; !ok && !seen[r] {
				todo = append(todo, r)
				seen[r] = true
			}
		}
		if len(todo) == 0 {
			return nil
		}
		counts := make([]ReplayCounts, len(todo))
		errs := make([]error, len(todo))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, r := range todo {
			wg.Add(1)
			//automon:allow statepure bounded replay worker pool joined before return; results are indexed per replay and bit-identical at any worker count
			go func(i int, r float64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				counts[i], errs[i] = replay(r)
			}(i, r)
		}
		wg.Wait()
		for i, r := range todo {
			if errs[i] != nil {
				return errs[i]
			}
			res.Replays++
			memo[r] = counts[i]
		}
		return nil
	}

	// scan batches seq in waves and returns the first radius satisfying
	// done, mirroring a sequential walk of seq with early exit.
	scan := func(seq []float64, done func(ReplayCounts) bool) (float64, bool, error) {
		for w := 0; w < len(seq); w += workers {
			end := min(w+workers, len(seq))
			if err := runBatch(seq[w:end]); err != nil {
				return 0, false, err
			}
			for _, r := range seq[w:end] {
				if done(memo[r]) {
					return r, true, nil
				}
			}
		}
		return 0, false, nil
	}

	// Phase 1: find b with neighborhood violations, starting from 1. When no
	// candidate triggers, the sequential loop leaves b one halving past the
	// last (never-replayed) candidate.
	bs := make([]float64, maxHalvings)
	v := 1.0
	for i := range bs {
		bs[i] = v
		v /= 2
	}
	b := v
	if r, ok, err := scan(bs, func(c ReplayCounts) bool { return c.Neighborhood > 0 }); err != nil {
		return res, err
	} else if ok {
		b = r
	}

	// Phase 2: push lo down until safe-zone violations vanish, hi up until
	// neighborhood violations vanish. The sequential loops skip the final
	// halving/doubling, so an unconverged end stops at b·2^∓(maxHalvings−1).
	lo, hi := b, b
	los := make([]float64, maxHalvings)
	his := make([]float64, maxHalvings)
	vLo, vHi := b, b
	for i := 0; i < maxHalvings; i++ {
		los[i], his[i] = vLo, vHi
		vLo /= 2
		vHi *= 2
	}
	if r, ok, err := scan(los, func(c ReplayCounts) bool { return c.SafeZone == 0 }); err != nil {
		return res, err
	} else if ok {
		lo = r
		res.LoConverged = true
	} else {
		lo = los[maxHalvings-1]
	}
	if r, ok, err := scan(his, func(c ReplayCounts) bool { return c.Neighborhood == 0 }); err != nil {
		return res, err
	} else if ok {
		hi = r
		res.HiConverged = true
	} else {
		hi = his[maxHalvings-1]
	}

	// Phase 3: grid search for the minimum total violations, all points in
	// one batch.
	res.Lo, res.Hi = lo, hi
	const gridSize = 10
	grid := make([]float64, 0, gridSize)
	for i := 0; i < gridSize; i++ {
		r := lo + (hi-lo)*float64(i)/float64(gridSize-1)
		if r <= 0 {
			continue
		}
		grid = append(grid, r)
	}
	if err := runBatch(grid); err != nil {
		return res, err
	}
	bestR := lo
	bestCounts := ReplayCounts{Neighborhood: 1 << 30}
	for _, r := range grid {
		counts := memo[r]
		res.GridR = append(res.GridR, r)
		res.GridCounts = append(res.GridCounts, counts)
		if counts.Total() < bestCounts.Total() {
			bestCounts = counts
			bestR = r
		}
	}
	res.R = bestR
	res.Counts = bestCounts
	if !res.LoConverged && !res.HiConverged {
		return res, ErrBracketNotConverged
	}
	return res, nil
}
