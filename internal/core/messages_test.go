package core

// Property tests for the wire format: every message variant round-trips
// encode→decode exactly under randomized contents (seeded, so failures
// replay), every strict prefix of an encoding is rejected, and NaN payloads
// survive bit-exactly.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"automon/internal/linalg"
)

// randVec draws a vector with adversarial float contents: zeros, infinities,
// huge and tiny magnitudes. NaN is excluded here (NaN ≠ NaN defeats
// DeepEqual) and covered bit-exactly in TestNaNPayloadRoundTripsBitExact.
func randVec(rng *rand.Rand, maxLen int) []float64 {
	v := make([]float64, rng.Intn(maxLen+1))
	for i := range v {
		switch rng.Intn(6) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = math.Inf(1)
		case 2:
			v[i] = math.Inf(-1)
		case 3:
			v[i] = (rng.Float64() - 0.5) * 1e300
		case 4:
			v[i] = rng.Float64() * 1e-300
		default:
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

func randID(rng *rand.Rand) int { return rng.Intn(1 << 16) }

// messageGenerators builds one randomized instance per message variant; the
// round-trip property below must hold for each of them.
var messageGenerators = map[string]func(*rand.Rand) Message{
	"violation": func(rng *rand.Rand) Message {
		return &Violation{
			NodeID: randID(rng),
			Kind:   ViolationKind(1 + rng.Intn(3)),
			X:      randVec(rng, 16),
		}
	},
	"data-request": func(rng *rand.Rand) Message {
		return &DataRequest{NodeID: randID(rng)}
	},
	"data-response": func(rng *rand.Rand) Message {
		return &DataResponse{NodeID: randID(rng), X: randVec(rng, 16)}
	},
	"sync": func(rng *rand.Rand) Message {
		m := &Sync{
			NodeID: randID(rng),
			Method: Method(rng.Intn(3)), // MethodX, MethodE, MethodNone
			Kind:   DCKind(rng.Intn(2)),
			X0:     randVec(rng, 16),
			F0:     rng.NormFloat64(),
			GradF0: randVec(rng, 16),
			L:      -rng.Float64(),
			U:      rng.Float64(),
			Lam:    rng.Float64(),
			R:      rng.Float64(),
			Slack:  randVec(rng, 16),
		}
		if rng.Intn(2) == 1 {
			n := 1 + rng.Intn(4)
			m.WithMatrix = true
			m.Matrix = linalg.NewMat(n, n)
			for i := range m.Matrix.Data {
				m.Matrix.Data[i] = rng.NormFloat64()
			}
		}
		return m
	},
	"slack": func(rng *rand.Rand) Message {
		return &Slack{NodeID: randID(rng), Slack: randVec(rng, 16)}
	},
	"rejoin": func(rng *rand.Rand) Message {
		return &Rejoin{NodeID: randID(rng), X: randVec(rng, 16)}
	},
}

func TestMessageRoundTripProperty(t *testing.T) {
	for name, gen := range messageGenerators {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			for iter := 0; iter < 150; iter++ {
				m := gen(rng)
				got, err := Decode(m.Encode())
				if err != nil {
					t.Fatalf("iter %d: decode: %v", iter, err)
				}
				if !reflect.DeepEqual(m, got) {
					t.Fatalf("iter %d: round trip mismatch:\n got %#v\nwant %#v", iter, got, m)
				}
			}
		})
	}
}

func TestDecodeTruncatedProperty(t *testing.T) {
	// Every strict prefix of every variant's encoding must error, not panic
	// and not decode to a half-read message.
	for name, gen := range messageGenerators {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			for iter := 0; iter < 20; iter++ {
				full := gen(rng).Encode()
				for cut := 0; cut < len(full); cut++ {
					if _, err := Decode(full[:cut]); err == nil {
						t.Fatalf("iter %d: truncation at %d/%d bytes not detected",
							iter, cut, len(full))
					}
				}
			}
		})
	}
}

func TestNaNPayloadRoundTripsBitExact(t *testing.T) {
	// Vectors may legitimately carry NaN (e.g. an uninitialized feature);
	// the wire format must preserve the exact bit pattern, including the
	// NaN payload bits DeepEqual cannot compare.
	bits := []uint64{
		0x7ff8000000000001, // quiet NaN with payload
		math.Float64bits(math.NaN()),
		0xfff8000000000000, // negative quiet NaN
	}
	x := make([]float64, len(bits))
	for i, b := range bits {
		x[i] = math.Float64frombits(b)
	}
	got, err := Decode((&DataResponse{NodeID: 1, X: x}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := got.(*DataResponse)
	if !ok || len(resp.X) != len(bits) {
		t.Fatalf("decoded %#v", got)
	}
	for i, b := range bits {
		if gotBits := math.Float64bits(resp.X[i]); gotBits != b {
			t.Fatalf("element %d: bits %#x → %#x", i, b, gotBits)
		}
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := Decode([]byte{0xFF, 0, 0}); err == nil {
		t.Fatal("unknown type not rejected")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer not rejected")
	}
}

func TestViolationMessageSizeScalesWithDim(t *testing.T) {
	small := (&Violation{NodeID: 1, Kind: ViolationSafeZone, X: make([]float64, 10)}).Encode()
	big := (&Violation{NodeID: 1, Kind: ViolationSafeZone, X: make([]float64, 100)}).Encode()
	if len(big)-len(small) != 90*8 {
		t.Fatalf("payload scaling wrong: %d vs %d bytes", len(small), len(big))
	}
}
