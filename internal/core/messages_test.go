package core

import (
	"reflect"
	"testing"

	"automon/internal/linalg"
)

func TestMessageRoundTrips(t *testing.T) {
	mat := linalg.NewMat(2, 2)
	copy(mat.Data, []float64{1, 2, 2, 5})
	msgs := []Message{
		&Violation{NodeID: 3, Kind: ViolationSafeZone, X: []float64{1.5, -2.25}},
		&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{}},
		&Violation{NodeID: 7, Kind: ViolationFaulty, X: []float64{0}},
		&DataRequest{NodeID: 12},
		&DataResponse{NodeID: 12, X: []float64{3, 4, 5}},
		&Sync{
			NodeID: 1, Method: MethodX, Kind: ConcaveDiff,
			X0: []float64{0.5, -0.5}, F0: 2.5, GradF0: []float64{1, -1},
			L: 2, U: 3, Lam: 0.75, R: 0.1, Slack: []float64{0.01, -0.01},
		},
		&Sync{
			NodeID: 2, Method: MethodE, Kind: ConvexDiff,
			X0: []float64{1, 2}, F0: 0, GradF0: []float64{0, 0},
			L: -1, U: 1, Slack: []float64{0, 0},
			WithMatrix: true, Matrix: mat,
		},
		&Slack{NodeID: 9, Slack: []float64{-0.5, 0.25, 0}},
	}
	for _, m := range msgs {
		buf := m.Encode()
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%v: round trip mismatch:\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := (&Sync{
		NodeID: 1, Method: MethodX, Kind: ConvexDiff,
		X0: []float64{1, 2}, GradF0: []float64{3, 4}, Slack: []float64{5, 6},
	}).Encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := Decode([]byte{0xFF, 0, 0}); err == nil {
		t.Fatal("unknown type not rejected")
	}
}

func TestViolationMessageSizeScalesWithDim(t *testing.T) {
	small := (&Violation{NodeID: 1, Kind: ViolationSafeZone, X: make([]float64, 10)}).Encode()
	big := (&Violation{NodeID: 1, Kind: ViolationSafeZone, X: make([]float64, 100)}).Encode()
	if len(big)-len(small) != 90*8 {
		t.Fatalf("payload scaling wrong: %d vs %d bytes", len(small), len(big))
	}
}
