package core

import (
	"testing"
)

// FuzzDecode hardens the wire codec against malformed input: whatever the
// bytes, Decode must return an error or a well-formed message — never
// panic, never over-allocate. Run with `go test -fuzz FuzzDecode` for a
// real fuzzing session; the seed corpus below runs as a normal test.
func FuzzDecode(f *testing.F) {
	f.Add((&Violation{NodeID: 1, Kind: ViolationSafeZone, X: []float64{1, 2}}).Encode())
	f.Add((&DataRequest{NodeID: 9}).Encode())
	f.Add((&DataResponse{NodeID: 2, X: []float64{3}}).Encode())
	f.Add((&Sync{
		NodeID: 0, Method: MethodX, Kind: ConvexDiff,
		X0: []float64{1}, GradF0: []float64{2}, Slack: []float64{3},
	}).Encode())
	f.Add((&Slack{NodeID: 4, Slack: []float64{0.5}}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	// A vector header claiming a huge length with no payload behind it.
	f.Add([]byte{byte(MsgDataResponse), 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("Decode returned nil message with nil error")
		}
		// A successfully decoded message must re-encode without panicking.
		_ = m.Encode()
	})
}
