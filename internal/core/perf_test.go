package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"automon/internal/obs"
	"automon/internal/testenv"
)

// syncForZone packages a zone the way the coordinator ships it, so tests
// exercise the same ApplySync path nodes see in production.
func syncForZone(zone *SafeZone, r float64, d int) *Sync {
	m := &Sync{NodeID: 0, Method: zone.Method, Kind: zone.Kind,
		X0: zone.X0, F0: zone.F0, GradF0: zone.GradF0, L: zone.L, U: zone.U,
		Lam: zone.Lam, R: r, Slack: make([]float64, d)}
	if zone.Method == MethodE {
		m.WithMatrix = true
		if zone.Kind == ConvexDiff {
			m.Matrix = zone.HMinus
		} else {
			m.Matrix = zone.HPlus
		}
	}
	return m
}

// TestNodeUpdateZeroAllocsX locks in the allocation-free per-update path for
// ADCD-X zones: UpdateData on an in-zone point must not allocate.
func TestNodeUpdateZeroAllocsX(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	const d = 12
	f := benchCubic(d)
	x0 := make([]float64, d)
	for i := range x0 {
		x0[i] = 0.1 * float64(i%3)
	}
	grad := make([]float64, d)
	f0 := f.Grad(x0, grad)
	bLo, bHi := NeighborhoodBox(f, x0, 0.5)
	zone, err := BuildZoneX(f, x0, f0-1, f0+1, bLo, bHi, DecompOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(0, f)
	node.ApplySync(syncForZone(zone, 0.5, d))
	if v := node.UpdateData(x0); v != nil {
		t.Fatalf("x0 must be inside its own zone, got violation %+v", v)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if v := node.UpdateData(x0); v != nil {
			t.Fatalf("unexpected violation: %+v", v)
		}
	})
	if allocs != 0 {
		t.Fatalf("ADCD-X UpdateData allocates %.1f objects per run, want 0", allocs)
	}
}

// TestNodeUpdateZeroAllocsE does the same for the ADCD-E path, whose Contains
// check historically allocated a fresh difference vector per call.
func TestNodeUpdateZeroAllocsE(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	const d = 12
	f := benchBilinear(d)
	x0 := make([]float64, d)
	for i := range x0 {
		x0[i] = 0.2
	}
	dec, err := DecomposeE(f, x0)
	if err != nil {
		t.Fatal(err)
	}
	f0 := f.Value(x0)
	zone := BuildZoneE(f, dec, x0, f0-1, f0+1)
	node := NewNode(0, f)
	node.ApplySync(syncForZone(zone, 0, d))
	allocs := testing.AllocsPerRun(200, func() {
		if v := node.UpdateData(x0); v != nil {
			t.Fatalf("unexpected violation: %+v", v)
		}
	})
	if allocs != 0 {
		t.Fatalf("ADCD-E UpdateData allocates %.1f objects per run, want 0", allocs)
	}
}

// TestEvalMemoCutsEigsolves measures the dense eigendecomposition count per
// DecomposeX with and without the evaluation memo. The seed code solved the
// eigensystem once per objective evaluation and again per gradient
// evaluation; the shared cache makes every gradient call reuse the
// objective's solve, so the count must drop by at least the gradient-eval
// share (line-search probes, which are objective-only, still pay one solve
// each — the zone cache handles those; see TestEigsolvesPerZoneBuildDrop).
func TestEvalMemoCutsEigsolves(t *testing.T) {
	const d = 8
	f := benchCubic(d)
	x0 := make([]float64, d)
	bLo, bHi := NeighborhoodBox(f, x0, 0.5)

	count := func(disable bool) int64 {
		ctr := obs.NewCounter()
		opts := DecompOptions{Seed: 1, DisableEvalMemo: disable, EigsolveCounter: ctr}
		if _, err := DecomposeX(f, x0, bLo, bHi, opts); err != nil {
			t.Fatal(err)
		}
		return ctr.Load()
	}
	memo, noMemo := count(false), count(true)
	if memo <= 0 || noMemo <= 0 {
		t.Fatalf("eigensolve counters did not move: memo=%d nomemo=%d", memo, noMemo)
	}
	if memo >= noMemo {
		t.Fatalf("memoized DecomposeX used %d eigensolves vs %d unmemoized; want a reduction", memo, noMemo)
	}
	t.Logf("eigensolves per DecomposeX: %d memoized vs %d unmemoized (%.0f%% reduction)",
		memo, noMemo, 100*(1-float64(memo)/float64(noMemo)))
}

// TestEigsolvesPerZoneBuildDrop is the ISSUE acceptance measurement: the
// dense eigensolve count per ADCD-X zone build, read off the coordinator's
// obs counter, must drop ≥ 40% against the seed-equivalent configuration
// (no eval memo, no zone cache) when the full stack — shared
// objective/gradient memo plus the quantized LRU decomposition cache — is
// enabled and the global state drifts within one quantization cell.
func TestEigsolvesPerZoneBuildDrop(t *testing.T) {
	f := rosenbrockFunc()
	const n = 4
	const builds = 4 // Init + 3 resyncs

	run := func(cfg Config) float64 {
		nodes := make([]*Node, n)
		for i := range nodes {
			nodes[i] = NewNode(i, f)
			nodes[i].SetData([]float64{0.1 * float64(i), 0.05})
		}
		coord := NewCoordinator(f, n, cfg, &directComm{nodes})
		if err := coord.Init(); err != nil {
			t.Fatal(err)
		}
		if coord.Method() != MethodX {
			t.Fatalf("rosenbrock should decompose via ADCD-X, got %v", coord.Method())
		}
		for k := 1; k < builds; k++ {
			// Drift well inside the 1e-2 quantization cell, so a fresh
			// decomposition would be near-identical to the cached one.
			for i := range nodes {
				nodes[i].SetData([]float64{0.1*float64(i) + 1e-4*float64(k), 0.05})
			}
			if err := coord.Resync(); err != nil {
				t.Fatal(err)
			}
		}
		return float64(coord.Stats().Eigensolves) / builds
	}

	baseline := run(Config{Epsilon: 0.25, R: 0.5,
		Decomp: DecompOptions{Seed: 1, DisableEvalMemo: true}})
	cached := run(Config{Epsilon: 0.25, R: 0.5, ZoneCacheSize: 8,
		Decomp: DecompOptions{Seed: 1}})
	if baseline == 0 || cached == 0 {
		t.Fatalf("eigensolve counters did not move: baseline=%v cached=%v", baseline, cached)
	}
	if cached > 0.6*baseline {
		t.Fatalf("eigensolves per zone build: %.1f with memo+cache vs %.1f seed-equivalent; want ≥40%% drop",
			cached, baseline)
	}
	t.Logf("eigensolves per zone build: %.1f with memo+cache vs %.1f seed-equivalent (%.0f%% drop)",
		cached, baseline, 100*(1-cached/baseline))
}

// TestExtremeEigsOverBoxDeterministicAcrossWorkers checks the parallel
// eigenvalue search is bit-identical at any worker count: starts are
// pre-drawn from the seeded stream and the best is picked in start order.
func TestExtremeEigsOverBoxDeterministicAcrossWorkers(t *testing.T) {
	const d = 8
	f := benchCubic(d)
	x0 := make([]float64, d)
	for i := range x0 {
		x0[i] = 0.05 * float64(i)
	}
	bLo, bHi := NeighborhoodBox(f, x0, 0.5)
	opts := DecompOptions{Seed: 7, OptStarts: 3}

	run := func(workers int) (float64, float64) {
		o := opts
		o.Workers = workers
		lamMin, lamMax, err := ExtremeEigsOverBox(f, x0, bLo, bHi, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return lamMin, lamMax
	}
	seqMin, seqMax := run(1)
	for _, workers := range []int{2, 4, 8} {
		gotMin, gotMax := run(workers)
		if gotMin != seqMin || gotMax != seqMax {
			t.Fatalf("workers=%d: (λ̂min, λ̂max) = (%v, %v), sequential gave (%v, %v)",
				workers, gotMin, gotMax, seqMin, seqMax)
		}
	}
}

// TestConcurrentDecompositionsShareFunction hammers one *Function from many
// goroutines running full ADCD-X decompositions, each itself parallel. Run
// under -race this covers the evaluator isolation (the legacy search shared
// one gradient scratch and error slot across closures) and the sync.Pool
// scratch in EigGrad/autodiff.
func TestConcurrentDecompositionsShareFunction(t *testing.T) {
	const d = 6
	f := benchCubic(d)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x0 := make([]float64, d)
			for i := range x0 {
				x0[i] = 0.1 * float64((g+i)%4)
			}
			bLo, bHi := NeighborhoodBox(f, x0, 0.4)
			_, err := DecomposeX(f, x0, bLo, bHi, DecompOptions{Seed: int64(g), Workers: 2})
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestTuneParallelMatchesSequential runs Algorithm 2 on real Rosenbrock data
// sequentially and with speculative parallel replays, and requires identical
// tuning outcomes — only the replay count may differ (speculation probes past
// each phase's stopping point).
func TestTuneParallelMatchesSequential(t *testing.T) {
	f := rosenbrockFunc()
	data := rosenbrockData(rand.New(rand.NewSource(17)), 40, 4)
	base := Config{Epsilon: 0.25, Decomp: DecompOptions{Seed: 3}}

	seqCfg := base
	seq, seqErr := Tune(f, data, 4, seqCfg)
	parCfg := base
	parCfg.TuneWorkers = 4
	par, parErr := Tune(f, data, 4, parCfg)

	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("error mismatch: sequential=%v parallel=%v", seqErr, parErr)
	}
	if par.R != seq.R || par.Lo != seq.Lo || par.Hi != seq.Hi {
		t.Fatalf("radii diverged: parallel (R=%v Lo=%v Hi=%v) vs sequential (R=%v Lo=%v Hi=%v)",
			par.R, par.Lo, par.Hi, seq.R, seq.Lo, seq.Hi)
	}
	if par.LoConverged != seq.LoConverged || par.HiConverged != seq.HiConverged {
		t.Fatalf("convergence flags diverged: parallel (%v, %v) vs sequential (%v, %v)",
			par.LoConverged, par.HiConverged, seq.LoConverged, seq.HiConverged)
	}
	if par.Counts != seq.Counts {
		t.Fatalf("chosen-radius counts diverged: %+v vs %+v", par.Counts, seq.Counts)
	}
	if len(par.GridR) != len(seq.GridR) {
		t.Fatalf("grid sizes diverged: %d vs %d", len(par.GridR), len(seq.GridR))
	}
	for i := range seq.GridR {
		if par.GridR[i] != seq.GridR[i] || par.GridCounts[i] != seq.GridCounts[i] {
			t.Fatalf("grid point %d diverged: (%v, %+v) vs (%v, %+v)",
				i, par.GridR[i], par.GridCounts[i], seq.GridR[i], seq.GridCounts[i])
		}
	}
	if par.Replays < seq.Replays {
		t.Fatalf("parallel tuning replayed fewer radii (%d) than sequential (%d)", par.Replays, seq.Replays)
	}
}

// TestReplayDeterministicAcrossDecompWorkers replays the same monitoring
// prefix with sequential and parallel decomposition searches and requires
// identical violation counts: the protocol's decisions must not depend on
// the worker pool.
func TestReplayDeterministicAcrossDecompWorkers(t *testing.T) {
	f := rosenbrockFunc()
	data := rosenbrockData(rand.New(rand.NewSource(23)), 30, 4)
	run := func(workers int) ReplayCounts {
		counts, err := Replay(f, data, 4, Config{
			Epsilon: 0.25, R: 0.1,
			Decomp: DecompOptions{Seed: 5, Workers: workers},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return counts
	}
	seq := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != seq {
			t.Fatalf("workers=%d: counts %+v, sequential gave %+v", workers, got, seq)
		}
	}
}

// TestZoneCacheReusesDecompositions re-syncs a coordinator whose global state
// has not moved and checks the LRU cache skips the eigenvalue search while
// the monitored estimate stays intact.
func TestZoneCacheReusesDecompositions(t *testing.T) {
	f := rosenbrockFunc()
	const n = 4
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0.1 * float64(i), 0.05})
	}
	cfg := Config{Epsilon: 0.25, R: 0.5, ZoneCacheSize: 8}
	coord := NewCoordinator(f, n, cfg, &directComm{nodes})
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	if coord.Method() != MethodX {
		t.Fatalf("rosenbrock should decompose via ADCD-X, got %v", coord.Method())
	}
	after := coord.Stats()
	if after.ZoneCacheMisses == 0 {
		t.Fatalf("first sync should miss the zone cache: %+v", after)
	}
	solvesAfterInit := after.Eigensolves
	if solvesAfterInit == 0 {
		t.Fatal("initial sync performed no eigensolves")
	}

	estimate := coord.Estimate()
	for i := 0; i < 3; i++ {
		if err := coord.Resync(); err != nil {
			t.Fatal(err)
		}
	}
	stats := coord.Stats()
	if stats.ZoneCacheHits < 3 {
		t.Fatalf("re-syncs at an unchanged x0 should hit the cache, stats %+v", stats)
	}
	if stats.Eigensolves != solvesAfterInit {
		t.Fatalf("cache hits must not re-run the eigensolver: %d solves after init, %d after re-syncs",
			solvesAfterInit, stats.Eigensolves)
	}
	if got := coord.Estimate(); math.Abs(got-estimate) > 1e-12 {
		t.Fatalf("estimate drifted across cached syncs: %v vs %v", got, estimate)
	}
}
