package core

import (
	"math"
	"math/rand"
	"testing"

	"automon/internal/autodiff"
)

// --- RMax resolution and the §3.6 doubling cap -----------------------------

func TestResolveRMax(t *testing.T) {
	unbounded := rosenbrockFunc()
	bounded := NewFunction("boxed", 2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		return b.Add(b.Square(x[0]), b.Square(x[1]))
	}).WithDomain([]float64{-1, -3}, []float64{1, 3})

	cases := []struct {
		name string
		cfg  Config
		f    *Function
		want float64
	}{
		{"explicit cap wins", Config{R: 0.1, RMax: 7}, bounded, 7},
		{"negative disables the cap", Config{R: 0.1, RMax: -1}, bounded, math.MaxFloat64},
		{"zero derives the domain diameter", Config{R: 0.1}, bounded, 6},
		{"zero without a domain derives from the starting radius", Config{R: 0.1}, unbounded, 0.1 * defaultRMaxFactor},
		{"zero without domain or radius disables the cap", Config{}, unbounded, math.MaxFloat64},
		{"cap never sits below the starting radius", Config{R: 10, RMax: 1}, bounded, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := resolveRMax(tc.cfg, tc.f); got != tc.want {
				t.Fatalf("resolveRMax = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestRMaxCapsViolationStorm is the violation-storm regression test: before
// the cap, every RDoubleAfter-th consecutive neighborhood violation doubled r
// without bound, so a sustained storm drove r toward +Inf (overflowing the
// zone-cache quantizer on the way). With RMax the radius saturates and the
// clamps are counted.
func TestRMaxCapsViolationStorm(t *testing.T) {
	f := rosenbrockFunc()
	n := 2
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0, 0})
	}
	cfg := Config{Epsilon: 5, R: 0.01, RDoubleAfter: 1, RMax: 0.04, Decomp: DecompOptions{Seed: 1}}
	coord := NewCoordinator(f, n, cfg, &directComm{nodes})
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}

	const storm = 12
	for k := 0; k < storm; k++ {
		err := coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(coord.R(), 0) || math.IsNaN(coord.R()) {
			t.Fatalf("violation %d: r went non-finite (%v)", k, coord.R())
		}
		if coord.R() > cfg.RMax {
			t.Fatalf("violation %d: r = %v exceeds RMax %v", k, coord.R(), cfg.RMax)
		}
	}
	if coord.R() != cfg.RMax {
		t.Fatalf("storm should saturate r at RMax %v, got %v", cfg.RMax, coord.R())
	}
	st := coord.Stats()
	// 0.01 → 0.02 → 0.04 are genuine doublings; the remaining storm rounds
	// clamp.
	if st.RDoublings != 2 {
		t.Fatalf("RDoublings = %d, want 2", st.RDoublings)
	}
	if st.RSaturations != storm-2 {
		t.Fatalf("RSaturations = %d, want %d", st.RSaturations, storm-2)
	}
}

func TestDefaultRMaxBoundsUncappedStorm(t *testing.T) {
	// Even with RMax unset and no domain to derive a diameter from, the
	// default cap (1024·R) keeps a sustained storm finite.
	f := rosenbrockFunc()
	n := 2
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0, 0})
	}
	cfg := Config{Epsilon: 5, R: 0.01, RDoubleAfter: 1, Decomp: DecompOptions{Seed: 1}}
	coord := NewCoordinator(f, n, cfg, &directComm{nodes})
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	want := 0.01 * defaultRMaxFactor
	if coord.RMax() != want {
		t.Fatalf("derived RMax = %v, want %v", coord.RMax(), want)
	}
	for k := 0; k < 20; k++ {
		err := coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if coord.R() > want {
		t.Fatalf("r = %v exceeded the derived cap %v", coord.R(), want)
	}
	if coord.Stats().RSaturations == 0 {
		t.Fatal("a 20-doubling storm against a 1024× cap must saturate")
	}
}

// --- quantizeKey finiteness/range guard ------------------------------------

func TestQuantizeCellGuard(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		ok   bool
	}{
		{"ordinary value", 0.5, true},
		{"zero", 0, true},
		{"negative", -123.4, true},
		{"largest representable cell", maxQuantCell * DefaultZoneCacheQuantum, true},
		{"just past the representable range", maxQuantCell * DefaultZoneCacheQuantum * 4, false},
		{"huge", 1e300, false},
		{"+inf", math.Inf(1), false},
		{"-inf", math.Inf(-1), false},
		{"nan", math.NaN(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := quantizeCell(tc.v, DefaultZoneCacheQuantum); ok != tc.ok {
				t.Fatalf("quantizeCell(%v) ok = %v, want %v", tc.v, ok, tc.ok)
			}
		})
	}
}

func TestQuantizeKeyRejectsUnrepresentableInputs(t *testing.T) {
	x0 := []float64{1, 2}
	if _, ok := quantizeKey("s", BackendLBFGS, x0, 0.5, 1e-2); !ok {
		t.Fatal("finite inputs must quantize")
	}
	bad := []struct {
		name string
		x0   []float64
		r    float64
	}{
		{"huge radius", x0, 1e300},
		{"nan radius", x0, math.NaN()},
		{"inf coordinate", []float64{math.Inf(1), 0}, 0.5},
		{"huge coordinate", []float64{1e300, 0}, 0.5},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := quantizeKey("s", BackendLBFGS, tc.x0, tc.r, 1e-2); ok {
				t.Fatalf("quantizeKey accepted unrepresentable input")
			}
		})
	}
}

func TestFullSyncBypassesCacheOnUnquantizableKey(t *testing.T) {
	// A radius far past the quantizer's range must skip the cache (counted as
	// a bypass), not silently alias another entry's key. The quadratic has a
	// constant Hessian, so the interval backend stays exact on the huge box.
	f := NewFunction("quad", 2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		return b.Add(b.Square(x[0]), b.Square(x[1]))
	})
	n := 2
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0.1, 0.1})
	}
	cfg := Config{
		Epsilon: 1, R: 1e300, ForceADCDX: true, ZoneCacheSize: 8,
		Decomp: DecompOptions{Backend: BackendInterval},
	}
	coord := NewCoordinator(f, n, cfg, &directComm{nodes})
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	st := coord.Stats()
	if st.ZoneCacheBypasses != 1 {
		t.Fatalf("ZoneCacheBypasses = %d, want 1", st.ZoneCacheBypasses)
	}
	if st.ZoneCacheHits != 0 || st.ZoneCacheMisses != 0 {
		t.Fatalf("bypassed sync must not count as hit/miss: %+v", st)
	}
	if coord.zoneCache.Len() != 0 {
		t.Fatalf("bypassed sync stored %d cache entries", coord.zoneCache.Len())
	}
}

// --- ZoneCache.InvalidateScope ---------------------------------------------

func TestInvalidateScopeRemovesOnlyThatScope(t *testing.T) {
	zc := NewZoneCache(16)
	put := func(scope string, r float64) {
		key, ok := quantizeKey(scope, BackendLBFGS, []float64{r, -r}, r, 1e-2)
		if !ok {
			t.Fatalf("setup: key for scope %q failed to quantize", scope)
		}
		zc.put(key, &XDecomposition{})
	}
	put("a", 0.1)
	put("a", 0.2)
	put("ab", 0.1) // shares a's first byte: must survive InvalidateScope("a")
	put("b", 0.1)
	put("", 0.1) // empty scope (private cache): its own bucket

	if removed := zc.InvalidateScope("a"); removed != 2 {
		t.Fatalf("InvalidateScope(a) removed %d, want 2", removed)
	}
	if zc.Len() != 3 {
		t.Fatalf("cache holds %d entries after invalidation, want 3", zc.Len())
	}
	if removed := zc.InvalidateScope("a"); removed != 0 {
		t.Fatalf("second InvalidateScope(a) removed %d, want 0", removed)
	}
	if removed := zc.InvalidateScope(""); removed != 1 {
		t.Fatalf("InvalidateScope(\"\") removed %d, want 1 (only the empty scope)", removed)
	}
	if removed := zc.InvalidateScope("ab"); removed != 1 {
		t.Fatalf("InvalidateScope(ab) removed %d, want 1", removed)
	}
	if zc.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1 (scope b)", zc.Len())
	}
}

func TestScopePrefixesNeverNest(t *testing.T) {
	// The length prefix makes it impossible for one scope's rendered prefix
	// to be a prefix of another scope's keys — including adversarial scopes
	// that embed digits, colons, or each other.
	scopes := []string{"", "a", "ab", "1", "1:a", "11", ":", "a:1e", "2:ae"}
	for _, s1 := range scopes {
		for _, s2 := range scopes {
			if s1 == s2 {
				continue
			}
			key, ok := quantizeKey(s2, BackendLBFGS, []float64{0.3}, 0.5, 1e-2)
			if !ok {
				t.Fatalf("setup: scope %q key failed", s2)
			}
			if len(key) >= len(scopePrefix(s1)) && key[:len(scopePrefix(s1))] == scopePrefix(s1) {
				t.Fatalf("scope %q prefix-matches a key of scope %q: %q", s1, s2, key)
			}
		}
	}
}

func TestDoublingInvalidatesOwnScopeOnly(t *testing.T) {
	// Two coordinators share one process-wide cache. When group A's radius
	// doubles, its stale entries vanish immediately; group B's survive.
	shared := NewZoneCache(32)
	build := func(scope string, rDoubleAfter int) *Coordinator {
		f := rosenbrockFunc()
		n := 2
		nodes := make([]*Node, n)
		for i := range nodes {
			nodes[i] = NewNode(i, f)
			nodes[i].SetData([]float64{0, 0})
		}
		cfg := Config{
			Epsilon: 5, R: 0.01, RDoubleAfter: rDoubleAfter,
			SharedZoneCache: shared, ZoneCacheScope: scope,
			Decomp: DecompOptions{Seed: 1},
		}
		c := NewCoordinator(f, n, cfg, &directComm{nodes})
		if err := c.Init(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := build("a", 1)
	b := build("b", 1)
	lenAfterInit := shared.Len()
	if lenAfterInit < 2 {
		t.Fatalf("both groups should have cached their init decomposition, cache has %d", lenAfterInit)
	}

	// One neighborhood violation doubles a's radius (RDoubleAfter = 1).
	err := a.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats().RDoublings != 1 {
		t.Fatalf("setup: expected a doubling, stats %+v", a.Stats())
	}
	if a.Stats().ZoneCacheInvalidations == 0 {
		t.Fatal("doubling must invalidate the coordinator's cache scope")
	}
	if b.Stats().ZoneCacheInvalidations != 0 {
		t.Fatal("group b lost cache entries to group a's doubling")
	}
	// b's entry is still a hit.
	if err := b.Resync(); err != nil {
		t.Fatal(err)
	}
	if b.Stats().ZoneCacheHits == 0 {
		t.Fatal("group b's cached decomposition should have survived a's invalidation")
	}
}

// --- §3.6 streak/restore across RDoubleAfter boundaries --------------------

func TestStreakRestoreAcrossRDoubleBoundaries(t *testing.T) {
	// k consecutive neighborhood violations against RDoubleAfter = m must
	// produce exactly k/m doublings and leave the streak at k mod m — the
	// restore-after-fullSync logic must neither lose the running streak nor
	// carry it across a doubling.
	cases := []struct {
		rDoubleAfter, violations int
	}{
		{1, 1}, {1, 3},
		{2, 1}, {2, 2}, {2, 3}, {2, 4}, {2, 5},
		{3, 2}, {3, 3}, {3, 4}, {3, 6}, {3, 7},
		{5, 4}, {5, 5}, {5, 9}, {5, 10},
	}
	for _, tc := range cases {
		t.Run("", func(t *testing.T) {
			f := rosenbrockFunc()
			n := 2
			nodes := make([]*Node, n)
			for i := range nodes {
				nodes[i] = NewNode(i, f)
				nodes[i].SetData([]float64{0, 0})
			}
			cfg := Config{Epsilon: 5, R: 0.01, RDoubleAfter: tc.rDoubleAfter, Decomp: DecompOptions{Seed: 1}}
			coord := NewCoordinator(f, n, cfg, &directComm{nodes})
			if err := coord.Init(); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < tc.violations; k++ {
				err := coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
				if err != nil {
					t.Fatal(err)
				}
			}
			wantDoublings := tc.violations / tc.rDoubleAfter
			wantStreak := tc.violations % tc.rDoubleAfter
			if got := coord.Stats().RDoublings; got != wantDoublings {
				t.Fatalf("m=%d k=%d: RDoublings = %d, want %d", tc.rDoubleAfter, tc.violations, got, wantDoublings)
			}
			if coord.consecNeigh != wantStreak {
				t.Fatalf("m=%d k=%d: streak = %d, want %d", tc.rDoubleAfter, tc.violations, coord.consecNeigh, wantStreak)
			}
			wantR := 0.01 * math.Pow(2, float64(wantDoublings))
			if math.Abs(coord.R()-wantR) > 1e-15 {
				t.Fatalf("m=%d k=%d: r = %v, want %v", tc.rDoubleAfter, tc.violations, coord.R(), wantR)
			}
		})
	}
}

func TestRevivalPathIgnoresViolationKind(t *testing.T) {
	// A violation from a dead-marked node takes the revival path regardless of
	// kind: it is a rejoin, not a protocol violation. In particular a
	// neighborhood violation from a dead node must not extend the §3.6 streak
	// (its zone predates the death), and the forced full sync resets any
	// running streak.
	for _, kind := range []ViolationKind{ViolationNeighborhood, ViolationSafeZone, ViolationFaulty} {
		coord := streakCoordinator(t) // RDoubleAfter = 3
		// Run the streak to one short of a doubling.
		for k := 0; k < 2; k++ {
			err := coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
			if err != nil {
				t.Fatal(err)
			}
		}
		before := coord.Stats()
		coord.MarkDead(1)
		err := coord.HandleViolation(&Violation{NodeID: 1, Kind: kind, X: []float64{0.01, 0}})
		if err != nil {
			t.Fatal(err)
		}
		after := coord.Stats()
		if !coord.Live(1) {
			t.Fatalf("kind %v: node 1 not revived", kind)
		}
		if after.Rejoins != before.Rejoins+1 {
			t.Fatalf("kind %v: revival not counted as rejoin", kind)
		}
		// The revival is not a violation: no violation counter moves.
		if after.NeighborhoodViolations != before.NeighborhoodViolations ||
			after.SafeZoneViolations != before.SafeZoneViolations ||
			after.FaultyViolations != before.FaultyViolations {
			t.Fatalf("kind %v: revival counted as a violation: before %+v after %+v", kind, before, after)
		}
		if coord.consecNeigh != 0 {
			t.Fatalf("kind %v: revival full sync left streak at %d", kind, coord.consecNeigh)
		}
		if after.RDoublings != 0 {
			t.Fatalf("kind %v: revival triggered a doubling", kind)
		}
		// The streak really is gone: one more neighborhood violation must not
		// double (2 old + 1 new would have, had the reset been lost).
		err = coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
		if err != nil {
			t.Fatal(err)
		}
		if coord.Stats().RDoublings != 0 {
			t.Fatalf("kind %v: stale streak survived the revival sync", kind)
		}
	}
}

// --- adaptive radius controller --------------------------------------------

// adaptiveCoordinator builds a 2-node ADCD-X coordinator with the controller
// enabled and aggressive (test-friendly) EWMA/cooldown settings.
func adaptiveCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	f := rosenbrockFunc()
	n := 2
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0, 0})
	}
	coord := NewCoordinator(f, n, cfg, &directComm{nodes})
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	return coord
}

func TestControllerOnlyForADCDXWhenEnabled(t *testing.T) {
	saddle := saddleFunc() // constant Hessian → ADCD-E
	if c := NewCoordinator(saddle, 2, Config{Epsilon: 1, AdaptiveR: true}, &directComm{}); c.radius != nil {
		t.Fatal("controller attached to an ADCD-E coordinator")
	}
	rosen := rosenbrockFunc()
	if c := NewCoordinator(rosen, 2, Config{Epsilon: 1, R: 0.1}, &directComm{}); c.radius != nil {
		t.Fatal("controller attached without AdaptiveR")
	}
	c := NewCoordinator(rosen, 2, Config{Epsilon: 1, R: 0.1, AdaptiveR: true}, &directComm{})
	if c.radius == nil {
		t.Fatal("controller missing on an adaptive ADCD-X coordinator")
	}
	if c.radius.alpha != DefaultAdaptiveAlpha || c.radius.window != DefaultAdaptiveWindow {
		t.Fatalf("controller defaults not applied: alpha=%v window=%d", c.radius.alpha, c.radius.window)
	}
	if c.radius.cooldown != 2*c.Cfg.RDoubleAfter {
		t.Fatalf("cooldown default = %d, want %d", c.radius.cooldown, 2*c.Cfg.RDoubleAfter)
	}
}

func TestApplyPendingSwapsOnlyAtFullSync(t *testing.T) {
	coord := adaptiveCoordinator(t, Config{
		Epsilon: 5, R: 0.01, AdaptiveR: true, Decomp: DecompOptions{Seed: 1},
	})
	r0 := coord.R()

	// Stage a shrink: nothing changes until a sync.
	coord.radius.pendingR = r0 / 2
	if coord.R() != r0 {
		t.Fatal("staged radius leaked outside a full sync")
	}
	if coord.PendingR() != r0/2 {
		t.Fatalf("PendingR = %v, want %v", coord.PendingR(), r0/2)
	}
	if err := coord.Resync(); err != nil {
		t.Fatal(err)
	}
	if coord.R() != r0/2 {
		t.Fatalf("r = %v after sync, want staged %v", coord.R(), r0/2)
	}
	if coord.PendingR() != 0 {
		t.Fatal("pendingR not cleared by the swap")
	}
	if st := coord.Stats(); st.RShrinks != 1 || st.RGrows != 0 {
		t.Fatalf("swap direction miscounted: %+v", st)
	}
	if coord.radius.baseR != r0/2 {
		t.Fatalf("baseR = %v, want %v", coord.radius.baseR, r0/2)
	}

	// And a grow.
	coord.radius.pendingR = r0
	if err := coord.Resync(); err != nil {
		t.Fatal(err)
	}
	if coord.R() != r0 {
		t.Fatalf("r = %v after grow swap, want %v", coord.R(), r0)
	}
	if st := coord.Stats(); st.RShrinks != 1 || st.RGrows != 1 {
		t.Fatalf("swap direction miscounted: %+v", st)
	}
}

func TestSwapInvalidatesZoneCacheScope(t *testing.T) {
	coord := adaptiveCoordinator(t, Config{
		Epsilon: 5, R: 0.01, AdaptiveR: true, ZoneCacheSize: 8, Decomp: DecompOptions{Seed: 1},
	})
	if coord.zoneCache.Len() == 0 {
		t.Fatal("setup: init should have cached its decomposition")
	}
	coord.radius.pendingR = coord.R() / 2
	if err := coord.Resync(); err != nil {
		t.Fatal(err)
	}
	if coord.Stats().ZoneCacheInvalidations == 0 {
		t.Fatal("radius swap must invalidate the cache scope")
	}
}

func TestSwapDropsRestoredStreak(t *testing.T) {
	coord := adaptiveCoordinator(t, Config{
		Epsilon: 5, R: 0.01, RDoubleAfter: 5, AdaptiveR: true, Decomp: DecompOptions{Seed: 1},
	})
	neigh := func() {
		t.Helper()
		err := coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
		if err != nil {
			t.Fatal(err)
		}
	}
	neigh()
	neigh()
	if coord.consecNeigh != 2 {
		t.Fatalf("setup: streak = %d, want 2", coord.consecNeigh)
	}
	// Stage a swap; the next violation's full sync applies it, so the streak
	// restore must be dropped — those violations indicted the old radius.
	coord.radius.pendingR = coord.R() * 1.5
	neigh()
	if coord.consecNeigh != 0 {
		t.Fatalf("streak = %d after a radius swap, want 0", coord.consecNeigh)
	}
}

func TestAdaptiveShrinkAfterStormEndToEnd(t *testing.T) {
	// The headline bug: a burst inflates r via §3.6 and, without the
	// controller, it stays inflated forever. Here a short storm doubles r,
	// then a calm safe-zone-dominated regime trips the shrink trigger; the
	// re-bracket stages a smaller radius and the next sync swaps it in.
	coord := adaptiveCoordinator(t, Config{
		Epsilon: 5, R: 0.01, RDoubleAfter: 2, DisableLazySync: true,
		AdaptiveR: true, AdaptiveAlpha: 0.8, AdaptiveCooldown: 2, AdaptiveWindow: 4,
		Decomp: DecompOptions{Seed: 1},
	})
	r0 := coord.R()

	// Storm: two neighborhood violations double r.
	for k := 0; k < 2; k++ {
		err := coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if coord.R() != 2*r0 {
		t.Fatalf("setup: storm did not double r (r = %v)", coord.R())
	}

	// Calm: safe-zone violations from points hugging the reference. With
	// α = 0.8 the neighborhood EWMA collapses below the shrink threshold in
	// two observations while the safe-zone and full-sync EWMAs saturate.
	var shrunk bool
	for k := 0; k < 6; k++ {
		err := coord.HandleViolation(&Violation{NodeID: 1, Kind: ViolationSafeZone, X: []float64{0.005, 0}})
		if err != nil {
			t.Fatal(err)
		}
		if coord.R() < 2*r0 {
			shrunk = true
			break
		}
	}
	if !shrunk {
		t.Fatalf("calm regime never shrank r: r = %v, stats %+v", coord.R(), coord.Stats())
	}
	st := coord.Stats()
	if st.AdaptiveRetunes == 0 {
		t.Fatalf("shrink happened without a counted re-tune: %+v", st)
	}
	if st.RShrinks == 0 {
		t.Fatalf("shrink happened without a counted swap: %+v", st)
	}
	if coord.radius.baseR != coord.R() {
		t.Fatalf("baseR = %v not updated to the swapped radius %v", coord.radius.baseR, coord.R())
	}
}

func TestRetuneProbesDoNotPolluteInstruments(t *testing.T) {
	// The controller's background re-brackets replay the window on throwaway
	// coordinators; none of their protocol events may leak into the monitored
	// deployment's counters (beyond the retune/stage events themselves).
	coord := adaptiveCoordinator(t, Config{
		Epsilon: 5, R: 0.01, RDoubleAfter: 2, DisableLazySync: true,
		AdaptiveR: true, AdaptiveAlpha: 0.8, AdaptiveCooldown: 2, AdaptiveWindow: 4,
		Decomp: DecompOptions{Seed: 1},
	})
	for k := 0; k < 2; k++ {
		err := coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
		if err != nil {
			t.Fatal(err)
		}
	}
	before := coord.Stats()
	// Trip the shrink trigger; the retune replays the window internally.
	for k := 0; k < 4; k++ {
		err := coord.HandleViolation(&Violation{NodeID: 1, Kind: ViolationSafeZone, X: []float64{0.005, 0}})
		if err != nil {
			t.Fatal(err)
		}
	}
	after := coord.Stats()
	if after.AdaptiveRetunes == 0 {
		t.Skip("retune did not trigger; nothing to check")
	}
	// 4 handled safe-zone violations → exactly 4 more violations and 4 more
	// full syncs on the real coordinator; replay probes would have added
	// dozens.
	if after.SafeZoneViolations != before.SafeZoneViolations+4 {
		t.Fatalf("probe violations leaked into the deployment: %+v → %+v", before, after)
	}
	if after.FullSyncs != before.FullSyncs+4 {
		t.Fatalf("probe syncs leaked into the deployment: %+v → %+v", before, after)
	}
}

func TestAdaptiveDriftFreeRunIsBitIdentical(t *testing.T) {
	// On a stationary (drift-free) stream at a well-fitted radius the
	// controller must never act: the adaptive run's estimate trace is
	// bit-identical to the static run's, swap counters stay zero, and the
	// protocol counters agree exactly.
	mkData := func() TuningData {
		rng := rand.New(rand.NewSource(77))
		data := make(TuningData, 120)
		for r := range data {
			data[r] = make([][]float64, 4)
			for i := 0; i < 4; i++ {
				data[r][i] = []float64{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2}
			}
		}
		return data
	}
	run := func(adaptive bool) ([]uint64, CoordStats) {
		f := rosenbrockFunc()
		data := mkData()
		n := 4
		nodes := make([]*Node, n)
		for i := range nodes {
			nodes[i] = NewNode(i, f)
			nodes[i].SetData(data[0][i])
		}
		cfg := Config{Epsilon: 0.5, R: 0.4, AdaptiveR: adaptive, Decomp: DecompOptions{Seed: 3}}
		coord := NewCoordinator(f, n, cfg, &directComm{nodes})
		if err := coord.Init(); err != nil {
			t.Fatal(err)
		}
		var trace []uint64
		for _, round := range data[1:] {
			for i, x := range round {
				if v := nodes[i].UpdateData(x); v != nil {
					if err := coord.HandleViolation(v); err != nil {
						t.Fatal(err)
					}
				}
			}
			trace = append(trace, math.Float64bits(coord.Estimate()))
		}
		return trace, coord.Stats()
	}
	staticTrace, staticStats := run(false)
	adaptiveTrace, adaptiveStats := run(true)
	for i := range staticTrace {
		if staticTrace[i] != adaptiveTrace[i] {
			t.Fatalf("round %d: estimates diverge (static %x, adaptive %x)", i, staticTrace[i], adaptiveTrace[i])
		}
	}
	if adaptiveStats.RShrinks != 0 || adaptiveStats.RGrows != 0 || adaptiveStats.AdaptiveRetunes != 0 {
		t.Fatalf("controller acted on a drift-free run: %+v", adaptiveStats)
	}
	if staticStats != adaptiveStats {
		t.Fatalf("stats diverge:\nstatic   %+v\nadaptive %+v", staticStats, adaptiveStats)
	}
}
