package core

import (
	"math/rand"
	"testing"
)

// rosenbrockData samples the §3.6 workload: entries drawn from N(0, 0.2²).
func rosenbrockData(rng *rand.Rand, rounds, n int) TuningData {
	data := make(TuningData, rounds)
	for r := range data {
		data[r] = make([][]float64, n)
		for i := 0; i < n; i++ {
			data[r][i] = []float64{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2}
		}
	}
	return data
}

func TestReplayCountsViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := rosenbrockFunc()
	data := rosenbrockData(rng, 60, 4)
	cfg := Config{Epsilon: 0.25, R: 0.05, Decomp: DecompOptions{Seed: 1}}
	counts, err := Replay(f, data, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny neighborhood on noisy data must produce neighborhood violations.
	if counts.Neighborhood == 0 {
		t.Fatalf("expected neighborhood violations with r=0.05, got %+v", counts)
	}
}

func TestReplayValidatesData(t *testing.T) {
	f := rosenbrockFunc()
	if _, err := Replay(f, TuningData{}, 2, Config{Epsilon: 0.1, R: 1}); err == nil {
		t.Fatal("empty data must be rejected")
	}
	bad := TuningData{{{1, 2}}, {{1, 2}}} // 1 node, expected 2
	if _, err := Replay(f, bad, 2, Config{Epsilon: 0.1, R: 1}); err == nil {
		t.Fatal("node-count mismatch must be rejected")
	}
	bad2 := TuningData{{{1}, {1}}, {{1}, {1}}} // dim 1, expected 2
	if _, err := Replay(f, bad2, 2, Config{Epsilon: 0.1, R: 1}); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
}

func TestTuneTradesOffViolationTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := rosenbrockFunc()
	n := 4
	data := rosenbrockData(rng, 80, n)
	cfg := Config{Epsilon: 0.25, Decomp: DecompOptions{Seed: 2}}
	res, err := Tune(f, data, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.R <= 0 {
		t.Fatalf("tuned r = %v, want > 0", res.R)
	}
	if res.R < res.Lo-1e-12 || res.R > res.Hi+1e-12 {
		t.Fatalf("tuned r %v outside bracket [%v, %v]", res.R, res.Lo, res.Hi)
	}
	if len(res.GridR) == 0 {
		t.Fatal("grid search produced no candidates")
	}
	// The tuned r must be at least as good as every grid candidate.
	for i, c := range res.GridCounts {
		if c.Total() < res.Counts.Total() {
			t.Fatalf("grid point r=%v has %d violations < chosen %d", res.GridR[i], c.Total(), res.Counts.Total())
		}
	}
	// And monitoring with the tuned r must beat a pathologically small and a
	// pathologically large fixed neighborhood.
	run := func(r float64) int {
		c := cfg
		c.R = r
		counts, err := Replay(f, data, n, c)
		if err != nil {
			t.Fatal(err)
		}
		return counts.Total()
	}
	tuned := run(res.R)
	tiny := run(res.Lo / 64)
	if tiny < tuned {
		t.Fatalf("tiny r (%d violations) beat tuned r (%d)", tiny, tuned)
	}
}

func TestTuneIsDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := rosenbrockFunc()
	data := rosenbrockData(rng, 50, 3)
	cfg := Config{Epsilon: 0.3, Decomp: DecompOptions{Seed: 5}}
	r1, err := Tune(f, data, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tune(f, data, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.R != r2.R {
		t.Fatalf("tuning not deterministic: %v vs %v", r1.R, r2.R)
	}
}
