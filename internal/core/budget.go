// Safe-zone check elision: a conservative distance-to-boundary budget that
// lets the ingestion fast path skip exact safe-zone checks.
//
// After every exact check that passes at the slacked point v = x + s, the
// node computes a radius ρ such that *no* local constraint — neighborhood
// box, ADCD safe zone, §3.7 admissible region — can fail at any point v'
// with ‖v' − v‖₂ ≤ ρ. Each subsequent event spends a cheap upper bound on
// its own ‖Δx‖₂ from the budget; while the budget stays positive the vector
// provably cannot have left the safe set, so the exact check is elided. The
// first event that exhausts the budget re-runs the exact check (and, on a
// pass, refreshes the budget). Because elided events are *proven*
// non-violations, the sequence of violations and syncs is bit-identical to
// the per-event path — the first failing exact check lands on the same event
// in both. DESIGN.md ("Check elision") carries the derivation; the
// differential and fuzz harnesses in internal/ingest enforce the invariant.
package core

import (
	"math"

	"automon/internal/linalg"
)

// budgetSafety shaves a fraction off every refreshed budget so ulp-level
// rounding in the Taylor-style bounds below can never overstate the true
// distance to the boundary.
const budgetSafety = 0.999

// elision is the per-node check-elision state. Budgets are derived from the
// installed zone and invalidated on any event that changes what the exact
// check would see (sync, slack rebalance, raw SetData).
type elision struct {
	enabled    bool
	curv       float64 // bound on ‖∇²f‖₂ (see Function.CurvBound)
	domainOnly bool    // curv valid only inside F's domain box
	valid      bool
	budget     float64 // remaining movement radius (L2, on x)
	grad       []float64

	// mnorm caches the Gershgorin bound on ‖H∓‖₂ for the ADCD-E matrix
	// identified by mnormFor; the matrix is shipped once per node, so the
	// cache hits on every refresh after the first.
	mnorm    float64
	mnormFor *linalg.Mat
}

// EnableElision turns on safe-zone check elision for this node. It reports
// false — leaving the node on the per-event path — when no curvature bound
// is available for the function (non-constant Hessian and no WithCurvature).
// The resolved bound is cached on the node so the hot path never touches the
// sync.Once inside CurvBound.
func (n *Node) EnableElision() bool {
	k, domainOnly, ok := n.F.CurvBound()
	if !ok {
		return false
	}
	n.el.enabled = true
	n.el.curv = k
	n.el.domainOnly = domainOnly
	if n.el.grad == nil {
		n.el.grad = make([]float64, n.F.Dim())
	}
	n.resetBudget()
	return true
}

// ElisionEnabled reports whether EnableElision succeeded on this node.
func (n *Node) ElisionEnabled() bool { return n.el.enabled }

// resetBudget invalidates the elision budget; the next SpendBudget forces an
// exact check. Called whenever the zone, slack, or raw vector changes
// outside the elided update path.
func (n *Node) resetBudget() {
	n.el.valid = false
	n.el.budget = 0
}

// SpendBudget debits norm — an upper bound on the L2 change of the local
// vector caused by the next event — from the elision budget and reports
// whether an exact check is required before that event's effect can be
// trusted. A NaN or negative norm invalidates the budget (forcing exact
// checks), never the other way around: accounting errors degrade throughput,
// not soundness.
//
//automon:hotpath
func (n *Node) SpendBudget(norm float64) bool {
	e := &n.el
	if !e.enabled || !e.valid {
		return true
	}
	if !(norm >= 0) {
		e.valid = false
		e.budget = 0
		return true
	}
	e.budget -= norm
	return !(e.budget > 0)
}

// UpdateDataRefresh is UpdateData for the elided path: it replaces the local
// vector, runs the exact constraint check, and — when the check passes —
// refreshes the elision budget from the current zone geometry. On a
// violation the budget stays invalid (the coordinator's resolution will
// reset state anyway).
//
//automon:hotpath
func (n *Node) UpdateDataRefresh(x []float64) *Violation {
	n.SetData(x)
	v := n.Check()
	if v == nil {
		n.refreshBudget()
	}
	return v
}

// refreshBudget recomputes the distance-to-boundary budget at the current
// slacked point. It mirrors the constraint structure of Check /
// ContainsScratch: for each constraint it computes the margin (how far the
// constraint is from failing) and the fastest the constraint's left-hand
// side can move per unit of L2 vector movement (a first-order Lipschitz term
// plus a curvature term), then inverts that growth curve via solveRadius.
// Any NaN collapses the budget to invalid, which degrades to per-event
// checking.
func (n *Node) refreshBudget() {
	e := &n.el
	if !e.enabled || !n.haveZone {
		return
	}
	z := n.zone
	if z.Custom != nil || z.Method == MethodCustom {
		// Hand-crafted zones expose no geometry to bound; stay per-event.
		e.valid = false
		e.budget = 0
		return
	}
	linalg.Add(n.v, n.x, n.slack)
	v := n.v
	fv := n.F.Grad(v, e.grad)
	gnorm := linalg.Norm2(e.grad)
	k := e.curv

	// §3.7 admissible region L ≤ f(v) ≤ U. Check enforces it for every
	// method except MethodNone — whose safe-zone check is the same pair of
	// constraints — so both margins bound the budget for all methods.
	budget := solveRadius(gnorm, k, z.U-fv)
	budget = math.Min(budget, solveRadius(gnorm, k, fv-z.L))

	if z.Method == MethodX || z.Method == MethodE {
		dist := math.Sqrt(linalg.SqDist(v, z.X0))
		gn0 := linalg.Norm2(z.GradF0)
		lin := z.F0
		for i := range v {
			lin += z.GradF0[i] * (v[i] - z.X0[i])
		}
		// q is the quadratic term of containsWithQuadratic at v — exact for
		// ADCD-X, and for ADCD-E the upper bound q̄ = ½‖H∓‖·dist² (all four
		// constraint margins shrink as q grows, so an overstated q is
		// conservative). qa/qb bound q's growth: moving the point by t gives
		// q(v') ≤ q + qa·t + ½·qb·t².
		var q, qa, qb float64
		if z.Method == MethodX {
			qb = z.Lam
		} else {
			m := z.HMinus
			if z.Kind == ConcaveDiff {
				m = z.HPlus
			}
			if m != e.mnormFor {
				e.mnorm = gershgorinAbs(m)
				e.mnormFor = m
			}
			qb = e.mnorm
		}
		qa = qb * dist
		q = 0.5 * qb * dist * dist
		if z.Kind == ConvexDiff {
			// g(v') = f(v') + q(v') ≤ U and ȟ(v') = q(v') ≤ lin(v') − L.
			budget = math.Min(budget, solveRadius(gnorm+qa, k+qb, z.U-fv-q))
			budget = math.Min(budget, solveRadius(gn0+qa, qb, lin-z.L-q))
		} else {
			// −q(v') ≥ lin(v') − U and f(v') − q(v') ≥ L.
			budget = math.Min(budget, solveRadius(gn0+qa, qb, z.U-lin-q))
			budget = math.Min(budget, solveRadius(gnorm+qa, k+qb, fv-q-z.L))
		}
	}

	// The neighborhood box bounds movement in L∞, which L2 movement can only
	// under-shoot, so its margin caps the budget directly. When the
	// curvature bound is domain-only and no box confines the trajectory, the
	// domain box stands in — beyond it the Taylor bounds above are void.
	if len(z.BLo) > 0 {
		budget = math.Min(budget, boxMargin(v, z.BLo, z.BHi))
	} else if e.domainOnly {
		budget = math.Min(budget, boxMargin(v, n.F.DomainLo, n.F.DomainHi))
	}

	budget *= budgetSafety
	if !(budget >= 0) { // NaN (or a just-failing margin): force exact checks
		e.valid = false
		e.budget = 0
		return
	}
	e.valid = true
	e.budget = budget
}

// solveRadius returns the largest t ≥ 0 with a·t + ½·b·t² ≤ c — the movement
// radius at which a constraint with margin c, first-order speed a and
// curvature b could first fail. Non-positive margins give 0 (the constraint
// is already tight); a degenerate growth curve (a ≤ 0, b ≤ 0) gives +Inf.
func solveRadius(a, b, c float64) float64 {
	if !(c > 0) {
		return 0
	}
	if b <= 0 {
		if a <= 0 {
			return math.Inf(1)
		}
		return c / a
	}
	return (math.Sqrt(a*a+2*b*c) - a) / b
}

// boxMargin returns the L∞ distance from v to the boundary of [lo, hi]
// (+Inf when no box). Negative components clamp to 0: the point is outside,
// so no movement is provably safe.
func boxMargin(v, lo, hi []float64) float64 {
	if len(lo) == 0 {
		return math.Inf(1)
	}
	m := math.Inf(1)
	for i := range v {
		m = math.Min(m, v[i]-lo[i])
		m = math.Min(m, hi[i]-v[i])
	}
	if !(m > 0) {
		return 0
	}
	return m
}

// gershgorinAbs bounds the spectral norm of a symmetric matrix by its
// largest absolute row sum.
func gershgorinAbs(m *linalg.Mat) float64 {
	var bound float64
	for i := 0; i < m.Rows; i++ {
		var row float64
		for j := 0; j < m.Cols; j++ {
			row += math.Abs(m.At(i, j))
		}
		if row > bound {
			bound = row
		}
	}
	return bound
}
