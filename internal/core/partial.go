package core

import (
	"automon/internal/linalg"
)

// Partial is the shard-to-parent partial-aggregate frame of the hierarchical
// coordinator (internal/shard). A leaf answers its parent's collect with the
// exact per-dimension partial sums (linalg.Acc) over its live partition plus
// the weight (live-node count) it folded in; because the accumulators are
// exact, the parent's merge — at any fan-out and any tree depth — reproduces
// the flat coordinator's reference point bit-for-bit.
//
// A Partial with a non-zero Kind escalates a violation the shard could not
// absorb locally: NodeID identifies the violating node in the global
// numbering, and the aggregate fields still describe the shard's current
// partition so the parent can fold it without another round trip.
//
// Epoch tags the root full-sync generation the partial was computed against.
// A parent discards partials from a stale epoch: they describe a reference
// point that no longer exists (e.g. a sub-tree that missed a sync while
// partitioned away and answers an old collect after rejoining).
type Partial struct {
	ShardID int
	Kind    ViolationKind // 0 = pure aggregate; a violation kind when escalating
	Epoch   uint64
	NodeID  int // violator's global node ID when Kind != 0, else -1
	Weight  int // live nodes folded into Accs
	Accs    []linalg.Acc
}

// SubtreeRejoin re-registers an entire sub-tree after a partition heals: the
// shard's global node IDs and their fresh vectors, in ascending ID order.
// The parent re-admits every node and runs one full sync over the healed
// population, exactly like a single-node Rejoin writ large.
type SubtreeRejoin struct {
	ShardID int
	IDs     []int
	Xs      [][]float64
}

// Type implements Message.
func (*Partial) Type() MsgType { return MsgPartial }

// Type implements Message.
func (*SubtreeRejoin) Type() MsgType { return MsgSubtreeRejoin }

// Encode implements Message.
func (m *Partial) Encode() []byte {
	e := &encoder{}
	e.u8(uint8(MsgPartial))
	e.u16(uint16(m.ShardID))
	e.u8(uint8(m.Kind))
	e.u64(m.Epoch)
	// NodeID is offset by one on the wire so the no-violator sentinel (-1)
	// stays in unsigned range.
	e.u32(uint32(m.NodeID + 1))
	e.u32(uint32(m.Weight))
	e.u32(uint32(len(m.Accs)))
	for i := range m.Accs {
		e.buf = m.Accs[i].AppendBinary(e.buf)
	}
	return e.buf
}

// Encode implements Message.
func (m *SubtreeRejoin) Encode() []byte {
	e := &encoder{}
	e.u8(uint8(MsgSubtreeRejoin))
	e.u16(uint16(m.ShardID))
	e.u32(uint32(len(m.IDs)))
	for i, id := range m.IDs {
		e.u32(uint32(id))
		e.vec(m.Xs[i])
	}
	return e.buf
}

// decodePartial parses a Partial body (after the type byte). Every length is
// validated against the remaining buffer before allocation, and each
// accumulator window is decoded through linalg.DecodeAcc, which rejects
// out-of-range windows; hostile input fails cleanly instead of panicking or
// allocating unboundedly.
func decodePartial(d *decoder) (*Partial, error) {
	m := &Partial{ShardID: int(d.u16())}
	m.Kind = ViolationKind(d.u8())
	m.Epoch = d.u64()
	m.NodeID = int(int32(d.u32())) - 1
	m.Weight = int(int32(d.u32()))
	dims := d.u32()
	// Each accumulator occupies at least 1 byte on the wire; a dims prefix
	// larger than the remaining buffer is hostile.
	if d.err != nil || uint64(len(d.buf)) < uint64(dims) {
		d.fail()
		return nil, d.err
	}
	if m.Kind != 0 && m.Kind != ViolationNeighborhood && m.Kind != ViolationSafeZone && m.Kind != ViolationFaulty {
		d.fail()
		return nil, d.err
	}
	if m.Weight < 0 || (m.Kind != 0 && m.NodeID < 0) {
		d.fail()
		return nil, d.err
	}
	m.Accs = make([]linalg.Acc, dims)
	for i := range m.Accs {
		a, rest, err := linalg.DecodeAcc(d.buf)
		if err != nil {
			d.err = err
			return nil, d.err
		}
		m.Accs[i] = *a
		d.buf = rest
	}
	return m, d.err
}

// decodeSubtreeRejoin parses a SubtreeRejoin body (after the type byte).
func decodeSubtreeRejoin(d *decoder) (*SubtreeRejoin, error) {
	m := &SubtreeRejoin{ShardID: int(d.u16())}
	n := d.u32()
	// Each entry needs at least an ID word and a vector length word.
	if d.err != nil || uint64(len(d.buf)) < 8*uint64(n) {
		d.fail()
		return nil, d.err
	}
	m.IDs = make([]int, 0, n)
	m.Xs = make([][]float64, 0, n)
	prev := -1
	for i := uint32(0); i < n; i++ {
		id := int(int32(d.u32()))
		x := d.vec()
		if d.err != nil {
			return nil, d.err
		}
		if id <= prev {
			// IDs must be ascending and non-negative: duplicates or shuffled
			// numbering would double-count nodes in the healed population.
			d.fail()
			return nil, d.err
		}
		prev = id
		m.IDs = append(m.IDs, id)
		m.Xs = append(m.Xs, x)
	}
	return m, d.err
}
