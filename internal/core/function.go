// Package core implements the AutoMon algorithm (Sivan, Gabel, Schuster;
// SIGMOD 2022): automatic, communication-efficient distributed monitoring of
// arbitrary multivariate functions of the average of dynamic local vectors.
//
// The package contains the complete pipeline described in §3 of the paper:
//
//   - ADCD-X (§3.1): extreme Hessian eigenvalues over a neighborhood B found
//     by box-constrained numerical optimization on top of automatic
//     differentiation, turned into a DC decomposition via Lemma 1.
//   - ADCD-E (§3.2): exact eigendecomposition split H = H⁻ + H⁺ for
//     constant-Hessian functions (Lemma 2), detected automatically from the
//     computational graph.
//   - Local constraints (§3.3) and the convex/concave DC heuristic (§3.4).
//   - The coordinator/node protocol with slack and LRU lazy sync (§3.5).
//   - Neighborhood-size tuning, Algorithm 2 (§3.6), plus the runtime r·2
//     fallback heuristic.
//   - The §3.7 sanity check guarding against inaccurate eigenvalue bounds.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"automon/internal/autodiff"
	"automon/internal/interval"
	"automon/internal/linalg"
)

// Function is a monitored function: a compiled autodiff graph plus optional
// domain bounds. It is immutable after construction and safe for concurrent
// use by a coordinator and many nodes.
type Function struct {
	Name  string
	Graph *autodiff.Graph

	// DomainLo/DomainHi bound the domain D of f per coordinate. nil means
	// unbounded. Data and neighborhood boxes are intersected with D.
	DomainLo, DomainHi []float64

	tangentOnce sync.Once
	tangent     *autodiff.Graph

	intervalOnce sync.Once
	intervalEval *interval.Evaluator

	// eigScratch pools the 2d-length buffers used by EigGrad so repeated
	// eigenvalue-gradient evaluations during decomposition allocate nothing.
	// Stores *[]float64 to avoid interface boxing on Put.
	eigScratch sync.Pool

	// curvK is an explicit curvature bound installed via WithCurvature:
	// ‖∇²f(x)‖₂ ≤ curvK for every x in the domain D. Used by safe-zone check
	// elision (Node.EnableElision) to turn per-event vector movement into a
	// sound bound on the movement of f.
	curvK   float64
	curvSet bool

	// curvOnce guards the automatic curvature bound derived for
	// constant-Hessian functions (Gershgorin on the constant H; globally
	// valid).
	curvOnce   sync.Once
	autoCurv   float64
	autoCurvOK bool
}

// NewFunction compiles program into a monitored function of dimension dim.
func NewFunction(name string, dim int, program autodiff.Program) *Function {
	return &Function{Name: name, Graph: autodiff.Compile(dim, program)}
}

// WithDomain sets per-coordinate domain bounds and returns f. Both slices
// must have length Dim.
func (f *Function) WithDomain(lo, hi []float64) *Function {
	if len(lo) != f.Dim() || len(hi) != f.Dim() {
		panic(fmt.Sprintf("core: domain bounds have length %d/%d, function dim %d", len(lo), len(hi), f.Dim()))
	}
	f.DomainLo = linalg.Clone(lo)
	f.DomainHi = linalg.Clone(hi)
	return f
}

// WithCurvature declares k an upper bound on the Hessian spectral norm
// ‖∇²f(x)‖₂ for every x in the domain D (everywhere, if no domain is set)
// and returns f. The bound licenses safe-zone check elision for
// non-constant-Hessian functions; it is trusted, so an understated k voids
// the elision soundness guarantee the same way a wrong function body would.
func (f *Function) WithCurvature(k float64) *Function {
	if !(k >= 0) || math.IsInf(k, 0) {
		panic(fmt.Sprintf("core: curvature bound must be finite and non-negative, got %v", k))
	}
	f.curvK = k
	f.curvSet = true
	return f
}

// CurvBound returns a curvature bound for f: k with ‖∇²f(x)‖₂ ≤ k, whether
// the bound is valid only on the domain D (domainOnly) or globally, and
// whether any bound is available. An explicit WithCurvature bound wins;
// otherwise constant-Hessian functions get an automatic Gershgorin bound on
// the (constant) Hessian, which is globally valid. Functions with neither
// cannot use check elision.
func (f *Function) CurvBound() (k float64, domainOnly, ok bool) {
	if f.curvSet {
		return f.curvK, f.DomainLo != nil, true
	}
	f.curvOnce.Do(func() {
		if !f.Graph.HasConstantHessian() {
			return
		}
		d := f.Dim()
		h := linalg.NewMat(d, d)
		f.Hessian(make([]float64, d), h)
		var bound float64
		for i := 0; i < d; i++ {
			var row float64
			for j := 0; j < d; j++ {
				row += math.Abs(h.At(i, j))
			}
			if row > bound {
				bound = row
			}
		}
		if !(bound >= 0) { // NaN Hessian entries: refuse the bound
			return
		}
		f.autoCurv, f.autoCurvOK = bound, true
	})
	return f.autoCurv, false, f.autoCurvOK
}

// Dim returns the input dimension d.
func (f *Function) Dim() int { return f.Graph.Dim() }

// Value evaluates f(x).
func (f *Function) Value(x []float64) float64 { return f.Graph.Value(x) }

// Grad evaluates f(x) and writes ∇f(x) into grad, returning the value.
func (f *Function) Grad(x, grad []float64) float64 { return f.Graph.Grad(x, grad) }

// Hessian writes the Hessian at x into h.
func (f *Function) Hessian(x []float64, h *linalg.Mat) { f.Graph.Hessian(x, h) }

// HasConstantHessian reports whether the computational graph proves the
// Hessian independent of x, which enables ADCD-E.
func (f *Function) HasConstantHessian() bool { return f.Graph.HasConstantHessian() }

// tangentGraph lazily builds the forward-mode tangent program
// s(x, v) = ∇f(x)ᵀv used for analytic eigenvalue gradients.
func (f *Function) tangentGraph() *autodiff.Graph {
	f.tangentOnce.Do(func() { f.tangent = f.Graph.Tangent() })
	return f.tangent
}

// intervalEvaluator lazily compiles the interval re-interpretation of the
// graph used by the certified eigen-engine (BackendInterval/BackendHybrid).
func (f *Function) intervalEvaluator() *interval.Evaluator {
	f.intervalOnce.Do(func() { f.intervalEval = interval.NewEvaluator(f.Graph) })
	return f.intervalEval
}

// IntervalEigBounds computes certified extreme-eigenvalue bounds of the
// Hessian over the box [lo, hi]: every eigenvalue of every H(x) with
// lo ≤ x ≤ hi lies in the returned [lamMin, lamMax]. One interval Hessian
// pass plus Gershgorin-family tightening — no optimization, no multi-start.
func (f *Function) IntervalEigBounds(lo, hi []float64) (lamMin, lamMax float64, err error) {
	e := f.intervalEvaluator()
	m := interval.NewMat(f.Dim())
	if err := e.Hessian(lo, hi, m); err != nil {
		return 0, 0, err
	}
	return interval.EigBounds(m)
}

// ExtremeEigsAt computes the smallest and largest eigenvalue of H(x) along
// with their unit eigenvectors.
func (f *Function) ExtremeEigsAt(x []float64) (lamMin, lamMax float64, vMin, vMax []float64, err error) {
	d := f.Dim()
	h := linalg.NewMat(d, d)
	f.Hessian(x, h)
	values, vecs, err := linalg.EigenSym(h, true)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	vMin = make([]float64, d)
	vMax = make([]float64, d)
	for i := 0; i < d; i++ {
		vMin[i] = vecs.At(i, 0)
		vMax[i] = vecs.At(i, d-1)
	}
	return values[0], values[d-1], vMin, vMax, nil
}

// ExtremeEigsAtPower estimates the extreme eigenvalues and eigenvectors of
// H(x) via shifted power iteration on Hessian-vector products, without
// materializing the Hessian. For dimension d it costs O(k) HVPs instead of
// the d HVPs plus O(d³) eigensolve of ExtremeEigsAt — the §6 "Hessian
// spectrum approximation" scaling path.
func (f *Function) ExtremeEigsAtPower(x []float64, iters int, seed int64) (lamMin, lamMax float64, vMin, vMax []float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	return linalg.PowerExtremes(func(v, out []float64) {
		f.Graph.HVP(x, v, out)
	}, f.Dim(), iters, 1e-8, rng)
}

// EigGrad writes into out the gradient ∇ₓ(vᵀH(x)v) for a fixed unit vector
// v. By the Hellmann–Feynman theorem this is the gradient of the eigenvalue
// λ(x) whenever v is the (simple) eigenvector of λ at x. It is computed with
// a single Hessian-vector product on the tangent graph s(x, u) = ∇f(x)ᵀu:
// the x-block of Hₛ·(v, 0) at the point (x, v) equals ∇ₓ(vᵀH(x)v) by
// symmetry of third derivatives.
func (f *Function) EigGrad(x, v, out []float64) {
	d := f.Dim()
	tg := f.tangentGraph()
	buf, _ := f.eigScratch.Get().(*[]float64)
	if buf == nil {
		s := make([]float64, 6*d)
		buf = &s
	}
	in, dir, full := (*buf)[:2*d], (*buf)[2*d:4*d], (*buf)[4*d:6*d]
	copy(in[:d], x)
	copy(in[d:], v)
	copy(dir[:d], v)
	for i := range dir[d:] {
		dir[d+i] = 0
	}
	tg.HVP(in, dir, full)
	copy(out, full[:d])
	f.eigScratch.Put(buf)
}
