package core

import (
	"math/rand"
	"runtime"
	"testing"

	"automon/internal/autodiff"
)

// benchCubic is a d-dimensional function with a genuinely x-dependent
// Hessian (cubic + cross terms), so ADCD-X must run the full eigenvalue
// search over the neighborhood box.
func benchCubic(d int) *Function {
	return NewFunction("bench-cubic", d, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		acc := b.Square(x[0])
		for i := 0; i < d; i++ {
			acc = b.Add(acc, b.Powi(x[i], 3))
			acc = b.Add(acc, b.Mul(x[i], b.Square(x[(i+1)%d])))
		}
		return acc
	})
}

// benchBilinear is a d-dimensional constant-Hessian function (inner-product
// style), the ADCD-E path.
func benchBilinear(d int) *Function {
	return NewFunction("bench-bilinear", d, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		acc := b.Mul(x[0], x[1])
		for i := 1; i+1 < d; i++ {
			acc = b.Add(acc, b.Mul(x[i], x[i+1]))
		}
		return acc
	})
}

// benchZoneX builds a small ADCD-X zone around the origin-ish point.
func benchZoneX(b *testing.B, f *Function, x0 []float64, r float64) *SafeZone {
	b.Helper()
	grad := make([]float64, f.Dim())
	f0 := f.Grad(x0, grad)
	bLo, bHi := NeighborhoodBox(f, x0, r)
	zone, err := BuildZoneX(f, x0, f0-1, f0+1, bLo, bHi, DecompOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return zone
}

func BenchmarkSafeZoneCheckX(b *testing.B) {
	const d = 12
	f := benchCubic(d)
	x0 := make([]float64, d)
	for i := range x0 {
		x0[i] = 0.1 * float64(i%3)
	}
	zone := benchZoneX(b, f, x0, 0.5)
	node := NewNode(0, f)
	node.ApplySync(&Sync{NodeID: 0, Method: zone.Method, Kind: zone.Kind,
		X0: zone.X0, F0: zone.F0, GradF0: zone.GradF0, L: zone.L, U: zone.U,
		Lam: zone.Lam, R: 0.5, Slack: make([]float64, d)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := node.UpdateData(x0); v != nil {
			b.Fatalf("unexpected violation: %+v", v)
		}
	}
}

func BenchmarkSafeZoneCheckE(b *testing.B) {
	const d = 12
	f := benchBilinear(d)
	x0 := make([]float64, d)
	for i := range x0 {
		x0[i] = 0.2
	}
	dec, err := DecomposeE(f, x0)
	if err != nil {
		b.Fatal(err)
	}
	zone := BuildZoneE(f, dec, x0, zoneVal(f, x0)-1, zoneVal(f, x0)+1)
	node := NewNode(0, f)
	m := &Sync{NodeID: 0, Method: zone.Method, Kind: zone.Kind,
		X0: zone.X0, F0: zone.F0, GradF0: zone.GradF0, L: zone.L, U: zone.U,
		Slack: make([]float64, d), WithMatrix: true}
	if zone.Kind == ConvexDiff {
		m.Matrix = zone.HMinus
	} else {
		m.Matrix = zone.HPlus
	}
	node.ApplySync(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := node.UpdateData(x0); v != nil {
			b.Fatalf("unexpected violation: %+v", v)
		}
	}
}

func zoneVal(f *Function, x []float64) float64 { return f.Value(x) }

func BenchmarkExtremeEigsOverBox(b *testing.B) {
	const d = 8
	f := benchCubic(d)
	x0 := make([]float64, d)
	bLo, bHi := NeighborhoodBox(f, x0, 0.5)
	for _, bc := range []struct {
		name string
		opts DecompOptions
	}{
		{"memo", DecompOptions{Seed: 1}},
		{"nomemo", DecompOptions{Seed: 1, DisableEvalMemo: true}},
		{"memo-parallel", DecompOptions{Seed: 1, Workers: 0}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := ExtremeEigsOverBox(f, x0, bLo, bHi, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildZoneX(b *testing.B) {
	const d = 8
	f := benchCubic(d)
	x0 := make([]float64, d)
	grad := make([]float64, d)
	f0 := f.Grad(x0, grad)
	bLo, bHi := NeighborhoodBox(f, x0, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildZoneX(f, x0, f0-1, f0+1, bLo, bHi, DecompOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTune(b *testing.B) {
	f := rosenbrockFunc()
	data := rosenbrockData(rand.New(rand.NewSource(41)), 80, 4)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 0},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := Config{Epsilon: 0.25, Decomp: DecompOptions{Seed: 2}, TuneWorkers: bc.workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Tune(f, data, 4, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
