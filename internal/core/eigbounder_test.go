package core

import (
	"math"
	"testing"

	"automon/internal/autodiff"
	"automon/internal/obs"
)

// boundedNonConvex builds a 2-d function with a genuinely varying Hessian so
// the backends have something to disagree about: x²·y + sin(x) + 0.1·(x⁴+y⁴).
func boundedNonConvex() *Function {
	return NewFunction("nonconvex", 2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		q := b.Mul(b.Square(x[0]), x[1])
		s := b.Sin(x[0])
		quart := b.Mul(b.Const(0.1), b.Add(b.Powi(x[0], 4), b.Powi(x[1], 4)))
		return b.Add(q, b.Add(s, quart))
	})
}

func neighborhood(x0 []float64, r float64) (lo, hi []float64) {
	lo = make([]float64, len(x0))
	hi = make([]float64, len(x0))
	for i, v := range x0 {
		lo[i], hi[i] = v-r, v+r
	}
	return lo, hi
}

func TestParseEigBackendRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want EigBackend
		ok   bool
	}{
		{"", BackendLBFGS, true},
		{"lbfgs", BackendLBFGS, true},
		{"interval", BackendInterval, true},
		{"hybrid", BackendHybrid, true},
		{"certified", 0, false},
		{"LBFGS", 0, false},
	}
	for _, c := range cases {
		got, err := ParseEigBackend(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseEigBackend(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseEigBackend(%q) = %v, want %v", c.in, got, c.want)
		}
		if c.ok && c.in != "" {
			if got.String() != c.in {
				t.Errorf("round-trip %q -> %v -> %q", c.in, got, got.String())
			}
		}
	}
	if BackendLBFGS.String() != "lbfgs" {
		t.Errorf("zero value String() = %q, want lbfgs", BackendLBFGS.String())
	}
	if EigBackend(99).String() == "" {
		t.Error("unknown backend String() empty")
	}
}

// TestIntervalBackendZeroOptEvals is the acceptance-criterion counter check:
// the interval backend must perform zero eigensolver evaluations inside the
// optimizer (the single x0 solve every backend needs is counted separately).
func TestIntervalBackendZeroOptEvals(t *testing.T) {
	f := boundedNonConvex()
	x0 := []float64{0.4, -0.3}
	lo, hi := neighborhood(x0, 0.25)

	for _, tc := range []struct {
		backend  EigBackend
		wantZero bool
	}{
		{BackendInterval, true},
		{BackendLBFGS, false},
	} {
		opt := obs.NewCounter()
		all := obs.NewCounter()
		dec, err := DecomposeX(f, x0, lo, hi, DecompOptions{
			Backend:         tc.backend,
			Seed:            1,
			OptEvalCounter:  opt,
			EigsolveCounter: all,
		})
		if err != nil {
			t.Fatalf("%v: %v", tc.backend, err)
		}
		if dec.Backend != tc.backend {
			t.Errorf("dec.Backend = %v, want %v", dec.Backend, tc.backend)
		}
		if tc.wantZero {
			if got := opt.Load(); got != 0 {
				t.Errorf("interval backend ran %d optimizer eigensolves, want 0", got)
			}
			if got := all.Load(); got != 1 {
				t.Errorf("interval backend ran %d total eigensolves, want exactly the x0 solve", got)
			}
			if !dec.Certified {
				t.Error("interval decomposition not marked Certified")
			}
		} else {
			if got := opt.Load(); got == 0 {
				t.Error("L-BFGS backend reported zero optimizer eigensolves")
			}
			if dec.Certified {
				t.Error("L-BFGS decomposition marked Certified")
			}
		}
	}
}

// TestIntervalEnclosesLBFGS: on the same box the certificate must enclose
// whatever the sampling-based search found (the search only visits real
// points of the box, and the certificate bounds all of them).
func TestIntervalEnclosesLBFGS(t *testing.T) {
	f := boundedNonConvex()
	for _, r := range []float64{0.05, 0.2, 0.5} {
		x0 := []float64{0.4, -0.3}
		lo, hi := neighborhood(x0, r)
		lb, err := DecomposeX(f, x0, lo, hi, DecompOptions{Backend: BackendLBFGS, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		iv, err := DecomposeX(f, x0, lo, hi, DecompOptions{Backend: BackendInterval, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Compare through the Lemma-1 artifacts both paths populate.
		if iv.LamAbsNeg < lb.LamAbsNeg {
			t.Errorf("r=%v: certified |λ⁻min| %v below L-BFGS %v", r, iv.LamAbsNeg, lb.LamAbsNeg)
		}
		if iv.LamPosMax < lb.LamPosMax {
			t.Errorf("r=%v: certified λ⁺max %v below L-BFGS %v", r, iv.LamPosMax, lb.LamPosMax)
		}
	}
}

func TestHybridEscalation(t *testing.T) {
	f := boundedNonConvex()
	x0 := []float64{0.4, -0.3}

	// A wide box makes the certificate much looser than the x0 spread, so the
	// default threshold escalates to the L-BFGS refinement.
	lo, hi := neighborhood(x0, 1.5)
	opt := obs.NewCounter()
	dec, err := DecomposeX(f, x0, lo, hi, DecompOptions{
		Backend:        BackendHybrid,
		Seed:           1,
		OptEvalCounter: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Certified {
		t.Error("hybrid decomposition lost its certificate")
	}
	if !dec.Refined {
		t.Error("hybrid did not escalate on a wide box")
	}
	if opt.Load() == 0 {
		t.Error("hybrid refinement reported zero optimizer eigensolves")
	}
	// The refined Lemma-1 bounds stay inside the certificate.
	if -dec.LamAbsNeg < dec.CertMin-1e-12 || dec.LamPosMax > dec.CertMax+1e-12 {
		t.Errorf("refined bounds [-%v, %v] escape certificate [%v, %v]",
			dec.LamAbsNeg, dec.LamPosMax, dec.CertMin, dec.CertMax)
	}

	// Negative HybridSlack disables escalation outright.
	opt = obs.NewCounter()
	dec, err = DecomposeX(f, x0, lo, hi, DecompOptions{
		Backend:        BackendHybrid,
		Seed:           1,
		HybridSlack:    -1,
		OptEvalCounter: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Refined {
		t.Error("hybrid escalated despite negative HybridSlack")
	}
	if got := opt.Load(); got != 0 {
		t.Errorf("disabled hybrid still ran %d optimizer eigensolves", got)
	}

	// A huge threshold behaves the same: certificate only.
	dec, err = DecomposeX(f, x0, lo, hi, DecompOptions{
		Backend:     BackendHybrid,
		Seed:        1,
		HybridSlack: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Refined {
		t.Error("hybrid escalated despite infinite HybridSlack")
	}
}

func TestBounderForUnknownFallsBack(t *testing.T) {
	if b := BounderFor(EigBackend(42)); b.Backend() != BackendLBFGS {
		t.Errorf("unknown backend resolved to %v, want lbfgs", b.Backend())
	}
	for _, want := range []EigBackend{BackendLBFGS, BackendInterval, BackendHybrid} {
		if got := BounderFor(want).Backend(); got != want {
			t.Errorf("BounderFor(%v).Backend() = %v", want, got)
		}
	}
}

// TestQuantizeKeyBackendSeparation: cache keys from different backends must
// never collide — an L-BFGS estimate is not a certificate.
func TestQuantizeKeyBackendSeparation(t *testing.T) {
	x0 := []float64{1.23, -4.56}
	backends := []EigBackend{BackendLBFGS, BackendInterval, BackendHybrid}
	seen := make(map[string]EigBackend, len(backends))
	for _, b := range backends {
		k, ok := quantizeKey("g", b, x0, 0.5, DefaultZoneCacheQuantum)
		if !ok {
			t.Fatalf("backend %v: finite inputs failed to quantize", b)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("backends %v and %v share cache key %q", prev, b, k)
		}
		seen[k] = b
	}
	// Same backend, same inputs: still a stable key.
	a, _ := quantizeKey("g", BackendInterval, x0, 0.5, DefaultZoneCacheQuantum)
	b, _ := quantizeKey("g", BackendInterval, x0, 0.5, DefaultZoneCacheQuantum)
	if a != b {
		t.Errorf("key not deterministic: %q vs %q", a, b)
	}
	// Scope separation survives the backend discriminator.
	k1, _ := quantizeKey("g1", BackendInterval, x0, 0.5, 1e-2)
	k2, _ := quantizeKey("g2", BackendInterval, x0, 0.5, 1e-2)
	if k1 == k2 {
		t.Error("scopes collide")
	}
}
