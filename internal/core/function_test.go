package core

import (
	"math"
	"math/rand"
	"testing"

	"automon/internal/autodiff"
	"automon/internal/linalg"
)

// cubicFunc has an x-dependent Hessian with easy analytics:
// f = x0³ + x0·x1², H = [[6x0, 2x1], [2x1, 2x0]].
func cubicFunc() *Function {
	return NewFunction("cubic", 2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		return b.Add(b.Powi(x[0], 3), b.Mul(x[0], b.Square(x[1])))
	})
}

func TestExtremeEigsAt(t *testing.T) {
	f := cubicFunc()
	x := []float64{1, 0} // H = [[6,0],[0,2]]
	lamMin, lamMax, vMin, vMax, err := f.ExtremeEigsAt(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lamMin-2) > 1e-9 || math.Abs(lamMax-6) > 1e-9 {
		t.Fatalf("eigs = (%v, %v), want (2, 6)", lamMin, lamMax)
	}
	if math.Abs(math.Abs(vMin[1])-1) > 1e-9 || math.Abs(math.Abs(vMax[0])-1) > 1e-9 {
		t.Fatalf("eigenvectors wrong: vMin=%v vMax=%v", vMin, vMax)
	}
}

func TestEigGradMatchesFiniteDifference(t *testing.T) {
	// ∇ₓ(vᵀH(x)v) checked against central differences of φ(x) = vᵀH(x)v.
	f := cubicFunc()
	rng := rand.New(rand.NewSource(2))
	h := linalg.NewMat(2, 2)
	phi := func(x, v []float64) float64 {
		f.Hessian(x, h)
		tmp := make([]float64, 2)
		h.MulVec(tmp, v)
		return linalg.Dot(v, tmp)
	}
	for trial := 0; trial < 10; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		v := []float64{rng.NormFloat64(), rng.NormFloat64()}
		got := make([]float64, 2)
		f.EigGrad(x, v, got)
		const hstep = 1e-5
		for i := 0; i < 2; i++ {
			xp := linalg.Clone(x)
			xp[i] += hstep
			fp := phi(xp, v)
			xp[i] = x[i] - hstep
			fm := phi(xp, v)
			want := (fp - fm) / (2 * hstep)
			if math.Abs(got[i]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("EigGrad[%d] = %v, want %v (x=%v, v=%v)", i, got[i], want, x, v)
			}
		}
	}
}

func TestExtremeEigsOverBoxKnownAnalytic(t *testing.T) {
	// For f = x0³ + x0·x1² on the box x0 ∈ [−1, 1], x1 ∈ [−1, 1]:
	// H eigenvalues are 4x0 ± 2√(x0² + x1²). The global minimum of λmin is
	// at x0 = −1, |x1| = 1: λmin = −4 − 2√2 ≈ −6.83; the global max of λmax
	// is at x0 = 1, |x1| = 1: λmax = 4 + 2√2 ≈ 6.83.
	f := cubicFunc()
	lo := []float64{-1, -1}
	hi := []float64{1, 1}
	lamMin, lamMax, err := ExtremeEigsOverBox(f, []float64{0, 0}, lo, hi, DecompOptions{Seed: 4, OptStarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 + 2*math.Sqrt2
	if math.Abs(lamMin+want) > 0.05 {
		t.Fatalf("λ̂min = %v, want %v", lamMin, -want)
	}
	if math.Abs(lamMax-want) > 0.05 {
		t.Fatalf("λ̂max = %v, want %v", lamMax, want)
	}
}

func TestExtremeEigsOverBoxConvexFunction(t *testing.T) {
	// For a convex function λmin ≥ 0 everywhere, so the ADCD-X decomposition
	// degrades to the identity (λ⁻min = 0) and correctness is guaranteed
	// (§3.7). f = x0² + 2x1² has constant eigenvalues {2, 4}.
	f := NewFunction("bowl", 2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		return b.Add(b.Square(x[0]), b.Mul(b.Const(2), b.Square(x[1])))
	})
	lamMin, lamMax, err := ExtremeEigsOverBox(f, []float64{0.5, 0.5},
		[]float64{-1, -1}, []float64{1, 1}, DecompOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lamMin-2) > 1e-6 || math.Abs(lamMax-4) > 1e-6 {
		t.Fatalf("eigs = (%v, %v), want (2, 4)", lamMin, lamMax)
	}
}

func TestWithDomainValidation(t *testing.T) {
	f := cubicFunc()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched domain bounds")
		}
	}()
	f.WithDomain([]float64{0}, []float64{1})
}

func TestBuildZoneXConvexFunctionIsGuaranteed(t *testing.T) {
	// For convex f the heuristic must pick the convex difference with
	// Lam = 0, making the safe zone exactly {f ≤ U} ∩ {tangent ≥ L}, a true
	// DC decomposition.
	f := NewFunction("bowl", 2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		return b.Add(b.Square(x[0]), b.Square(x[1]))
	})
	x0 := []float64{0.5, 0}
	f0 := f.Value(x0)
	lo, hi := NeighborhoodBox(f, x0, 1)
	zone, err := BuildZoneX(f, x0, f0-0.3, f0+0.3, lo, hi, DecompOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if zone.Kind != ConvexDiff {
		t.Fatalf("kind = %v, want convex difference", zone.Kind)
	}
	if zone.Lam > 1e-9 {
		t.Fatalf("Lam = %v, want 0 for a convex function", zone.Lam)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		v := []float64{lo[0] + rng.Float64()*(hi[0]-lo[0]), lo[1] + rng.Float64()*(hi[1]-lo[1])}
		if zone.Contains(f, v) && !zone.InAdmissibleRegion(f, v) {
			t.Fatalf("guaranteed zone leaked outside admissible region at %v", v)
		}
	}
}
