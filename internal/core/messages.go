package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"automon/internal/linalg"
)

// MsgType tags the wire format of protocol messages.
type MsgType uint8

// Protocol message types. Data requests/responses implement the
// coordinator's "pull"; violations flow node→coordinator; sync and slack
// messages flow coordinator→node.
const (
	MsgViolation MsgType = iota + 1
	MsgDataRequest
	MsgDataResponse
	MsgSync
	MsgSlack
	MsgRejoin
	// MsgPartial and MsgSubtreeRejoin are the shard-tier messages of the
	// hierarchical coordinator (internal/shard): partial aggregates flow
	// shard→parent, and a healed partition re-registers a whole sub-tree.
	MsgPartial
	MsgSubtreeRejoin
)

func (t MsgType) String() string {
	switch t {
	case MsgViolation:
		return "violation"
	case MsgDataRequest:
		return "data-request"
	case MsgDataResponse:
		return "data-response"
	case MsgSync:
		return "sync"
	case MsgSlack:
		return "slack"
	case MsgRejoin:
		return "rejoin"
	case MsgPartial:
		return "partial"
	case MsgSubtreeRejoin:
		return "subtree-rejoin"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// ViolationKind classifies node-side constraint violations (§3.5, §3.7).
type ViolationKind uint8

const (
	// ViolationNeighborhood: the slacked local vector left B.
	ViolationNeighborhood ViolationKind = iota + 1
	// ViolationSafeZone: the slacked local vector left the ADCD safe zone.
	ViolationSafeZone
	// ViolationFaulty: the vector is inside the safe zone but outside the
	// admissible region — the §3.7 sanity check detected that the
	// numerically-derived constraints are not a true DC decomposition.
	ViolationFaulty
)

func (k ViolationKind) String() string {
	switch k {
	case ViolationNeighborhood:
		return "neighborhood"
	case ViolationSafeZone:
		return "safe-zone"
	case ViolationFaulty:
		return "faulty-constraint"
	}
	return fmt.Sprintf("violation(%d)", uint8(k))
}

// Violation is reported by a node whose local constraints no longer hold.
// It carries the node's fresh raw local vector so the coordinator does not
// need a separate data request for the violator.
type Violation struct {
	NodeID int
	Kind   ViolationKind
	X      []float64
}

// DataRequest asks a node for its current local vector.
type DataRequest struct {
	NodeID int
}

// DataResponse returns a node's current local vector.
type DataResponse struct {
	NodeID int
	X      []float64
}

// Sync distributes a new safe zone (and this node's slack vector) after a
// full sync. For ADCD-E the H⁻/H⁺ matrix is constant and only shipped when
// WithMatrix is set (the first sync); later syncs reuse the node's copy.
type Sync struct {
	NodeID     int
	Method     Method
	Kind       DCKind
	X0         []float64
	F0         float64
	GradF0     []float64
	L, U       float64
	Lam        float64 // ADCD-X curvature bound
	R          float64 // ADCD-X neighborhood radius (box rebuilt node-side)
	Slack      []float64
	WithMatrix bool
	Matrix     *linalg.Mat // H⁻ (convex kind) or H⁺ (concave kind)

	// Zone carries a hand-crafted (MethodCustom) safe zone to in-process
	// nodes. It is never serialized: Encode ignores it and the field is nil
	// after Decode. Byte accounting for custom zones therefore reflects only
	// the shared parameters, which is the correct comparison for the CB
	// baseline (its nodes rebuild the zone from x0 and the thresholds).
	Zone *SafeZone
}

// Slack rebalances a node's slack vector during lazy sync, leaving the safe
// zone untouched.
type Slack struct {
	NodeID int
	Slack  []float64
}

// Rejoin re-registers a node after a connection loss. It carries the node's
// fresh raw local vector; the coordinator answers with a full sync so the
// returning node gets a consistent zone and slack assignment.
type Rejoin struct {
	NodeID int
	X      []float64
}

// Message is the common interface of protocol messages; Encode produces the
// exact payload bytes, which the evaluation uses for bandwidth accounting
// and the transport layer for real delivery.
type Message interface {
	Type() MsgType
	Encode() []byte
}

// Type implements Message.
func (*Violation) Type() MsgType { return MsgViolation }

// Type implements Message.
func (*DataRequest) Type() MsgType { return MsgDataRequest }

// Type implements Message.
func (*DataResponse) Type() MsgType { return MsgDataResponse }

// Type implements Message.
func (*Sync) Type() MsgType { return MsgSync }

// Type implements Message.
func (*Slack) Type() MsgType { return MsgSlack }

// Type implements Message.
func (*Rejoin) Type() MsgType { return MsgRejoin }

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) vec(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || len(d.buf) < 2 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) vec() []float64 {
	n := d.u32()
	// 64-bit comparison: 8*n must not wrap around uint32, or a hostile
	// length prefix could pass the check and force a huge allocation.
	if d.err != nil || uint64(len(d.buf)) < 8*uint64(n) {
		d.fail()
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errors.New("core: truncated message")
	}
}

// Encode implements Message.
func (m *Violation) Encode() []byte {
	e := &encoder{}
	e.u8(uint8(MsgViolation))
	e.u16(uint16(m.NodeID))
	e.u8(uint8(m.Kind))
	e.vec(m.X)
	return e.buf
}

// Encode implements Message.
func (m *DataRequest) Encode() []byte {
	e := &encoder{}
	e.u8(uint8(MsgDataRequest))
	e.u16(uint16(m.NodeID))
	return e.buf
}

// Encode implements Message.
func (m *DataResponse) Encode() []byte {
	e := &encoder{}
	e.u8(uint8(MsgDataResponse))
	e.u16(uint16(m.NodeID))
	e.vec(m.X)
	return e.buf
}

// Encode implements Message.
func (m *Sync) Encode() []byte {
	e := &encoder{}
	e.u8(uint8(MsgSync))
	e.u16(uint16(m.NodeID))
	e.u8(uint8(m.Method))
	e.u8(uint8(m.Kind))
	e.vec(m.X0)
	e.f64(m.F0)
	e.vec(m.GradF0)
	e.f64(m.L)
	e.f64(m.U)
	e.f64(m.Lam)
	e.f64(m.R)
	e.vec(m.Slack)
	if m.WithMatrix && m.Matrix != nil {
		e.u8(1)
		e.u32(uint32(m.Matrix.Rows))
		for _, v := range m.Matrix.Data {
			e.f64(v)
		}
	} else {
		e.u8(0)
	}
	return e.buf
}

// Encode implements Message.
func (m *Slack) Encode() []byte {
	e := &encoder{}
	e.u8(uint8(MsgSlack))
	e.u16(uint16(m.NodeID))
	e.vec(m.Slack)
	return e.buf
}

// Encode implements Message.
func (m *Rejoin) Encode() []byte {
	e := &encoder{}
	e.u8(uint8(MsgRejoin))
	e.u16(uint16(m.NodeID))
	e.vec(m.X)
	return e.buf
}

// Decode parses one encoded message.
func Decode(buf []byte) (Message, error) {
	d := &decoder{buf: buf}
	t := MsgType(d.u8())
	switch t {
	case MsgViolation:
		m := &Violation{NodeID: int(d.u16()), Kind: ViolationKind(d.u8()), X: d.vec()}
		return m, d.err
	case MsgDataRequest:
		m := &DataRequest{NodeID: int(d.u16())}
		return m, d.err
	case MsgDataResponse:
		m := &DataResponse{NodeID: int(d.u16()), X: d.vec()}
		return m, d.err
	case MsgSync:
		m := &Sync{NodeID: int(d.u16())}
		m.Method = Method(d.u8())
		m.Kind = DCKind(d.u8())
		m.X0 = d.vec()
		m.F0 = d.f64()
		m.GradF0 = d.vec()
		m.L = d.f64()
		m.U = d.f64()
		m.Lam = d.f64()
		m.R = d.f64()
		m.Slack = d.vec()
		if d.u8() == 1 {
			n := uint64(d.u32())
			// The matrix body must actually be present: guards against
			// hostile size prefixes forcing an n² allocation.
			if d.err != nil || uint64(len(d.buf)) < 8*n*n {
				d.fail()
				return nil, d.err
			}
			m.WithMatrix = true
			m.Matrix = linalg.NewMat(int(n), int(n))
			for i := range m.Matrix.Data {
				m.Matrix.Data[i] = d.f64()
			}
		}
		return m, d.err
	case MsgSlack:
		m := &Slack{NodeID: int(d.u16()), Slack: d.vec()}
		return m, d.err
	case MsgRejoin:
		m := &Rejoin{NodeID: int(d.u16()), X: d.vec()}
		return m, d.err
	case MsgPartial:
		return decodePartial(d)
	case MsgSubtreeRejoin:
		return decodeSubtreeRejoin(d)
	}
	return nil, fmt.Errorf("core: unknown message type %d", uint8(t))
}
