package core

import (
	"automon/internal/linalg"
)

// Node is the AutoMon node algorithm (Algorithm 1, lines 9–14). It holds the
// local vector, the slack assigned by the coordinator, and the current safe
// zone, and checks the local constraints on every data update. Nodes never
// talk to each other; all returned Violations are addressed to the
// coordinator via whatever messaging fabric the application uses.
type Node struct {
	ID int
	F  *Function

	x     []float64 // current raw local vector
	slack []float64
	v     []float64 // scratch: slacked vector x + s
	diff  []float64 // scratch for the ADCD-E safe-zone check

	zone     *SafeZone
	haveZone bool

	// matrix retained across syncs for ADCD-E (shipped once).
	eMatrix *linalg.Mat

	// el is the safe-zone check-elision state (budget.go); inert until
	// EnableElision.
	el elision
}

// NewNode creates a node for function f. The node is inert until the first
// Sync message arrives.
func NewNode(id int, f *Function) *Node {
	d := f.Dim()
	return &Node{
		ID:    id,
		F:     f,
		x:     make([]float64, d),
		slack: make([]float64, d),
		v:     make([]float64, d),
		diff:  make([]float64, d),
	}
}

// LocalVector returns the node's current raw local vector (the payload of a
// DataResponse). The returned slice is a copy.
func (n *Node) LocalVector() []float64 { return linalg.Clone(n.x) }

// SetData replaces the local vector without checking constraints. Any
// outstanding elision budget is invalidated: it was computed for the old
// vector.
func (n *Node) SetData(x []float64) {
	copy(n.x, x)
	n.resetBudget()
}

// UpdateData replaces the local vector and checks the local constraints,
// returning a Violation to forward to the coordinator, or nil when all
// constraints hold (no communication needed). Before the first sync the node
// is silent.
//
//automon:hotpath
func (n *Node) UpdateData(x []float64) *Violation {
	n.SetData(x)
	return n.Check()
}

// Check evaluates the local constraints against the current vector:
// neighborhood first, then the ADCD safe zone, then the §3.7 sanity check.
func (n *Node) Check() *Violation {
	if !n.haveZone {
		return nil
	}
	linalg.Add(n.v, n.x, n.slack)
	z := n.zone
	if !z.InNeighborhood(n.v) {
		return &Violation{NodeID: n.ID, Kind: ViolationNeighborhood, X: n.LocalVector()} //automon:allow hotpath violation path ends the silent round: the copied vector is the message payload
	}
	if !z.ContainsScratch(n.F, n.v, n.diff) {
		return &Violation{NodeID: n.ID, Kind: ViolationSafeZone, X: n.LocalVector()} //automon:allow hotpath violation path ends the silent round: the copied vector is the message payload
	}
	if z.Method != MethodNone && !z.InAdmissibleRegion(n.F, n.v) {
		return &Violation{NodeID: n.ID, Kind: ViolationFaulty, X: n.LocalVector()} //automon:allow hotpath violation path ends the silent round: the copied vector is the message payload
	}
	return nil
}

// CurrentValue returns the node's current approximation of f(x̄), namely
// f(x0) from the last sync. It returns 0 before the first sync.
func (n *Node) CurrentValue() float64 {
	if !n.haveZone {
		return 0
	}
	return n.zone.F0
}

// ApplySync installs a new safe zone and slack from the coordinator. The
// elision budget is invalidated: it was derived from the previous zone.
func (n *Node) ApplySync(m *Sync) {
	n.resetBudget()
	if m.Zone != nil { // hand-crafted (MethodCustom) zone, in-memory only
		n.zone = m.Zone
		n.haveZone = true
		copy(n.slack, m.Slack)
		return
	}
	if m.WithMatrix {
		n.eMatrix = m.Matrix
	}
	if m.Method == MethodE && n.eMatrix == nil {
		// An ADCD-E zone is unusable without its matrix (possible only if a
		// faulty fabric separated this sync from the matrix delivery); keep
		// the previous zone rather than installing one that cannot be checked.
		return
	}
	z := &SafeZone{
		Method: m.Method,
		Kind:   m.Kind,
		X0:     linalg.Clone(m.X0),
		F0:     m.F0,
		GradF0: linalg.Clone(m.GradF0),
		L:      m.L,
		U:      m.U,
		Lam:    m.Lam,
	}
	switch m.Method {
	case MethodX:
		z.BLo, z.BHi = NeighborhoodBox(n.F, m.X0, m.R)
	case MethodE:
		if m.Kind == ConvexDiff {
			z.HMinus = n.eMatrix
		} else {
			z.HPlus = n.eMatrix
		}
	}
	n.zone = z
	n.haveZone = true
	copy(n.slack, m.Slack)
}

// ApplySlack installs a rebalanced slack vector from a lazy sync. The
// elision budget is invalidated: the slacked point it was computed at moved.
func (n *Node) ApplySlack(m *Slack) {
	copy(n.slack, m.Slack)
	n.resetBudget()
}

// Zone exposes the node's current safe zone (nil before the first sync);
// used by tests and by diagnostic tooling.
func (n *Node) Zone() *SafeZone {
	if !n.haveZone {
		return nil
	}
	return n.zone
}
