package core

import (
	"testing"

	"automon/internal/obs"
)

// benchCoordinator builds a small live cluster whose HandleViolation path we
// can hammer. The safe-zone kind exercises the hot branch: lazy sync attempt,
// balancing-set growth, slack redistribution.
func benchCoordinator(b *testing.B, reg *obs.Registry, tracer *obs.Tracer) *Coordinator {
	b.Helper()
	f := rosenbrockFunc()
	const n = 4
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0.1, 0.1})
	}
	cfg := Config{Epsilon: 5, R: 0.5, Decomp: DecompOptions{Seed: 1}, Metrics: reg, Tracer: tracer}
	coord := NewCoordinator(f, n, cfg, &directComm{nodes})
	if err := coord.Init(); err != nil {
		b.Fatal(err)
	}
	return coord
}

func benchHandleViolation(b *testing.B, coord *Coordinator) {
	v := &Violation{NodeID: 0, Kind: ViolationSafeZone, X: []float64{0.12, 0.11}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := coord.HandleViolation(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandleViolationObsOff is the default configuration of every CLI
// when -obs-addr is unset: no registry, no tracer. The protocol counters are
// still live atomics (Stats reads them), the tracer no-ops on nil.
func BenchmarkHandleViolationObsOff(b *testing.B) {
	benchHandleViolation(b, benchCoordinator(b, nil, nil))
}

// BenchmarkHandleViolationObsOn attaches a registry and a tracer; comparing
// against ObsOff shows what full observability costs on the hot path.
func BenchmarkHandleViolationObsOn(b *testing.B) {
	benchHandleViolation(b, benchCoordinator(b, obs.NewRegistry(), obs.NewTracer(1024)))
}
