package core

import (
	"fmt"
	"math"

	"automon/internal/linalg"
	"automon/internal/obs"
)

// Ownership is the data plane beneath a Machine. It stores the per-node
// vectors and slack assignments, talks to the messaging fabric, and
// aggregates partial averages; the Machine never touches a node vector
// directly. The split is what lets one protocol state machine drive either a
// flat node set (Coordinator) or a tree of sub-coordinators (internal/shard):
// every Ownership method is an interface call, opaque to the statepure
// dataflow analyzer, so the Machine's transitions are machine-checked to be
// free of I/O, clocks, spawns and global writes regardless of which data
// plane sits below them.
//
// Liveness remains protocol state (the Machine owns live/liveCount); an
// Ownership implementation reports losses re-entrantly through
// Machine.MarkDead exactly as a NodeComm fabric does today.
type Ownership interface {
	// Store overwrites node id's last-known vector (violation- or
	// rejoin-embedded data; no fabric round trip).
	Store(id int, x []float64)
	// Refresh re-pulls node id's vector from the fabric into the store.
	// False means the fabric lost the node (after marking it dead on the
	// machine); the stale vector is kept.
	Refresh(id int) bool
	// AddSlacked adds node id's slacked vector xᵢ + sᵢ into sum.
	AddSlacked(sum []float64, id int)
	// Rebalance sets sⱼ ← mean − xⱼ for every j in set and delivers the new
	// slack to the node. The set's slack total is preserved, so Σᵢ sᵢ = 0
	// still holds.
	Rebalance(set []int, mean []float64)
	// Collect implements the full-sync gather: refresh every live node not
	// marked fresh (losses may be flagged re-entrantly via MarkDead), then
	// fold every live node's vector into the exact per-dimension
	// accumulators. It returns the total weight — the number of vectors
	// folded — which the machine uses as the averaging denominator. Because
	// the accumulators are exact (linalg.Acc), any tree of partial Collects
	// merged upward yields bit-identical accumulators, and therefore a
	// bit-identical reference point, to a flat gather.
	Collect(fresh map[int]bool, accs []linalg.Acc) int
	// Distribute fans a full sync out to every live node: assign slack
	// sᵢ = x0 − xᵢ (or zero under DisableSlack), clear dead nodes' slack, and
	// send each node its Sync built from the template (per-node NodeID,
	// Slack, and ADCD-E matrix bookkeeping).
	Distribute(tmpl *Sync, zone *SafeZone)
	// Forget drops per-node delivery state (the ADCD-E matrix-sent flag) when
	// a node dies or rejoins: it may have restarted as a fresh process.
	Forget(id int)
	// Snapshot clones the last-known vectors of all nodes, in global node
	// order, for the adaptive radius controller's re-tuning window.
	Snapshot() [][]float64
}

// Machine is the AutoMon coordinator protocol as a pure state machine:
// Algorithm 1's violation handling, LRU lazy-sync balancing, full-sync
// resolution, slack policy, the §3.6 neighborhood-doubling fallback and the
// adaptive radius controller — everything except data movement, which it
// delegates to an Ownership. The same machine runs at the root of a sharded
// coordinator tree over shard-level partials (internal/shard) and inside the
// flat Coordinator.
type Machine struct {
	F   *Function
	N   int
	Cfg Config
	own Ownership

	x0     []float64
	accs   []linalg.Acc // per-dimension exact accumulators, reused across syncs
	zone   *SafeZone
	r      float64
	eDec   *EDecomposition
	method Method

	lru         []int // least recently balanced first
	consecNeigh int

	// zoneCache caches ADCD-X decompositions keyed by quantized (x0, r) —
	// either a private LRU (Config.ZoneCacheSize) or a process-wide one
	// shared across groups (Config.SharedZoneCache). Nil when caching is
	// off. zoneScope prefixes every key this machine writes.
	zoneCache   *ZoneCache
	zoneScope   string
	zoneQuantum float64

	// rMax is the resolved doubling cap (see Config.RMax / resolveRMax).
	// radius is the drift-aware controller, nil unless Config.AdaptiveR is
	// set on an ADCD-X run. rSwapped flags that the most recent full sync
	// applied a staged radius, so HandleViolation's neighborhood branch must
	// not restore a §3.6 streak counted against the old radius.
	rMax     float64
	radius   *radiusController
	rSwapped bool

	// Liveness: dead nodes are excluded from syncs, from the reference-point
	// average, and from lazy-sync balancing sets until they rejoin. While any
	// node is dead the estimate is Degraded: it ε-approximates f over the
	// average of the live nodes only.
	live      []bool
	liveCount int

	obs coordObs
}

// NewMachine creates the protocol state machine for n nodes over function f,
// with own as its data plane. The monitoring method is chosen automatically:
// ADCD-E when the computational graph proves a constant Hessian, otherwise
// ADCD-X (or the no-ADCD ablation when configured). Callers that need a
// back-reference from their Ownership to the machine (every real data plane
// does, for liveness) wire it after this returns.
func NewMachine(f *Function, n int, cfg Config, own Ownership) *Machine {
	if cfg.RDoubleAfter <= 0 {
		cfg.RDoubleAfter = 5 * n
	}
	if cfg.DisableSlack {
		cfg.DisableLazySync = true
	}
	m := &Machine{
		F:   f,
		N:   n,
		Cfg: cfg,
		own: own,
		r:   cfg.R,
		obs: newCoordObs(cfg.Metrics, cfg.Tracer, cfg.MetricsLabels),
	}
	m.obs.liveNodes.Set(float64(n))
	m.obs.radius.Set(cfg.R)
	// Surface the ADCD-X eigensolver work through the machine's metrics
	// unless the caller already wired a counter of their own.
	if m.Cfg.Decomp.EigsolveCounter == nil {
		m.Cfg.Decomp.EigsolveCounter = m.obs.eigsolves
	}
	if m.Cfg.Decomp.OptEvalCounter == nil {
		m.Cfg.Decomp.OptEvalCounter = m.obs.ebOptEvals
	}
	if cfg.SharedZoneCache != nil {
		m.zoneCache = cfg.SharedZoneCache
	} else if cfg.ZoneCacheSize > 0 {
		m.zoneCache = NewZoneCache(cfg.ZoneCacheSize)
	}
	if m.zoneCache != nil {
		m.zoneScope = cfg.ZoneCacheScope
		m.zoneQuantum = cfg.ZoneCacheQuantum
		if m.zoneQuantum <= 0 {
			m.zoneQuantum = DefaultZoneCacheQuantum
		}
	}
	m.live = make([]bool, n)
	m.liveCount = n
	for i := 0; i < n; i++ {
		m.lru = append(m.lru, i)
		m.live[i] = true
	}
	switch {
	case cfg.ZoneBuilder != nil:
		m.method = MethodCustom
	case cfg.DisableADCD:
		m.method = MethodNone
	case f.HasConstantHessian() && !cfg.ForceADCDX:
		m.method = MethodE
	default:
		m.method = MethodX
	}
	m.rMax = resolveRMax(cfg, f)
	m.radius = newRadiusController(m)
	return m
}

// Method returns the automatically selected ADCD variant.
func (m *Machine) Method() Method { return m.method }

// R returns the current neighborhood radius (it can grow via the doubling
// heuristic, and move either way under the adaptive controller).
func (m *Machine) R() float64 { return m.r }

// RMax returns the resolved cap on the neighborhood radius (see Config.RMax).
func (m *Machine) RMax() float64 { return m.rMax }

// PendingR returns the radius staged by the adaptive controller for the next
// full sync, or 0 when none is staged (or the controller is disabled).
func (m *Machine) PendingR() float64 {
	if m.radius == nil {
		return 0
	}
	return m.radius.pendingR
}

// Estimate returns the machine's current approximation f(x0).
func (m *Machine) Estimate() float64 {
	if m.zone == nil {
		return math.NaN()
	}
	return m.zone.F0
}

// Zone returns the current safe zone (nil before Init).
func (m *Machine) Zone() *SafeZone { return m.zone }

// Live reports whether node id is currently considered reachable.
func (m *Machine) Live(id int) bool { return m.live[id] }

// LiveCount returns the number of nodes currently considered reachable.
func (m *Machine) LiveCount() int { return m.liveCount }

// Degraded reports whether the estimate currently covers only a subset of
// the nodes: while any node is dead, the ε-guarantee holds for f over the
// average of the live nodes, not the full population.
func (m *Machine) Degraded() bool { return m.liveCount < m.N }

// Stats snapshots the protocol counters. The snapshot is a view over the
// same obs instruments the /metrics endpoint scrapes.
func (m *Machine) Stats() CoordStats {
	return CoordStats{
		FullSyncs:              int(m.obs.fullSyncs.Load()),
		LazyAttempts:           int(m.obs.lazyAttempts.Load()),
		LazyResolved:           int(m.obs.lazyResolved.Load()),
		NeighborhoodViolations: int(m.obs.neighViol.Load()),
		SafeZoneViolations:     int(m.obs.szViol.Load()),
		FaultyViolations:       int(m.obs.faultyViol.Load()),
		RDoublings:             int(m.obs.rDoublings.Load()),
		RSaturations:           int(m.obs.rSaturations.Load()),
		RShrinks:               int(m.obs.rShrinks.Load()),
		RGrows:                 int(m.obs.rGrows.Load()),
		AdaptiveRetunes:        int(m.obs.adaptiveRetunes.Load()),
		NodeDeaths:             int(m.obs.nodeDeaths.Load()),
		Rejoins:                int(m.obs.rejoins.Load()),
		Eigensolves:            int(m.obs.eigsolves.Load()),
		ZoneCacheHits:          int(m.obs.zcHits.Load()),
		ZoneCacheMisses:        int(m.obs.zcMisses.Load()),
		ZoneCacheBypasses:      int(m.obs.zcBypasses.Load()),
		ZoneCacheInvalidations: int(m.obs.zcInvalidated.Load()),
		EigBoundBuildsLBFGS:    int(m.obs.ebLBFGS.Load()),
		EigBoundBuildsInterval: int(m.obs.ebInterval.Load()),
		EigBoundBuildsHybrid:   int(m.obs.ebHybrid.Load()),
		HybridRefines:          int(m.obs.ebRefines.Load()),
		OptEvals:               int(m.obs.ebOptEvals.Load()),
	}
}

// MarkDead excludes a node from syncs, the reference-point average, and lazy
// balancing until MarkLive (or a rejoin/violation from it) revives it. The
// messaging fabric calls it when it loses a node.
func (m *Machine) MarkDead(id int) {
	if id < 0 || id >= m.N || !m.live[id] {
		return
	}
	m.live[id] = false
	m.liveCount--
	m.own.Forget(id)
	m.obs.nodeDeaths.Inc()
	m.obs.liveNodes.Set(float64(m.liveCount))
	m.obs.tracer.Record(obs.EventNodeDeath, id, float64(m.liveCount), "")
}

// MarkLive reverses MarkDead.
func (m *Machine) MarkLive(id int) {
	if id < 0 || id >= m.N || m.live[id] {
		return
	}
	m.live[id] = true
	m.liveCount++
	m.obs.liveNodes.Set(float64(m.liveCount))
}

// HandleDeparture marks a node dead and re-synchronizes the survivors so the
// estimate degrades to the live-node average instead of silently averaging a
// stale vector. Returns ErrNoLiveNodes when the departing node was the last
// one; the estimate then freezes until a rejoin.
func (m *Machine) HandleDeparture(id int) error {
	if id < 0 || id >= m.N {
		return fmt.Errorf("core: departure from unknown node %d", id)
	}
	m.MarkDead(id)
	return m.fullSync(nil)
}

// HandleRejoin re-admits a node after a connection loss: its fresh vector
// replaces the stale one and a full sync rebuilds the reference point, zone,
// and slack assignment over the new live set (the returning node's previous
// slack is void — only a full sync restores the Σᵢ sᵢ = 0 invariant).
func (m *Machine) HandleRejoin(id int, x []float64) error {
	if id < 0 || id >= m.N {
		return fmt.Errorf("core: rejoin from unknown node %d", id)
	}
	m.MarkLive(id)
	m.obs.rejoins.Inc()
	m.obs.tracer.Record(obs.EventRejoin, id, float64(m.liveCount), "")
	m.own.Forget(id)
	if x != nil {
		m.own.Store(id, x)
	}
	return m.fullSync(map[int]bool{id: true})
}

// HandleSubtreeDeparture marks a whole set of nodes dead — an entire
// sub-tree lost to a partition — and re-synchronizes the survivors with one
// full sync instead of one per node. Returns ErrNoLiveNodes when the subtree
// was the entire live population; the estimate then freezes until a rejoin.
func (m *Machine) HandleSubtreeDeparture(ids []int) error {
	for _, id := range ids {
		if id < 0 || id >= m.N {
			return fmt.Errorf("core: departure of unknown node %d", id)
		}
	}
	for _, id := range ids {
		m.MarkDead(id)
	}
	return m.fullSync(nil)
}

// HandleSubtreeRejoin re-admits a whole set of nodes after a partition
// heals, with one full sync over the healed population. xs carries the
// nodes' fresh vectors in ids order; a nil xs (or a nil entry) keeps the
// stale vector and lets the sync's gather re-pull it from the fabric.
func (m *Machine) HandleSubtreeRejoin(ids []int, xs [][]float64) error {
	if xs != nil && len(xs) != len(ids) {
		return fmt.Errorf("core: subtree rejoin carries %d vectors for %d nodes", len(xs), len(ids))
	}
	for _, id := range ids {
		if id < 0 || id >= m.N {
			return fmt.Errorf("core: rejoin of unknown node %d", id)
		}
	}
	fresh := make(map[int]bool, len(ids))
	for i, id := range ids {
		m.MarkLive(id)
		m.obs.rejoins.Inc()
		m.obs.tracer.Record(obs.EventRejoin, id, float64(m.liveCount), "")
		m.own.Forget(id)
		if xs != nil && xs[i] != nil {
			m.own.Store(id, xs[i])
			fresh[id] = true
		}
	}
	return m.fullSync(fresh)
}

// AdoptZone installs a safe zone decided by a parent tier. A sub-coordinator
// in a sharded tree does not compute zones of its own: it adopts the root's
// at every distribution, so its partition-local balancing (TryLazyAbsorb)
// checks exactly the constraints the nodes themselves check.
func (m *Machine) AdoptZone(z *SafeZone) { m.zone = z }

// TryLazyAbsorb attempts to resolve a safe-zone violation with lazy-sync
// balancing only — no full-sync fallback, no zone rebuild. It returns false
// whenever the violation cannot be absorbed (wrong kind, no adopted zone,
// dead or unknown violator, balancing failed) and the caller escalates to
// its parent tier. On success the balancing set's slack total is preserved,
// so the absorption is invisible to Σᵢ sᵢ = 0 at every tier above.
func (m *Machine) TryLazyAbsorb(v *Violation) bool {
	if v == nil || v.Kind != ViolationSafeZone || m.zone == nil || m.Cfg.DisableLazySync {
		return false
	}
	if v.NodeID < 0 || v.NodeID >= m.N || !m.live[v.NodeID] {
		return false
	}
	m.own.Store(v.NodeID, v.X)
	m.obs.szViol.Inc()
	m.consecNeigh = 0
	return m.lazySync(v, map[int]bool{v.NodeID: true})
}

// Init pulls all local vectors and performs the first full sync. It must be
// called once, after the nodes hold their initial vectors.
func (m *Machine) Init() error {
	for i := 0; i < m.N; i++ {
		if !m.live[i] {
			continue
		}
		m.own.Refresh(i)
	}
	return m.fullSync(nil)
}

// Resync forces a full synchronization: fresh data pull, new reference
// point, thresholds, and safe zones. Applications use it to re-engage
// AutoMon after falling back to another monitoring scheme (the §6
// "switching on the fly" extension).
func (m *Machine) Resync() error { return m.fullSync(nil) }

// HandleViolation is the machine's reaction to a node-reported violation:
// lazy sync for safe-zone violations (when enabled), a full sync otherwise.
// The violation's embedded vector refreshes the data plane's view of that
// node.
//
// The statepure marker makes this transition part of the machine-checked
// purity boundary (ROADMAP item 1): its static call closure must stay free
// of I/O, clocks, spawns, global rand and package-level writes — all data
// movement happens behind the Ownership interface — so the same transition
// can run at any tier of a sharded coordinator tree.
//
//automon:statepure
func (m *Machine) HandleViolation(v *Violation) error {
	if v.NodeID < 0 || v.NodeID >= m.N {
		return fmt.Errorf("core: violation from unknown node %d", v.NodeID)
	}
	m.own.Store(v.NodeID, v.X)
	fresh := map[int]bool{v.NodeID: true}

	// A violation from a dead-marked node proves it is alive again (e.g. a
	// request timeout was a false suspicion). Revival always takes a full
	// sync: the node's slack assignment predates its death and only a full
	// sync restores the Σᵢ sᵢ = 0 invariant across the live set.
	if !m.live[v.NodeID] {
		m.MarkLive(v.NodeID)
		m.obs.rejoins.Inc()
		m.obs.tracer.Record(obs.EventRejoin, v.NodeID, float64(m.liveCount), "")
		m.own.Forget(v.NodeID)
		return m.fullSync(fresh)
	}

	switch v.Kind {
	case ViolationNeighborhood:
		m.obs.neighViol.Inc()
		m.obs.tracer.Record(obs.EventViolation, v.NodeID, 0, "neighborhood")
		// The §3.6 streak counts *consecutive* neighborhood violations; every
		// full sync from another cause (including the one below when it is
		// not neighborhood-triggered) resets it inside fullSync, so restore
		// the running streak after the sync this violation forces.
		streak := m.consecNeigh + 1
		if streak >= m.Cfg.RDoubleAfter {
			// §3.6 fallback: tuning data became unrepresentative; widen B —
			// but never past rMax: unbounded doubling under a sustained storm
			// would overflow the zone-cache quantizer and (with the interval
			// backend) widen Hessian enclosures toward Entire.
			streak = 0
			newR := m.r * 2
			if newR > m.rMax {
				newR = m.rMax
				m.obs.rSaturations.Inc()
				m.obs.tracer.Record(obs.EventRSaturated, v.NodeID, m.rMax, "")
			}
			if newR > m.r {
				m.r = newR
				m.obs.rDoublings.Inc()
				m.obs.radius.Set(m.r)
				m.obs.tracer.Record(obs.EventRDouble, v.NodeID, m.r, "")
				m.invalidateZoneScope()
			}
		}
		err := m.fullSync(fresh)
		if m.rSwapped {
			// The sync installed a re-tuned radius; violations counted
			// against the old one say nothing about the new neighborhood.
			streak = 0
		}
		m.consecNeigh = streak
		if m.radius != nil {
			m.radius.observeViolation(true, false, true)
			m.radius.maybeRetune()
		}
		return err
	case ViolationFaulty:
		m.obs.faultyViol.Inc()
		m.obs.tracer.Record(obs.EventViolation, v.NodeID, 0, "faulty")
		err := m.fullSync(fresh)
		if m.radius != nil {
			m.radius.observeViolation(false, false, true)
			m.radius.maybeRetune()
		}
		return err
	case ViolationSafeZone:
		m.obs.szViol.Inc()
		m.obs.tracer.Record(obs.EventViolation, v.NodeID, 0, "safe_zone")
		m.consecNeigh = 0
		resolved := !m.Cfg.DisableLazySync && m.lazySync(v, fresh)
		var err error
		if !resolved {
			err = m.fullSync(fresh)
		}
		if m.radius != nil {
			m.radius.observeViolation(false, true, !resolved)
			m.radius.maybeRetune()
		}
		return err
	}
	return fmt.Errorf("core: unknown violation kind %v", v.Kind)
}

// invalidateZoneScope drops this machine's entries from the zone cache.
// Called whenever the neighborhood radius changes: old-radius keys can never
// match again, and in a shared cache they would squeeze out other tenants'
// live entries until LRU pressure finally evicts them.
func (m *Machine) invalidateZoneScope() {
	if m.zoneCache == nil {
		return
	}
	if n := m.zoneCache.InvalidateScope(m.zoneScope); n > 0 {
		m.obs.zcInvalidated.Add(int64(n))
	}
}

// lazySync implements the balancing protocol: starting from the violator, it
// adds least-recently-used nodes to the balancing set until the mean of
// their slacked vectors re-enters the safe zone, then rebalances their slack
// so each sits exactly at the mean. Returns false when more than half the
// nodes were pulled without resolution; the caller then falls back to a full
// sync (which reuses the vectors pulled here via fresh).
//
//automon:statepure
func (m *Machine) lazySync(v *Violation, fresh map[int]bool) bool {
	m.obs.lazyAttempts.Inc()
	d := m.F.Dim()
	set := []int{v.NodeID}
	m.touchLRU(v.NodeID)

	sum := make([]float64, d)
	m.own.AddSlacked(sum, v.NodeID)

	mean := make([]float64, d)
	for {
		if len(set) > m.liveCount/2 {
			return false
		}
		next := m.pickLRU(set)
		if next < 0 {
			return false
		}
		if !m.own.Refresh(next) || !m.live[next] {
			// The fabric lost this node mid-pull; abort balancing and let the
			// caller fall back to a full sync over the remaining live set.
			return false
		}
		fresh[next] = true
		set = append(set, next)
		m.touchLRU(next)
		m.own.AddSlacked(sum, next)
		linalg.Scale(mean, 1/float64(len(set)), sum)
		if m.zone.InNeighborhood(mean) && m.zone.Contains(m.F, mean) &&
			m.zone.InAdmissibleRegion(m.F, mean) {
			break
		}
	}

	// Rebalance: vⱼ ← mean for every j in the set, i.e. sⱼ = mean − xⱼ.
	// The per-set slack total is preserved, so Σᵢ sᵢ = 0 still holds and the
	// monitored average remains the true average.
	m.own.Rebalance(set, mean)
	m.obs.lazyResolved.Inc()
	m.obs.lazySet.Observe(float64(len(set)))
	m.obs.tracer.Record(obs.EventLazySync, v.NodeID, float64(len(set)), "")
	return true
}

// pickLRU returns the least-recently-used live node not already in set, or
// -1. Dead nodes are skipped: pulling them would stall the resolution on a
// request that can never be answered.
func (m *Machine) pickLRU(set []int) int {
	inSet := func(id int) bool {
		for _, s := range set {
			if s == id {
				return true
			}
		}
		return false
	}
	for _, id := range m.lru {
		if m.live[id] && !inSet(id) {
			return id
		}
	}
	return -1
}

// touchLRU marks a node as most recently used.
func (m *Machine) touchLRU(id int) {
	for i, v := range m.lru {
		if v == id {
			copy(m.lru[i:], m.lru[i+1:])
			m.lru[len(m.lru)-1] = id
			return
		}
	}
}

// Thresholds derives (L, U) from f(x0) under the configured error type.
// Under Multiplicative error the interval width is ε·|f(x0)|, which
// collapses to zero as f(x0) → 0 and turns every subsequent update into a
// violation; a configurable absolute floor (Config.ThresholdFloor) keeps the
// interval usable through zero crossings.
func (m *Machine) Thresholds(f0 float64) (l, u float64) {
	if m.Cfg.ErrorType == Multiplicative {
		a := (1 - m.Cfg.Epsilon) * f0
		b := (1 + m.Cfg.Epsilon) * f0
		l, u = math.Min(a, b), math.Max(a, b)
		floor := m.Cfg.ThresholdFloor
		if floor == 0 {
			floor = DefaultThresholdFloor
		}
		if floor > 0 && u-l < 2*floor {
			l, u = f0-floor, f0+floor
		}
		return l, u
	}
	return f0 - m.Cfg.Epsilon, f0 + m.Cfg.Epsilon
}

// fullSync is Algorithm 1's CoordinatorFullSync: gather all live vectors
// (minus the ones already fresh in this resolution) into the exact
// per-dimension accumulators, recompute x0 over the live set, thresholds,
// the DC decomposition and safe zone, then distribute slack and zones to
// every live node. Dead nodes keep their last vector but contribute nothing:
// the estimate degrades to the live-node average.
//
// x0 is derived as Round(Σᵢxᵢ)·(1/w) from order-independent exact sums, so a
// sharded tree that merges partial accumulators upward reproduces the flat
// reference point bit-for-bit (see linalg.Acc).
//
// Every full sync also ends any running streak of consecutive neighborhood
// violations: the nodes receive fresh zones around a fresh reference point,
// so earlier neighborhood violations say nothing about the new neighborhood.
// HandleViolation's neighborhood branch restores the streak afterwards —
// only there is the violation itself part of the streak (§3.6).
//
//automon:statepure
func (m *Machine) fullSync(fresh map[int]bool) error {
	m.obs.fullSyncs.Inc()
	m.consecNeigh = 0
	m.rSwapped = false
	if m.radius != nil && m.radius.applyPending() {
		m.rSwapped = true
	}
	d := m.F.Dim()
	if m.accs == nil {
		m.accs = make([]linalg.Acc, d)
	}
	for j := range m.accs {
		m.accs[j].Reset()
	}
	weight := m.own.Collect(fresh, m.accs)
	if weight == 0 {
		return ErrNoLiveNodes
	}
	if m.x0 == nil {
		m.x0 = make([]float64, d)
	}
	inv := 1 / float64(weight)
	for j := range m.x0 {
		m.x0[j] = m.accs[j].Round() * inv
	}
	m.clampToDomain(m.x0)

	f0 := m.F.Value(m.x0)
	l, u := m.Thresholds(f0)

	var zone *SafeZone
	var err error
	switch m.method {
	case MethodCustom:
		zone = m.Cfg.ZoneBuilder(m.F, m.x0, l, u)
	case MethodNone:
		zone = BuildZoneNone(m.F, m.x0, l, u)
	case MethodE:
		if m.eDec == nil {
			m.eDec, err = DecomposeE(m.F, m.x0)
			if err != nil {
				return err
			}
		}
		zone = BuildZoneE(m.F, m.eDec, m.x0, l, u)
	case MethodX:
		bLo, bHi := NeighborhoodBox(m.F, m.x0, m.r)
		var dec *XDecomposition
		var key string
		var keyOK bool
		if m.zoneCache != nil {
			// A key that cannot be quantized soundly (non-finite or huge
			// coordinates) would alias unrelated entries; bypass the cache for
			// this sync instead.
			key, keyOK = quantizeKey(m.zoneScope, m.Cfg.Decomp.Backend, m.x0, m.r, m.zoneQuantum)
			if !keyOK {
				m.obs.zcBypasses.Inc()
			} else if cached, ok := m.zoneCache.get(key); ok {
				m.obs.zcHits.Inc()
				dec = cached
			} else {
				m.obs.zcMisses.Inc()
			}
		}
		if dec == nil {
			solvesBefore := m.Cfg.Decomp.EigsolveCounter.Load()
			dec, err = DecomposeX(m.F, m.x0, bLo, bHi, m.Cfg.Decomp)
			if err != nil {
				return err
			}
			m.obs.eigboundBuilds(dec.Backend).Inc()
			if dec.Refined {
				m.obs.ebRefines.Inc()
			}
			if m.radius != nil {
				m.radius.observeBuild(float64(m.Cfg.Decomp.EigsolveCounter.Load() - solvesBefore))
			}
			if m.zoneCache != nil && keyOK {
				m.zoneCache.put(key, dec)
			}
		}
		zone = BuildZoneXFrom(m.F, m.x0, l, u, bLo, bHi, dec)
	}
	m.zone = zone
	m.obs.estimate.Set(zone.F0)
	m.obs.tracer.Record(obs.EventFullSync, -1, float64(m.liveCount), zone.Method.String())

	m.own.Distribute(&Sync{
		Method: zone.Method,
		Kind:   zone.Kind,
		X0:     m.x0,
		F0:     zone.F0,
		GradF0: zone.GradF0,
		L:      l,
		U:      u,
		Lam:    zone.Lam,
		R:      m.r,
	}, zone)
	if m.radius != nil {
		m.radius.recordSnapshot()
	}
	return nil
}

// clampToDomain keeps the reference point inside D; averaging cannot leave
// a convex domain box, but numerical round-off at the boundary can.
func (m *Machine) clampToDomain(x []float64) {
	if m.F.DomainLo != nil {
		for i := range x {
			if x[i] < m.F.DomainLo[i] {
				x[i] = m.F.DomainLo[i]
			}
		}
	}
	if m.F.DomainHi != nil {
		for i := range x {
			if x[i] > m.F.DomainHi[i] {
				x[i] = m.F.DomainHi[i]
			}
		}
	}
}
