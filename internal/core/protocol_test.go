package core

import (
	"math"
	"math/rand"
	"testing"

	"automon/internal/autodiff"
	"automon/internal/linalg"
)

// saddleFunc is the §4.6 ablation function f(x) = −x1² + x2².
func saddleFunc() *Function {
	return NewFunction("saddle", 2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		return b.Add(b.Neg(b.Square(x[0])), b.Square(x[1]))
	})
}

// countingComm wraps directComm and counts coordinator-side messages.
type countingComm struct {
	directComm
	requests, syncs, slacks int
}

func (c *countingComm) RequestData(id int) []float64 {
	c.requests++
	return c.directComm.RequestData(id)
}

func (c *countingComm) SendSync(id int, m *Sync) {
	c.syncs++
	c.directComm.SendSync(id, m)
}

func (c *countingComm) SendSlack(id int, m *Slack) {
	c.slacks++
	c.directComm.SendSlack(id, m)
}

// runProtocol drives a full in-memory monitoring run and returns the maximum
// estimate error observed across rounds.
func runProtocol(t *testing.T, f *Function, data TuningData, cfg Config) (maxErr float64, coord *Coordinator, comm *countingComm) {
	t.Helper()
	n := len(data[0])
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData(data[0][i])
	}
	comm = &countingComm{directComm: directComm{nodes}}
	coord = NewCoordinator(f, n, cfg, comm)
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	avg := make([]float64, f.Dim())
	for _, round := range data[1:] {
		for i, x := range round {
			if v := nodes[i].UpdateData(x); v != nil {
				if err := coord.HandleViolation(v); err != nil {
					t.Fatal(err)
				}
			}
		}
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = nodes[i].LocalVector()
		}
		linalg.Mean(avg, vecs...)
		e := math.Abs(coord.Estimate() - f.Value(avg))
		if e > maxErr {
			maxErr = e
		}
	}
	return maxErr, coord, comm
}

// driftData builds a dataset where node i's vector random-walks from start
// toward target over the given number of rounds.
func driftData(rng *rand.Rand, rounds int, starts, targets [][]float64, noise float64) TuningData {
	n := len(starts)
	d := len(starts[0])
	data := make(TuningData, rounds)
	for r := 0; r < rounds; r++ {
		frac := float64(r) / float64(rounds-1)
		data[r] = make([][]float64, n)
		for i := 0; i < n; i++ {
			v := make([]float64, d)
			for j := 0; j < d; j++ {
				v[j] = starts[i][j] + frac*(targets[i][j]-starts[i][j]) + rng.NormFloat64()*noise
			}
			data[r][i] = v
		}
	}
	return data
}

func TestProtocolGuaranteesErrorBoundConstantHessian(t *testing.T) {
	// f = −x1²+x2² has a constant Hessian ⇒ ADCD-E ⇒ deterministic
	// guarantee: the estimate error never exceeds ε while the protocol runs.
	rng := rand.New(rand.NewSource(5))
	f := saddleFunc()
	starts := [][]float64{{0, 0}, {0, 0}, {0, 0}, {0, 0}}
	targets := [][]float64{{1, 0}, {-1, 0}, {1, 1}, {1, -1}}
	data := driftData(rng, 300, starts, targets, 0.01)

	maxErr, coord, _ := runProtocol(t, f, data, Config{Epsilon: 0.1})
	if coord.Method() != MethodE {
		t.Fatalf("method = %v, want ADCD-E", coord.Method())
	}
	if maxErr > 0.1+1e-9 {
		t.Fatalf("ADCD-E error bound violated: max error %v > ε 0.1", maxErr)
	}
	if coord.Stats().FaultyViolations != 0 {
		t.Fatalf("faulty violations reported for exact decomposition: %d", coord.Stats().FaultyViolations)
	}
}

func TestProtocolNoADCDMissesViolations(t *testing.T) {
	// The §4.6 ablation: with the (non-convex) admissible region as local
	// constraint and slack balancing active, missed violations accumulate
	// unbounded error on the saddle function as node data drifts apart.
	// Nodes 2 and 3 move along the zero-level set of f (the diagonals
	// y = ±x), so every local value stays ≈ 0 and no admissible-region
	// constraint ever fires — yet the true average drifts to (0.5, 0) where
	// f = −0.25. A convex ADCD safe zone catches the drift; the raw
	// admissible region cannot.
	rng := rand.New(rand.NewSource(5))
	f := saddleFunc()
	starts := [][]float64{{0, 0}, {0, 0}, {0, 0}, {0, 0}}
	targets := [][]float64{{0, 0}, {0, 0}, {1, 1}, {1, -1}}
	data := driftData(rng, 400, starts, targets, 0.002)

	const eps = 0.02 // the paper's Figure 9(a) bound
	errADCD, _, commADCD := runProtocol(t, f, data, Config{Epsilon: eps})
	errNone, _, commNone := runProtocol(t, f, data, Config{Epsilon: eps, DisableADCD: true})

	if errNone <= 2*eps {
		t.Fatalf("no-ADCD run unexpectedly kept the bound: max error %v", errNone)
	}
	if errADCD > eps+1e-9 {
		t.Fatalf("AutoMon run broke the bound: %v", errADCD)
	}
	// The failure mode is silent: few messages, wrong answer.
	totalADCD := commADCD.requests + commADCD.syncs + commADCD.slacks
	totalNone := commNone.requests + commNone.syncs + commNone.slacks
	if totalNone > totalADCD*3 {
		t.Fatalf("no-ADCD should fail silently, but sent %d msgs vs AutoMon %d", totalNone, totalADCD)
	}
}

func TestLazySyncResolvesOppositeDrift(t *testing.T) {
	// Two nodes drifting in exactly opposite directions keep the average
	// constant: lazy sync must absorb the violations without a second full
	// sync.
	f := saddleFunc()
	n := 4
	data := make(TuningData, 100)
	for r := range data {
		shift := float64(r) * 0.02
		data[r] = [][]float64{
			{0.5 + shift, 0.5},
			{0.5 - shift, 0.5},
			{0.5, 0.5},
			{0.5, 0.5},
		}
	}
	_, coord, comm := runProtocol(t, f, data, Config{Epsilon: 0.3})
	if coord.Stats().LazyResolved == 0 {
		t.Fatal("expected at least one lazy-sync resolution")
	}
	if coord.Stats().FullSyncs > 3 {
		t.Fatalf("too many full syncs (%d) for balanced drift", coord.Stats().FullSyncs)
	}
	_ = n
	_ = comm
}

func TestSlackSumsToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := saddleFunc()
	starts := [][]float64{{0.2, 0.2}, {0.1, -0.1}, {-0.2, 0.3}, {0, 0}}
	targets := [][]float64{{0.8, 0.1}, {-0.5, -0.4}, {0.2, 0.9}, {-0.1, -0.6}}
	data := driftData(rng, 150, starts, targets, 0.02)

	n := len(starts)
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData(data[0][i])
	}
	coord := NewCoordinator(f, n, Config{Epsilon: 0.2}, &directComm{nodes})
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	checkSum := func(when string) {
		sum := make([]float64, f.Dim())
		for i := 0; i < n; i++ {
			linalg.Add(sum, sum, coord.own.slacks[i])
		}
		if linalg.Norm2(sum) > 1e-9 {
			t.Fatalf("%s: slack sum = %v, want 0 (invariant Σsᵢ = 0)", when, sum)
		}
	}
	checkSum("after init")
	for r, round := range data[1:] {
		for i, x := range round {
			if v := nodes[i].UpdateData(x); v != nil {
				if err := coord.HandleViolation(v); err != nil {
					t.Fatal(err)
				}
				checkSum("after violation handling")
			}
		}
		_ = r
	}
}

func TestDisableSlackDisablesLazySync(t *testing.T) {
	f := saddleFunc()
	c := NewCoordinator(f, 4, Config{Epsilon: 0.1, DisableSlack: true}, &directComm{})
	if !c.Cfg.DisableLazySync {
		t.Fatal("DisableSlack must imply DisableLazySync")
	}
}

func TestThresholds(t *testing.T) {
	f := saddleFunc()
	c := NewCoordinator(f, 2, Config{Epsilon: 0.5}, &directComm{})
	if l, u := c.Thresholds(2); l != 1.5 || u != 2.5 {
		t.Fatalf("additive thresholds = (%v, %v)", l, u)
	}
	c = NewCoordinator(f, 2, Config{Epsilon: 0.1, ErrorType: Multiplicative}, &directComm{})
	if l, u := c.Thresholds(10); math.Abs(l-9) > 1e-12 || math.Abs(u-11) > 1e-12 {
		t.Fatalf("multiplicative thresholds = (%v, %v)", l, u)
	}
	// Negative reference value: bounds must stay ordered.
	if l, u := c.Thresholds(-10); math.Abs(l+11) > 1e-12 || math.Abs(u+9) > 1e-12 {
		t.Fatalf("negative multiplicative thresholds = (%v, %v)", l, u)
	}
}

func TestSanityCheckCatchesFaultyConstraints(t *testing.T) {
	// Fault injection for §3.7: hand a node a zone whose curvature bound is
	// far too small (pretending the optimizer badly under-estimated the
	// extreme eigenvalue). With f = sin, x0 = π/2, Lam = 0 the "safe zone"
	// degenerates to the whole neighborhood, which spills far outside the
	// admissible region; the node must flag ViolationFaulty, never stay
	// silent.
	f := sineFunc()
	x0 := []float64{math.Pi / 2}
	grad := make([]float64, 1)
	f0 := f.Grad(x0, grad)
	node := NewNode(0, f)
	node.ApplySync(&Sync{
		NodeID: 0, Method: MethodX, Kind: ConvexDiff,
		X0: x0, F0: f0, GradF0: grad,
		L: 0.8, U: 1.2, Lam: 0, R: 2, Slack: []float64{0},
	})
	v := []float64{0.1} // sin(0.1) ≈ 0.0998, far below L = 0.8
	nodeZone := node.Zone()
	if !nodeZone.InNeighborhood(v) || !nodeZone.Contains(f, v) {
		t.Fatal("test setup broken: point should be inside the faulty zone")
	}
	viol := node.UpdateData(v)
	if viol == nil {
		t.Fatalf("faulty constraints at %v went unreported", v)
	}
	if viol.Kind != ViolationFaulty {
		t.Fatalf("violation kind = %v, want faulty", viol.Kind)
	}
}

func TestFaultyViolationTriggersFullSync(t *testing.T) {
	f := saddleFunc()
	n := 3
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0, 0})
	}
	comm := &countingComm{directComm: directComm{nodes}}
	coord := NewCoordinator(f, n, Config{Epsilon: 0.1}, comm)
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	before := coord.Stats().FullSyncs
	err := coord.HandleViolation(&Violation{NodeID: 1, Kind: ViolationFaulty, X: []float64{0.1, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if coord.Stats().FullSyncs != before+1 {
		t.Fatal("faulty violation must force a full sync")
	}
}

func TestRDoublingHeuristic(t *testing.T) {
	f := rosenbrockFunc()
	n := 2
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0, 0})
	}
	cfg := Config{Epsilon: 5, R: 0.01, RDoubleAfter: 3, Decomp: DecompOptions{Seed: 1}}
	coord := NewCoordinator(f, n, cfg, &directComm{nodes})
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	r0 := coord.R()
	for k := 0; k < 3; k++ {
		err := coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationNeighborhood, X: []float64{0.02, 0}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if coord.R() != 2*r0 {
		t.Fatalf("r = %v after 3 consecutive neighborhood violations, want %v", coord.R(), 2*r0)
	}
	if coord.Stats().RDoublings != 1 {
		t.Fatalf("RDoublings = %d, want 1", coord.Stats().RDoublings)
	}
	// A safe-zone violation must reset the streak.
	err := coord.HandleViolation(&Violation{NodeID: 0, Kind: ViolationSafeZone, X: []float64{0.01, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if coord.consecNeigh != 0 {
		t.Fatal("safe-zone violation must reset the neighborhood streak")
	}
}

func TestMultiplicativeMonitoringEndToEnd(t *testing.T) {
	// §2's multiplicative approximation: L, U = (1 ∓ ε)·f(x0). Monitor
	// ‖x̄‖² (guaranteed, ADCD-E) while the signal doubles; the relative
	// error must stay within ε on every round.
	f := NewFunction("sqnorm", 2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		return b.Add(b.Square(x[0]), b.Square(x[1]))
	})
	n := 3
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{1, 1})
	}
	eps := 0.1
	coord := NewCoordinator(f, n, Config{Epsilon: eps, ErrorType: Multiplicative}, &directComm{nodes})
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 60; step++ {
		v := 1 + 0.01*float64(step)
		for i := range nodes {
			if viol := nodes[i].UpdateData([]float64{v, v}); viol != nil {
				if err := coord.HandleViolation(viol); err != nil {
					t.Fatal(err)
				}
			}
		}
		truth := 2 * v * v
		rel := math.Abs(coord.Estimate()-truth) / truth
		if rel > eps+1e-9 {
			t.Fatalf("step %d: relative error %v above multiplicative bound %v", step, rel, eps)
		}
	}
}

func TestEstimateBeforeInitIsNaN(t *testing.T) {
	f := saddleFunc()
	c := NewCoordinator(f, 2, Config{Epsilon: 0.1}, &directComm{})
	if !math.IsNaN(c.Estimate()) {
		t.Fatal("estimate before init should be NaN")
	}
}

func TestNodeSilentBeforeSync(t *testing.T) {
	f := saddleFunc()
	node := NewNode(0, f)
	if v := node.UpdateData([]float64{100, 100}); v != nil {
		t.Fatal("node must be silent before the first sync")
	}
	if node.CurrentValue() != 0 {
		t.Fatal("CurrentValue before sync should be 0")
	}
}

func TestLRUOrdering(t *testing.T) {
	f := saddleFunc()
	c := NewCoordinator(f, 4, Config{Epsilon: 0.1}, &directComm{})
	c.touchLRU(0)
	// order now 1,2,3,0 — the LRU pick excluding {1} must be 2.
	if got := c.pickLRU([]int{1}); got != 2 {
		t.Fatalf("pickLRU = %d, want 2", got)
	}
	if got := c.pickLRU([]int{0, 1, 2, 3}); got != -1 {
		t.Fatalf("pickLRU with all excluded = %d, want -1", got)
	}
}

func TestADCDXOnRosenbrockKeepsErrorNearBound(t *testing.T) {
	// Rosenbrock with N(0, 0.2²) data, as in §3.6. ADCD-X has no absolute
	// guarantee, but with the sanity check the observed error should stay
	// close to ε.
	rng := rand.New(rand.NewSource(77))
	f := rosenbrockFunc()
	n := 4
	rounds := 150
	data := make(TuningData, rounds)
	for r := range data {
		data[r] = make([][]float64, n)
		for i := 0; i < n; i++ {
			data[r][i] = []float64{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2}
		}
	}
	eps := 0.5
	maxErr, coord, _ := runProtocol(t, f, data, Config{Epsilon: eps, R: 0.4, Decomp: DecompOptions{Seed: 3}})
	if coord.Method() != MethodX {
		t.Fatalf("method = %v, want ADCD-X", coord.Method())
	}
	if maxErr > 2*eps {
		t.Fatalf("ADCD-X error %v far above bound %v", maxErr, eps)
	}
}
