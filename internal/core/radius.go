package core

import (
	"math"

	"automon/internal/obs"
)

// The paper tunes the ADCD-X neighborhood size r̂ once, on a data prefix
// (Algorithm 2), and the §3.6 runtime fallback only ever *grows* it: after
// RDoubleAfter consecutive neighborhood violations r doubles. On drifting
// workloads that one-way ratchet is a latent bug — a single bursty regime
// permanently inflates r, every later zone is built over a wider box than
// the tuned optimum (looser curvature bounds, tighter safe zones, more
// violations), and under a sustained storm r doubles without bound.
//
// radiusController closes the loop: it watches exponentially weighted moving
// averages of the violation mix, the full-sync rate, and the eigen-engine
// build cost, and when the mix becomes lopsided it re-runs Algorithm 2's
// bracketing search on a window of recent full-sync snapshots (through the
// same TuneWorkers pool the offline tuner uses). The re-tuned radius is
// staged and swapped in at the *next* full sync — never mid-round — so the
// node-side monitoring loop keeps checking exactly the zone it was sent and
// the hot path stays allocation-free and bit-identical. Every radius change
// also invalidates the coordinator's slice of the (possibly process-shared)
// zone cache: old-radius decompositions can never be looked up again.
//
// On a drift-free stream the controller never triggers, so an adaptive run
// is bit-identical to a static one (asserted by TestAdaptiveDriftFreeRunIsBitIdentical).

// Controller defaults. The thresholds encode Algorithm 2's own optimality
// picture: at the tuned r̂ violations mix both kinds, at r too small
// neighborhood violations dominate, at r too large safe-zone violations do.
const (
	// DefaultAdaptiveWindow is the number of full-sync snapshots retained as
	// the re-tuning window when Config.AdaptiveWindow is zero.
	DefaultAdaptiveWindow = 8
	// DefaultAdaptiveAlpha is the EWMA decay applied per handled violation
	// when Config.AdaptiveAlpha is zero (half-life ≈ 13 violations).
	DefaultAdaptiveAlpha = 0.05

	// adaptiveGrowEWMA triggers a re-tune when the neighborhood share of
	// recent violations exceeds it: the regime has outgrown r.
	adaptiveGrowEWMA = 0.6
	// adaptiveShrinkNeighEWMA and adaptiveShrinkViolEWMA trigger the shrink
	// side: r sits above the last tuned value, neighborhood violations have
	// vanished, and safe-zone violations (or the full syncs they force)
	// dominate — the storm that inflated r has passed.
	adaptiveShrinkNeighEWMA = 0.05
	adaptiveShrinkViolEWMA  = 0.85
	adaptiveShrinkSyncEWMA  = 0.5
	// adaptiveCostlyBuild halves the re-tune cooldown when the EWMA of
	// eigensolves per fresh zone build exceeds it: when builds are expensive
	// a better-fitted r pays for its re-tune sooner.
	adaptiveCostlyBuild = 64
	// adaptiveMinRelChange suppresses swaps within 5% of the current radius:
	// re-bracketing noise, not a regime change.
	adaptiveMinRelChange = 0.05
	// defaultRMaxFactor bounds §3.6 doubling at this multiple of the initial
	// (tuned) radius when the function has no finite domain to derive a
	// diameter from and Config.RMax is zero.
	defaultRMaxFactor = 1024
)

// radiusController is the always-on adaptivity engine. It is created only
// for ADCD-X coordinators with Config.AdaptiveR set; all fields are owned by
// the coordinator goroutine (the controller adds no locks and no clocks, so
// the determinism analyzer's constraints hold trivially).
type radiusController struct {
	m *Machine

	alpha    float64
	window   int
	cooldown int

	// baseR is the most recently tuned/accepted radius: the reference the
	// shrink trigger compares against. It starts at the configured (offline
	// tuned) r and moves with every accepted re-tune.
	baseR float64

	// EWMAs over handled violations: the neighborhood share, the safe-zone
	// share, and the share resolved by a full sync; costEWMA averages
	// eigensolver evaluations per fresh ADCD-X build.
	neighEWMA, szEWMA, syncEWMA, costEWMA float64

	// violations counts handled violations since the last re-tune attempt
	// (the cooldown clock — event time, not wall time).
	violations int

	// rounds is the re-tuning window: clones of the data plane's node
	// vectors captured at each full sync, oldest first.
	rounds [][][]float64

	// pendingR is a staged radius awaiting the next full sync; 0 means none.
	pendingR float64
}

// newRadiusController wires a controller for machine m, or returns nil
// when the configuration (or monitoring method) does not call for one.
func newRadiusController(m *Machine) *radiusController {
	if !m.Cfg.AdaptiveR || m.method != MethodX {
		return nil
	}
	rc := &radiusController{
		m:        m,
		alpha:    m.Cfg.AdaptiveAlpha,
		window:   m.Cfg.AdaptiveWindow,
		cooldown: m.Cfg.AdaptiveCooldown,
		baseR:    m.r,
	}
	if rc.alpha <= 0 || rc.alpha > 1 {
		rc.alpha = DefaultAdaptiveAlpha
	}
	if rc.window < 2 {
		rc.window = DefaultAdaptiveWindow
	}
	if rc.cooldown <= 0 {
		rc.cooldown = 2 * m.Cfg.RDoubleAfter
	}
	return rc
}

// resolveRMax derives the effective doubling cap: an explicit Config.RMax
// wins; otherwise the domain diameter when finite (beyond it the box B = D
// and further growth changes nothing), otherwise defaultRMaxFactor times the
// initial radius. A negative Config.RMax disables the cap. The cap never
// sits below the configured starting radius.
func resolveRMax(cfg Config, f *Function) float64 {
	rMax := cfg.RMax
	if rMax < 0 {
		return math.MaxFloat64
	}
	if rMax == 0 {
		if diam := domainDiameter(f); diam > 0 {
			rMax = diam
		} else if cfg.R > 0 {
			rMax = cfg.R * defaultRMaxFactor
		} else {
			return math.MaxFloat64
		}
	}
	if rMax < cfg.R {
		rMax = cfg.R
	}
	return rMax
}

// domainDiameter returns the largest side of the domain box, or 0 when the
// domain is absent or unbounded in any coordinate.
func domainDiameter(f *Function) float64 {
	if f.DomainLo == nil || f.DomainHi == nil {
		return 0
	}
	diam := 0.0
	for i := range f.DomainHi {
		side := f.DomainHi[i] - f.DomainLo[i]
		if math.IsInf(side, 0) || math.IsNaN(side) {
			return 0
		}
		if side > diam {
			diam = side
		}
	}
	return diam
}

// observeViolation folds one handled violation into the EWMAs and advances
// the cooldown clock. kindNeigh/kindSZ select the violation kind; fullSync
// reports whether resolving it forced a full synchronization.
func (rc *radiusController) observeViolation(kindNeigh, kindSZ, fullSync bool) {
	rc.violations++
	rc.neighEWMA += rc.alpha * (b2f(kindNeigh) - rc.neighEWMA)
	rc.szEWMA += rc.alpha * (b2f(kindSZ) - rc.szEWMA)
	rc.syncEWMA += rc.alpha * (b2f(fullSync) - rc.syncEWMA)
	rc.m.obs.ewmaNeigh.Set(rc.neighEWMA)
	rc.m.obs.ewmaSZ.Set(rc.szEWMA)
	rc.m.obs.ewmaSync.Set(rc.syncEWMA)
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// observeBuild folds the eigensolver cost of one fresh ADCD-X decomposition
// into the build-cost EWMA.
func (rc *radiusController) observeBuild(eigsolves float64) {
	rc.costEWMA += rc.alpha * (eigsolves - rc.costEWMA)
	rc.m.obs.ewmaCost.Set(rc.costEWMA)
}

// recordSnapshot captures the data plane's refreshed node vectors as one
// window round. Called at the end of every full sync, when every live
// node's vector is fresh; the ownership layer clones them in global node
// order, so a sharded tree feeds the controller the same windows a flat
// coordinator would.
func (rc *radiusController) recordSnapshot() {
	round := rc.m.own.Snapshot()
	if len(rc.rounds) >= rc.window {
		copy(rc.rounds, rc.rounds[1:])
		rc.rounds[len(rc.rounds)-1] = round
		return
	}
	rc.rounds = append(rc.rounds, round)
}

// maybeRetune checks the trigger conditions after a handled violation and,
// when they fire, re-runs Algorithm 2's bracketing search on the recent
// window. A successful search stages its radius in pendingR; the swap itself
// waits for the next full sync.
func (rc *radiusController) maybeRetune() {
	cooldown := rc.cooldown
	if rc.costEWMA > adaptiveCostlyBuild {
		cooldown /= 2
	}
	if rc.violations < cooldown || len(rc.rounds) < 2 || rc.pendingR > 0 {
		return
	}
	grow := rc.neighEWMA >= adaptiveGrowEWMA
	shrink := rc.m.r > rc.baseR &&
		rc.neighEWMA <= adaptiveShrinkNeighEWMA &&
		(rc.szEWMA >= adaptiveShrinkViolEWMA || rc.syncEWMA >= adaptiveShrinkSyncEWMA)
	if !grow && !shrink {
		return
	}
	rc.retune()
}

// retune replays the window under Algorithm 2 and stages the resulting
// radius. The replay coordinators are throwaway probes: they run with
// private instruments, no zone cache, and the controller disabled, so a
// re-tune can never recurse, pollute the shared cache, or inflate the
// monitored deployment's counters. Replays fan out across Config.TuneWorkers
// exactly like offline tuning, and the wave-parallel search is bit-identical
// at any worker count, so the staged radius is deterministic.
func (rc *radiusController) retune() {
	rc.violations = 0 // restart the cooldown even when the search fails
	cfg := rc.m.Cfg
	cfg.R = 0
	cfg.AdaptiveR = false
	cfg.Metrics = nil
	cfg.Tracer = nil
	cfg.SharedZoneCache = nil
	cfg.ZoneCacheSize = 0
	cfg.ZoneCacheScope = ""
	cfg.MetricsLabels = ""
	cfg.Decomp.EigsolveCounter = nil
	cfg.Decomp.OptEvalCounter = nil

	data := make(TuningData, len(rc.rounds))
	copy(data, rc.rounds)
	res, err := Tune(rc.m.F, data, rc.m.N, cfg)
	if err != nil {
		// An unconverged bracket (or a failed replay) carries no quality
		// argument; keep the current radius and let the cooldown retry on a
		// fresher window.
		rc.m.obs.tracer.Record(obs.EventRetune, -1, 0, "bracket-failed")
		return
	}
	newR := res.R
	if newR > rc.m.rMax {
		newR = rc.m.rMax
	}
	if newR <= 0 {
		return
	}
	rel := math.Abs(newR-rc.m.r) / rc.m.r
	if rel < adaptiveMinRelChange {
		rc.m.obs.tracer.Record(obs.EventRetune, -1, newR, "within-noise")
		return
	}
	rc.pendingR = newR
	rc.m.obs.adaptiveRetunes.Inc()
	rc.m.obs.tracer.Record(obs.EventRetune, -1, newR, "staged")
	// Reset the mix: the staged radius answers the regime these EWMAs
	// measured; carrying them over would re-trigger on stale evidence.
	rc.neighEWMA, rc.szEWMA, rc.syncEWMA = 0, 0, 0
}

// applyPending swaps a staged radius in at the top of a full sync, before
// the neighborhood box is derived. Returns true when the radius changed (the
// caller then drops any restored §3.6 streak: violations counted against the
// old radius say nothing about the new one).
func (rc *radiusController) applyPending() bool {
	if rc.pendingR <= 0 {
		return false
	}
	newR := rc.pendingR
	rc.pendingR = 0
	m := rc.m
	if newR < m.r {
		m.obs.rShrinks.Inc()
		m.obs.tracer.Record(obs.EventRShrink, -1, newR, "")
	} else {
		m.obs.rGrows.Inc()
		m.obs.tracer.Record(obs.EventRGrow, -1, newR, "")
	}
	m.r = newR
	rc.baseR = newR
	m.obs.radius.Set(m.r)
	m.invalidateZoneScope()
	return true
}
