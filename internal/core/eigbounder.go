package core

import (
	"fmt"
	"math"
)

// EigBackend selects the engine computing the §3.1 extreme Hessian
// eigenvalue bounds over a neighborhood box.
type EigBackend uint8

const (
	// BackendLBFGS is the paper's engine: projected L-BFGS multi-start over
	// λmin/λmax(H(x)). Tight in practice but unsound — it can miss the global
	// extremum, which the §3.7 faulty-constraint check then catches at
	// runtime.
	BackendLBFGS EigBackend = iota
	// BackendInterval evaluates an interval Hessian enclosure over the box
	// and tightens it to spectral bounds (Gershgorin + scaled Gershgorin +
	// midpoint refinement). Sound by construction, one cheap pass, zero
	// optimizer eigensolves; generally looser than the search.
	BackendInterval
	// BackendHybrid always computes the interval certificate, then refines
	// with the L-BFGS search only when the certificate is loose (see
	// DecompOptions.HybridSlack), clipping the refined bounds into the
	// certified interval.
	BackendHybrid
)

// String renders the backend the way the CLI flags spell it.
func (b EigBackend) String() string {
	switch b {
	case BackendLBFGS:
		return "lbfgs"
	case BackendInterval:
		return "interval"
	case BackendHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("backend(%d)", uint8(b))
}

// ParseEigBackend parses a CLI spelling of an eigen-engine backend.
func ParseEigBackend(s string) (EigBackend, error) {
	switch s {
	case "", "lbfgs":
		return BackendLBFGS, nil
	case "interval":
		return BackendInterval, nil
	case "hybrid":
		return BackendHybrid, nil
	}
	return 0, fmt.Errorf("core: unknown eigen backend %q (want lbfgs, interval or hybrid)", s)
}

// DefaultHybridSlack is the hybrid escalation threshold when
// DecompOptions.HybridSlack is zero: refine with L-BFGS once the certified
// eigenvalue range is wider than the H(x0) spectral spread by more than this
// (in eigenvalue units — the same units as ε/r-driven thresholds).
const DefaultHybridSlack = 1.0

// X0Spectrum carries the extreme eigen-data of H(x0) that DecomposeX has
// already computed for the §3.4 DC heuristic, so bounders can reuse it (the
// L-BFGS engine seeds its per-task memo with it; the hybrid engine measures
// certificate slack against its spread).
type X0Spectrum struct {
	LamMin, LamMax float64
	VMin, VMax     []float64
}

// EigBoundResult is a bounder's answer: the [LamMin, LamMax] handed to
// Lemma 1, plus provenance. When Certified, [CertMin, CertMax] is a sound
// enclosure of every eigenvalue of every H(x) in the box — LamMin/LamMax
// equal the certificate unless a hybrid refinement tightened them inside it.
type EigBoundResult struct {
	LamMin, LamMax   float64
	CertMin, CertMax float64
	Certified        bool
	// Refined reports that a hybrid escalation ran the L-BFGS search.
	Refined bool
}

// EigBounder computes extreme Hessian eigenvalue bounds over a box — the two
// §3.1 quantities λ̂min ≤ min λmin(H(x)) and λ̂max ≥ max λmax(H(x)) (the
// L-BFGS engine approximates them from inside; the interval engine encloses
// them from outside).
type EigBounder interface {
	// Backend identifies the engine (for cache keys and metrics).
	Backend() EigBackend
	// BoundEigs bounds the extreme eigenvalues of H over [bLo, bHi] around
	// x0. x0spec is the already-computed H(x0) spectrum; opts carries the
	// search budget, seed and counters.
	BoundEigs(f *Function, x0, bLo, bHi []float64, x0spec X0Spectrum, opts DecompOptions) (EigBoundResult, error)
}

// BounderFor returns the engine for a backend. Unknown values fall back to
// the default L-BFGS engine, mirroring how the zero Config behaves.
func BounderFor(b EigBackend) EigBounder {
	switch b {
	case BackendInterval:
		return intervalBounder{}
	case BackendHybrid:
		return hybridBounder{}
	}
	return lbfgsBounder{}
}

// lbfgsBounder is the paper's multi-start search, unchanged semantics.
type lbfgsBounder struct{}

func (lbfgsBounder) Backend() EigBackend { return BackendLBFGS }

func (lbfgsBounder) BoundEigs(f *Function, x0, bLo, bHi []float64, x0spec X0Spectrum, opts DecompOptions) (EigBoundResult, error) {
	seed := &eigResult{lamMin: x0spec.LamMin, lamMax: x0spec.LamMax, vMin: x0spec.VMin, vMax: x0spec.VMax}
	lamMin, lamMax, err := extremeEigsOverBox(f, x0, bLo, bHi, opts, seed)
	if err != nil {
		return EigBoundResult{}, err
	}
	return EigBoundResult{LamMin: lamMin, LamMax: lamMax}, nil
}

// intervalBounder is the certified engine: one interval Hessian pass, no
// optimizer eigensolves at all.
type intervalBounder struct{}

func (intervalBounder) Backend() EigBackend { return BackendInterval }

func (intervalBounder) BoundEigs(f *Function, x0, bLo, bHi []float64, x0spec X0Spectrum, opts DecompOptions) (EigBoundResult, error) {
	certMin, certMax, err := f.IntervalEigBounds(bLo, bHi)
	if err != nil {
		return EigBoundResult{}, err
	}
	return EigBoundResult{
		LamMin: certMin, LamMax: certMax,
		CertMin: certMin, CertMax: certMax,
		Certified: true,
	}, nil
}

// hybridBounder escalates from the certificate to the search only when the
// certificate is loose.
type hybridBounder struct{}

func (hybridBounder) Backend() EigBackend { return BackendHybrid }

func (hybridBounder) BoundEigs(f *Function, x0, bLo, bHi []float64, x0spec X0Spectrum, opts DecompOptions) (EigBoundResult, error) {
	res, err := intervalBounder{}.BoundEigs(f, x0, bLo, bHi, x0spec, opts)
	if err != nil {
		return EigBoundResult{}, err
	}
	threshold := opts.HybridSlack
	if threshold == 0 {
		threshold = DefaultHybridSlack
	}
	if threshold < 0 {
		return res, nil // escalation disabled: pure certificate
	}
	// Slack = how much wider the certified range is than the pointwise H(x0)
	// spread. A tight certificate costs nothing extra; a loose one (Entire
	// after a division through zero, fat boxes under the dependency problem)
	// is worth one search. An infinite certificate always escalates.
	slack := (res.CertMax - res.CertMin) - (x0spec.LamMax - x0spec.LamMin)
	if math.IsNaN(slack) || slack <= threshold {
		return res, nil
	}
	lb, err := lbfgsBounder{}.BoundEigs(f, x0, bLo, bHi, x0spec, opts)
	if err != nil {
		// The certificate alone is already a valid answer; a search failure
		// (e.g. an eigensolver breakdown at a probe point) degrades to it.
		return res, nil
	}
	// Clip the search result into the certificate: a valid search optimum
	// lies inside it by soundness, so the clamp only ever discards an
	// optimizer excursion that the certificate proves impossible.
	res.LamMin = math.Min(math.Max(lb.LamMin, res.CertMin), res.CertMax)
	res.LamMax = math.Max(math.Min(lb.LamMax, res.CertMax), res.CertMin)
	res.Refined = true
	return res, nil
}
