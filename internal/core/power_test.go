package core

import (
	"math"
	"testing"
)

func TestExtremeEigsAtPowerMatchesDense(t *testing.T) {
	f := cubicFunc()
	for _, x := range [][]float64{{1, 0}, {0.5, -0.3}, {-1, 2}} {
		wLo, wHi, _, _, err := f.ExtremeEigsAt(x)
		if err != nil {
			t.Fatal(err)
		}
		gLo, gHi, _, _, err := f.ExtremeEigsAtPower(x, 2000, 1)
		if err != nil {
			t.Fatal(err)
		}
		scale := 1 + math.Abs(wLo) + math.Abs(wHi)
		if math.Abs(gLo-wLo) > 1e-4*scale || math.Abs(gHi-wHi) > 1e-4*scale {
			t.Fatalf("x=%v: power (%v, %v) vs dense (%v, %v)", x, gLo, gHi, wLo, wHi)
		}
	}
}

func TestBuildZoneXWithPowerIteration(t *testing.T) {
	// The whole ADCD-X pipeline must work with the power-iteration spectrum
	// estimator, and remain sound: zone ⊆ admissible region.
	f := rosenbrockFunc()
	x0 := []float64{0.1, 0.05}
	bLo, bHi := NeighborhoodBox(f, x0, 0.5)
	f0 := f.Value(x0)
	zone, err := BuildZoneX(f, x0, f0-1, f0+1, bLo, bHi,
		DecompOptions{Seed: 1, UsePowerIteration: true, PowerIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BuildZoneX(f, x0, f0-1, f0+1, bLo, bHi, DecompOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The two estimators should find comparable curvature bounds.
	if dense.Lam > 1 && math.Abs(zone.Lam-dense.Lam)/dense.Lam > 0.1 {
		t.Fatalf("power Lam = %v, dense Lam = %v", zone.Lam, dense.Lam)
	}
	// Soundness sampling, as in the dense test.
	for i := 0; i < 2000; i++ {
		v := []float64{
			bLo[0] + float64(i%45)/45*(bHi[0]-bLo[0]),
			bLo[1] + float64(i/45)/45*(bHi[1]-bLo[1]),
		}
		if zone.Contains(f, v) && !zone.InAdmissibleRegion(f, v) {
			t.Fatalf("power-iteration zone leaked outside admissible region at %v", v)
		}
	}
}
