package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"automon/internal/linalg"
	"automon/internal/obs"
)

// DefaultThresholdFloor is the absolute floor applied to the half-width of a
// Multiplicative threshold interval when Config.ThresholdFloor is zero. It
// guards the f(x0) ≈ 0 degeneracy: purely multiplicative bounds collapse to
// a zero-width interval there, and every subsequent update becomes a
// violation (a sync storm). The default is small enough not to perturb any
// realistically scaled threshold.
const DefaultThresholdFloor = 1e-9

// ErrNoLiveNodes is returned by sync operations when every node is marked
// dead. It is a degraded-but-recoverable state, not a fatal one: the
// coordinator keeps its last estimate and repairs itself on the next rejoin.
var ErrNoLiveNodes = errors.New("core: no live nodes")

// ErrorType selects the approximation semantics used to set thresholds from
// f(x0) and ε (§2).
type ErrorType uint8

const (
	// Additive: L = f(x0) − ε, U = f(x0) + ε.
	Additive ErrorType = iota
	// Multiplicative: L, U = (1 ∓ ε)·f(x0), ordered correctly for negative
	// values of f(x0).
	Multiplicative
)

// Config configures a Coordinator.
type Config struct {
	// Epsilon is the approximation error bound ε.
	Epsilon float64
	// ErrorType selects additive (default) or multiplicative approximation.
	ErrorType ErrorType
	// R is the ADCD-X neighborhood radius. Use Tune (tuning.go) to pick it
	// automatically; ignored for ADCD-E and the no-ADCD ablation.
	R float64
	// DisableADCD switches to the §4.6 ablation: the admissible region is
	// used directly as the (generally non-convex) local constraint.
	DisableADCD bool
	// ForceADCDX monitors a constant-Hessian function with ADCD-X anyway;
	// used by tests and the ablation benches.
	ForceADCDX bool
	// DisableSlack zeroes all slack vectors. Disabling slack also disables
	// lazy sync, matching the paper's ablation.
	DisableSlack bool
	// DisableLazySync resolves every safe-zone violation with a full sync.
	DisableLazySync bool
	// RDoubleAfter is the number of consecutive neighborhood violations
	// (with no intervening safe-zone violations) after which r is doubled.
	// 0 means the paper default of 5n.
	RDoubleAfter int
	// RMax caps the neighborhood radius: §3.6 doublings (and adaptive
	// re-tunes) clamp to it, so a sustained violation storm can no longer
	// grow r without bound — unbounded doubling eventually overflows the
	// zone-cache quantizer and, under the interval eigen-engine, widens
	// Hessian enclosures toward Entire. 0 derives a default (the domain
	// diameter when finite, else 1024× the starting radius); negative
	// disables the cap. Clamped doublings are counted in
	// automon_coordinator_r_saturations_total.
	RMax float64
	// AdaptiveR enables the drift-aware radius controller: EWMAs of the
	// violation mix, full-sync rate and eigen-engine build cost trigger
	// background Algorithm-2 re-brackets over a window of recent full-sync
	// snapshots, and the re-tuned radius — which can *shrink* as well as
	// grow — is swapped in at the next full sync. Only meaningful for
	// ADCD-X; on a drift-free stream the controller never triggers and the
	// run is bit-identical to a static one. See radius.go.
	AdaptiveR bool
	// AdaptiveWindow is the number of full-sync snapshots retained as the
	// controller's re-tuning window. 0 means DefaultAdaptiveWindow.
	AdaptiveWindow int
	// AdaptiveAlpha is the controller's per-violation EWMA decay in (0, 1].
	// 0 means DefaultAdaptiveAlpha.
	AdaptiveAlpha float64
	// AdaptiveCooldown is the minimum number of handled violations between
	// re-tune attempts (event time, not wall time). 0 means 2·RDoubleAfter.
	AdaptiveCooldown int
	// Decomp configures the ADCD-X eigenvalue search, including its worker
	// count (Decomp.Workers) and eigensolve memoization.
	Decomp DecompOptions
	// TuneWorkers bounds the goroutines Tune uses to fan bracket and grid
	// replays across radii. 0 or 1 runs sequentially (the default); higher
	// values replay speculatively but select identical radii, so TuneResult
	// is unchanged.
	TuneWorkers int
	// ZoneCacheSize bounds the coordinator's LRU cache of ADCD-X
	// decompositions, keyed by the quantized (x0, r) of each full sync
	// (see ZoneCacheQuantum). A full sync whose key matches a cached entry
	// reuses the Lemma-1 curvature bounds and skips the eigenvalue search;
	// f0, ∇f0 and the thresholds are always recomputed exactly for the true
	// x0, and the §3.7 sanity check guards the reused bounds exactly as it
	// guards the optimizer's local optima. 0 disables the cache (default).
	ZoneCacheSize int
	// ZoneCacheQuantum is the grid pitch used to quantize (x0, r) for zone
	// cache lookups. 0 means DefaultZoneCacheQuantum; larger values hit more
	// often but reuse bounds computed for a reference point further away.
	ZoneCacheQuantum float64
	// SharedZoneCache, when set, replaces the private per-coordinator zone
	// cache with a process-wide one: a multi-tenant coordinator shares a
	// single LRU across all of its monitoring groups so the memory bound
	// (the cache capacity) is global rather than per group. ZoneCacheSize is
	// ignored when a shared cache is supplied; set ZoneCacheScope to keep the
	// groups' keys disjoint.
	SharedZoneCache *ZoneCache
	// ZoneCacheScope is prefixed to every zone-cache key this coordinator
	// writes. Coordinators sharing one SharedZoneCache must use distinct
	// scopes — quantized (x0, r) coordinates from different functions would
	// otherwise alias.
	ZoneCacheScope string
	// MetricsLabels, when non-empty, is a rendered label set (e.g.
	// `group="2"`) merged into every coordinator metric name registered in
	// Metrics. A multi-tenant process uses it to keep per-group series
	// apart in one shared registry; the zero value preserves the unlabeled
	// single-tenant names.
	MetricsLabels string
	// Metrics, when set, registers the coordinator's protocol counters in
	// this registry so they are scraped by the obs HTTP endpoints. When nil
	// the coordinator keeps private (unregistered) counters; Stats() reads
	// the same instruments either way, so the two views cannot diverge.
	Metrics *obs.Registry
	// Tracer, when set, records structured protocol events (violations,
	// syncs, r-doublings, deaths, rejoins). Nil disables tracing at the cost
	// of a single nil check per event.
	Tracer *obs.Tracer
	// ZoneBuilder, when set, replaces ADCD entirely with a hand-crafted safe
	// zone (used to plug GM baselines such as Convex Bound into the same
	// protocol). Such zones are delivered to nodes in-memory.
	ZoneBuilder func(f *Function, x0 []float64, l, u float64) *SafeZone
	// ThresholdFloor is the minimum half-width of the (L, U) interval under
	// Multiplicative error: when ε·|f(x0)| falls below it, thresholds become
	// f(x0) ∓ ThresholdFloor instead of collapsing to a point. 0 means
	// DefaultThresholdFloor; negative disables the guard entirely.
	ThresholdFloor float64
}

// NodeComm abstracts the coordinator→node side of the messaging fabric. The
// simulation counts calls as messages; the transport layer sends real bytes.
// RequestData accounts for a DataRequest and its DataResponse. A fabric with
// failure detection may return nil from RequestData to signal that the node
// is unreachable (after calling MarkDead on the coordinator); the coordinator
// then keeps its last known vector for that node and excludes it from the
// estimate until the node rejoins.
type NodeComm interface {
	RequestData(nodeID int) []float64
	SendSync(nodeID int, m *Sync)
	SendSlack(nodeID int, m *Slack)
}

// CoordStats is a point-in-time snapshot of the coordinator's protocol
// counters, as returned by Coordinator.Stats. The counters themselves live
// in the obs registry (see coordObs); this struct is purely a view, so the
// values tests assert on and the values a /metrics scrape reports come from
// the same instruments.
type CoordStats struct {
	FullSyncs              int
	LazyAttempts           int
	LazyResolved           int
	NeighborhoodViolations int
	SafeZoneViolations     int
	FaultyViolations       int
	RDoublings             int
	RSaturations           int
	RShrinks               int
	RGrows                 int
	AdaptiveRetunes        int
	NodeDeaths             int
	Rejoins                int
	Eigensolves            int
	ZoneCacheHits          int
	ZoneCacheMisses        int
	ZoneCacheBypasses      int
	ZoneCacheInvalidations int

	// Eigen-engine provenance: fresh ADCD-X decompositions by backend, the
	// hybrid escalations that ran the L-BFGS search, and the eigensolves
	// performed inside the search (BackendInterval keeps OptEvals at zero —
	// the counter-verified "no optimizer work" claim).
	EigBoundBuildsLBFGS    int
	EigBoundBuildsInterval int
	EigBoundBuildsHybrid   int
	HybridRefines          int
	OptEvals               int
}

// coordObs bundles the coordinator's observability instruments. Counters are
// always real (they back CoordStats); the tracer may be nil (no-op).
type coordObs struct {
	fullSyncs    *obs.Counter
	lazyAttempts *obs.Counter
	lazyResolved *obs.Counter
	neighViol    *obs.Counter
	szViol       *obs.Counter
	faultyViol   *obs.Counter
	rDoublings   *obs.Counter
	rSaturations *obs.Counter
	rShrinks     *obs.Counter
	rGrows       *obs.Counter

	adaptiveRetunes *obs.Counter
	nodeDeaths      *obs.Counter
	rejoins         *obs.Counter
	eigsolves       *obs.Counter
	zcHits          *obs.Counter
	zcMisses        *obs.Counter
	zcBypasses      *obs.Counter
	zcInvalidated   *obs.Counter
	ebLBFGS         *obs.Counter
	ebInterval      *obs.Counter
	ebHybrid        *obs.Counter
	ebRefines       *obs.Counter
	ebOptEvals      *obs.Counter

	liveNodes *obs.Gauge
	radius    *obs.Gauge
	estimate  *obs.Gauge
	ewmaNeigh *obs.Gauge
	ewmaSZ    *obs.Gauge
	ewmaSync  *obs.Gauge
	ewmaCost  *obs.Gauge
	lazySet   *obs.Histogram

	tracer *obs.Tracer
}

// labeledName merges a rendered extra label set into a metric name that may
// or may not already carry labels:
//
//	labeledName(`automon_x_total`, `group="1"`)              → automon_x_total{group="1"}
//	labeledName(`automon_x_total{kind="a"}`, `group="1"`)    → automon_x_total{kind="a",group="1"}
//
// An empty extra returns the name unchanged, preserving the historical
// single-tenant series names.
func labeledName(name, extra string) string {
	if extra == "" {
		return name
	}
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + extra + "}"
	}
	return name + "{" + extra + "}"
}

// newCoordObs creates the instruments, registered in reg when non-nil. With
// a nil registry the counters are standalone: same cost, just unscraped.
// A non-empty labels set (Config.MetricsLabels) is merged into every series
// name so multiple coordinators can share one registry.
func newCoordObs(reg *obs.Registry, tracer *obs.Tracer, labels string) coordObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	name := func(n string) string { return labeledName(n, labels) }
	const violHelp = "protocol violations handled by the coordinator, by kind"
	const eigboundHelp = "fresh ADCD-X decompositions built, by eigen-engine backend"
	return coordObs{
		fullSyncs:    reg.Counter(name("automon_coordinator_full_syncs_total"), "full synchronizations performed"),
		lazyAttempts: reg.Counter(name("automon_coordinator_lazy_sync_attempts_total"), "lazy-sync balancing attempts"),
		lazyResolved: reg.Counter(name("automon_coordinator_lazy_syncs_resolved_total"), "safe-zone violations resolved without a full sync"),
		neighViol:    reg.Counter(name(`automon_coordinator_violations_total{kind="neighborhood"}`), violHelp),
		szViol:       reg.Counter(name(`automon_coordinator_violations_total{kind="safe_zone"}`), violHelp),
		faultyViol:   reg.Counter(name(`automon_coordinator_violations_total{kind="faulty"}`), violHelp),
		rDoublings:   reg.Counter(name("automon_coordinator_r_doublings_total"), "§3.6 neighborhood-size doublings"),
		rSaturations: reg.Counter(name("automon_coordinator_r_saturations_total"), "§3.6 doublings clamped by the RMax radius cap"),
		rShrinks:     reg.Counter(name(`automon_coordinator_adaptive_r_swaps_total{dir="shrink"}`), "adaptive radius swaps applied at a full sync, by direction"),
		rGrows:       reg.Counter(name(`automon_coordinator_adaptive_r_swaps_total{dir="grow"}`), "adaptive radius swaps applied at a full sync, by direction"),

		adaptiveRetunes: reg.Counter(name("automon_coordinator_adaptive_retunes_total"), "background Algorithm-2 re-brackets that staged a new radius"),
		nodeDeaths:      reg.Counter(name("automon_coordinator_node_deaths_total"), "nodes marked dead by the fabric"),
		rejoins:         reg.Counter(name("automon_coordinator_rejoins_total"), "nodes re-admitted after a death"),
		eigsolves:       reg.Counter(name("automon_coordinator_eigensolves_total"), "eigensolver evaluations performed by the ADCD-X search"),
		zcHits:          reg.Counter(name("automon_coordinator_zone_cache_hits_total"), "full syncs that reused a cached ADCD-X decomposition"),
		zcMisses:        reg.Counter(name("automon_coordinator_zone_cache_misses_total"), "full syncs that ran the eigenvalue search with the zone cache enabled"),
		zcBypasses:      reg.Counter(name("automon_coordinator_zone_cache_bypasses_total"), "full syncs that skipped the zone cache because (x0, r) could not be quantized soundly"),
		zcInvalidated:   reg.Counter(name("automon_coordinator_zone_cache_invalidations_total"), "cached decompositions dropped because the neighborhood radius changed"),
		ebLBFGS:         reg.Counter(name(`automon_coordinator_eigbound_builds_total{backend="lbfgs"}`), eigboundHelp),
		ebInterval:      reg.Counter(name(`automon_coordinator_eigbound_builds_total{backend="interval"}`), eigboundHelp),
		ebHybrid:        reg.Counter(name(`automon_coordinator_eigbound_builds_total{backend="hybrid"}`), eigboundHelp),
		ebRefines:       reg.Counter(name("automon_coordinator_eigbound_hybrid_refines_total"), "hybrid eigen-engine escalations that ran the L-BFGS search on top of the interval certificate"),
		ebOptEvals:      reg.Counter(name("automon_coordinator_eigbound_opt_evals_total"), "eigensolver evaluations performed inside the L-BFGS search (zero under the interval backend)"),
		liveNodes:       reg.Gauge(name("automon_coordinator_live_nodes"), "nodes currently considered reachable"),
		radius:          reg.Gauge(name("automon_coordinator_neighborhood_radius"), "current ADCD-X neighborhood size r"),
		estimate:        reg.Gauge(name("automon_coordinator_estimate"), "current approximation of f over the live-node average"),
		ewmaNeigh:       reg.Gauge(name(`automon_coordinator_violation_mix_ewma{kind="neighborhood"}`), "EWMA share of recent violations, by kind (adaptive radius controller)"),
		ewmaSZ:          reg.Gauge(name(`automon_coordinator_violation_mix_ewma{kind="safe_zone"}`), "EWMA share of recent violations, by kind (adaptive radius controller)"),
		ewmaSync:        reg.Gauge(name("automon_coordinator_full_sync_rate_ewma"), "EWMA share of recent violations resolved by a full sync (adaptive radius controller)"),
		ewmaCost:        reg.Gauge(name("automon_coordinator_eigbound_cost_ewma"), "EWMA eigensolver evaluations per fresh ADCD-X zone build (adaptive radius controller)"),
		lazySet:         reg.Histogram(name("automon_coordinator_balancing_set_size"), "nodes pulled into each resolved lazy sync", []float64{1, 2, 4, 8, 16, 32, 64}),
		tracer:          tracer,
	}
}

// Coordinator is the AutoMon coordinator algorithm (Algorithm 1, lines 1–8)
// plus slack management, LRU lazy sync, and the neighborhood-doubling
// fallback heuristic of §3.6.
type Coordinator struct {
	F    *Function
	N    int
	Cfg  Config
	comm NodeComm

	x0     []float64
	zone   *SafeZone
	r      float64
	lastX  [][]float64
	slacks [][]float64
	eDec   *EDecomposition
	method Method

	// matrixSent tracks per node whether the (constant) ADCD-E matrix has
	// been delivered. It is cleared when a node dies or rejoins: the node may
	// have restarted as a fresh process that never saw the matrix.
	matrixSent  []bool
	lru         []int // least recently balanced first
	consecNeigh int

	// zoneCache caches ADCD-X decompositions keyed by quantized (x0, r) —
	// either a private LRU (Config.ZoneCacheSize) or a process-wide one
	// shared across groups (Config.SharedZoneCache). Nil when caching is
	// off. zoneScope prefixes every key this coordinator writes.
	zoneCache   *ZoneCache
	zoneScope   string
	zoneQuantum float64

	// rMax is the resolved doubling cap (see Config.RMax / resolveRMax).
	// radius is the drift-aware controller, nil unless Config.AdaptiveR is
	// set on an ADCD-X run. rSwapped flags that the most recent full sync
	// applied a staged radius, so HandleViolation's neighborhood branch must
	// not restore a §3.6 streak counted against the old radius.
	rMax     float64
	radius   *radiusController
	rSwapped bool

	// Liveness: dead nodes are excluded from syncs, from the reference-point
	// average, and from lazy-sync balancing sets until they rejoin. While any
	// node is dead the estimate is Degraded: it ε-approximates f over the
	// average of the live nodes only.
	live      []bool
	liveCount int

	obs coordObs
}

// Stats snapshots the protocol counters. The snapshot is a view over the
// same obs instruments the /metrics endpoint scrapes.
func (c *Coordinator) Stats() CoordStats {
	return CoordStats{
		FullSyncs:              int(c.obs.fullSyncs.Load()),
		LazyAttempts:           int(c.obs.lazyAttempts.Load()),
		LazyResolved:           int(c.obs.lazyResolved.Load()),
		NeighborhoodViolations: int(c.obs.neighViol.Load()),
		SafeZoneViolations:     int(c.obs.szViol.Load()),
		FaultyViolations:       int(c.obs.faultyViol.Load()),
		RDoublings:             int(c.obs.rDoublings.Load()),
		RSaturations:           int(c.obs.rSaturations.Load()),
		RShrinks:               int(c.obs.rShrinks.Load()),
		RGrows:                 int(c.obs.rGrows.Load()),
		AdaptiveRetunes:        int(c.obs.adaptiveRetunes.Load()),
		NodeDeaths:             int(c.obs.nodeDeaths.Load()),
		Rejoins:                int(c.obs.rejoins.Load()),
		Eigensolves:            int(c.obs.eigsolves.Load()),
		ZoneCacheHits:          int(c.obs.zcHits.Load()),
		ZoneCacheMisses:        int(c.obs.zcMisses.Load()),
		ZoneCacheBypasses:      int(c.obs.zcBypasses.Load()),
		ZoneCacheInvalidations: int(c.obs.zcInvalidated.Load()),
		EigBoundBuildsLBFGS:    int(c.obs.ebLBFGS.Load()),
		EigBoundBuildsInterval: int(c.obs.ebInterval.Load()),
		EigBoundBuildsHybrid:   int(c.obs.ebHybrid.Load()),
		HybridRefines:          int(c.obs.ebRefines.Load()),
		OptEvals:               int(c.obs.ebOptEvals.Load()),
	}
}

// eigboundBuilds returns the fresh-decomposition counter for a backend.
func (o *coordObs) eigboundBuilds(b EigBackend) *obs.Counter {
	switch b {
	case BackendInterval:
		return o.ebInterval
	case BackendHybrid:
		return o.ebHybrid
	}
	return o.ebLBFGS
}

// NewCoordinator creates a coordinator for n nodes over function f. The
// monitoring method is chosen automatically: ADCD-E when the computational
// graph proves a constant Hessian, otherwise ADCD-X (or the no-ADCD ablation
// when configured).
func NewCoordinator(f *Function, n int, cfg Config, comm NodeComm) *Coordinator {
	if cfg.RDoubleAfter <= 0 {
		cfg.RDoubleAfter = 5 * n
	}
	if cfg.DisableSlack {
		cfg.DisableLazySync = true
	}
	c := &Coordinator{
		F:    f,
		N:    n,
		Cfg:  cfg,
		comm: comm,
		r:    cfg.R,
		obs:  newCoordObs(cfg.Metrics, cfg.Tracer, cfg.MetricsLabels),
	}
	c.obs.liveNodes.Set(float64(n))
	c.obs.radius.Set(cfg.R)
	// Surface the ADCD-X eigensolver work through the coordinator's metrics
	// unless the caller already wired a counter of their own.
	if c.Cfg.Decomp.EigsolveCounter == nil {
		c.Cfg.Decomp.EigsolveCounter = c.obs.eigsolves
	}
	if c.Cfg.Decomp.OptEvalCounter == nil {
		c.Cfg.Decomp.OptEvalCounter = c.obs.ebOptEvals
	}
	if cfg.SharedZoneCache != nil {
		c.zoneCache = cfg.SharedZoneCache
	} else if cfg.ZoneCacheSize > 0 {
		c.zoneCache = NewZoneCache(cfg.ZoneCacheSize)
	}
	if c.zoneCache != nil {
		c.zoneScope = cfg.ZoneCacheScope
		c.zoneQuantum = cfg.ZoneCacheQuantum
		if c.zoneQuantum <= 0 {
			c.zoneQuantum = DefaultZoneCacheQuantum
		}
	}
	c.lastX = make([][]float64, n)
	c.slacks = make([][]float64, n)
	c.matrixSent = make([]bool, n)
	c.live = make([]bool, n)
	c.liveCount = n
	for i := 0; i < n; i++ {
		c.lastX[i] = make([]float64, f.Dim())
		c.slacks[i] = make([]float64, f.Dim())
		c.lru = append(c.lru, i)
		c.live[i] = true
	}
	switch {
	case cfg.ZoneBuilder != nil:
		c.method = MethodCustom
	case cfg.DisableADCD:
		c.method = MethodNone
	case f.HasConstantHessian() && !cfg.ForceADCDX:
		c.method = MethodE
	default:
		c.method = MethodX
	}
	c.rMax = resolveRMax(cfg, f)
	c.radius = newRadiusController(c)
	return c
}

// Method returns the automatically selected ADCD variant.
func (c *Coordinator) Method() Method { return c.method }

// R returns the current neighborhood radius (it can grow via the doubling
// heuristic, and move either way under the adaptive controller).
func (c *Coordinator) R() float64 { return c.r }

// RMax returns the resolved cap on the neighborhood radius (see Config.RMax).
func (c *Coordinator) RMax() float64 { return c.rMax }

// PendingR returns the radius staged by the adaptive controller for the next
// full sync, or 0 when none is staged (or the controller is disabled).
func (c *Coordinator) PendingR() float64 {
	if c.radius == nil {
		return 0
	}
	return c.radius.pendingR
}

// Estimate returns the coordinator's current approximation f(x0).
func (c *Coordinator) Estimate() float64 {
	if c.zone == nil {
		return math.NaN()
	}
	return c.zone.F0
}

// Zone returns the current safe zone (nil before Init).
func (c *Coordinator) Zone() *SafeZone { return c.zone }

// Live reports whether node id is currently considered reachable.
func (c *Coordinator) Live(id int) bool { return c.live[id] }

// LiveCount returns the number of nodes currently considered reachable.
func (c *Coordinator) LiveCount() int { return c.liveCount }

// Degraded reports whether the estimate currently covers only a subset of
// the nodes: while any node is dead, the ε-guarantee holds for f over the
// average of the live nodes, not the full population.
func (c *Coordinator) Degraded() bool { return c.liveCount < c.N }

// MarkDead excludes a node from syncs, the reference-point average, and lazy
// balancing until MarkLive (or a rejoin/violation from it) revives it. The
// messaging fabric calls it when it loses a node.
func (c *Coordinator) MarkDead(id int) {
	if id < 0 || id >= c.N || !c.live[id] {
		return
	}
	c.live[id] = false
	c.liveCount--
	c.matrixSent[id] = false
	c.obs.nodeDeaths.Inc()
	c.obs.liveNodes.Set(float64(c.liveCount))
	c.obs.tracer.Record(obs.EventNodeDeath, id, float64(c.liveCount), "")
}

// MarkLive reverses MarkDead.
func (c *Coordinator) MarkLive(id int) {
	if id < 0 || id >= c.N || c.live[id] {
		return
	}
	c.live[id] = true
	c.liveCount++
	c.obs.liveNodes.Set(float64(c.liveCount))
}

// HandleDeparture marks a node dead and re-synchronizes the survivors so the
// estimate degrades to the live-node average instead of silently averaging a
// stale vector. Returns ErrNoLiveNodes when the departing node was the last
// one; the estimate then freezes until a rejoin.
func (c *Coordinator) HandleDeparture(id int) error {
	if id < 0 || id >= c.N {
		return fmt.Errorf("core: departure from unknown node %d", id)
	}
	c.MarkDead(id)
	return c.fullSync(nil)
}

// HandleRejoin re-admits a node after a connection loss: its fresh vector
// replaces the stale one and a full sync rebuilds the reference point, zone,
// and slack assignment over the new live set (the returning node's previous
// slack is void — only a full sync restores the Σᵢ sᵢ = 0 invariant).
func (c *Coordinator) HandleRejoin(id int, x []float64) error {
	if id < 0 || id >= c.N {
		return fmt.Errorf("core: rejoin from unknown node %d", id)
	}
	c.MarkLive(id)
	c.obs.rejoins.Inc()
	c.obs.tracer.Record(obs.EventRejoin, id, float64(c.liveCount), "")
	c.matrixSent[id] = false
	if x != nil {
		copy(c.lastX[id], x)
	}
	return c.fullSync(map[int]bool{id: true})
}

// Init pulls all local vectors and performs the first full sync. It must be
// called once, after the nodes hold their initial vectors.
func (c *Coordinator) Init() error {
	for i := 0; i < c.N; i++ {
		if !c.live[i] {
			continue
		}
		if x := c.comm.RequestData(i); x != nil {
			copy(c.lastX[i], x)
		}
	}
	return c.fullSync(nil)
}

// Resync forces a full synchronization: fresh data pull, new reference
// point, thresholds, and safe zones. Applications use it to re-engage
// AutoMon after falling back to another monitoring scheme (the §6
// "switching on the fly" extension).
func (c *Coordinator) Resync() error { return c.fullSync(nil) }

// HandleViolation is the coordinator's reaction to a node-reported
// violation: lazy sync for safe-zone violations (when enabled), a full sync
// otherwise. The violation's embedded vector refreshes the coordinator's
// view of that node.
//
// The statepure marker makes this transition part of the machine-checked
// purity boundary (ROADMAP item 1): its static call closure must stay free
// of I/O, clocks, spawns, global rand and package-level writes, so the
// same transition can run at any tier of a sharded coordinator tree.
//
//automon:statepure
func (c *Coordinator) HandleViolation(v *Violation) error {
	if v.NodeID < 0 || v.NodeID >= c.N {
		return fmt.Errorf("core: violation from unknown node %d", v.NodeID)
	}
	copy(c.lastX[v.NodeID], v.X)
	fresh := map[int]bool{v.NodeID: true}

	// A violation from a dead-marked node proves it is alive again (e.g. a
	// request timeout was a false suspicion). Revival always takes a full
	// sync: the node's slack assignment predates its death and only a full
	// sync restores the Σᵢ sᵢ = 0 invariant across the live set.
	if !c.live[v.NodeID] {
		c.MarkLive(v.NodeID)
		c.obs.rejoins.Inc()
		c.obs.tracer.Record(obs.EventRejoin, v.NodeID, float64(c.liveCount), "")
		c.matrixSent[v.NodeID] = false
		return c.fullSync(fresh)
	}

	switch v.Kind {
	case ViolationNeighborhood:
		c.obs.neighViol.Inc()
		c.obs.tracer.Record(obs.EventViolation, v.NodeID, 0, "neighborhood")
		// The §3.6 streak counts *consecutive* neighborhood violations; every
		// full sync from another cause (including the one below when it is
		// not neighborhood-triggered) resets it inside fullSync, so restore
		// the running streak after the sync this violation forces.
		streak := c.consecNeigh + 1
		if streak >= c.Cfg.RDoubleAfter {
			// §3.6 fallback: tuning data became unrepresentative; widen B —
			// but never past rMax: unbounded doubling under a sustained storm
			// would overflow the zone-cache quantizer and (with the interval
			// backend) widen Hessian enclosures toward Entire.
			streak = 0
			newR := c.r * 2
			if newR > c.rMax {
				newR = c.rMax
				c.obs.rSaturations.Inc()
				c.obs.tracer.Record(obs.EventRSaturated, v.NodeID, c.rMax, "")
			}
			if newR > c.r {
				c.r = newR
				c.obs.rDoublings.Inc()
				c.obs.radius.Set(c.r)
				c.obs.tracer.Record(obs.EventRDouble, v.NodeID, c.r, "")
				c.invalidateZoneScope()
			}
		}
		err := c.fullSync(fresh)
		if c.rSwapped {
			// The sync installed a re-tuned radius; violations counted
			// against the old one say nothing about the new neighborhood.
			streak = 0
		}
		c.consecNeigh = streak
		if c.radius != nil {
			c.radius.observeViolation(true, false, true)
			c.radius.maybeRetune()
		}
		return err
	case ViolationFaulty:
		c.obs.faultyViol.Inc()
		c.obs.tracer.Record(obs.EventViolation, v.NodeID, 0, "faulty")
		err := c.fullSync(fresh)
		if c.radius != nil {
			c.radius.observeViolation(false, false, true)
			c.radius.maybeRetune()
		}
		return err
	case ViolationSafeZone:
		c.obs.szViol.Inc()
		c.obs.tracer.Record(obs.EventViolation, v.NodeID, 0, "safe_zone")
		c.consecNeigh = 0
		resolved := !c.Cfg.DisableLazySync && c.lazySync(v, fresh)
		var err error
		if !resolved {
			err = c.fullSync(fresh)
		}
		if c.radius != nil {
			c.radius.observeViolation(false, true, !resolved)
			c.radius.maybeRetune()
		}
		return err
	}
	return fmt.Errorf("core: unknown violation kind %v", v.Kind)
}

// invalidateZoneScope drops this coordinator's entries from the zone cache.
// Called whenever the neighborhood radius changes: old-radius keys can never
// match again, and in a shared cache they would squeeze out other tenants'
// live entries until LRU pressure finally evicts them.
func (c *Coordinator) invalidateZoneScope() {
	if c.zoneCache == nil {
		return
	}
	if n := c.zoneCache.InvalidateScope(c.zoneScope); n > 0 {
		c.obs.zcInvalidated.Add(int64(n))
	}
}

// lazySync implements the balancing protocol: starting from the violator, it
// adds least-recently-used nodes to the balancing set until the mean of
// their slacked vectors re-enters the safe zone, then rebalances their slack
// so each sits exactly at the mean. Returns false when more than half the
// nodes were pulled without resolution; the caller then falls back to a full
// sync (which reuses the vectors pulled here via fresh).
//
//automon:statepure
func (c *Coordinator) lazySync(v *Violation, fresh map[int]bool) bool {
	c.obs.lazyAttempts.Inc()
	d := c.F.Dim()
	set := []int{v.NodeID}
	c.touchLRU(v.NodeID)

	sum := make([]float64, d)
	linalg.Add(sum, c.lastX[v.NodeID], c.slacks[v.NodeID])

	mean := make([]float64, d)
	for {
		if len(set) > c.liveCount/2 {
			return false
		}
		next := c.pickLRU(set)
		if next < 0 {
			return false
		}
		x := c.comm.RequestData(next)
		if x == nil || !c.live[next] {
			// The fabric lost this node mid-pull; abort balancing and let the
			// caller fall back to a full sync over the remaining live set.
			return false
		}
		copy(c.lastX[next], x)
		fresh[next] = true
		set = append(set, next)
		c.touchLRU(next)
		for i := 0; i < d; i++ {
			sum[i] += c.lastX[next][i] + c.slacks[next][i]
		}
		linalg.Scale(mean, 1/float64(len(set)), sum)
		if c.zone.InNeighborhood(mean) && c.zone.Contains(c.F, mean) &&
			c.zone.InAdmissibleRegion(c.F, mean) {
			break
		}
	}

	// Rebalance: v_j ← mean for every j in the set, i.e. s_j = mean − x_j.
	// The per-set slack total is preserved, so Σᵢ sᵢ = 0 still holds and the
	// monitored average remains the true average.
	for _, j := range set {
		linalg.Sub(c.slacks[j], mean, c.lastX[j])
		c.comm.SendSlack(j, &Slack{NodeID: j, Slack: linalg.Clone(c.slacks[j])})
	}
	c.obs.lazyResolved.Inc()
	c.obs.lazySet.Observe(float64(len(set)))
	c.obs.tracer.Record(obs.EventLazySync, v.NodeID, float64(len(set)), "")
	return true
}

// pickLRU returns the least-recently-used live node not already in set, or
// -1. Dead nodes are skipped: pulling them would stall the resolution on a
// request that can never be answered.
func (c *Coordinator) pickLRU(set []int) int {
	inSet := func(id int) bool {
		for _, s := range set {
			if s == id {
				return true
			}
		}
		return false
	}
	for _, id := range c.lru {
		if c.live[id] && !inSet(id) {
			return id
		}
	}
	return -1
}

// touchLRU marks a node as most recently used.
func (c *Coordinator) touchLRU(id int) {
	for i, v := range c.lru {
		if v == id {
			copy(c.lru[i:], c.lru[i+1:])
			c.lru[len(c.lru)-1] = id
			return
		}
	}
}

// Thresholds derives (L, U) from f(x0) under the configured error type.
// Under Multiplicative error the interval width is ε·|f(x0)|, which
// collapses to zero as f(x0) → 0 and turns every subsequent update into a
// violation; a configurable absolute floor (Config.ThresholdFloor) keeps the
// interval usable through zero crossings.
func (c *Coordinator) Thresholds(f0 float64) (l, u float64) {
	if c.Cfg.ErrorType == Multiplicative {
		a := (1 - c.Cfg.Epsilon) * f0
		b := (1 + c.Cfg.Epsilon) * f0
		l, u = math.Min(a, b), math.Max(a, b)
		floor := c.Cfg.ThresholdFloor
		if floor == 0 {
			floor = DefaultThresholdFloor
		}
		if floor > 0 && u-l < 2*floor {
			l, u = f0-floor, f0+floor
		}
		return l, u
	}
	return f0 - c.Cfg.Epsilon, f0 + c.Cfg.Epsilon
}

// fullSync is Algorithm 1's CoordinatorFullSync: pull all live vectors
// (minus the ones already fresh in this resolution), recompute x0 over the
// live set, thresholds, the DC decomposition and safe zone, reset slack, and
// sync every live node. Dead nodes keep their last vector but contribute
// nothing: the estimate degrades to the live-node average.
//
// Every full sync also ends any running streak of consecutive neighborhood
// violations: the nodes receive fresh zones around a fresh reference point,
// so earlier neighborhood violations say nothing about the new neighborhood.
// HandleViolation's neighborhood branch restores the streak afterwards —
// only there is the violation itself part of the streak (§3.6).
//
//automon:statepure
func (c *Coordinator) fullSync(fresh map[int]bool) error {
	c.obs.fullSyncs.Inc()
	c.consecNeigh = 0
	c.rSwapped = false
	if c.radius != nil && c.radius.applyPending() {
		c.rSwapped = true
	}
	d := c.F.Dim()
	for i := 0; i < c.N; i++ {
		if fresh[i] || !c.live[i] {
			continue
		}
		// A nil response means the fabric just lost this node (and marked it
		// dead); keep the stale vector and fall through — the live set below
		// reflects the death.
		if x := c.comm.RequestData(i); x != nil {
			copy(c.lastX[i], x)
		}
	}
	if c.liveCount == 0 {
		return ErrNoLiveNodes
	}
	if c.x0 == nil {
		c.x0 = make([]float64, d)
	}
	for j := range c.x0 {
		c.x0[j] = 0
	}
	for i := 0; i < c.N; i++ {
		if !c.live[i] {
			continue
		}
		linalg.Add(c.x0, c.x0, c.lastX[i])
	}
	linalg.Scale(c.x0, 1/float64(c.liveCount), c.x0)
	c.clampToDomain(c.x0)

	f0 := c.F.Value(c.x0)
	l, u := c.Thresholds(f0)

	var zone *SafeZone
	var err error
	switch c.method {
	case MethodCustom:
		zone = c.Cfg.ZoneBuilder(c.F, c.x0, l, u)
	case MethodNone:
		zone = BuildZoneNone(c.F, c.x0, l, u)
	case MethodE:
		if c.eDec == nil {
			c.eDec, err = DecomposeE(c.F, c.x0)
			if err != nil {
				return err
			}
		}
		zone = BuildZoneE(c.F, c.eDec, c.x0, l, u)
	case MethodX:
		bLo, bHi := NeighborhoodBox(c.F, c.x0, c.r)
		var dec *XDecomposition
		var key string
		var keyOK bool
		if c.zoneCache != nil {
			// A key that cannot be quantized soundly (non-finite or huge
			// coordinates) would alias unrelated entries; bypass the cache for
			// this sync instead.
			key, keyOK = quantizeKey(c.zoneScope, c.Cfg.Decomp.Backend, c.x0, c.r, c.zoneQuantum)
			if !keyOK {
				c.obs.zcBypasses.Inc()
			} else if cached, ok := c.zoneCache.get(key); ok {
				c.obs.zcHits.Inc()
				dec = cached
			} else {
				c.obs.zcMisses.Inc()
			}
		}
		if dec == nil {
			solvesBefore := c.Cfg.Decomp.EigsolveCounter.Load()
			dec, err = DecomposeX(c.F, c.x0, bLo, bHi, c.Cfg.Decomp)
			if err != nil {
				return err
			}
			c.obs.eigboundBuilds(dec.Backend).Inc()
			if dec.Refined {
				c.obs.ebRefines.Inc()
			}
			if c.radius != nil {
				c.radius.observeBuild(float64(c.Cfg.Decomp.EigsolveCounter.Load() - solvesBefore))
			}
			if c.zoneCache != nil && keyOK {
				c.zoneCache.put(key, dec)
			}
		}
		zone = BuildZoneXFrom(c.F, c.x0, l, u, bLo, bHi, dec)
	}
	c.zone = zone
	c.obs.estimate.Set(zone.F0)
	c.obs.tracer.Record(obs.EventFullSync, -1, float64(c.liveCount), zone.Method.String())

	for i := 0; i < c.N; i++ {
		if !c.live[i] {
			// A dead node holds no slack: Σᵢ sᵢ = 0 must hold over the live
			// set alone, and the node's own copy is rebuilt on rejoin.
			for j := range c.slacks[i] {
				c.slacks[i][j] = 0
			}
			continue
		}
		if c.Cfg.DisableSlack {
			for j := range c.slacks[i] {
				c.slacks[i][j] = 0
			}
		} else {
			linalg.Sub(c.slacks[i], c.x0, c.lastX[i])
		}
		m := &Sync{
			NodeID: i,
			Method: zone.Method,
			Kind:   zone.Kind,
			X0:     linalg.Clone(c.x0),
			F0:     zone.F0,
			GradF0: linalg.Clone(zone.GradF0),
			L:      l,
			U:      u,
			Lam:    zone.Lam,
			R:      c.r,
			Slack:  linalg.Clone(c.slacks[i]),
		}
		if c.method == MethodE && !c.matrixSent[i] {
			m.WithMatrix = true
			if zone.Kind == ConvexDiff {
				m.Matrix = zone.HMinus
			} else {
				m.Matrix = zone.HPlus
			}
			c.matrixSent[i] = true
		}
		if c.method == MethodCustom {
			m.Zone = zone
		}
		c.comm.SendSync(i, m)
	}
	if c.radius != nil {
		c.radius.recordSnapshot()
	}
	return nil
}

// clampToDomain keeps the reference point inside D; averaging cannot leave
// a convex domain box, but numerical round-off at the boundary can.
func (c *Coordinator) clampToDomain(x []float64) {
	if c.F.DomainLo != nil {
		for i := range x {
			if x[i] < c.F.DomainLo[i] {
				x[i] = c.F.DomainLo[i]
			}
		}
	}
	if c.F.DomainHi != nil {
		for i := range x {
			if x[i] > c.F.DomainHi[i] {
				x[i] = c.F.DomainHi[i]
			}
		}
	}
}
