package core

import (
	"errors"
	"strings"

	"automon/internal/linalg"
	"automon/internal/obs"
)

// DefaultThresholdFloor is the absolute floor applied to the half-width of a
// Multiplicative threshold interval when Config.ThresholdFloor is zero. It
// guards the f(x0) ≈ 0 degeneracy: purely multiplicative bounds collapse to
// a zero-width interval there, and every subsequent update becomes a
// violation (a sync storm). The default is small enough not to perturb any
// realistically scaled threshold.
const DefaultThresholdFloor = 1e-9

// ErrNoLiveNodes is returned by sync operations when every node is marked
// dead. It is a degraded-but-recoverable state, not a fatal one: the
// coordinator keeps its last estimate and repairs itself on the next rejoin.
var ErrNoLiveNodes = errors.New("core: no live nodes")

// ErrorType selects the approximation semantics used to set thresholds from
// f(x0) and ε (§2).
type ErrorType uint8

const (
	// Additive: L = f(x0) − ε, U = f(x0) + ε.
	Additive ErrorType = iota
	// Multiplicative: L, U = (1 ∓ ε)·f(x0), ordered correctly for negative
	// values of f(x0).
	Multiplicative
)

// Config configures a Coordinator.
type Config struct {
	// Epsilon is the approximation error bound ε.
	Epsilon float64
	// ErrorType selects additive (default) or multiplicative approximation.
	ErrorType ErrorType
	// R is the ADCD-X neighborhood radius. Use Tune (tuning.go) to pick it
	// automatically; ignored for ADCD-E and the no-ADCD ablation.
	R float64
	// DisableADCD switches to the §4.6 ablation: the admissible region is
	// used directly as the (generally non-convex) local constraint.
	DisableADCD bool
	// ForceADCDX monitors a constant-Hessian function with ADCD-X anyway;
	// used by tests and the ablation benches.
	ForceADCDX bool
	// DisableSlack zeroes all slack vectors. Disabling slack also disables
	// lazy sync, matching the paper's ablation.
	DisableSlack bool
	// DisableLazySync resolves every safe-zone violation with a full sync.
	DisableLazySync bool
	// RDoubleAfter is the number of consecutive neighborhood violations
	// (with no intervening safe-zone violations) after which r is doubled.
	// 0 means the paper default of 5n.
	RDoubleAfter int
	// RMax caps the neighborhood radius: §3.6 doublings (and adaptive
	// re-tunes) clamp to it, so a sustained violation storm can no longer
	// grow r without bound — unbounded doubling eventually overflows the
	// zone-cache quantizer and, under the interval eigen-engine, widens
	// Hessian enclosures toward Entire. 0 derives a default (the domain
	// diameter when finite, else 1024× the starting radius); negative
	// disables the cap. Clamped doublings are counted in
	// automon_coordinator_r_saturations_total.
	RMax float64
	// AdaptiveR enables the drift-aware radius controller: EWMAs of the
	// violation mix, full-sync rate and eigen-engine build cost trigger
	// background Algorithm-2 re-brackets over a window of recent full-sync
	// snapshots, and the re-tuned radius — which can *shrink* as well as
	// grow — is swapped in at the next full sync. Only meaningful for
	// ADCD-X; on a drift-free stream the controller never triggers and the
	// run is bit-identical to a static one. See radius.go.
	AdaptiveR bool
	// AdaptiveWindow is the number of full-sync snapshots retained as the
	// controller's re-tuning window. 0 means DefaultAdaptiveWindow.
	AdaptiveWindow int
	// AdaptiveAlpha is the controller's per-violation EWMA decay in (0, 1].
	// 0 means DefaultAdaptiveAlpha.
	AdaptiveAlpha float64
	// AdaptiveCooldown is the minimum number of handled violations between
	// re-tune attempts (event time, not wall time). 0 means 2·RDoubleAfter.
	AdaptiveCooldown int
	// Decomp configures the ADCD-X eigenvalue search, including its worker
	// count (Decomp.Workers) and eigensolve memoization.
	Decomp DecompOptions
	// TuneWorkers bounds the goroutines Tune uses to fan bracket and grid
	// replays across radii. 0 or 1 runs sequentially (the default); higher
	// values replay speculatively but select identical radii, so TuneResult
	// is unchanged.
	TuneWorkers int
	// ZoneCacheSize bounds the coordinator's LRU cache of ADCD-X
	// decompositions, keyed by the quantized (x0, r) of each full sync
	// (see ZoneCacheQuantum). A full sync whose key matches a cached entry
	// reuses the Lemma-1 curvature bounds and skips the eigenvalue search;
	// f0, ∇f0 and the thresholds are always recomputed exactly for the true
	// x0, and the §3.7 sanity check guards the reused bounds exactly as it
	// guards the optimizer's local optima. 0 disables the cache (default).
	ZoneCacheSize int
	// ZoneCacheQuantum is the grid pitch used to quantize (x0, r) for zone
	// cache lookups. 0 means DefaultZoneCacheQuantum; larger values hit more
	// often but reuse bounds computed for a reference point further away.
	ZoneCacheQuantum float64
	// SharedZoneCache, when set, replaces the private per-coordinator zone
	// cache with a process-wide one: a multi-tenant coordinator shares a
	// single LRU across all of its monitoring groups so the memory bound
	// (the cache capacity) is global rather than per group. ZoneCacheSize is
	// ignored when a shared cache is supplied; set ZoneCacheScope to keep the
	// groups' keys disjoint.
	SharedZoneCache *ZoneCache
	// ZoneCacheScope is prefixed to every zone-cache key this coordinator
	// writes. Coordinators sharing one SharedZoneCache must use distinct
	// scopes — quantized (x0, r) coordinates from different functions would
	// otherwise alias.
	ZoneCacheScope string
	// MetricsLabels, when non-empty, is a rendered label set (e.g.
	// `group="2"`) merged into every coordinator metric name registered in
	// Metrics. A multi-tenant process uses it to keep per-group series
	// apart in one shared registry; the zero value preserves the unlabeled
	// single-tenant names.
	MetricsLabels string
	// Metrics, when set, registers the coordinator's protocol counters in
	// this registry so they are scraped by the obs HTTP endpoints. When nil
	// the coordinator keeps private (unregistered) counters; Stats() reads
	// the same instruments either way, so the two views cannot diverge.
	Metrics *obs.Registry
	// Tracer, when set, records structured protocol events (violations,
	// syncs, r-doublings, deaths, rejoins). Nil disables tracing at the cost
	// of a single nil check per event.
	Tracer *obs.Tracer
	// ZoneBuilder, when set, replaces ADCD entirely with a hand-crafted safe
	// zone (used to plug GM baselines such as Convex Bound into the same
	// protocol). Such zones are delivered to nodes in-memory.
	ZoneBuilder func(f *Function, x0 []float64, l, u float64) *SafeZone
	// ThresholdFloor is the minimum half-width of the (L, U) interval under
	// Multiplicative error: when ε·|f(x0)| falls below it, thresholds become
	// f(x0) ∓ ThresholdFloor instead of collapsing to a point. 0 means
	// DefaultThresholdFloor; negative disables the guard entirely.
	ThresholdFloor float64
}

// NodeComm abstracts the coordinator→node side of the messaging fabric. The
// simulation counts calls as messages; the transport layer sends real bytes.
// RequestData accounts for a DataRequest and its DataResponse. A fabric with
// failure detection may return nil from RequestData to signal that the node
// is unreachable (after calling MarkDead on the coordinator); the coordinator
// then keeps its last known vector for that node and excludes it from the
// estimate until the node rejoins.
type NodeComm interface {
	RequestData(nodeID int) []float64
	SendSync(nodeID int, m *Sync)
	SendSlack(nodeID int, m *Slack)
}

// CoordStats is a point-in-time snapshot of the coordinator's protocol
// counters, as returned by Machine.Stats. The counters themselves live
// in the obs registry (see coordObs); this struct is purely a view, so the
// values tests assert on and the values a /metrics scrape reports come from
// the same instruments.
type CoordStats struct {
	FullSyncs              int
	LazyAttempts           int
	LazyResolved           int
	NeighborhoodViolations int
	SafeZoneViolations     int
	FaultyViolations       int
	RDoublings             int
	RSaturations           int
	RShrinks               int
	RGrows                 int
	AdaptiveRetunes        int
	NodeDeaths             int
	Rejoins                int
	Eigensolves            int
	ZoneCacheHits          int
	ZoneCacheMisses        int
	ZoneCacheBypasses      int
	ZoneCacheInvalidations int

	// Eigen-engine provenance: fresh ADCD-X decompositions by backend, the
	// hybrid escalations that ran the L-BFGS search, and the eigensolves
	// performed inside the search (BackendInterval keeps OptEvals at zero —
	// the counter-verified "no optimizer work" claim).
	EigBoundBuildsLBFGS    int
	EigBoundBuildsInterval int
	EigBoundBuildsHybrid   int
	HybridRefines          int
	OptEvals               int
}

// coordObs bundles the coordinator's observability instruments. Counters are
// always real (they back CoordStats); the tracer may be nil (no-op).
type coordObs struct {
	fullSyncs    *obs.Counter
	lazyAttempts *obs.Counter
	lazyResolved *obs.Counter
	neighViol    *obs.Counter
	szViol       *obs.Counter
	faultyViol   *obs.Counter
	rDoublings   *obs.Counter
	rSaturations *obs.Counter
	rShrinks     *obs.Counter
	rGrows       *obs.Counter

	adaptiveRetunes *obs.Counter
	nodeDeaths      *obs.Counter
	rejoins         *obs.Counter
	eigsolves       *obs.Counter
	zcHits          *obs.Counter
	zcMisses        *obs.Counter
	zcBypasses      *obs.Counter
	zcInvalidated   *obs.Counter
	ebLBFGS         *obs.Counter
	ebInterval      *obs.Counter
	ebHybrid        *obs.Counter
	ebRefines       *obs.Counter
	ebOptEvals      *obs.Counter

	liveNodes *obs.Gauge
	radius    *obs.Gauge
	estimate  *obs.Gauge
	ewmaNeigh *obs.Gauge
	ewmaSZ    *obs.Gauge
	ewmaSync  *obs.Gauge
	ewmaCost  *obs.Gauge
	lazySet   *obs.Histogram

	tracer *obs.Tracer
}

// labeledName merges a rendered extra label set into a metric name that may
// or may not already carry labels:
//
//	labeledName(`automon_x_total`, `group="1"`)              → automon_x_total{group="1"}
//	labeledName(`automon_x_total{kind="a"}`, `group="1"`)    → automon_x_total{kind="a",group="1"}
//
// An empty extra returns the name unchanged, preserving the historical
// single-tenant series names.
func labeledName(name, extra string) string {
	if extra == "" {
		return name
	}
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + extra + "}"
	}
	return name + "{" + extra + "}"
}

// newCoordObs creates the instruments, registered in reg when non-nil. With
// a nil registry the counters are standalone: same cost, just unscraped.
// A non-empty labels set (Config.MetricsLabels) is merged into every series
// name so multiple coordinators can share one registry.
func newCoordObs(reg *obs.Registry, tracer *obs.Tracer, labels string) coordObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	name := func(n string) string { return labeledName(n, labels) }
	const violHelp = "protocol violations handled by the coordinator, by kind"
	const eigboundHelp = "fresh ADCD-X decompositions built, by eigen-engine backend"
	return coordObs{
		fullSyncs:    reg.Counter(name("automon_coordinator_full_syncs_total"), "full synchronizations performed"),
		lazyAttempts: reg.Counter(name("automon_coordinator_lazy_sync_attempts_total"), "lazy-sync balancing attempts"),
		lazyResolved: reg.Counter(name("automon_coordinator_lazy_syncs_resolved_total"), "safe-zone violations resolved without a full sync"),
		neighViol:    reg.Counter(name(`automon_coordinator_violations_total{kind="neighborhood"}`), violHelp),
		szViol:       reg.Counter(name(`automon_coordinator_violations_total{kind="safe_zone"}`), violHelp),
		faultyViol:   reg.Counter(name(`automon_coordinator_violations_total{kind="faulty"}`), violHelp),
		rDoublings:   reg.Counter(name("automon_coordinator_r_doublings_total"), "§3.6 neighborhood-size doublings"),
		rSaturations: reg.Counter(name("automon_coordinator_r_saturations_total"), "§3.6 doublings clamped by the RMax radius cap"),
		rShrinks:     reg.Counter(name(`automon_coordinator_adaptive_r_swaps_total{dir="shrink"}`), "adaptive radius swaps applied at a full sync, by direction"),
		rGrows:       reg.Counter(name(`automon_coordinator_adaptive_r_swaps_total{dir="grow"}`), "adaptive radius swaps applied at a full sync, by direction"),

		adaptiveRetunes: reg.Counter(name("automon_coordinator_adaptive_retunes_total"), "background Algorithm-2 re-brackets that staged a new radius"),
		nodeDeaths:      reg.Counter(name("automon_coordinator_node_deaths_total"), "nodes marked dead by the fabric"),
		rejoins:         reg.Counter(name("automon_coordinator_rejoins_total"), "nodes re-admitted after a death"),
		eigsolves:       reg.Counter(name("automon_coordinator_eigensolves_total"), "eigensolver evaluations performed by the ADCD-X search"),
		zcHits:          reg.Counter(name("automon_coordinator_zone_cache_hits_total"), "full syncs that reused a cached ADCD-X decomposition"),
		zcMisses:        reg.Counter(name("automon_coordinator_zone_cache_misses_total"), "full syncs that ran the eigenvalue search with the zone cache enabled"),
		zcBypasses:      reg.Counter(name("automon_coordinator_zone_cache_bypasses_total"), "full syncs that skipped the zone cache because (x0, r) could not be quantized soundly"),
		zcInvalidated:   reg.Counter(name("automon_coordinator_zone_cache_invalidations_total"), "cached decompositions dropped because the neighborhood radius changed"),
		ebLBFGS:         reg.Counter(name(`automon_coordinator_eigbound_builds_total{backend="lbfgs"}`), eigboundHelp),
		ebInterval:      reg.Counter(name(`automon_coordinator_eigbound_builds_total{backend="interval"}`), eigboundHelp),
		ebHybrid:        reg.Counter(name(`automon_coordinator_eigbound_builds_total{backend="hybrid"}`), eigboundHelp),
		ebRefines:       reg.Counter(name("automon_coordinator_eigbound_hybrid_refines_total"), "hybrid eigen-engine escalations that ran the L-BFGS search on top of the interval certificate"),
		ebOptEvals:      reg.Counter(name("automon_coordinator_eigbound_opt_evals_total"), "eigensolver evaluations performed inside the L-BFGS search (zero under the interval backend)"),
		liveNodes:       reg.Gauge(name("automon_coordinator_live_nodes"), "nodes currently considered reachable"),
		radius:          reg.Gauge(name("automon_coordinator_neighborhood_radius"), "current ADCD-X neighborhood size r"),
		estimate:        reg.Gauge(name("automon_coordinator_estimate"), "current approximation of f over the live-node average"),
		ewmaNeigh:       reg.Gauge(name(`automon_coordinator_violation_mix_ewma{kind="neighborhood"}`), "EWMA share of recent violations, by kind (adaptive radius controller)"),
		ewmaSZ:          reg.Gauge(name(`automon_coordinator_violation_mix_ewma{kind="safe_zone"}`), "EWMA share of recent violations, by kind (adaptive radius controller)"),
		ewmaSync:        reg.Gauge(name("automon_coordinator_full_sync_rate_ewma"), "EWMA share of recent violations resolved by a full sync (adaptive radius controller)"),
		ewmaCost:        reg.Gauge(name("automon_coordinator_eigbound_cost_ewma"), "EWMA eigensolver evaluations per fresh ADCD-X zone build (adaptive radius controller)"),
		lazySet:         reg.Histogram(name("automon_coordinator_balancing_set_size"), "nodes pulled into each resolved lazy sync", []float64{1, 2, 4, 8, 16, 32, 64}),
		tracer:          tracer,
	}
}

// eigboundBuilds returns the fresh-decomposition counter for a backend.
func (o *coordObs) eigboundBuilds(b EigBackend) *obs.Counter {
	switch b {
	case BackendInterval:
		return o.ebInterval
	case BackendHybrid:
		return o.ebHybrid
	}
	return o.ebLBFGS
}

// Coordinator is the flat (single-tier) AutoMon coordinator: the protocol
// state machine (Machine) routed over a direct NodeComm fabric, with the
// data plane — per-node vectors, slack assignments, ADCD-E matrix delivery
// bookkeeping — held in a flatOwner. A sharded deployment replaces only the
// ownership layer (internal/shard); the machine, and therefore the protocol,
// is byte-for-byte the same code.
type Coordinator struct {
	*Machine
	own *flatOwner
}

// NewCoordinator creates a coordinator for n nodes over function f. The
// monitoring method is chosen automatically: ADCD-E when the computational
// graph proves a constant Hessian, otherwise ADCD-X (or the no-ADCD ablation
// when configured).
func NewCoordinator(f *Function, n int, cfg Config, comm NodeComm) *Coordinator {
	o := &flatOwner{
		comm:       comm,
		lastX:      make([][]float64, n),
		slacks:     make([][]float64, n),
		matrixSent: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		o.lastX[i] = make([]float64, f.Dim())
		o.slacks[i] = make([]float64, f.Dim())
	}
	m := NewMachine(f, n, cfg, o)
	o.m = m
	return &Coordinator{Machine: m, own: o}
}

// flatOwner is the single-tier Ownership: all node vectors and slack live in
// one process, and every fabric interaction goes straight through NodeComm.
type flatOwner struct {
	m    *Machine
	comm NodeComm

	lastX  [][]float64
	slacks [][]float64
	// matrixSent tracks per node whether the (constant) ADCD-E matrix has
	// been delivered. It is cleared when a node dies or rejoins: the node may
	// have restarted as a fresh process that never saw the matrix.
	matrixSent []bool
}

// Store implements Ownership.
func (o *flatOwner) Store(id int, x []float64) { copy(o.lastX[id], x) }

// Refresh implements Ownership.
func (o *flatOwner) Refresh(id int) bool {
	x := o.comm.RequestData(id)
	if x == nil {
		return false
	}
	copy(o.lastX[id], x)
	return true
}

// AddSlacked implements Ownership.
func (o *flatOwner) AddSlacked(sum []float64, id int) {
	for j := range sum {
		sum[j] += o.lastX[id][j] + o.slacks[id][j]
	}
}

// Rebalance implements Ownership.
func (o *flatOwner) Rebalance(set []int, mean []float64) {
	for _, j := range set {
		linalg.Sub(o.slacks[j], mean, o.lastX[j])
		o.comm.SendSlack(j, &Slack{NodeID: j, Slack: linalg.Clone(o.slacks[j])})
	}
}

// Collect implements Ownership: the full-sync gather over the flat node set.
// A nil RequestData response means the fabric just lost that node (and
// marked it dead); the stale vector is kept and the live set below reflects
// the death.
func (o *flatOwner) Collect(fresh map[int]bool, accs []linalg.Acc) int {
	for i := 0; i < o.m.N; i++ {
		if fresh[i] || !o.m.Live(i) {
			continue
		}
		if x := o.comm.RequestData(i); x != nil {
			copy(o.lastX[i], x)
		}
	}
	weight := 0
	for i := 0; i < o.m.N; i++ {
		if !o.m.Live(i) {
			continue
		}
		linalg.AddVec(accs, o.lastX[i])
		weight++
	}
	return weight
}

// Distribute implements Ownership: slack assignment and zone delivery for
// one full sync.
func (o *flatOwner) Distribute(tmpl *Sync, zone *SafeZone) {
	for i := 0; i < o.m.N; i++ {
		if !o.m.Live(i) {
			// A dead node holds no slack: Σᵢ sᵢ = 0 must hold over the live
			// set alone, and the node's own copy is rebuilt on rejoin.
			for j := range o.slacks[i] {
				o.slacks[i][j] = 0
			}
			continue
		}
		if o.m.Cfg.DisableSlack {
			for j := range o.slacks[i] {
				o.slacks[i][j] = 0
			}
		} else {
			linalg.Sub(o.slacks[i], tmpl.X0, o.lastX[i])
		}
		msg := &Sync{
			NodeID: i,
			Method: tmpl.Method,
			Kind:   tmpl.Kind,
			X0:     linalg.Clone(tmpl.X0),
			F0:     tmpl.F0,
			GradF0: linalg.Clone(tmpl.GradF0),
			L:      tmpl.L,
			U:      tmpl.U,
			Lam:    tmpl.Lam,
			R:      tmpl.R,
			Slack:  linalg.Clone(o.slacks[i]),
		}
		if o.m.Method() == MethodE && !o.matrixSent[i] {
			msg.WithMatrix = true
			if zone.Kind == ConvexDiff {
				msg.Matrix = zone.HMinus
			} else {
				msg.Matrix = zone.HPlus
			}
			o.matrixSent[i] = true
		}
		if o.m.Method() == MethodCustom {
			msg.Zone = zone
		}
		o.comm.SendSync(i, msg)
	}
}

// Forget implements Ownership.
func (o *flatOwner) Forget(id int) { o.matrixSent[id] = false }

// Snapshot implements Ownership.
func (o *flatOwner) Snapshot() [][]float64 {
	round := make([][]float64, len(o.lastX))
	for i := range o.lastX {
		round[i] = append([]float64(nil), o.lastX[i]...)
	}
	return round
}
