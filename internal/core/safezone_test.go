package core

import (
	"math"
	"math/rand"
	"testing"

	"automon/internal/autodiff"
	"automon/internal/linalg"
)

// sineFunc builds f(x) = sin(x) on the domain [0, π].
func sineFunc() *Function {
	f := NewFunction("sin", 1, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		return b.Sin(x[0])
	})
	return f.WithDomain([]float64{0}, []float64{math.Pi})
}

// quadraticFunc builds f(x) = xᵀQx for a fixed symmetric Q.
func quadraticFunc(q *linalg.Mat) *Function {
	d := q.Rows
	return NewFunction("quadratic", d, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		var terms []autodiff.Ref
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if q.At(i, j) != 0 {
					terms = append(terms, b.Mul(b.Const(q.At(i, j)), b.Mul(x[i], x[j])))
				}
			}
		}
		return b.Sum(terms...)
	})
}

// zoneInterval scans [0, π] for the 1-D safe-zone interval of z.
func zoneInterval(t *testing.T, f *Function, z *SafeZone) (lo, hi float64) {
	t.Helper()
	const steps = 10000
	lo, hi = math.NaN(), math.NaN()
	for i := 0; i <= steps; i++ {
		x := math.Pi * float64(i) / steps
		if z.Contains(f, []float64{x}) {
			if math.IsNaN(lo) {
				lo = x
			}
			hi = x
		}
	}
	return lo, hi
}

// TestFig1SineSafeZones reproduces Figure 1 of the paper: monitoring sin(x)
// at x0 = π/2 with L = 0.8 and U = 1.2 and global curvature bounds
// (λ⁻min = −1, λ⁺max = 1 over ℝ). The admissible region is [0.927, 2.214];
// the convex-difference safe zone is ≈ [0.938, 2.203]; the
// concave-difference safe zone is ≈ [1.121, 2.203] — a strict subset.
func TestFig1SineSafeZones(t *testing.T) {
	f := sineFunc()
	x0 := []float64{math.Pi / 2}
	grad := make([]float64, 1)
	f0 := f.Grad(x0, grad)
	l, u := 0.8, 1.2

	base := SafeZone{
		Method: MethodX,
		X0:     linalg.Clone(x0),
		F0:     f0,
		GradF0: linalg.Clone(grad),
		L:      l,
		U:      u,
	}
	convex := base
	convex.Kind = ConvexDiff
	convex.Lam = 1 // |λ⁻min| of −sin over ℝ
	concave := base
	concave.Kind = ConcaveDiff
	concave.Lam = 1 // λ⁺max of −sin over ℝ

	cLo, cHi := zoneInterval(t, f, &convex)
	kLo, kHi := zoneInterval(t, f, &concave)

	// Expected endpoints: ȟ-constraint gives |x−x0| ≤ √0.4 for the convex
	// difference; ĝ(x) = sin(x) − ½(x−x0)² ≥ 0.8 gives x ≥ 1.121 for the
	// concave one.
	if math.Abs(cLo-(math.Pi/2-math.Sqrt(0.4))) > 1e-3 {
		t.Errorf("convex zone lower end = %.4f, want %.4f", cLo, math.Pi/2-math.Sqrt(0.4))
	}
	if math.Abs(cHi-(math.Pi/2+math.Sqrt(0.4))) > 1e-3 {
		t.Errorf("convex zone upper end = %.4f, want %.4f", cHi, math.Pi/2+math.Sqrt(0.4))
	}
	if math.Abs(kLo-1.121) > 5e-3 {
		t.Errorf("concave zone lower end = %.4f, want ≈1.121", kLo)
	}
	if kHi > cHi+1e-9 {
		t.Errorf("concave zone upper end %.4f exceeds convex %.4f", kHi, cHi)
	}

	// Both safe zones must sit inside the admissible region [0.927, 2.214].
	admLo, admHi := math.Asin(0.8), math.Pi-math.Asin(0.8)
	for _, z := range []struct {
		name   string
		lo, hi float64
	}{{"convex", cLo, cHi}, {"concave", kLo, kHi}} {
		if z.lo < admLo-1e-3 || z.hi > admHi+1e-3 {
			t.Errorf("%s safe zone [%.4f, %.4f] escapes admissible [%.4f, %.4f]",
				z.name, z.lo, z.hi, admLo, admHi)
		}
	}

	// The paper's observation: near a concave region of f, the convex
	// difference yields the wider safe zone.
	if !(cHi-cLo > kHi-kLo) {
		t.Errorf("convex zone (%.4f wide) should beat concave (%.4f wide)", cHi-cLo, kHi-kLo)
	}
}

func TestChooseKind(t *testing.T) {
	// sin at x0=π/2: H(x0) = −1, λ⁻min = 1 (abs), λ⁺max = 1.
	// left = (−1+1)+1 = 1; right = |−1 + (−1−1)|  = 3 → convex.
	if k := chooseKindX(-1, -1, 1, 1); k != ConvexDiff {
		t.Errorf("sin at π/2: kind = %v, want convex", k)
	}
	// Mirror situation (convex region): H(x0) = +1 ⇒ concave preferred.
	if k := chooseKindX(1, 1, 1, 1); k != ConcaveDiff {
		t.Errorf("mirror: kind = %v, want concave", k)
	}
	if k := chooseKindE(-0.5, 2); k != ConvexDiff {
		t.Errorf("chooseKindE(-0.5, 2) = %v, want convex", k)
	}
	if k := chooseKindE(-3, 1); k != ConcaveDiff {
		t.Errorf("chooseKindE(-3, 1) = %v, want concave", k)
	}
}

func TestDecomposeEExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		d := 2 + rng.Intn(4)
		q := linalg.NewMat(d, d)
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				v := rng.NormFloat64()
				q.Set(i, j, v)
				q.Set(j, i, v)
			}
		}
		f := quadraticFunc(q)
		if !f.HasConstantHessian() {
			t.Fatal("quadratic must report constant Hessian")
		}
		x0 := make([]float64, d)
		dec, err := DecomposeE(f, x0)
		if err != nil {
			t.Fatal(err)
		}
		// H⁻ + H⁺ must equal the true Hessian 2Q (f = xᵀQx with symmetric Q).
		h := linalg.NewMat(d, d)
		f.Hessian(x0, h)
		sum := linalg.NewMat(d, d)
		for i := range sum.Data {
			sum.Data[i] = dec.HMinus.Data[i] + dec.HPlus.Data[i]
		}
		if !linalg.Equalish(sum, h, 1e-8) {
			t.Fatal("ADCD-E split does not reconstruct the Hessian")
		}
	}
}

// TestSafeZoneSoundness is the central correctness property: for a true DC
// decomposition, every point in the safe zone lies in the admissible region,
// and the zone is convex — so means of in-zone points are also admissible.
func TestSafeZoneSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := linalg.NewMat(3, 3)
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			v := rng.NormFloat64()
			q.Set(i, j, v)
			q.Set(j, i, v)
		}
	}
	f := quadraticFunc(q)
	x0 := []float64{0.3, -0.2, 0.1}
	dec, err := DecomposeE(f, x0)
	if err != nil {
		t.Fatal(err)
	}
	f0 := f.Value(x0)
	zone := BuildZoneE(f, dec, x0, f0-0.5, f0+0.5)

	var inZone [][]float64
	for trial := 0; trial < 5000; trial++ {
		v := make([]float64, 3)
		for i := range v {
			v[i] = x0[i] + rng.NormFloat64()*0.6
		}
		if zone.Contains(f, v) {
			if !zone.InAdmissibleRegion(f, v) {
				t.Fatalf("safe zone point %v outside admissible region (f=%v, [%v, %v])",
					v, f.Value(v), zone.L, zone.U)
			}
			inZone = append(inZone, v)
		}
	}
	if len(inZone) < 50 {
		t.Fatalf("too few in-zone samples (%d) for the convexity check", len(inZone))
	}
	// Convexity: random pairwise midpoints and random k-means must stay in
	// the zone (this is exactly the property the GM protocol relies on).
	mean := make([]float64, 3)
	for trial := 0; trial < 500; trial++ {
		k := 2 + rng.Intn(4)
		pts := make([][]float64, k)
		for i := range pts {
			pts[i] = inZone[rng.Intn(len(inZone))]
		}
		linalg.Mean(mean, pts...)
		if !zone.Contains(f, mean) {
			t.Fatalf("mean of in-zone points left the zone: %v", mean)
		}
	}
}

// TestSafeZoneSoundnessADCDX repeats the soundness check for ADCD-X on a
// non-constant-Hessian function (Rosenbrock) within a neighborhood.
func TestSafeZoneSoundnessADCDX(t *testing.T) {
	f := rosenbrockFunc()
	x0 := []float64{0.1, 0.05}
	bLo, bHi := NeighborhoodBox(f, x0, 0.5)
	f0 := f.Value(x0)
	zone, err := BuildZoneX(f, x0, f0-1, f0+1, bLo, bHi, DecompOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	var inZone [][]float64
	for trial := 0; trial < 5000; trial++ {
		v := []float64{
			bLo[0] + rng.Float64()*(bHi[0]-bLo[0]),
			bLo[1] + rng.Float64()*(bHi[1]-bLo[1]),
		}
		if zone.Contains(f, v) {
			if !zone.InAdmissibleRegion(f, v) {
				t.Fatalf("ADCD-X zone point %v outside admissible (f=%v ∉ [%v, %v])",
					v, f.Value(v), zone.L, zone.U)
			}
			inZone = append(inZone, v)
		}
	}
	if len(inZone) < 20 {
		t.Fatalf("too few in-zone samples: %d", len(inZone))
	}
	mean := make([]float64, 2)
	for trial := 0; trial < 200; trial++ {
		a := inZone[rng.Intn(len(inZone))]
		b := inZone[rng.Intn(len(inZone))]
		linalg.Mean(mean, a, b)
		if !zone.Contains(f, mean) {
			t.Fatalf("midpoint of in-zone points left the ADCD-X zone: %v", mean)
		}
	}
}

func rosenbrockFunc() *Function {
	return NewFunction("rosenbrock", 2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		a := b.Square(b.Sub(b.Const(1), x[0]))
		c := b.Mul(b.Const(100), b.Square(b.Sub(x[1], b.Square(x[0]))))
		return b.Add(a, c)
	})
}

func TestADCDESupersetOfADCDX(t *testing.T) {
	// §3.2: for constant-Hessian functions the ADCD-X safe zone is a subset
	// of the ADCD-E safe zone. Sample and verify the inclusion.
	rng := rand.New(rand.NewSource(31))
	q := linalg.NewMat(2, 2)
	q.Set(0, 0, 1)
	q.Set(1, 1, -2)
	f := quadraticFunc(q)
	x0 := []float64{0.2, 0.1}
	f0 := f.Value(x0)
	l, u := f0-0.4, f0+0.4

	dec, err := DecomposeE(f, x0)
	if err != nil {
		t.Fatal(err)
	}
	zoneE := BuildZoneE(f, dec, x0, l, u)
	bLo, bHi := NeighborhoodBox(f, x0, 3)
	zoneX, err := BuildZoneX(f, x0, l, u, bLo, bHi, DecompOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		v := []float64{x0[0] + rng.NormFloat64(), x0[1] + rng.NormFloat64()}
		if zoneX.Contains(f, v) && !zoneE.Contains(f, v) {
			t.Fatalf("point %v in ADCD-X zone but not ADCD-E zone", v)
		}
	}
}

func TestNeighborhoodBoxClampsToDomain(t *testing.T) {
	f := sineFunc() // domain [0, π]
	lo, hi := NeighborhoodBox(f, []float64{0.1}, 0.5)
	if lo[0] != 0 {
		t.Errorf("lower bound = %v, want clamp at 0", lo[0])
	}
	if math.Abs(hi[0]-0.6) > 1e-12 {
		t.Errorf("upper bound = %v, want 0.6", hi[0])
	}
}

func TestNoADCDZoneIsAdmissibleRegion(t *testing.T) {
	f := rosenbrockFunc()
	x0 := []float64{0, 0}
	f0 := f.Value(x0)
	zone := BuildZoneNone(f, x0, f0-1, f0+1)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		v := []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5}
		in := zone.Contains(f, v)
		adm := zone.InAdmissibleRegion(f, v)
		if in != adm {
			t.Fatalf("no-ADCD zone disagrees with admissible region at %v", v)
		}
	}
}
