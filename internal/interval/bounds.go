package interval

import (
	"errors"
	"math"

	"automon/internal/linalg"
)

// epsMachine is the double-precision unit roundoff.
const epsMachine = 2.220446049250313e-16

// EigBounds turns an elementwise Hessian enclosure into certified spectral
// bounds: every eigenvalue of every symmetric member matrix lies in the
// returned [lamMin, lamMax]. Three sound estimators run and the tightest
// combination wins:
//
//  1. Gershgorin over the interval matrix: row i contributes
//     [lo_ii − Σ_{j≠i} mag_ij, hi_ii + Σ_{j≠i} mag_ij].
//  2. Scaled Gershgorin (arXiv:1507.06161 §3): for any positive weights d_i
//     the similarity D⁻¹AD preserves the spectrum, so row radii become
//     Σ_{j≠i} mag_ij·d_j/d_i; the classic near-optimal choice d_i = row
//     off-diagonal sum equalizes the radii.
//  3. Hertz-style midpoint refinement: with C the midpoint matrix and R the
//     radius matrix, every member is C + E with |E_ij| ≤ R_ij, so by Weyl's
//     inequality λ(A) ∈ λ(C) ± ρ(E) and ρ(E) ≤ ‖R‖∞. λ(C) comes from one
//     exact dense eigensolve, padded for its backward error.
//
// All three are inflated outward by a dimension- and magnitude-proportional
// margin that dominates round-to-nearest drift (the package does not use
// directed rounding). Unbounded enclosures degrade gracefully to ±Inf bounds;
// only a structurally empty matrix is an error.
func EigBounds(m *Mat) (lamMin, lamMax float64, err error) {
	d := m.D
	if d == 0 {
		return 0, 0, errors.New("interval: EigBounds on empty matrix")
	}

	// Row aggregates shared by both Gershgorin passes.
	magMax := 0.0
	off := make([]float64, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			g := m.At(i, j).Mag()
			if g > magMax {
				magMax = g
			}
			if j != i {
				off[i] += g
			}
		}
	}

	gLo, gHi := math.Inf(1), math.Inf(-1)
	for i := 0; i < d; i++ {
		c := m.At(i, i)
		gLo = math.Min(gLo, c.Lo-off[i])
		gHi = math.Max(gHi, c.Hi+off[i])
	}
	lamMin, lamMax = gLo, gHi

	// Scaled Gershgorin. Weights are floored well above zero relative to the
	// largest row so a decoupled row cannot blow up another row's radius.
	maxOff := 0.0
	for _, o := range off {
		maxOff = math.Max(maxOff, o)
	}
	if maxOff > 0 && !math.IsInf(maxOff, 1) {
		sLo, sHi := math.Inf(1), math.Inf(-1)
		for i := 0; i < d; i++ {
			wi := math.Max(off[i], 1e-6*maxOff)
			radius := 0.0
			for j := 0; j < d; j++ {
				if j == i {
					continue
				}
				wj := math.Max(off[j], 1e-6*maxOff)
				radius += m.At(i, j).Mag() * wj / wi
			}
			c := m.At(i, i)
			sLo = math.Min(sLo, c.Lo-radius)
			sHi = math.Max(sHi, c.Hi+radius)
		}
		lamMin = math.Max(lamMin, sLo)
		lamMax = math.Min(lamMax, sHi)
	}

	// Midpoint refinement, only when every entry is bounded (an Inf endpoint
	// makes Mid/Rad meaningless).
	if !math.IsInf(magMax, 1) {
		c := linalg.NewMat(d, d)
		spread, normC := 0.0, 0.0
		for i := 0; i < d; i++ {
			rowRad, rowAbs := 0.0, 0.0
			for j := 0; j < d; j++ {
				e := m.At(i, j)
				mid := e.Mid()
				c.Set(i, j, mid)
				rowRad += e.Rad()
				rowAbs += math.Abs(mid)
			}
			spread = math.Max(spread, rowRad)
			normC = math.Max(normC, rowAbs)
		}
		if ev, eigErr := linalg.EigenvaluesSym(c); eigErr == nil && len(ev) == d {
			// Backward error of the tridiagonal QL eigensolve is O(d·ε·‖C‖);
			// 256 is a generous constant validated by the soundness harness.
			pad := 256 * float64(d) * epsMachine * math.Max(1, normC)
			lamMin = math.Max(lamMin, ev[0]-spread-pad)
			lamMax = math.Min(lamMax, ev[d-1]+spread+pad)
		}
	}

	// Outward inflation covering round-to-nearest drift of the interval
	// evaluation itself (endpoints are not directed-rounded).
	margin := (1e-12 + 64*float64(d)*epsMachine) * math.Max(1, magMax)
	if !math.IsInf(lamMin, 0) {
		lamMin -= margin
	}
	if !math.IsInf(lamMax, 0) {
		lamMax += margin
	}
	return lamMin, lamMax, nil
}
