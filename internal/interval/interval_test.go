package interval

import (
	"math"
	"math/rand"
	"testing"

	"automon/internal/autodiff"
	"automon/internal/linalg"
	"automon/internal/testenv"
)

func eq(a Interval, lo, hi float64) bool { return a.Lo == lo && a.Hi == hi }

func TestArithmeticBasics(t *testing.T) {
	a := Interval{1, 2}
	b := Interval{-3, 4}
	if got := a.Add(b); !eq(got, -2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !eq(got, -3, 5) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); !eq(got, -6, 8) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Neg(); !eq(got, -2, -1) {
		t.Errorf("Neg = %v", got)
	}
	if got := b.Square(); !eq(got, 0, 16) {
		t.Errorf("Square = %v", got)
	}
	if got := b.Abs(); !eq(got, 0, 4) {
		t.Errorf("Abs = %v", got)
	}
	if got := b.Relu(); !eq(got, 0, 4) {
		t.Errorf("Relu = %v", got)
	}
	if got := b.Step(); !eq(got, 0, 1) {
		t.Errorf("Step = %v", got)
	}
	if got := b.Sign(); !eq(got, -1, 1) {
		t.Errorf("Sign = %v", got)
	}
}

func TestDivisionThroughZero(t *testing.T) {
	if got := (Interval{1, 1}).Div(Interval{-1, 1}); got != Entire {
		t.Errorf("1/[-1,1] = %v, want Entire", got)
	}
	if got := (Interval{1, 2}).Div(Interval{2, 4}); !eq(got, 0.25, 1) {
		t.Errorf("[1,2]/[2,4] = %v", got)
	}
	// Negative integer power through zero widens the same way.
	if got := (Interval{-1, 1}).Powi(-2); got != Entire {
		t.Errorf("[-1,1]^-2 = %v, want Entire", got)
	}
}

func TestPartialDomains(t *testing.T) {
	if got := (Interval{-2, -1}).Log(); got != Entire {
		t.Errorf("log of negative interval = %v, want Entire", got)
	}
	if got := (Interval{-1, 4}).Log(); !(math.IsInf(got.Lo, -1) && got.Hi == math.Log(4)) {
		t.Errorf("log[-1,4] = %v", got)
	}
	if got := (Interval{-1, 4}).Sqrt(); !eq(got, 0, 2) {
		t.Errorf("sqrt[-1,4] = %v", got)
	}
	if got := (Interval{-3, -2}).Sqrt(); got != Entire {
		t.Errorf("sqrt of negative interval = %v, want Entire", got)
	}
}

func TestNaNWidensToEntire(t *testing.T) {
	// 0·∞ is indeterminate: the product must widen, never return NaN.
	if got := (Interval{0, 0}).Mul(Entire); got != Entire {
		t.Errorf("0·Entire = %v, want Entire", got)
	}
	if got := Point(math.NaN()); got != Entire {
		t.Errorf("Point(NaN) = %v, want Entire", got)
	}
	if got := Entire.Sub(Entire); got != Entire {
		t.Errorf("Entire-Entire = %v, want Entire", got)
	}
}

func TestTrigRanges(t *testing.T) {
	pi := math.Pi
	if got := (Interval{0, pi}).Sin(); !(got.Lo == 0 && got.Hi == 1) {
		t.Errorf("sin[0,π] = %v", got)
	}
	if got := (Interval{0, pi}).Cos(); !(got.Lo == -1 && got.Hi == 1) {
		t.Errorf("cos[0,π] = %v", got)
	}
	if got := (Interval{0, 7}).Sin(); !eq(got, -1, 1) {
		t.Errorf("sin over a full period = %v", got)
	}
	if got := (Interval{0.1, 0.2}).Sin(); !(got.Lo == math.Sin(0.1) && got.Hi == math.Sin(0.2)) {
		t.Errorf("sin monotone slice = %v", got)
	}
	if got := Entire.Sin(); !eq(got, -1, 1) {
		t.Errorf("sin(Entire) = %v", got)
	}
}

// TestArithmeticContainment is the property backing every op: for random
// operand intervals and random points inside them, the interval result
// contains the pointwise result.
func TestArithmeticContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	draw := func() (Interval, float64) {
		a := rng.NormFloat64() * 3
		b := a + rng.Float64()*4
		x := a + rng.Float64()*(b-a)
		return Interval{a, b}, x
	}
	unary := []struct {
		name string
		iv   func(Interval) Interval
		sc   func(float64) float64
	}{
		{"neg", Interval.Neg, func(v float64) float64 { return -v }},
		{"square", Interval.Square, func(v float64) float64 { return v * v }},
		{"exp", Interval.Exp, math.Exp},
		{"tanh", Interval.Tanh, math.Tanh},
		{"sigmoid", Interval.Sigmoid, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }},
		{"sin", Interval.Sin, math.Sin},
		{"cos", Interval.Cos, math.Cos},
		{"abs", Interval.Abs, math.Abs},
		{"relu", Interval.Relu, func(v float64) float64 { return math.Max(v, 0) }},
		{"log", Interval.Log, math.Log},
		{"sqrt", Interval.Sqrt, math.Sqrt},
	}
	for trial := 0; trial < 5000; trial++ {
		a, x := draw()
		b, y := draw()
		checks := []struct {
			name string
			iv   Interval
			want float64
		}{
			{"add", a.Add(b), x + y},
			{"sub", a.Sub(b), x - y},
			{"mul", a.Mul(b), x * y},
			{"div", a.Div(b), x / y},
			{"powi3", a.Powi(3), powi(x, 3)},
			{"powi4", a.Powi(4), powi(x, 4)},
			{"powi-1", a.Powi(-1), powi(x, -1)},
		}
		for _, u := range unary {
			checks = append(checks, struct {
				name string
				iv   Interval
				want float64
			}{u.name, u.iv(a), u.sc(x)})
		}
		for _, c := range checks {
			if math.IsNaN(c.want) {
				continue // outside the op's real domain at this sample
			}
			if !c.iv.Contains(c.want) {
				t.Fatalf("trial %d: %s(%v,%v) = %v does not contain %v", trial, c.name, a, b, c.iv, c.want)
			}
		}
	}
}

func buildGraph(t *testing.T) *autodiff.Graph {
	t.Helper()
	// A graph touching div, log, sqrt, trig, powi and square with a domain
	// keeping everything well-defined on [0.5, 2]².
	return autodiff.Compile(2, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		q := b.Div(b.Square(x[0]), b.Add(x[1], b.Const(3)))
		s := b.Mul(b.Sin(x[0]), b.Log(x[1]))
		p := b.Powi(b.Add(x[0], x[1]), 3)
		return b.Add(q, b.Add(s, b.Mul(b.Const(0.01), p)))
	})
}

func TestHessianPointBoxMatchesScalar(t *testing.T) {
	g := buildGraph(t)
	e := NewEvaluator(g)
	h := linalg.NewMat(2, 2)
	m := NewMat(2)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		x := []float64{0.5 + 1.5*rng.Float64(), 0.5 + 1.5*rng.Float64()}
		g.Hessian(x, h)
		if err := e.Hessian(x, x, m); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				c := m.At(i, j)
				if !c.IsPoint() || c.Lo != h.At(i, j) {
					t.Fatalf("trial %d: cell (%d,%d) = %v, scalar %v", trial, i, j, c, h.At(i, j))
				}
			}
		}
	}
}

// TestHessianSteadyStateAllocs backs the //automon:hotpath annotations: once
// the scratch pool is warm, an interval Hessian evaluation allocates nothing.
func TestHessianSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("the race detector randomly drops sync.Pool items, defeating AllocsPerRun")
	}
	e := NewEvaluator(buildGraph(t))
	m := NewMat(2)
	lo := []float64{0.5, 0.5}
	hi := []float64{2, 2}
	if err := e.Hessian(lo, hi, m); err != nil { // warm the pool
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := e.Hessian(lo, hi, m); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("steady-state Hessian allocates %.1f objects per call, want 0", avg)
	}
}

func TestHessianBoxRejection(t *testing.T) {
	e := NewEvaluator(buildGraph(t))
	m := NewMat(2)
	if err := e.Hessian([]float64{1, 2}, []float64{1, 1}, m); err == nil {
		t.Error("inverted box accepted")
	}
	if err := e.Hessian([]float64{1, math.NaN()}, []float64{1, 1}, m); err == nil {
		t.Error("NaN box accepted")
	}
	if err := e.Hessian([]float64{1}, []float64{1}, m); err == nil {
		t.Error("wrong-dimension box accepted")
	}
	if err := e.Hessian([]float64{0, 0}, []float64{1, 1}, NewMat(3)); err == nil {
		t.Error("wrong-shape matrix accepted")
	}
	if err := e.Hessian([]float64{0, 0}, []float64{1, math.Inf(1)}, m); err != nil {
		t.Errorf("unbounded box rejected: %v", err)
	}
}

func TestEigBoundsKnownMatrices(t *testing.T) {
	// Exact diagonal point matrix: bounds must enclose [1, 3] tightly.
	m := NewMat(2)
	m.Set(0, 0, Point(1))
	m.Set(1, 1, Point(3))
	lo, hi, err := EigBounds(m)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 1 || hi < 3 {
		t.Fatalf("bounds [%v, %v] do not enclose [1, 3]", lo, hi)
	}
	if lo < 0.9 || hi > 3.1 {
		t.Fatalf("bounds [%v, %v] needlessly loose for a point matrix", lo, hi)
	}

	// Interval perturbation of the identity: eigenvalues of any member of
	// I ± 0.1 lie within [1 − 0.2, 1 + 0.2] (Weyl), and the midpoint pass
	// should get within the row-sum of radii.
	p := NewMat(2)
	p.Set(0, 0, Interval{0.9, 1.1})
	p.Set(1, 1, Interval{0.9, 1.1})
	p.Set(0, 1, Interval{-0.1, 0.1})
	p.Set(1, 0, Interval{-0.1, 0.1})
	lo, hi, err = EigBounds(p)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 0.8 || hi < 1.2 {
		t.Fatalf("bounds [%v, %v] unsound for I±0.1", lo, hi)
	}
	if lo < 0.7 || hi > 1.3 {
		t.Fatalf("bounds [%v, %v] looser than Gershgorin for I±0.1", lo, hi)
	}

	// Unbounded cells degrade to infinite bounds, not errors.
	u := NewMat(1)
	u.Set(0, 0, Entire)
	lo, hi, err = EigBounds(u)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Fatalf("Entire cell bounds = [%v, %v]", lo, hi)
	}

	if _, _, err := EigBounds(NewMat(0)); err == nil {
		t.Error("empty matrix accepted")
	}
}

// TestEigBoundsContainsSampledMembers draws random interval matrices and
// random symmetric members, checking every member eigenvalue lands inside.
func TestEigBoundsContainsSampledMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		d := 1 + rng.Intn(5)
		m := NewMat(d)
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				c := rng.NormFloat64() * 2
				r := rng.Float64()
				iv := Interval{c - r, c + r}
				m.Set(i, j, iv)
				m.Set(j, i, iv)
			}
		}
		lo, hi, err := EigBounds(m)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 20; s++ {
			a := linalg.NewMat(d, d)
			for i := 0; i < d; i++ {
				for j := i; j < d; j++ {
					iv := m.At(i, j)
					v := iv.Lo + rng.Float64()*iv.Width()
					a.Set(i, j, v)
					a.Set(j, i, v)
				}
			}
			emin, emax, err := linalg.ExtremeEigenvalues(a)
			if err != nil {
				t.Fatal(err)
			}
			if emin < lo || emax > hi {
				t.Fatalf("trial %d: member eigs [%v, %v] escape bounds [%v, %v]", trial, emin, emax, lo, hi)
			}
		}
	}
}
