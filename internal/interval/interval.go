// Package interval implements certified interval arithmetic and interval
// Hessian enclosures over internal/autodiff graphs, the second eigen-engine
// behind core's pluggable EigBounder (paper §3.1 replacement; methods of
// Schulze Darup & Mönnigmann, arXiv:1206.0196 and arXiv:1507.06161).
//
// The contract throughout the package is *soundness*: every operation on
// Interval returns an enclosure of the true real-valued range of that
// operation over its input enclosures. Where the real operation is undefined
// on part of the input (log of a negative, division through zero) the result
// widens — in the limit to Entire, the whole real line — rather than ever
// excluding an attainable value. An operation whose floating-point endpoint
// computation produces NaN also widens to Entire, so enclosures are always
// ordered (Lo ≤ Hi) and never NaN.
//
// Directed (outward) rounding is not used; instead consumers that turn
// enclosures into certified scalar claims (EigBounds) inflate outward by a
// dimension- and magnitude-proportional margin that dominates the round-off
// of the evaluation passes. The soundness property harness
// (soundness_test.go) validates the end-to-end claim against exact sampled
// eigenvalues with zero tolerance.
package interval

import "math"

// Interval is a closed interval [Lo, Hi] of reals, Lo ≤ Hi, endpoints in
// the extended reals (±Inf allowed, NaN never).
type Interval struct {
	Lo, Hi float64
}

// Entire is the whole extended real line — the "no information" enclosure.
var Entire = Interval{math.Inf(-1), math.Inf(1)}

// Point returns the degenerate interval [v, v]; a NaN v yields Entire.
func Point(v float64) Interval { return fix(v, v) }

// fix assembles an interval from computed endpoints, widening to Entire when
// either endpoint is NaN (an undefined or indeterminate operation). It does
// NOT reorder endpoints: every op below is responsible for producing lo ≤ hi,
// so an ordering bug stays visible to the property harness instead of being
// silently repaired.
func fix(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return Entire
	}
	return Interval{lo, hi}
}

// IsPoint reports whether the interval is degenerate ([v, v]).
func (a Interval) IsPoint() bool {
	return a.Lo == a.Hi //automon:allow nofloateq degeneracy test is an exact bitwise property, not a numeric comparison
}

// IsZero reports whether the interval is exactly [0, 0]. The adjoint passes
// use it to skip nodes with no sensitivity, mirroring the scalar evaluator's
// exact-zero sparsity test.
func (a Interval) IsZero() bool { return a.Lo == 0 && a.Hi == 0 }

// Contains reports whether v lies inside the interval.
func (a Interval) Contains(v float64) bool { return a.Lo <= v && v <= a.Hi }

// Width returns Hi − Lo (+Inf for unbounded intervals).
func (a Interval) Width() float64 { return a.Hi - a.Lo }

// Mag returns the magnitude max(|Lo|, |Hi|), the largest absolute value the
// interval contains.
func (a Interval) Mag() float64 { return math.Max(math.Abs(a.Lo), math.Abs(a.Hi)) }

// Mid returns the midpoint ½(Lo + Hi).
func (a Interval) Mid() float64 { return 0.5 * (a.Lo + a.Hi) }

// Rad returns the radius ½(Hi − Lo).
func (a Interval) Rad() float64 { return 0.5 * (a.Hi - a.Lo) }

// Add returns an enclosure of a + b.
//
//automon:hotpath
func (a Interval) Add(b Interval) Interval { return fix(a.Lo+b.Lo, a.Hi+b.Hi) }

// Sub returns an enclosure of a − b.
//
//automon:hotpath
func (a Interval) Sub(b Interval) Interval { return fix(a.Lo-b.Hi, a.Hi-b.Lo) }

// Neg returns −a.
//
//automon:hotpath
func (a Interval) Neg() Interval { return Interval{-a.Hi, -a.Lo} }

// Mul returns an enclosure of a · b (min/max over the four endpoint
// products; an indeterminate 0·∞ widens to Entire).
//
//automon:hotpath
func (a Interval) Mul(b Interval) Interval {
	p1 := a.Lo * b.Lo
	p2 := a.Lo * b.Hi
	p3 := a.Hi * b.Lo
	p4 := a.Hi * b.Hi
	return fix(math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)))
}

// Div returns an enclosure of a / b. A divisor interval containing zero
// yields Entire (the quotient set is unbounded or undefined there).
//
//automon:hotpath
func (a Interval) Div(b Interval) Interval {
	if b.Lo <= 0 && b.Hi >= 0 {
		return Entire
	}
	q1 := a.Lo / b.Lo
	q2 := a.Lo / b.Hi
	q3 := a.Hi / b.Lo
	q4 := a.Hi / b.Hi
	return fix(math.Min(math.Min(q1, q2), math.Min(q3, q4)),
		math.Max(math.Max(q1, q2), math.Max(q3, q4)))
}

// Square returns an enclosure of a², exploiting the sign structure so the
// result never dips below zero (tighter than a.Mul(a) under the dependency
// problem). At degenerate inputs it computes exactly v·v, bitwise equal to
// the scalar evaluator's OpSquare.
//
//automon:hotpath
func (a Interval) Square() Interval {
	switch {
	case a.Lo >= 0:
		return fix(a.Lo*a.Lo, a.Hi*a.Hi)
	case a.Hi <= 0:
		return fix(a.Hi*a.Hi, a.Lo*a.Lo)
	}
	return fix(0, math.Max(a.Lo*a.Lo, a.Hi*a.Hi))
}

// powi is the binary-exponentiation integer power, duplicated bit-for-bit
// from the scalar evaluator so degenerate intervals reproduce its values.
func powi(x float64, k int) float64 {
	if k < 0 {
		return 1 / powi(x, -k)
	}
	r := 1.0
	for k > 0 {
		if k&1 == 1 {
			r *= x
		}
		x *= x
		k >>= 1
	}
	return r
}

// Powi returns an enclosure of a^k for integer k. Negative exponents go
// through Div, so an interval containing zero widens to Entire.
//
//automon:hotpath
func (a Interval) Powi(k int) Interval {
	switch {
	case k == 0:
		return Interval{1, 1}
	case k < 0:
		return Point(1).Div(a.Powi(-k))
	case k%2 == 1: // odd: monotone increasing
		return fix(powi(a.Lo, k), powi(a.Hi, k))
	}
	// Even power: shaped like Square.
	switch {
	case a.Lo >= 0:
		return fix(powi(a.Lo, k), powi(a.Hi, k))
	case a.Hi <= 0:
		return fix(powi(a.Hi, k), powi(a.Lo, k))
	}
	return fix(0, math.Max(powi(a.Lo, k), powi(a.Hi, k)))
}

// Exp returns an enclosure of e^a (monotone).
//
//automon:hotpath
func (a Interval) Exp() Interval { return fix(math.Exp(a.Lo), math.Exp(a.Hi)) }

// Log returns an enclosure of ln(a) over the part of a where it is defined.
// Entirely negative inputs (Hi < 0) carry no real log values at all and
// widen to Entire, matching the scalar evaluator's NaN.
//
//automon:hotpath
func (a Interval) Log() Interval {
	if a.Hi < 0 {
		return Entire
	}
	lo := math.Inf(-1)
	if a.Lo >= 0 {
		lo = math.Log(a.Lo)
	}
	return fix(lo, math.Log(a.Hi))
}

// Sqrt returns an enclosure of √a over the part of a where it is defined.
//
//automon:hotpath
func (a Interval) Sqrt() Interval {
	if a.Hi < 0 {
		return Entire
	}
	lo := 0.0
	if a.Lo >= 0 {
		lo = math.Sqrt(a.Lo)
	}
	return fix(lo, math.Sqrt(a.Hi))
}

// Tanh returns an enclosure of tanh(a) (monotone).
//
//automon:hotpath
func (a Interval) Tanh() Interval { return fix(math.Tanh(a.Lo), math.Tanh(a.Hi)) }

// Sigmoid returns an enclosure of 1/(1+e^−a) (monotone), using the exact
// formula of the scalar evaluator.
//
//automon:hotpath
func (a Interval) Sigmoid() Interval {
	return fix(1/(1+math.Exp(-a.Lo)), 1/(1+math.Exp(-a.Hi)))
}

// Relu returns an enclosure of max(a, 0).
//
//automon:hotpath
func (a Interval) Relu() Interval {
	return fix(math.Max(a.Lo, 0), math.Max(a.Hi, 0))
}

// Step returns an enclosure of the Heaviside step 1{a > 0}.
//
//automon:hotpath
func (a Interval) Step() Interval {
	lo, hi := 0.0, 0.0
	if a.Lo > 0 {
		lo = 1
	}
	if a.Hi > 0 {
		hi = 1
	}
	return Interval{lo, hi}
}

// Abs returns an enclosure of |a|.
//
//automon:hotpath
func (a Interval) Abs() Interval {
	switch {
	case a.Lo >= 0:
		return a
	case a.Hi <= 0:
		return Interval{-a.Hi, -a.Lo}
	}
	return fix(0, math.Max(-a.Lo, a.Hi))
}

// sgn is the scalar sign function, hoisted out of Sign so the hot path stays
// free of function values.
func sgn(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// Sign returns an enclosure of sign(a) ∈ {−1, 0, 1} (monotone).
//
//automon:hotpath
func (a Interval) Sign() Interval {
	return Interval{sgn(a.Lo), sgn(a.Hi)}
}

// twoPi is 2π for the trigonometric range reductions.
const twoPi = 2 * math.Pi

// containsCrit reports whether the interval contains a point p + k·period
// for some integer k.
func containsCrit(a Interval, p, period float64) bool {
	k := math.Ceil((a.Lo - p) / period)
	return p+k*period <= a.Hi
}

// trigRange encloses a bounded periodic function from its endpoint values fl
// = f(a.Lo), fh = f(a.Hi), given maxima at firstMax + 2πk and minima at
// firstMax + π + 2πk (sin: firstMax = π/2; cos: 0). Endpoint evaluation stays
// in the caller so the hot path carries no function values.
func trigRange(a Interval, fl, fh, firstMax float64) Interval {
	if math.IsInf(a.Lo, 0) || math.IsInf(a.Hi, 0) || a.Hi-a.Lo >= twoPi {
		return Interval{-1, 1}
	}
	lo := math.Min(fl, fh)
	hi := math.Max(fl, fh)
	if containsCrit(a, firstMax, twoPi) {
		hi = 1
	}
	if containsCrit(a, firstMax+math.Pi, twoPi) {
		lo = -1
	}
	return fix(lo, hi)
}

// Sin returns an enclosure of sin(a).
//
//automon:hotpath
func (a Interval) Sin() Interval {
	return trigRange(a, math.Sin(a.Lo), math.Sin(a.Hi), math.Pi/2)
}

// Cos returns an enclosure of cos(a).
//
//automon:hotpath
func (a Interval) Cos() Interval {
	return trigRange(a, math.Cos(a.Lo), math.Cos(a.Hi), 0)
}
