package interval_test

// FuzzIntervalHessian drives the interval Hessian engine with arbitrary
// autodiff graphs and arbitrary boxes decoded from fuzz bytes. The properties
// under fuzz are the engine's unconditional contracts:
//
//   - no panic, for any graph and any box — including degenerate point boxes,
//     ±Inf endpoints, and overflow-prone op chains;
//   - invalid boxes (NaN endpoints, lo > hi, wrong length) are rejected with
//     an error, never a partial result;
//   - every produced cell is ordered (Lo ≤ Hi) and never NaN, and the matrix
//     is exactly symmetric;
//   - on finite point boxes the cells contain the exact scalar Hessian
//     entries (bitwise-equal off kinks; widened-but-containing on them).

import (
	"math"
	"testing"

	"automon/internal/autodiff"
	"automon/internal/interval"
	"automon/internal/linalg"
)

const fuzzMaxOps = 40

// progReader streams fuzz bytes, padding with zeros once exhausted so every
// input decodes to some graph.
type progReader struct {
	data []byte
	pos  int
}

func (p *progReader) next() byte {
	if p.pos >= len(p.data) {
		return 0
	}
	b := p.data[p.pos]
	p.pos++
	return b
}

// buildFuzzGraph decodes a byte stream into an autodiff graph: a dimension,
// then a sequence of ops whose operands index a growing pool of refs seeded
// with the variables and a few constants. The last result is the output.
func buildFuzzGraph(p *progReader) *autodiff.Graph {
	dim := 1 + int(p.next())%3
	nops := 1 + int(p.next())%fuzzMaxOps
	return autodiff.Compile(dim, func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
		pool := append([]autodiff.Ref{}, x...)
		pool = append(pool, b.Const(0), b.Const(1), b.Const(-0.5), b.Const(2.5))
		for i := 0; i < nops; i++ {
			op := p.next() % 18
			a := pool[int(p.next())%len(pool)]
			c := pool[int(p.next())%len(pool)]
			var r autodiff.Ref
			switch op {
			case 0:
				r = b.Add(a, c)
			case 1:
				r = b.Sub(a, c)
			case 2:
				r = b.Mul(a, c)
			case 3:
				r = b.Div(a, c)
			case 4:
				r = b.Neg(a)
			case 5:
				r = b.Tanh(a)
			case 6:
				r = b.Relu(a)
			case 7:
				r = b.Step(a)
			case 8:
				r = b.Sigmoid(a)
			case 9:
				r = b.Exp(a)
			case 10:
				r = b.Log(a)
			case 11:
				r = b.Sin(a)
			case 12:
				r = b.Cos(a)
			case 13:
				r = b.Sqrt(a)
			case 14:
				r = b.Square(a)
			case 15:
				r = b.Powi(a, int(p.next()%11)-4)
			case 16:
				r = b.Abs(a)
			default:
				r = b.Sign(a)
			}
			pool = append(pool, r)
		}
		return pool[len(pool)-1]
	})
}

// endpointTable is the palette box endpoints are drawn from: ordinary values,
// denormal-adjacent magnitudes, overflow bait, infinities and NaN.
var endpointTable = []float64{
	0, 1, -1, 0.5, -0.5, 2, -2, math.Pi,
	1e-8, -1e-8, 1e8, -1e8, 0.25, -0.75,
	math.Inf(1), math.Inf(-1), math.NaN(),
}

// decodeBox produces a box for dim variables. Mode 0 forces a point box,
// mode 1 an ordered fat box, mode 2 the raw (possibly inverted) pair.
func decodeBox(p *progReader, dim int) (lo, hi []float64) {
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	for i := 0; i < dim; i++ {
		a := endpointTable[int(p.next())%len(endpointTable)]
		b := endpointTable[int(p.next())%len(endpointTable)]
		switch p.next() % 3 {
		case 0:
			lo[i], hi[i] = a, a
		case 1:
			lo[i], hi[i] = math.Min(a, b), math.Max(a, b)
		default:
			lo[i], hi[i] = a, b
		}
	}
	return lo, hi
}

func FuzzIntervalHessian(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 3, 2, 0, 1, 3, 0, 4, 0, 0, 0})
	f.Add([]byte{2, 7, 14, 0, 0, 3, 1, 2, 10, 4, 0, 15, 2, 1, 9, 16, 16, 0})
	f.Add([]byte{0, 39, 2, 0, 0, 2, 4, 4, 2, 5, 5, 2, 6, 6, 15, 0, 0, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := &progReader{data: data}
		g := buildFuzzGraph(p)
		ev := interval.NewEvaluator(g)
		d := g.Dim()
		lo, hi := decodeBox(p, d)

		invalid := false
		for i := 0; i < d; i++ {
			if math.IsNaN(lo[i]) || math.IsNaN(hi[i]) || lo[i] > hi[i] {
				invalid = true
			}
		}

		m := interval.NewMat(d)
		err := ev.Hessian(lo, hi, m)
		if invalid {
			if err == nil {
				t.Fatalf("invalid box lo=%v hi=%v accepted", lo, hi)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid box lo=%v hi=%v rejected: %v", lo, hi, err)
		}

		point := true
		for i := 0; i < d; i++ {
			if lo[i] != hi[i] || math.IsInf(lo[i], 0) {
				point = false
			}
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				c := m.At(i, j)
				if math.IsNaN(c.Lo) || math.IsNaN(c.Hi) {
					t.Fatalf("cell (%d,%d) = %v carries NaN (box lo=%v hi=%v)", i, j, c, lo, hi)
				}
				if c.Lo > c.Hi {
					t.Fatalf("cell (%d,%d) = %v inverted (box lo=%v hi=%v)", i, j, c, lo, hi)
				}
				if c != m.At(j, i) {
					t.Fatalf("cells (%d,%d)=%v and (%d,%d)=%v asymmetric", i, j, c, j, i, m.At(j, i))
				}
			}
		}
		if point {
			h := linalg.NewMat(d, d)
			g.Hessian(lo, h)
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					sc := h.At(i, j)
					if math.IsNaN(sc) {
						continue // outside the graph's real domain at this point
					}
					if !m.At(i, j).Contains(sc) {
						t.Fatalf("point box x=%v: cell (%d,%d) = %v misses scalar %v", lo, i, j, m.At(i, j), sc)
					}
				}
			}
		}

		// A second Hessian over the same box must be deterministic: the pool
		// reuse inside the evaluator may not leak state across calls.
		m2 := interval.NewMat(d)
		if err := ev.Hessian(lo, hi, m2); err != nil {
			t.Fatalf("repeat evaluation rejected: %v", err)
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if m.At(i, j) != m2.At(i, j) {
					t.Fatalf("cell (%d,%d) nondeterministic: %v then %v", i, j, m.At(i, j), m2.At(i, j))
				}
			}
		}
	})
}
