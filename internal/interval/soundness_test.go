package interval_test

// The soundness property harness behind the certified eigen-engine: for
// every constructor in the internal/funcs zoo, random neighborhood boxes are
// drawn inside the function's safe region and ≥ 1e4 points are sampled per
// box; the exact Hessian eigenvalues at every sampled point must lie inside
// the certified [λ̂min, λ̂max] the interval engine produces for the box — with
// zero tolerance, because the claim under test is "certified", not "usually
// right". Everything is seed-deterministic (seeds derive from the entry
// name), and a failure is shrunk: the box is bisected toward the escaping
// point until the violation is minimal, then reported as a (function, box,
// point) triple at full precision.

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/linalg"
)

const (
	samplesPerBox = 10000
	boxesPerFunc  = 3
)

// entry is one zoo member with the region boxes are drawn from. The region
// stays inside the function's domain and away from genuine singularities
// (cosine's zero norm): a box containing a singularity certifies [−∞, +∞],
// which is sound but exercises nothing.
type entry struct {
	name   string
	f      *core.Function
	lo, hi []float64
}

func box(d int, lo, hi float64) (l, h []float64) {
	l = make([]float64, d)
	h = make([]float64, d)
	for i := 0; i < d; i++ {
		l[i], h[i] = lo, hi
	}
	return l, h
}

// zoo lists every funcs constructor at a small, fast dimension.
func zoo(t *testing.T) []entry {
	t.Helper()
	mlp, err := funcs.TrainMLP(2, 1)
	if err != nil {
		t.Fatalf("training MLP-2: %v", err)
	}
	q := linalg.NewMat(3, 3)
	vals := []float64{1, 0.5, -0.25, 0, -1, 0.75, 0.25, 0, 2}
	copy(q.Data, vals)
	mk := func(name string, f *core.Function, lo, hi float64) entry {
		l, h := box(f.Dim(), lo, hi)
		return entry{name: name, f: f, lo: l, hi: h}
	}
	return []entry{
		mk("inner-product", funcs.InnerProduct(2), -2, 2),
		mk("quadratic-form", funcs.QuadraticForm(q), -2, 2),
		mk("random-quadratic", funcs.RandomQuadratic(3, 1), -2, 2),
		mk("kld", funcs.KLD(2, 0.5), 0, 1),
		mk("entropy", funcs.Entropy(3, 0.1), 0, 1),
		mk("mlp-2", mlp, -2, 2),
		mk("cosine", funcs.CosineSimilarity(2), 0.3, 2),
		mk("logistic", funcs.Logistic([]float64{1, -0.5, 0.25}, -0.1), -2, 2),
		mk("rosenbrock", funcs.Rosenbrock(), -2, 2),
		mk("sine", funcs.Sine(), 0, math.Pi),
		mk("saddle", funcs.Saddle(), -2, 2),
		mk("variance", funcs.Variance(), -2, 2),
		mk("ams-f2", funcs.AMSF2(2, 3), -1, 1),
		mk("sqnorm", funcs.SqNorm(3), -2, 2),
	}
}

// seedFor derives the per-entry deterministic seed from the entry name, so
// adding or reordering entries never changes another entry's samples.
func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & math.MaxInt64)
}

// drawBox samples a random box inside the entry's region: uniform center,
// radius 2%–30% of the region span per coordinate, clipped to the region.
func drawBox(rng *rand.Rand, en entry) (lo, hi []float64) {
	d := en.f.Dim()
	lo = make([]float64, d)
	hi = make([]float64, d)
	r := 0.02 + 0.28*rng.Float64()
	for i := 0; i < d; i++ {
		span := en.hi[i] - en.lo[i]
		c := en.lo[i] + rng.Float64()*span
		lo[i] = math.Max(en.lo[i], c-r*span)
		hi[i] = math.Min(en.hi[i], c+r*span)
	}
	return lo, hi
}

// shrink bisects the failing box toward the escaping point while the
// violation persists, returning the smallest box still certifying bounds the
// sampled eigenvalues escape.
func shrink(t *testing.T, f *core.Function, lo, hi, x []float64, emin, emax float64) (sLo, sHi []float64, lamMin, lamMax float64) {
	t.Helper()
	sLo = append([]float64(nil), lo...)
	sHi = append([]float64(nil), hi...)
	lamMin, lamMax, err := f.IntervalEigBounds(sLo, sHi)
	if err != nil {
		t.Fatalf("shrink: bounds on original box: %v", err)
	}
	for round := 0; round < 60; round++ {
		nLo := make([]float64, len(x))
		nHi := make([]float64, len(x))
		for i := range x {
			nLo[i] = x[i] - 0.5*(x[i]-sLo[i])
			nHi[i] = x[i] + 0.5*(sHi[i]-x[i])
		}
		nMin, nMax, err := f.IntervalEigBounds(nLo, nHi)
		if err != nil || !(emin < nMin || emax > nMax) {
			return sLo, sHi, lamMin, lamMax // violation vanished; previous box is minimal
		}
		sLo, sHi, lamMin, lamMax = nLo, nHi, nMin, nMax
	}
	return sLo, sHi, lamMin, lamMax
}

func TestSoundnessHarness(t *testing.T) {
	for _, en := range zoo(t) {
		en := en
		t.Run(en.name, func(t *testing.T) {
			t.Parallel()
			d := en.f.Dim()
			rng := rand.New(rand.NewSource(seedFor(en.name)))
			h := linalg.NewMat(d, d)
			x := make([]float64, d)
			for b := 0; b < boxesPerFunc; b++ {
				lo, hi := drawBox(rng, en)
				lamMin, lamMax, err := en.f.IntervalEigBounds(lo, hi)
				if err != nil {
					t.Fatalf("box %d: certified bounds: %v", b, err)
				}
				for s := 0; s < samplesPerBox; s++ {
					for i := 0; i < d; i++ {
						x[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
					}
					en.f.Hessian(x, h)
					emin, emax, err := linalg.ExtremeEigenvalues(h)
					if err != nil {
						t.Fatalf("box %d sample %d: exact eigensolve: %v", b, s, err)
					}
					if emin < lamMin || emax > lamMax {
						sLo, sHi, sMin, sMax := shrink(t, en.f, lo, hi, x, emin, emax)
						t.Fatalf("sampled eigenvalues escape the certificate\n"+
							"  f      = %s (box %d, sample %d)\n"+
							"  box    = [%.17g,\n            %.17g]\n"+
							"  x      = %.17g\n"+
							"  eigs   = [%.17g, %.17g]\n"+
							"  bounds = [%.17g, %.17g] (shrunk box [%.17g, %.17g])",
							en.name, b, s, lo, hi, x, emin, emax, sMin, sMax, sLo, sHi)
					}
				}
			}
		})
	}
}

// TestCertificateEnclosesX0Spectrum pins the cheapest corollary: the
// certificate for any box containing x0 encloses the exact H(x0) spectrum.
func TestCertificateEnclosesX0Spectrum(t *testing.T) {
	for _, en := range zoo(t) {
		en := en
		t.Run(en.name, func(t *testing.T) {
			d := en.f.Dim()
			rng := rand.New(rand.NewSource(seedFor(en.name) + 1))
			h := linalg.NewMat(d, d)
			for trial := 0; trial < 50; trial++ {
				x := make([]float64, d)
				for i := 0; i < d; i++ {
					x[i] = en.lo[i] + rng.Float64()*(en.hi[i]-en.lo[i])
				}
				lamMin, lamMax, err := en.f.IntervalEigBounds(x, x)
				if err != nil {
					t.Fatal(err)
				}
				en.f.Hessian(x, h)
				emin, emax, err := linalg.ExtremeEigenvalues(h)
				if err != nil {
					t.Fatal(err)
				}
				if emin < lamMin || emax > lamMax {
					t.Fatalf("point-box certificate [%v, %v] misses exact spectrum [%v, %v] at %v",
						lamMin, lamMax, emin, emax, x)
				}
			}
		})
	}
}
