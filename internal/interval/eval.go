package interval

import (
	"fmt"
	"math"
	"sync"

	"automon/internal/autodiff"
)

// Mat is a square matrix of interval entries — an elementwise enclosure of a
// family of real matrices (here: every Hessian H(x) for x in a box).
type Mat struct {
	D     int
	cells []Interval
}

// NewMat returns a zeroed d×d interval matrix.
func NewMat(d int) *Mat { return &Mat{D: d, cells: make([]Interval, d*d)} }

// At returns entry (i, j).
func (m *Mat) At(i, j int) Interval { return m.cells[i*m.D+j] }

// Set stores entry (i, j).
func (m *Mat) Set(i, j int, v Interval) { m.cells[i*m.D+j] = v }

// ivalPool hands out Interval scratch slices sized to the graph, mirroring
// autodiff's bufferPool: evaluators are shared between goroutines, and the
// pool stores *[]Interval so Put never boxes a fresh allocation.
type ivalPool struct {
	size int
	pool sync.Pool
}

func (p *ivalPool) get() *[]Interval {
	if v := p.pool.Get(); v != nil {
		return v.(*[]Interval)
	}
	//automon:allow hotpath pool-miss fallback: first evaluation per P warms the pool; steady state never reaches this line
	s := make([]Interval, p.size)
	return &s
}

func (p *ivalPool) getZeroed() *[]Interval {
	buf := p.get()
	s := *buf
	for i := range s {
		s[i] = Interval{}
	}
	return buf
}

func (p *ivalPool) put(buf *[]Interval) { p.pool.Put(buf) }

// Evaluator re-interprets a compiled autodiff graph under interval
// arithmetic. Its Hessian pass is the same forward-over-reverse program as
// the scalar Graph.HVP/Graph.Hessian, loop for loop and formula for formula,
// with every float64 replaced by an Interval — so on a degenerate point box
// it reproduces the scalar Hessian exactly, and on a fat box it returns a
// sound elementwise enclosure of every H(x) in the box.
type Evaluator struct {
	specs []autodiff.NodeSpec
	vars  []int
	out   int
	pool  ivalPool
}

// NewEvaluator compiles an interval evaluator for g.
func NewEvaluator(g *autodiff.Graph) *Evaluator {
	e := &Evaluator{
		specs: g.AppendNodeSpecs(nil),
		vars:  make([]int, g.Dim()),
		out:   g.OutputIndex(),
	}
	for i := range e.vars {
		e.vars[i] = g.VarNodeIndex(i)
	}
	e.pool.size = len(e.specs)
	return e
}

// Dim returns the number of input variables.
func (e *Evaluator) Dim() int { return len(e.vars) }

// checkBox validates a hyperrectangle: matching lengths, no NaN endpoints,
// lo ≤ hi in every coordinate. ±Inf endpoints are allowed (unbounded boxes
// simply yield wide enclosures).
func (e *Evaluator) checkBox(lo, hi []float64) error {
	if len(lo) != len(e.vars) || len(hi) != len(e.vars) {
		return fmt.Errorf("interval: box is %d×%d, graph has %d variables", len(lo), len(hi), len(e.vars))
	}
	for i := range lo {
		if math.IsNaN(lo[i]) || math.IsNaN(hi[i]) {
			return fmt.Errorf("interval: box coordinate %d has NaN endpoint [%v, %v]", i, lo[i], hi[i])
		}
		if lo[i] > hi[i] {
			return fmt.Errorf("interval: box coordinate %d is inverted [%v, %v]", i, lo[i], hi[i])
		}
	}
	return nil
}

// Hessian stores an elementwise enclosure of {H(x) : lo ≤ x ≤ hi} into m via
// d interval Hessian-vector products against the basis vectors, symmetrized
// the same way as the scalar path. It rejects malformed boxes (NaN or
// inverted endpoints) with an error and never panics on valid ones.
func (e *Evaluator) Hessian(lo, hi []float64, m *Mat) error {
	d := len(e.vars)
	if err := e.checkBox(lo, hi); err != nil {
		return err
	}
	if m.D != d {
		return fmt.Errorf("interval: Hessian matrix is %d×%d, want %d×%d", m.D, m.D, d, d)
	}
	colBuf := e.pool.get()
	defer e.pool.put(colBuf)
	col := (*colBuf)[:d]
	for j := 0; j < d; j++ {
		e.hvpBasis(lo, hi, j, col)
		for i := 0; i < d; i++ {
			m.Set(i, j, col[i])
		}
	}
	// Same loop as linalg.Mat.Symmetrize, under interval arithmetic: the
	// interval mean of the two triangles encloses the scalar mean of any
	// member matrix, and at point boxes reproduces it exactly. (Intersection
	// would be tighter but can go empty under per-pass round-off, which would
	// break the soundness contract.)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			v := Point(0.5).Mul(m.At(i, j).Add(m.At(j, i)))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return nil
}

// hvpBasis computes the interval HVP against basis vector e_j — column j of
// the Hessian enclosure — into col. It is Graph.HVP transliterated to
// intervals: a forward pass with tangents, then a reverse pass with dual
// adjoints.
//
//automon:hotpath
func (e *Evaluator) hvpBasis(lo, hi []float64, j int, col []Interval) {
	valBuf, tanBuf := e.pool.get(), e.pool.get()
	adjBuf, adjTBuf := e.pool.getZeroed(), e.pool.getZeroed()
	defer e.pool.put(valBuf)
	defer e.pool.put(tanBuf)
	defer e.pool.put(adjBuf)
	defer e.pool.put(adjTBuf)
	val, tan := *valBuf, *tanBuf
	adj, adjT := *adjBuf, *adjTBuf

	// Forward pass with tangents.
	for i, n := range e.specs {
		switch n.Op {
		case autodiff.OpConst:
			val[i], tan[i] = Point(n.K), Interval{}
		case autodiff.OpVar:
			k := int(n.K)
			val[i] = fix(lo[k], hi[k])
			if k == j {
				tan[i] = Interval{1, 1}
			} else {
				tan[i] = Interval{}
			}
		default:
			var vb, tb Interval
			if n.B >= 0 {
				vb, tb = val[n.B], tan[n.B]
			}
			val[i], tan[i] = ivalDualForward(n.Op, n.K, val[n.A], tan[n.A], vb, tb)
		}
	}

	// Reverse pass with dual adjoints, same recurrence as the scalar path:
	//   adj[c]  += adj[n]·p     and   adjT[c] += adjT[n]·p + adj[n]·ṗ
	adj[e.out] = Interval{1, 1}
	for i := len(e.specs) - 1; i >= 0; i-- {
		a, at := adj[i], adjT[i]
		if a.IsZero() && at.IsZero() {
			continue
		}
		n := &e.specs[i]
		switch n.Op {
		case autodiff.OpConst, autodiff.OpVar:
			continue
		}
		var vb, tb Interval
		if n.B >= 0 {
			vb, tb = val[n.B], tan[n.B]
		}
		pa, dpa, pb, dpb := ivalDualPartials(n.Op, n.K, val[n.A], tan[n.A], vb, tb, val[i], tan[i])
		adj[n.A] = adj[n.A].Add(a.Mul(pa))
		adjT[n.A] = adjT[n.A].Add(at.Mul(pa).Add(a.Mul(dpa)))
		if n.B >= 0 {
			adj[n.B] = adj[n.B].Add(a.Mul(pb))
			adjT[n.B] = adjT[n.B].Add(at.Mul(pb).Add(a.Mul(dpb)))
		}
	}
	for i, vr := range e.vars {
		col[i] = adjT[vr]
	}
}

// hull0 returns the convex hull of a and {0}, the tangent enclosure for
// kinked ops (relu) whose active branch varies across the box.
func hull0(a Interval) Interval {
	return Interval{math.Min(a.Lo, 0), math.Max(a.Hi, 0)}
}

// ivalDualForward is node.dualForward under interval arithmetic. Each branch
// uses the same formula and operand grouping as the scalar code so point
// boxes evaluate identically; nonsmooth ops (relu, abs) gain a third branch
// that hulls both scalar outcomes when the box straddles the kink.
//
//automon:hotpath
func ivalDualForward(op autodiff.Op, k float64, va, ta, vb, tb Interval) (v, t Interval) {
	switch op {
	case autodiff.OpAdd:
		return va.Add(vb), ta.Add(tb)
	case autodiff.OpSub:
		return va.Sub(vb), ta.Sub(tb)
	case autodiff.OpMul:
		return va.Mul(vb), ta.Mul(vb).Add(va.Mul(tb))
	case autodiff.OpDiv:
		v = va.Div(vb)
		return v, ta.Sub(v.Mul(tb)).Div(vb)
	case autodiff.OpNeg:
		return va.Neg(), ta.Neg()
	case autodiff.OpTanh:
		v = va.Tanh()
		return v, Point(1).Sub(v.Square()).Mul(ta)
	case autodiff.OpRelu:
		switch {
		case va.Lo > 0:
			return va, ta
		case va.Hi <= 0:
			return Interval{}, Interval{}
		}
		return va.Relu(), hull0(ta)
	case autodiff.OpStep:
		return va.Step(), Interval{}
	case autodiff.OpSigmoid:
		v = va.Sigmoid()
		return v, v.Mul(Point(1).Sub(v)).Mul(ta)
	case autodiff.OpExp:
		v = va.Exp()
		return v, v.Mul(ta)
	case autodiff.OpLog:
		return va.Log(), ta.Div(va)
	case autodiff.OpSin:
		return va.Sin(), va.Cos().Mul(ta)
	case autodiff.OpCos:
		return va.Cos(), va.Sin().Neg().Mul(ta)
	case autodiff.OpSqrt:
		v = va.Sqrt()
		return v, ta.Div(Point(2).Mul(v))
	case autodiff.OpSquare:
		return va.Square(), Point(2).Mul(va).Mul(ta)
	case autodiff.OpPowi:
		return va.Powi(int(k)), Point(k).Mul(va.Powi(int(k) - 1)).Mul(ta)
	case autodiff.OpAbs:
		switch {
		case va.Lo > 0:
			return va, ta
		case va.Hi < 0:
			return va.Neg(), ta.Neg()
		}
		m := ta.Mag()
		return va.Abs(), fix(-m, m)
	case autodiff.OpSign:
		return va.Sign(), Interval{}
	}
	panic("interval: unknown op in ivalDualForward: " + op.String())
}

// ivalDualPartials is node.dualPartials under interval arithmetic, with the
// same formulas and groupings; kinked ops hull both scalar branches when the
// box straddles the kink. Squares of value intervals use Square (not
// self-Mul) — identical at points, tighter on fat boxes.
//
//automon:hotpath
func ivalDualPartials(op autodiff.Op, k float64, va, ta, vb, tb, vn, tn Interval) (pa, dpa, pb, dpb Interval) {
	zero := Interval{}
	one := Interval{1, 1}
	switch op {
	case autodiff.OpAdd:
		return one, zero, one, zero
	case autodiff.OpSub:
		return one, zero, Interval{-1, -1}, zero
	case autodiff.OpMul:
		return vb, tb, va, ta
	case autodiff.OpDiv:
		pa = one.Div(vb)
		dpa = tb.Neg().Div(vb.Square())
		pb = va.Neg().Div(vb.Square())
		dpb = ta.Neg().Mul(vb).Add(Point(2).Mul(va).Mul(tb)).Div(vb.Square().Mul(vb))
		return pa, dpa, pb, dpb
	case autodiff.OpNeg:
		return Interval{-1, -1}, zero, zero, zero
	case autodiff.OpTanh:
		pa = Point(1).Sub(vn.Square())
		return pa, Point(-2).Mul(vn).Mul(tn), zero, zero
	case autodiff.OpRelu:
		switch {
		case va.Lo > 0:
			return one, zero, zero, zero
		case va.Hi <= 0:
			return zero, zero, zero, zero
		}
		return Interval{0, 1}, zero, zero, zero
	case autodiff.OpStep, autodiff.OpSign:
		return zero, zero, zero, zero
	case autodiff.OpSigmoid:
		pa = vn.Mul(Point(1).Sub(vn))
		return pa, tn.Mul(Point(1).Sub(Point(2).Mul(vn))), zero, zero
	case autodiff.OpExp:
		return vn, tn, zero, zero
	case autodiff.OpLog:
		return one.Div(va), ta.Neg().Div(va.Square()), zero, zero
	case autodiff.OpSin:
		return va.Cos(), va.Sin().Neg().Mul(ta), zero, zero
	case autodiff.OpCos:
		return va.Sin().Neg(), va.Cos().Neg().Mul(ta), zero, zero
	case autodiff.OpSqrt:
		pa = Point(0.5).Div(vn)
		return pa, Point(-0.5).Mul(tn).Div(vn.Square()), zero, zero
	case autodiff.OpSquare:
		return Point(2).Mul(va), Point(2).Mul(ta), zero, zero
	case autodiff.OpPowi:
		pa = Point(k).Mul(va.Powi(int(k) - 1))
		dpa = Point(k * (k - 1)).Mul(va.Powi(int(k) - 2)).Mul(ta)
		return pa, dpa, zero, zero
	case autodiff.OpAbs:
		switch {
		case va.Lo > 0:
			return one, zero, zero, zero
		case va.Hi < 0:
			return Interval{-1, -1}, zero, zero, zero
		}
		return Interval{-1, 1}, zero, zero, zero
	}
	panic("interval: unknown op in ivalDualPartials: " + op.String())
}
