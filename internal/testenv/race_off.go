//go:build !race

package testenv

// RaceEnabled reports whether the binary was built with -race. Allocation
// and timing assertions skip themselves when it is true, since the race
// runtime changes both.
const RaceEnabled = false
