package linalg

import (
	"errors"
	"math"
	"math/rand"
)

// ApplyFunc applies a linear operator: out ← A·v. It must not retain v or
// out. Used to estimate Hessian spectra from Hessian-vector products
// without materializing the matrix (the §6 "Hessian spectrum approximation"
// extension of the AutoMon paper).
type ApplyFunc func(v, out []float64)

// PowerExtremes estimates the smallest and largest eigenvalues (and unit
// eigenvectors) of a symmetric operator of dimension d given only
// matrix-vector products, via shifted power iteration:
//
//  1. Power iteration on A + σI (σ = ‖A‖ bound from a few probes) finds the
//     eigenvalue of largest shifted magnitude — the true λmax.
//  2. Power iteration on (λmax + margin)·I − A finds λmin.
//
// It converges linearly with the spectral gap; iters bounds the work. The
// AutoMon coordinator uses it instead of dense eigendecomposition when the
// dimension is large (DecompOptions.UsePowerIteration).
func PowerExtremes(apply ApplyFunc, d, iters int, tol float64, rng *rand.Rand) (lamMin, lamMax float64, vMin, vMax []float64, err error) {
	if d <= 0 {
		return 0, 0, nil, nil, errors.New("linalg: PowerExtremes with non-positive dimension")
	}
	if iters <= 0 {
		iters = 200
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	// Crude operator-norm bound from a few random probes: ‖A v‖/‖v‖ ≤ ‖A‖,
	// inflated to be safely dominant as a shift.
	probe := make([]float64, d)
	out := make([]float64, d)
	var norm float64
	for k := 0; k < 3; k++ {
		for i := range probe {
			probe[i] = rng.NormFloat64()
		}
		n0 := Norm2(probe)
		apply(probe, out)
		if r := Norm2(out) / n0; r > norm {
			norm = r
		}
	}
	shift := 2*norm + 1

	// λmax of A = (top eigenvalue of A + shift·I) − shift: the shift makes
	// the top of A's spectrum the dominant eigenvalue in magnitude.
	top, vTop, err := powerIterate(func(v, o []float64) {
		apply(v, o)
		AXPY(o, shift, v, o)
	}, d, iters, tol, rng)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	lamMax = top - shift
	vMax = vTop

	// λmin of A = (λmax + margin) − top eigenvalue of (λmax+margin)·I − A.
	margin := math.Abs(lamMax) + 1
	flipShift := lamMax + margin
	bottom, vBot, err := powerIterate(func(v, o []float64) {
		apply(v, o)
		for i := range o {
			o[i] = flipShift*v[i] - o[i]
		}
	}, d, iters, tol, rng)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	lamMin = flipShift - bottom
	vMin = vBot
	return lamMin, lamMax, vMin, vMax, nil
}

// powerIterate runs plain power iteration on a PSD-shifted operator,
// returning the dominant Rayleigh quotient and unit vector.
func powerIterate(apply ApplyFunc, d, iters int, tol float64, rng *rand.Rand) (float64, []float64, error) {
	v := make([]float64, d)
	next := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	Scale(v, 1/Norm2(v), v)
	lam := 0.0
	for k := 0; k < iters; k++ {
		apply(v, next)
		n := Norm2(next)
		if n == 0 {
			// v is in the kernel; any unit vector is an eigenvector with
			// eigenvalue 0 for the shifted operator.
			return 0, v, nil
		}
		Scale(next, 1/n, next)
		newLam := 0.0
		apply(next, v) // reuse v as scratch for the Rayleigh quotient
		for i := range next {
			newLam += next[i] * v[i]
		}
		converged := math.Abs(newLam-lam) <= tol*(1+math.Abs(newLam))
		lam = newLam
		copy(v, next)
		Scale(v, 1/Norm2(v), v)
		if converged && k > 2 {
			break
		}
	}
	return lam, v, nil
}

// PowerExtremesDense is a convenience wrapper running PowerExtremes against
// an explicit symmetric matrix; tests use it to cross-check the estimator
// against the dense eigensolver.
func PowerExtremesDense(a *Mat, iters int, tol float64, rng *rand.Rand) (lamMin, lamMax float64, err error) {
	if a.Rows != a.Cols {
		return 0, 0, errors.New("linalg: PowerExtremesDense requires a square matrix")
	}
	lamMin, lamMax, _, _, err = PowerExtremes(func(v, out []float64) {
		a.MulVec(out, v)
	}, a.Rows, iters, tol, rng)
	return lamMin, lamMax, err
}
