package linalg

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// bigSum computes the exact sum of xs with math/big and rounds it to the
// nearest float64 — the reference Round must match bit-for-bit.
func bigSum(xs []float64) float64 {
	sum := new(big.Float).SetPrec(4096)
	for _, x := range xs {
		sum.Add(sum, new(big.Float).SetPrec(4096).SetFloat64(x))
	}
	f, _ := sum.Float64()
	return f
}

func randFloats(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch rng.Intn(10) {
		case 0: // huge magnitude
			xs[i] = math.Ldexp(rng.Float64()-0.5, rng.Intn(600))
		case 1: // tiny / subnormal
			xs[i] = math.Ldexp(rng.Float64()-0.5, -1000-rng.Intn(70))
		case 2: // exact cancellation material
			xs[i] = float64(rng.Intn(1000) - 500)
		default:
			xs[i] = rng.NormFloat64()
		}
	}
	return xs
}

func TestAccMatchesBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		xs := randFloats(rng, 1+rng.Intn(100))
		var a Acc
		for _, x := range xs {
			a.Add(x)
		}
		got, want := a.Round(), bigSum(xs)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: Round()=%g (%#x) want %g (%#x) for %d inputs",
				trial, got, math.Float64bits(got), want, math.Float64bits(want), len(xs))
		}
	}
}

// TestAccOrderAndTreeInvariance is the keystone property: any permutation
// and any tree partition of the same multiset yields a bit-identical sum.
func TestAccOrderAndTreeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		xs := randFloats(rng, 2+rng.Intn(200))
		var ref Acc
		for _, x := range xs {
			ref.Add(x)
		}
		refBits := math.Float64bits(ref.Round())

		// Shuffled sequential order.
		perm := rng.Perm(len(xs))
		var shuf Acc
		for _, i := range perm {
			shuf.Add(xs[i])
		}
		if math.Float64bits(shuf.Round()) != refBits {
			t.Fatalf("trial %d: shuffled sum differs from sequential", trial)
		}

		// Random partition into 1..8 leaves merged pairwise in random order.
		k := 1 + rng.Intn(8)
		leaves := make([]*Acc, k)
		for i := range leaves {
			leaves[i] = &Acc{}
		}
		for _, x := range xs {
			leaves[rng.Intn(k)].Add(x)
		}
		for len(leaves) > 1 {
			i := rng.Intn(len(leaves) - 1)
			leaves[i].Merge(leaves[i+1])
			leaves = append(leaves[:i+1], leaves[i+2:]...)
		}
		if math.Float64bits(leaves[0].Round()) != refBits {
			t.Fatalf("trial %d: tree-merged sum differs from sequential", trial)
		}
	}
}

func TestAccSpecials(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"zeros", []float64{0, math.Copysign(0, -1)}, 0},
		{"nan poisons", []float64{1, math.NaN(), 2}, math.NaN()},
		{"posinf", []float64{1, math.Inf(1)}, math.Inf(1)},
		{"neginf", []float64{math.Inf(-1), -5}, math.Inf(-1)},
		{"inf clash", []float64{math.Inf(1), math.Inf(-1)}, math.NaN()},
		{"exact cancel", []float64{1e300, -1e300, 3}, 3},
		{"subnormal", []float64{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64}, 2 * math.SmallestNonzeroFloat64},
		{"max finite", []float64{math.MaxFloat64}, math.MaxFloat64},
		{"overflow to inf", []float64{math.MaxFloat64, math.MaxFloat64}, math.Inf(1)},
		{"neg overflow", []float64{-math.MaxFloat64, -math.MaxFloat64}, math.Inf(-1)},
		{"tiny plus huge", []float64{1e308, 1e-308, -1e308}, 1e-308},
	}
	for _, tc := range cases {
		var a Acc
		for _, x := range tc.xs {
			a.Add(x)
		}
		got := a.Round()
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: Round()=%g want NaN", tc.name, got)
			}
			continue
		}
		if math.Float64bits(got) != math.Float64bits(tc.want) {
			t.Errorf("%s: Round()=%g (%#x) want %g (%#x)",
				tc.name, got, math.Float64bits(got), tc.want, math.Float64bits(tc.want))
		}
	}
}

func TestAccRoundHalfEven(t *testing.T) {
	// 1 + 2^-53 is exactly halfway between 1 and the next float64; half-even
	// rounds down to 1. Adding another 2^-53 lands above the midpoint of the
	// same interval... actually 1 + 2^-52 is exactly representable.
	var a Acc
	a.Add(1)
	a.Add(math.Ldexp(1, -53))
	if got := a.Round(); got != 1 {
		t.Errorf("1 + 2^-53 rounded to %g (%#x), want 1 (half-even)", got, math.Float64bits(got))
	}
	// 1 + 2^-53 + 2^-100 is above the midpoint: rounds up.
	a.Add(math.Ldexp(1, -100))
	want := 1 + math.Ldexp(1, -52)
	if got := a.Round(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("1 + 2^-53 + 2^-100 rounded to %#x, want %#x", math.Float64bits(got), math.Float64bits(want))
	}
	// 1.5 + 2^-53: odd mantissa LSB, half-even rounds up.
	a.Reset()
	a.Add(1 + math.Ldexp(1, -52))
	a.Add(math.Ldexp(1, -53))
	want = 1 + math.Ldexp(2, -52)
	if got := a.Round(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("odd-LSB half rounded to %#x, want %#x", math.Float64bits(got), math.Float64bits(want))
	}
}

func TestAccWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		xs := randFloats(rng, rng.Intn(50))
		var a Acc
		for _, x := range xs {
			a.Add(x)
		}
		buf := a.AppendBinary(nil)
		b, rest, err := DecodeAcc(buf)
		if err != nil {
			t.Fatalf("trial %d: decode failed: %v", trial, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trial %d: %d trailing bytes after decode", trial, len(rest))
		}
		if ga, gb := math.Float64bits(a.Round()), math.Float64bits(b.Round()); ga != gb {
			t.Fatalf("trial %d: round-trip changed value %#x -> %#x", trial, ga, gb)
		}
		// Canonical form: re-encoding the decoded accumulator must be identical.
		if again := b.AppendBinary(nil); string(again) != string(buf) {
			t.Fatalf("trial %d: re-encoding is not canonical", trial)
		}
	}

	// Specials survive the wire.
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var a Acc
		a.Add(x)
		b, _, err := DecodeAcc(a.AppendBinary(nil))
		if err != nil {
			t.Fatalf("special %g: %v", x, err)
		}
		got := b.Round()
		if math.IsNaN(x) != math.IsNaN(got) || (!math.IsNaN(x) && got != x) {
			t.Errorf("special %g decoded to %g", x, got)
		}
	}
}

func TestAccDecodeHostile(t *testing.T) {
	hostile := [][]byte{
		nil,
		{},
		{0},                     // finite flag but no window header
		{0, 5},                  // truncated header
		{0, 70, 1, 1, 2, 3, 4},  // offset beyond register
		{0, 60, 20, 0, 0, 0, 0}, // window overruns register
		{0, 0, 2, 1, 2, 3},      // truncated limb data
		{1, 0, 0},               // negative zero window (non-canonical)
	}
	for i, buf := range hostile {
		if _, _, err := DecodeAcc(buf); err == nil {
			t.Errorf("hostile input %d decoded without error", i)
		}
	}
}

func TestAccManyAddsNormalization(t *testing.T) {
	// Hammer one limb slot past the lazy-carry window to prove normalization
	// keeps the running value exact.
	var a Acc
	const n = accNormalizeEvery + 1024
	for i := 0; i < n; i++ {
		a.Add(1)
	}
	if got := a.Round(); got != float64(n) {
		t.Fatalf("sum of %d ones = %g", n, got)
	}
}

func TestAccVecHelpers(t *testing.T) {
	a := make([]Acc, 3)
	b := make([]Acc, 3)
	AddVec(a, []float64{1, 2, 3})
	AddVec(b, []float64{10, 20, 30})
	MergeVec(a, b)
	for j, want := range []float64{11, 22, 33} {
		if got := a[j].Round(); got != want {
			t.Errorf("dim %d: %g want %g", j, got, want)
		}
	}
}
