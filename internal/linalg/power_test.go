package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestPowerExtremesDenseAgreesWithEigenSym(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(20)
		m := randSym(rng, d, 2)
		wantLo, wantHi, err := ExtremeEigenvalues(m)
		if err != nil {
			t.Fatal(err)
		}
		gotLo, gotHi, err := PowerExtremesDense(m, 5000, 1e-12, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		scale := 1 + math.Abs(wantLo) + math.Abs(wantHi)
		if math.Abs(gotLo-wantLo) > 1e-3*scale {
			t.Fatalf("d=%d: λmin = %v, want %v", d, gotLo, wantLo)
		}
		if math.Abs(gotHi-wantHi) > 1e-3*scale {
			t.Fatalf("d=%d: λmax = %v, want %v", d, gotHi, wantHi)
		}
	}
}

func TestPowerExtremesEigenvectors(t *testing.T) {
	// Diagonal matrix: eigenvectors are coordinate axes.
	m := NewMat(3, 3)
	m.Set(0, 0, -5)
	m.Set(1, 1, 1)
	m.Set(2, 2, 7)
	lamMin, lamMax, vMin, vMax, err := PowerExtremes(func(v, out []float64) {
		m.MulVec(out, v)
	}, 3, 2000, 1e-12, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lamMin+5) > 1e-6 || math.Abs(lamMax-7) > 1e-6 {
		t.Fatalf("extremes = (%v, %v)", lamMin, lamMax)
	}
	if math.Abs(math.Abs(vMin[0])-1) > 1e-4 {
		t.Fatalf("vMin = %v, want ±e₀", vMin)
	}
	if math.Abs(math.Abs(vMax[2])-1) > 1e-4 {
		t.Fatalf("vMax = %v, want ±e₂", vMax)
	}
}

func TestPowerExtremesZeroOperator(t *testing.T) {
	lamMin, lamMax, _, _, err := PowerExtremes(func(v, out []float64) {
		for i := range out {
			out[i] = 0
		}
	}, 4, 100, 1e-10, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lamMin) > 1e-8 || math.Abs(lamMax) > 1e-8 {
		t.Fatalf("zero operator extremes = (%v, %v)", lamMin, lamMax)
	}
}

func TestPowerExtremesRejectsBadDim(t *testing.T) {
	if _, _, _, _, err := PowerExtremes(nil, 0, 10, 1e-9, nil); err == nil {
		t.Fatal("expected error for d = 0")
	}
	if _, _, err := PowerExtremesDense(NewMat(2, 3), 10, 1e-9, nil); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}
