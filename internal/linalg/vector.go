// Package linalg provides the dense linear-algebra substrate used by AutoMon:
// vectors, symmetric matrices, and symmetric eigensolvers (Householder
// tridiagonalization with implicit-shift QL, plus a cyclic Jacobi solver used
// as an independent cross-check in tests).
//
// Everything is float64 and allocation-conscious: hot paths accept
// destination slices so the monitoring protocol can run without garbage
// pressure on every data update.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation avoids overflow for extreme magnitudes.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Add stores a+b into dst and returns dst. dst may alias a or b.
func Add(dst, a, b []float64) []float64 {
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a-b into dst and returns dst. dst may alias a or b.
func Sub(dst, a, b []float64) []float64 {
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Scale stores s*a into dst and returns dst. dst may alias a.
func Scale(dst []float64, s float64, a []float64) []float64 {
	for i := range a {
		dst[i] = s * a[i]
	}
	return dst
}

// AXPY stores a*x + y into dst and returns dst. dst may alias x or y.
func AXPY(dst []float64, a float64, x, y []float64) []float64 {
	for i := range x {
		dst[i] = a*x[i] + y[i]
	}
	return dst
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}

// Mean stores the element-wise mean of the vectors into dst and returns dst.
// It panics if vecs is empty.
func Mean(dst []float64, vecs ...[]float64) []float64 {
	if len(vecs) == 0 {
		panic("linalg: Mean of zero vectors")
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, v := range vecs {
		for i, x := range v {
			dst[i] += x
		}
	}
	inv := 1 / float64(len(vecs))
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// Clamp stores min(hi, max(lo, v)) element-wise into dst and returns dst.
func Clamp(dst, v, lo, hi []float64) []float64 {
	for i, x := range v {
		if x < lo[i] {
			x = lo[i]
		}
		if x > hi[i] {
			x = hi[i]
		}
		dst[i] = x
	}
	return dst
}

// InBox reports whether every coordinate of v lies in [lo[i], hi[i]].
func InBox(v, lo, hi []float64) bool {
	for i, x := range v {
		if x < lo[i] || x > hi[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest |a[i]-b[i]|.
func MaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
