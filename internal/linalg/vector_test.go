package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
	// Scaled accumulation must not overflow.
	big := []float64{1e200, 1e200}
	if got, want := Norm2(big), 1e200*math.Sqrt2; !almostEq(got, want, 1e-12) {
		t.Fatalf("Norm2 overflow-safe = %v, want %v", got, want)
	}
}

func TestNorm2MatchesDot(t *testing.T) {
	f := func(v []float64) bool {
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		n := Norm2(v)
		return almostEq(n*n, Dot(v, v), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	dst := make([]float64, 3)
	Add(dst, a, b)
	if dst[0] != 5 || dst[2] != 9 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, b, a)
	if dst[0] != 3 || dst[2] != 3 {
		t.Fatalf("Sub = %v", dst)
	}
	Scale(dst, 2, a)
	if dst[1] != 4 {
		t.Fatalf("Scale = %v", dst)
	}
	AXPY(dst, 2, a, b)
	if dst[0] != 6 || dst[2] != 12 {
		t.Fatalf("AXPY = %v", dst)
	}
	// Aliasing: dst == a must be allowed.
	Add(a, a, b)
	if a[0] != 5 {
		t.Fatalf("aliased Add = %v", a)
	}
}

func TestMean(t *testing.T) {
	dst := make([]float64, 2)
	Mean(dst, []float64{0, 2}, []float64{2, 4}, []float64{4, 6})
	if dst[0] != 2 || dst[1] != 4 {
		t.Fatalf("Mean = %v", dst)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mean(make([]float64, 1))
}

func TestClampInBox(t *testing.T) {
	lo := []float64{-1, -1}
	hi := []float64{1, 1}
	dst := make([]float64, 2)
	Clamp(dst, []float64{-2, 0.5}, lo, hi)
	if dst[0] != -1 || dst[1] != 0.5 {
		t.Fatalf("Clamp = %v", dst)
	}
	if !InBox(dst, lo, hi) {
		t.Fatal("clamped point must be in box")
	}
	if InBox([]float64{2, 0}, lo, hi) {
		t.Fatal("point outside box reported inside")
	}
}

func TestClampAlwaysInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(8)
		lo := make([]float64, d)
		hi := make([]float64, d)
		v := make([]float64, d)
		dst := make([]float64, d)
		for i := 0; i < d; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			lo[i] = math.Min(a, b)
			hi[i] = math.Max(a, b)
			v[i] = rng.NormFloat64() * 3
		}
		Clamp(dst, v, lo, hi)
		if !InBox(dst, lo, hi) {
			t.Fatalf("Clamp(%v) = %v escaped box [%v, %v]", v, dst, lo, hi)
		}
	}
}

func TestSqDistAndMaxAbsDiff(t *testing.T) {
	a := []float64{0, 3}
	b := []float64{4, 0}
	if got := SqDist(a, b); got != 25 {
		t.Fatalf("SqDist = %v", got)
	}
	if got := MaxAbsDiff(a, b); got != 4 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
}

func TestClone(t *testing.T) {
	a := []float64{1, 2}
	c := Clone(a)
	c[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}
