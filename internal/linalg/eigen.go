package linalg

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes all eigenvalues and (optionally) eigenvectors of the
// symmetric matrix a. It does not modify a. Eigenvalues are returned in
// ascending order; column j of the returned matrix (i.e. vecs.At(i, j) over i)
// is the unit eigenvector for values[j].
//
// The implementation is the classic EISPACK pair: Householder reduction to
// tridiagonal form followed by implicit-shift QL iteration. It is O(d³) and
// robust for the Hessians AutoMon produces (d ≤ a few hundred).
func EigenSym(a *Mat, wantVectors bool) (values []float64, vecs *Mat, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: EigenSym requires a square matrix")
	}
	n := a.Rows
	if n == 0 {
		return nil, NewMat(0, 0), nil
	}
	z := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e, wantVectors)
	if err := tql2(z, d, e, wantVectors); err != nil {
		return nil, nil, err
	}
	// Sort ascending, permuting eigenvector columns along.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] < d[idx[j]] })
	values = make([]float64, n)
	for k, p := range idx {
		values[k] = d[p]
	}
	if !wantVectors {
		return values, nil, nil
	}
	vecs = NewMat(n, n)
	for k, p := range idx {
		for i := 0; i < n; i++ {
			vecs.Set(i, k, z.At(i, p))
		}
	}
	return values, vecs, nil
}

// EigenvaluesSym returns the eigenvalues of symmetric a in ascending order.
func EigenvaluesSym(a *Mat) ([]float64, error) {
	v, _, err := EigenSym(a, false)
	return v, err
}

// ExtremeEigenvalues returns the smallest and largest eigenvalue of
// symmetric a.
func ExtremeEigenvalues(a *Mat) (min, max float64, err error) {
	v, err := EigenvaluesSym(a)
	if err != nil {
		return 0, 0, err
	}
	return v[0], v[len(v)-1], nil
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form using
// Householder reflections. On return d holds the diagonal and e the
// subdiagonal (e[0] == 0). If wantVectors, z accumulates the orthogonal
// transformation; otherwise z's contents are scratch.
func tred2(z *Mat, d, e []float64, wantVectors bool) {
	n := z.Rows
	for i := 0; i < n; i++ {
		d[i] = z.At(n-1, i)
	}
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var scale, h float64
		for k := 0; k <= l; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[l]
			for j := 0; j <= l; j++ {
				d[j] = z.At(l, j)
				z.Set(i, j, 0)
				z.Set(j, i, 0)
			}
		} else {
			for k := 0; k <= l; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[l]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[l] = f - g
			for j := 0; j <= l; j++ {
				e[j] = 0
			}
			for j := 0; j <= l; j++ {
				f = d[j]
				z.Set(j, i, f)
				g = e[j] + z.At(j, j)*f
				for k := j + 1; k <= l; k++ {
					g += z.At(k, j) * d[k]
					e[k] += z.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j <= l; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j <= l; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j <= l; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-f*e[k]-g*d[k])
				}
				d[j] = z.At(l, j)
				z.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	for i := 0; i < n-1; i++ {
		z.Set(n-1, i, z.At(i, i))
		z.Set(i, i, 1)
		l := i + 1
		if d[l] != 0 {
			for k := 0; k <= i; k++ {
				d[k] = z.At(k, l) / d[l]
			}
			for j := 0; j <= i; j++ {
				var g float64
				for k := 0; k <= i; k++ {
					g += z.At(k, l) * z.At(k, j)
				}
				for k := 0; k <= i; k++ {
					z.Set(k, j, z.At(k, j)-g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			z.Set(k, l, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = z.At(n-1, j)
		z.Set(n-1, j, 0)
	}
	z.Set(n-1, n-1, 1)
	e[0] = 0
	if !wantVectors {
		return
	}
	// Note: this tred2 variant always accumulates transformations; the flag
	// exists so callers can skip using the vectors, and lets a cheaper
	// reduction be swapped in later without changing call sites.
}

// tql2 finds the eigenvalues (and vectors, accumulated in z) of a symmetric
// tridiagonal matrix given by diagonal d and subdiagonal e via the implicit
// QL method. Ported from EISPACK.
func tql2(z *Mat, d, e []float64, wantVectors bool) error {
	n := z.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64 || math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return errors.New("linalg: tql2 failed to converge after 50 iterations")
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if wantVectors {
					for k := 0; k < n; k++ {
						f := z.At(k, i+1)
						z.Set(k, i+1, s*z.At(k, i)+c*f)
						z.Set(k, i, c*z.At(k, i)-s*f)
					}
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// JacobiEigenSym is an independent cyclic-Jacobi symmetric eigensolver used
// to cross-check EigenSym in tests. It returns eigenvalues ascending and
// eigenvectors as columns.
func JacobiEigenSym(a *Mat) (values []float64, vecs *Mat, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: JacobiEigenSym requires a square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := NewMat(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-24*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (m.At(q, q) - m.At(p, p)) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp := m.At(k, p)
					akq := m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := m.At(p, k)
					aqk := m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] < values[idx[j]] })
	sorted := make([]float64, n)
	vecs = NewMat(n, n)
	for k, p := range idx {
		sorted[k] = values[p]
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, p))
		}
	}
	return sorted, vecs, nil
}

// SplitPSD decomposes symmetric a into its NSD and PSD parts via
// eigendecomposition: a = minus + plus where minus = QΛ⁻Qᵀ collects the
// negative eigenvalues and plus = QΛ⁺Qᵀ the non-negative ones (Lemma 2 of
// the AutoMon paper).
func SplitPSD(a *Mat) (minus, plus *Mat, err error) {
	values, q, err := EigenSym(a, true)
	if err != nil {
		return nil, nil, err
	}
	n := a.Rows
	minus = NewMat(n, n)
	plus = NewMat(n, n)
	for k := 0; k < n; k++ {
		lam := values[k]
		dst := plus
		if lam < 0 {
			dst = minus
		}
		for i := 0; i < n; i++ {
			qik := q.At(i, k)
			if qik == 0 {
				continue
			}
			row := dst.Row(i)
			for j := 0; j < n; j++ {
				row[j] += lam * qik * q.At(j, k)
			}
		}
	}
	minus.Symmetrize()
	plus.Symmetrize()
	return minus, plus, nil
}
