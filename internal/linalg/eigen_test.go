package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randSym returns a random symmetric d×d matrix with entries ~N(0, scale²).
func randSym(rng *rand.Rand, d int, scale float64) *Mat {
	m := NewMat(d, d)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := rng.NormFloat64() * scale
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// reconstruct builds QΛQᵀ from an eigendecomposition.
func reconstruct(values []float64, q *Mat) *Mat {
	n := len(values)
	out := NewMat(n, n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += values[k] * q.At(i, k) * q.At(j, k)
			}
		}
	}
	return out
}

func TestEigenSymDiagonal(t *testing.T) {
	m := NewMat(3, 3)
	m.Set(0, 0, 3)
	m.Set(1, 1, -1)
	m.Set(2, 2, 2)
	v, _, err := EigenSym(m, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i := range want {
		if !almostEq(v[i], want[i], 1e-12) {
			t.Fatalf("eigenvalues = %v, want %v", v, want)
		}
	}
}

func TestEigenSym2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewMat(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	v, q, err := EigenSym(m, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v[0], 1, 1e-12) || !almostEq(v[1], 3, 1e-12) {
		t.Fatalf("eigenvalues = %v", v)
	}
	if !Equalish(reconstruct(v, q), m, 1e-10) {
		t.Fatal("QΛQᵀ does not reconstruct the matrix")
	}
}

func TestEigenSymReconstructsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 2, 3, 5, 10, 30} {
		for trial := 0; trial < 5; trial++ {
			m := randSym(rng, d, 2)
			v, q, err := EigenSym(m, true)
			if err != nil {
				t.Fatalf("d=%d: %v", d, err)
			}
			if !Equalish(reconstruct(v, q), m, 1e-8) {
				t.Fatalf("d=%d trial %d: reconstruction failed", d, trial)
			}
			for i := 1; i < d; i++ {
				if v[i] < v[i-1] {
					t.Fatalf("eigenvalues not ascending: %v", v)
				}
			}
		}
	}
}

func TestEigenSymOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randSym(rng, 12, 1)
	_, q, err := EigenSym(m, true)
	if err != nil {
		t.Fatal(err)
	}
	n := 12
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += q.At(i, a) * q.At(i, b)
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if !almostEq(dot, want, 1e-9) {
				t.Fatalf("columns %d,%d not orthonormal: dot=%v", a, b, dot)
			}
		}
	}
}

func TestEigenSymAgreesWithJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		d := 1 + rng.Intn(15)
		m := randSym(rng, d, 3)
		v1, err := EigenvaluesSym(m)
		if err != nil {
			t.Fatal(err)
		}
		v2, _, err := JacobiEigenSym(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v1 {
			if !almostEq(v1[i], v2[i], 1e-8) {
				t.Fatalf("d=%d: QL %v vs Jacobi %v", d, v1, v2)
			}
		}
	}
}

func TestEigenSymTraceAndDeterminantInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		d := 1 + rng.Intn(8)
		m := randSym(rng, d, 1)
		v, err := EigenvaluesSym(m)
		if err != nil {
			t.Fatal(err)
		}
		var trace, sumv float64
		for i := 0; i < d; i++ {
			trace += m.At(i, i)
			sumv += v[i]
		}
		if !almostEq(trace, sumv, 1e-9) {
			t.Fatalf("trace %v != eigenvalue sum %v", trace, sumv)
		}
	}
}

func TestExtremeEigenvalues(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 0, -4)
	m.Set(1, 1, 7)
	lo, hi, err := ExtremeEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	if lo != -4 || hi != 7 {
		t.Fatalf("extremes = %v, %v", lo, hi)
	}
}

func TestEigenSymRejectsNonSquare(t *testing.T) {
	if _, _, err := EigenSym(NewMat(2, 3), false); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestEigenSymEmpty(t *testing.T) {
	v, _, err := EigenSym(NewMat(0, 0), true)
	if err != nil || len(v) != 0 {
		t.Fatalf("empty matrix: v=%v err=%v", v, err)
	}
}

func TestSplitPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		d := 1 + rng.Intn(10)
		m := randSym(rng, d, 2)
		minus, plus, err := SplitPSD(m)
		if err != nil {
			t.Fatal(err)
		}
		// minus + plus == m
		sum := NewMat(d, d)
		for i := range sum.Data {
			sum.Data[i] = minus.Data[i] + plus.Data[i]
		}
		if !Equalish(sum, m, 1e-8) {
			t.Fatal("H- + H+ != H")
		}
		// plus is PSD, minus is NSD
		vp, err := EigenvaluesSym(plus)
		if err != nil {
			t.Fatal(err)
		}
		if vp[0] < -1e-8 {
			t.Fatalf("H+ not PSD: min eig %v", vp[0])
		}
		vm, err := EigenvaluesSym(minus)
		if err != nil {
			t.Fatal(err)
		}
		if vm[len(vm)-1] > 1e-8 {
			t.Fatalf("H- not NSD: max eig %v", vm[len(vm)-1])
		}
	}
}

func TestMatQuadForm(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 3)
	// [1 1]·M·[1 1]ᵀ = 1+2+2+3 = 8
	if got := m.QuadForm([]float64{1, 1}); got != 8 {
		t.Fatalf("QuadForm = %v", got)
	}
}

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 1, 2)
	m.Set(1, 0, 4)
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize = %v", m.Data)
	}
}

func TestEigenLargeWellConditioned(t *testing.T) {
	// Construct a matrix with known spectrum: Q diag(1..d) Qᵀ from a random
	// orthogonal Q (obtained by eigendecomposing a random symmetric matrix).
	rng := rand.New(rand.NewSource(3))
	d := 60
	_, q, err := EigenSym(randSym(rng, d, 1), true)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, d)
	for i := range want {
		want[i] = float64(i + 1)
	}
	m := reconstruct(want, q)
	m.Symmetrize()
	got, err := EigenvaluesSym(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("eig[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
