package linalg

import (
	"errors"
	"math"
	"math/bits"
)

// Acc is an exact fixed-point superaccumulator for float64 summation. Every
// finite float64 is an integer multiple of 2^-1074, so a wide-enough
// fixed-point register can hold any finite sum of them without rounding;
// addition of integers is associative and commutative, so the accumulated
// value — and therefore Round's correctly rounded float64 — depends only on
// the multiset of added values, never on the order or grouping of the
// additions.
//
// That order-independence is what makes hierarchical coordination sound at
// the bit level (DESIGN.md "Partial-average soundness"): a tree of
// sub-coordinators can sum its leaves' partial accumulators in any shape and
// obtain exactly the accumulator — and exactly the reference point x̄ — a
// flat coordinator computes over the same vectors.
//
// The register covers the full finite float64 range: bit i of the register
// weighs 2^(i-1074), and 32-bit limbs are carried lazily in int64 slots so
// about 2^31 additions fit between normalizations (Add normalizes long
// before that). Non-finite inputs are tracked out of band with IEEE
// semantics: any NaN — or infinities of both signs — poisons the sum to NaN,
// otherwise an infinity of one sign dominates.
//
// The zero Acc is an empty sum, ready for use.
type Acc struct {
	// limb holds the register in radix 2^32, least significant first, as a
	// lazily-carried two's-complement value: limb[i] weighs 2^(32i-1074).
	limb [accLimbs]int64
	// adds counts additions since the last carry normalization.
	adds int
	// posInf/negInf/nan track non-finite inputs out of band.
	posInf, negInf int
	nan            bool
}

const (
	// accLimbs covers 2^-1074 .. 2^1024 (2098 bits → 66 limbs) plus one limb
	// of carry headroom.
	accLimbs = 67
	// accNormalizeEvery bounds lazy carries: each Add contributes < 2^32 to a
	// limb slot, so normalizing every 2^28 additions keeps every slot far
	// from int64 overflow even when merges stack accumulators.
	accNormalizeEvery = 1 << 28
)

// Reset restores the empty sum.
func (a *Acc) Reset() { *a = Acc{} }

// Add folds one float64 into the accumulator.
func (a *Acc) Add(x float64) {
	b := math.Float64bits(x)
	exp := int(b>>52) & 0x7FF
	mant := b & (1<<52 - 1)
	if exp == 0x7FF {
		if mant != 0 {
			a.nan = true
		} else if b>>63 == 0 {
			a.posInf++
		} else {
			a.negInf++
		}
		return
	}
	if exp == 0 {
		if mant == 0 {
			return // ±0 contributes nothing
		}
		exp = 1 // subnormal: no implied bit, same exponent bias
	} else {
		mant |= 1 << 52
	}
	// The value is mant·2^(exp-1075); register bit 0 weighs 2^-1074, so the
	// mantissa's least significant bit lands at register bit exp-1 ≥ 0.
	q := exp - 1
	idx, sh := q>>5, uint(q&31)
	hi, lo := bits.Mul64(mant, 1<<sh) // exact: ≤ 53+31 bits
	if b>>63 == 0 {
		a.limb[idx] += int64(lo & 0xFFFFFFFF)
		a.limb[idx+1] += int64(lo >> 32)
		a.limb[idx+2] += int64(hi)
	} else {
		a.limb[idx] -= int64(lo & 0xFFFFFFFF)
		a.limb[idx+1] -= int64(lo >> 32)
		a.limb[idx+2] -= int64(hi)
	}
	a.adds++
	if a.adds >= accNormalizeEvery {
		a.normalize()
	}
}

// Merge folds another accumulator into a. The other accumulator is not
// modified. Merging is exact, so any tree of merges over the same leaf
// accumulators yields the same final sum.
func (a *Acc) Merge(b *Acc) {
	for i := range a.limb {
		a.limb[i] += b.limb[i]
	}
	a.adds += b.adds + 1
	if a.adds >= accNormalizeEvery {
		a.normalize()
	}
	a.posInf += b.posInf
	a.negInf += b.negInf
	a.nan = a.nan || b.nan
}

// normalize propagates lazy carries so every limb lies in [0, 2^32), with the
// overall sign carried in two's complement across the register. The value is
// unchanged.
func (a *Acc) normalize() {
	var carry int64
	for i := range a.limb {
		v := a.limb[i] + carry
		a.limb[i] = v & 0xFFFFFFFF
		carry = v >> 32 // arithmetic shift: floors negatives
	}
	// carry is now the sign extension (0 or -1); fold it back into the top
	// limb so the register remains a pure two's-complement window. The top
	// limb is headroom: finite sums never reach it with data bits.
	a.limb[accLimbs-1] += carry << 32
	a.adds = 0
}

// sign reports the register's sign after normalization: -1, 0 or +1.
func (a *Acc) signNormalized() int {
	top := a.limb[accLimbs-1]
	if top < 0 || top>>31 != 0 { // two's-complement negative window
		return -1
	}
	for i := accLimbs - 1; i >= 0; i-- {
		if a.limb[i] != 0 {
			return 1
		}
	}
	return 0
}

// magnitude negates a normalized-negative register in place, returning the
// magnitude limbs of the absolute value in [0, 2^32) each.
func (a *Acc) magnitude(neg bool) {
	if !neg {
		return
	}
	var borrow int64
	for i := range a.limb {
		v := -a.limb[i] + borrow
		a.limb[i] = v & 0xFFFFFFFF
		borrow = v >> 32
	}
}

// Round returns the correctly rounded (nearest-even) float64 value of the
// sum. The accumulator itself is left normalized and unchanged in value.
func (a *Acc) Round() float64 {
	if a.nan || (a.posInf > 0 && a.negInf > 0) {
		return math.NaN()
	}
	if a.posInf > 0 {
		return math.Inf(1)
	}
	if a.negInf > 0 {
		return math.Inf(-1)
	}
	a.normalize()
	sg := a.signNormalized()
	if sg == 0 {
		return 0
	}
	// Work on a magnitude copy so the accumulator stays reusable.
	m := *a
	m.magnitude(sg < 0)
	// Locate the most significant bit.
	top := accLimbs - 1
	for top >= 0 && m.limb[top] == 0 {
		top--
	}
	p := 32*top + bits.Len64(uint64(m.limb[top])) - 1 // register bit index of the MSB
	mantBits := func(i int) uint64 {
		// Register bit i, or 0 below the register.
		if i < 0 {
			return 0
		}
		return (uint64(m.limb[i>>5]) >> uint(i&31)) & 1
	}
	if p <= 51 {
		// Subnormal range: at most 52 data bits above the register floor, all
		// exactly representable.
		var mant uint64
		for i := p; i >= 0; i-- {
			mant = mant<<1 | mantBits(i)
		}
		return ldexpSigned(mant, -1074, sg)
	}
	// Normal path: take 53 bits p..p-52, round to nearest-even on the rest.
	var mant uint64
	for i := p; i > p-53; i-- {
		mant = mant<<1 | mantBits(i)
	}
	guard := mantBits(p - 53)
	sticky := uint64(0)
	if guard == 1 {
		// Sticky = any set bit below the guard.
		for i := 0; i <= (p-54)>>5 && i < accLimbs; i++ {
			w := uint64(m.limb[i])
			if 32*i+31 > p-54 {
				w &= (1 << uint((p-54)-32*i+1)) - 1
			}
			sticky |= w
		}
		if sticky != 0 || mant&1 == 1 {
			mant++
			if mant == 1<<53 {
				mant >>= 1
				p++
			}
		}
	}
	e := p - 52 - 1074
	if e > 1023-52 {
		return math.Inf(sg)
	}
	return ldexpSigned(mant, e, sg)
}

// ldexpSigned assembles sign·mant·2^e; mant ≤ 2^53 so the product is exact
// whenever it is representable.
func ldexpSigned(mant uint64, e, sg int) float64 {
	v := math.Ldexp(float64(mant), e)
	if sg < 0 {
		return -v
	}
	return v
}

// --- wire form ------------------------------------------------------------

// Acc wire form: a flags byte, then for finite sums a sparse window of
// magnitude limbs (offset, count, then count little-endian u32 limbs). The
// window form is canonical — produced from a normalized sign-magnitude
// register — so equal sums serialize identically regardless of how they were
// accumulated.
const (
	accFlagNeg  = 1 << 0
	accFlagPInf = 1 << 1
	accFlagNInf = 1 << 2
	accFlagNaN  = 1 << 3
)

// ErrAccCorrupt is returned when decoding a malformed accumulator wire form.
var ErrAccCorrupt = errors.New("linalg: corrupt accumulator encoding")

// AppendBinary appends the canonical wire form of the sum to dst.
func (a *Acc) AppendBinary(dst []byte) []byte {
	if a.nan || (a.posInf > 0 && a.negInf > 0) {
		return append(dst, accFlagNaN)
	}
	if a.posInf > 0 {
		return append(dst, accFlagPInf)
	}
	if a.negInf > 0 {
		return append(dst, accFlagNInf)
	}
	a.normalize()
	sg := a.signNormalized()
	m := *a
	m.magnitude(sg < 0)
	lo, hi := 0, accLimbs-1
	for lo < accLimbs && m.limb[lo] == 0 {
		lo++
	}
	for hi >= lo && m.limb[hi] == 0 {
		hi--
	}
	var flags byte
	if sg < 0 {
		flags |= accFlagNeg
	}
	dst = append(dst, flags)
	if hi < lo { // zero
		dst = append(dst, 0, 0)
		return dst
	}
	n := hi - lo + 1
	dst = append(dst, byte(lo), byte(n))
	for i := lo; i <= hi; i++ {
		v := uint32(m.limb[i])
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}

// DecodeAcc parses one accumulator wire form from buf, returning the
// accumulator and the remaining bytes. Malformed input — truncation, window
// out of range, or trailing garbage limbs beyond the register — returns
// ErrAccCorrupt and never panics.
func DecodeAcc(buf []byte) (*Acc, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, ErrAccCorrupt
	}
	flags := buf[0]
	buf = buf[1:]
	a := &Acc{}
	switch {
	case flags&accFlagNaN != 0:
		a.nan = true
		return a, buf, nil
	case flags&accFlagPInf != 0:
		a.posInf = 1
		return a, buf, nil
	case flags&accFlagNInf != 0:
		a.negInf = 1
		return a, buf, nil
	}
	if len(buf) < 2 {
		return nil, nil, ErrAccCorrupt
	}
	lo, n := int(buf[0]), int(buf[1])
	buf = buf[2:]
	if n == 0 {
		if flags&accFlagNeg != 0 {
			// Canonical zero is non-negative; a signed zero window is forged.
			return nil, nil, ErrAccCorrupt
		}
		return a, buf, nil
	}
	if lo >= accLimbs || n > accLimbs-lo || len(buf) < 4*n {
		return nil, nil, ErrAccCorrupt
	}
	neg := flags&accFlagNeg != 0
	for i := 0; i < n; i++ {
		v := uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 | uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24
		if neg {
			a.limb[lo+i] = -int64(v)
		} else {
			a.limb[lo+i] = int64(v)
		}
	}
	a.adds = 1
	return a, buf[4*n:], nil
}

// AddVec folds vector x element-wise into the accumulator slice. The slice
// length must match the vector dimension.
func AddVec(acc []Acc, x []float64) {
	for j := range acc {
		acc[j].Add(x[j])
	}
}

// MergeVec folds accumulator slice b element-wise into a.
func MergeVec(a, b []Acc) {
	for j := range a {
		a[j].Merge(&b[j])
	}
}
