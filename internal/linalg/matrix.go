package linalg

import "fmt"

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMat returns a zero r×c matrix.
func NewMat(r, c int) *Mat {
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shares storage).
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec stores m·v into dst and returns dst. dst must not alias v.
func (m *Mat) MulVec(dst, v []float64) []float64 {
	if len(v) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec shape %dx%d with v[%d] dst[%d]", m.Rows, m.Cols, len(v), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), v)
	}
	return dst
}

// QuadForm returns vᵀ·m·v for a square matrix m.
func (m *Mat) QuadForm(v []float64) float64 {
	if m.Rows != m.Cols || len(v) != m.Rows {
		panic("linalg: QuadForm needs square matrix matching v")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += v[i] * Dot(m.Row(i), v)
	}
	return s
}

// Symmetrize overwrites m with (m + mᵀ)/2. m must be square.
func (m *Mat) Symmetrize() {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MaxAbs returns the largest absolute entry of m.
func (m *Mat) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Equalish reports whether all entries of a and b agree within tol.
func Equalish(a, b *Mat, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		d := v - b.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}
