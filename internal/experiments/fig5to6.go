package experiments

import (
	"automon/internal/baselines"
	"automon/internal/core"
	"automon/internal/sim"
)

// tradeoffPoint is one (messages, max error) point of a Figure 5 curve.
func addTradeoffRow(t *Table, fn, algo string, knob float64, res *sim.Result) {
	t.Add(fn, algo, knob, res.Messages, res.MaxErr, res.P99Err, res.PayloadBytes)
}

var tradeoffHeader = []string{"function", "algorithm", "eps_or_period", "messages", "max_err", "p99_err", "payload_bytes"}

// Fig5Tradeoff reproduces Figure 5: the error–communication tradeoff of
// AutoMon vs CB (inner product only), Periodic and Centralization on the
// four evaluation functions. Each row is one monitoring run.
func Fig5Tradeoff(o Options) (*Table, error) {
	t := &Table{Name: "fig5: error-communication tradeoff", Header: tradeoffHeader}

	periods := []int{1, 2, 5, 10, 25, 50, 100}

	runFamily := func(w *Workload, epss []float64, withCB bool) error {
		for _, eps := range epss {
			res, err := w.run(sim.AutoMon, eps, 0, false)
			if err != nil {
				return err
			}
			addTradeoffRow(t, w.Name, "automon", eps, res)
		}
		if withCB {
			half := w.F.Dim() / 2
			for _, eps := range epss {
				res, err := sim.Run(sim.Config{
					F: w.F, Data: w.Data, Algorithm: sim.AutoMon,
					Core: core.Config{Epsilon: eps, ZoneBuilder: baselines.ConvexBoundInnerProduct(half)},
				})
				if err != nil {
					return err
				}
				addTradeoffRow(t, w.Name, "cb", eps, res)
			}
		}
		// Periodic measures error against the middle ε for missed-round
		// accounting; its curve is period-driven.
		midEps := epss[len(epss)/2]
		for _, p := range periods {
			res, err := w.run(sim.Periodic, midEps, p, false)
			if err != nil {
				return err
			}
			addTradeoffRow(t, w.Name, "periodic", float64(p), res)
		}
		res, err := w.run(sim.Centralization, midEps, 0, false)
		if err != nil {
			return err
		}
		addTradeoffRow(t, w.Name, "centralization", 0, res)
		return nil
	}

	if err := runFamily(InnerProductWorkload(o, 40, 10),
		[]float64{0.05, 0.1, 0.2, 0.4, 0.8}, true); err != nil {
		return nil, err
	}
	if err := runFamily(QuadraticWorkload(o, 40, 10),
		[]float64{0.02, 0.03, 0.05, 0.1, 0.2}, false); err != nil {
		return nil, err
	}
	if err := runFamily(KLDWorkload(o, 20, 12, 4000),
		[]float64{0.005, 0.01, 0.02, 0.04, 0.08}, false); err != nil {
		return nil, err
	}
	dnn, err := DNNWorkload(o)
	if err != nil {
		return nil, err
	}
	if err := runFamily(dnn, []float64{0.002, 0.005, 0.01, 0.02, 0.04}, false); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig6ErrorProfile reproduces Figure 6: AutoMon's max and 99th-percentile
// error as a percentage of the requested bound ε for KLD (guaranteed) and
// the intrusion DNN (no guarantee).
func Fig6ErrorProfile(o Options) (*Table, error) {
	t := &Table{
		Name:   "fig6: error relative to bound",
		Header: []string{"function", "eps", "messages", "max_pct_of_bound", "p99_pct_of_bound", "central_messages"},
	}
	add := func(w *Workload, epss []float64) error {
		central, err := w.run(sim.Centralization, epss[0], 0, false)
		if err != nil {
			return err
		}
		for _, eps := range epss {
			res, err := w.run(sim.AutoMon, eps, 0, false)
			if err != nil {
				return err
			}
			t.Add(w.Name, eps, res.Messages, 100*res.MaxErr/eps, 100*res.P99Err/eps, central.Messages)
		}
		return nil
	}
	if err := add(KLDWorkload(o, 20, 12, 4000), []float64{0.005, 0.01, 0.02, 0.04, 0.08}); err != nil {
		return nil, err
	}
	dnn, err := DNNWorkload(o)
	if err != nil {
		return nil, err
	}
	if err := add(dnn, []float64{0.002, 0.005, 0.01, 0.02, 0.04}); err != nil {
		return nil, err
	}
	return t, nil
}
