package experiments

import (
	"time"

	"automon/internal/core"
	"automon/internal/linalg"
)

// RuntimeTable reproduces the §4.4 runtime measurements: per-update node
// check time and coordinator full-sync time as the dimension grows, for an
// ADCD-X function (KLD) and an ADCD-E function (inner product).
func RuntimeTable(o Options) (*Table, error) {
	t := &Table{
		Name:   "sec4.4: node and coordinator runtime",
		Header: []string{"function", "dim", "node_update_us", "full_sync_ms", "method"},
	}
	dims := []int{10, 20, 40, 100, 200}
	if o.Quick {
		dims = []int{10, 20, 40, 100}
	}
	for _, d := range dims {
		for _, mk := range []struct {
			name string
			eps  float64
			wl   func() (*Workload, error)
		}{
			{"kld", 0.02, func() (*Workload, error) { return KLDWorkload(o, d, 12, 1000), nil }},
			{"inner-product", 0.2, func() (*Workload, error) { return InnerProductWorkload(o, d, 12), nil }},
		} {
			w, err := mk.wl()
			if err != nil {
				return nil, err
			}
			nodeUS, syncMS, method, err := measureRuntime(w, mk.eps)
			if err != nil {
				return nil, err
			}
			t.Add(mk.name, d, nodeUS, syncMS, method)
		}
	}
	return t, nil
}

// measureRuntime times a node constraint check and a coordinator full sync
// for one workload.
func measureRuntime(w *Workload, eps float64) (nodeUS, syncMS float64, method string, err error) {
	ds := w.Data
	n := ds.Nodes
	windows := make([]struct{ v []float64 }, n)
	win := make([]interface {
		Push([]float64)
		Vector() []float64
	}, n)
	for i := range win {
		win[i] = ds.NewWindow()
	}
	for r := 0; r < ds.FillRounds(); r++ {
		for i := range win {
			win[i].Push(ds.FillSample(r, i))
		}
	}
	for i := range windows {
		windows[i].v = linalg.Clone(win[i].Vector())
	}

	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = core.NewNode(i, w.F)
		nodes[i].SetData(windows[i].v)
	}
	comm := &directNodeComm{nodes: nodes}
	r := w.FixedR
	if r == 0 {
		r = 0.05
	}
	coord := core.NewCoordinator(w.F, n, core.Config{Epsilon: eps, R: r, Decomp: w.Decomp}, comm)

	// Full-sync time: average over a few syncs (the first includes the
	// one-time ADCD-E eigendecomposition, matching the paper's setup cost).
	syncs := 3
	//automon:allow determinism wall-clock runtime is this experiment's measured output (fig 10)
	start := time.Now()
	if err := coord.Init(); err != nil {
		return 0, 0, "", err
	}
	for k := 1; k < syncs; k++ {
		if err := coord.HandleViolation(&core.Violation{
			NodeID: 0, Kind: core.ViolationFaulty, X: windows[0].v,
		}); err != nil {
			return 0, 0, "", err
		}
	}
	//automon:allow determinism wall-clock runtime is this experiment's measured output (fig 10)
	syncMS = float64(time.Since(start).Microseconds()) / 1000 / float64(syncs)

	// Node update time: re-check constraints on the same vector many times.
	const checks = 2000
	//automon:allow determinism wall-clock runtime is this experiment's measured output (fig 10)
	start = time.Now()
	for k := 0; k < checks; k++ {
		nodes[1].UpdateData(windows[1].v)
	}
	//automon:allow determinism wall-clock runtime is this experiment's measured output (fig 10)
	nodeUS = float64(time.Since(start).Nanoseconds()) / 1000 / checks
	return nodeUS, syncMS, coord.Method().String(), nil
}

// directNodeComm is a zero-overhead in-memory NodeComm for timing runs.
type directNodeComm struct{ nodes []*core.Node }

func (c *directNodeComm) RequestData(id int) []float64    { return c.nodes[id].LocalVector() }
func (c *directNodeComm) SendSync(id int, m *core.Sync)   { c.nodes[id].ApplySync(m) }
func (c *directNodeComm) SendSlack(id int, m *core.Slack) { c.nodes[id].ApplySlack(m) }
