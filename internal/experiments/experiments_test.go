package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"automon/internal/sim"
)

// tinyOpts shrinks everything far below even Quick size for unit tests.
func tinyOpts() Options { return Options{Quick: true, Seed: 1} }

func TestTableCSV(t *testing.T) {
	tab := &Table{Name: "demo", Header: []string{"a", "b"}}
	tab.Add(1, 2.5)
	tab.Add("x", 3)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# demo\na,b\n1,2.5\nx,3\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFig1MatchesPaperEndpoints(t *testing.T) {
	tab, err := Fig1SineZones()
	if err != nil {
		t.Fatal(err)
	}
	get := func(region string) (lo, hi float64) {
		for _, r := range tab.Rows {
			if r[0] == region {
				lo, _ = strconv.ParseFloat(r[1], 64)
				hi, _ = strconv.ParseFloat(r[2], 64)
				return lo, hi
			}
		}
		t.Fatalf("region %q missing", region)
		return 0, 0
	}
	// Paper Figure 1 axis labels: admissible [0.927, 2.214], convex zone
	// [0.938, 2.203], concave zone [1.1206, 2.0210].
	checks := []struct {
		region string
		lo, hi float64
	}{
		{"admissible", 0.927, 2.214},
		{"convex-difference", 0.938, 2.203},
		{"concave-difference", 1.121, 2.020},
	}
	for _, c := range checks {
		lo, hi := get(c.region)
		if math.Abs(lo-c.lo) > 5e-3 || math.Abs(hi-c.hi) > 5e-3 {
			t.Errorf("%s = [%v, %v], paper [%v, %v]", c.region, lo, hi, c.lo, c.hi)
		}
	}
}

func TestNamedWorkloadRegistry(t *testing.T) {
	o := tinyOpts()
	for _, name := range []string{"inner-product", "inner-product-20", "quadratic", "kld", "rosenbrock"} {
		w, err := NamedWorkload(name, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.F == nil || w.Data == nil {
			t.Fatalf("%s: incomplete workload", name)
		}
	}
	w, err := NamedWorkload("kld-40", o)
	if err != nil {
		t.Fatal(err)
	}
	if w.F.Dim() != 40 {
		t.Fatalf("kld-40 dim = %d", w.F.Dim())
	}
	if _, err := NamedWorkload("nope", o); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadsRunnable(t *testing.T) {
	// Every cheap workload must complete a short AutoMon run within its
	// error regime; this is the integration smoke test for the experiment
	// plumbing.
	o := tinyOpts()
	cases := []struct {
		w   *Workload
		eps float64
	}{
		{InnerProductWorkload(o, 8, 4), 0.3},
		{QuadraticWorkload(o, 8, 4), 0.1},
	}
	for _, c := range cases {
		c.w.Data = c.w.Data.Slice(0, 60)
		res, err := c.w.run(sim.AutoMon, c.eps, 0, false)
		if err != nil {
			t.Fatalf("%s: %v", c.w.Name, err)
		}
		if res.Rounds != 60 {
			t.Fatalf("%s: rounds = %d", c.w.Name, res.Rounds)
		}
		if res.MaxErr > c.eps+1e-9 {
			t.Fatalf("%s: constant-Hessian workload broke the bound: %v > %v", c.w.Name, res.MaxErr, c.eps)
		}
	}
}

func TestReplayDataShape(t *testing.T) {
	o := tinyOpts()
	w := RosenbrockWorkload(o, 3, 1000)
	w.Data = w.Data.Slice(0, 40)
	data, err := replayData(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 41 { // initial snapshot + one per round
		t.Fatalf("replay rounds = %d, want 41", len(data))
	}
	if len(data[0]) != 3 || len(data[0][0]) != 2 {
		t.Fatalf("replay shape wrong: %dx%d", len(data[0]), len(data[0][0]))
	}
}

func TestSaddleAblationGeometry(t *testing.T) {
	w := saddleAblationWorkload(tinyOpts())
	// Nodes 2 and 3 drift along f's zero-level set; node 0/1 stay near 0.
	last := w.Data.Sample(w.Data.Rounds-1, 2)
	if math.Abs(last[0]-last[1]) > 0.05 {
		t.Fatalf("node 2 should ride the diagonal, got %v", last)
	}
	f := w.F
	if v := f.Value(last); math.Abs(v) > 0.1 {
		t.Fatalf("diagonal point has f = %v, want ≈ 0", v)
	}
}

func TestOptionsRounds(t *testing.T) {
	q := Options{Quick: true}
	if got := q.rounds(1000); got != 500 {
		t.Fatalf("quick rounds(1000) = %d", got)
	}
	if got := q.rounds(30000); got != 3000 {
		t.Fatalf("quick rounds(30000) = %d", got)
	}
	f := Options{}
	if got := f.rounds(1000); got != 1000 {
		t.Fatalf("full rounds(1000) = %d", got)
	}
}

func TestSumHeader(t *testing.T) {
	if len(tradeoffHeader) != 7 || !strings.Contains(strings.Join(tradeoffHeader, ","), "messages") {
		t.Fatal("tradeoff header drifted; fix sumMessages consumers")
	}
}
