package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// NamedWorkload resolves a workload by name for the CLI tools. Recognized
// names: inner-product[-d], quadratic[-d], kld[-d], mlp-d, dnn, rosenbrock,
// intrusion-entropy, regime-rosenbrock, sketch-f2 (shape from
// Options.SketchRows/SketchCols).
// The trailing -d sets the dimension (e.g. kld-40). Both the coordinator and
// node processes of a distributed run construct the same workload from the
// same name and seed, so trained models and streams agree bit-for-bit.
func NamedWorkload(name string, o Options) (*Workload, error) {
	base := name
	dim := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if d, err := strconv.Atoi(name[i+1:]); err == nil {
			base = name[:i]
			dim = d
		}
	}
	switch base {
	case "inner-product":
		if dim == 0 {
			dim = 40
		}
		return InnerProductWorkload(o, dim, 10), nil
	case "quadratic":
		if dim == 0 {
			dim = 40
		}
		return QuadraticWorkload(o, dim, 10), nil
	case "kld":
		if dim == 0 {
			dim = 20
		}
		return KLDWorkload(o, dim, 12, 4000), nil
	case "mlp":
		if dim == 0 {
			dim = 40
		}
		return MLPWorkload(o, dim, 10)
	case "dnn":
		return DNNWorkload(o)
	case "rosenbrock":
		return RosenbrockWorkload(o, 10, 1000), nil
	case "intrusion-entropy":
		return IntrusionEntropyWorkload(o, 9, 2000), nil
	case "regime-rosenbrock":
		return RegimeShiftWorkload(o, 6, 1500), nil
	case "sketch-f2":
		return SketchF2Workload(o, 5, 400), nil
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", name)
}
