// Package experiments regenerates every table and figure of the AutoMon
// paper's evaluation (§4) on the in-repo substrates. Each FigN function
// returns machine-readable tables whose rows correspond to the series
// plotted in the paper; cmd/automon-bench renders them as CSV and the
// repository's bench_test.go wires them into `go test -bench`.
//
// Absolute values differ from the paper (synthetic stand-ins replace the
// KDD-99 and Beijing datasets, and round counts are scaled down to
// laptop-friendly sizes), but the shapes under comparison — who wins, by
// what factor, where the curves cross — are the reproduction targets;
// EXPERIMENTS.md records paper-vs-measured for each figure.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strconv"
	"sync"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/nn"
	"automon/internal/obs"
	"automon/internal/sim"
	"automon/internal/stream"
)

// Options scale the experiment suite.
type Options struct {
	// Quick shrinks round counts and model sizes so the full suite runs in
	// minutes; the full-size variants follow the paper's parameters where
	// computationally sensible.
	Quick bool
	// Seed drives every generator and optimizer for reproducibility.
	Seed int64
	// Telemetry, when set, receives a RunSnapshot (result aggregates plus a
	// per-run metric registry snapshot) for every simulated run the suite
	// executes; automon-bench serializes it with -telemetry.
	Telemetry *Telemetry
	// Workers bounds the goroutines running independent runs inside each
	// figure sweep, and is forwarded to the core layer as Config.TuneWorkers.
	// 0 means one worker per core (GOMAXPROCS); 1 disables sweep
	// parallelism. Sweeps deposit results into index-addressed slots and the
	// core layers are deterministic at any worker count, so the tables are
	// identical regardless of Workers.
	Workers int
	// EigBackend selects the eigen-engine for every ADCD-X zone build the
	// suite performs (core.BackendLBFGS, the default multi-start search;
	// core.BackendInterval, the certified interval engine; or
	// core.BackendHybrid). automon-bench exposes it as -eig-backend.
	EigBackend core.EigBackend
	// HybridSlack is forwarded to core.DecompOptions.HybridSlack: the hybrid
	// backend's escalation threshold (0 = core.DefaultHybridSlack, negative
	// = never escalate).
	HybridSlack float64

	// SketchRows and SketchCols shape the AMS sketches of the ingestion
	// experiments (SketchTable, the sketch-f2 workload); 0 means 4×32.
	SketchRows, SketchCols int
	// IngestBatch is the elision staleness cap (events between forced exact
	// checks) for the ingestion experiments; 0 means ingest.DefaultBatchSize.
	IngestBatch int
}

// decomp stamps the sweep-wide eigen-engine selection onto a workload's
// decomposition options; every workload constructor routes its DecompOptions
// through here so -eig-backend reaches each zone build the suite performs.
func (o Options) decomp(d core.DecompOptions) core.DecompOptions {
	d.Backend = o.EigBackend
	d.HybridSlack = o.HybridSlack
	return d
}

// forEach runs fn(0), …, fn(n−1) on up to `workers` goroutines (0 means
// GOMAXPROCS, 1 runs inline) and returns the error of the lowest failing
// index — the one a sequential loop would have surfaced first. fn must write
// its outputs into index-addressed slots; callers then emit table rows in
// index order so the rendered CSV is independent of scheduling.
func forEach(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (o Options) rounds(full int) int {
	if o.Quick {
		if full > 2000 {
			return full / 10
		}
		return full / 2
	}
	return full
}

// Table is a simple labelled grid, one per figure series.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case int:
			row[i] = strconv.Itoa(v)
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 6, 64)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteCSV renders the table as CSV with a leading comment naming it.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Name); err != nil {
		return err
	}
	write := func(cells []string) error {
		for i, c := range cells {
			sep := ","
			if i == len(cells)-1 {
				sep = "\n"
			}
			if _, err := io.WriteString(w, c+sep); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

// Workload bundles a function with its dataset and monitoring defaults.
type Workload struct {
	Name string
	F    *core.Function
	Data *stream.Dataset
	// FixedR pins the ADCD-X neighborhood size; 0 lets the run tune it on
	// TuneRounds of data.
	FixedR     float64
	TuneRounds int
	Decomp     core.DecompOptions

	// tel, when non-nil, records a RunSnapshot per run (set by the workload
	// constructors from Options.Telemetry).
	tel *Telemetry
	// workers is Options.Workers, forwarded by the constructors so run can
	// hand it to the core layer as TuneWorkers.
	workers int
}

// tuneWorkers translates the sweep-level worker knob into the core's
// TuneWorkers convention (0 and 1 both mean sequential there).
func (w *Workload) tuneWorkers() int {
	if w.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w.workers
}

// run executes one monitored configuration. When telemetry is enabled the
// run gets a private metric registry whose snapshot rides along with the
// result aggregates.
func (w *Workload) run(alg sim.Algorithm, eps float64, period int, trace bool) (*sim.Result, error) {
	var reg *obs.Registry
	if w.tel != nil {
		reg = obs.NewRegistry()
	}
	res, err := sim.Run(sim.Config{
		F:         w.F,
		Data:      w.Data,
		Algorithm: alg,
		Period:    period,
		Trace:     trace,
		Core: core.Config{
			Epsilon:     eps,
			R:           w.FixedR,
			Decomp:      w.Decomp,
			TuneWorkers: w.tuneWorkers(),
		},
		TuneRounds: w.TuneRounds,
		Metrics:    reg,
	})
	if err == nil {
		w.tel.record(w.Name, eps, res, reg)
	}
	return res, err
}

// InnerProductWorkload is the §4.2 inner-product setup (default d = 40,
// n = 10).
func InnerProductWorkload(o Options, d, nodes int) *Workload {
	half := d / 2
	return &Workload{
		Name:    "inner-product",
		tel:     o.Telemetry,
		workers: o.Workers,
		F:       funcs.InnerProduct(half),
		Data:    stream.InnerProductPhases(half, nodes, o.rounds(1000), o.Seed+1),
		Decomp:  o.decomp(core.DecompOptions{Seed: o.Seed}),
	}
}

// QuadraticWorkload is the §4.2 quadratic-form setup (d = 40, n = 10, one
// outlier node).
func QuadraticWorkload(o Options, d, nodes int) *Workload {
	return &Workload{
		Name:    "quadratic",
		tel:     o.Telemetry,
		workers: o.Workers,
		F:       funcs.RandomQuadratic(d, o.Seed+2),
		Data:    stream.QuadraticOutlier(d, nodes, o.rounds(1000), o.Seed+3),
		Decomp:  o.decomp(core.DecompOptions{Seed: o.Seed}),
	}
}

// KLDWorkload is the §4.2 KLD-over-air-quality setup (default d = 20,
// n = 12 sites).
func KLDWorkload(o Options, d, nodes, rounds int) *Workload {
	bins := d / 2
	tau := 1.0 / float64(nodes*200)
	return &Workload{
		Name:       "kld",
		tel:        o.Telemetry,
		workers:    o.Workers,
		F:          funcs.KLD(bins, tau),
		Data:       stream.NewAirQuality(nodes, bins, o.rounds(rounds), o.Seed+4),
		TuneRounds: o.rounds(200),
		Decomp:     o.decomp(core.DecompOptions{Seed: o.Seed, OptStarts: 1, OptMaxIter: 25, OptMaxFunEvals: 150}),
	}
}

// MLPWorkload is the §4.2 MLP-d setup (n = 10 by default).
func MLPWorkload(o Options, d, nodes int) (*Workload, error) {
	f, err := funcs.TrainMLP(d, o.Seed+5)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:       fmt.Sprintf("mlp-%d", d),
		tel:        o.Telemetry,
		workers:    o.Workers,
		F:          f,
		Data:       stream.MLPDrift(d, nodes, o.rounds(1000), o.Seed+6),
		TuneRounds: o.rounds(200),
		Decomp:     o.decomp(core.DecompOptions{Seed: o.Seed, OptStarts: 1, OptMaxIter: 25, OptMaxFunEvals: 150}),
	}, nil
}

// DNNWorkload is the §4.2 intrusion-detection setup: a ReLU DNN trained on
// the synthetic KDD-like stream, 9 nodes, single-node updates. Quick mode
// narrows the hidden layers (128-64-32-16-8 instead of 512-64-32-16-8) and
// pins the tuned neighborhood size to keep the suite fast; the full-size
// variant tunes r on a data prefix like the paper.
func DNNWorkload(o Options) (*Workload, error) {
	// The monitored signal is flat outside attack-burst transitions, so the
	// AutoMon/centralization message ratio improves with run length (the
	// paper streams 311K samples); these sizes keep the suite tractable.
	rounds := 20000
	width := 512
	if o.Quick {
		rounds = 3000
		width = 128
	}
	in := stream.NewIntrusion(9, rounds, o.Seed+7)
	rng := rand.New(rand.NewSource(o.Seed + 8))
	net, err := nn.New(rng,
		[]int{stream.IntrusionFeatures, width, 64, 32, 16, 8, 1},
		[]nn.Activation{nn.ReLU, nn.ReLU, nn.ReLU, nn.ReLU, nn.ReLU, nn.Sigmoid})
	if err != nil {
		return nil, err
	}
	// Soft targets keep the sigmoid unsaturated, so the monitored signal
	// varies gently around 0.5 like the paper's Figure 4 DNN trace
	// (≈ [0.48, 0.56]) instead of snapping between 0 and 1; the classifier
	// still separates attack from normal at the 0.5 threshold.
	soft := make([]float64, len(in.TrainY))
	for i, y := range in.TrainY {
		soft[i] = 0.45 + 0.13*y
	}
	if _, err := net.Train(rng, in.TrainX, soft, nn.TrainConfig{Epochs: 6, LR: 0.02}); err != nil {
		return nil, err
	}
	w := &Workload{
		Name:    "dnn-intrusion",
		tel:     o.Telemetry,
		workers: o.Workers,
		F:       funcs.Network("dnn-intrusion", net),
		Data:    in.Dataset,
		Decomp:  o.decomp(core.DecompOptions{Seed: o.Seed, OptStarts: 1, OptMaxIter: 8, OptMaxFunEvals: 40}),
	}
	if o.Quick {
		w.FixedR = 0.08 // one-time offline tune; see EXPERIMENTS.md
	} else {
		w.TuneRounds = 400
	}
	return w, nil
}

// RosenbrockWorkload is the §3.6/§4.5 tuning setup: inputs N(0, 0.2²).
func RosenbrockWorkload(o Options, nodes, rounds int) *Workload {
	return &Workload{
		Name:    "rosenbrock",
		tel:     o.Telemetry,
		workers: o.Workers,
		F:       funcs.Rosenbrock(),
		Data:    stream.GaussianNoise(2, nodes, o.rounds(rounds), 0, 0.2, o.Seed+9),
		Decomp:  o.decomp(core.DecompOptions{Seed: o.Seed}),
	}
}
