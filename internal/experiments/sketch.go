package experiments

import (
	"fmt"
	"math"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/ingest"
	"automon/internal/stream"
)

// sketchShape resolves the Options sketch shape (default 4×32).
func (o Options) sketchShape() (rows, cols int) {
	rows, cols = o.SketchRows, o.SketchCols
	if rows <= 0 {
		rows = 4
	}
	if cols <= 0 {
		cols = 32
	}
	return rows, cols
}

// SketchF2Workload is the registry entry ("sketch-f2") for the sim and
// distributed tools: the AMS second-moment query over a Zipf turnstile
// stream, monitored as a quadratic form with ADCD-E.
func SketchF2Workload(o Options, nodes, rounds int) *Workload {
	rows, cols := o.sketchShape()
	return &Workload{
		Name:    fmt.Sprintf("sketch-f2-%dx%d", rows, cols),
		tel:     o.Telemetry,
		workers: o.Workers,
		F:       funcs.AMSF2(rows, cols),
		Data:    stream.ZipfTurnstile(nodes, o.rounds(rounds), rows, cols, o.Seed+10),
		Decomp:  o.decomp(core.DecompOptions{Seed: o.Seed}),
	}
}

// sketchRun aggregates one ingestion-layer run for SketchTable.
type sketchRun struct {
	algorithm       string
	period          int // periodic only; 0 for AutoMon
	messages        int
	payloadBytes    int
	checks          int
	elidedPct       float64
	maxErr, meanErr float64
}

// SketchTable is the ingestion-layer comparison behind the PR's headline:
// AutoMon monitoring the sketch (per-event and with check elision) against
// periodic sketch shipping at a ladder of periods, over the same bursty
// turnstile event stream. For each run it reports protocol traffic and the
// estimate's error against the true f of the averaged sketch, sampled after
// every node-major event step. The periodic row matching the elided run's
// accuracy (smallest max error ≥ bar) is marked as the equal-accuracy pick —
// the communication factor between the two is the figure's takeaway.
func SketchTable(o Options) (*Table, error) {
	rows, cols := o.sketchShape()
	const nodes = 8
	events, warm := 12000, 600
	if o.Quick {
		events, warm = 3000, 400
	}
	const eps = 0.1
	ev := stream.SketchEpisodes(nodes, warm, events, o.Seed+11)
	scale := 1.0 / float64(warm)
	f := funcs.AMSF2(rows, cols)
	d := f.Dim()

	newSources := func() ([]ingest.Source, error) {
		srcs := make([]ingest.Source, nodes)
		for i := range srcs {
			s, err := ingest.NewAMSSource(rows, cols, 42, scale)
			if err != nil {
				return nil, err
			}
			for _, u := range ev.Warm[i] {
				s.Apply(u)
			}
			srcs[i] = s
		}
		return srcs, nil
	}

	// errTracker folds |est − truth| sampled once per node-major step.
	type errTracker struct {
		maxErr, sumErr float64
		steps          int
	}
	observe := func(tr *errTracker, est, truth float64) {
		e := math.Abs(est - truth)
		if e > tr.maxErr {
			tr.maxErr = e
		}
		tr.sumErr += e
		tr.steps++
	}
	truthOf := func(srcs []ingest.Source, vec, avg []float64) float64 {
		for j := range avg {
			avg[j] = 0
		}
		for _, s := range srcs {
			s.VectorInto(vec)
			for j := range avg {
				avg[j] += vec[j]
			}
		}
		for j := range avg {
			avg[j] /= float64(len(srcs))
		}
		return f.Value(avg)
	}

	runAutoMon := func(elide bool) (sketchRun, error) {
		srcs, err := newSources()
		if err != nil {
			return sketchRun{}, err
		}
		p, err := ingest.NewPipeline(ingest.Config{
			F:       f,
			Core:    core.Config{Epsilon: eps},
			Sources: srcs,
			Options: ingest.Options{Elide: elide, BatchSize: o.IngestBatch},
		})
		if err != nil {
			return sketchRun{}, err
		}
		if err := p.Init(); err != nil {
			return sketchRun{}, err
		}
		vec := make([]float64, d)
		avg := make([]float64, d)
		var tr errTracker
		for k := 0; k < ev.EventsPerNode(); k++ {
			for i := 0; i < nodes; i++ {
				if k < len(ev.PerNode[i]) {
					if err := p.Ingest(i, ev.PerNode[i][k]); err != nil {
						return sketchRun{}, err
					}
				}
			}
			observe(&tr, p.Estimate(), truthOf(srcs, vec, avg))
		}
		st, tf := p.Stats(), p.Traffic()
		name := "automon-perevent"
		if elide {
			name = "automon-elided"
		}
		return sketchRun{
			algorithm:    name,
			messages:     tf.Messages,
			payloadBytes: tf.PayloadBytes,
			checks:       int(st.Checks),
			elidedPct:    100 * float64(st.Elided) / float64(st.Events),
			maxErr:       tr.maxErr,
			meanErr:      tr.sumErr / float64(tr.steps),
		}, nil
	}

	runPeriodic := func(period int) (sketchRun, error) {
		srcs, err := newSources()
		if err != nil {
			return sketchRun{}, err
		}
		vec := make([]float64, d)
		avg := make([]float64, d)
		msgs, payload := 0, 0
		shippedEst := 0.0
		ship := func() {
			// Every node ships its current sketch vector to the coordinator,
			// whose estimate becomes exact at the ship instant.
			for i, s := range srcs {
				s.VectorInto(vec)
				msgs++
				payload += len((&core.DataResponse{NodeID: i, X: vec}).Encode())
			}
			shippedEst = truthOf(srcs, vec, avg)
		}
		var tr errTracker
		ship() // initial full picture, like the AutoMon Init sync
		for k := 0; k < ev.EventsPerNode(); k++ {
			for i := 0; i < nodes; i++ {
				if k < len(ev.PerNode[i]) {
					srcs[i].Apply(ev.PerNode[i][k])
				}
			}
			if (k+1)%period == 0 {
				ship()
			}
			observe(&tr, shippedEst, truthOf(srcs, vec, avg))
		}
		return sketchRun{
			algorithm:    fmt.Sprintf("periodic-%d", period),
			period:       period,
			messages:     msgs,
			payloadBytes: payload,
			maxErr:       tr.maxErr,
			meanErr:      tr.sumErr / float64(tr.steps),
		}, nil
	}

	var runs []sketchRun
	elided, err := runAutoMon(true)
	if err != nil {
		return nil, err
	}
	perEvent, err := runAutoMon(false)
	if err != nil {
		return nil, err
	}
	runs = append(runs, elided, perEvent)
	periods := []int{500, 250, 100, 50, 25, 10, 5, 1}
	for _, p := range periods {
		r, err := runPeriodic(p)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}

	// Equal-accuracy pick: the cheapest periodic run that still matches the
	// elided AutoMon run's max error.
	pick := -1
	for i, r := range runs {
		if r.period == 0 || r.maxErr > elided.maxErr {
			continue
		}
		if pick < 0 || r.messages < runs[pick].messages {
			pick = i
		}
	}

	t := &Table{
		Name: fmt.Sprintf("sketch ingestion: AutoMon vs periodic shipping (%d nodes, AMS %dx%d, eps=%g)", nodes, rows, cols, eps),
		Header: []string{"algorithm", "period", "events_per_node", "messages",
			"payload_bytes", "checks", "elided_pct", "max_err", "mean_err", "note"},
	}
	for i, r := range runs {
		note := ""
		if i == pick {
			note = "equal-accuracy pick"
		}
		t.Add(r.algorithm, r.period, ev.EventsPerNode(), r.messages,
			r.payloadBytes, r.checks, r.elidedPct, r.maxErr, r.meanErr, note)
	}
	return t, nil
}
