package experiments

import (
	"math"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/linalg"
	"automon/internal/sim"
)

// Fig1SineZones reproduces Figure 1: the admissible region and the
// convex-/concave-difference safe zones for sin(x) at x0 = π/2 with
// L = 0.8, U = 1.2. The table reports each interval's endpoints.
func Fig1SineZones() (*Table, error) {
	f := funcs.Sine()
	x0 := []float64{math.Pi / 2}
	grad := make([]float64, 1)
	f0 := f.Grad(x0, grad)
	l, u := 0.8, 1.2

	scan := func(zone *core.SafeZone) (lo, hi float64) {
		const steps = 20000
		lo, hi = math.NaN(), math.NaN()
		for i := 0; i <= steps; i++ {
			x := math.Pi * float64(i) / steps
			if zone.Contains(f, []float64{x}) {
				if math.IsNaN(lo) {
					lo = x
				}
				hi = x
			}
		}
		return lo, hi
	}
	base := core.SafeZone{
		Method: core.MethodX, X0: linalg.Clone(x0), F0: f0,
		GradF0: linalg.Clone(grad), L: l, U: u,
	}
	convex := base
	convex.Kind = core.ConvexDiff
	convex.Lam = 1
	concave := base
	concave.Kind = core.ConcaveDiff
	concave.Lam = 1

	t := &Table{
		Name:   "fig1: sin(x) safe zones at x0=pi/2, L=0.8, U=1.2",
		Header: []string{"region", "lo", "hi"},
	}
	t.Add("admissible", math.Asin(l), math.Pi-math.Asin(l))
	cLo, cHi := scan(&convex)
	t.Add("convex-difference", cLo, cHi)
	kLo, kHi := scan(&concave)
	t.Add("concave-difference", kLo, kHi)
	return t, nil
}

// Fig3NeighborhoodSweep reproduces Figure 3: neighborhood vs safe-zone
// violation counts as functions of r while monitoring Rosenbrock under three
// error bounds, plus the violation-minimizing r*.
func Fig3NeighborhoodSweep(o Options) (*Table, error) {
	t := &Table{
		Name:   "fig3: violations vs neighborhood size (rosenbrock)",
		Header: []string{"eps", "r", "neighborhood_viol", "safezone_viol", "total", "is_optimal"},
	}
	w := RosenbrockWorkload(o, 10, 1000)
	data, err := replayData(w)
	if err != nil {
		return nil, err
	}
	rs := []float64{0.01, 0.02, 0.04, 0.07, 0.1, 0.14, 0.2, 0.3}
	for _, eps := range []float64{0.05, 0.25, 0.95} {
		type pt struct {
			r      float64
			counts core.ReplayCounts
		}
		// Each radius is an independent replay; fan them across the worker
		// pool and keep the results slot-addressed so rows stay in r order.
		pts := make([]pt, len(rs))
		err := forEach(o.Workers, len(rs), func(i int) error {
			counts, err := core.Replay(w.F, data, w.Data.Nodes, core.Config{
				Epsilon: eps, R: rs[i], Decomp: w.Decomp,
			})
			if err != nil {
				return err
			}
			pts[i] = pt{rs[i], counts}
			return nil
		})
		if err != nil {
			return nil, err
		}
		best := 0
		for i, p := range pts {
			if p.counts.Total() < pts[best].counts.Total() {
				best = i
			}
		}
		for i, p := range pts {
			opt := 0
			if i == best {
				opt = 1
			}
			t.Add(eps, p.r, p.counts.Neighborhood, p.counts.SafeZone, p.counts.Total(), opt)
		}
	}
	return t, nil
}

// replayData converts a workload's streams into core.TuningData by running
// the windows forward (one snapshot per monitored round).
func replayData(w *Workload) (core.TuningData, error) {
	ds := w.Data
	windows := make([]interface {
		Push([]float64)
		Vector() []float64
	}, ds.Nodes)
	for i := range windows {
		windows[i] = ds.NewWindow()
	}
	for r := 0; r < ds.FillRounds(); r++ {
		for i := range windows {
			windows[i].Push(ds.FillSample(r, i))
		}
	}
	snapshot := func() [][]float64 {
		out := make([][]float64, ds.Nodes)
		for i := range windows {
			out[i] = linalg.Clone(windows[i].Vector())
		}
		return out
	}
	data := core.TuningData{snapshot()}
	for r := 0; r < ds.Rounds; r++ {
		for i := 0; i < ds.Nodes; i++ {
			if s := ds.Sample(r, i); s != nil {
				windows[i].Push(s)
			}
		}
		data = append(data, snapshot())
	}
	return data, nil
}

// Fig4Traces reproduces Figure 4: each monitored function's value over time
// with its default ±ε band (series downsampled to ≤ 500 points).
func Fig4Traces(o Options) (*Table, error) {
	t := &Table{
		Name:   "fig4: function value traces",
		Header: []string{"function", "round", "value", "eps"},
	}
	type entry struct {
		w   *Workload
		eps float64
		err error
	}
	mlp40, err := MLPWorkload(o, 40, 10)
	if err != nil {
		return nil, err
	}
	mlp2, err := MLPWorkload(o, 2, 10)
	if err != nil {
		return nil, err
	}
	dnn, err := DNNWorkload(o)
	if err != nil {
		return nil, err
	}
	entries := []entry{
		{InnerProductWorkload(o, 40, 10), 0.2, nil},
		{QuadraticWorkload(o, 40, 10), 0.05, nil},
		{KLDWorkload(o, 20, 12, 4000), 0.02, nil},
		{mlp40, 0.2, nil},
		{mlp2, 0.15, nil},
		{dnn, 0.01, nil},
	}
	for _, e := range entries {
		res, err := sim.Run(sim.Config{
			F: e.w.F, Data: e.w.Data, Algorithm: sim.Centralization,
			Core: core.Config{Epsilon: e.eps}, Trace: true,
		})
		if err != nil {
			return nil, err
		}
		stride := 1
		if len(res.TrueTrace) > 500 {
			stride = len(res.TrueTrace) / 500
		}
		for i := 0; i < len(res.TrueTrace); i += stride {
			t.Add(e.w.Name, i, res.TrueTrace[i], e.eps)
		}
	}
	return t, nil
}
