package experiments

import (
	"math/rand"

	"automon/internal/funcs"
	"automon/internal/stream"
)

// saddleAblationWorkload builds the §4.6 scenario: f = −x1² + x2² over four
// nodes whose data starts identical at (0, 0) and slowly drifts apart —
// nodes 2 and 3 along the zero-level diagonals (the missed-violation
// geometry), nodes 0 and 1 staying put — with an outlier window for two
// nodes around 65–70% of the run.
func saddleAblationWorkload(o Options) *Workload {
	rounds := o.rounds(1000)
	nodes := 4
	rng := rand.New(rand.NewSource(o.Seed + 11))
	targets := [][]float64{{0, 0}, {0, 0}, {1, 1}, {1, -1}}

	ds := stream.NewCustom("saddle-ablation", nodes, rounds, 1, 2,
		func(round, node int) []float64 {
			frac := float64(round) / float64(rounds)
			x := []float64{
				targets[node][0] * frac,
				targets[node][1] * frac,
			}
			// Outlier window (§4.6: rounds 650–700 of 1000) for two nodes.
			if node < 2 && frac >= 0.65 && frac < 0.70 {
				x[0] += 0.8
			}
			x[0] += rng.NormFloat64() * 0.005
			x[1] += rng.NormFloat64() * 0.005
			return x
		})
	return &Workload{Name: "saddle", F: funcs.Saddle(), Data: ds}
}
