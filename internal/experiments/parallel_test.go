package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 23
		hits := make([]int32, n)
		err := forEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := forEach(4, 10, func(i int) error {
		switch i {
		case 3:
			return errLow
		case 7:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("got %v, want the error a sequential loop would surface first (%v)", err, errLow)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := forEach(4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestFig3DeterministicAcrossWorkers regenerates the figure-3 sweep with the
// sequential and the parallel runner and requires identical tables: sweeps
// deposit rows into index-addressed slots and the replayed protocol is
// deterministic per (seed, radius), so the CSVs must not depend on Workers.
func TestFig3DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the rosenbrock sweep twice")
	}
	seq := tinyOpts()
	seq.Workers = 1
	par := tinyOpts()
	par.Workers = 4

	tSeq, err := Fig3NeighborhoodSweep(seq)
	if err != nil {
		t.Fatal(err)
	}
	tPar, err := Fig3NeighborhoodSweep(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tSeq.Header, tPar.Header) || !reflect.DeepEqual(tSeq.Rows, tPar.Rows) {
		t.Fatalf("fig3 table depends on the worker count:\nsequential: %v\nparallel:   %v", tSeq.Rows, tPar.Rows)
	}
}
