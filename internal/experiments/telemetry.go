package experiments

import (
	"encoding/json"
	"io"
	"math"
	"sync"

	"automon/internal/core"
	"automon/internal/obs"
	"automon/internal/sim"
)

// JSONFloat marshals like float64 except that non-finite values become null:
// encoding/json rejects NaN/±Inf outright, and a single poisoned gauge (e.g.
// a degraded-mode estimate) must not make the whole telemetry file unwritable.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// RunSnapshot is the machine-readable telemetry of one simulated run: the
// result aggregates plus a flat snapshot of every automon_* instrument the
// run touched. It is what `automon-bench -telemetry` writes per run.
type RunSnapshot struct {
	Workload  string  `json:"workload"`
	Algorithm string  `json:"algorithm"`
	Epsilon   float64 `json:"epsilon"`
	Rounds    int     `json:"rounds"`

	Messages     int     `json:"messages"`
	PayloadBytes int     `json:"payload_bytes"`
	MaxErr       float64 `json:"max_err"`
	MeanErr      float64 `json:"mean_err"`
	P99Err       float64 `json:"p99_err"`
	MissedRounds int     `json:"missed_rounds"`
	TunedR       float64 `json:"tuned_r,omitempty"`

	Stats   core.CoordStats      `json:"coordinator_stats"`
	Metrics map[string]JSONFloat `json:"metrics"`
}

// Telemetry accumulates per-run metric snapshots across an experiment
// session. The zero value is ready to use; nil receivers are no-ops, so
// workloads record unconditionally.
type Telemetry struct {
	mu   sync.Mutex
	runs []RunSnapshot
}

// record captures one finished run. Each run uses its own registry, so the
// snapshot holds exactly that run's instruments.
func (t *Telemetry) record(workload string, eps float64, res *sim.Result, reg *obs.Registry) {
	if t == nil || res == nil {
		return
	}
	snap := RunSnapshot{
		Workload:     workload,
		Algorithm:    res.Algorithm,
		Epsilon:      eps,
		Rounds:       res.Rounds,
		Messages:     res.Messages,
		PayloadBytes: res.PayloadBytes,
		MaxErr:       res.MaxErr,
		MeanErr:      res.MeanErr,
		P99Err:       res.P99Err,
		MissedRounds: res.MissedRounds,
		TunedR:       res.TunedR,
		Stats:        res.Stats,
		Metrics:      make(map[string]JSONFloat),
	}
	for name, v := range reg.Snapshot() {
		snap.Metrics[name] = JSONFloat(v)
	}
	t.mu.Lock()
	t.runs = append(t.runs, snap)
	t.mu.Unlock()
}

// Runs returns a copy of the collected snapshots.
func (t *Telemetry) Runs() []RunSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]RunSnapshot(nil), t.runs...)
}

// WriteJSON renders the collected snapshots as an indented JSON array.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	runs := t.Runs()
	if runs == nil {
		runs = []RunSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(runs)
}
