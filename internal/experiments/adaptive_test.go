package experiments

import (
	"strings"
	"testing"

	"automon/internal/core"
)

// TestAdaptiveBeatsStaticOnBurstyStreams is the PR's acceptance criterion:
// on the bursty streams, a run with the drift-aware radius controller pays
// strictly fewer full syncs (and fewer messages) than the static-r̂ run at
// equal ε, because the static run carries its §3.6-doubled radius out of the
// burst forever. Everything underneath is deterministic for a fixed seed —
// the generators are seeded, the simulation is single-threaded per run, and
// the worker-parallel tuning search is bit-identical at any worker count —
// so the assertions are exact, not statistical.
func TestAdaptiveBeatsStaticOnBurstyStreams(t *testing.T) {
	o := Options{Seed: 1, EigBackend: core.BackendInterval}
	pairs, err := AdaptivePairs(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2", len(pairs))
	}
	for _, p := range pairs {
		st, ad := p.Static, p.Adaptive
		t.Logf("%s eps=%v: static fullSyncs=%d msgs=%d finalR=%.4f | adaptive fullSyncs=%d msgs=%d finalR=%.4f shrinks=%d retunes=%d",
			p.Workload, p.Eps, st.Stats.FullSyncs, st.Messages, st.FinalR,
			ad.Stats.FullSyncs, ad.Messages, ad.FinalR,
			ad.Stats.RShrinks, ad.Stats.AdaptiveRetunes)

		// Both arms tune on the same prefix with the controller held off, so
		// they must enter monitoring with the identical radius.
		if st.TunedR != ad.TunedR {
			t.Errorf("%s: tuned radii diverge: static %v, adaptive %v", p.Workload, st.TunedR, ad.TunedR)
		}
		// The headline claim.
		if ad.Stats.FullSyncs >= st.Stats.FullSyncs {
			t.Errorf("%s: adaptive full syncs %d not strictly below static %d",
				p.Workload, ad.Stats.FullSyncs, st.Stats.FullSyncs)
		}
		if ad.Messages >= st.Messages {
			t.Errorf("%s: adaptive messages %d not below static %d", p.Workload, ad.Messages, st.Messages)
		}
		// Cheaper must not mean wrong: both arms hold the ε guarantee.
		if st.MaxErr > p.Eps {
			t.Errorf("%s: static max error %v exceeds eps %v", p.Workload, st.MaxErr, p.Eps)
		}
		if ad.MaxErr > p.Eps {
			t.Errorf("%s: adaptive max error %v exceeds eps %v", p.Workload, ad.MaxErr, p.Eps)
		}
		// The mechanism, not just the outcome: the burst engaged §3.6 doubling
		// in both arms, only the adaptive arm ever shrank, and it ended the
		// run on a smaller radius than the static ratchet left behind.
		if st.Stats.RDoublings == 0 || ad.Stats.RDoublings == 0 {
			t.Errorf("%s: burst never engaged §3.6 doubling (static %d, adaptive %d)",
				p.Workload, st.Stats.RDoublings, ad.Stats.RDoublings)
		}
		if st.Stats.RShrinks != 0 || st.Stats.AdaptiveRetunes != 0 {
			t.Errorf("%s: static arm shrank (%d) or retuned (%d)",
				p.Workload, st.Stats.RShrinks, st.Stats.AdaptiveRetunes)
		}
		if ad.Stats.RShrinks == 0 || ad.Stats.AdaptiveRetunes == 0 {
			t.Errorf("%s: adaptive arm never exercised the controller (shrinks %d, retunes %d)",
				p.Workload, ad.Stats.RShrinks, ad.Stats.AdaptiveRetunes)
		}
		if ad.FinalR >= st.FinalR {
			t.Errorf("%s: adaptive final radius %v not below static %v", p.Workload, ad.FinalR, st.FinalR)
		}
	}
	if pairs[0].Workload != "intrusion-entropy" {
		t.Errorf("first pair is %q, want the bursty intrusion stream", pairs[0].Workload)
	}
}

// TestAdaptiveTableShape checks the rendered sweep table: two rows per
// scenario (static, adaptive), cells aligned with the header.
func TestAdaptiveTableShape(t *testing.T) {
	o := Options{Quick: true, Seed: 1, EigBackend: core.BackendInterval}
	tab, err := AdaptiveTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (static+adaptive × 2 workloads)", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tab.Header))
		}
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"intrusion-entropy", "regime-rosenbrock", "static", "adaptive"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("CSV missing %q", want)
		}
	}
}
