package experiments

import (
	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/obs"
	"automon/internal/sim"
	"automon/internal/stream"
)

// This file is the adaptive-radius evaluation: the §3.6 fallback only ever
// grows r, so any bursty regime permanently inflates the neighborhood and
// every post-burst zone is built over a wider box than the tuned optimum.
// The sweep pairs a static-r̂ run against an identical run with the
// drift-aware radius controller enabled (same stream, same tuning prefix,
// same ε) and reports the communication both pay after the burst passes.

// IntrusionEntropyWorkload monitors the entropy of the average KDD-like
// feature vector over the bursty intrusion stream (§4.2's data, with the
// paper's DNN swapped for the closed-form entropy so the sweep is cheap
// enough to pair many runs). Attack bursts push features well past the unit
// box, so the entropy domain is widened to cover the attacked range; the
// −1/(p+τ) curvature near the origin then penalizes oversized neighborhoods
// hard, which is exactly the failure mode the adaptive controller repairs.
func IntrusionEntropyWorkload(o Options, nodes, rounds int) *Workload {
	lo := make([]float64, stream.IntrusionFeatures)
	hi := make([]float64, stream.IntrusionFeatures)
	for i := range hi {
		hi[i] = 2.5
	}
	return &Workload{
		Name:       "intrusion-entropy",
		tel:        o.Telemetry,
		workers:    o.Workers,
		F:          funcs.Entropy(stream.IntrusionFeatures, 0.01).WithDomain(lo, hi),
		Data:       stream.NewIntrusion(nodes, o.rounds(rounds), o.Seed+10).Dataset,
		TuneRounds: o.rounds(200),
		Decomp:     o.decomp(core.DecompOptions{Seed: o.Seed, OptStarts: 1, OptMaxIter: 25, OptMaxFunEvals: 150}),
	}
}

// RegimeShiftWorkload is the second drift scenario: Rosenbrock inputs that
// are stationary N(0, 0.2²) except for one mid-run burst at a larger noise
// scale. The burst drives §3.6 doubling; afterwards the stream returns to
// the tuning-prefix statistics, so a static run demonstrably pays for state
// it carried out of the burst.
func RegimeShiftWorkload(o Options, nodes, rounds int) *Workload {
	return &Workload{
		Name:       "regime-rosenbrock",
		tel:        o.Telemetry,
		workers:    o.Workers,
		F:          funcs.Rosenbrock(),
		Data:       stream.RegimeShift(2, nodes, o.rounds(rounds), 0, 0.2, 0.7, o.Seed+11),
		TuneRounds: o.rounds(150),
		Decomp:     o.decomp(core.DecompOptions{Seed: o.Seed}),
	}
}

// runWith is Workload.run with an explicit core configuration: the adaptive
// sweep varies controller knobs (AdaptiveR, RDoubleAfter, RMax, EWMA decay)
// that the figure-sweep entry point deliberately does not expose. Epsilon,
// the pinned/tuned radius, the eigen-engine options, and the worker pool are
// stamped from the workload exactly as run does.
func (w *Workload) runWith(eps float64, cc core.Config) (*sim.Result, error) {
	var reg *obs.Registry
	if w.tel != nil {
		reg = obs.NewRegistry()
	}
	cc.Epsilon = eps
	cc.R = w.FixedR
	cc.Decomp = w.Decomp
	cc.TuneWorkers = w.tuneWorkers()
	res, err := sim.Run(sim.Config{
		F:          w.F,
		Data:       w.Data,
		Algorithm:  sim.AutoMon,
		Core:       cc,
		TuneRounds: w.TuneRounds,
		Metrics:    reg,
	})
	if err == nil {
		w.tel.record(w.Name, eps, res, reg)
	}
	return res, err
}

// AdaptivePair is one paired comparison: the same workload and ε monitored
// with a static (offline-tuned, §3.6-doubling-only) radius and with the
// adaptive controller. Both runs tune r̂ on the same prefix with the
// controller held off (core.Tune forces AdaptiveR off in its probes), so
// they enter monitoring with identical radii and diverge only in how they
// react to the burst.
type AdaptivePair struct {
	Workload string
	Eps      float64
	Static   *sim.Result
	Adaptive *sim.Result
}

// adaptiveScenario describes one row-pair of the sweep.
type adaptiveScenario struct {
	w   *Workload
	eps float64
	// rDoubleAfter lowers the §3.6 streak threshold so the scenario's bursts
	// actually engage the fallback path under study (the default 5n is sized
	// for node-failure storms, not data bursts).
	rDoubleAfter int
}

// adaptiveScenarios builds the sweep's workloads. Rounds are sized so every
// stream contains at least one complete burst after its tuning prefix.
func adaptiveScenarios(o Options) []adaptiveScenario {
	return []adaptiveScenario{
		{w: IntrusionEntropyWorkload(o, 9, 2000), eps: 0.3, rDoubleAfter: 6},
		{w: RegimeShiftWorkload(o, 6, 1500), eps: 0.5, rDoubleAfter: 6},
	}
}

// adaptiveConfigs returns the paired static/adaptive core configurations for
// one scenario. The static run is the seed behavior (§3.6 doubling with the
// RMax cap); the adaptive run adds the controller with a responsive EWMA
// (α = 0.2) so it reacts within tens of violations of a regime change.
func adaptiveConfigs(s adaptiveScenario) (static, adaptive core.Config) {
	static = core.Config{
		ForceADCDX:   true,
		RDoubleAfter: s.rDoubleAfter,
		// Both arms run without LRU lazy sync so every unresolved violation
		// costs a full synchronization: full-sync counts then measure the
		// radius quality directly. (With lazy sync on, an oversized radius
		// mostly surfaces as balancing traffic instead — the messages column
		// of the rendered table shows the same ordering either way.)
		DisableLazySync: true,
	}
	adaptive = static
	adaptive.AdaptiveR = true
	adaptive.AdaptiveAlpha = 0.2
	return static, adaptive
}

// AdaptivePairs executes the adaptive-vs-static sweep and returns the paired
// results (the regression test asserts on them; AdaptiveTable renders the
// CSV). Scenarios fan out across Options.Workers; within a pair the two runs
// replay the same pre-generated dataset, so sharing the workload is safe.
func AdaptivePairs(o Options) ([]AdaptivePair, error) {
	scenarios := adaptiveScenarios(o)
	pairs := make([]AdaptivePair, len(scenarios))
	err := forEach(o.Workers, len(scenarios), func(i int) error {
		s := scenarios[i]
		staticCfg, adaptiveCfg := adaptiveConfigs(s)
		st, err := s.w.runWith(s.eps, staticCfg)
		if err != nil {
			return err
		}
		ad, err := s.w.runWith(s.eps, adaptiveCfg)
		if err != nil {
			return err
		}
		pairs[i] = AdaptivePair{Workload: s.w.Name, Eps: s.eps, Static: st, Adaptive: ad}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// AdaptiveTable renders the adaptive-vs-static sweep (EXPERIMENTS.md's
// "adaptive radius" table; automon-bench fig "adaptive").
func AdaptiveTable(o Options) (*Table, error) {
	pairs, err := AdaptivePairs(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name: "adaptive radius: static r̂ vs drift-aware controller",
		Header: []string{
			"workload", "alg", "eps", "tuned_r", "final_r",
			"full_syncs", "messages", "payload_bytes",
			"neigh_viol", "sz_viol",
			"r_doublings", "r_saturations", "r_shrinks", "r_grows", "retunes",
			"max_err", "mean_err",
		},
	}
	add := func(wl string, eps float64, alg string, r *sim.Result) {
		t.Add(wl, alg, eps, r.TunedR, r.FinalR,
			r.Stats.FullSyncs, r.Messages, r.PayloadBytes,
			r.Stats.NeighborhoodViolations, r.Stats.SafeZoneViolations,
			r.Stats.RDoublings, r.Stats.RSaturations,
			r.Stats.RShrinks, r.Stats.RGrows, r.Stats.AdaptiveRetunes,
			r.MaxErr, r.MeanErr)
	}
	for _, p := range pairs {
		add(p.Workload, p.Eps, "static", p.Static)
		add(p.Workload, p.Eps, "adaptive", p.Adaptive)
	}
	return t, nil
}
