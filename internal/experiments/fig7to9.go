package experiments

import (
	"sort"
	"strconv"

	"automon/internal/core"
	"automon/internal/sim"
)

// Fig7aDimensions reproduces Figure 7(a): message counts as the input
// dimension grows (KLD, MLP-d, inner product; n = 12, 1000 rounds each).
func Fig7aDimensions(o Options) (*Table, error) {
	t := &Table{
		Name:   "fig7a: impact of dimension",
		Header: []string{"function", "dim", "messages", "max_err", "central_messages"},
	}
	dims := []int{10, 20, 40, 100, 200}
	if o.Quick {
		dims = []int{10, 20, 40, 100}
	}
	const nodes = 12
	// Every (dimension, function) cell is an independent pair of runs; fan
	// the cells across the worker pool and emit rows in cell order.
	type cell struct {
		name string
		eps  float64
		make func() (*Workload, error)
	}
	var cells []cell
	for _, d := range dims {
		d := d
		cells = append(cells,
			cell{"inner-product", 0.2, func() (*Workload, error) { return InnerProductWorkload(o, d, nodes), nil }},
			cell{"kld", 0.02, func() (*Workload, error) { return KLDWorkload(o, d, nodes, 1000), nil }},
			cell{"mlp-d", 0.2, func() (*Workload, error) { return MLPWorkload(o, d, nodes) }},
		)
	}
	type cellOut struct {
		messages, central int
		maxErr            float64
	}
	outs := make([]cellOut, len(cells))
	err := forEach(o.Workers, len(cells), func(i int) error {
		w, err := cells[i].make()
		if err != nil {
			return err
		}
		res, err := w.run(sim.AutoMon, cells[i].eps, 0, false)
		if err != nil {
			return err
		}
		central, err := w.run(sim.Centralization, cells[i].eps, 0, false)
		if err != nil {
			return err
		}
		outs[i] = cellOut{messages: res.Messages, central: central.Messages, maxErr: res.MaxErr}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.Add(c.name, dims[i/3], outs[i].messages, outs[i].maxErr, outs[i].central)
	}
	return t, nil
}

// Fig7bNodes reproduces Figure 7(b): message counts as the node count grows
// (MLP-40 and inner product d = 40); the AutoMon/Centralization ratio should
// stay roughly constant.
func Fig7bNodes(o Options) (*Table, error) {
	t := &Table{
		Name:   "fig7b: impact of node count",
		Header: []string{"function", "nodes", "messages", "central_messages", "ratio"},
	}
	counts := []int{10, 30, 100, 300, 1000}
	if o.Quick {
		counts = []int{10, 30, 100, 300}
	}
	// One task per (node count, function) pair, rows emitted in task order.
	type out struct {
		messages, central int
	}
	outs := make([]out, 2*len(counts))
	err := forEach(o.Workers, 2*len(counts), func(i int) error {
		n := counts[i/2]
		var w *Workload
		var err error
		if i%2 == 0 {
			w = InnerProductWorkload(o, 40, n)
		} else {
			if w, err = MLPWorkload(o, 40, n); err != nil {
				return err
			}
		}
		res, err := w.run(sim.AutoMon, 0.2, 0, false)
		if err != nil {
			return err
		}
		central, err := w.run(sim.Centralization, 0.2, 0, false)
		if err != nil {
			return err
		}
		outs[i] = out{messages: res.Messages, central: central.Messages}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, oo := range outs {
		name := "inner-product"
		if i%2 == 1 {
			name = "mlp-40"
		}
		t.Add(name, counts[i/2], oo.messages, oo.central,
			float64(oo.messages)/float64(oo.central))
	}
	return t, nil
}

// Fig8Tuning reproduces Figure 8: messages under the optimal neighborhood
// size r*, the Algorithm 2 tuned r̂, and fixed sizes r ∈ {0.05, 0.5, 2.5}
// across error bounds, for Rosenbrock and MLP-2, averaged over repetitions.
func Fig8Tuning(o Options) (*Table, error) {
	t := &Table{
		Name:   "fig8: neighborhood tuning quality",
		Header: []string{"function", "eps", "strategy", "r", "messages"},
	}
	reps := 5
	if o.Quick {
		reps = 2
	}
	fixed := []float64{0.05, 0.5, 2.5}

	type workloadMaker struct {
		name string
		make func(rep int) (*Workload, error)
		epss []float64
	}
	makers := []workloadMaker{
		{
			name: "rosenbrock",
			make: func(rep int) (*Workload, error) {
				oo := o
				oo.Seed = o.Seed + int64(100*rep)
				return RosenbrockWorkload(oo, 10, 1000), nil
			},
			epss: []float64{0.1, 0.5, 1.0, 1.5},
		},
		{
			name: "mlp-2",
			make: func(rep int) (*Workload, error) {
				oo := o
				oo.Seed = o.Seed + int64(100*rep)
				return MLPWorkload(oo, 2, 10)
			},
			epss: []float64{0.05, 0.1, 0.2, 0.3},
		},
	}

	// Repetitions are independent (each draws its own workload from a
	// rep-shifted seed), so they fan across the worker pool. Each rep
	// accumulates (strategy, eps, r, msgs) entries into a private buffer;
	// after the join the buffers are folded in rep order so the float
	// accumulation — and hence the emitted averages — match a sequential run
	// bit for bit.
	type entry struct {
		strategy string
		eps, r   float64
		msgs     int
	}
	for _, mk := range makers {
		perRep := make([][]entry, reps)
		err := forEach(o.Workers, reps, func(rep int) error {
			w, err := mk.make(rep)
			if err != nil {
				return err
			}
			record := func(strategy string, eps, r float64, msgs int) {
				perRep[rep] = append(perRep[rep], entry{strategy, eps, r, msgs})
			}
			tuneData, err := replayData(&Workload{
				Name: w.Name, F: w.F,
				Data:   w.Data.Slice(0, o.rounds(200)),
				Decomp: w.Decomp,
			})
			if err != nil {
				return err
			}
			evalData := w.Data.Slice(o.rounds(200), w.Data.Rounds)
			runWith := func(eps, r float64) (int, error) {
				res, err := sim.Run(sim.Config{
					F: w.F, Data: evalData, Algorithm: sim.AutoMon,
					Core: core.Config{Epsilon: eps, R: r, Decomp: w.Decomp},
				})
				if err != nil {
					return 0, err
				}
				return res.Messages, nil
			}
			for _, eps := range mk.epss {
				// Tuned r̂ from Algorithm 2 on the prefix.
				tuned, err := core.Tune(w.F, tuneData, w.Data.Nodes,
					core.Config{Epsilon: eps, Decomp: w.Decomp,
						TuneWorkers: w.tuneWorkers()})
				if err != nil {
					return err
				}
				msgs, err := runWith(eps, tuned.R)
				if err != nil {
					return err
				}
				record("tuned", eps, tuned.R, msgs)

				// Optimal r*: grid over the evaluation run itself.
				bestR, bestMsgs := 0.0, -1
				for _, r := range []float64{0.01, 0.02, 0.04, 0.08, 0.15, 0.3, 0.6, 1.2, 2.5} {
					m, err := runWith(eps, r)
					if err != nil {
						return err
					}
					if bestMsgs < 0 || m < bestMsgs {
						bestR, bestMsgs = r, m
					}
				}
				record("optimal", eps, bestR, bestMsgs)

				for _, r := range fixed {
					m, err := runWith(eps, r)
					if err != nil {
						return err
					}
					record("fixed-"+formatR(r), eps, r, m)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		type acc struct {
			msgs float64
			r    float64
			n    int
		}
		// strategy key → per-eps accumulation, folded in rep order.
		sums := map[string]map[float64]*acc{}
		for _, es := range perRep {
			for _, e := range es {
				if sums[e.strategy] == nil {
					sums[e.strategy] = map[float64]*acc{}
				}
				a := sums[e.strategy][e.eps]
				if a == nil {
					a = &acc{}
					sums[e.strategy][e.eps] = a
				}
				a.msgs += float64(e.msgs)
				a.r += e.r
				a.n++
			}
		}
		// The accumulators are keyed by map; emit rows in sorted
		// (strategy, eps) order so the table is identical across runs —
		// map iteration order would otherwise shuffle the CSV.
		strategies := make([]string, 0, len(sums))
		for strategy := range sums {
			strategies = append(strategies, strategy)
		}
		sort.Strings(strategies)
		for _, strategy := range strategies {
			perEps := sums[strategy]
			epss := make([]float64, 0, len(perEps))
			for eps := range perEps {
				epss = append(epss, eps)
			}
			sort.Float64s(epss)
			for _, eps := range epss {
				a := perEps[eps]
				t.Add(mk.name, eps, strategy, a.r/float64(a.n), int(a.msgs/float64(a.n)))
			}
		}
	}
	return t, nil
}

// formatR renders a fixed-strategy radius for the row label. The shortest
// round-trip formatting reproduces the exact literals the fixed grid is
// declared with ("0.05", "0.5", "2.5"), without comparing floats with ==.
func formatR(r float64) string {
	return strconv.FormatFloat(r, 'g', -1, 64)
}

// Fig9Ablation reproduces Figure 9: max error and cumulative messages over
// time for AutoMon, no-ADCD, and no-ADCD-no-slack on −x1²+x2² (4 drifting
// nodes with outliers) and MLP-2.
func Fig9Ablation(o Options) (*Table, error) {
	t := &Table{
		Name:   "fig9: ablation of ADCD, slack, lazy sync",
		Header: []string{"function", "variant", "round", "running_max_err", "cum_messages"},
	}

	addTraces := func(fn, variant string, res *sim.Result) {
		running := 0.0
		stride := 1
		if len(res.ErrTrace) > 400 {
			stride = len(res.ErrTrace) / 400
		}
		for i := 0; i < len(res.ErrTrace); i++ {
			if res.ErrTrace[i] > running {
				running = res.ErrTrace[i]
			}
			if i%stride == 0 {
				t.Add(fn, variant, i, running, res.CumMessages[i])
			}
		}
	}

	variants := []struct {
		name string
		cfg  func(eps float64) core.Config
	}{
		{"automon", func(eps float64) core.Config { return core.Config{Epsilon: eps} }},
		{"no-adcd", func(eps float64) core.Config { return core.Config{Epsilon: eps, DisableADCD: true} }},
		{"no-adcd-no-slack", func(eps float64) core.Config {
			return core.Config{Epsilon: eps, DisableADCD: true, DisableSlack: true}
		}},
	}

	// Saddle: 4 nodes, drift along the zero set + outlier window (§4.6).
	saddle := saddleAblationWorkload(o)
	for _, v := range variants {
		cfg := v.cfg(0.02)
		cfg.Decomp = o.decomp(core.DecompOptions{Seed: o.Seed})
		res, err := sim.Run(sim.Config{
			F: saddle.F, Data: saddle.Data, Algorithm: sim.AutoMon, Core: cfg, Trace: true,
		})
		if err != nil {
			return nil, err
		}
		addTraces("saddle", v.name, res)
	}
	central, err := sim.Run(sim.Config{
		F: saddle.F, Data: saddle.Data, Algorithm: sim.Centralization,
		Core: core.Config{Epsilon: 0.02}, Trace: true,
	})
	if err != nil {
		return nil, err
	}
	addTraces("saddle", "centralization", central)

	// MLP-2 with the same variants (ε = 0.15).
	mlp, err := MLPWorkload(o, 2, 10)
	if err != nil {
		return nil, err
	}
	for _, v := range variants {
		cfg := v.cfg(0.15)
		cfg.R = 0.3 // fixed across variants so only the ablation differs
		cfg.Decomp = o.decomp(core.DecompOptions{Seed: o.Seed})
		res, err := sim.Run(sim.Config{
			F: mlp.F, Data: mlp.Data, Algorithm: sim.AutoMon, Core: cfg, Trace: true,
		})
		if err != nil {
			return nil, err
		}
		addTraces("mlp-2", v.name, res)
	}
	return t, nil
}
