package experiments

import (
	"fmt"
	"math"
	"time"

	"automon/internal/core"
	"automon/internal/linalg"
	"automon/internal/sim"
	"automon/internal/stream"
	"automon/internal/transport"
)

// wanRun drives one workload over the real TCP fabric (loopback, optional
// injected latency) and reports payload, wire traffic, message counts, and
// the maximum estimate error. Centralization payload/traffic is derived from
// the same message schema for the comparison lines.
func wanRun(w *Workload, eps float64, latency time.Duration) (payload, wire, messages int64, maxErr float64, err error) {
	ds := w.Data
	n := ds.Nodes

	windows := make([]stream.Windower, n)
	for i := range windows {
		windows[i] = ds.NewWindow()
	}
	for r := 0; r < ds.FillRounds(); r++ {
		for i := 0; i < n; i++ {
			windows[i].Push(ds.FillSample(r, i))
		}
	}

	cfg := core.Config{Epsilon: eps, R: w.FixedR, Decomp: w.Decomp}
	if cfg.R == 0 && !w.F.HasConstantHessian() {
		cfg.R = 1 // WAN validation uses a fixed neighborhood; see EXPERIMENTS.md
	}
	coord, err := transport.ListenCoordinator("127.0.0.1:0", w.F, n, cfg, transport.Options{Latency: latency})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer coord.Close()
	nodes := make([]*transport.NodeClient, n)
	for i := 0; i < n; i++ {
		nodes[i], err = transport.DialNode(coord.Addr(), i, w.F, linalg.Clone(windows[i].Vector()), transport.Options{Latency: latency})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer nodes[i].Close()
	}
	select {
	case <-coord.Ready():
	case <-time.After(30 * time.Second):
		return 0, 0, 0, 0, fmt.Errorf("experiments: coordinator never ready")
	}
	for i := range nodes {
		if err := nodes[i].WaitReady(30 * time.Second); err != nil {
			return 0, 0, 0, 0, err
		}
	}

	avg := make([]float64, w.F.Dim())
	for r := 0; r < ds.Rounds; r++ {
		for i := 0; i < n; i++ {
			s := ds.Sample(r, i)
			if s == nil {
				continue
			}
			windows[i].Push(s)
			if err := nodes[i].Update(windows[i].Vector()); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = windows[i].Vector()
		}
		linalg.Mean(avg, vecs...)
		if e := math.Abs(coord.Estimate() - w.F.Value(avg)); e > maxErr {
			maxErr = e
		}
	}
	if err := coord.Err(); err != nil {
		return 0, 0, 0, 0, err
	}

	payload = coord.Stats.PayloadSent.Load() + coord.Stats.PayloadReceived.Load()
	wire = coord.Stats.WireSent.Load() + coord.Stats.WireReceived.Load()
	messages = coord.Stats.MessagesSent.Load() + coord.Stats.MessagesReceived.Load()
	return payload, wire, messages, maxErr, nil
}

// Fig10Bandwidth reproduces Figure 10 and the §4.7 WAN validation: for each
// function and ε, AutoMon's payload and wire traffic over real sockets,
// alongside centralization's payload/traffic and the matching simulation
// message count (to validate that real-world communication matches the
// simulation).
func Fig10Bandwidth(o Options, latency time.Duration) (*Table, error) {
	t := &Table{
		Name: "fig10: WAN bandwidth validation",
		Header: []string{"function", "eps", "wan_messages", "sim_messages",
			"payload_bytes", "wire_bytes", "central_payload", "central_wire", "max_err"},
	}
	type entry struct {
		w    *Workload
		epss []float64
	}
	dnn, err := DNNWorkload(o)
	if err != nil {
		return nil, err
	}
	entries := []entry{
		{InnerProductWorkload(o, 40, 10), []float64{0.05, 0.1, 0.2, 0.8}},
		{QuadraticWorkload(o, 40, 10), []float64{0.03, 0.04, 0.08, 0.2}},
		{KLDWorkload(o, 20, 12, 2000), []float64{0.005, 0.01, 0.02, 0.08}},
		{dnn, []float64{0.002, 0.005, 0.007, 0.016}},
	}
	for _, e := range entries {
		// KLD tuning over sockets is pointless here; use a fixed r.
		e.w.TuneRounds = 0
		for _, eps := range e.epss {
			payload, wire, msgs, maxErr, err := wanRun(e.w, eps, latency)
			if err != nil {
				return nil, fmt.Errorf("%s eps=%v: %w", e.w.Name, eps, err)
			}
			simCfg := *e.w
			simCfg.FixedR = e.w.FixedR
			if simCfg.FixedR == 0 && !e.w.F.HasConstantHessian() {
				simCfg.FixedR = 1
			}
			simRes, err := simCfg.run(sim.AutoMon, eps, 0, false)
			if err != nil {
				return nil, err
			}
			centralRes, err := e.w.run(sim.Centralization, eps, 0, false)
			if err != nil {
				return nil, err
			}
			centralWire := int64(centralRes.PayloadBytes) + int64(centralRes.Messages)*70
			t.Add(e.w.Name, eps, int(msgs), simRes.Messages,
				int(payload), int(wire), centralRes.PayloadBytes, int(centralWire), maxErr)
		}
	}
	return t, nil
}
