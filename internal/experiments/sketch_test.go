package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestSketchTableShape runs the quick-suite ingestion comparison and pins
// the PR's claims on it: the elided and per-event AutoMon rows are identical
// in every protocol-visible column (messages, payload, errors) and differ
// only in checks run, the elided run respects its ε bound, and exactly one
// periodic row is flagged as the equal-accuracy pick.
func TestSketchTableShape(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	tab, err := SketchTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("got %d rows, want 10 (2 automon + 8 periodic)", len(tab.Rows))
	}
	col := make(map[string]int)
	for i, h := range tab.Header {
		col[h] = i
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tab.Header))
		}
	}
	elided, perEvent := tab.Rows[0], tab.Rows[1]
	if elided[col["algorithm"]] != "automon-elided" || perEvent[col["algorithm"]] != "automon-perevent" {
		t.Fatalf("unexpected leading rows: %v / %v", elided[0], perEvent[0])
	}
	for _, c := range []string{"messages", "payload_bytes", "max_err", "mean_err"} {
		if elided[col[c]] != perEvent[col[c]] {
			t.Errorf("%s diverges between elided (%v) and per-event (%v) runs", c, elided[col[c]], perEvent[col[c]])
		}
	}
	maxErr, err := strconv.ParseFloat(elided[col["max_err"]], 64)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 0.1 {
		t.Errorf("elided max error %v exceeds eps 0.1", maxErr)
	}
	elidedPct, err := strconv.ParseFloat(elided[col["elided_pct"]], 64)
	if err != nil {
		t.Fatal(err)
	}
	if elidedPct < 50 {
		t.Errorf("only %v%% of checks elided; the episode stream should elide most", elidedPct)
	}
	picks := 0
	for _, row := range tab.Rows {
		if row[col["note"]] == "equal-accuracy pick" {
			picks++
			if !strings.HasPrefix(row[col["algorithm"]], "periodic-") {
				t.Errorf("pick landed on %v, want a periodic row", row[col["algorithm"]])
			}
		}
	}
	if picks != 1 {
		t.Errorf("got %d equal-accuracy picks, want exactly 1", picks)
	}
}

// TestSketchF2WorkloadRegistered covers the registry entry and the shape
// knobs: the workload name reflects Options.SketchRows/SketchCols and the
// function dimension matches.
func TestSketchF2WorkloadRegistered(t *testing.T) {
	o := Options{Quick: true, Seed: 1, SketchRows: 3, SketchCols: 16}
	w, err := NamedWorkload("sketch-f2", o)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "sketch-f2-3x16" {
		t.Fatalf("workload name %q does not reflect the sketch shape", w.Name)
	}
	if got := w.F.Dim(); got != 3*16 {
		t.Fatalf("function dim %d, want 48", got)
	}
	if w.Data.Nodes < 1 || w.Data.Rounds < 1 {
		t.Fatalf("workload data is empty: %d nodes × %d rounds", w.Data.Nodes, w.Data.Rounds)
	}
}
