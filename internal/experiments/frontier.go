package experiments

import (
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/obs"
)

// BackendFrontier measures the tightness-vs-build-cost frontier of the three
// eigen-engines: for each bundled non-constant-Hessian function family and
// dimension, the same (x0, r) neighborhood is decomposed with the L-BFGS
// search, the certified interval engine and the hybrid, recording per-build
// wall time, the Lemma-1 curvature bounds each engine produced, the bound
// width (looser bounds → smaller safe zones → more syncs downstream), and
// how much optimizer work ran (opt_evals — zero for the interval engine, by
// construction and by counter). EXPERIMENTS.md renders this as the backend
// comparison table.
func BackendFrontier(o Options) (*Table, error) {
	t := &Table{
		Name: "eigen-backend frontier: tightness vs build cost",
		Header: []string{"function", "dim", "backend", "build_us",
			"lam_abs_neg", "lam_pos_max", "width", "opt_evals", "refined"},
	}

	type probe struct {
		name string
		f    *core.Function
		x0   []float64
		r    float64
	}
	uniform := func(d int, v float64) []float64 {
		x := make([]float64, d)
		for i := range x {
			x[i] = v
		}
		return x
	}
	kldDims := []int{8, 20, 40}
	mlpDims := []int{2, 8}
	if o.Quick {
		kldDims = []int{8, 20}
	}
	var probes []probe
	for _, d := range kldDims {
		bins := d / 2
		probes = append(probes, probe{
			name: "kld", f: funcs.KLD(bins, 1.0/float64(d*100)),
			x0: uniform(d, 1.0/float64(d)), r: 0.05,
		})
	}
	for _, d := range mlpDims {
		f, err := funcs.TrainMLP(d, o.Seed+5)
		if err != nil {
			return nil, err
		}
		probes = append(probes, probe{name: "mlp", f: f, x0: uniform(d, 0.2), r: 0.3})
	}
	probes = append(probes,
		probe{name: "rosenbrock", f: funcs.Rosenbrock(), x0: []float64{1, 1}, r: 0.5},
		probe{name: "cosine", f: funcs.CosineSimilarity(2), x0: []float64{0.9, 0.4, 1, 0.2}, r: 0.2},
		probe{name: "sine", f: funcs.Sine(), x0: []float64{1.2}, r: 0.5},
	)

	builds := 5
	if o.Quick {
		builds = 3
	}
	for _, p := range probes {
		d := p.f.Dim()
		lo := make([]float64, d)
		hi := make([]float64, d)
		for i, v := range p.x0 {
			lo[i], hi[i] = v-p.r, v+p.r
		}
		for _, backend := range []core.EigBackend{core.BackendLBFGS, core.BackendInterval, core.BackendHybrid} {
			opts := o.decomp(core.DecompOptions{Seed: o.Seed})
			opts.Backend = backend // the frontier sweeps backends itself
			counter := obs.NewCounter()
			opts.OptEvalCounter = counter
			var dec *core.XDecomposition
			//automon:allow determinism wall-clock build cost is this table's measured output
			start := time.Now()
			for b := 0; b < builds; b++ {
				var err error
				dec, err = core.DecomposeX(p.f, p.x0, lo, hi, opts)
				if err != nil {
					return nil, err
				}
			}
			//automon:allow determinism wall-clock build cost is this table's measured output
			buildUS := float64(time.Since(start).Microseconds()) / float64(builds)
			t.Add(p.name, d, backend.String(), buildUS,
				dec.LamAbsNeg, dec.LamPosMax, dec.LamAbsNeg+dec.LamPosMax,
				int(counter.Load())/builds, dec.Refined)
		}
	}
	return t, nil
}
