package oracle_test

import (
	"testing"

	"automon/internal/oracle"
	"automon/internal/shard"
)

// treeShapes are the topologies every spec replays through: a wide shape
// that flattens to two tiers and a binary shape that reaches three tiers
// once the cluster has at least three nodes (shard counts clamp to N).
var treeShapes = []struct {
	name  string
	opt   shard.Options
	depth func(n int) int
}{
	{"wide/2-level", shard.Options{Shards: 2, Fanout: 8}, func(n int) int { return 2 }},
	{"binary/3-level", shard.Options{Shards: 4, Fanout: 2}, func(n int) int {
		if n == 2 {
			return 2
		}
		return 3
	}},
}

// TestTreeReplayAcrossZoo checks every bundled function against the exact
// centralized f(x̄) through 2- and 3-level shard trees, in both routing and
// absorbing modes: the hierarchical gather must preserve the paper's ε
// guarantee at every quiesced round, for every decomposition method the
// function zoo exercises.
func TestTreeReplayAcrossZoo(t *testing.T) {
	for _, sp := range specs(t) {
		sp := sp
		for _, shape := range treeShapes {
			for _, mode := range []shard.Mode{shard.ModeRoute, shard.ModeAbsorb} {
				shape, mode := shape, mode
				t.Run(sp.Name+"/"+shape.name+"/"+mode.String(), func(t *testing.T) {
					t.Parallel()
					opt := shape.opt
					opt.Mode = mode
					rep, err := oracle.ReplayTree(sp, opt)
					if err != nil {
						t.Fatal(err)
					}
					if want := shape.depth(sp.N); rep.TreeDepth != want {
						t.Fatalf("tree depth %d, want %d", rep.TreeDepth, want)
					}
					if len(rep.Bad) > 0 {
						t.Errorf("%d/%d rounds exceeded the bound %v (max err %v): rounds %v",
							len(rep.Bad), len(rep.Rounds), rep.Bound, rep.MaxErr, rep.Bad)
						for _, r := range rep.Rounds {
							if r.Err > rep.Bound {
								t.Logf("round %d: estimate %v truth %v err %v", r.Round, r.Estimate, r.Truth, r.Err)
							}
						}
					}
					if rep.Stats.FullSyncs == 0 {
						t.Error("replay finished without a single full sync — the tree never initialized")
					}
				})
			}
		}
	}
}

// TestTreeReplayValidatesSpec mirrors the flat replay's spec validation.
func TestTreeReplayValidatesSpec(t *testing.T) {
	if _, err := oracle.ReplayTree(oracle.Spec{Name: "empty"}, shard.Options{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}
