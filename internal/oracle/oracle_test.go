package oracle_test

// The ε-oracle differential suite: every bundled function of internal/funcs
// is replayed through the full node/coordinator stack over loopback TCP
// against a centralized oracle computing the exact f(x̄). Constant-Hessian
// and convex/concave-difference functions (ADCD-E) carry the paper's
// deterministic guarantee and run at Tolerance 1 (= exactly ε); non-convex
// ADCD-X functions run at Tolerance 3, since their neighborhood-based
// decomposition makes the bound an engineering one, not a theorem.

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/oracle"
	"automon/internal/transport"
)

// specs builds the differential table: (function, ε, n) with a deterministic
// drift schedule per entry. Every funcs constructor appears at least once.
func specs(t *testing.T) []oracle.Spec {
	t.Helper()
	mlp, err := funcs.TrainMLP(2, 1)
	if err != nil {
		t.Fatalf("training MLP-2: %v", err)
	}
	logW := []float64{1, -0.5, 0.25}
	return []oracle.Spec{
		{
			Name: "inner-product/eps0.2/n3",
			F:    funcs.InnerProduct(2), N: 3, Eps: 0.2, Rounds: 8,
			Gen: func(r, i int) []float64 {
				u := 0.5 + 0.05*float64(r) + 0.02*float64(i)
				return []float64{u, u, 1, 1}
			},
		},
		{
			Name: "inner-product/eps0.05/n4",
			F:    funcs.InnerProduct(2), N: 4, Eps: 0.05, Rounds: 8,
			Gen: func(r, i int) []float64 {
				u := 0.5 + 0.05*float64(r) + 0.02*float64(i)
				return []float64{u, u, 1, 1}
			},
		},
		{
			// Same schedule as above, but over the batched wire-v2 path:
			// the guarantee must be transport-policy independent.
			Name: "inner-product/eps0.2/n3/batched",
			F:    funcs.InnerProduct(2), N: 3, Eps: 0.2, Rounds: 8,
			Opts: transport.Options{Batch: transport.BatchOptions{MaxBytes: 4096, MaxDelay: 2 * time.Millisecond}},
			Gen: func(r, i int) []float64 {
				u := 0.5 + 0.05*float64(r) + 0.02*float64(i)
				return []float64{u, u, 1, 1}
			},
		},
		{
			Name: "random-quadratic/eps0.2/n2",
			F:    funcs.RandomQuadratic(3, 1), N: 2, Eps: 0.2, Rounds: 8,
			Gen: func(r, i int) []float64 {
				v := 0.5 + 0.06*float64(r) + 0.03*float64(i)
				return []float64{v, v, v}
			},
		},
		{
			Name: "kld/eps0.05/n2",
			F:    funcs.KLD(2, 0.5), N: 2, Eps: 0.05, Rounds: 8,
			Gen: func(r, i int) []float64 {
				d := 0.02*float64(r) + 0.01*float64(i)
				return []float64{0.3 + d, 0.7 - d, 0.5, 0.5}
			},
		},
		{
			Name: "entropy/eps0.05/n2",
			F:    funcs.Entropy(3, 0.1), N: 2, Eps: 0.05, Rounds: 8,
			Gen: func(r, i int) []float64 {
				d := 0.02*float64(r) + 0.01*float64(i)
				return []float64{0.2 + d, 0.3, 0.5 - d}
			},
		},
		{
			Name: "variance/eps0.2/n3",
			F:    funcs.Variance(), N: 3, Eps: 0.2, Rounds: 8,
			Gen: func(r, i int) []float64 {
				return funcs.AugmentSquares(1 + 0.15*float64(r) + 0.3*float64(i))
			},
		},
		{
			Name: "ams-f2/eps0.2/n2",
			F:    funcs.AMSF2(2, 3), N: 2, Eps: 0.2, Rounds: 8,
			Gen: func(r, i int) []float64 {
				v := 0.3 + 0.04*float64(r) + 0.02*float64(i)
				return []float64{v, v, v, v, v, v}
			},
		},
		{
			Name: "sqnorm/eps0.3/n3",
			F:    funcs.SqNorm(3), N: 3, Eps: 0.3, Rounds: 8,
			Gen: func(r, i int) []float64 {
				v := 0.4 + 0.05*float64(r) + 0.02*float64(i)
				return []float64{v, v, v}
			},
		},
		{
			Name: "saddle/eps0.2/n2",
			F:    funcs.Saddle(), N: 2, Eps: 0.2, Rounds: 8,
			Gen: func(r, i int) []float64 {
				return []float64{0.3 + 0.05*float64(r) + 0.02*float64(i), 0.2 + 0.04*float64(r)}
			},
		},
		// Non-convex ADCD-X cases: fixed neighborhood radius, 3·ε bound.
		{
			Name: "logistic/eps0.05/n2",
			F:    funcs.Logistic(logW, -0.1), N: 2, Eps: 0.05, Rounds: 8,
			Tolerance: 3, Core: core.Config{R: 0.5},
			Gen: func(r, i int) []float64 {
				return []float64{
					0.2 + 0.05*float64(r),
					0.1 + 0.03*float64(r) + 0.05*float64(i),
					-0.1 + 0.04*float64(r),
				}
			},
		},
		{
			Name: "cosine/eps0.1/n2",
			F:    funcs.CosineSimilarity(2), N: 2, Eps: 0.1, Rounds: 8,
			Tolerance: 3, Core: core.Config{R: 0.4},
			Gen: func(r, i int) []float64 {
				th := 0.1 + 0.05*float64(r) + 0.02*float64(i)
				return []float64{math.Cos(th), math.Sin(th), 1, 0.2}
			},
		},
		{
			Name: "rosenbrock/eps0.5/n2",
			F:    funcs.Rosenbrock(), N: 2, Eps: 0.5, Rounds: 8,
			Tolerance: 3, Core: core.Config{R: 0.5},
			Gen: func(r, i int) []float64 {
				return []float64{1 + 0.03*float64(r) + 0.01*float64(i), 1 + 0.06*float64(r)}
			},
		},
		{
			Name: "sine/eps0.1/n2",
			F:    funcs.Sine(), N: 2, Eps: 0.1, Rounds: 8,
			Tolerance: 3, Core: core.Config{R: 0.5},
			Gen: func(r, i int) []float64 {
				return []float64{0.4 + 0.2*float64(r) + 0.05*float64(i)}
			},
		},
		{
			Name: "mlp-2/eps0.1/n2",
			F:    mlp, N: 2, Eps: 0.1, Rounds: 8,
			Tolerance: 3, Core: core.Config{R: 0.5},
			Gen: func(r, i int) []float64 {
				return []float64{-0.5 + 0.1*float64(r) + 0.05*float64(i), 0.3 + 0.05*float64(r)}
			},
		},
	}
}

// TestDifferentialOracle replays every spec and requires that no quiesced
// round ever exceeds the spec's bound, that the schedule really ran, and
// that across the whole table the protocol was genuinely exercised (the
// suite would prove nothing if no schedule ever left its safe zone).
func TestDifferentialOracle(t *testing.T) {
	var violations atomic.Int64
	for _, sp := range specs(t) {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := oracle.Replay(sp)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Rounds) != sp.Rounds {
				t.Fatalf("replayed %d rounds, want %d", len(rep.Rounds), sp.Rounds)
			}
			if len(rep.Bad) > 0 {
				r := rep.Rounds[rep.Bad[0]-1]
				t.Errorf("%d rounds broke the %v bound; first: round %d estimate %v truth %v (err %v)",
					len(rep.Bad), rep.Bound, r.Round, r.Estimate, r.Truth, r.Err)
			}
			if rep.Stats.FullSyncs < 1 {
				t.Error("not even the initial full sync was recorded")
			}
			violations.Add(int64(rep.Stats.SafeZoneViolations + rep.Stats.NeighborhoodViolations))
		})
	}
	t.Cleanup(func() {
		if violations.Load() == 0 {
			t.Error("no schedule in the table triggered a single violation; the differential suite exercised nothing")
		}
	})
}

// TestReplayValidatesSpec pins the harness's own argument checking.
func TestReplayValidatesSpec(t *testing.T) {
	if _, err := oracle.Replay(oracle.Spec{Name: "empty"}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := oracle.Replay(oracle.Spec{
		Name: "no-gen", F: funcs.SqNorm(1), N: 1, Eps: 0.1, Rounds: 1,
	}); err == nil {
		t.Fatal("spec without Gen accepted")
	}
}
