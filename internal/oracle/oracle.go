// Package oracle is the ε-oracle differential harness: it replays a
// deterministic drift schedule through a real node/coordinator cluster over
// loopback TCP and, in lockstep, through a centralized oracle that computes
// the exact f(x̄) from the very vectors the nodes hold. After every round the
// cluster is quiesced — so the comparison happens outside any sync window —
// and the coordinator's estimate is checked against the oracle value.
//
// For convex/concave difference decompositions and constant-Hessian
// functions (ADCD-E) the paper's guarantee is deterministic, so the bound is
// exactly ε. For the non-convex ADCD-X cases the guarantee holds only while
// the DC decomposition's neighborhood assumption does, so those specs run
// with an engineering bound of a small multiple of ε (see Spec.Tolerance).
package oracle

import (
	"fmt"
	"math"
	"time"

	"automon/internal/core"
	"automon/internal/linalg"
	"automon/internal/transport"
)

// Spec is one differential replay: a function, a cluster size, an ε, and a
// deterministic drift schedule.
type Spec struct {
	Name string
	F    *core.Function
	N    int     // nodes in the cluster
	Eps  float64 // the monitoring ε (written into Core.Epsilon)
	// Rounds is the number of monitored rounds after the initial sync.
	Rounds int
	// Gen returns node i's local vector at the given round; round 0 is the
	// initial vector. It must be deterministic.
	Gen func(round, node int) []float64
	// Tolerance is the allowed |estimate − f(x̄)| as a multiple of Eps.
	// 0 means 1 (the exact paper guarantee). Non-convex ADCD-X specs use 3.
	Tolerance float64
	// Core carries protocol settings (R for ADCD-X, ablations, …). Epsilon
	// is overwritten with Eps.
	Core core.Config
	// Opts configures the loopback transport (batching, groups, timeouts).
	Opts transport.Options
}

// Round is one quiesced comparison point.
type Round struct {
	Round           int
	Estimate, Truth float64
	Err             float64
}

// Report is the outcome of one differential replay.
type Report struct {
	Spec   string
	Bound  float64 // Tolerance · Eps
	Rounds []Round
	MaxErr float64
	// Bad lists the rounds whose error exceeded Bound. A correct protocol
	// produces none: every comparison happens after quiescence, outside any
	// sync window.
	Bad []int
	// Stats is the coordinator's protocol tally at the end of the replay,
	// so callers can verify the schedule actually exercised the protocol.
	Stats core.CoordStats
	// TreeDepth is the shard-tree depth of a ReplayTree run (tiers from the
	// root shard to the leaves); zero for the flat TCP replay.
	TreeDepth int
}

// Replay runs the spec and returns the per-round differential report. It
// fails on any transport or protocol error; guarantee violations are not
// errors — they are recorded in Report.Bad for the caller to judge.
func Replay(sp Spec) (*Report, error) {
	if sp.F == nil || sp.N <= 0 || sp.Gen == nil || sp.Rounds <= 0 {
		return nil, fmt.Errorf("oracle: spec %q needs F, N, Gen and Rounds", sp.Name)
	}
	tol := sp.Tolerance
	if tol == 0 {
		tol = 1
	}
	cfg := sp.Core
	cfg.Epsilon = sp.Eps

	coord, err := transport.ListenCoordinator("127.0.0.1:0", sp.F, sp.N, cfg, sp.Opts)
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: listen: %w", sp.Name, err)
	}
	defer coord.Close()

	// The oracle's copy of every node's vector — the ground truth the
	// protocol never sees in aggregate.
	vecs := make([][]float64, sp.N)
	nodes := make([]*transport.NodeClient, sp.N)
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Close()
			}
		}
	}()
	for i := 0; i < sp.N; i++ {
		vecs[i] = linalg.Clone(sp.Gen(0, i))
		nodes[i], err = transport.DialNode(coord.Addr(), i, sp.F, sp.Gen(0, i), sp.Opts)
		if err != nil {
			return nil, fmt.Errorf("oracle: %s: dial node %d: %w", sp.Name, i, err)
		}
	}
	select {
	case <-coord.Ready():
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("oracle: %s: coordinator never became ready", sp.Name)
	}
	for i, nd := range nodes {
		if err := nd.WaitReady(30 * time.Second); err != nil {
			return nil, fmt.Errorf("oracle: %s: node %d ready: %w", sp.Name, i, err)
		}
	}

	rep := &Report{Spec: sp.Name, Bound: tol * sp.Eps}
	avg := make([]float64, sp.F.Dim())
	for r := 1; r <= sp.Rounds; r++ {
		for i, nd := range nodes {
			x := sp.Gen(r, i)
			if err := nd.Update(x); err != nil {
				return nil, fmt.Errorf("oracle: %s: round %d node %d: %w", sp.Name, r, i, err)
			}
			copy(vecs[i], x)
		}
		quiesce(coord, nodes)
		if err := coord.Err(); err != nil {
			return nil, fmt.Errorf("oracle: %s: round %d: coordinator: %w", sp.Name, r, err)
		}
		linalg.Mean(avg, vecs...)
		truth := sp.F.Value(avg)
		est := coord.Estimate()
		e := math.Abs(est - truth)
		rep.Rounds = append(rep.Rounds, Round{Round: r, Estimate: est, Truth: truth, Err: e})
		if e > rep.MaxErr {
			rep.MaxErr = e
		}
		if e > rep.Bound+1e-9 {
			rep.Bad = append(rep.Bad, r)
		}
	}
	rep.Stats = coord.CoordStats()
	return rep, nil
}

// quiesce waits until no message is in flight anywhere in the cluster, so
// the next comparison sees a settled protocol state outside any sync window.
func quiesce(coord *transport.Coordinator, nodes []*transport.NodeClient) {
	stable, last := 0, int64(-1)
	for stable < 3 {
		time.Sleep(10 * time.Millisecond)
		cur := coord.Stats.MessagesSent.Load() + coord.Stats.MessagesReceived.Load()
		for _, nd := range nodes {
			cur += nd.Stats.MessagesSent.Load() + nd.Stats.MessagesReceived.Load()
		}
		if cur == last {
			stable++
		} else {
			stable = 0
		}
		last = cur
	}
}
