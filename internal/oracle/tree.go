package oracle

import (
	"fmt"
	"math"

	"automon/internal/core"
	"automon/internal/linalg"
	"automon/internal/shard"
)

// treeComm is the in-process fabric of the tree replay: synchronous delivery
// straight into the node objects, no wire. The tree replay checks protocol
// correctness through the shard topology; the TCP replay (Replay) already
// covers the transport.
type treeComm struct{ nodes []*core.Node }

func (c *treeComm) RequestData(id int) []float64    { return c.nodes[id].LocalVector() }
func (c *treeComm) SendSync(id int, m *core.Sync)   { c.nodes[id].ApplySync(m) }
func (c *treeComm) SendSlack(id int, m *core.Slack) { c.nodes[id].ApplySlack(m) }

// ReplayTree runs the spec through a hierarchical sharded coordinator
// (internal/shard) instead of a flat one: the same drift schedule, the same
// centralized oracle, but every gather and distribution flows through a tree
// of sub-coordinators shaped by opt. The report's TreeDepth records the
// shape actually built (shard counts clamp to N). Guarantee violations land
// in Report.Bad exactly as in Replay.
func ReplayTree(sp Spec, opt shard.Options) (*Report, error) {
	if sp.F == nil || sp.N <= 0 || sp.Gen == nil || sp.Rounds <= 0 {
		return nil, fmt.Errorf("oracle: spec %q needs F, N, Gen and Rounds", sp.Name)
	}
	tol := sp.Tolerance
	if tol == 0 {
		tol = 1
	}
	cfg := sp.Core
	cfg.Epsilon = sp.Eps

	nodes := make([]*core.Node, sp.N)
	vecs := make([][]float64, sp.N)
	for i := 0; i < sp.N; i++ {
		nodes[i] = core.NewNode(i, sp.F)
		nodes[i].SetData(sp.Gen(0, i))
		vecs[i] = linalg.Clone(sp.Gen(0, i))
	}
	tree, err := shard.NewTree(sp.F, sp.N, cfg, &treeComm{nodes: nodes}, opt)
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: tree: %w", sp.Name, err)
	}
	if err := tree.Init(); err != nil {
		return nil, fmt.Errorf("oracle: %s: init: %w", sp.Name, err)
	}

	rep := &Report{Spec: sp.Name, Bound: tol * sp.Eps, TreeDepth: tree.Depth()}
	avg := make([]float64, sp.F.Dim())
	for r := 1; r <= sp.Rounds; r++ {
		for i, nd := range nodes {
			x := sp.Gen(r, i)
			copy(vecs[i], x)
			if v := nd.UpdateData(x); v != nil {
				if err := tree.HandleViolation(v); err != nil {
					return nil, fmt.Errorf("oracle: %s: round %d node %d: %w", sp.Name, r, i, err)
				}
			}
		}
		linalg.Mean(avg, vecs...)
		truth := sp.F.Value(avg)
		est := tree.Estimate()
		e := math.Abs(est - truth)
		rep.Rounds = append(rep.Rounds, Round{Round: r, Estimate: est, Truth: truth, Err: e})
		if e > rep.MaxErr {
			rep.MaxErr = e
		}
		if e > rep.Bound+1e-9 {
			rep.Bad = append(rep.Bad, r)
		}
	}
	rep.Stats = tree.Stats()
	return rep, nil
}
