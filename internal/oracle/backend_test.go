package oracle_test

// The eigen-backend sweep: the same differential table that proves the 1·ε /
// 3·ε bounds under the default L-BFGS engine is replayed with the certified
// interval backend and with the hybrid, because switching the eigen-engine
// must never change what the protocol guarantees — only how the curvature
// bounds are obtained. For the interval runs the coordinator's own counters
// double as the end-to-end "no optimizer work" proof: zero optimizer
// eigensolves over entire replays. A final cross-check compares the two
// engines at matching (x0, r): the certificate should enclose whatever the
// sampling-based search found; a violation is logged for investigation (it
// would indicate an unsound search escape, not a broken certificate), never
// failed.

import (
	"testing"

	"automon/internal/core"
	"automon/internal/oracle"
)

func TestBackendSweep(t *testing.T) {
	for _, backend := range []core.EigBackend{core.BackendInterval, core.BackendHybrid} {
		backend := backend
		for _, sp := range specs(t) {
			sp := sp
			sp.Core.Decomp.Backend = backend
			name := sp.Name + "/" + backend.String()
			adcdX := sp.Core.R > 0
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				rep, err := oracle.Replay(sp)
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Rounds) != sp.Rounds {
					t.Fatalf("replayed %d rounds, want %d", len(rep.Rounds), sp.Rounds)
				}
				if len(rep.Bad) > 0 {
					r := rep.Rounds[rep.Bad[0]-1]
					t.Errorf("%d rounds broke the %v bound under the %v backend; first: round %d estimate %v truth %v (err %v)",
						len(rep.Bad), rep.Bound, backend, r.Round, r.Estimate, r.Truth, r.Err)
				}
				if !adcdX {
					return // ADCD-E never builds X zones; the backend is inert
				}
				st := rep.Stats
				switch backend {
				case core.BackendInterval:
					if st.EigBoundBuildsInterval == 0 {
						t.Error("no interval-certified zone builds recorded")
					}
					if st.EigBoundBuildsLBFGS != 0 || st.EigBoundBuildsHybrid != 0 {
						t.Errorf("foreign backend builds recorded: lbfgs=%d hybrid=%d",
							st.EigBoundBuildsLBFGS, st.EigBoundBuildsHybrid)
					}
					if st.OptEvals != 0 {
						t.Errorf("interval replay ran %d optimizer eigensolves, want 0", st.OptEvals)
					}
				case core.BackendHybrid:
					if st.EigBoundBuildsHybrid == 0 {
						t.Error("no hybrid zone builds recorded")
					}
					if st.HybridRefines > 0 && st.OptEvals == 0 {
						t.Error("hybrid refinements recorded but zero optimizer eigensolves")
					}
				}
			})
		}
	}
}

// TestIntervalEnclosesLBFGSAtMatchingBoxes cross-checks the engines outside
// the protocol: at the (x0, r) pairs the ADCD-X schedules visit, the
// certificate must enclose the search result. Because the search is the
// unsound party here, a violation is surfaced with t.Logf for investigation
// rather than failing the build.
func TestIntervalEnclosesLBFGSAtMatchingBoxes(t *testing.T) {
	const slop = 1e-9
	checked, flagged := 0, 0
	for _, sp := range specs(t) {
		if sp.Core.R == 0 {
			continue // ADCD-E: no neighborhood box to compare over
		}
		d := sp.F.Dim()
		for r := 0; r < 3; r++ {
			x0 := sp.Gen(r, 0)[:d]
			lo := make([]float64, d)
			hi := make([]float64, d)
			for i, v := range x0 {
				lo[i], hi[i] = v-sp.Core.R, v+sp.Core.R
			}
			lb, err := core.DecomposeX(sp.F, x0, lo, hi, core.DecompOptions{Backend: core.BackendLBFGS, Seed: 1})
			if err != nil {
				t.Fatalf("%s r=%d lbfgs: %v", sp.Name, r, err)
			}
			iv, err := core.DecomposeX(sp.F, x0, lo, hi, core.DecompOptions{Backend: core.BackendInterval, Seed: 1})
			if err != nil {
				t.Fatalf("%s r=%d interval: %v", sp.Name, r, err)
			}
			checked++
			if iv.LamAbsNeg < lb.LamAbsNeg-slop || iv.LamPosMax < lb.LamPosMax-slop {
				flagged++
				t.Logf("%s r=%d: certificate [|λ⁻|=%v, λ⁺=%v] does not enclose search [|λ⁻|=%v, λ⁺=%v] at x0=%v R=%v",
					sp.Name, r, iv.LamAbsNeg, iv.LamPosMax, lb.LamAbsNeg, lb.LamPosMax, x0, sp.Core.R)
			}
		}
	}
	if checked == 0 {
		t.Fatal("cross-check compared nothing")
	}
	t.Logf("cross-checked %d (x0, r) boxes, %d flagged", checked, flagged)
}
