package stream

import (
	"math/rand"
)

// IntrusionFeatures is the KDDCup-99 feature count.
const IntrusionFeatures = 41

// Intrusion is the synthetic stand-in for the KDDCup-99 intrusion-detection
// workload (§4.2): 9 nodes, one per application-type channel group, where a
// single node receives a sample per round (ordered by the timestamps encoded
// in the original dataset). Each channel has a characteristic traffic
// profile; attack episodes shift a subset of features along a fixed attack
// direction. The struct also carries a labeled training set so the DNN can
// be trained in-repo, mirroring the paper's "10% KDD" training split.
type Intrusion struct {
	*Dataset
	TrainX [][]float64
	TrainY []float64
}

// intrusionProfile holds one channel's generation parameters.
type intrusionProfile struct {
	base   []float64
	weight float64
}

// buildProfiles creates the 9 channel profiles: 5 "ECR_i" nodes (heaviest
// traffic), 2 "Private", 1 "Http", 1 "other", following the paper's load
// division.
func buildProfiles(rng *rand.Rand) []intrusionProfile {
	weights := []float64{1, 1, 1, 1, 1, 0.8, 0.8, 0.7, 0.4}
	profiles := make([]intrusionProfile, len(weights))
	for i := range profiles {
		base := make([]float64, IntrusionFeatures)
		for j := range base {
			base[j] = 0.1 + 0.35*rng.Float64()
		}
		profiles[i] = intrusionProfile{base: base, weight: weights[i]}
	}
	return profiles
}

// NewIntrusion generates the synthetic intrusion workload. Attack episodes
// cover roughly 15% of rounds in bursts, concentrated on the high-traffic
// channels (as DoS floods are in KDD-99).
func NewIntrusion(nodes, rounds int, seed int64) *Intrusion {
	const w = 20
	rng := rand.New(rand.NewSource(seed))
	profiles := buildProfiles(rng)
	if nodes != len(profiles) {
		// Re-weight to the requested node count (tests use fewer nodes).
		profiles = profiles[:nodes]
	}

	// A fixed global attack direction over a subset of features (e.g. SYN
	// counts, error rates); attacks add attackLevel·dir.
	dir := make([]float64, IntrusionFeatures)
	for j := 0; j < 12; j++ {
		dir[rng.Intn(IntrusionFeatures)] = 0.5 + rng.Float64()
	}

	// Attack schedule: a few bursts per run, with gaps and durations scaled
	// to the stream length so short test runs still contain attacks.
	attackAt := make([]bool, rounds)
	for start := 0; start < rounds; {
		gap := rounds/3 + rng.Intn(rounds/3+1)
		start += gap
		if start >= rounds {
			break
		}
		dur := rounds/12 + rng.Intn(rounds/12+1)
		for r := start; r < start+dur && r < rounds; r++ {
			attackAt[r] = true
		}
		start += dur
	}

	sample := func(node int, attack bool) []float64 {
		p := profiles[node]
		x := make([]float64, IntrusionFeatures)
		for j := range x {
			x[j] = p.base[j] + rng.NormFloat64()*0.05
		}
		if attack {
			for j := range x {
				x[j] += dir[j] * (0.6 + rng.Float64()*0.4)
			}
		}
		return x
	}

	totalWeight := 0.0
	for _, p := range profiles {
		totalWeight += p.weight
	}
	pickNode := func() int {
		t := rng.Float64() * totalWeight
		for i, p := range profiles {
			t -= p.weight
			if t <= 0 {
				return i
			}
		}
		return len(profiles) - 1
	}

	ds := &Dataset{
		Name:      "intrusion",
		Nodes:     nodes,
		Rounds:    rounds,
		NewWindow: func() Windower { return NewAvgWindow(w, IntrusionFeatures) },
	}
	// Warm-up: every node gets w normal samples so windows fill.
	for r := 0; r < w; r++ {
		round := make([][]float64, nodes)
		for i := range round {
			round[i] = sample(i, false)
		}
		ds.fill = append(ds.fill, round)
	}
	// Monitored rounds: a single node updates per round. Attacks fall on the
	// heavy channels (nodes 0..4) with higher probability.
	for r := 0; r < rounds; r++ {
		round := make([][]float64, nodes)
		node := pickNode()
		attack := attackAt[r] && node < (nodes+1)/2
		round[node] = sample(node, attack)
		ds.samples = append(ds.samples, round)
	}

	// Labeled training data. The monitored quantity is the DNN applied to
	// the *average* of all channels' windows (the paper's f_nn(x̄) setting),
	// so training inputs are channel-mixture averages with k ∈ {0..4}
	// attacked channels; the label marks whether any channel is under
	// attack. This keeps the classifier calibrated on aggregate inputs
	// instead of saturating on per-connection samples.
	in := &Intrusion{Dataset: ds}
	for t := 0; t < 4000; t++ {
		k := 0
		if t%2 == 1 {
			k = 1 + rng.Intn(4)
		}
		attacked := map[int]bool{}
		for len(attacked) < k {
			attacked[rng.Intn(nodes)] = true
		}
		avg := make([]float64, IntrusionFeatures)
		for ch := 0; ch < nodes; ch++ {
			s := sample(ch, attacked[ch])
			for j, v := range s {
				avg[j] += v / float64(nodes)
			}
		}
		in.TrainX = append(in.TrainX, avg)
		if k > 0 {
			in.TrainY = append(in.TrainY, 1)
		} else {
			in.TrainY = append(in.TrainY, 0)
		}
	}
	return in
}
