package stream

// EWMAWindow maintains an exponentially weighted moving average local
// vector: v ← (1−α)·v + α·sample. It is the constant-memory alternative to
// the paper's sliding windows for long-lived edge nodes: no ring buffer,
// O(d) state, and the local vector reacts to drift at a rate set by α.
type EWMAWindow struct {
	alpha float64
	v     []float64
	seen  int
	warm  int
}

// NewEWMAWindow builds an EWMA windower over d-dimensional samples. warm is
// the number of samples before Full reports true (the protocol starts
// monitoring once all windows are warm); a warm of 0 means 1.
func NewEWMAWindow(alpha float64, d, warm int) *EWMAWindow {
	if warm <= 0 {
		warm = 1
	}
	return &EWMAWindow{alpha: alpha, v: make([]float64, d), warm: warm}
}

// Push implements Windower.
func (w *EWMAWindow) Push(sample []float64) {
	if w.seen == 0 {
		copy(w.v, sample)
	} else {
		for i, s := range sample {
			w.v[i] = (1-w.alpha)*w.v[i] + w.alpha*s
		}
	}
	w.seen++
}

// Vector implements Windower.
func (w *EWMAWindow) Vector() []float64 { return w.v }

// Full implements Windower.
func (w *EWMAWindow) Full() bool { return w.seen >= w.warm }

// TumblingWindow averages samples within fixed-size non-overlapping blocks:
// the local vector holds the last *completed* block's mean and only changes
// at block boundaries (the natural windowing of batch-oriented collectors).
type TumblingWindow struct {
	size    int
	current []float64
	filled  int
	out     []float64
	blocks  int
}

// NewTumblingWindow builds a tumbling windower of the given block size.
func NewTumblingWindow(size, d int) *TumblingWindow {
	if size <= 0 {
		size = 1
	}
	return &TumblingWindow{size: size, current: make([]float64, d), out: make([]float64, d)}
}

// Push implements Windower.
func (w *TumblingWindow) Push(sample []float64) {
	for i, s := range sample {
		w.current[i] += s
	}
	w.filled++
	if w.filled == w.size {
		inv := 1 / float64(w.size)
		for i := range w.current {
			w.out[i] = w.current[i] * inv
			w.current[i] = 0
		}
		w.filled = 0
		w.blocks++
	}
}

// Vector implements Windower: the last completed block's mean.
func (w *TumblingWindow) Vector() []float64 { return w.out }

// Full implements Windower: true once one block has completed.
func (w *TumblingWindow) Full() bool { return w.blocks > 0 }
