package stream

import (
	"math"
	"math/rand"
)

// NewAirQuality generates the synthetic stand-in for the Beijing multi-site
// air-quality workload (§4.2): `sites` nodes each produce an hourly
// (PM10, PM2.5) pair. PM2.5 follows a mean-reverting AR(1) process with a
// diurnal cycle and occasional multi-hour pollution episodes; PM10 is a
// noisy scaled copy plus independent dust events, so the two attributes'
// distributions drift apart and back — exactly what drives the monitored
// KL divergence. Values live in [0, 500], split into `bins` histogram
// buckets over a 200-sample sliding window (the paper's W = 200).
func NewAirQuality(sites, bins, rounds int, seed int64) *Dataset {
	const window = 200
	rng := rand.New(rand.NewSource(seed))

	// Sites within one city share weather: a common mean-reverting city
	// level plus shared pollution episodes drive every site, with smaller
	// per-site offsets and noise. This correlation is what makes slack and
	// lazy sync effective on the real Beijing data, so the substitute keeps
	// it.
	type siteState struct {
		offset float64
		pm25   float64
		phase  float64
	}
	states := make([]*siteState, sites)
	for i := range states {
		states[i] = &siteState{
			offset: -10 + 20*rng.Float64(),
			pm25:   60,
			phase:  2 * math.Pi * rng.Float64(),
		}
	}
	// The daily cycle uses a 25-hour period so that it divides the 200-hour
	// histogram window exactly: the sample evicted each hour has the same
	// cycle position as the one inserted, keeping the window histograms
	// stationary under the cycle (real data approximates this because its
	// diurnal pattern is irregular; an exact 24-hour sine would resonate
	// with the window and churn every histogram every hour).
	const cyclePeriod = 25.0
	city := 60.0
	cityEpisode := 0.0
	episodeTarget := 0.0

	hour := 0
	step := func() [][]float64 {
		city = 60 + 0.995*(city-60) + rng.NormFloat64()*1.2
		// Episodes build up and fade over tens of hours rather than jumping:
		// the onset picks a target level the city process relaxes toward.
		switch {
		case episodeTarget > 0 && cityEpisode > 0.95*episodeTarget:
			episodeTarget = 0 // peak reached; start fading
		case episodeTarget == 0 && cityEpisode < 1 && rng.Float64() < 0.0008:
			episodeTarget = 80 + 100*rng.Float64()
		}
		cityEpisode += 0.04 * (episodeTarget - cityEpisode)
		// Episodes are PM2.5-heavy (smog), so the PM10/PM2.5 composition
		// ratio drops while one is active: the monitored KL divergence moves
		// with pollution events rather than with sampling noise.
		ratio := 1.3 - 0.25*math.Min(cityEpisode/150, 1)
		out := make([][]float64, sites)
		for i, s := range states {
			// The strong diurnal swing is stationary across a 200-hour
			// window (≈ 8 cycles), so it widens the histograms — filling
			// many buckets with stable mass — without adding drift; drift
			// comes from the slow city process and the episodes.
			diurnal := 35 * math.Sin(2*math.Pi*float64(hour)/cyclePeriod+s.phase)
			target := city + s.offset + cityEpisode
			s.pm25 = target + 0.97*(s.pm25-target) + rng.NormFloat64()*1.2
			pm25 := clamp(s.pm25+diurnal, 0, 500)
			dust := 0.0
			if rng.Float64() < 0.001 {
				dust = 20 + 30*rng.Float64()
			}
			pm10 := clamp((s.pm25+diurnal)*ratio+rng.NormFloat64()*4+dust, 0, 500)
			out[i] = []float64{pm10, pm25}
		}
		hour++
		return out
	}

	ds := &Dataset{
		Name:      "air-quality",
		Nodes:     sites,
		Rounds:    rounds,
		NewWindow: func() Windower { return NewHistWindow(window, bins, 0, 500) },
	}
	for r := 0; r < window; r++ {
		ds.fill = append(ds.fill, step())
	}
	for r := 0; r < rounds; r++ {
		ds.samples = append(ds.samples, step())
	}
	return ds
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
