package stream

import (
	"math"
	"math/rand"

	"automon/internal/sketch"
)

// Events is a replayable per-node turnstile event stream for the ingestion
// layer (internal/ingest): Warm[i] primes node i's sketch before the first
// sync, PerNode[i] is node i's monitored event sequence. Pre-generation
// keeps runs replayable across the elided and per-event paths — the
// differential harness feeds both from the same Events value.
type Events struct {
	Name    string
	Nodes   int
	Warm    [][]sketch.Update
	PerNode [][]sketch.Update
}

// EventsPerNode returns the monitored event count of the longest node
// stream.
func (e *Events) EventsPerNode() int {
	max := 0
	for _, evs := range e.PerNode {
		if len(evs) > max {
			max = len(evs)
		}
	}
	return max
}

// SketchChurn is the drift-within-zone workload behind the headline
// events/sec/node benchmark: warm-up inserts build a stable frequency
// profile, then monitored events alternate inserts and deletions over the
// same working set, so the sketch oscillates inside a small ball around the
// sync point and (with elision) almost no event needs an exact check.
func SketchChurn(nodes, warm, events int, seed int64) *Events {
	rng := rand.New(rand.NewSource(seed))
	e := &Events{Name: "sketch-churn", Nodes: nodes}
	pick := func() uint64 {
		if rng.Float64() < 0.3 {
			return uint64(rng.Intn(8)) // heavy items
		}
		return uint64(8 + rng.Intn(120))
	}
	for i := 0; i < nodes; i++ {
		w := make([]sketch.Update, warm)
		for k := range w {
			w[k] = sketch.Update{Item: pick(), Delta: 1}
		}
		evs := make([]sketch.Update, events)
		for k := range evs {
			// Paired churn: even events insert, odd events delete an item of
			// the same popularity class, so the global profile drifts only by
			// sampling noise.
			d := 1.0
			if k%2 == 1 {
				d = -1
			}
			evs[k] = sketch.Update{Item: pick(), Delta: d}
		}
		e.Warm = append(e.Warm, w)
		e.PerNode = append(e.PerNode, evs)
	}
	return e
}

// SketchBursts layers heavy-hitter bursts over a churn baseline: the middle
// third of each node's stream concentrates inserts on three hot items,
// raising the global second moment enough to violate safe zones and force
// syncs — the workload the differential harness uses to prove identical
// violation/sync sequences.
func SketchBursts(nodes, warm, events int, seed int64) *Events {
	rng := rand.New(rand.NewSource(seed))
	e := &Events{Name: "sketch-bursts", Nodes: nodes}
	for i := 0; i < nodes; i++ {
		w := make([]sketch.Update, warm)
		for k := range w {
			w[k] = sketch.Update{Item: uint64(rng.Intn(128)), Delta: 1}
		}
		evs := make([]sketch.Update, events)
		for k := range evs {
			frac := float64(k) / float64(events)
			var item uint64
			delta := 1.0
			switch {
			case frac > 0.33 && frac < 0.66 && rng.Float64() < 0.6:
				item = uint64(rng.Intn(3)) // burst: hot items
			case rng.Float64() < 0.1:
				item = uint64(rng.Intn(128))
				delta = -1 // turnstile deletion
			default:
				item = uint64(rng.Intn(512))
			}
			evs[k] = sketch.Update{Item: item, Delta: delta}
		}
		e.Warm = append(e.Warm, w)
		e.PerNode = append(e.PerNode, evs)
	}
	return e
}

// SketchEpisodes is the rare-anomaly workload of the ingestion experiments:
// a drift-free churn baseline with three short episodes (each ≈ 3% of the
// stream) where heavy-weight flows (turnstile weight 4) concentrate on two
// hot items, followed by an equally long decay phase of matching deletions.
// Between episodes the monitored quantity is flat — the regime where
// adaptive monitoring beats any fixed shipping period: a long period is
// blind to the spike, a short one pays for the quiet 90%.
func SketchEpisodes(nodes, warm, events int, seed int64) *Events {
	rng := rand.New(rand.NewSource(seed))
	e := &Events{Name: "sketch-episodes", Nodes: nodes}
	epLen := events / 33
	starts := []int{events * 30 / 100, events * 55 / 100, events * 80 / 100}
	phase := func(k int) (rising, fading bool) {
		for _, s := range starts {
			if k >= s && k < s+epLen {
				return true, false
			}
			if k >= s+epLen && k < s+2*epLen {
				return false, true
			}
		}
		return false, false
	}
	pick := func() uint64 {
		if rng.Float64() < 0.3 {
			return uint64(rng.Intn(8))
		}
		return uint64(8 + rng.Intn(120))
	}
	for i := 0; i < nodes; i++ {
		w := make([]sketch.Update, warm)
		for k := range w {
			w[k] = sketch.Update{Item: pick(), Delta: 1}
		}
		evs := make([]sketch.Update, events)
		for k := range evs {
			rising, fading := phase(k)
			switch {
			case rising && rng.Float64() < 0.85:
				evs[k] = sketch.Update{Item: uint64(rng.Intn(2)), Delta: 4}
			case fading && rng.Float64() < 0.85:
				evs[k] = sketch.Update{Item: uint64(rng.Intn(2)), Delta: -4}
			default:
				d := 1.0
				if k%2 == 1 {
					d = -1
				}
				evs[k] = sketch.Update{Item: pick(), Delta: d}
			}
		}
		e.Warm = append(e.Warm, w)
		e.PerNode = append(e.PerNode, evs)
	}
	return e
}

// SketchChaos is the adversarial-magnitude stream: deltas span twelve
// orders of magnitude with random signs, occasional huge spikes, and
// denormal-scale dribbles. It exists to stress the elision budget
// accounting — any unsoundness in the per-event norm bound shows up here as
// a missed violation in the differential harness.
func SketchChaos(nodes, warm, events int, seed int64) *Events {
	rng := rand.New(rand.NewSource(seed))
	e := &Events{Name: "sketch-chaos", Nodes: nodes}
	for i := 0; i < nodes; i++ {
		w := make([]sketch.Update, warm)
		for k := range w {
			w[k] = sketch.Update{Item: uint64(rng.Intn(64)), Delta: 1}
		}
		evs := make([]sketch.Update, events)
		for k := range evs {
			mag := math.Pow(10, -6+12*rng.Float64())
			if rng.Float64() < 0.5 {
				mag = -mag
			}
			if rng.Float64() < 0.002 {
				mag *= 1e3 // spike
			}
			evs[k] = sketch.Update{Item: uint64(rng.Intn(256)), Delta: mag}
		}
		e.Warm = append(e.Warm, w)
		e.PerNode = append(e.PerNode, evs)
	}
	return e
}

// PairedSketchEvents generates the two-stream workload for the
// inner-product query: events route between the u and v sketches via the
// sketch.StreamB bit. The u stream tracks a slowly rising activity level
// while v stays stationary, so ⟨u, v⟩ drifts through phases like the §4.2
// inner-product workload.
func PairedSketchEvents(nodes, warm, events int, seed int64) *Events {
	rng := rand.New(rand.NewSource(seed))
	e := &Events{Name: "paired-sketch", Nodes: nodes}
	for i := 0; i < nodes; i++ {
		w := make([]sketch.Update, warm)
		for k := range w {
			item := uint64(rng.Intn(64))
			if k%2 == 1 {
				item |= sketch.StreamB
			}
			w[k] = sketch.Update{Item: item, Delta: 1}
		}
		evs := make([]sketch.Update, events)
		for k := range evs {
			frac := float64(k) / float64(events)
			item := uint64(rng.Intn(64))
			delta := 1.0
			if rng.Float64() < 0.5 {
				item |= sketch.StreamB // v stream: stationary
			} else if frac > 0.5 && rng.Float64() < 0.4 {
				item = uint64(rng.Intn(4)) // u stream concentrates late in the run
			}
			if rng.Float64() < 0.05 {
				delta = -1
			}
			evs[k] = sketch.Update{Item: item, Delta: delta}
		}
		e.Warm = append(e.Warm, w)
		e.PerNode = append(e.PerNode, evs)
	}
	return e
}
