package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAvgWindowBasics(t *testing.T) {
	w := NewAvgWindow(3, 2)
	if w.Full() {
		t.Fatal("empty window reports full")
	}
	w.Push([]float64{1, 2})
	v := w.Vector()
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("one-sample average = %v", v)
	}
	w.Push([]float64{3, 4})
	w.Push([]float64{5, 6})
	if !w.Full() {
		t.Fatal("window should be full after 3 pushes")
	}
	v = w.Vector()
	if v[0] != 3 || v[1] != 4 {
		t.Fatalf("average = %v, want [3 4]", v)
	}
	// Eviction: pushing a 4th sample drops the first.
	w.Push([]float64{7, 8})
	v = w.Vector()
	if v[0] != 5 || v[1] != 6 {
		t.Fatalf("post-eviction average = %v, want [5 6]", v)
	}
}

func TestAvgWindowMatchesNaiveAverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewAvgWindow(5, 1)
		var hist []float64
		for k := 0; k < 50; k++ {
			x := rng.NormFloat64()
			hist = append(hist, x)
			w.Push([]float64{x})
			lo := len(hist) - 5
			if lo < 0 {
				lo = 0
			}
			var want float64
			for _, v := range hist[lo:] {
				want += v
			}
			want /= float64(len(hist) - lo)
			if math.Abs(w.Vector()[0]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistWindow(t *testing.T) {
	h := NewHistWindow(4, 2, 0, 10) // buckets [0,5) and [5,10]
	h.Push([]float64{1, 9})
	h.Push([]float64{2, 8})
	h.Push([]float64{7, 1})
	h.Push([]float64{8, 2})
	if !h.Full() {
		t.Fatal("window should be full")
	}
	v := h.Vector()
	// p (attr 0): 2 low, 2 high → [0.5, 0.5]; q (attr 1): 2 high, 2 low.
	want := []float64{0.5, 0.5, 0.5, 0.5}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("hist vector = %v, want %v", v, want)
		}
	}
	// Eviction drops the oldest (1, 9).
	h.Push([]float64{1, 1})
	v = h.Vector()
	if math.Abs(v[0]-0.5) > 1e-12 || math.Abs(v[2]-0.75) > 1e-12 {
		t.Fatalf("post-eviction hist = %v", v)
	}
	// Histogram entries always sum to 1 per attribute.
	if s := v[0] + v[1]; math.Abs(s-1) > 1e-12 {
		t.Fatalf("p histogram sums to %v", s)
	}
	if s := v[2] + v[3]; math.Abs(s-1) > 1e-12 {
		t.Fatalf("q histogram sums to %v", s)
	}
}

func TestHistWindowClampsOutOfRange(t *testing.T) {
	h := NewHistWindow(2, 4, 0, 100)
	h.Push([]float64{-50, 700})
	v := h.Vector()
	if v[0] != 1 { // below-range lands in the first bucket
		t.Fatalf("clamped low sample histogram = %v", v)
	}
	if v[4+3] != 1 { // above-range lands in the last bucket
		t.Fatalf("clamped high sample histogram = %v", v)
	}
}

func TestDatasetsAreDeterministic(t *testing.T) {
	a := MLPDrift(4, 6, 50, 9)
	b := MLPDrift(4, 6, 50, 9)
	for r := 0; r < 50; r++ {
		for i := 0; i < 6; i++ {
			va, vb := a.Sample(r, i), b.Sample(r, i)
			for j := range va {
				if va[j] != vb[j] {
					t.Fatal("MLPDrift not deterministic")
				}
			}
		}
	}
}

func TestDatasetShapes(t *testing.T) {
	cases := []struct {
		name   string
		ds     *Dataset
		nodes  int
		rounds int
		dim    int
	}{
		{"mlp", MLPDrift(10, 8, 30, 1), 8, 30, 10},
		{"ip", InnerProductPhases(5, 4, 30, 1), 4, 30, 10},
		{"quad", QuadraticOutlier(6, 4, 30, 1), 4, 30, 6},
		{"gauss", GaussianNoise(2, 4, 30, 0, 0.2, 1), 4, 30, 2},
	}
	for _, c := range cases {
		if c.ds.Nodes != c.nodes || c.ds.Rounds != c.rounds {
			t.Fatalf("%s: shape %d×%d", c.name, c.ds.Nodes, c.ds.Rounds)
		}
		if c.ds.FillRounds() == 0 {
			t.Fatalf("%s: no warm-up rounds", c.name)
		}
		for r := 0; r < c.rounds; r++ {
			for i := 0; i < c.nodes; i++ {
				s := c.ds.Sample(r, i)
				if s == nil || len(s) != c.dim {
					t.Fatalf("%s: sample (%d,%d) has dim %d, want %d", c.name, r, i, len(s), c.dim)
				}
			}
		}
		// Windows must fill after FillRounds pushes.
		w := c.ds.NewWindow()
		for r := 0; r < c.ds.FillRounds(); r++ {
			w.Push(c.ds.FillSample(r, 0))
		}
		if !w.Full() {
			t.Fatalf("%s: window not full after warm-up", c.name)
		}
	}
}

func TestIntrusionSingleNodePerRound(t *testing.T) {
	in := NewIntrusion(9, 500, 3)
	attackRounds := 0
	for r := 0; r < in.Rounds; r++ {
		active := 0
		for i := 0; i < in.Nodes; i++ {
			if in.Sample(r, i) != nil {
				active++
				if len(in.Sample(r, i)) != IntrusionFeatures {
					t.Fatalf("feature count = %d", len(in.Sample(r, i)))
				}
			}
		}
		if active != 1 {
			t.Fatalf("round %d has %d active nodes, want 1", r, active)
		}
	}
	_ = attackRounds
	if len(in.TrainX) == 0 || len(in.TrainX) != len(in.TrainY) {
		t.Fatal("training set malformed")
	}
	// Both classes present.
	var pos int
	for _, y := range in.TrainY {
		if y == 1 {
			pos++
		}
	}
	if pos == 0 || pos == len(in.TrainY) {
		t.Fatal("training set is single-class")
	}
}

func TestAirQualityRangesAndDrift(t *testing.T) {
	ds := NewAirQuality(12, 10, 400, 5)
	if ds.Nodes != 12 {
		t.Fatalf("sites = %d", ds.Nodes)
	}
	for r := 0; r < ds.Rounds; r++ {
		for i := 0; i < ds.Nodes; i++ {
			s := ds.Sample(r, i)
			if len(s) != 2 {
				t.Fatalf("air sample has %d attrs", len(s))
			}
			for _, v := range s {
				if v < 0 || v > 500 {
					t.Fatalf("PM value %v out of [0, 500]", v)
				}
			}
		}
	}
	// The windowed histograms must produce valid probability vectors.
	w := ds.NewWindow()
	for r := 0; r < ds.FillRounds(); r++ {
		w.Push(ds.FillSample(r, 0))
	}
	if !w.Full() {
		t.Fatal("hist window not full after warm-up")
	}
	v := w.Vector()
	var sp, sq float64
	for i := 0; i < 10; i++ {
		sp += v[i]
		sq += v[10+i]
	}
	if math.Abs(sp-1) > 1e-9 || math.Abs(sq-1) > 1e-9 {
		t.Fatalf("histograms not normalized: %v, %v", sp, sq)
	}
}

func TestSlice(t *testing.T) {
	ds := GaussianNoise(2, 3, 100, 0, 1, 2)
	head := ds.Slice(0, 20)
	tail := ds.Slice(20, 100)
	if head.Rounds != 20 || tail.Rounds != 80 {
		t.Fatalf("slice rounds = %d, %d", head.Rounds, tail.Rounds)
	}
	if head.FillRounds() != ds.FillRounds() {
		t.Fatal("slices must keep the warm-up prefix")
	}
	if tail.Sample(0, 0)[0] != ds.Sample(20, 0)[0] {
		t.Fatal("tail slice misaligned")
	}
}
