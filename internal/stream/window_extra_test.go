package stream

import (
	"math"
	"testing"
)

func TestEWMAWindow(t *testing.T) {
	w := NewEWMAWindow(0.5, 1, 2)
	if w.Full() {
		t.Fatal("empty EWMA reports full")
	}
	w.Push([]float64{4})
	if w.Vector()[0] != 4 {
		t.Fatalf("first sample should seed the EWMA, got %v", w.Vector()[0])
	}
	if w.Full() {
		t.Fatal("warm=2 must need two samples")
	}
	w.Push([]float64{0})
	if !w.Full() {
		t.Fatal("EWMA should be full after warm samples")
	}
	if got := w.Vector()[0]; got != 2 {
		t.Fatalf("EWMA after 4,0 with α=0.5 = %v, want 2", got)
	}
	w.Push([]float64{2})
	if got := w.Vector()[0]; got != 2 {
		t.Fatalf("EWMA should stay at 2, got %v", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	w := NewEWMAWindow(0.2, 2, 1)
	for i := 0; i < 200; i++ {
		w.Push([]float64{3, -1})
	}
	v := w.Vector()
	if math.Abs(v[0]-3) > 1e-9 || math.Abs(v[1]+1) > 1e-9 {
		t.Fatalf("EWMA did not converge: %v", v)
	}
}

func TestTumblingWindow(t *testing.T) {
	w := NewTumblingWindow(3, 1)
	w.Push([]float64{1})
	w.Push([]float64{2})
	if w.Full() {
		t.Fatal("tumbling window full before a block completed")
	}
	if w.Vector()[0] != 0 {
		t.Fatal("vector must be zero before the first block completes")
	}
	w.Push([]float64{3})
	if !w.Full() {
		t.Fatal("block completed, window should be full")
	}
	if got := w.Vector()[0]; got != 2 {
		t.Fatalf("block mean = %v, want 2", got)
	}
	// Mid-block pushes must not change the exposed vector.
	w.Push([]float64{100})
	if got := w.Vector()[0]; got != 2 {
		t.Fatalf("mid-block vector changed to %v", got)
	}
	w.Push([]float64{100})
	w.Push([]float64{100})
	if got := w.Vector()[0]; got != 100 {
		t.Fatalf("second block mean = %v, want 100", got)
	}
}

func TestTumblingWindowDegenerateSize(t *testing.T) {
	w := NewTumblingWindow(0, 1) // clamped to 1: every sample is a block
	w.Push([]float64{7})
	if !w.Full() || w.Vector()[0] != 7 {
		t.Fatalf("size-1 tumbling window broken: full=%v v=%v", w.Full(), w.Vector())
	}
}
