package stream

import (
	"math"
	"math/rand"
)

// Dataset is a replayable multi-node data stream plus the windowing rule
// that turns samples into local vectors. Samples are pre-generated so the
// same dataset can be replayed across algorithms and tuning passes.
type Dataset struct {
	Name   string
	Nodes  int
	Rounds int // monitored rounds (after window fill)

	// fill[r][i] is node i's sample in warm-up round r (windows fill before
	// monitoring starts; every node receives every fill round).
	fill [][][]float64
	// samples[r][i] is node i's sample in monitored round r, or nil when the
	// node receives no update that round (the DNN workload updates a single
	// node per round).
	samples [][][]float64

	// NewWindow builds one node's Windower.
	NewWindow func() Windower
}

// FillRounds returns the number of warm-up rounds.
func (d *Dataset) FillRounds() int { return len(d.fill) }

// FillSample returns node i's sample in warm-up round r.
func (d *Dataset) FillSample(r, i int) []float64 { return d.fill[r][i] }

// Sample returns node i's sample in monitored round r (nil = no update).
func (d *Dataset) Sample(r, i int) []float64 { return d.samples[r][i] }

// Slice returns a shallow copy of the dataset restricted to monitored rounds
// [from, to); the warm-up prefix is retained. Used to split tuning data from
// evaluation data.
func (d *Dataset) Slice(from, to int) *Dataset {
	c := *d
	c.samples = d.samples[from:to]
	c.Rounds = to - from
	return &c
}

// NewCustom builds a dataset from an arbitrary per-round generator. The
// window is an averaging window of the given size; warm-up rounds replay
// gen(0, ·). Used by the ablation and micro-benchmark scenarios.
func NewCustom(name string, nodes, rounds, window, dim int, gen func(round, node int) []float64) *Dataset {
	ds := &Dataset{
		Name:      name,
		Nodes:     nodes,
		Rounds:    rounds,
		NewWindow: func() Windower { return NewAvgWindow(window, dim) },
	}
	round := func(r int) [][]float64 {
		out := make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			out[i] = gen(r, i)
		}
		return out
	}
	for r := 0; r < window; r++ {
		ds.fill = append(ds.fill, round(0))
	}
	for r := 0; r < rounds; r++ {
		ds.samples = append(ds.samples, round(r))
	}
	return ds
}

// MLPDrift is the §4.2 MLP-d workload: x₁ ~ N(μ_t, 0.1²) with μ drifting
// from −2 to 2 over the run, x₂..x_d ~ N(+2, 0.1²) on half the nodes and
// N(−2, 0.1²) on the rest, and two 20-round outlier windows at 72% and 76%
// of the run where μ jumps to 0. Window: 20-sample average.
func MLPDrift(d, nodes, rounds int, seed int64) *Dataset {
	const w = 20
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{
		Name:      "mlp-drift",
		Nodes:     nodes,
		Rounds:    rounds,
		NewWindow: func() Windower { return NewAvgWindow(w, d) },
	}
	gen := func(round, total int) [][]float64 {
		frac := float64(round) / float64(total)
		mu := -2 + 4*frac
		if (frac >= 0.72 && frac < 0.74) || (frac >= 0.76 && frac < 0.78) {
			mu = 0
		}
		out := make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			base := 2.0
			if i >= nodes/2 {
				base = -2.0
			}
			x := make([]float64, d)
			x[0] = mu + rng.NormFloat64()*0.1
			for j := 1; j < d; j++ {
				x[j] = base + rng.NormFloat64()*0.1
			}
			out[i] = x
		}
		return out
	}
	for r := 0; r < w; r++ {
		ds.fill = append(ds.fill, gen(0, rounds))
	}
	for r := 0; r < rounds; r++ {
		ds.samples = append(ds.samples, gen(r, rounds))
	}
	return ds
}

// InnerProductPhases is the §4.2 inner-product workload: quiet phases and
// rapid changes. The target signal combines a monotone ramp, a low-frequency
// and a high-frequency sine, and a constant tail; u entries track the signal
// while v entries stay near 1, so ⟨ū, v̄⟩ follows the signal.
func InnerProductPhases(half, nodes, rounds int, seed int64) *Dataset {
	const w = 20
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{
		Name:      "inner-product-phases",
		Nodes:     nodes,
		Rounds:    rounds,
		NewWindow: func() Windower { return NewAvgWindow(w, 2*half) },
	}
	// Quiet phases bracket the activity, as in the paper's Figure 4: a
	// non-adaptive Periodic baseline keeps paying during the long flat
	// stretches where AutoMon is silent.
	signal := func(frac float64) float64 {
		switch {
		case frac < 0.3:
			return 0.5
		case frac < 0.4:
			return 0.5 + 20*(frac-0.3) // ramp 0.5 → 2.5
		case frac < 0.55:
			return 2.5 + 0.8*math.Sin(2*math.Pi*(frac-0.4)/0.15)
		case frac < 0.65:
			return 2.5 + 0.4*math.Sin(2*math.Pi*6*(frac-0.55)/0.10)
		default:
			return 2.5
		}
	}
	gen := func(frac float64) [][]float64 {
		a := signal(frac) / float64(half)
		out := make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			x := make([]float64, 2*half)
			for j := 0; j < half; j++ {
				x[j] = a + rng.NormFloat64()*0.02
				x[half+j] = 1 + rng.NormFloat64()*0.02
			}
			out[i] = x
		}
		return out
	}
	for r := 0; r < w; r++ {
		ds.fill = append(ds.fill, gen(0))
	}
	for r := 0; r < rounds; r++ {
		ds.samples = append(ds.samples, gen(float64(r)/float64(rounds)))
	}
	return ds
}

// QuadraticOutlier is the §4.2 quadratic-form workload: all entries
// N(0, 0.1²), except one "outlier" node that alternates 40-sample blocks of
// N(0, 0.1²) and N(−4, 0.1²). (The paper uses N(−10, 0.1²); we scale the
// outlier level to keep f values O(1) with our 1/d-scaled Q — the shape of
// the workload, abrupt block switches on one node that non-adaptive periods
// miss, is preserved.)
func QuadraticOutlier(d, nodes, rounds int, seed int64) *Dataset {
	const w = 20
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{
		Name:      "quadratic-outlier",
		Nodes:     nodes,
		Rounds:    rounds,
		NewWindow: func() Windower { return NewAvgWindow(w, d) },
	}
	gen := func(round int) [][]float64 {
		out := make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			mean := 0.0
			if i == 0 && (round/40)%2 == 1 {
				mean = -4
			}
			x := make([]float64, d)
			for j := range x {
				x[j] = mean + rng.NormFloat64()*0.1
			}
			out[i] = x
		}
		return out
	}
	for r := 0; r < w; r++ {
		ds.fill = append(ds.fill, gen(0))
	}
	for r := 0; r < rounds; r++ {
		ds.samples = append(ds.samples, gen(r))
	}
	return ds
}

// RegimeShift is the drift workload for the adaptive-radius experiments: a
// stationary N(mu, sigma²) stream with one burst episode in the middle of the
// run where the noise scale jumps to burstSigma (a regime change that drives
// consecutive neighborhood violations and, in a static run, permanently
// inflates r via the §3.6 doubling fallback). Before and after the burst the
// stream is statistically identical, so any post-burst behavior difference is
// attributable to state the monitoring run carried out of the burst.
func RegimeShift(d, nodes, rounds int, mu, sigma, burstSigma float64, seed int64) *Dataset {
	const w = 20
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{
		Name:      "regime-shift",
		Nodes:     nodes,
		Rounds:    rounds,
		NewWindow: func() Windower { return NewAvgWindow(w, d) },
	}
	// Burst window: the middle fifth of the run.
	burstFrom, burstTo := 2*rounds/5, 3*rounds/5
	gen := func(round int) [][]float64 {
		s := sigma
		if round >= burstFrom && round < burstTo {
			s = burstSigma
		}
		out := make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = mu + rng.NormFloat64()*s
			}
			out[i] = x
		}
		return out
	}
	for r := 0; r < w; r++ {
		ds.fill = append(ds.fill, gen(0))
	}
	for r := 0; r < rounds; r++ {
		ds.samples = append(ds.samples, gen(r))
	}
	return ds
}

// GaussianNoise is a plain stationary workload (every entry N(mu, sigma²)),
// used by the tuning experiments (§3.6 samples Rosenbrock inputs from
// N(0, 0.2²)).
func GaussianNoise(d, nodes, rounds int, mu, sigma float64, seed int64) *Dataset {
	const w = 20
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{
		Name:      "gaussian",
		Nodes:     nodes,
		Rounds:    rounds,
		NewWindow: func() Windower { return NewAvgWindow(w, d) },
	}
	gen := func() [][]float64 {
		out := make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = mu + rng.NormFloat64()*sigma
			}
			out[i] = x
		}
		return out
	}
	for r := 0; r < w; r++ {
		ds.fill = append(ds.fill, gen())
	}
	for r := 0; r < rounds; r++ {
		ds.samples = append(ds.samples, gen())
	}
	return ds
}
