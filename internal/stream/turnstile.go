package stream

import (
	"math/rand"

	"automon/internal/sketch"
)

// SketchWindow adapts a per-node AMS sketch to the Windower interface: each
// "sample" is a (item, delta) turnstile update encoded as two floats, and
// the local vector is the sketch's counter vector scaled by the given
// factor (nodes scale by 1/expected-updates so the monitored F₂ stays O(1)).
type SketchWindow struct {
	ams   *sketch.AMS
	scale float64
	out   []float64
	seen  int
}

// NewSketchWindow builds a sketch-backed windower. All nodes must share the
// sketch shape and seed so their vectors are mergeable.
func NewSketchWindow(rows, cols int, seed uint64, scale float64) *SketchWindow {
	a, err := sketch.NewAMS(rows, cols, seed)
	if err != nil {
		panic(err) // shapes are static configuration; an error is a bug
	}
	return &SketchWindow{ams: a, scale: scale, out: make([]float64, a.Dim())}
}

// Push implements Windower: sample = [item, delta].
func (s *SketchWindow) Push(sample []float64) {
	s.ams.Add(uint64(sample[0]), sample[1])
	s.seen++
}

// Vector implements Windower: the scaled sketch counters.
func (s *SketchWindow) Vector() []float64 {
	raw := s.ams.Vector()
	for i, v := range raw {
		s.out[i] = v * s.scale
	}
	return s.out
}

// Full implements Windower: a sketch is usable from the first update.
func (s *SketchWindow) Full() bool { return s.seen > 0 }

// ZipfTurnstile generates the distributed frequency workload for sketched
// F₂ monitoring: every node receives one (item, delta) update per round
// from a skewed item distribution; heavy-hitter bursts raise the global
// second moment mid-run and occasional deletions exercise the turnstile
// path. Samples are [item, delta] pairs; the Windower is a shared-seed AMS
// sketch.
func ZipfTurnstile(nodes, rounds, rows, cols int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	// Counter scaling keeps the monitored F₂ in an O(1) range across run
	// lengths (heavy hitters collect ≈ rounds/12 updates each).
	scale := 8.0 / float64(rounds)

	sample := func(round int) []float64 {
		frac := float64(round) / float64(rounds)
		burst := frac > 0.4 && frac < 0.7
		var item uint64
		switch {
		case burst && rng.Float64() < 0.5:
			item = uint64(rng.Intn(3)) // heavy hitters during the burst
		case rng.Float64() < 0.2:
			item = uint64(rng.Intn(10))
		default:
			item = uint64(10 + rng.Intn(500))
		}
		delta := 1.0
		if rng.Float64() < 0.05 {
			delta = -1 // turnstile deletion
		}
		return []float64{float64(item), delta}
	}

	ds := &Dataset{
		Name:   "zipf-turnstile",
		Nodes:  nodes,
		Rounds: rounds,
		NewWindow: func() Windower {
			return NewSketchWindow(rows, cols, 42, scale)
		},
	}
	// One warm-up round primes every sketch.
	warm := make([][]float64, nodes)
	for i := range warm {
		warm[i] = sample(0)
	}
	ds.fill = append(ds.fill, warm)
	for r := 0; r < rounds; r++ {
		round := make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			round[i] = sample(r)
		}
		ds.samples = append(ds.samples, round)
	}
	return ds
}
