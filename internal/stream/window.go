// Package stream provides the data side of the evaluation: sliding-window
// local-vector maintenance and deterministic generators for every dataset in
// §4.2 — the synthetic MLP drift, inner-product phase, and quadratic-outlier
// workloads, a synthetic stand-in for the KDDCup-99 intrusion streams, and a
// synthetic stand-in for the Beijing multi-site air-quality dataset. The
// real datasets are not redistributable inside this repository; DESIGN.md
// documents why each substitute preserves the monitored behaviour.
package stream

// Windower turns a stream of raw samples into the node's local vector. The
// paper's nodes maintain a sliding window; the local vector is either the
// window average (most functions) or the window histogram (KLD).
type Windower interface {
	// Push adds one raw sample.
	Push(sample []float64)
	// Vector returns the current local vector. The returned slice is owned
	// by the Windower and overwritten by the next Push.
	Vector() []float64
	// Full reports whether the window has seen at least its capacity of
	// samples; monitoring starts once every node's window is full.
	Full() bool
}

// AvgWindow is a sliding window whose local vector is the mean of the last W
// samples.
type AvgWindow struct {
	w     int
	buf   [][]float64
	next  int
	count int
	sum   []float64
	out   []float64
}

// NewAvgWindow returns an averaging window of capacity w over d-dimensional
// samples.
func NewAvgWindow(w, d int) *AvgWindow {
	a := &AvgWindow{w: w, sum: make([]float64, d), out: make([]float64, d)}
	a.buf = make([][]float64, w)
	for i := range a.buf {
		a.buf[i] = make([]float64, d)
	}
	return a
}

// Push implements Windower.
func (a *AvgWindow) Push(sample []float64) {
	old := a.buf[a.next]
	if a.count == a.w {
		for i, v := range old {
			a.sum[i] -= v
		}
	} else {
		a.count++
	}
	copy(old, sample)
	for i, v := range sample {
		a.sum[i] += v
	}
	a.next = (a.next + 1) % a.w
}

// Vector implements Windower.
func (a *AvgWindow) Vector() []float64 {
	inv := 1.0
	if a.count > 0 {
		inv = 1 / float64(a.count)
	}
	for i, s := range a.sum {
		a.out[i] = s * inv
	}
	return a.out
}

// Full implements Windower.
func (a *AvgWindow) Full() bool { return a.count == a.w }

// HistWindow is the KLD window: samples are (value₁, value₂) pairs; the
// local vector is [p, q] where p and q are the normalized histograms of the
// two attributes over the last W samples, with `bins` buckets covering
// [min, max].
type HistWindow struct {
	w        int
	bins     int
	min, max float64
	buf      [][2]int // bucket indices of windowed samples
	next     int
	count    int
	counts   []int // 2*bins counts
	out      []float64
}

// NewHistWindow returns a histogram window of capacity w.
func NewHistWindow(w, bins int, min, max float64) *HistWindow {
	return &HistWindow{
		w: w, bins: bins, min: min, max: max,
		buf:    make([][2]int, w),
		counts: make([]int, 2*bins),
		out:    make([]float64, 2*bins),
	}
}

func (h *HistWindow) bucket(v float64) int {
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	b := int(float64(h.bins) * (v - h.min) / (h.max - h.min))
	if b == h.bins {
		b = h.bins - 1
	}
	return b
}

// Push implements Windower; sample must have two entries (the paper's PM10
// and PM2.5 attributes).
func (h *HistWindow) Push(sample []float64) {
	b0 := h.bucket(sample[0])
	b1 := h.bucket(sample[1])
	if h.count == h.w {
		old := h.buf[h.next]
		h.counts[old[0]]--
		h.counts[h.bins+old[1]]--
	} else {
		h.count++
	}
	h.buf[h.next] = [2]int{b0, b1}
	h.counts[b0]++
	h.counts[h.bins+b1]++
	h.next = (h.next + 1) % h.w
}

// Vector implements Windower: the concatenated normalized histograms.
func (h *HistWindow) Vector() []float64 {
	inv := 1.0
	if h.count > 0 {
		inv = 1 / float64(h.count)
	}
	for i, c := range h.counts {
		h.out[i] = float64(c) * inv
	}
	return h.out
}

// Full implements Windower.
func (h *HistWindow) Full() bool { return h.count == h.w }
